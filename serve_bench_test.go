package nrp_test

// Serving-layer load benchmark: drives the HTTP stack end to end with
// internal/loadgen and records the request-coalescing win plus
// client-observed latency quantiles to BENCH_serve.json for the bench
// gate. It lives in package nrp_test (same test binary, so CI's
// root-package bench run picks it up) because it imports internal/serve,
// which package nrp itself cannot.
//
// The fixture mirrors bench_test.go's servingEmbedding: same seed, size,
// and power-law hub spectrum, rebuilt here via internal/core because the
// helper is unexported across the package boundary.

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/core"
	"github.com/nrp-embed/nrp/internal/loadgen"
	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/serve"
)

const (
	serveBenchN    = 100_000
	serveBenchDim  = 64
	serveBenchK    = 10
	serveBenchConc = 16
	// serveBenchZipf skews sources hard enough that concurrent workers
	// collide on hot nodes — the regime coalescing's dedup is built for
	// (and the realistic one: serving traffic on hub-heavy graphs).
	serveBenchZipf  = 1.5
	serveBenchPhase = 2 * time.Second
)

// serveBenchEmbedding reconstructs bench_test.go's serving fixture:
// Gaussian factors with Y's row norms decaying as a power law.
func serveBenchEmbedding() *core.Embedding {
	rng := rand.New(rand.NewSource(42))
	emb := &core.Embedding{
		X: matrix.GaussianDense(serveBenchN, serveBenchDim, rng),
		Y: matrix.GaussianDense(serveBenchN, serveBenchDim, rng),
	}
	for v, rank := range rng.Perm(serveBenchN) {
		emb.Y.ScaleRow(v, math.Pow(1+float64(rank), -0.5))
	}
	return emb
}

// serveBenchRecord is the BENCH_serve.json schema consumed by
// internal/benchgate.
type serveBenchRecord struct {
	N               int                              `json:"n"`
	Dim             int                              `json:"dim"`
	K               int                              `json:"k"`
	Concurrency     int                              `json:"concurrency"`
	ZipfS           float64                          `json:"zipf_s"`
	PhaseSec        float64                          `json:"phase_sec"`
	DirectQPS       float64                          `json:"direct_qps"`
	CoalescedQPS    float64                          `json:"coalesced_qps"`
	CoalesceSpeedup float64                          `json:"coalesce_speedup"`
	MixedQPS        float64                          `json:"mixed_qps"`
	Errors5xx       int64                            `json:"errors_5xx"`
	Endpoints       map[string]loadgen.EndpointStats `json:"endpoints"`
}

// runServePhase boots a server with the given config and drives one load
// phase against it.
func runServePhase(b *testing.B, s nrp.Searcher, cfg serve.Config, lcfg loadgen.Config) *loadgen.Report {
	b.Helper()
	ts := httptest.NewServer(serve.NewServer(s, cfg).Handler())
	defer ts.Close()
	lcfg.BaseURL = ts.URL
	report, err := loadgen.Run(context.Background(), lcfg)
	if err != nil {
		b.Fatal(err)
	}
	if report.Errors5xx > 0 || report.TransportErrors > 0 {
		b.Fatalf("load phase saw %d 5xx / %d transport errors", report.Errors5xx, report.TransportErrors)
	}
	return report
}

// BenchmarkServeLoad measures the HTTP serving stack under concurrent
// Zipf-skewed load, three phases over the same quantized index: single-u
// /v1/topk without coalescing, the same traffic with coalescing (the
// gated speedup), then a mixed topk+score workload for the latency
// quantile record. Writes BENCH_serve.json itself — TestMain lives in
// package nrp and cannot see this phase structure.
func BenchmarkServeLoad(b *testing.B) {
	s, err := nrp.BuildIndex(serveBenchEmbedding(), nrp.WithBackend(nrp.BackendQuantized))
	if err != nil {
		b.Fatal(err)
	}
	base := loadgen.Config{
		Duration:    serveBenchPhase,
		Concurrency: serveBenchConc,
		K:           serveBenchK,
		Mix:         loadgen.Mix{TopK: 1},
		ZipfS:       serveBenchZipf,
		Seed:        42,
	}

	b.ResetTimer()
	direct := runServePhase(b, s, serve.Config{Backend: "quantized"}, base)
	coalesced := runServePhase(b, s, serve.Config{Backend: "quantized", Coalesce: true}, base)

	mixedCfg := base
	mixedCfg.Mix = loadgen.Mix{TopK: 0.8, Score: 0.2}
	mixed := runServePhase(b, s, serve.Config{Backend: "quantized", Coalesce: true}, mixedCfg)
	b.StopTimer()

	speedup := coalesced.AchievedQPS / direct.AchievedQPS
	rec := serveBenchRecord{
		N:               serveBenchN,
		Dim:             serveBenchDim,
		K:               serveBenchK,
		Concurrency:     serveBenchConc,
		ZipfS:           serveBenchZipf,
		PhaseSec:        serveBenchPhase.Seconds(),
		DirectQPS:       direct.AchievedQPS,
		CoalescedQPS:    coalesced.AchievedQPS,
		CoalesceSpeedup: speedup,
		MixedQPS:        mixed.AchievedQPS,
		Errors5xx:       direct.Errors5xx + coalesced.Errors5xx + mixed.Errors5xx,
		Endpoints:       make(map[string]loadgen.EndpointStats),
	}
	for name, ep := range mixed.Endpoints {
		rec.Endpoints[name] = *ep
	}
	raw, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}

	b.ReportMetric(direct.AchievedQPS, "direct-qps")
	b.ReportMetric(coalesced.AchievedQPS, "coalesced-qps")
	b.ReportMetric(speedup, "coalesce-x")
	b.Logf("direct %.0f qps, coalesced %.0f qps (%.2fx), mixed %.0f qps; topk p99 %v",
		direct.AchievedQPS, coalesced.AchievedQPS, speedup, mixed.AchievedQPS,
		time.Duration(mixed.Endpoints["topk"].P99Us)*time.Microsecond)
}
