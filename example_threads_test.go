package nrp_test

import (
	"context"
	"fmt"
	"log"

	"github.com/nrp-embed/nrp"
)

// ExampleWithThreads embeds a graph on a bounded thread budget and reads
// the engine's thread accounting back from the run stats. One WithThreads
// value configures the whole stack: it is accepted by the embedding
// pipeline (as a RunOption) and by BuildIndex (as an IndexOption).
func ExampleWithThreads() {
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 600, M: 3000, Communities: 4, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 16

	// Build the embedding on exactly 2 worker threads. The default (no
	// WithThreads, or WithThreads(0)) uses every core; results across
	// thread counts agree to floating-point reassociation error, and
	// repeated runs at a fixed count are bit-identical.
	emb, stats, err := nrp.EmbedCtx(context.Background(), g, opt, nrp.WithThreads(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("threads:", stats.Threads)

	// The same option bounds index-build preprocessing.
	s, err := nrp.BuildIndex(emb, nrp.WithBackend(nrp.BackendQuantized), nrp.WithThreads(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("indexed:", s.N())
	// Output:
	// threads: 2
	// indexed: 600
}
