package nrp

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// recallAt computes |got ∩ want| / |want| over the node ids.
func recallAt(got, want []Neighbor) float64 {
	if len(want) == 0 {
		return 1
	}
	in := make(map[int]bool, len(want))
	for _, nb := range want {
		in[nb.Node] = true
	}
	hits := 0
	for _, nb := range got {
		if in[nb.Node] {
			hits++
		}
	}
	return float64(hits) / float64(len(want))
}

// TestBackendsMatchExact is the cross-backend contract: on an SBM
// embedding, the pruned backend must reproduce the exact backend's top-k
// bit-for-bit, and the quantized backend must hold aggregate recall@k of
// at least 0.99 with exact (re-ranked) scores on the hits.
func TestBackendsMatchExact(t *testing.T) {
	emb := testEmbedding(t, 600)
	ctx := context.Background()
	exact := NewIndex(emb)
	rng := rand.New(rand.NewSource(11))

	cases := []struct {
		name      string
		backend   Backend
		shards    int
		minRecall float64
		exactTies bool // results must equal the exact backend's exactly
		extra     []IndexOption
	}{
		{"exact/1shard", BackendExact, 1, 1, true, nil},
		{"exact/4shards", BackendExact, 4, 1, true, nil},
		{"pruned/1shard", BackendPruned, 1, 1, true, nil},
		{"pruned/4shards", BackendPruned, 4, 1, true, nil},
		{"quantized/1shard", BackendQuantized, 1, 0.99, false, nil},
		{"quantized/4shards", BackendQuantized, 4, 0.99, false, nil},
		{"hnsw", BackendHNSW, 1, 0.95, false, nil},
		{"hnsw/quantcoarse", BackendHNSW, 1, 0.95, false,
			[]IndexOption{WithHNSWQuantized(true), WithRerank(4)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]IndexOption{WithBackend(tc.backend), WithShards(tc.shards)}, tc.extra...)
			s, err := BuildIndex(emb, opts...)
			if err != nil {
				t.Fatal(err)
			}
			var hits, total float64
			for trial := 0; trial < 25; trial++ {
				u := rng.Intn(emb.N())
				k := 1 + rng.Intn(15)
				want, err := exact.TopK(ctx, u, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := s.TopK(ctx, u, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("u=%d k=%d: got %d results, want %d", u, k, len(got), len(want))
				}
				if tc.exactTies {
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("u=%d k=%d rank %d: got %+v want %+v", u, k, i, got[i], want[i])
						}
					}
				}
				hits += recallAt(got, want) * float64(len(want))
				total += float64(len(want))
			}
			if recall := hits / total; recall < tc.minRecall {
				t.Fatalf("aggregate recall %.4f < %.2f", recall, tc.minRecall)
			}
		})
	}
}

// TestBackendQueryStats pins the instrumentation semantics per backend.
func TestBackendQueryStats(t *testing.T) {
	emb := testEmbedding(t, 400)
	ctx := context.Background()
	n := emb.N()

	for _, backend := range []Backend{BackendExact, BackendQuantized, BackendPruned, BackendHNSW} {
		s, err := BuildIndex(emb, WithBackend(backend), WithShards(4))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.TopKMany(ctx, []int{3, 77}, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 2 {
			t.Fatalf("%v: %d results", backend, len(res))
		}
		for _, r := range res {
			st := r.Stats
			switch backend {
			case BackendExact:
				if st.Scanned != n-1 || st.Pruned != 0 || st.Reranked != 0 {
					t.Fatalf("exact stats %+v", st)
				}
			case BackendQuantized:
				if st.Scanned != n-1 || st.Reranked == 0 || st.Reranked > 4*10*4 {
					t.Fatalf("quantized stats %+v", st)
				}
			case BackendPruned:
				// Scanned candidates + pruned positions must cover the space
				// (the self node is skipped without being counted as either).
				if st.Scanned+st.Pruned != n-1 && st.Scanned+st.Pruned != n {
					t.Fatalf("pruned stats %+v don't cover n=%d", st, n)
				}
			case BackendHNSW:
				// The graph search scores only the nodes the beam visits;
				// no pruning counters, no rerank without the quantized
				// coarse stage.
				if st.Scanned == 0 || st.Pruned != 0 || st.Reranked != 0 {
					t.Fatalf("hnsw stats %+v", st)
				}
			}
			if st.Elapsed <= 0 {
				t.Fatalf("%v: no elapsed time recorded", backend)
			}
			if len(r.Neighbors) != 10 {
				t.Fatalf("%v: %d neighbors", backend, len(r.Neighbors))
			}
		}
	}
}

// TestTopKManyMatchesTopK checks batch answers equal single-query answers
// and that batch validation uses the typed sentinels.
func TestTopKManyMatchesTopK(t *testing.T) {
	emb := testEmbedding(t, 300)
	ctx := context.Background()
	for _, backend := range []Backend{BackendExact, BackendQuantized, BackendPruned, BackendHNSW} {
		s, err := BuildIndex(emb, WithBackend(backend), WithShards(3))
		if err != nil {
			t.Fatal(err)
		}
		us := []int{0, 5, 299, 123, 5}
		res, err := s.TopKMany(ctx, us, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range us {
			want, err := s.TopK(ctx, u, 7)
			if err != nil {
				t.Fatal(err)
			}
			if res[i].Source != u {
				t.Fatalf("%v: result %d source %d", backend, i, res[i].Source)
			}
			for j := range want {
				if res[i].Neighbors[j] != want[j] {
					t.Fatalf("%v u=%d rank %d: batch %+v single %+v", backend, u, j, res[i].Neighbors[j], want[j])
				}
			}
		}
		if _, err := s.TopKMany(ctx, []int{0, 300}, 7); !errors.Is(err, ErrNodeOutOfRange) {
			t.Fatalf("%v: out-of-range batch error = %v", backend, err)
		}
		if _, err := s.TopKMany(ctx, []int{0}, 0); !errors.Is(err, ErrInvalidK) {
			t.Fatalf("%v: k=0 batch error = %v", backend, err)
		}
		if empty, err := s.TopKMany(ctx, nil, 5); err != nil || len(empty) != 0 {
			t.Fatalf("%v: empty batch: %v %v", backend, empty, err)
		}
	}
}

// TestTypedSentinelErrors pins the satellite contract: invalid queries
// report ErrInvalidK / ErrNodeOutOfRange through errors.Is on every
// backend and entry point.
func TestTypedSentinelErrors(t *testing.T) {
	emb := testEmbedding(t, 50)
	ctx := context.Background()
	for _, backend := range []Backend{BackendExact, BackendQuantized, BackendPruned, BackendHNSW} {
		s, err := BuildIndex(emb, WithBackend(backend))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.TopK(ctx, -1, 5); !errors.Is(err, ErrNodeOutOfRange) {
			t.Fatalf("%v: negative source error = %v", backend, err)
		}
		if _, err := s.TopK(ctx, 50, 5); !errors.Is(err, ErrNodeOutOfRange) {
			t.Fatalf("%v: out-of-range source error = %v", backend, err)
		}
		if _, err := s.TopK(ctx, 0, 0); !errors.Is(err, ErrInvalidK) {
			t.Fatalf("%v: k=0 error = %v", backend, err)
		}
		if _, err := s.ScoreMany(ctx, []Pair{{0, 50}}); !errors.Is(err, ErrNodeOutOfRange) {
			t.Fatalf("%v: ScoreMany error = %v", backend, err)
		}
	}
}

// TestConcurrentQueriesSharedIndex hammers one shared Searcher per
// backend from many goroutines mixing TopK, TopKMany and ScoreMany —
// the -race CI job turns any unsynchronized state into a failure.
func TestConcurrentQueriesSharedIndex(t *testing.T) {
	emb := testEmbedding(t, 300)
	ctx := context.Background()
	exact := NewIndex(emb, IndexOptions{Workers: 1})
	want := make(map[int][]Neighbor)
	for u := 0; u < 8; u++ {
		nbrs, err := exact.TopK(ctx, u, 5)
		if err != nil {
			t.Fatal(err)
		}
		want[u] = nbrs
	}

	for _, backend := range []Backend{BackendExact, BackendQuantized, BackendPruned, BackendHNSW} {
		s, err := BuildIndex(emb, WithBackend(backend), WithShards(4))
		if err != nil {
			t.Fatal(err)
		}
		exactBackend := backend == BackendExact || backend == BackendPruned
		var wg sync.WaitGroup
		errc := make(chan error, 64)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for iter := 0; iter < 20; iter++ {
					u := (g + iter) % 8
					nbrs, err := s.TopK(ctx, u, 5)
					if err != nil {
						errc <- err
						return
					}
					if exactBackend {
						for i := range nbrs {
							if nbrs[i] != want[u][i] {
								errc <- errors.New("concurrent TopK diverged from sequential answer")
								return
							}
						}
					}
					if _, err := s.TopKMany(ctx, []int{u, (u + 1) % 8}, 5); err != nil {
						errc <- err
						return
					}
					if _, err := s.ScoreMany(ctx, []Pair{{u, (u + 3) % 300}}); err != nil {
						errc <- err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatalf("%v: %v", backend, err)
		}
	}
}

// TestIndexSnapshotRoundTrip saves each backend and reloads it, requiring
// identical answers, preserved configuration, and working overrides.
func TestIndexSnapshotRoundTrip(t *testing.T) {
	emb := testEmbedding(t, 250)
	ctx := context.Background()
	// Each backend with the serving options that are valid for it
	// (WithRerank only where an approximate scoring pass exists).
	cases := []struct {
		backend Backend
		extra   []IndexOption
	}{
		{BackendExact, nil},
		{BackendQuantized, []IndexOption{WithRerank(5)}},
		{BackendPruned, nil},
		{BackendHNSW, []IndexOption{WithEfSearch(120)}},
		{BackendHNSW, []IndexOption{WithHNSWQuantized(true), WithRerank(5)}},
	}
	for _, tc := range cases {
		backend := tc.backend
		opts := append([]IndexOption{WithBackend(backend), WithShards(3), WithIncludeSelf(true)}, tc.extra...)
		s, err := BuildIndex(emb, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SaveIndex(&buf, s); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadIndex(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if loaded.N() != emb.N() {
			t.Fatalf("%v: loaded N=%d", backend, loaded.N())
		}
		if b, ok := loaded.(interface{ Backend() Backend }); !ok || b.Backend() != backend {
			t.Fatalf("%v: loaded backend mismatch", backend)
		}
		for _, u := range []int{0, 17, 249} {
			want, err := s.TopK(ctx, u, 9)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.TopK(ctx, u, 9)
			if err != nil {
				t.Fatal(err)
			}
			// Bit-identical answers prove the embedding, backend payload and
			// IncludeSelf/rerank configuration all survived the round trip.
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v u=%d rank %d: loaded %+v built %+v", backend, u, i, got[i], want[i])
				}
			}
		}

		// Overrides apply; changing the backend is rejected.
		if _, err := LoadIndex(bytes.NewReader(buf.Bytes()), WithShards(8)); err != nil {
			t.Fatalf("%v: shard override failed: %v", backend, err)
		}
		other := BackendExact
		if backend == BackendExact {
			other = BackendPruned
		}
		if _, err := LoadIndex(bytes.NewReader(buf.Bytes()), WithBackend(other)); err == nil {
			t.Fatalf("%v: backend override accepted", backend)
		}
	}

	// Corrupt magic is rejected.
	if _, err := LoadIndex(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestSnapshotShardPortability pins that a defaulted shard count is not
// baked into the snapshot (the serving host re-derives it), while an
// explicit WithShards choice is persisted.
func TestSnapshotShardPortability(t *testing.T) {
	emb := testEmbedding(t, 60)
	shardField := func(snap []byte) int64 {
		// Header layout: magic(4) version(8) backend(8) shards(8) ...
		return int64(binary.LittleEndian.Uint64(snap[20:28]))
	}
	defIx, err := BuildIndex(emb) // shards defaulted to GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveIndex(&buf, defIx); err != nil {
		t.Fatal(err)
	}
	if got := shardField(buf.Bytes()); got != 0 {
		t.Fatalf("defaulted shards persisted as %d, want 0", got)
	}

	expIx, err := BuildIndex(emb, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := SaveIndex(&buf, expIx); err != nil {
		t.Fatal(err)
	}
	if got := shardField(buf.Bytes()); got != 3 {
		t.Fatalf("explicit shards persisted as %d, want 3", got)
	}

	// The v1 constructor's explicit Workers choice round-trips the same
	// way as WithShards.
	buf.Reset()
	if err := SaveIndex(&buf, NewIndex(emb, IndexOptions{Workers: 5})); err != nil {
		t.Fatal(err)
	}
	if got := shardField(buf.Bytes()); got != 5 {
		t.Fatalf("NewIndex Workers persisted as %d, want 5", got)
	}
}

// TestLoadIndexRejectsShuffledPermutation pins that a pruned snapshot
// whose permutation is bijective but not in decreasing-norm order is
// rejected: the early-exit bound would silently drop results otherwise.
func TestLoadIndexRejectsShuffledPermutation(t *testing.T) {
	emb := testEmbedding(t, 80)
	s, err := BuildIndex(emb, WithBackend(BackendPruned))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveIndex(&buf, s); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	// The permutation is the trailing n int32s; swap the first (highest
	// norm) and last (lowest norm) entries.
	permOff := len(snap) - 80*4
	first := binary.LittleEndian.Uint32(snap[permOff:])
	last := binary.LittleEndian.Uint32(snap[len(snap)-4:])
	binary.LittleEndian.PutUint32(snap[permOff:], last)
	binary.LittleEndian.PutUint32(snap[len(snap)-4:], first)
	if _, err := LoadIndex(bytes.NewReader(snap)); err == nil {
		t.Fatal("shuffled norm permutation accepted")
	}
}

// TestLoadIndexCorruptHeader feeds implausible headers and expects clean
// errors, not panics or huge allocations.
func TestLoadIndexCorruptHeader(t *testing.T) {
	emb := testEmbedding(t, 30)
	s, err := BuildIndex(emb)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveIndex(&buf, s); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	// Field offsets after the 4-byte magic, 8 bytes each:
	// version backend shards rerank self n dim.
	corrupt := func(offset int, val uint64) []byte {
		b := append([]byte(nil), base...)
		binary.LittleEndian.PutUint64(b[4+8*offset:], val)
		return b
	}
	cases := map[string][]byte{
		"overflowing dim": corrupt(6, 1<<62),
		"overflowing n":   corrupt(5, 1<<62),
		"n*dim overflow":  corrupt(5, 1<<33),
		"negative shards": corrupt(2, ^uint64(0)),
		"gigantic rerank": corrupt(3, 1<<40),
		"unknown backend": corrupt(1, 77),
		"future version":  corrupt(0, 99),
	}
	for name, snap := range cases {
		if _, err := LoadIndex(bytes.NewReader(snap)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

// TestBuildIndexValidation is the table-driven contract for the
// constructor's error paths: out-of-range values report
// ErrInvalidIndexOption, backend-meaningless options report
// ErrIndexOptionConflict, and sensible configurations build.
func TestBuildIndexValidation(t *testing.T) {
	emb := testEmbedding(t, 40)
	cases := []struct {
		name string
		opts []IndexOption
		want error // nil means the build must succeed
	}{
		{"defaults", nil, nil},
		{"shards equal n", []IndexOption{WithShards(40)}, nil},
		{"hnsw tuned", []IndexOption{WithBackend(BackendHNSW), WithHNSWM(8),
			WithHNSWEfConstruction(40), WithEfSearch(32), WithHNSWSeed(7)}, nil},
		{"hnsw quantized rerank", []IndexOption{WithBackend(BackendHNSW),
			WithHNSWQuantized(true), WithRerank(3)}, nil},
		{"hnsw seed rows disabled", []IndexOption{WithBackend(BackendHNSW),
			WithHNSWSeedRows(0)}, nil},
		{"hnsw seed rows tuned", []IndexOption{WithBackend(BackendHNSW),
			WithHNSWSeedRows(128)}, nil},

		{"negative shards", []IndexOption{WithShards(-1)}, ErrInvalidIndexOption},
		{"shards exceed n", []IndexOption{WithShards(41)}, ErrInvalidIndexOption},
		{"rerank zero", []IndexOption{WithBackend(BackendQuantized), WithRerank(0)}, ErrInvalidIndexOption},
		{"unknown backend", []IndexOption{WithBackend(Backend(99))}, ErrInvalidIndexOption},
		{"hnsw M too small", []IndexOption{WithBackend(BackendHNSW), WithHNSWM(1)}, ErrInvalidIndexOption},
		{"efConstruction zero", []IndexOption{WithBackend(BackendHNSW), WithHNSWEfConstruction(0)}, ErrInvalidIndexOption},
		{"efSearch zero", []IndexOption{WithBackend(BackendHNSW), WithEfSearch(0)}, ErrInvalidIndexOption},
		{"negative seed rows", []IndexOption{WithBackend(BackendHNSW), WithHNSWSeedRows(-1)}, ErrInvalidIndexOption},

		{"rerank on exact", []IndexOption{WithRerank(4)}, ErrIndexOptionConflict},
		{"rerank on pruned", []IndexOption{WithBackend(BackendPruned), WithRerank(4)}, ErrIndexOptionConflict},
		{"rerank on unquantized hnsw", []IndexOption{WithBackend(BackendHNSW), WithRerank(4)}, ErrIndexOptionConflict},
		{"efSearch on exact", []IndexOption{WithEfSearch(64)}, ErrIndexOptionConflict},
		{"efSearch on pruned", []IndexOption{WithBackend(BackendPruned), WithEfSearch(64)}, ErrIndexOptionConflict},
		{"hnsw M on quantized", []IndexOption{WithBackend(BackendQuantized), WithHNSWM(8)}, ErrIndexOptionConflict},
		{"hnsw seed on pruned", []IndexOption{WithBackend(BackendPruned), WithHNSWSeed(9)}, ErrIndexOptionConflict},
		{"hnsw quant on exact", []IndexOption{WithHNSWQuantized(true)}, ErrIndexOptionConflict},
		{"seed rows on quantized", []IndexOption{WithBackend(BackendQuantized), WithHNSWSeedRows(64)}, ErrIndexOptionConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := BuildIndex(emb, tc.opts...)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("BuildIndex: %v", err)
				}
				if s.N() != emb.N() {
					t.Fatalf("built index N=%d", s.N())
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("BuildIndex error = %v, want %v", err, tc.want)
			}
		})
	}

	if _, err := ParseBackend("bogus"); err == nil {
		t.Fatal("bogus backend name parsed")
	}
	for _, name := range []string{"exact", "quantized", "pruned", "hnsw"} {
		b, err := ParseBackend(name)
		if err != nil || b.String() != name {
			t.Fatalf("ParseBackend(%q) = %v, %v", name, b, err)
		}
	}
}
