package ppr

import (
	"math"
	"math/rand"
	"testing"

	"github.com/nrp-embed/nrp/internal/graph"
)

func TestMonteCarloMatchesExact(t *testing.T) {
	g := fig1(t)
	exact, err := Exact(g, 0.15, 400)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for _, u := range []int{0, 4, 8} {
		est, err := MonteCarlo(g, u, 0.15, 200000, rng)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N; v++ {
			if d := math.Abs(est[v] - exact.At(u, v)); d > 0.01 {
				t.Fatalf("MC π(%d,%d) off by %v", u, v, d)
			}
		}
	}
}

func TestMonteCarloMassConservation(t *testing.T) {
	g := fig1(t)
	rng := rand.New(rand.NewSource(6))
	est, err := MonteCarlo(g, 0, 0.2, 50000, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, p := range est {
		if p < 0 {
			t.Fatal("negative estimate")
		}
		total += p
	}
	// No dangling nodes in fig1: every walk terminates somewhere.
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("mass %v != 1", total)
	}
}

func TestMonteCarloDanglingLosesMass(t *testing.T) {
	g, err := graph.New(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	est, err := MonteCarlo(g, 0, 0.15, 100000, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := est[0] + est[1] + est[2]
	// Exact terminated mass is α + α(1−α) + α(1−α)² ≈ 0.386.
	want := 0.15 + 0.15*0.85 + 0.15*0.85*0.85
	if math.Abs(total-want) > 0.01 {
		t.Fatalf("terminated mass %v, want ≈%v", total, want)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	g := fig1(t)
	rng := rand.New(rand.NewSource(8))
	if _, err := MonteCarlo(g, 0, 0, 10, rng); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	if _, err := MonteCarlo(g, -1, 0.15, 10, rng); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := MonteCarlo(g, 0, 0.15, 0, rng); err == nil {
		t.Fatal("0 walks accepted")
	}
	if _, err := MonteCarlo(g, 0, 0.15, 10, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}
