package ppr

import "github.com/nrp-embed/nrp/internal/graph"

// ForwardPush computes an approximate single-source PPR vector by local
// push (Andersen et al.), the primitive STRAP uses to build its sparse
// proximity matrix. Residual mass at node v is pushed while
// r(v) > rmax·max(dout(v),1); on return every estimate satisfies
// |π(u,v) − p(v)| ≤ rmax·dout(v) under the termination-walk semantics of
// Eq. (1). Dangling nodes absorb α of their residual, matching the
// truncated-series definition used elsewhere in this repository.
//
// The returned map contains only nonzero estimates, keeping STRAP's memory
// proportional to 1/rmax rather than n.
func ForwardPush(g *graph.Graph, u int, alpha, rmax float64) map[int32]float64 {
	p := make(map[int32]float64)
	r := map[int32]float64{int32(u): 1}
	queue := []int32{int32(u)}
	inQueue := map[int32]bool{int32(u): true}

	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		res := r[v]
		deg := g.OutDeg(int(v))
		threshold := rmax * float64(max(deg, 1))
		if res <= threshold {
			continue
		}
		delete(r, v)
		if deg == 0 {
			// Walk halts here: α of the residual terminates, the rest is
			// lost exactly as in the truncated power iteration.
			p[v] += alpha * res
			continue
		}
		p[v] += alpha * res
		share := (1 - alpha) * res / float64(deg)
		for _, w := range g.OutNeighbors(int(v)) {
			r[w] += share
			if !inQueue[w] && r[w] > rmax*float64(max(g.OutDeg(int(w)), 1)) {
				inQueue[w] = true
				queue = append(queue, w)
			}
		}
	}
	return p
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
