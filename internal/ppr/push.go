package ppr

import "github.com/nrp-embed/nrp/internal/graph"

// PushResult carries a local-push PPR approximation along with the work
// and error accounting the dynamic-refresh subsystem budgets against.
type PushResult struct {
	// P maps nodes to their nonzero PPR estimates.
	P map[int32]float64
	// Residual is the walk mass left un-pushed at termination, i.e. the
	// mass the estimates in P do not account for.
	Residual float64
	// Pushes is the number of push operations performed.
	Pushes int
}

// ForwardPush computes an approximate single-source PPR vector by local
// push (Andersen et al.), the primitive STRAP uses to build its sparse
// proximity matrix. Residual mass at node v is pushed while
// r(v) > rmax·max(dout(v),1); on return every estimate satisfies
// |π(u,v) − p(v)| ≤ rmax·dout(v) under the termination-walk semantics of
// Eq. (1). Dangling nodes absorb α of their residual, matching the
// truncated-series definition used elsewhere in this repository.
//
// The returned map contains only nonzero estimates, keeping STRAP's memory
// proportional to 1/rmax rather than n.
func ForwardPush(g *graph.Graph, u int, alpha, rmax float64) map[int32]float64 {
	return ForwardPushFrom(g, u, alpha, rmax).P
}

// ForwardPushFrom is ForwardPush with the leftover residual mass and push
// count reported, so callers maintaining embeddings incrementally can
// track how much PPR mass their local updates leave unexplained.
func ForwardPushFrom(g *graph.Graph, u int, alpha, rmax float64) PushResult {
	p := make(map[int32]float64)
	r := map[int32]float64{int32(u): 1}
	queue := []int32{int32(u)}
	inQueue := map[int32]bool{int32(u): true}
	pushes := 0

	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		res := r[v]
		deg := g.OutDeg(int(v))
		threshold := rmax * float64(max(deg, 1))
		if res <= threshold {
			continue
		}
		delete(r, v)
		pushes++
		if deg == 0 {
			// Walk halts here: α of the residual terminates, the rest is
			// lost exactly as in the truncated power iteration.
			p[v] += alpha * res
			continue
		}
		p[v] += alpha * res
		share := (1 - alpha) * res / float64(deg)
		for _, w := range g.OutNeighbors(int(v)) {
			r[w] += share
			if !inQueue[w] && r[w] > rmax*float64(max(g.OutDeg(int(w)), 1)) {
				inQueue[w] = true
				queue = append(queue, w)
			}
		}
	}
	residual := 0.0
	for _, res := range r {
		residual += res
	}
	return PushResult{P: p, Residual: residual, Pushes: pushes}
}

// BackwardPush computes an approximate single-target PPR column by reverse
// local push (Andersen et al.): the returned estimates satisfy
// p(x) ≈ π(x,t) for every source x, with pointwise error
// |π(x,t) − p(x)| ≤ rmax (the leftover residuals r(w) each weigh in by
// π(x,w) ≤ 1). This is the target-side dual of ForwardPush, used to patch
// backward embedding rows when a node's in-neighborhood changes.
func BackwardPush(g *graph.Graph, t int, alpha, rmax float64) PushResult {
	p := make(map[int32]float64)
	r := map[int32]float64{int32(t): 1}
	queue := []int32{int32(t)}
	inQueue := map[int32]bool{int32(t): true}
	pushes := 0

	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		inQueue[w] = false
		res := r[w]
		if res <= rmax {
			continue
		}
		delete(r, w)
		pushes++
		p[w] += alpha * res
		share := (1 - alpha) * res
		for _, x := range g.InNeighbors(int(w)) {
			// dout(x) ≥ 1: the arc x→w exists.
			r[x] += share / float64(g.OutDeg(int(x)))
			if !inQueue[x] && r[x] > rmax {
				inQueue[x] = true
				queue = append(queue, x)
			}
		}
	}
	residual := 0.0
	for _, res := range r {
		residual += res
	}
	return PushResult{P: p, Residual: residual, Pushes: pushes}
}
