package ppr

import (
	"testing"

	"github.com/nrp-embed/nrp/internal/graph"
)

// TestForwardPushVsPowerIteration checks the push guarantee against the
// truncated power iteration ground truth: every estimate must
// underestimate π(u,v) by at most rmax·max(dout(v),1) (the termination
// threshold), and never overestimate it.
func TestForwardPushVsPowerIteration(t *testing.T) {
	g, err := graph.GenSBM(graph.SBMConfig{N: 150, M: 900, Communities: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const (
		alpha = 0.15
		rmax  = 1e-4
		iters = 400 // (1-α)^400 is far below rmax: effectively exact
		eps   = 1e-12
	)
	for _, u := range []int{0, 17, 63, 149} {
		exact, err := SingleSource(g, u, alpha, iters)
		if err != nil {
			t.Fatal(err)
		}
		res := ForwardPushFrom(g, u, alpha, rmax)
		for v := 0; v < g.N; v++ {
			p := res.P[int32(v)]
			diff := exact[v] - p
			if diff < -eps {
				t.Fatalf("source %d: push overestimates π(%d,%d): %g > %g", u, u, v, p, exact[v])
			}
			bound := rmax * float64(max(g.OutDeg(v), 1))
			if diff > bound+eps {
				t.Fatalf("source %d: |π(%d,%d) − p| = %g exceeds rmax·deg bound %g", u, u, v, diff, bound)
			}
		}
		if res.Residual < 0 || res.Residual >= 1 {
			t.Fatalf("source %d: residual mass %g outside [0,1)", u, res.Residual)
		}
		if res.Pushes == 0 {
			t.Fatalf("source %d: no pushes performed", u)
		}
	}
}

// TestBackwardPushVsPowerIteration checks the reverse-push column
// estimates p(x) ≈ π(x,t) against per-source power iteration, with the
// pointwise rmax error bound.
func TestBackwardPushVsPowerIteration(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g, err := graph.GenErdosRenyi(90, 450, directed, 8)
		if err != nil {
			t.Fatal(err)
		}
		const (
			alpha = 0.15
			rmax  = 1e-4
			iters = 400
			eps   = 1e-12
		)
		for _, target := range []int{3, 41, 88} {
			res := BackwardPush(g, target, alpha, rmax)
			for x := 0; x < g.N; x++ {
				exact, err := SingleSource(g, x, alpha, iters)
				if err != nil {
					t.Fatal(err)
				}
				p := res.P[int32(x)]
				diff := exact[target] - p
				if diff < -eps {
					t.Fatalf("directed=%v target %d: overestimate π(%d,%d): %g > %g",
						directed, target, x, target, p, exact[target])
				}
				if diff > rmax+eps {
					t.Fatalf("directed=%v target %d: |π(%d,%d) − p| = %g exceeds rmax %g",
						directed, target, x, target, diff, rmax)
				}
			}
		}
	}
}

// TestWorkspacePushMatchesMapPush: the array-backed workspace pushes are
// the same algorithm as the map-based ones — identical estimates and
// residual, push after push on a reused workspace.
func TestWorkspacePushMatchesMapPush(t *testing.T) {
	g, err := graph.GenSBM(graph.SBMConfig{N: 200, M: 1200, Communities: 4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	const (
		alpha = 0.15
		rmax  = 1e-4
	)
	ws := NewWorkspace(g.N)
	for _, u := range []int{0, 33, 107, 199} {
		want := ForwardPushFrom(g, u, alpha, rmax)
		resid := ws.ForwardPush(g, u, alpha, rmax)
		if diff := resid - want.Residual; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("source %d: residual %g vs map %g", u, resid, want.Residual)
		}
		got := 0
		for _, v := range ws.Touched() {
			if p := ws.P(v); p != 0 {
				got++
				if p != want.P[v] {
					t.Fatalf("source %d node %d: %g vs map %g", u, v, p, want.P[v])
				}
			}
		}
		if got != len(want.P) {
			t.Fatalf("source %d: %d nonzero estimates vs map %d", u, got, len(want.P))
		}

		wantB := BackwardPush(g, u, alpha, rmax)
		residB := ws.BackwardPush(g, u, alpha, rmax)
		if diff := residB - wantB.Residual; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("target %d: residual %g vs map %g", u, residB, wantB.Residual)
		}
		for _, v := range ws.Touched() {
			if p := ws.P(v); p != 0 && p != wantB.P[v] {
				t.Fatalf("target %d node %d: %g vs map %g", u, v, p, wantB.P[v])
			}
		}
	}
}
