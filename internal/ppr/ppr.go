// Package ppr computes personalized PageRank (PPR) values.
//
// The paper defines π(u,v) as the probability that a random walk from u —
// which at each step terminates with probability α and otherwise moves to a
// uniform out-neighbor — terminates at v, i.e. Π = Σ_{i≥0} α(1−α)^i P^i
// (Eq. 1). This package provides exact truncated-series evaluation (full
// matrix and single source) used for validation and Table 1, and the
// forward-push local approximation used by the STRAP baseline.
package ppr

import (
	"fmt"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
)

// DefaultIters truncates the series when (1−α)^i is negligible for the
// α = 0.15 regime the paper uses.
const DefaultIters = 100

// Exact computes the full PPR matrix Π truncated after iters terms of
// Eq. (1). It materializes an n×n dense matrix, so it is intended for
// small graphs (validation, the Fig-1 example).
func Exact(g *graph.Graph, alpha float64, iters int) (*matrix.Dense, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	if iters <= 0 {
		iters = DefaultIters
	}
	n := g.N
	pi := matrix.NewDense(n, n)
	for u := 0; u < n; u++ {
		row, err := SingleSource(g, u, alpha, iters)
		if err != nil {
			return nil, err
		}
		copy(pi.Row(u), row)
	}
	return pi, nil
}

// SingleSource computes the PPR row π(u,·) truncated after iters terms.
// Cost is O(iters·m) time, O(n) space.
func SingleSource(g *graph.Graph, u int, alpha float64, iters int) ([]float64, error) {
	if u < 0 || u >= g.N {
		return nil, fmt.Errorf("ppr: source %d outside [0,%d)", u, g.N)
	}
	return MultiSource(g, []int32{int32(u)}, alpha, iters)
}

// MultiSource computes the seed-set PPR vector π_S = (1/|S|)·Σ_{s∈S}
// π(s,·) truncated after iters terms of Eq. (1), i.e. the stationary
// distribution of an α-terminating walk whose start is drawn uniformly
// from the seed set. Duplicate seeds sum their starting mass. This is the
// exact ground truth the online FORA engine (internal/fora) is tested
// against. Cost is O(iters·m) time, O(n) space.
func MultiSource(g *graph.Graph, seeds []int32, alpha float64, iters int) ([]float64, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("ppr: seed set is empty")
	}
	for _, s := range seeds {
		if s < 0 || int(s) >= g.N {
			return nil, fmt.Errorf("ppr: seed %d outside [0,%d)", s, g.N)
		}
	}
	if iters <= 0 {
		iters = DefaultIters
	}
	n := g.N
	pi := make([]float64, n)
	cur := make([]float64, n)
	next := make([]float64, n)
	w := 1 / float64(len(seeds))
	for _, s := range seeds {
		cur[s] += w
	}
	invDeg := g.InvOutDegrees()
	adj := g.Adj
	for i := 0; i <= iters; i++ {
		for v, p := range cur {
			pi[v] += alpha * p
		}
		if i == iters {
			break
		}
		// next = (1−α) · Pᵀ · cur, i.e. one step of the walk distribution.
		for v := range next {
			next[v] = 0
		}
		for v, p := range cur {
			if p == 0 || invDeg[v] == 0 {
				continue
			}
			w := (1 - alpha) * p * invDeg[v]
			for ptr := adj.RowPtr[v]; ptr < adj.RowPtr[v+1]; ptr++ {
				next[adj.ColIdx[ptr]] += w
			}
		}
		cur, next = next, cur
	}
	return pi, nil
}

// TruncatedMatrix computes Π′ = Σ_{i=1..l1} α(1−α)^i P^i (Eq. 3), the
// matrix ApproxPPR factorizes implicitly; dense, for validation only.
func TruncatedMatrix(g *graph.Graph, alpha float64, l1 int) (*matrix.Dense, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	if l1 <= 0 {
		return nil, fmt.Errorf("ppr: l1 must be positive, got %d", l1)
	}
	n := g.N
	p := g.Transition().ToDense()
	out := matrix.NewDense(n, n)
	cur := matrix.Identity(n)
	coeff := 1.0
	for i := 1; i <= l1; i++ {
		cur = matrix.Mul(cur, p)
		coeff *= 1 - alpha
		term := cur.Clone()
		term.Scale(alpha * coeff)
		out.AddInPlace(term)
	}
	return out, nil
}

func checkAlpha(alpha float64) error {
	if alpha <= 0 || alpha >= 1 {
		return fmt.Errorf("ppr: alpha must be in (0,1), got %v", alpha)
	}
	return nil
}
