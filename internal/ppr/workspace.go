package ppr

import "github.com/nrp-embed/nrp/internal/graph"

// nodeRec interleaves the per-node state the push inner loop touches on
// every edge relaxation — the residual, the node's cached out-degree (for
// the degree-scaled threshold), and the marked/queued flags — into one
// 16-byte record. Relaxing an edge then costs a single random cache-line
// fetch instead of four (residual array, marked array, queue-membership
// array, and the CSR row pointer for the degree): local push is miss-bound
// on graphs whose node ids carry no locality, so this is the difference
// between one and four outstanding misses per frontier edge.
type nodeRec struct {
	r    float64
	deg  float32 // out-degree under the bound graph; exact below 2^24
	flag uint32
}

const (
	flagMarked = 1 << 0 // node is in touched
	flagQueued = 1 << 1 // node is in the frontier queue
)

// degClamp is max(deg, 1) — dangling nodes use threshold rmax·1.
func degClamp(d float32) float64 {
	if d < 1 {
		return 1
	}
	return float64(d)
}

// Workspace is a reusable buffer set for array-backed local push. The
// map-based ForwardPush/BackwardPush keep memory proportional to the
// pushed support — right for one-shot calls on massive graphs — but pay
// hashing on every residual update. A Workspace pays O(n) once and then
// serves any number of pushes with O(support) reset cost, which is the
// profile of incremental embedding refresh: thousands of pushes per
// refresh over the same graph. Not safe for concurrent use; give each
// worker its own.
type Workspace struct {
	rec     []nodeRec
	p       []float64
	touched []int32 // nodes with nonzero p or r since the last reset
	queue   []int32
	g       *graph.Graph // graph whose out-degrees are cached in rec
	pmax    float64      // largest estimate written since the last reset
	resid   float64      // leftover residual mass after the last forward drain
	ops     int64        // monotonic count of node-push operations across resets
}

// NewWorkspace returns a workspace for graphs of n nodes.
func NewWorkspace(n int) *Workspace {
	return &Workspace{
		rec: make([]nodeRec, n),
		p:   make([]float64, n),
	}
}

// bind refreshes the cached out-degrees when the workspace first serves a
// graph (or a different graph than last time — e.g. after a dynamic-update
// rebuild swaps in a new snapshot).
func (ws *Workspace) bind(g *graph.Graph) {
	if ws.g == g {
		return
	}
	for i := range ws.rec {
		ws.rec[i].deg = float32(g.OutDeg(i))
	}
	ws.g = g
}

// reset clears only the entries touched by the previous push.
func (ws *Workspace) reset() {
	for _, v := range ws.touched {
		ws.rec[v].r = 0
		ws.rec[v].flag = 0
		ws.p[v] = 0
	}
	ws.touched = ws.touched[:0]
	ws.queue = ws.queue[:0]
	ws.pmax = 0
	ws.resid = 0
}

// Touched returns the nodes with a nonzero estimate or residual from the
// last push, aliasing internal storage (valid until the next push).
func (ws *Workspace) Touched() []int32 { return ws.touched }

// Ops returns the monotonic count of node-push operations (queue pops
// whose residual cleared the threshold) performed by this workspace over
// its lifetime. It survives resets, so callers can difference it around a
// push to measure work — the early-termination accounting of the FORA
// build estimator.
func (ws *Workspace) Ops() int64 { return ws.ops }

// P returns node v's estimate from the last push.
func (ws *Workspace) P(v int32) float64 { return ws.p[v] }

// PMax returns the largest estimate written since the last reset — the
// current p_1 of the pushed row. The FORA build estimator uses it as a
// free upper bound on the k-th largest estimate: whenever even δ = θ·p_1
// would demand more walks than the per-row budget, the exact k-th
// selection cannot terminate the row either and is skipped.
func (ws *Workspace) PMax() float64 { return ws.pmax }

// R returns node v's leftover residual from the last push. By the push
// invariant π = p + Σ_w π(·,w)·r(w) and π(x,w) ≥ α·1{x=w}, the corrected
// estimate p(v) + α·r(v) is still an underestimate of π but strictly
// tighter than p alone — callers projecting pushed rows should use it.
func (ws *Workspace) R(v int32) float64 { return ws.rec[v].r }

// ForwardPush runs the forward local push of ForwardPushFrom into the
// workspace and returns the leftover residual mass. Estimates are read
// with Touched/P and stay valid until the next push on this workspace.
func (ws *Workspace) ForwardPush(g *graph.Graph, u int, alpha, rmax float64) (residual float64) {
	return ws.ForwardPushSeeds(g, []int32{int32(u)}, alpha, rmax)
}

// ForwardPushSeeds runs the forward local push from a seed set: each seed
// starts with residual 1/|seeds| so the converged estimate approximates
// the seed-set PPR π_S = (1/|S|)·Σ_{s∈S} π(s,·). Duplicate seeds sum
// their mass (callers wanting uniform set semantics should dedupe first).
// An empty seed set is a no-op returning zero residual.
func (ws *Workspace) ForwardPushSeeds(g *graph.Graph, seeds []int32, alpha, rmax float64) (residual float64) {
	ws.reset()
	ws.bind(g)
	if len(seeds) == 0 {
		return 0
	}
	w := 1 / float64(len(seeds))
	total := 0.0
	for _, s := range seeds {
		rs := &ws.rec[s]
		rs.r += w
		total += w
		if rs.flag&flagMarked == 0 {
			rs.flag |= flagMarked
			ws.touched = append(ws.touched, s)
		}
		if rs.flag&flagQueued == 0 {
			rs.flag |= flagQueued
			ws.queue = append(ws.queue, s)
		}
	}

	return ws.drainForward(g, alpha, rmax, total)
}

// ForwardPushResume continues the previous forward push at a smaller
// threshold: it re-enqueues every touched node whose residual exceeds the
// new degree-scaled rmax and drains the frontier, refining the same
// estimate in place without redoing converged work. The coarse-to-fine
// refinement loop of the FORA build estimator is its caller. Returns the
// leftover residual mass at the new threshold.
func (ws *Workspace) ForwardPushResume(g *graph.Graph, alpha, rmax float64) (residual float64) {
	ws.queue = ws.queue[:0]
	for _, v := range ws.touched {
		rv := &ws.rec[v]
		if rv.flag&flagQueued == 0 && rv.r > rmax*degClamp(rv.deg) {
			rv.flag |= flagQueued
			ws.queue = append(ws.queue, v)
		}
	}
	return ws.drainForward(g, alpha, rmax, ws.resid)
}

// drainForward runs the forward frontier to exhaustion at threshold rmax
// and returns the leftover residual, tracked incrementally from rsum (the
// residual mass entering the drain): a push on a node of positive degree
// converts α·res of its residual into estimate mass, a push on a dangling
// node retires all of res — so the leftover needs no O(touched) re-sum per
// refinement round.
//
// Drain by index rather than re-slicing the front: queue[1:] would
// advance the slice base, so reset's queue[:0] could never give the
// backing array back to append — every push would regrow it from
// scratch instead of reusing capacity.
func (ws *Workspace) drainForward(g *graph.Graph, alpha, rmax, rsum float64) (residual float64) {
	for head := 0; head < len(ws.queue); head++ {
		v := ws.queue[head]
		rv := &ws.rec[v]
		rv.flag &^= flagQueued
		res := rv.r
		deg := rv.deg
		if res <= rmax*degClamp(deg) {
			continue
		}
		ws.ops++
		rv.r = 0
		pv := ws.p[v] + alpha*res
		ws.p[v] = pv
		if pv > ws.pmax {
			ws.pmax = pv
		}
		if deg == 0 {
			rsum -= res
			continue
		}
		rsum -= alpha * res
		share := (1 - alpha) * res / float64(deg)
		for _, w := range g.OutNeighbors(int(v)) {
			rw := &ws.rec[w]
			rw.r += share
			if rw.flag&flagMarked == 0 {
				rw.flag |= flagMarked
				ws.touched = append(ws.touched, w)
			}
			if rw.flag&flagQueued == 0 && rw.r > rmax*degClamp(rw.deg) {
				rw.flag |= flagQueued
				ws.queue = append(ws.queue, w)
			}
		}
	}
	if rsum < 0 {
		rsum = 0
	}
	ws.resid = rsum
	return rsum
}

// BackwardPush runs the reverse local push of BackwardPush into the
// workspace and returns the leftover residual mass; estimates satisfy
// p(x) ≈ π(x,t) with pointwise error at most rmax.
func (ws *Workspace) BackwardPush(g *graph.Graph, t int, alpha, rmax float64) (residual float64) {
	ws.reset()
	ws.bind(g)
	rt := &ws.rec[t]
	rt.r = 1
	rt.flag = flagMarked | flagQueued
	ws.touched = append(ws.touched, int32(t))
	ws.queue = append(ws.queue, int32(t))

	for head := 0; head < len(ws.queue); head++ {
		w := ws.queue[head]
		rw := &ws.rec[w]
		rw.flag &^= flagQueued
		res := rw.r
		if res <= rmax {
			continue
		}
		ws.ops++
		rw.r = 0
		pw := ws.p[w] + alpha*res
		ws.p[w] = pw
		if pw > ws.pmax {
			ws.pmax = pw
		}
		share := (1 - alpha) * res
		for _, x := range g.InNeighbors(int(w)) {
			rx := &ws.rec[x]
			// x has an out-arc to w, so its cached out-degree is ≥ 1.
			rx.r += share / float64(rx.deg)
			if rx.flag&flagMarked == 0 {
				rx.flag |= flagMarked
				ws.touched = append(ws.touched, x)
			}
			if rx.flag&flagQueued == 0 && rx.r > rmax {
				rx.flag |= flagQueued
				ws.queue = append(ws.queue, x)
			}
		}
	}
	for _, v := range ws.touched {
		residual += ws.rec[v].r
	}
	return residual
}
