package ppr

import "github.com/nrp-embed/nrp/internal/graph"

// Workspace is a reusable buffer set for array-backed local push. The
// map-based ForwardPush/BackwardPush keep memory proportional to the
// pushed support — right for one-shot calls on massive graphs — but pay
// hashing on every residual update. A Workspace pays O(n) once and then
// serves any number of pushes with O(support) reset cost, which is the
// profile of incremental embedding refresh: thousands of pushes per
// refresh over the same graph. Not safe for concurrent use; give each
// worker its own.
type Workspace struct {
	p, r    []float64
	touched []int32 // nodes with nonzero p or r since the last reset
	marked  []bool  // whether a node is already in touched
	queue   []int32
	inQueue []bool
}

// NewWorkspace returns a workspace for graphs of n nodes.
func NewWorkspace(n int) *Workspace {
	return &Workspace{
		p:       make([]float64, n),
		r:       make([]float64, n),
		marked:  make([]bool, n),
		inQueue: make([]bool, n),
	}
}

// reset clears only the entries touched by the previous push.
func (ws *Workspace) reset() {
	for _, v := range ws.touched {
		ws.p[v], ws.r[v] = 0, 0
		ws.marked[v] = false
	}
	ws.touched = ws.touched[:0]
	ws.queue = ws.queue[:0]
}

func (ws *Workspace) mark(v int32) {
	if !ws.marked[v] {
		ws.marked[v] = true
		ws.touched = append(ws.touched, v)
	}
}

// Touched returns the nodes with a nonzero estimate or residual from the
// last push, aliasing internal storage (valid until the next push).
func (ws *Workspace) Touched() []int32 { return ws.touched }

// P returns node v's estimate from the last push.
func (ws *Workspace) P(v int32) float64 { return ws.p[v] }

// R returns node v's leftover residual from the last push. By the push
// invariant π = p + Σ_w π(·,w)·r(w) and π(x,w) ≥ α·1{x=w}, the corrected
// estimate p(v) + α·r(v) is still an underestimate of π but strictly
// tighter than p alone — callers projecting pushed rows should use it.
func (ws *Workspace) R(v int32) float64 { return ws.r[v] }

// ForwardPush runs the forward local push of ForwardPushFrom into the
// workspace and returns the leftover residual mass. Estimates are read
// with Touched/P and stay valid until the next push on this workspace.
func (ws *Workspace) ForwardPush(g *graph.Graph, u int, alpha, rmax float64) (residual float64) {
	return ws.ForwardPushSeeds(g, []int32{int32(u)}, alpha, rmax)
}

// ForwardPushSeeds runs the forward local push from a seed set: each seed
// starts with residual 1/|seeds| so the converged estimate approximates
// the seed-set PPR π_S = (1/|S|)·Σ_{s∈S} π(s,·). Duplicate seeds sum
// their mass (callers wanting uniform set semantics should dedupe first).
// An empty seed set is a no-op returning zero residual.
func (ws *Workspace) ForwardPushSeeds(g *graph.Graph, seeds []int32, alpha, rmax float64) (residual float64) {
	ws.reset()
	if len(seeds) == 0 {
		return 0
	}
	w := 1 / float64(len(seeds))
	for _, s := range seeds {
		ws.r[s] += w
		ws.mark(s)
		if !ws.inQueue[s] {
			ws.inQueue[s] = true
			ws.queue = append(ws.queue, s)
		}
	}

	// Drain by index rather than re-slicing the front: queue[1:] would
	// advance the slice base, so reset's queue[:0] could never give the
	// backing array back to append — every push would regrow it from
	// scratch instead of reusing capacity.
	for head := 0; head < len(ws.queue); head++ {
		v := ws.queue[head]
		ws.inQueue[v] = false
		res := ws.r[v]
		deg := g.OutDeg(int(v))
		if res <= rmax*float64(max(deg, 1)) {
			continue
		}
		ws.r[v] = 0
		ws.p[v] += alpha * res
		if deg == 0 {
			continue
		}
		share := (1 - alpha) * res / float64(deg)
		for _, w := range g.OutNeighbors(int(v)) {
			ws.r[w] += share
			ws.mark(w)
			if !ws.inQueue[w] && ws.r[w] > rmax*float64(max(g.OutDeg(int(w)), 1)) {
				ws.inQueue[w] = true
				ws.queue = append(ws.queue, w)
			}
		}
	}
	for _, v := range ws.touched {
		residual += ws.r[v]
	}
	return residual
}

// BackwardPush runs the reverse local push of BackwardPush into the
// workspace and returns the leftover residual mass; estimates satisfy
// p(x) ≈ π(x,t) with pointwise error at most rmax.
func (ws *Workspace) BackwardPush(g *graph.Graph, t int, alpha, rmax float64) (residual float64) {
	ws.reset()
	ws.r[t] = 1
	ws.mark(int32(t))
	ws.queue = append(ws.queue, int32(t))
	ws.inQueue[t] = true

	for head := 0; head < len(ws.queue); head++ {
		w := ws.queue[head]
		ws.inQueue[w] = false
		res := ws.r[w]
		if res <= rmax {
			continue
		}
		ws.r[w] = 0
		ws.p[w] += alpha * res
		share := (1 - alpha) * res
		for _, x := range g.InNeighbors(int(w)) {
			ws.r[x] += share / float64(g.OutDeg(int(x)))
			ws.mark(x)
			if !ws.inQueue[x] && ws.r[x] > rmax {
				ws.inQueue[x] = true
				ws.queue = append(ws.queue, x)
			}
		}
	}
	for _, v := range ws.touched {
		residual += ws.r[v]
	}
	return residual
}
