package ppr

import (
	"fmt"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/graph"
)

// MonteCarlo estimates the single-source PPR vector π(u,·) by simulating
// α-terminating walks: each walk stops at the current node with
// probability α, else moves to a uniform out-neighbor (halting at dangling
// nodes, where the residual mass is lost — matching Eq. (1)'s truncated
// semantics used across this package).
//
// This is the sampling primitive the walk-based competitors (APP, VERSE)
// train on; here it doubles as an independent cross-check of the exact and
// forward-push implementations. The estimate of each entry is within
// O(√(log(1/δ)/walks)) of the truth with probability 1−δ by standard
// Chernoff bounds.
func MonteCarlo(g *graph.Graph, u int, alpha float64, walks int, rng *rand.Rand) ([]float64, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	if u < 0 || u >= g.N {
		return nil, fmt.Errorf("ppr: source %d outside [0,%d)", u, g.N)
	}
	if walks <= 0 {
		return nil, fmt.Errorf("ppr: walks must be positive, got %d", walks)
	}
	if rng == nil {
		return nil, fmt.Errorf("ppr: rng is required")
	}
	counts := make([]float64, g.N)
	inc := 1 / float64(walks)
	for w := 0; w < walks; w++ {
		cur := int32(u)
		for {
			if rng.Float64() < alpha {
				counts[cur] += inc
				break
			}
			nbrs := g.OutNeighbors(int(cur))
			if len(nbrs) == 0 {
				// Dangling: the walk halts without terminating anywhere;
				// its mass is lost, as in the truncated power iteration.
				break
			}
			cur = nbrs[rng.Intn(len(nbrs))]
		}
	}
	return counts, nil
}
