package ppr

import (
	"math"
	"testing"

	"github.com/nrp-embed/nrp/internal/graph"
)

// fig1 builds the paper's Fig-1 example graph (see DESIGN.md for the
// recovered edge set).
func fig1(t testing.TB) *graph.Graph {
	t.Helper()
	raw := [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 4}, {2, 3}, {2, 4}, {3, 4},
		{4, 5}, {5, 6}, {6, 7}, {7, 8},
	}
	edges := make([]graph.Edge, len(raw))
	for i, e := range raw {
		edges[i] = graph.Edge{U: e[0], V: e[1]}
	}
	g, err := graph.New(9, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTable1 reproduces the paper's Table 1 (α = 0.15) for the three rows
// that are internally consistent in the paper (v2, v4, v9); values are
// printed there to three decimals. The paper's v7 row is inconsistent with
// its own graph (see DESIGN.md) and is excluded.
func TestTable1(t *testing.T) {
	g := fig1(t)
	pi, err := Exact(g, 0.15, 300)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int][]float64{
		1: {0.15, 0.269, 0.188, 0.118, 0.17, 0.048, 0.029, 0.019, 0.008},  // π(v2,·)
		3: {0.15, 0.118, 0.188, 0.269, 0.17, 0.048, 0.029, 0.019, 0.008},  // π(v4,·)
		8: {0.02, 0.024, 0.031, 0.024, 0.056, 0.083, 0.168, 0.311, 0.282}, // π(v9,·)
	}
	for u, row := range want {
		for v, w := range row {
			if d := math.Abs(pi.At(u, v) - w); d > 0.0011 {
				t.Errorf("π(v%d,v%d) = %.4f, paper %.3f (Δ=%.4f)", u+1, v+1, pi.At(u, v), w, d)
			}
		}
	}
}

func TestSingleSourceMatchesExact(t *testing.T) {
	g := fig1(t)
	pi, err := Exact(g, 0.2, 150)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N; u++ {
		row, err := SingleSource(g, u, 0.2, 150)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N; v++ {
			if math.Abs(row[v]-pi.At(u, v)) > 1e-12 {
				t.Fatalf("SingleSource(%d)[%d] mismatch", u, v)
			}
		}
	}
}

func TestPPRRowsSumToOne(t *testing.T) {
	g := fig1(t)
	pi, err := Exact(g, 0.15, 500)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N; u++ {
		s := 0.0
		for v := 0; v < g.N; v++ {
			s += pi.At(u, v)
			if pi.At(u, v) < 0 {
				t.Fatalf("negative PPR at (%d,%d)", u, v)
			}
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", u, s)
		}
	}
}

func TestPPRSelfTerminationLowerBound(t *testing.T) {
	g := fig1(t)
	alpha := 0.3
	pi, err := Exact(g, alpha, 200)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N; u++ {
		if pi.At(u, u) < alpha {
			t.Fatalf("π(%d,%d)=%v < α", u, u, pi.At(u, u))
		}
	}
}

func TestPPRDanglingNode(t *testing.T) {
	// 0 -> 1 -> 2, node 2 dangling.
	g, err := graph.New(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	alpha := 0.15
	row, err := SingleSource(g, 0, alpha, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Closed form: π(0,0)=α, π(0,1)=α(1−α), π(0,2)=α(1−α)².
	want := []float64{alpha, alpha * (1 - alpha), alpha * (1 - alpha) * (1 - alpha)}
	for v, w := range want {
		if math.Abs(row[v]-w) > 1e-12 {
			t.Fatalf("π(0,%d)=%v want %v", v, row[v], w)
		}
	}
	// Total mass < 1 because the walk halts at the dangling node.
	if s := row[0] + row[1] + row[2]; s >= 1 {
		t.Fatalf("dangling walk mass %v should be < 1", s)
	}
}

func TestTruncatedMatrixAgainstDefinition(t *testing.T) {
	g := fig1(t)
	alpha, l1 := 0.15, 20
	trunc, err := TruncatedMatrix(g, alpha, l1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Exact(g, alpha, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Π′ = Π − αI − tail; off-diagonal entries must agree within the tail
	// bound (1−α)^{l1+1}.
	tail := math.Pow(1-alpha, float64(l1+1))
	for u := 0; u < g.N; u++ {
		for v := 0; v < g.N; v++ {
			if u == v {
				continue
			}
			if d := math.Abs(trunc.At(u, v) - full.At(u, v)); d > tail {
				t.Fatalf("Π′(%d,%d) off by %v > tail %v", u, v, d, tail)
			}
		}
	}
	// Diagonal of Π′ excludes the αI term.
	for u := 0; u < g.N; u++ {
		if trunc.At(u, u) > full.At(u, u)-0.9*alpha {
			t.Fatalf("Π′ diagonal should drop αI: %v vs %v", trunc.At(u, u), full.At(u, u))
		}
	}
}

func TestForwardPushApproximatesExact(t *testing.T) {
	g := fig1(t)
	alpha, rmax := 0.15, 1e-7
	exact, err := Exact(g, alpha, 400)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N; u++ {
		approx := ForwardPush(g, u, alpha, rmax)
		for v := 0; v < g.N; v++ {
			if d := math.Abs(approx[int32(v)] - exact.At(u, v)); d > 1e-4 {
				t.Fatalf("push π(%d,%d) off by %v", u, v, d)
			}
		}
	}
}

func TestForwardPushUnderestimates(t *testing.T) {
	// Push reserves only part of the residual, so estimates never exceed
	// the exact values.
	g := fig1(t)
	exact, _ := Exact(g, 0.15, 400)
	for u := 0; u < g.N; u++ {
		approx := ForwardPush(g, u, 0.15, 1e-3)
		for v, p := range approx {
			if p > exact.At(u, int(v))+1e-9 {
				t.Fatalf("push overestimates π(%d,%d): %v > %v", u, v, p, exact.At(u, int(v)))
			}
		}
	}
}

func TestForwardPushSparsity(t *testing.T) {
	// On a larger graph a loose rmax should touch far fewer than n nodes.
	g, err := graph.GenSBM(graph.SBMConfig{N: 2000, M: 8000, Communities: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	approx := ForwardPush(g, 0, 0.15, 1e-2)
	if len(approx) == 0 || len(approx) > g.N/2 {
		t.Fatalf("push touched %d nodes of %d", len(approx), g.N)
	}
}

func TestPPRValidation(t *testing.T) {
	g := fig1(t)
	if _, err := Exact(g, 0, 10); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := Exact(g, 1, 10); err == nil {
		t.Fatal("alpha=1 accepted")
	}
	if _, err := SingleSource(g, -1, 0.15, 10); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := SingleSource(g, 99, 0.15, 10); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := TruncatedMatrix(g, 0.15, 0); err == nil {
		t.Fatal("l1=0 accepted")
	}
}

func TestPPRDirectedAsymmetry(t *testing.T) {
	g, err := graph.New(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}, true)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := Exact(g, 0.15, 300)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi.At(0, 1)-pi.At(1, 0)) < 1e-6 {
		t.Fatal("directed cycle should give asymmetric PPR")
	}
}
