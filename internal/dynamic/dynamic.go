// Package dynamic maintains an NRP embedding under streaming edge
// insertions and deletions — the workload of the paper's evolving
// VK/Digg snapshots (Table 4, Fig 9), served live instead of re-embedded
// offline.
//
// The Engine owns a graph and its embedding. ApplyUpdates applies a batch
// of edge updates to the graph immediately (an amortized CSR merge, see
// graph.AddEdges) and records which nodes were touched; Refresh brings
// the embedding back in sync under one of three policies:
//
//   - PolicyFull re-runs the whole NRP pipeline, warm-starting the BKSVD
//     factorizer from the previous run's singular factors.
//   - PolicyIncremental recomputes only the touched rows: a forward push
//     from each node whose out-neighborhood changed (and a backward push
//     into each node whose in-neighborhood changed) yields its new PPR
//     row/column, which is least-squares projected onto the fixed
//     opposite-side factor. When the accumulated unexplained PPR mass
//     exceeds Config.ResidualBudget, Refresh falls back to a (warm) full
//     recompute and resets the budget.
//   - PolicyStaleness skips refreshing entirely until the fraction of
//     changed arcs passes Config.StalenessThreshold, then refreshes
//     incrementally (with the same full-recompute fallback).
//
// Every successful Refresh installs a brand-new Embedding value; the
// previous one is never mutated, so serving indexes built over it stay
// consistent (RCU semantics — see nrp.LiveIndex).
package dynamic

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/nrp-embed/nrp/internal/core"
	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/par"
	"github.com/nrp-embed/nrp/internal/ppr"
)

// Op distinguishes edge insertion from edge removal.
type Op int

const (
	// OpInsert adds the edge to the graph.
	OpInsert Op = iota
	// OpRemove deletes the edge from the graph.
	OpRemove
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpRemove:
		return "remove"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// EdgeUpdate is one edge insertion or removal.
type EdgeUpdate struct {
	U, V int32
	Op   Op
}

// Policy selects how Refresh brings the embedding back in sync with the
// updated graph.
type Policy int

const (
	// PolicyIncremental patches touched rows by local push, falling back
	// to a full recompute when the residual budget is exhausted. The
	// zero value, and hence the default.
	PolicyIncremental Policy = iota
	// PolicyFull always re-runs the whole pipeline (warm-started).
	PolicyFull
	// PolicyStaleness skips refreshes while the fraction of changed arcs
	// stays under the staleness threshold, then refreshes incrementally.
	PolicyStaleness
)

// String names the policy as accepted by ParsePolicy.
func (p Policy) String() string {
	switch p {
	case PolicyFull:
		return "full"
	case PolicyIncremental:
		return "incremental"
	case PolicyStaleness:
		return "staleness"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy resolves a policy name ("full", "incremental", "staleness").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "full":
		return PolicyFull, nil
	case "incremental":
		return PolicyIncremental, nil
	case "staleness":
		return PolicyStaleness, nil
	}
	return 0, fmt.Errorf("dynamic: unknown refresh policy %q (want full, incremental or staleness)", s)
}

// Config tunes the refresh machinery; zero fields take the defaults noted
// per field.
type Config struct {
	// Policy selects the refresh strategy (default PolicyIncremental).
	Policy Policy
	// ResidualBudget caps the average per-row PPR mass that incremental
	// refreshes may leave unexplained before falling back to a full
	// recompute (which resets the accumulator). What accumulates is the
	// first-order mass of changed arcs divided by the node count — the
	// drift of rows the incremental patch does not touch. Push leftovers
	// are reported per refresh in Stats but not accumulated: patched
	// rows are recomputed fresh every time. Default 0.05.
	ResidualBudget float64
	// StalenessThreshold is the fraction of arcs changed since the last
	// refresh below which PolicyStaleness leaves the embedding stale.
	// Default 0.02.
	StalenessThreshold float64
	// PushRmax is the residual threshold of the forward/backward pushes
	// that patch touched rows. The pushed rows are least-squares
	// projected onto a rank-k′ factor anyway, so the factorization error
	// dominates long before push truncation does; the default 1e-3 keeps
	// push cost low without moving the projected rows measurably.
	PushRmax float64
	// WarmKrylovIters is the Krylov iteration count used when a full
	// recompute can warm-start from previous factors. Default 2.
	WarmKrylovIters int
}

const (
	defaultResidualBudget     = 0.05
	defaultStalenessThreshold = 0.02
	defaultPushRmax           = 1e-3
	defaultWarmKrylovIters    = 2
)

func (c Config) withDefaults() Config {
	if c.ResidualBudget == 0 {
		c.ResidualBudget = defaultResidualBudget
	}
	if c.StalenessThreshold == 0 {
		c.StalenessThreshold = defaultStalenessThreshold
	}
	if c.PushRmax == 0 {
		c.PushRmax = defaultPushRmax
	}
	if c.WarmKrylovIters == 0 {
		c.WarmKrylovIters = defaultWarmKrylovIters
	}
	return c
}

// Validate reports whether the configuration is usable (after defaults).
func (c Config) Validate() error {
	switch c.Policy {
	case PolicyFull, PolicyIncremental, PolicyStaleness:
	default:
		return fmt.Errorf("dynamic: unknown policy %d", int(c.Policy))
	}
	if c.ResidualBudget < 0 {
		return fmt.Errorf("dynamic: ResidualBudget must be non-negative, got %v", c.ResidualBudget)
	}
	if c.StalenessThreshold < 0 || c.StalenessThreshold >= 1 {
		return fmt.Errorf("dynamic: StalenessThreshold must be in [0,1), got %v", c.StalenessThreshold)
	}
	if c.PushRmax <= 0 || c.PushRmax >= 1 {
		return fmt.Errorf("dynamic: PushRmax must be in (0,1), got %v", c.PushRmax)
	}
	if c.WarmKrylovIters < 0 {
		return fmt.Errorf("dynamic: WarmKrylovIters must be non-negative, got %d", c.WarmKrylovIters)
	}
	return nil
}

// Mode reports which refresh path ran.
type Mode string

const (
	// ModeFull is a full pipeline recompute (possibly warm-started).
	ModeFull Mode = "full"
	// ModeIncremental patched only the touched rows.
	ModeIncremental Mode = "incremental"
	// ModeSkipped left the embedding untouched (nothing pending, or the
	// staleness policy decided the drift is still tolerable).
	ModeSkipped Mode = "skipped"
)

// Stats instruments one Refresh call.
type Stats struct {
	// Mode is the refresh path taken.
	Mode Mode
	// WarmStart reports whether a full recompute reused previous factors.
	WarmStart bool
	// Fallback reports that an incremental refresh was promoted to a full
	// recompute because the residual budget was exhausted.
	Fallback bool
	// TouchedNodes is the number of embedding rows recomputed (forward
	// plus backward) by an incremental refresh.
	TouchedNodes int
	// PushMass is the total PPR mass accounted for by the local pushes.
	PushMass float64
	// ResidualMass is the walk mass the pushes left unexplained this
	// refresh (their leftover residuals).
	ResidualMass float64
	// AccumResidual is the running per-row unexplained mass since the
	// last full recompute (compared against Config.ResidualBudget).
	AccumResidual float64
	// ArcsChanged is the number of adjacency arcs inserted or removed
	// since the previous refresh.
	ArcsChanged int
	// Wall is the refresh wall time.
	Wall time.Duration
}

// Engine maintains an NRP embedding over a mutating graph. All methods
// are safe for concurrent use; readers obtain immutable snapshots while
// writers serialize behind one mutex.
type Engine struct {
	mu  sync.Mutex
	opt core.Options
	cfg Config
	// threads is the WithThreads budget captured at New; pool is the
	// shared parallel engine for incremental row patching, and every
	// full refresh re-runs the pipeline with the same budget.
	threads int
	pool    *par.Pool

	g      *graph.Graph
	emb    *core.Embedding // current folded embedding; never mutated in place
	fw, bw []float64       // learned node weights of the last full recompute
	prevV  *matrix.Dense   // factor block for warm-starting BKSVD

	touchedFwd  map[int32]struct{} // nodes whose out-neighborhood changed
	touchedBwd  map[int32]struct{} // nodes whose in-neighborhood changed
	pendingUps  int                // edge updates applied since last refresh
	pendingArcs int                // arcs changed since last refresh
	arcMass     float64            // first-order PPR mass of pending arc changes
	accum       float64            // unexplained mass since last full recompute
	last        Stats

	walkInv WalkInvalidator // optional walk-index staleness sink
}

// WalkInvalidator receives the nodes whose out-neighborhoods changed in
// an update batch, so a FORA+ walk index serving the same live graph can
// mark their cached walks stale instead of silently serving pre-update
// endpoints. fora.WalkIndex (with maintenance enabled) implements it; the
// interface keeps this package free of a fora dependency. Implementations
// must be safe for concurrent use. Invalidate returns how many nodes were
// newly marked.
type WalkInvalidator interface {
	Invalidate(nodes []int32) int
}

// New embeds g from scratch and returns an engine maintaining that
// embedding under updates. The initial embed is a cold full refresh; its
// stats are available via LastStats.
func New(ctx context.Context, g *graph.Graph, opt core.Options, cfg Config, opts ...core.RunOption) (*Engine, error) {
	if err := opt.Validate(); err != nil {
		return nil, fmt.Errorf("dynamic: invalid embedding options: %w", err)
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	threads := core.NewRunConfig(opts).Threads
	e := &Engine{
		opt:        opt,
		cfg:        cfg,
		threads:    threads,
		pool:       par.New(threads),
		g:          g,
		touchedFwd: make(map[int32]struct{}),
		touchedBwd: make(map[int32]struct{}),
	}
	var st Stats
	start := time.Now()
	if err := e.fullRefresh(ctx, &st, opts...); err != nil {
		return nil, err
	}
	st.Wall = time.Since(start)
	e.last = st
	return e, nil
}

// Graph returns the current graph snapshot (immutable; updates install a
// new one).
func (e *Engine) Graph() *graph.Graph {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.g
}

// Embedding returns the current embedding snapshot (immutable; refreshes
// install a new one).
func (e *Engine) Embedding() *core.Embedding {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.emb
}

// Pending reports the number of edge updates applied to the graph since
// the embedding was last refreshed.
func (e *Engine) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pendingUps
}

// Staleness reports the fraction of adjacency arcs changed since the last
// refresh — the quantity PolicyStaleness thresholds on.
func (e *Engine) Staleness() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.staleness()
}

func (e *Engine) staleness() float64 {
	return float64(e.pendingArcs) / float64(max(e.g.Arcs(), 1))
}

// LastStats returns the stats of the most recent refresh (including the
// initial embed).
func (e *Engine) LastStats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last
}

// Config returns the engine's resolved configuration.
func (e *Engine) Config() Config {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cfg
}

// SetWalkInvalidator registers inv (nil to unregister) to be notified,
// from inside ApplyUpdates, of every node whose out-neighborhood changed.
// Wire the serving stack's walk index here so live /v1/ppr queries stop
// resampling stale walks for updated nodes.
func (e *Engine) SetWalkInvalidator(inv WalkInvalidator) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.walkInv = inv
}

// ApplyUpdates applies a batch of edge insertions and removals to the
// graph, leaving the embedding stale until the next Refresh. Consecutive
// updates with the same Op are grouped into one amortized CSR merge, so
// batch order is respected (an insert followed by a remove of the same
// edge cancels out). Updates naming nodes outside [0, N) fail the whole
// batch before any of it is applied; self-loops, duplicate edges and
// removals of absent edges are skipped. Returns the number of updates
// that actually changed the graph.
func (e *Engine) ApplyUpdates(ctx context.Context, ups []EdgeUpdate) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, up := range ups {
		if int(up.U) < 0 || int(up.U) >= e.g.N || int(up.V) < 0 || int(up.V) >= e.g.N {
			return 0, fmt.Errorf("dynamic: update %v(%d,%d) outside [0,%d)", up.Op, up.U, up.V, e.g.N)
		}
		if up.Op != OpInsert && up.Op != OpRemove {
			return 0, fmt.Errorf("dynamic: unknown op %d on edge (%d,%d)", int(up.Op), up.U, up.V)
		}
	}
	applied := 0
	for lo := 0; lo < len(ups); {
		if err := ctx.Err(); err != nil {
			return applied, err
		}
		hi := lo + 1
		for hi < len(ups) && ups[hi].Op == ups[lo].Op {
			hi++
		}
		run := ups[lo:hi]
		lo = hi
		edges := make([]graph.Edge, len(run))
		for i, up := range run {
			edges[i] = graph.Edge{U: up.U, V: up.V}
		}
		var (
			ng      *graph.Graph
			changed []graph.Edge
			err     error
		)
		if run[0].Op == OpInsert {
			ng, changed, err = e.g.AddEdges(edges)
		} else {
			ng, changed, err = e.g.RemoveEdges(edges)
		}
		if err != nil {
			return applied, err
		}
		if len(changed) == 0 {
			continue // run was all no-ops: nothing touched, nothing charged
		}
		arcsPerEdge := 1
		if !ng.Directed {
			arcsPerEdge = 2
		}
		e.g = ng
		applied += len(changed)
		// Committed per run, not once at the end: an error or
		// cancellation in a later run must still leave the already-
		// applied changes counted as pending, or Pending()-gated
		// refreshes would never absorb them.
		e.pendingUps += len(changed)
		e.pendingArcs += len(changed) * arcsPerEdge
		for _, edge := range changed {
			e.touch(edge.U, edge.V)
			if !ng.Directed {
				e.touch(edge.V, edge.U)
			}
			// First-order mass of the changed arc: the weight a single
			// arc of u carries in Π′ = Σ α(1−α)^i P^i.
			e.arcMass += e.opt.Alpha * (1 - e.opt.Alpha) /
				float64(max(ng.OutDeg(int(edge.U)), 1))
		}
		if e.walkInv != nil {
			// Walks start from out-edges, so nodes whose out-lists
			// changed are the ones whose cached walks went stale: U
			// always, V too on undirected graphs (the reverse arc).
			stale := make([]int32, 0, len(changed)*arcsPerEdge)
			for _, edge := range changed {
				stale = append(stale, edge.U)
				if !ng.Directed {
					stale = append(stale, edge.V)
				}
			}
			e.walkInv.Invalidate(stale)
		}
	}
	return applied, nil
}

func (e *Engine) touch(src, dst int32) {
	e.touchedFwd[src] = struct{}{}
	e.touchedBwd[dst] = struct{}{}
}

// Refresh brings the embedding back in sync with the graph according to
// the configured policy, installing a fresh Embedding value on success.
// With nothing pending (or under the staleness threshold) it is a cheap
// no-op reporting ModeSkipped. Stats are returned even alongside an
// error when a refresh ran far enough to collect them.
func (e *Engine) Refresh(ctx context.Context, opts ...core.RunOption) (*Stats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	start := time.Now()
	st := &Stats{Mode: ModeSkipped, ArcsChanged: e.pendingArcs, AccumResidual: e.accum}
	defer func() {
		st.Wall = time.Since(start)
		e.last = *st
	}()
	if e.pendingArcs == 0 && e.pendingUps == 0 {
		return st, nil
	}

	switch e.cfg.Policy {
	case PolicyFull:
		return st, e.fullRefresh(ctx, st, opts...)
	case PolicyStaleness:
		if e.staleness() < e.cfg.StalenessThreshold {
			return st, nil
		}
		fallthrough
	default: // PolicyIncremental
		// Decide the fallback before doing incremental work: if the
		// pending first-order arc mass already blows the budget, go
		// straight to the full recompute.
		if e.accum+e.arcMass/float64(e.g.N) > e.cfg.ResidualBudget {
			st.Fallback = true
			return st, e.fullRefresh(ctx, st, opts...)
		}
		if err := e.incrementalRefresh(ctx, st); err != nil {
			return st, err
		}
		return st, nil
	}
}

// fullRefresh re-runs the whole NRP pipeline on the current graph,
// warm-starting the factorizer when previous factors exist, and resets
// all staleness accounting.
func (e *Engine) fullRefresh(ctx context.Context, st *Stats, opts ...core.RunOption) error {
	opt := e.opt
	warm := e.prevV != nil
	if warm && e.cfg.WarmKrylovIters > 0 {
		opt.KrylovIters = e.cfg.WarmKrylovIters
	}
	// The engine's thread budget rides first so a caller's explicit
	// WithThreads in opts still wins.
	opts = append([]core.RunOption{core.WithThreads(e.threads)}, opts...)
	base, v, _, err := core.ApproxPPRFactorsCtx(ctx, e.g, opt, e.prevV, opts...)
	if err != nil {
		return err
	}
	n := e.g.N
	fw := make([]float64, n)
	bw := make([]float64, n)
	for i := range fw {
		fw[i], bw[i] = 1, 1
	}
	if e.opt.L2 > 0 {
		fw, bw, _, err = core.LearnWeightsCtx(ctx, e.g, base, e.opt, opts...)
		if err != nil {
			return err
		}
	}
	folded := base.Clone()
	e.pool.For(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			folded.X.ScaleRow(i, fw[i])
			folded.Y.ScaleRow(i, bw[i])
		}
	})
	e.emb = folded
	e.fw, e.bw = fw, bw
	e.prevV = v
	e.resetPending()
	e.accum = 0
	st.Mode = ModeFull
	st.WarmStart = warm
	return nil
}

func (e *Engine) resetPending() {
	e.touchedFwd = make(map[int32]struct{})
	e.touchedBwd = make(map[int32]struct{})
	e.pendingUps, e.pendingArcs, e.arcMass = 0, 0, 0
}

// incrementalRefresh recomputes the touched rows only. Each touched
// source gets a forward push on the updated graph; the resulting PPR row
// (reweighted by the learned node weights, with the i=0 self term
// removed to match Π′) is least-squares projected onto the backward
// factor to give the node's new forward row — and symmetrically for
// touched targets via backward push onto the forward factor. Untouched
// rows and the learned weights are carried over; the mass this leaves
// unexplained is charged against the residual budget.
//
// Touched rows are independent, so the pushes run on all cores, each
// worker with its own array-backed push workspace writing to disjoint
// rows of the new embedding.
func (e *Engine) incrementalRefresh(ctx context.Context, st *Stats) error {
	old := e.emb
	projY, err := newProjector(matrix.GramPool(e.pool, old.Y))
	if err != nil {
		return fmt.Errorf("dynamic: backward Gram: %w", err)
	}
	projX, err := newProjector(matrix.GramPool(e.pool, old.X))
	if err != nil {
		return fmt.Errorf("dynamic: forward Gram: %w", err)
	}

	next := old.Clone()
	var pushMass, residMass float64
	for _, side := range []struct {
		nodes   map[int32]struct{}
		forward bool
	}{
		{e.touchedFwd, true},
		{e.touchedBwd, false},
	} {
		nodes := make([]int32, 0, len(side.nodes))
		for v := range side.nodes {
			nodes = append(nodes, v)
		}
		pm, rm, err := e.patchRows(ctx, next, nodes, side.forward, projX, projY)
		if err != nil {
			return err
		}
		pushMass += pm
		residMass += rm
	}

	st.Mode = ModeIncremental
	st.TouchedNodes = len(e.touchedFwd) + len(e.touchedBwd)
	st.PushMass = pushMass
	st.ResidualMass = residMass
	e.accum += e.arcMass / float64(e.g.N)
	st.AccumResidual = e.accum
	e.emb = next
	e.resetPending()
	return nil
}

// patchRows recomputes one side's touched rows into next, scheduled over
// the engine's shared worker pool (dynamic chunks: push cost is degree-
// skewed). Each worker keeps a private push workspace, reused across its
// chunks; every patched row belongs to exactly one node, so the writes
// are disjoint. The pool checks the context between chunk claims.
func (e *Engine) patchRows(ctx context.Context, next *core.Embedding, nodes []int32, forward bool, projX, projY *projector) (pushMass, residMass float64, err error) {
	if len(nodes) == 0 {
		return 0, 0, nil
	}
	alpha, rmax := e.opt.Alpha, e.cfg.PushRmax
	old := e.emb
	kp := old.Dim()
	type workerState struct {
		ws         *ppr.Workspace
		b, scratch []float64
	}
	var (
		states = make([]*workerState, e.pool.Workers())
		pms    = make([]float64, e.pool.Workers())
		rms    = make([]float64, e.pool.Workers())
	)
	err = e.pool.ForChunked(ctx, len(nodes), 16, func(w, lo, hi int) error {
		st := states[w]
		if st == nil {
			st = &workerState{
				ws:      ppr.NewWorkspace(e.g.N),
				b:       make([]float64, kp),
				scratch: make([]float64, kp),
			}
			states[w] = st
		}
		for i := lo; i < hi; i++ {
			u := nodes[i]
			if forward {
				// The forward threshold is degree-scaled (push while
				// r > rmax·deg), so a source of degree ≥ 1/rmax would
				// never push at all and its projected row would
				// collapse to zero. Cap the threshold per source so
				// the initial unit residual always pushes: one push
				// costs O(deg) and yields the first-order row.
				rmaxU := min(rmax, 1/(2*float64(max(e.g.OutDeg(int(u)), 1))))
				rms[w] += st.ws.ForwardPush(e.g, int(u), alpha, rmaxU)
			} else {
				rms[w] += st.ws.BackwardPush(e.g, int(u), alpha, rmax)
			}
			b := st.b
			for j := range b {
				b[j] = 0
			}
			for _, v := range st.ws.Touched() {
				// Residual-compensated estimate (see Workspace.R).
				pv := st.ws.P(v) + alpha*st.ws.R(v)
				if v == u {
					pv -= alpha // Π′ starts at i=1: drop the 0-step term
				}
				if pv == 0 {
					continue
				}
				pms[w] += pv
				if forward {
					matrix.Axpy(e.fw[u]*pv*e.bw[v], old.Y.Row(int(v)), b)
				} else {
					matrix.Axpy(e.fw[v]*pv*e.bw[u], old.X.Row(int(v)), b)
				}
			}
			if forward {
				projY.solveInto(b, st.scratch)
				copy(next.X.Row(int(u)), b)
			} else {
				projX.solveInto(b, st.scratch)
				copy(next.Y.Row(int(u)), b)
			}
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	for w := range pms {
		pushMass += pms[w]
		residMass += rms[w]
	}
	return pushMass, residMass, nil
}

// projector solves G·x = b for the k′×k′ Gram matrix G of an embedding
// factor via its eigendecomposition (a pseudo-inverse, so rank-deficient
// factors degrade gracefully instead of blowing up).
type projector struct {
	vecs *matrix.Dense // columns are eigenvectors
	inv  []float64     // 1/λ over the numerically nonzero spectrum
}

func newProjector(g *matrix.Dense) (*projector, error) {
	if g.Rows != g.Cols {
		return nil, fmt.Errorf("gram matrix is %dx%d", g.Rows, g.Cols)
	}
	vals, vecs := matrix.SymEigen(g)
	tol := 0.0
	for _, v := range vals {
		tol = max(tol, v)
	}
	tol *= 1e-12
	inv := make([]float64, len(vals))
	for i, v := range vals {
		if v > tol && v > 0 {
			inv[i] = 1 / v
		}
	}
	return &projector{vecs: vecs, inv: inv}, nil
}

// solveInto replaces b with G⁺·b, using scratch (same length) as buffer.
func (p *projector) solveInto(b, scratch []float64) {
	k := len(b)
	for j := 0; j < k; j++ {
		s := 0.0
		for i := 0; i < k; i++ {
			s += p.vecs.At(i, j) * b[i]
		}
		scratch[j] = s * p.inv[j]
	}
	for i := 0; i < k; i++ {
		s := 0.0
		for j := 0; j < k; j++ {
			s += p.vecs.At(i, j) * scratch[j]
		}
		b[i] = s
	}
}
