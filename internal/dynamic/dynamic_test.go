package dynamic

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/nrp-embed/nrp/internal/core"
	"github.com/nrp-embed/nrp/internal/eval"
	"github.com/nrp-embed/nrp/internal/graph"
)

func testOptions() core.Options {
	opt := core.DefaultOptions()
	opt.Dim = 32
	return opt
}

// evolvingFixture returns a base SBM snapshot plus future edges split into
// an "arriving" batch (applied as updates) and a "held-out" batch (the
// link-prediction test set).
func evolvingFixture(t *testing.T, n, m, mNew int) (g *graph.Graph, arriving, heldOut []graph.Edge) {
	t.Helper()
	old, newEdges, err := graph.GenEvolving(graph.EvolvingConfig{
		Base: graph.SBMConfig{N: n, M: m, Communities: 5, Seed: 3},
		MNew: mNew,
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	half := len(newEdges) / 2
	return old, newEdges[:half], newEdges[half:]
}

func inserts(edges []graph.Edge) []EdgeUpdate {
	ups := make([]EdgeUpdate, len(edges))
	for i, e := range edges {
		ups[i] = EdgeUpdate{U: e.U, V: e.V, Op: OpInsert}
	}
	return ups
}

// futureAUC scores the held-out future edges against sampled non-edges.
func futureAUC(t *testing.T, emb *core.Embedding, g *graph.Graph, heldOut []graph.Edge) float64 {
	t.Helper()
	rng := testRng()
	neg, err := eval.SampleNonEdges(g, len(heldOut), rng)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]float64, len(heldOut))
	for i, e := range heldOut {
		pos[i] = emb.Score(int(e.U), int(e.V))
	}
	negScores := make([]float64, len(neg))
	for i, e := range neg {
		negScores[i] = emb.Score(int(e.U), int(e.V))
	}
	auc, err := eval.AUC(pos, negScores)
	if err != nil {
		t.Fatal(err)
	}
	return auc
}

func testRng() *rand.Rand { return rand.New(rand.NewSource(99)) }

func TestIncrementalTracksFullRecompute(t *testing.T) {
	g, arriving, heldOut := evolvingFixture(t, 400, 2400, 240)
	opt := testOptions()
	ctx := context.Background()

	eng, err := New(ctx, g, opt, Config{Policy: PolicyIncremental, ResidualBudget: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	aucStale := futureAUC(t, eng.Embedding(), eng.Graph(), heldOut)

	applied, err := eng.ApplyUpdates(ctx, inserts(arriving))
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(arriving) {
		t.Fatalf("applied %d of %d arriving edges", applied, len(arriving))
	}
	st, err := eng.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != ModeIncremental {
		t.Fatalf("mode %q, want incremental", st.Mode)
	}
	if st.TouchedNodes == 0 || st.PushMass <= 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	if st.Wall <= 0 {
		t.Fatalf("no wall time recorded: %+v", st)
	}
	aucInc := futureAUC(t, eng.Embedding(), eng.Graph(), heldOut)

	// Reference: cold full recompute on the updated graph.
	full, err := core.NRP(eng.Graph(), opt)
	if err != nil {
		t.Fatal(err)
	}
	aucFull := futureAUC(t, full, eng.Graph(), heldOut)

	if math.Abs(aucInc-aucFull) > 0.05 {
		t.Fatalf("incremental AUC %.4f drifted from full recompute %.4f (stale was %.4f)",
			aucInc, aucFull, aucStale)
	}
	t.Logf("AUC stale=%.4f incremental=%.4f full=%.4f", aucStale, aucInc, aucFull)
}

func TestApplyUpdatesValidationAndPending(t *testing.T) {
	g, _, _ := evolvingFixture(t, 120, 600, 40)
	ctx := context.Background()
	eng, err := New(ctx, g, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ApplyUpdates(ctx, []EdgeUpdate{{U: 0, V: 999, Op: OpInsert}}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := eng.ApplyUpdates(ctx, []EdgeUpdate{{U: 0, V: 1, Op: Op(42)}}); err == nil {
		t.Fatal("expected unknown-op error")
	}
	if got := eng.Pending(); got != 0 {
		t.Fatalf("pending %d after rejected batches, want 0", got)
	}

	// A fresh edge inserted then removed in one batch cancels out
	// structurally but still counts as two applied updates.
	var e EdgeUpdate
	found := false
	for u := int32(0); u < int32(g.N) && !found; u++ {
		for v := u + 1; v < int32(g.N); v++ {
			if !g.HasEdge(int(u), int(v)) {
				e = EdgeUpdate{U: u, V: v}
				found = true
				break
			}
		}
	}
	before := eng.Graph()
	applied, err := eng.ApplyUpdates(ctx, []EdgeUpdate{
		{U: e.U, V: e.V, Op: OpInsert},
		{U: e.U, V: e.V, Op: OpRemove},
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Fatalf("applied %d, want 2", applied)
	}
	if eng.Graph().NumEdges != before.NumEdges {
		t.Fatalf("edge count drifted: %d -> %d", before.NumEdges, eng.Graph().NumEdges)
	}
	if eng.Pending() != 2 {
		t.Fatalf("pending %d, want 2", eng.Pending())
	}
	if eng.Staleness() <= 0 {
		t.Fatal("staleness should be positive with pending updates")
	}
	if _, err := eng.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if eng.Pending() != 0 {
		t.Fatalf("pending %d after refresh, want 0", eng.Pending())
	}
}

func TestRefreshPolicies(t *testing.T) {
	g, arriving, _ := evolvingFixture(t, 200, 1200, 120)
	ctx := context.Background()
	opt := testOptions()

	t.Run("skip with nothing pending", func(t *testing.T) {
		eng, err := New(ctx, g, opt, Config{})
		if err != nil {
			t.Fatal(err)
		}
		before := eng.Embedding()
		st, err := eng.Refresh(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Mode != ModeSkipped {
			t.Fatalf("mode %q, want skipped", st.Mode)
		}
		if eng.Embedding() != before {
			t.Fatal("skipped refresh must not install a new embedding")
		}
	})

	t.Run("full policy warm starts", func(t *testing.T) {
		eng, err := New(ctx, g, opt, Config{Policy: PolicyFull})
		if err != nil {
			t.Fatal(err)
		}
		if st := eng.LastStats(); st.Mode != ModeFull || st.WarmStart {
			t.Fatalf("initial embed stats %+v, want cold full", st)
		}
		if _, err := eng.ApplyUpdates(ctx, inserts(arriving[:20])); err != nil {
			t.Fatal(err)
		}
		st, err := eng.Refresh(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Mode != ModeFull || !st.WarmStart {
			t.Fatalf("refresh stats %+v, want warm full", st)
		}
	})

	t.Run("staleness threshold gates refresh", func(t *testing.T) {
		eng, err := New(ctx, g, opt, Config{Policy: PolicyStaleness, StalenessThreshold: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.ApplyUpdates(ctx, inserts(arriving[:10])); err != nil {
			t.Fatal(err)
		}
		st, err := eng.Refresh(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Mode != ModeSkipped {
			t.Fatalf("mode %q under threshold, want skipped", st.Mode)
		}
		if eng.Pending() == 0 {
			t.Fatal("skipped refresh must keep updates pending")
		}

		eng2, err := New(ctx, g, opt, Config{Policy: PolicyStaleness, StalenessThreshold: 1e-6})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng2.ApplyUpdates(ctx, inserts(arriving[:10])); err != nil {
			t.Fatal(err)
		}
		st, err = eng2.Refresh(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Mode != ModeIncremental {
			t.Fatalf("mode %q over threshold, want incremental", st.Mode)
		}
	})

	t.Run("residual budget falls back to full", func(t *testing.T) {
		eng, err := New(ctx, g, opt, Config{Policy: PolicyIncremental, ResidualBudget: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.ApplyUpdates(ctx, inserts(arriving[:20])); err != nil {
			t.Fatal(err)
		}
		st, err := eng.Refresh(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Mode != ModeFull || !st.Fallback {
			t.Fatalf("stats %+v, want full fallback", st)
		}
		if st.AccumResidual != 0 {
			// fullRefresh resets the accumulator; the stat reflects the
			// pre-reset value only on the incremental path.
			t.Logf("accum after fallback: %v", st.AccumResidual)
		}
	})
}

func TestRemoveEdgesLowersScores(t *testing.T) {
	g, err := graph.GenSBM(graph.SBMConfig{N: 300, M: 1800, Communities: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	eng, err := New(ctx, g, testOptions(), Config{Policy: PolicyIncremental, ResidualBudget: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	removed := g.Edges()[:30]
	before := eng.Embedding()
	meanBefore := 0.0
	for _, e := range removed {
		meanBefore += before.Score(int(e.U), int(e.V))
	}
	ups := make([]EdgeUpdate, len(removed))
	for i, e := range removed {
		ups[i] = EdgeUpdate{U: e.U, V: e.V, Op: OpRemove}
	}
	if _, err := eng.ApplyUpdates(ctx, ups); err != nil {
		t.Fatal(err)
	}
	st, err := eng.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != ModeIncremental {
		t.Fatalf("mode %q, want incremental", st.Mode)
	}
	after := eng.Embedding()
	meanAfter := 0.0
	for _, e := range removed {
		meanAfter += after.Score(int(e.U), int(e.V))
	}
	if meanAfter >= meanBefore {
		t.Fatalf("mean score over removed edges did not drop: %.5f -> %.5f",
			meanBefore/float64(len(removed)), meanAfter/float64(len(removed)))
	}
}

func TestRefreshCancellation(t *testing.T) {
	g, arriving, _ := evolvingFixture(t, 200, 1200, 80)
	eng, err := New(context.Background(), g, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ApplyUpdates(context.Background(), inserts(arriving)); err != nil {
		t.Fatal(err)
	}
	before := eng.Embedding()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Refresh(cancelled); err == nil {
		t.Fatal("expected cancellation error")
	}
	if eng.Embedding() != before {
		t.Fatal("cancelled refresh must not install a new embedding")
	}
	if eng.Pending() == 0 {
		t.Fatal("cancelled refresh must keep updates pending for retry")
	}
	// Retry with a live context succeeds.
	if _, err := eng.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	g, _, _ := evolvingFixture(t, 120, 600, 20)
	ctx := context.Background()
	bad := []Config{
		{Policy: Policy(9)},
		{ResidualBudget: -1},
		{StalenessThreshold: 2},
		{PushRmax: 7},
		{WarmKrylovIters: -2},
	}
	for _, cfg := range bad {
		if _, err := New(ctx, g, testOptions(), cfg); err == nil {
			t.Fatalf("config %+v accepted, want error", cfg)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("expected parse error")
	}
	for _, name := range []string{"full", "incremental", "staleness"} {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != name {
			t.Fatalf("round trip %q -> %q", name, p.String())
		}
	}
}

// TestNoOpUpdatesDoNotTouch: updates skipped as already-present (or
// absent, for removals) must not mark rows touched or charge the
// residual budget — a batch of no-ops leaves Refresh with nothing to do.
func TestNoOpUpdatesDoNotTouch(t *testing.T) {
	g, _, _ := evolvingFixture(t, 150, 800, 30)
	ctx := context.Background()
	eng, err := New(ctx, g, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	existing := g.Edges()[:25]
	ups := make([]EdgeUpdate, 0, len(existing)+1)
	for _, e := range existing {
		ups = append(ups, EdgeUpdate{U: e.U, V: e.V, Op: OpInsert}) // all present
	}
	ups = append(ups, EdgeUpdate{U: 0, V: 0, Op: OpRemove}) // self-loop no-op
	applied, err := eng.ApplyUpdates(ctx, ups)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Fatalf("applied %d, want 0", applied)
	}
	if eng.Pending() != 0 || eng.Staleness() != 0 {
		t.Fatalf("pending=%d staleness=%g after no-op batch", eng.Pending(), eng.Staleness())
	}
	st, err := eng.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != ModeSkipped || st.TouchedNodes != 0 {
		t.Fatalf("stats %+v, want skipped with no touched rows", st)
	}

	// Mixed batch: one real edge among the no-ops touches only its own
	// endpoints.
	var fresh EdgeUpdate
	for u := int32(0); u < int32(g.N); u++ {
		if !g.HasEdge(int(u), int(u+1)) && u+1 < int32(g.N) {
			fresh = EdgeUpdate{U: u, V: u + 1, Op: OpInsert}
			break
		}
	}
	mixed := append(append([]EdgeUpdate{}, ups[:10]...), fresh)
	applied, err = eng.ApplyUpdates(ctx, mixed)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("applied %d, want 1", applied)
	}
	st, err = eng.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 // both endpoints, forward side
	if !g.Directed {
		want = 4
	}
	if st.Mode != ModeIncremental || st.TouchedNodes != want {
		t.Fatalf("stats %+v, want incremental touching %d rows", st, want)
	}
}

// TestHubRowSurvivesIncrementalRefresh: a source whose degree exceeds
// 1/PushRmax would make the vanilla forward push terminate without a
// single push (its unit residual is below the degree-scaled threshold),
// collapsing the projected row to zero. The engine caps the per-source
// threshold, so hub rows must stay alive and keep ranking their
// neighborhood above non-neighbors.
func TestHubRowSurvivesIncrementalRefresh(t *testing.T) {
	// A star: hub 0 connected to everyone (degree n-1 = 1499 > 1/rmax at
	// the default rmax 1e-3), plus a ring so other nodes have degree > 1.
	n := 1500
	edges := make([]graph.Edge, 0, 2*n)
	for v := int32(1); v < int32(n); v++ {
		edges = append(edges, graph.Edge{U: 0, V: v})
	}
	for v := int32(1); v < int32(n)-1; v++ {
		edges = append(edges, graph.Edge{U: v, V: v + 1})
	}
	g, err := graph.New(n, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	eng, err := New(ctx, g, testOptions(), Config{Policy: PolicyIncremental, ResidualBudget: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	// Remove one hub edge: the hub's forward row is recomputed by push.
	if _, err := eng.ApplyUpdates(ctx, []EdgeUpdate{{U: 0, V: 7, Op: OpRemove}}); err != nil {
		t.Fatal(err)
	}
	st, err := eng.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != ModeIncremental {
		t.Fatalf("mode %q, want incremental", st.Mode)
	}
	emb := eng.Embedding()
	norm := 0.0
	for _, x := range emb.X.Row(0) {
		norm += x * x
	}
	if norm == 0 {
		t.Fatal("hub forward row collapsed to zero after incremental refresh")
	}
	// The hub must still score its (remaining) neighbors above zero on
	// average — a zeroed or garbage row would not.
	mean := 0.0
	for v := 1; v <= 20; v++ {
		if v == 7 {
			continue
		}
		mean += emb.Score(0, v)
	}
	if mean <= 0 {
		t.Fatalf("hub no longer scores its neighborhood: mean %g", mean)
	}
}

// cancelAfterCtx reports cancellation only from the nth Err() call on, so
// tests can abort ApplyUpdates deterministically between op-runs.
type cancelAfterCtx struct {
	context.Context
	calls, after int
}

func (c *cancelAfterCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// TestApplyUpdatesPartialBatchStaysPending: when a multi-run batch is cut
// short mid-way, the changes already committed must be counted as pending
// so a Pending()-gated refresh loop still absorbs them.
func TestApplyUpdatesPartialBatchStaysPending(t *testing.T) {
	g, arriving, _ := evolvingFixture(t, 150, 800, 40)
	eng, err := New(context.Background(), g, testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Two runs: an insert run that succeeds, then a remove run the
	// context cancels before it starts.
	ups := []EdgeUpdate{
		{U: arriving[0].U, V: arriving[0].V, Op: OpInsert},
		{U: arriving[1].U, V: arriving[1].V, Op: OpInsert},
		{U: g.Edges()[0].U, V: g.Edges()[0].V, Op: OpRemove},
	}
	ctx := &cancelAfterCtx{Context: context.Background(), after: 1}
	applied, err := eng.ApplyUpdates(ctx, ups)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if applied != 2 {
		t.Fatalf("applied %d, want the 2 committed inserts", applied)
	}
	if eng.Pending() != 2 {
		t.Fatalf("pending %d after partial batch, want 2", eng.Pending())
	}
	// The committed changes are refreshable.
	st, err := eng.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode == ModeSkipped {
		t.Fatal("refresh skipped the partially applied batch")
	}
	if eng.Pending() != 0 {
		t.Fatalf("pending %d after refresh, want 0", eng.Pending())
	}
}
