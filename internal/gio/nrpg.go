package gio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/sparse"
)

// NRPG v1 — the binary graph snapshot format.
//
// Layout (all little-endian):
//
//	header (80 bytes):
//	  [0:4]   magic "NRPG"
//	  [4:8]   uint32 version (1)
//	  [8:16]  uint64 flags (directed, labels, attrs, unit values, explicit RAdj)
//	  [16:72] int64 n, numEdges, nnz, numLabels, totalLabels, attrDim, sectionCount
//	  [72:80] int64 reserved (0)
//	section table: sectionCount × 24 bytes {uint32 tag, uint32 0, int64 offset, int64 length}
//	sections, each zero-padded to an 8-byte-aligned file offset:
//	  adj row pointers   int64 × (n+1)
//	  adj column indices int32 × nnz          (raw, not delta-varint: zero-copy mmap)
//	  values             float64 × nnz        (one shared section when all weights are 1)
//	  radj row pointers / column indices      (directed graphs only; an undirected
//	                                           adjacency is symmetric, so RAdj aliases Adj)
//	  labels             int32 × n counts, then int32 × totalLabels label ids
//	  attributes         float64 × n·attrDim, row-major
//	  optional sections (tags ≥ 128), see below
//	trailer: uint32 CRC-32C of every preceding byte
//
// The CSR arrays are stored in their in-memory layout so LoadMmap can
// slice them straight out of a page-aligned mapping; the 8-byte section
// alignment is what makes those casts legal. Column indices are raw
// int32 rather than delta-varint for the same reason — a varint stream
// would halve the file but force a decode pass, forfeiting zero-copy.
//
// # Section-table forward compatibility
//
// Tags below secOptionalMin (128) are required: their exact sequence is
// derived from the header flags and the stored table must match it
// entry for entry. Tags ≥ secOptionalMin are optional payloads appended
// after the required sections, still 8-aligned, contiguously packed and
// covered by the trailing CRC. A reader encountering an optional tag it
// does not recognize must skip the section and load the rest of the
// snapshot as if it were absent — this is the format's escape hatch for
// adding payloads (such as the FORA+ walk index, tag 128) without
// breaking older readers or bumping the version. TestOptionalSection-
// ForwardCompat asserts the rule for both the stream and mmap loaders.
//
//	walk index (tag 128, optional):
//	  float64 alpha, int64 walksPerNode K, int64 rng seed,
//	  then int32 × n·K walk endpoints (-1 = walk lost at a dangling node)
const (
	nrpgMagic   = "NRPG"
	nrpgVersion = 1
	headerSize  = 80
	tableEntry  = 24
)

const (
	flagDirected = 1 << 0
	flagLabels   = 1 << 1
	flagAttrs    = 1 << 2
	flagUnitVal  = 1 << 3
	flagHasRAdj  = 1 << 4
	flagsKnown   = flagDirected | flagLabels | flagAttrs | flagUnitVal | flagHasRAdj
)

const (
	secAdjRowPtr  = 1
	secAdjColIdx  = 2
	secVal        = 3 // shared unit-weight values (flagUnitVal)
	secRAdjRowPtr = 4
	secRAdjColIdx = 5
	secAdjVal     = 6 // per-matrix values when weights are not all 1
	secRAdjVal    = 7
	secLabels     = 8
	secAttrs      = 9

	// secOptionalMin starts the optional tag range: sections a reader may
	// skip without understanding (see the forward-compatibility rule in
	// the format comment).
	secOptionalMin = 128
	secWalkIdx     = 128 // FORA+ precomputed walk endpoints

	// walkIdxHeadSize is the fixed prefix of the walk-index section:
	// alpha, walksPerNode, seed.
	walkIdxHeadSize = 24

	// maxSections bounds the table so a hostile header cannot demand an
	// arbitrarily large upfront allocation.
	maxSections = 1 << 16
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// IsNRPG reports whether the buffer starts with the NRPG snapshot magic.
// Four bytes suffice.
func IsNRPG(prefix []byte) bool {
	return len(prefix) >= len(nrpgMagic) && string(prefix[:len(nrpgMagic)]) == nrpgMagic
}

// SniffFile reports whether the file at path starts with the NRPG
// snapshot magic; a file too short to hold the magic sniffs false. This
// is the single format-dispatch helper behind nrp.LoadGraph/OpenGraph
// and the CLIs.
func SniffFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var magic [4]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return false, err
	}
	return IsNRPG(magic[:n]), nil
}

// header is the decoded fixed-size NRPG header.
type header struct {
	flags                           uint64
	n, numEdges, nnz                int64
	numLabels, totalLabels, attrDim int64
	sections                        []tableSection
}

type tableSection struct {
	tag    uint32
	offset int64
	length int64
}

func (h *header) has(flag uint64) bool { return h.flags&flag != 0 }

// requiredSections derives the v1 required section sequence (tags and
// byte sizes, in file order) from the header fields. The stored table
// must match it exactly, entry for entry, as its prefix; offsets are
// assigned by layoutSections once the total table size is known.
func (h *header) requiredSections() []tableSection {
	secs := []tableSection{
		{tag: secAdjRowPtr, length: 8 * (h.n + 1)},
		{tag: secAdjColIdx, length: 4 * h.nnz},
	}
	if h.has(flagUnitVal) {
		secs = append(secs, tableSection{tag: secVal, length: 8 * h.nnz})
	} else {
		secs = append(secs, tableSection{tag: secAdjVal, length: 8 * h.nnz})
	}
	if h.has(flagHasRAdj) {
		secs = append(secs,
			tableSection{tag: secRAdjRowPtr, length: 8 * (h.n + 1)},
			tableSection{tag: secRAdjColIdx, length: 4 * h.nnz})
		if !h.has(flagUnitVal) {
			secs = append(secs, tableSection{tag: secRAdjVal, length: 8 * h.nnz})
		}
	}
	if h.has(flagLabels) {
		secs = append(secs, tableSection{tag: secLabels, length: 4*h.n + 4*h.totalLabels})
	}
	if h.has(flagAttrs) {
		secs = append(secs, tableSection{tag: secAttrs, length: 8 * h.n * h.attrDim})
	}
	return secs
}

// layoutSections assigns 8-aligned contiguous offsets to secs, for a
// file whose section table holds total entries.
func layoutSections(secs []tableSection, total int) {
	off := int64(headerSize + tableEntry*total)
	for i := range secs {
		off = align8(off)
		secs[i].offset = off
		off += secs[i].length
	}
}

func align8(off int64) int64 { return (off + 7) &^ 7 }

// WalkIndexSection is the decoded optional walk-index section (tag 128):
// the raw payload of a FORA+ precomputed walk index. gio stores and
// validates it; internal/fora gives it meaning.
type WalkIndexSection struct {
	// Alpha is the walk termination probability the endpoints were
	// simulated with.
	Alpha float64
	// WalksPerNode is K, the stored endpoints per node.
	WalksPerNode int
	// Seed is the RNG seed the index was built with.
	Seed int64
	// Ends holds the n×K endpoints, flat; -1 marks a walk lost at a
	// dangling node.
	Ends []int32
}

// Snapshot bundles everything an NRPG file can carry.
type Snapshot struct {
	Graph *graph.Graph
	// Attrs are optional per-node attribute rows (nil when absent).
	Attrs [][]float64
	// WalkIndex is the optional FORA+ walk index (nil when absent).
	WalkIndex *WalkIndexSection
}

// Save writes g (and, optionally, per-node attribute rows) as an NRPG v1
// snapshot. attrs may be nil; otherwise it must hold one equal-length row
// per node. The output is deterministic: the same graph always produces
// the same bytes.
func Save(w io.Writer, g *graph.Graph, attrs [][]float64) error {
	return SaveSnapshot(w, &Snapshot{Graph: g, Attrs: attrs})
}

// SaveSnapshot writes snap as an NRPG v1 snapshot, appending the
// optional walk-index section when present. The output is deterministic.
func SaveSnapshot(w io.Writer, snap *Snapshot) error {
	g, attrs, wi := snap.Graph, snap.Attrs, snap.WalkIndex
	if g == nil || g.N < 1 {
		return fmt.Errorf("gio: cannot save an empty graph")
	}
	if wi != nil {
		if wi.WalksPerNode < 1 {
			return fmt.Errorf("gio: walk index needs at least one walk per node, got %d", wi.WalksPerNode)
		}
		if !(wi.Alpha > 0 && wi.Alpha < 1) {
			return fmt.Errorf("gio: walk index alpha must be in (0,1), got %v", wi.Alpha)
		}
		if len(wi.Ends) != g.N*wi.WalksPerNode {
			return fmt.Errorf("gio: walk index has %d endpoints, want n·K = %d", len(wi.Ends), g.N*wi.WalksPerNode)
		}
	}
	attrDim := 0
	if len(attrs) > 0 {
		if len(attrs) != g.N {
			return fmt.Errorf("gio: %d attribute rows for %d nodes", len(attrs), g.N)
		}
		attrDim = len(attrs[0])
		for v, row := range attrs {
			if len(row) != attrDim {
				return fmt.Errorf("gio: attribute row %d has %d columns, want %d", v, len(row), attrDim)
			}
		}
	}
	unit := allOnes(g.Adj.Val) && allOnes(g.RAdj.Val)
	hasRAdj := g.Directed || !unit

	h := header{
		n:        int64(g.N),
		numEdges: int64(g.NumEdges),
		nnz:      int64(g.Adj.NNZ()),
		attrDim:  int64(attrDim),
	}
	if g.Directed {
		h.flags |= flagDirected
	}
	if unit {
		h.flags |= flagUnitVal
	}
	if hasRAdj {
		h.flags |= flagHasRAdj
	}
	if g.Labels != nil {
		h.flags |= flagLabels
		h.numLabels = int64(g.NumLabels)
		for _, ls := range g.Labels {
			h.totalLabels += int64(len(ls))
		}
	}
	if attrDim > 0 {
		h.flags |= flagAttrs
	}
	secs := h.requiredSections()
	if wi != nil {
		secs = append(secs, tableSection{tag: secWalkIdx, length: walkIdxHeadSize + 4*int64(len(wi.Ends))})
	}
	layoutSections(secs, len(secs))

	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &crcWriter{w: bw}

	var hdr [headerSize]byte
	copy(hdr[0:4], nrpgMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], nrpgVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], h.flags)
	for i, x := range []int64{h.n, h.numEdges, h.nnz, h.numLabels, h.totalLabels, h.attrDim, int64(len(secs))} {
		binary.LittleEndian.PutUint64(hdr[16+8*i:], uint64(x))
	}
	if _, err := cw.Write(hdr[:]); err != nil {
		return fmt.Errorf("gio: writing header: %w", err)
	}
	var ent [tableEntry]byte
	for _, s := range secs {
		binary.LittleEndian.PutUint32(ent[0:4], s.tag)
		binary.LittleEndian.PutUint32(ent[4:8], 0)
		binary.LittleEndian.PutUint64(ent[8:16], uint64(s.offset))
		binary.LittleEndian.PutUint64(ent[16:24], uint64(s.length))
		if _, err := cw.Write(ent[:]); err != nil {
			return fmt.Errorf("gio: writing section table: %w", err)
		}
	}

	for _, s := range secs {
		if err := cw.pad(s.offset); err != nil {
			return err
		}
		var err error
		switch s.tag {
		case secAdjRowPtr:
			err = writeInts(cw, g.Adj.RowPtr)
		case secAdjColIdx:
			err = writeInt32s(cw, g.Adj.ColIdx)
		case secVal, secAdjVal:
			err = writeFloat64s(cw, g.Adj.Val)
		case secRAdjRowPtr:
			err = writeInts(cw, g.RAdj.RowPtr)
		case secRAdjColIdx:
			err = writeInt32s(cw, g.RAdj.ColIdx)
		case secRAdjVal:
			err = writeFloat64s(cw, g.RAdj.Val)
		case secLabels:
			err = writeLabels(cw, g.Labels)
		case secAttrs:
			for _, row := range attrs {
				if err = writeFloat64s(cw, row); err != nil {
					break
				}
			}
		case secWalkIdx:
			var head [walkIdxHeadSize]byte
			binary.LittleEndian.PutUint64(head[0:8], math.Float64bits(wi.Alpha))
			binary.LittleEndian.PutUint64(head[8:16], uint64(int64(wi.WalksPerNode)))
			binary.LittleEndian.PutUint64(head[16:24], uint64(wi.Seed))
			if _, err = cw.Write(head[:]); err == nil {
				err = writeInt32s(cw, wi.Ends)
			}
		}
		if err != nil {
			return fmt.Errorf("gio: writing section %d: %w", s.tag, err)
		}
	}

	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], cw.crc)
	if _, err := bw.Write(trailer[:]); err != nil {
		return fmt.Errorf("gio: writing checksum: %w", err)
	}
	return bw.Flush()
}

// Load reads an NRPG snapshot into heap-allocated arrays, verifying the
// trailing checksum and fully validating the CSR structure. For
// multi-gigabyte snapshots prefer LoadMmap, which maps the arrays
// directly instead of copying them.
func Load(r io.Reader) (*graph.Graph, [][]float64, error) {
	snap, err := LoadSnapshot(r)
	if err != nil {
		return nil, nil, err
	}
	return snap.Graph, snap.Attrs, nil
}

// LoadSnapshot is Load plus the optional sections: it additionally
// decodes (and fully validates) the walk-index section when present.
// Unknown optional sections are skipped per the format's
// forward-compatibility rule.
func LoadSnapshot(r io.Reader) (*Snapshot, error) {
	cr := &crcReader{r: bufio.NewReaderSize(r, 1<<20)}
	h, err := readHeader(cr)
	if err != nil {
		return nil, err
	}

	var (
		adjRowPtr, radjRowPtr []int
		adjColIdx, radjColIdx []int32
		adjVal, radjVal       []float64
		labels                [][]int32
		attrs                 [][]float64
		wi                    *WalkIndexSection
	)
	for _, s := range h.sections {
		if err := cr.skipTo(s.offset); err != nil {
			return nil, fmt.Errorf("gio: seeking section %d: %w", s.tag, err)
		}
		switch s.tag {
		case secAdjRowPtr:
			adjRowPtr, err = readInts(cr, int(h.n)+1)
		case secAdjColIdx:
			adjColIdx, err = readInt32s(cr, int(h.nnz))
		case secVal, secAdjVal:
			adjVal, err = readFloat64s(cr, int(h.nnz))
		case secRAdjRowPtr:
			radjRowPtr, err = readInts(cr, int(h.n)+1)
		case secRAdjColIdx:
			radjColIdx, err = readInt32s(cr, int(h.nnz))
		case secRAdjVal:
			radjVal, err = readFloat64s(cr, int(h.nnz))
		case secLabels:
			labels, err = readLabels(cr, int(h.n), int(h.totalLabels))
		case secAttrs:
			flat, ferr := readFloat64s(cr, int(h.n*h.attrDim))
			if ferr == nil {
				attrs = sliceRows(flat, int(h.n), int(h.attrDim))
			}
			err = ferr
		case secWalkIdx:
			wi, err = readWalkIndex(cr, int(h.n), s.length)
		default:
			// Unknown optional section: skip its bytes (they still feed
			// the checksum via skipTo at the next iteration or below).
		}
		if err != nil {
			return nil, fmt.Errorf("gio: reading section %d: %w", s.tag, err)
		}
	}
	// Consume any bytes of a trailing skipped section before the trailer.
	last := h.sections[len(h.sections)-1]
	if err := cr.skipTo(last.offset + last.length); err != nil {
		return nil, fmt.Errorf("gio: seeking past section %d: %w", last.tag, err)
	}

	var trailer [4]byte
	want := cr.crc // snapshot before the trailer bytes pass through
	if _, err := io.ReadFull(cr.r, trailer[:]); err != nil {
		return nil, fmt.Errorf("gio: reading checksum: %w", truncated(err))
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != want {
		return nil, fmt.Errorf("gio: checksum mismatch: file says %08x, content hashes to %08x", got, want)
	}
	// The trailer ends the snapshot; trailing bytes (concatenated or
	// doubly-resumed downloads) must fail here, matching LoadMmap's
	// exact-size check, so a file that passes verification also boots.
	var extra [1]byte
	switch _, err := io.ReadFull(cr.r, extra[:]); err {
	case io.EOF:
	case nil:
		return nil, fmt.Errorf("gio: snapshot has trailing data after the checksum")
	default:
		return nil, fmt.Errorf("gio: reading past checksum: %w", err)
	}

	adj, err := sparse.New(int(h.n), int(h.n), adjRowPtr, adjColIdx, adjVal)
	if err == nil {
		err = validateSortedRows(adj)
	}
	if err != nil {
		return nil, fmt.Errorf("gio: corrupt adjacency: %w", err)
	}
	var radj *sparse.CSR
	if h.has(flagHasRAdj) {
		if h.has(flagUnitVal) {
			radjVal = adjVal // one shared unit-weight array
		}
		radj, err = sparse.New(int(h.n), int(h.n), radjRowPtr, radjColIdx, radjVal)
		if err == nil {
			err = validateSortedRows(radj)
		}
		if err != nil {
			return nil, fmt.Errorf("gio: corrupt reverse adjacency: %w", err)
		}
	} else {
		// Undirected: the adjacency is symmetric, so its transpose is
		// itself; share the arrays instead of materializing a copy.
		radj = &sparse.CSR{Rows: adj.Rows, Cols: adj.Cols, RowPtr: adj.RowPtr, ColIdx: adj.ColIdx, Val: adj.Val}
	}
	snap, err := assemble(h, adj, radj, labels, attrs)
	if err != nil {
		return nil, err
	}
	snap.WalkIndex = wi
	return snap, nil
}

// assemble builds the Graph from decoded parts, applying the label
// validation of graph.WithLabels. The caller attaches optional sections.
func assemble(h *header, adj, radj *sparse.CSR, labels [][]int32, attrs [][]float64) (*Snapshot, error) {
	g := &graph.Graph{
		N:        int(h.n),
		Directed: h.has(flagDirected),
		NumEdges: int(h.numEdges),
		Adj:      adj,
		RAdj:     radj,
	}
	if labels != nil {
		lg, err := g.WithLabels(labels, int(h.numLabels))
		if err != nil {
			return nil, fmt.Errorf("gio: corrupt labels: %w", err)
		}
		g = lg
	}
	return &Snapshot{Graph: g, Attrs: attrs}, nil
}

// readWalkIndex decodes and fully validates the optional walk-index
// section payload (stream loader path; the mmap path slices it
// zero-copy and defers endpoint validation to the consumer).
func readWalkIndex(r io.Reader, n int, length int64) (*WalkIndexSection, error) {
	var head [walkIdxHeadSize]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, truncated(err)
	}
	alpha := math.Float64frombits(binary.LittleEndian.Uint64(head[0:8]))
	k := int64(binary.LittleEndian.Uint64(head[8:16]))
	seed := int64(binary.LittleEndian.Uint64(head[16:24]))
	wi, err := checkWalkIndexHead(alpha, k, int64(n), length)
	if err != nil {
		return nil, err
	}
	wi.Seed = seed
	wi.Ends, err = readInt32s(r, n*int(k))
	if err != nil {
		return nil, err
	}
	for _, t := range wi.Ends {
		if t < -1 || int(t) >= n {
			return nil, fmt.Errorf("walk endpoint %d outside [-1,%d)", t, n)
		}
	}
	return wi, nil
}

// checkWalkIndexHead validates the fixed walk-index prefix against the
// section length; shared by the stream and mmap loaders.
func checkWalkIndexHead(alpha float64, k, n, length int64) (*WalkIndexSection, error) {
	if k < 1 || k > 1<<20 {
		return nil, fmt.Errorf("implausible walks per node %d", k)
	}
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("implausible walk alpha %v", alpha)
	}
	if want := walkIdxHeadSize + 4*n*k; length != want {
		return nil, fmt.Errorf("walk index section is %d bytes, want %d for n=%d K=%d", length, want, n, k)
	}
	return &WalkIndexSection{Alpha: alpha, WalksPerNode: int(k)}, nil
}

// readHeader decodes and validates the fixed header plus section table.
func readHeader(cr *crcReader) (*header, error) {
	var hdr [headerSize]byte
	// Check the magic before demanding a full header, so a short text file
	// reports "not an NRPG snapshot" rather than a truncation.
	if _, err := io.ReadFull(cr, hdr[:4]); err != nil {
		return nil, fmt.Errorf("gio: reading header: %w", truncated(err))
	}
	if !IsNRPG(hdr[:4]) {
		return nil, fmt.Errorf("gio: bad magic %q (not an NRPG snapshot)", hdr[:4])
	}
	if _, err := io.ReadFull(cr, hdr[4:]); err != nil {
		return nil, fmt.Errorf("gio: reading header: %w", truncated(err))
	}
	return parseHeader(hdr[:], func(n int) ([]byte, error) {
		buf := make([]byte, n)
		if _, err := io.ReadFull(cr, buf); err != nil {
			return nil, truncated(err)
		}
		return buf, nil
	})
}

// parseHeader validates the 80-byte fixed header and fetches the section
// table via more (which reads or slices the next n bytes). Shared by the
// stream loader and the mmap loader.
func parseHeader(hdr []byte, more func(n int) ([]byte, error)) (*header, error) {
	if !IsNRPG(hdr) {
		return nil, fmt.Errorf("gio: bad magic %q (not an NRPG snapshot)", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != nrpgVersion {
		return nil, fmt.Errorf("gio: unsupported NRPG version %d (have %d)", v, nrpgVersion)
	}
	h := &header{flags: binary.LittleEndian.Uint64(hdr[8:16])}
	fields := []*int64{&h.n, &h.numEdges, &h.nnz, &h.numLabels, &h.totalLabels, &h.attrDim}
	for i, p := range fields {
		*p = int64(binary.LittleEndian.Uint64(hdr[16+8*i:]))
	}
	sectionCount := int64(binary.LittleEndian.Uint64(hdr[64:72]))

	if h.flags&^uint64(flagsKnown) != 0 {
		return nil, fmt.Errorf("gio: snapshot uses unknown flags %#x", h.flags)
	}
	// Bound each field before trusting products or allocations.
	if h.n < 1 || h.n > math.MaxInt32 {
		return nil, fmt.Errorf("gio: implausible node count %d", h.n)
	}
	if h.nnz < 0 || h.nnz > 1<<40 || h.numEdges < 0 {
		return nil, fmt.Errorf("gio: implausible arc count %d (edges %d)", h.nnz, h.numEdges)
	}
	if h.has(flagDirected) && h.numEdges != h.nnz {
		return nil, fmt.Errorf("gio: directed snapshot with %d edges but %d arcs", h.numEdges, h.nnz)
	}
	if !h.has(flagDirected) && h.nnz != 2*h.numEdges {
		return nil, fmt.Errorf("gio: undirected snapshot with %d edges but %d arcs", h.numEdges, h.nnz)
	}
	if h.numLabels < 0 || h.numLabels > math.MaxInt32 || h.totalLabels < 0 || h.totalLabels > 1<<40 {
		return nil, fmt.Errorf("gio: implausible label counts (%d classes, %d assignments)", h.numLabels, h.totalLabels)
	}
	if h.attrDim < 0 || h.attrDim > 1<<24 {
		return nil, fmt.Errorf("gio: implausible attribute dimension %d", h.attrDim)
	}
	if (h.has(flagLabels) && h.numLabels == 0) || (!h.has(flagLabels) && (h.numLabels != 0 || h.totalLabels != 0)) {
		return nil, fmt.Errorf("gio: label flag and counts disagree")
	}
	if h.has(flagAttrs) != (h.attrDim > 0) {
		return nil, fmt.Errorf("gio: attribute flag and dimension disagree")
	}
	if !h.has(flagHasRAdj) && (h.has(flagDirected) || !h.has(flagUnitVal)) {
		return nil, fmt.Errorf("gio: snapshot omits the reverse adjacency but is not symmetric unit-weight")
	}

	want := h.requiredSections()
	if sectionCount < int64(len(want)) || sectionCount > maxSections {
		return nil, fmt.Errorf("gio: section count %d, want at least %d for these flags (max %d)", sectionCount, len(want), maxSections)
	}
	layoutSections(want, int(sectionCount))
	table, err := more(tableEntry * int(sectionCount))
	if err != nil {
		return nil, fmt.Errorf("gio: reading section table: %w", err)
	}
	secs := make([]tableSection, sectionCount)
	for i := range secs {
		ent := table[tableEntry*i:]
		secs[i] = tableSection{
			tag:    binary.LittleEndian.Uint32(ent[0:4]),
			offset: int64(binary.LittleEndian.Uint64(ent[8:16])),
			length: int64(binary.LittleEndian.Uint64(ent[16:24])),
		}
	}
	for i, w := range want {
		if secs[i] != w {
			return nil, fmt.Errorf("gio: section %d is {tag %d, offset %d, length %d}, want {tag %d, offset %d, length %d}",
				i, secs[i].tag, secs[i].offset, secs[i].length, w.tag, w.offset, w.length)
		}
	}
	// Optional sections (tags ≥ secOptionalMin) follow the required
	// ones, 8-aligned and contiguously packed. Validate the shape so
	// loaders can trust the offsets, but leave the tags uninterpreted:
	// unknown optional sections are skipped, the format's
	// forward-compatibility rule.
	end := secs[len(want)-1].offset + secs[len(want)-1].length
	for i := len(want); i < len(secs); i++ {
		s := secs[i]
		if s.tag < secOptionalMin {
			return nil, fmt.Errorf("gio: extra section %d has required-range tag %d (optional tags start at %d)", i, s.tag, secOptionalMin)
		}
		if s.length < 0 || s.length > 1<<42 || s.offset != align8(end) {
			return nil, fmt.Errorf("gio: optional section %d (tag %d) at offset %d length %d, want contiguous offset %d",
				i, s.tag, s.offset, s.length, align8(end))
		}
		end = s.offset + s.length
	}
	h.sections = secs
	return h, nil
}

// validateSortedRows rejects rows whose column indices are not strictly
// increasing: sparse.New checks only bounds and row-pointer shape, but
// every consumer (the binary-search At, the one-pass sorted merges
// behind AddEdges/RemoveEdges) assumes sorted, duplicate-free rows, so
// a foreign snapshot violating that must fail here rather than corrupt
// queries silently. Snapshots written by Save always pass.
func validateSortedRows(a *sparse.CSR) error {
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i] + 1; p < a.RowPtr[i+1]; p++ {
			if a.ColIdx[p-1] >= a.ColIdx[p] {
				return fmt.Errorf("row %d columns not strictly increasing at entry %d", i, p)
			}
		}
	}
	return nil
}

func allOnes(xs []float64) bool {
	for _, x := range xs {
		if x != 1 {
			return false
		}
	}
	return true
}

func sliceRows(flat []float64, n, dim int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return rows
}

func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("truncated snapshot: %w", err)
	}
	return err
}

// --- checksummed stream plumbing -----------------------------------------

type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crcTable, p[:n])
	cw.n += int64(n)
	return n, err
}

// pad writes zero bytes until the stream reaches off.
func (cw *crcWriter) pad(off int64) error {
	var zeros [8]byte
	for cw.n < off {
		k := off - cw.n
		if k > int64(len(zeros)) {
			k = int64(len(zeros))
		}
		if _, err := cw.Write(zeros[:k]); err != nil {
			return err
		}
	}
	return nil
}

type crcReader struct {
	r   io.Reader
	crc uint32
	n   int64
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crcTable, p[:n])
	cr.n += int64(n)
	return n, err
}

// skipTo consumes (and hashes) bytes until the stream reaches off.
func (cr *crcReader) skipTo(off int64) error {
	var buf [8]byte
	for cr.n < off {
		k := off - cr.n
		if k > int64(len(buf)) {
			k = int64(len(buf))
		}
		if _, err := io.ReadFull(cr, buf[:k]); err != nil {
			return truncated(err)
		}
	}
	return nil
}

// --- chunked little-endian array codecs ----------------------------------

const codecBuf = 1 << 13

func writeInts(w io.Writer, xs []int) error {
	var buf [codecBuf]byte
	for len(xs) > 0 {
		k := min(len(xs), codecBuf/8)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(xs[i]))
		}
		if _, err := w.Write(buf[:8*k]); err != nil {
			return err
		}
		xs = xs[k:]
	}
	return nil
}

func writeInt32s(w io.Writer, xs []int32) error {
	var buf [codecBuf]byte
	for len(xs) > 0 {
		k := min(len(xs), codecBuf/4)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(xs[i]))
		}
		if _, err := w.Write(buf[:4*k]); err != nil {
			return err
		}
		xs = xs[k:]
	}
	return nil
}

func writeFloat64s(w io.Writer, xs []float64) error {
	var buf [codecBuf]byte
	for len(xs) > 0 {
		k := min(len(xs), codecBuf/8)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(xs[i]))
		}
		if _, err := w.Write(buf[:8*k]); err != nil {
			return err
		}
		xs = xs[k:]
	}
	return nil
}

func writeLabels(w io.Writer, labels [][]int32) error {
	counts := make([]int32, len(labels))
	for v, ls := range labels {
		counts[v] = int32(len(ls))
	}
	if err := writeInt32s(w, counts); err != nil {
		return err
	}
	for _, ls := range labels {
		if err := writeInt32s(w, ls); err != nil {
			return err
		}
	}
	return nil
}

// initialCap bounds the decoders' upfront allocation: the header's
// element counts are attacker-controlled until the payload actually
// arrives, so the output slices start at ≤1M elements and grow with
// append as data is read — a tiny file claiming 2^40 arcs fails with
// "truncated snapshot" after a few megabytes instead of a fatal
// out-of-memory allocation.
func initialCap(n int) int { return min(n, 1<<20) }

func readInts(r io.Reader, n int) ([]int, error) {
	out := make([]int, 0, initialCap(n))
	var buf [codecBuf]byte
	for i := 0; i < n; {
		k := min(n-i, codecBuf/8)
		if _, err := io.ReadFull(r, buf[:8*k]); err != nil {
			return nil, truncated(err)
		}
		for j := 0; j < k; j++ {
			out = append(out, int(int64(binary.LittleEndian.Uint64(buf[8*j:]))))
		}
		i += k
	}
	return out, nil
}

func readInt32s(r io.Reader, n int) ([]int32, error) {
	out := make([]int32, 0, initialCap(n))
	var buf [codecBuf]byte
	for i := 0; i < n; {
		k := min(n-i, codecBuf/4)
		if _, err := io.ReadFull(r, buf[:4*k]); err != nil {
			return nil, truncated(err)
		}
		for j := 0; j < k; j++ {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[4*j:])))
		}
		i += k
	}
	return out, nil
}

func readFloat64s(r io.Reader, n int) ([]float64, error) {
	out := make([]float64, 0, initialCap(n))
	var buf [codecBuf]byte
	for i := 0; i < n; {
		k := min(n-i, codecBuf/8)
		if _, err := io.ReadFull(r, buf[:8*k]); err != nil {
			return nil, truncated(err)
		}
		for j := 0; j < k; j++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:])))
		}
		i += k
	}
	return out, nil
}

func readLabels(r io.Reader, n, total int) ([][]int32, error) {
	counts, err := readInt32s(r, n)
	if err != nil {
		return nil, err
	}
	sum := int64(0)
	for _, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("negative label count %d", c)
		}
		sum += int64(c)
	}
	if sum != int64(total) {
		return nil, fmt.Errorf("label counts sum to %d, header says %d", sum, total)
	}
	flat, err := readInt32s(r, total)
	if err != nil {
		return nil, err
	}
	labels := make([][]int32, n)
	off := 0
	for v, c := range counts {
		if c > 0 {
			labels[v] = flat[off : off+int(c) : off+int(c)]
			off += int(c)
		}
	}
	return labels, nil
}
