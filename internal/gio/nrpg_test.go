package gio

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/sparse"
)

func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	sbm, err := graph.GenSBM(graph.SBMConfig{N: 200, M: 900, Communities: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	er, err := graph.GenErdosRenyi(150, 600, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := graph.New(1, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	sparseLabels, err := graph.GenErdosRenyi(40, 80, false, 6)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([][]int32, 40)
	labels[3] = []int32{0, 2}
	labels[17] = []int32{1}
	sparseLabels, err = sparseLabels.WithLabels(labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"undirected labeled sbm": sbm,
		"directed er":            er,
		"single node no edges":   tiny,
		"partially labeled":      sparseLabels,
	}
}

func TestNRPGRoundTrip(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Save(&buf, g, nil); err != nil {
				t.Fatal(err)
			}
			if !IsNRPG(buf.Bytes()) {
				t.Fatal("snapshot does not start with the NRPG magic")
			}
			got, attrs, err := Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if attrs != nil {
				t.Fatalf("attrs %v from a graph saved without attributes", attrs)
			}
			graphsEqual(t, got, g)

			// Saving is deterministic: same graph, same bytes.
			var buf2 bytes.Buffer
			if err := Save(&buf2, got, nil); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatal("re-saving a loaded snapshot changed the bytes")
			}
		})
	}
}

func TestNRPGAttributesRoundTrip(t *testing.T) {
	g, err := graph.GenSBM(graph.SBMConfig{N: 60, M: 200, Communities: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := graph.GenAttributes(g, 5, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, g, attrs); err != nil {
		t.Fatal(err)
	}
	got, gotAttrs, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, got, g)
	if len(gotAttrs) != len(attrs) {
		t.Fatalf("%d attribute rows, want %d", len(gotAttrs), len(attrs))
	}
	for v, row := range attrs {
		for j, x := range row {
			if gotAttrs[v][j] != x {
				t.Fatalf("attr[%d][%d] = %v, want %v", v, j, gotAttrs[v][j], x)
			}
		}
	}
}

func TestNRPGTruncated(t *testing.T) {
	g, err := graph.GenSBM(graph.SBMConfig{N: 80, M: 300, Communities: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail cleanly — never panic, never succeed.
	for _, cut := range []int{0, 3, 4, headerSize - 1, headerSize, headerSize + 10,
		len(full) / 2, len(full) - 5, len(full) - 1} {
		if _, _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("accepted snapshot truncated to %d of %d bytes", cut, len(full))
		}
	}
}

func TestNRPGBadChecksum(t *testing.T) {
	g, err := graph.GenSBM(graph.SBMConfig{N: 80, M: 300, Communities: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip one byte in an array section (past header and table, before the
	// trailer): the CRC must catch it.
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0x40
	_, _, err = Load(bytes.NewReader(corrupt))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted payload: err = %v, want checksum mismatch", err)
	}
	// Flip the trailer itself.
	corrupt = append([]byte(nil), full...)
	corrupt[len(corrupt)-1] ^= 0x01
	if _, _, err := Load(bytes.NewReader(corrupt)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted trailer: err = %v, want checksum mismatch", err)
	}
	// Trailing garbage after the trailer: Load must agree with LoadMmap's
	// exact-size check and reject it.
	padded := append(append([]byte(nil), full...), "extra"...)
	if _, _, err := Load(bytes.NewReader(padded)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing garbage: err = %v, want trailing-data error", err)
	}
}

func TestNRPGBadHeader(t *testing.T) {
	if _, _, err := Load(strings.NewReader("0 1\n1 2\n")); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("text input: err = %v, want bad magic", err)
	}
	g, err := graph.New(2, []graph.Edge{{U: 0, V: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	future := append([]byte(nil), buf.Bytes()...)
	future[4] = 99 // version
	if _, _, err := Load(bytes.NewReader(future)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: err = %v, want version error", err)
	}
}

func TestNRPGMmapMatchesHeapLoad(t *testing.T) {
	dir := t.TempDir()
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, "g.nrpg")
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := Save(f, g, nil); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			mg, attrs, closer, err := LoadMmap(path)
			if err != nil {
				t.Fatal(err)
			}
			if attrs != nil {
				t.Fatal("unexpected attributes")
			}
			graphsEqual(t, mg, g)

			// The mapped arrays are read-only; mutation must go copy-on-write.
			if mg.NumEdges > 0 {
				e := mg.Edges()[0]
				smaller, removed, err := mg.RemoveEdges([]graph.Edge{e})
				if err != nil {
					t.Fatal(err)
				}
				if len(removed) != 1 || smaller.NumEdges != g.NumEdges-1 {
					t.Fatalf("removed %d edges, graph now %d, want %d", len(removed), smaller.NumEdges, g.NumEdges-1)
				}
				graphsEqual(t, mg, g) // original snapshot untouched
			}
			if err := closer.Close(); err != nil {
				t.Fatal(err)
			}
			if err := closer.Close(); err != nil {
				t.Fatalf("double close: %v", err)
			}
		})
	}
}

func TestNRPGMmapAttrs(t *testing.T) {
	g, err := graph.GenSBM(graph.SBMConfig{N: 50, M: 150, Communities: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := graph.GenAttributes(g, 4, 0.2, 13)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "a.nrpg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(f, g, attrs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	mg, gotAttrs, closer, err := LoadMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	graphsEqual(t, mg, g)
	for v, row := range attrs {
		for j, x := range row {
			if gotAttrs[v][j] != x {
				t.Fatalf("attr[%d][%d] = %v, want %v", v, j, gotAttrs[v][j], x)
			}
		}
	}
}

func TestNRPGMmapRejectsCorruptStructure(t *testing.T) {
	g, err := graph.GenSBM(graph.SBMConfig{N: 64, M: 256, Communities: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	dir := t.TempDir()
	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Truncated file: size no longer matches the header's description.
	if _, _, _, err := LoadMmap(write("trunc.nrpg", full[:len(full)-100])); err == nil {
		t.Fatal("mmap accepted a truncated snapshot")
	}
	// Non-monotone row pointers in the mapped CSR region.
	bad := append([]byte(nil), full...)
	// RowPtr section starts right after header+table; write a huge value
	// into the second row pointer.
	secStart := headerSize + tableEntry*3 // undirected unit graph: 3 sections
	for i := 0; i < 8; i++ {
		bad[secStart+8+i] = 0xff
	}
	if _, _, _, err := LoadMmap(write("badrowptr.nrpg", bad)); err == nil {
		t.Fatal("mmap accepted corrupt row pointers")
	}
}

// TestNRPGRejectsUnsortedColumns writes a snapshot whose adjacency rows
// violate the sorted-column invariant (as a foreign writer could) and
// checks the heap loader rejects it: downstream one-pass sorted merges
// would otherwise corrupt silently.
func TestNRPGRejectsUnsortedColumns(t *testing.T) {
	csr := &sparse.CSR{Rows: 2, Cols: 2, RowPtr: []int{0, 2, 2}, ColIdx: []int32{1, 0}, Val: []float64{1, 1}}
	g := &graph.Graph{N: 2, Directed: true, NumEdges: 2, Adj: csr, RAdj: csr.Transpose()}
	var buf bytes.Buffer
	if err := Save(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	_, _, err := Load(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "strictly increasing") {
		t.Fatalf("unsorted columns: err = %v, want strictly-increasing violation", err)
	}
}

// TestNRPGCraftedHugeCounts feeds Load a tiny file whose header (and
// matching section table) claim 2^40 arcs: the bounded decoders must
// fail with a truncation error after a small allocation, not abort the
// process trying to materialize terabyte arrays.
func TestNRPGCraftedHugeCounts(t *testing.T) {
	h := header{flags: flagUnitVal, n: 2, numEdges: 1 << 39, nnz: 1 << 40}
	secs := h.requiredSections()
	layoutSections(secs, len(secs))
	buf := make([]byte, headerSize+tableEntry*len(secs))
	copy(buf[0:4], nrpgMagic)
	binary.LittleEndian.PutUint32(buf[4:8], nrpgVersion)
	binary.LittleEndian.PutUint64(buf[8:16], h.flags)
	for i, x := range []int64{h.n, h.numEdges, h.nnz, 0, 0, 0, int64(len(secs))} {
		binary.LittleEndian.PutUint64(buf[16+8*i:], uint64(x))
	}
	for i, s := range secs {
		ent := buf[headerSize+tableEntry*i:]
		binary.LittleEndian.PutUint32(ent[0:4], s.tag)
		binary.LittleEndian.PutUint64(ent[8:16], uint64(s.offset))
		binary.LittleEndian.PutUint64(ent[16:24], uint64(s.length))
	}
	_, _, err := Load(bytes.NewReader(buf))
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("crafted 2^40-arc header: err = %v, want truncation", err)
	}
}

func TestNRPGParseSaveLoadPipeline(t *testing.T) {
	// Text → parallel parse → snapshot → mmap: the full ingestion path.
	rng := rand.New(rand.NewSource(77))
	text := randomEdgeText(rng, 3000)
	want, err := graph.ReadEdgeList(strings.NewReader(text), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseEdgeList([]byte(text), false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.nrpg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(f, parsed, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, _, closer, err := LoadMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	graphsEqual(t, g, want)
}
