//go:build !(unix && (amd64 || arm64))

package gio

import (
	"fmt"
	"io"
	"os"

	"github.com/nrp-embed/nrp/internal/graph"
)

// LoadMmap on platforms without a little-endian 64-bit unix mmap path
// falls back to a fully-validated heap load; the returned Closer is a
// no-op. The call signature and the read-only-arrays contract match the
// zero-copy implementation, so callers need no platform awareness.
func LoadMmap(path string) (*graph.Graph, [][]float64, io.Closer, error) {
	snap, closer, err := LoadMmapSnapshot(path)
	if err != nil {
		return nil, nil, nil, err
	}
	return snap.Graph, snap.Attrs, closer, nil
}

// LoadMmapSnapshot falls back to the fully-validated heap loader on
// platforms without the zero-copy path.
func LoadMmapSnapshot(path string) (*Snapshot, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("gio: opening snapshot: %w", err)
	}
	defer f.Close()
	snap, err := LoadSnapshot(f)
	if err != nil {
		return nil, nil, err
	}
	return snap, nopCloser{}, nil
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }
