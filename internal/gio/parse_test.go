package gio

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/par"
	"github.com/nrp-embed/nrp/internal/sparse"
)

// graphsEqual asserts two graphs are bit-identical: same scalars, same
// CSR arrays for both orientations, same labels. Label rows are compared
// element-wise so a nil row equals an empty one.
func graphsEqual(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.N != want.N || got.Directed != want.Directed || got.NumEdges != want.NumEdges {
		t.Fatalf("graph shape (n=%d directed=%v m=%d), want (n=%d directed=%v m=%d)",
			got.N, got.Directed, got.NumEdges, want.N, want.Directed, want.NumEdges)
	}
	csrEqual(t, "Adj", got.Adj, want.Adj)
	csrEqual(t, "RAdj", got.RAdj, want.RAdj)
	if got.NumLabels != want.NumLabels || (got.Labels == nil) != (want.Labels == nil) {
		t.Fatalf("labels: %d classes (nil=%v), want %d (nil=%v)",
			got.NumLabels, got.Labels == nil, want.NumLabels, want.Labels == nil)
	}
	for v := range want.Labels {
		g, w := got.Labels[v], want.Labels[v]
		if len(g) != len(w) {
			t.Fatalf("node %d has %d labels, want %d", v, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("node %d label %d is %d, want %d", v, i, g[i], w[i])
			}
		}
	}
}

func csrEqual(t *testing.T, name string, got, want *sparse.CSR) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols || got.NNZ() != want.NNZ() {
		t.Fatalf("%s shape %dx%d/%d, want %dx%d/%d", name,
			got.Rows, got.Cols, got.NNZ(), want.Rows, want.Cols, want.NNZ())
	}
	for i, p := range want.RowPtr {
		if got.RowPtr[i] != p {
			t.Fatalf("%s RowPtr[%d] = %d, want %d", name, i, got.RowPtr[i], p)
		}
	}
	for i, c := range want.ColIdx {
		if got.ColIdx[i] != c {
			t.Fatalf("%s ColIdx[%d] = %d, want %d", name, i, got.ColIdx[i], c)
		}
	}
	for i, v := range want.Val {
		if got.Val[i] != v {
			t.Fatalf("%s Val[%d] = %v, want %v", name, i, got.Val[i], v)
		}
	}
}

func TestParseEdgeListMatchesSerialGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		text := randomEdgeText(rng, 1+rng.Intn(400))
		directed := rng.Intn(2) == 0
		minNodes := rng.Intn(3) * rng.Intn(50)
		want, serr := graph.ReadEdgeList(strings.NewReader(text), directed, minNodes)
		for _, workers := range []int{1, 2, 3, 7, 16} {
			got, perr := ParseEdgeList([]byte(text), directed, minNodes, par.New(workers))
			if (serr == nil) != (perr == nil) {
				t.Fatalf("trial %d workers %d: serial err %v, parallel err %v", trial, workers, serr, perr)
			}
			if serr != nil {
				if serr.Error() != perr.Error() {
					t.Fatalf("trial %d workers %d: serial error %q, parallel %q", trial, workers, serr, perr)
				}
				continue
			}
			graphsEqual(t, got, want)
		}
	}
}

// randomEdgeText generates edge-list text mixing edges, comments, blank
// lines, '\r\n' endings, duplicate edges, self-loops and messy spacing.
func randomEdgeText(rng *rand.Rand, lines int) string {
	var sb strings.Builder
	n := 1 + rng.Intn(60)
	for i := 0; i < lines; i++ {
		switch r := rng.Float64(); {
		case r < 0.05:
			sb.WriteString("# a comment line\n")
		case r < 0.08:
			sb.WriteString("% another comment\n")
		case r < 0.12:
			sb.WriteString("\n")
		case r < 0.14:
			sb.WriteString("   \t \n")
		default:
			u, v := rng.Intn(n), rng.Intn(n)
			pad1 := strings.Repeat(" ", rng.Intn(3))
			sep := []string{" ", "\t", "  ", " \t"}[rng.Intn(4)]
			end := []string{"\n", "\r\n", " \n", "\t\r\n"}[rng.Intn(4)]
			fmt.Fprintf(&sb, "%s%d%s%d%s", pad1, u, sep, v, end)
		}
	}
	return sb.String()
}

func TestParseEdgeListErrorLineNumbers(t *testing.T) {
	// Build a long input with the bad line deep enough that it lands in a
	// late chunk for every worker count tested.
	var sb strings.Builder
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i%97, (i+1)%97)
	}
	sb.WriteString("not numbers\n")
	for i := 0; i < 500; i++ {
		sb.WriteString("bogus too\n") // later errors must not win
	}
	text := sb.String()
	want, serr := graph.ReadEdgeList(strings.NewReader(text), false, 0)
	if want != nil || serr == nil {
		t.Fatalf("serial: graph %v err %v", want, serr)
	}
	if !strings.Contains(serr.Error(), "line 5001") {
		t.Fatalf("serial error %q does not name line 5001", serr)
	}
	for _, workers := range []int{1, 2, 5, 13} {
		_, perr := ParseEdgeList([]byte(text), false, 0, par.New(workers))
		if perr == nil || perr.Error() != serr.Error() {
			t.Fatalf("workers %d: error %q, want %q", workers, perr, serr)
		}
	}
}

func TestParseEdgeListWriteReadCycle(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g, err := graph.GenErdosRenyi(300, 1200, directed, 5)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := graph.WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		want, err := graph.ReadEdgeList(bytes.NewReader(buf.Bytes()), directed, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseEdgeList(buf.Bytes(), directed, 0, par.New(8))
		if err != nil {
			t.Fatal(err)
		}
		graphsEqual(t, got, want)
	}
}

func TestParseEdgeListNilPoolAndEdgeCases(t *testing.T) {
	g, err := ParseEdgeList([]byte("0 1\n1 2"), false, 0, nil) // no trailing newline
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.NumEdges != 2 {
		t.Fatalf("got n=%d m=%d", g.N, g.NumEdges)
	}
	if _, err := ParseEdgeList(nil, false, 0, par.New(4)); err == nil {
		t.Fatal("empty input without minNodes accepted")
	}
	g, err = ParseEdgeList([]byte("# nothing\n"), true, 7, par.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 7 || g.NumEdges != 0 {
		t.Fatalf("got n=%d m=%d, want n=7 m=0", g.N, g.NumEdges)
	}
}

// TestParseEdgeListOversizedLine: both parsers must reject a line past
// graph.MaxLineLen (the serial scanner's cap), keeping the accepted
// language identical even though the error text differs.
func TestParseEdgeListOversizedLine(t *testing.T) {
	// comment pads a comment line to exactly n bytes (excluding '\n').
	comment := func(n int) string { return "#" + strings.Repeat("x", n-1) }
	cases := []struct {
		name string
		text string
		ok   bool
	}{
		// The scanner rejects any line of MaxLineLen bytes or more,
		// terminated or not; both parsers must draw the same boundary.
		{"way over", "0 1\n" + comment(graph.MaxLineLen+5) + "\n1 2\n", false},
		{"terminated at cap", "0 1\n" + comment(graph.MaxLineLen) + "\n1 2\n", false},
		{"terminated under cap", "0 1\n" + comment(graph.MaxLineLen-1) + "\n1 2\n", true},
		{"unterminated at cap", "0 1\n" + comment(graph.MaxLineLen), false},
		{"unterminated under cap", "0 1\n" + comment(graph.MaxLineLen-1), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, serr := graph.ReadEdgeList(strings.NewReader(tc.text), false, 0)
			if (serr == nil) != tc.ok {
				t.Fatalf("serial: err = %v, want ok=%v", serr, tc.ok)
			}
			for _, workers := range []int{1, 4} {
				_, perr := ParseEdgeList([]byte(tc.text), false, 0, par.New(workers))
				if (perr == nil) != tc.ok {
					t.Fatalf("workers %d: err = %v, want ok=%v (serial: %v)", workers, perr, tc.ok, serr)
				}
			}
		})
	}
}

func TestChunkBoundsLineAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		data := []byte(randomEdgeText(rng, rng.Intn(40)))
		nc := 1 + rng.Intn(9)
		bounds := chunkBounds(data, nc)
		if bounds[0] != 0 || bounds[len(bounds)-1] != len(data) {
			t.Fatalf("bounds %v do not cover [0,%d)", bounds, len(data))
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] && !(len(data) == 0 && bounds[i] == 0) {
				t.Fatalf("bounds %v not strictly increasing", bounds)
			}
			if b := bounds[i]; b < len(data) && b > 0 && data[b-1] != '\n' {
				t.Fatalf("boundary %d not line-aligned in %q", b, data)
			}
		}
	}
}
