// Package gio is the massive-graph ingestion layer: a chunked parallel
// edge-list parser and the versioned NRPG binary snapshot format with
// heap and zero-copy mmap loaders.
//
// The text parser splits its input into byte ranges aligned to line
// boundaries, parses each range concurrently on the shared par.Pool with
// the exact line grammar of graph.ReadEdgeList (graph.ParseEdgeLine), and
// concatenates the per-chunk edge slices in chunk order — so the edge
// sequence, and therefore the CSR built from it, is bit-identical to the
// serial reader at every thread count.
//
// NRPG snapshots store the CSR arrays in their in-memory layout (raw
// little-endian int64 row pointers, int32 column indices, float64
// values), which is what makes LoadMmap zero-copy: the arrays are sliced
// straight out of the mapping, multi-gigabyte graphs boot in
// milliseconds, and page cache is shared across processes serving the
// same snapshot.
package gio

import (
	"fmt"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/par"
)

// parseChunk is the result of parsing one byte range of the input.
type parseChunk struct {
	edges   []graph.Edge
	lines   int   // total lines seen, including comments and blanks
	maxID   int32 // largest node id in edges, -1 if none
	errLine int   // 1-based line offset within the chunk of err
	err     error
}

// ParseEdgeList parses a whitespace-separated edge list (the grammar of
// graph.ReadEdgeList: "u v" per line, '#'/'%' comments, '\r\n' tolerated,
// lines capped at graph.MaxLineLen) from an in-memory byte slice,
// splitting the work across the pool. The resulting graph is
// bit-identical to graph.ReadEdgeList on the same bytes for any pool
// size, and malformed-line errors name the same (1-based) line the
// serial reader would have stopped at (oversized lines also fail both
// parsers, with differing messages — the serial reader's scanner reports
// no line number). A nil pool parses on one goroutine.
func ParseEdgeList(data []byte, directed bool, minNodes int, p *par.Pool) (*graph.Graph, error) {
	bounds := chunkBounds(data, p.Chunks(len(data)))
	chunks := make([]parseChunk, len(bounds)-1)
	p.For(len(chunks), func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			chunks[c] = parseRange(data[bounds[c]:bounds[c+1]])
		}
	})

	// Surface the earliest error at its global line number, exactly where
	// the serial reader would have stopped.
	line := 0
	for _, c := range chunks {
		if c.err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line+c.errLine, c.err)
		}
		line += c.lines
	}

	total := 0
	maxID := int32(-1)
	for _, c := range chunks {
		total += len(c.edges)
		if c.maxID > maxID {
			maxID = c.maxID
		}
	}
	edges := make([]graph.Edge, 0, total)
	for _, c := range chunks {
		edges = append(edges, c.edges...)
	}
	n := int(maxID) + 1
	if n < minNodes {
		n = minNodes
	}
	if n == 0 {
		return nil, fmt.Errorf("graph: empty edge list and no minimum node count")
	}
	return graph.New(n, edges, directed)
}

// chunkBounds splits [0, len(data)) into nc byte ranges whose boundaries
// sit just past a '\n', so every chunk starts at a line start and no line
// crosses a boundary. Boundaries depend only on the data and nc.
func chunkBounds(data []byte, nc int) []int {
	if nc < 1 {
		nc = 1
	}
	bounds := make([]int, 1, nc+1)
	for w := 1; w < nc; w++ {
		cut := w * len(data) / nc
		if cut < bounds[len(bounds)-1] {
			cut = bounds[len(bounds)-1]
		}
		// Advance to just past the next newline; the remainder of the file
		// joins the final chunk if none is found.
		for cut < len(data) && data[cut] != '\n' {
			cut++
		}
		if cut < len(data) {
			cut++
		}
		if cut > bounds[len(bounds)-1] {
			bounds = append(bounds, cut)
		}
	}
	if last := bounds[len(bounds)-1]; last < len(data) || len(bounds) == 1 {
		bounds = append(bounds, len(data))
	}
	return bounds
}

// parseRange parses one line-aligned byte range. On error it keeps the
// 1-based line offset within the range so the caller can reconstruct the
// global line number.
func parseRange(data []byte) parseChunk {
	c := parseChunk{maxID: -1}
	for pos := 0; pos < len(data); {
		end := pos
		for end < len(data) && data[end] != '\n' {
			end++
		}
		c.lines++
		// Match the serial reader's scanner cap exactly: bufio.Scanner
		// declares ErrTooLong once its MaxLineLen buffer fills without
		// yielding a token, which rejects every line of MaxLineLen bytes
		// or more (the '\n' of a shorter line always fits alongside it).
		if end-pos >= graph.MaxLineLen {
			c.errLine, c.err = c.lines, fmt.Errorf("line exceeds %d bytes", graph.MaxLineLen-1)
			return c
		}
		u, v, ok, err := graph.ParseEdgeLine(data[pos:end])
		if err != nil {
			c.errLine, c.err = c.lines, err
			return c
		}
		if ok {
			c.edges = append(c.edges, graph.Edge{U: u, V: v})
			if u > c.maxID {
				c.maxID = u
			}
			if v > c.maxID {
				c.maxID = v
			}
		}
		pos = end + 1
	}
	return c
}
