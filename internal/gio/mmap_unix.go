//go:build unix && (amd64 || arm64)

package gio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"syscall"
	"unsafe"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/sparse"
)

// LoadMmap maps an NRPG snapshot and builds the graph zero-copy: the CSR
// arrays (and attribute rows) are slices into the read-only mapping, so
// a multi-gigabyte graph boots in milliseconds, pages fault in lazily as
// they are touched, and concurrent processes serving the same snapshot
// share one page-cache copy.
//
// Contract: the returned graph's arrays are backed by PROT_READ pages —
// writing through them faults. Every mutation path in this codebase is
// copy-on-write (AddEdges/RemoveEdges, ScaleRows, Transition all build
// fresh arrays), so read-only backing is safe by construction. The
// Closer unmaps the file; the graph (and any graph derived from it that
// still shares arrays, such as an undirected Transpose) must not be used
// afterwards. Unlike Load, LoadMmap validates the header, section table
// and row-pointer structure but skips the trailing checksum and the
// per-entry column-index scan — verifying them would touch every page,
// forfeiting lazy loading; run Load (or `nrp convert`) to fully verify a
// snapshot of doubtful provenance.
func LoadMmap(path string) (*graph.Graph, [][]float64, io.Closer, error) {
	snap, closer, err := LoadMmapSnapshot(path)
	if err != nil {
		return nil, nil, nil, err
	}
	return snap.Graph, snap.Attrs, closer, nil
}

// LoadMmapSnapshot is LoadMmap plus the optional sections: the walk
// index, when present, is sliced zero-copy out of the mapping (its
// fixed prefix is validated; the endpoint array is range-checked only
// when a consumer wraps it, preserving lazy loading). Unknown optional
// sections are skipped per the format's forward-compatibility rule.
func LoadMmapSnapshot(path string) (*Snapshot, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("gio: opening snapshot: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("gio: stat snapshot: %w", err)
	}
	size := st.Size()
	if size < headerSize+4 {
		return nil, nil, fmt.Errorf("gio: snapshot %s is %d bytes, smaller than an empty NRPG file", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("gio: mmap %s: %w", path, err)
	}
	m := &mapping{data: data}
	snap, err := loadMapped(data)
	if err != nil {
		m.Close()
		return nil, nil, err
	}
	return snap, m, nil
}

func loadMapped(data []byte) (*Snapshot, error) {
	h, err := parseHeader(data[:headerSize], func(n int) ([]byte, error) {
		if headerSize+n > len(data) {
			return nil, truncated(io.ErrUnexpectedEOF)
		}
		return data[headerSize : headerSize+n], nil
	})
	if err != nil {
		return nil, err
	}
	last := h.sections[len(h.sections)-1]
	if want := last.offset + last.length + 4; int64(len(data)) != want {
		return nil, fmt.Errorf("gio: snapshot is %d bytes, header describes %d", len(data), want)
	}
	body := func(s tableSection) []byte { return data[s.offset : s.offset+s.length] }

	var (
		adjRowPtr, radjRowPtr []int
		adjColIdx, radjColIdx []int32
		adjVal, radjVal       []float64
		labels                [][]int32
		attrs                 [][]float64
		wi                    *WalkIndexSection
	)
	for _, s := range h.sections {
		switch s.tag {
		case secAdjRowPtr:
			adjRowPtr = castInts(body(s))
		case secAdjColIdx:
			adjColIdx = castInt32s(body(s))
		case secVal, secAdjVal:
			adjVal = castFloat64s(body(s))
		case secRAdjRowPtr:
			radjRowPtr = castInts(body(s))
		case secRAdjColIdx:
			radjColIdx = castInt32s(body(s))
		case secRAdjVal:
			radjVal = castFloat64s(body(s))
		case secLabels:
			counts := castInt32s(body(s)[:4*h.n])
			flat := castInt32s(body(s)[4*h.n:])
			labels, err = assembleLabels(counts, flat)
			if err != nil {
				return nil, fmt.Errorf("gio: corrupt labels: %w", err)
			}
		case secWalkIdx:
			if s.length < walkIdxHeadSize {
				return nil, fmt.Errorf("gio: walk index section is %d bytes, shorter than its %d-byte header", s.length, walkIdxHeadSize)
			}
			b := body(s)
			alpha := math.Float64frombits(binary.LittleEndian.Uint64(b[0:8]))
			k := int64(binary.LittleEndian.Uint64(b[8:16]))
			wi, err = checkWalkIndexHead(alpha, k, h.n, s.length)
			if err != nil {
				return nil, fmt.Errorf("gio: reading section %d: %w", s.tag, err)
			}
			wi.Seed = int64(binary.LittleEndian.Uint64(b[16:24]))
			wi.Ends = castInt32s(b[walkIdxHeadSize:])
		case secAttrs:
			attrs = sliceRows(castFloat64s(body(s)), int(h.n), int(h.attrDim))
		}
	}

	adj, err := csrFromMapped(int(h.n), int(h.nnz), adjRowPtr, adjColIdx, adjVal)
	if err != nil {
		return nil, fmt.Errorf("gio: corrupt adjacency: %w", err)
	}
	var radj *sparse.CSR
	if h.has(flagHasRAdj) {
		if h.has(flagUnitVal) {
			radjVal = adjVal
		}
		radj, err = csrFromMapped(int(h.n), int(h.nnz), radjRowPtr, radjColIdx, radjVal)
		if err != nil {
			return nil, fmt.Errorf("gio: corrupt reverse adjacency: %w", err)
		}
	} else {
		radj = &sparse.CSR{Rows: adj.Rows, Cols: adj.Cols, RowPtr: adj.RowPtr, ColIdx: adj.ColIdx, Val: adj.Val}
	}
	snap, err := assemble(h, adj, radj, labels, attrs)
	if err != nil {
		return nil, err
	}
	snap.WalkIndex = wi
	return snap, nil
}

// csrFromMapped builds a CSR over mapped arrays, validating the row
// pointers (O(n), the difference between a clean error and an
// out-of-range panic later) but not the column indices (O(nnz), would
// fault in every page).
func csrFromMapped(n, nnz int, rowPtr []int, colIdx []int32, val []float64) (*sparse.CSR, error) {
	if len(rowPtr) != n+1 || rowPtr[0] != 0 || rowPtr[n] != nnz {
		return nil, fmt.Errorf("row pointers span [%d,%d], want [0,%d]", rowPtr[0], rowPtr[n], nnz)
	}
	for i := 0; i < n; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return nil, fmt.Errorf("row pointers not monotone at row %d", i)
		}
	}
	return &sparse.CSR{Rows: n, Cols: n, RowPtr: rowPtr, ColIdx: colIdx, Val: val}, nil
}

// assembleLabels slices per-node label rows out of the mapped flat array.
func assembleLabels(counts, flat []int32) ([][]int32, error) {
	labels := make([][]int32, len(counts))
	off := 0
	for v, c := range counts {
		if c < 0 || off+int(c) > len(flat) {
			return nil, fmt.Errorf("label counts overrun section at node %d", v)
		}
		if c > 0 {
			labels[v] = flat[off : off+int(c) : off+int(c)]
			off += int(c)
		}
	}
	if off != len(flat) {
		return nil, fmt.Errorf("label counts sum to %d, section holds %d", off, len(flat))
	}
	return labels, nil
}

// mapping is the io.Closer returned by LoadMmap; Close unmaps the
// snapshot (idempotently).
type mapping struct{ data []byte }

func (m *mapping) Close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}

// The casts below are what the format's 8-byte section alignment exists
// for: mmap returns page-aligned memory and every section offset is
// 8-aligned, so reinterpreting the bytes as int/int32/float64 slices is
// legal on the little-endian 64-bit platforms this file builds for.

func castInts(b []byte) []int {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), len(b)/8)
}

func castInt32s(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func castFloat64s(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}
