package gio

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nrp-embed/nrp/internal/graph"
)

func testWalkIndex(n, k int) *WalkIndexSection {
	ends := make([]int32, n*k)
	for i := range ends {
		// Deterministic endpoints within [-1, n), including lost walks.
		ends[i] = int32(i%(n+1)) - 1
	}
	return &WalkIndexSection{Alpha: 0.15, WalksPerNode: k, Seed: 42, Ends: ends}
}

func walkIndexesEqual(t *testing.T, got, want *WalkIndexSection) {
	t.Helper()
	if got == nil {
		t.Fatalf("walk index missing after load")
	}
	if got.Alpha != want.Alpha || got.WalksPerNode != want.WalksPerNode || got.Seed != want.Seed {
		t.Fatalf("walk index header = {%v %d %d}, want {%v %d %d}",
			got.Alpha, got.WalksPerNode, got.Seed, want.Alpha, want.WalksPerNode, want.Seed)
	}
	if len(got.Ends) != len(want.Ends) {
		t.Fatalf("walk index has %d endpoints, want %d", len(got.Ends), len(want.Ends))
	}
	for i := range got.Ends {
		if got.Ends[i] != want.Ends[i] {
			t.Fatalf("endpoint %d = %d, want %d", i, got.Ends[i], want.Ends[i])
		}
	}
}

func TestNRPGWalkIndexRoundTrip(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			wi := testWalkIndex(g.N, 4)
			var buf bytes.Buffer
			if err := SaveSnapshot(&buf, &Snapshot{Graph: g, WalkIndex: wi}); err != nil {
				t.Fatal(err)
			}

			snap, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			graphsEqual(t, snap.Graph, g)
			walkIndexesEqual(t, snap.WalkIndex, wi)

			// The legacy entry point still loads the graph and simply
			// ignores the optional payload.
			got, _, err := Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			graphsEqual(t, got, g)

			path := filepath.Join(t.TempDir(), "wi.nrpg")
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			msnap, closer, err := LoadMmapSnapshot(path)
			if err != nil {
				t.Fatal(err)
			}
			defer closer.Close()
			graphsEqual(t, msnap.Graph, g)
			walkIndexesEqual(t, msnap.WalkIndex, wi)

			// Deterministic bytes, walk index included.
			var buf2 bytes.Buffer
			if err := SaveSnapshot(&buf2, &Snapshot{Graph: g, WalkIndex: wi}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatal("re-saving changed the bytes")
			}
		})
	}
}

// retagOptionalSection rewrites the table tag of the first optional
// section and fixes the trailing CRC, simulating a snapshot written by a
// newer writer with an optional section this reader has never heard of.
func retagOptionalSection(t *testing.T, b []byte, oldTag, newTag uint32) {
	t.Helper()
	sectionCount := binary.LittleEndian.Uint64(b[64:72])
	found := false
	for i := 0; i < int(sectionCount); i++ {
		ent := b[headerSize+tableEntry*i:]
		if binary.LittleEndian.Uint32(ent[0:4]) == oldTag {
			binary.LittleEndian.PutUint32(ent[0:4], newTag)
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no section with tag %d in table", oldTag)
	}
	crc := crc32.Checksum(b[:len(b)-4], crcTable)
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc)
}

// TestOptionalSectionForwardCompat asserts the format's
// forward-compatibility rule: a reader must load a snapshot carrying an
// unknown optional section (tag ≥ secOptionalMin) as if that section
// were absent — same graph, no error — through both the stream and mmap
// loaders.
func TestOptionalSectionForwardCompat(t *testing.T) {
	g, err := graph.GenSBM(graph.SBMConfig{N: 120, M: 500, Communities: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, &Snapshot{Graph: g, WalkIndex: testWalkIndex(g.N, 3)}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	retagOptionalSection(t, b, secWalkIdx, 255)

	snap, err := LoadSnapshot(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("unknown optional section must be skipped, got error: %v", err)
	}
	graphsEqual(t, snap.Graph, g)
	if snap.WalkIndex != nil {
		t.Fatal("unknown optional section was decoded as a walk index")
	}

	path := filepath.Join(t.TempDir(), "future.nrpg")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	msnap, closer, err := LoadMmapSnapshot(path)
	if err != nil {
		t.Fatalf("mmap loader must skip unknown optional sections, got: %v", err)
	}
	defer closer.Close()
	graphsEqual(t, msnap.Graph, g)
	if msnap.WalkIndex != nil {
		t.Fatal("mmap loader decoded an unknown optional section as a walk index")
	}
}

// Required-range tags may not appear as extra sections: the exact-match
// rule for tags < secOptionalMin is what older readers rely on.
func TestOptionalSectionRejectsRequiredRangeTag(t *testing.T) {
	g, err := graph.GenSBM(graph.SBMConfig{N: 50, M: 200, Communities: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, &Snapshot{Graph: g, WalkIndex: testWalkIndex(g.N, 2)}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	retagOptionalSection(t, b, secWalkIdx, 100)
	if _, err := LoadSnapshot(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "required-range tag") {
		t.Fatalf("extra section with required-range tag accepted: %v", err)
	}
}

func TestSaveSnapshotValidatesWalkIndex(t *testing.T) {
	g, err := graph.New(3, []graph.Edge{{U: 0, V: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for name, wi := range map[string]*WalkIndexSection{
		"zero walks":      {Alpha: 0.15, WalksPerNode: 0, Ends: nil},
		"bad alpha":       {Alpha: 1.5, WalksPerNode: 1, Ends: []int32{0, 1, 2}},
		"wrong end count": {Alpha: 0.15, WalksPerNode: 2, Ends: []int32{0, 1, 2}},
	} {
		if err := SaveSnapshot(&buf, &Snapshot{Graph: g, WalkIndex: wi}); err == nil {
			t.Errorf("%s: invalid walk index accepted", name)
		}
	}
}

func TestLoadRejectsCorruptWalkIndexEndpoint(t *testing.T) {
	g, err := graph.New(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}, false)
	if err != nil {
		t.Fatal(err)
	}
	wi := testWalkIndex(g.N, 2)
	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, &Snapshot{Graph: g, WalkIndex: wi}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// The walk-index endpoints are the last section before the trailer.
	off := len(b) - 4 - 4*len(wi.Ends)
	binary.LittleEndian.PutUint32(b[off:], uint32(int32(g.N)))
	crc := crc32.Checksum(b[:len(b)-4], crcTable)
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc)
	if _, err := LoadSnapshot(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "walk endpoint") {
		t.Fatalf("out-of-range walk endpoint accepted: %v", err)
	}
}
