// Package par is the shared parallel execution engine of the NRP compute
// layers: a context-aware bounded worker pool with deterministic range
// partitioning and fixed-order tree reductions.
//
// Every compute kernel in internal/sparse, internal/matrix, internal/svd,
// internal/core and internal/dynamic parallelizes through a Pool instead of
// hand-rolled goroutine fan-outs, so thread budgets, cancellation and
// per-phase thread accounting behave uniformly across the pipeline.
//
// Determinism contract: For and ForWeighted split their iteration space
// into contiguous chunks whose boundaries depend only on the problem size
// and the pool's worker count — never on scheduling. Kernels that combine
// per-chunk partial results do so with TreeReduce (a fixed pairwise
// reduction order), so repeated runs with the same pool size are
// bit-identical, and runs with different pool sizes differ only by
// floating-point reassociation (≈ machine epsilon per reduction level).
package par

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Pool executes range-partitioned work on a bounded number of concurrent
// workers. A nil *Pool is valid and runs everything serially, so kernels
// can take a pool unconditionally. Pools are stateless between calls
// (goroutines are spawned per parallel region, capped at Workers()-1 plus
// the calling goroutine) and safe for concurrent use.
type Pool struct {
	workers int
	// busyNanos accumulates wall time spent inside parallel regions, the
	// "per-phase parallel wall time" surfaced in pipeline Stats.
	busyNanos atomic.Int64
}

// New returns a pool of n workers; n <= 0 selects GOMAXPROCS.
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers reports the pool's worker bound; a nil pool has one worker.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// ParallelWall reports the cumulative wall time spent inside this pool's
// parallel regions (For, ForWeighted, ForChunked, TreeReduce). Callers
// snapshot it before and after a pipeline phase to attribute kernel time
// per phase.
func (p *Pool) ParallelWall() time.Duration {
	if p == nil {
		return 0
	}
	return time.Duration(p.busyNanos.Load())
}

func (p *Pool) track(start time.Time) {
	if p != nil {
		p.busyNanos.Add(int64(time.Since(start)))
	}
}

// Chunks reports how many chunks For and ForWeighted split an n-sized
// range into — min(Workers, n), at least 1. Kernels allocating per-chunk
// accumulators size them with this.
func (p *Pool) Chunks(n int) int {
	w := p.Workers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runChunks invokes body(w, bounds[w], bounds[w+1]) for each chunk w,
// concurrently when more than one chunk exists. The calling goroutine
// runs chunk 0, so a single-chunk call has zero scheduling overhead.
func (p *Pool) runChunks(bounds []int, body func(w, lo, hi int)) {
	nc := len(bounds) - 1
	if nc <= 0 {
		return
	}
	if nc == 1 {
		body(0, bounds[0], bounds[1])
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < nc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body(w, bounds[w], bounds[w+1])
		}(w)
	}
	body(0, bounds[0], bounds[1])
	wg.Wait()
}

// For splits [0, n) into Workers() near-equal contiguous chunks and runs
// body once per chunk, concurrently. Chunk boundaries depend only on n
// and the pool size. body receives its chunk index w (dense in
// [0, chunks)) for indexing per-worker accumulators.
func (p *Pool) For(n int, body func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	defer p.track(time.Now())
	nc := p.Chunks(n)
	bounds := make([]int, nc+1)
	for w := 0; w <= nc; w++ {
		bounds[w] = w * n / nc
	}
	p.runChunks(bounds, body)
}

// ForWeighted splits [0, n) into Workers() contiguous chunks of
// near-equal total weight and runs body once per non-empty chunk,
// concurrently. prefix must be a monotone prefix-weight array of length
// n+1 with prefix[i] = total weight of [0, i) — a CSR RowPtr is exactly
// this shape, making ForWeighted the natural scheduler for skewed
// sparse-row work. Boundaries depend only on prefix and the pool size.
func (p *Pool) ForWeighted(n int, prefix []int, body func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	total := prefix[n] - prefix[0]
	if total <= 0 {
		// Degenerate weights: fall back to equal-count chunks.
		p.For(n, body)
		return
	}
	defer p.track(time.Now())
	nc := p.Chunks(n)
	bounds := make([]int, nc+1)
	bounds[nc] = n
	for w := 1; w < nc; w++ {
		target := prefix[0] + w*total/nc
		// First i with prefix[i] >= target; clamp to keep chunks monotone.
		i := sort.SearchInts(prefix, target)
		if i > n {
			i = n
		}
		if i < bounds[w-1] {
			i = bounds[w-1]
		}
		bounds[w] = i
	}
	p.runChunks(bounds, body)
}

// ForChunked schedules fixed-size chunks of [0, n) dynamically: workers
// claim the next chunk from an atomic cursor, so skewed per-item cost
// load-balances. body receives a stable worker index w in [0, Workers())
// for per-worker scratch state and may be called many times per worker.
// The context is checked before each chunk claim; the first error (by
// worker index) is returned after all workers stop. Chunk boundaries are
// deterministic; their assignment to workers is not — use For or
// ForWeighted when per-worker partials feed a reduction.
func (p *Pool) ForChunked(ctx context.Context, n, chunk int, body func(w, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if chunk < 1 {
		chunk = 1
	}
	defer p.track(time.Now())
	workers := p.Workers()
	if nc := (n + chunk - 1) / chunk; workers > nc {
		workers = nc
	}
	var (
		cursor atomic.Int64
		errs   = make([]error, workers)
		wg     sync.WaitGroup
	)
	run := func(w int) {
		for {
			if err := ctx.Err(); err != nil {
				errs[w] = err
				return
			}
			lo := int(cursor.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if err := body(w, lo, hi); err != nil {
				errs[w] = err
				return
			}
		}
	}
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			run(w)
		}(w)
	}
	run(0)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// TreeReduce folds equal-length partial slices into parts[0] with a fixed
// pairwise tree order (parts[i] += parts[i+span], span doubling), the
// deterministic reduction every per-worker accumulator in the engine is
// merged with. The element loop parallelizes across the pool; the
// reduction order per element is independent of the partition, so the
// result depends only on len(parts) — not on scheduling or pool size.
// Returns parts[0] (nil if parts is empty). The other slices are
// clobbered.
func (p *Pool) TreeReduce(parts [][]float64) []float64 {
	if len(parts) == 0 {
		return nil
	}
	if len(parts) == 1 {
		return parts[0]
	}
	// No track here: the For below accounts the region once.
	out := parts[0]
	p.For(len(out), func(_, lo, hi int) {
		for span := 1; span < len(parts); span *= 2 {
			for i := 0; i+span < len(parts); i += 2 * span {
				a, b := parts[i][lo:hi], parts[i+span][lo:hi]
				for j, v := range b {
					a[j] += v
				}
			}
		}
	})
	return out
}
