package par

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

// TestForCoversRange checks that every index is visited exactly once and
// chunk indexes are dense, for a spread of sizes and worker counts.
func TestForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 17} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			p := New(workers)
			visited := make([]int32, n)
			var chunks atomic.Int32
			p.For(n, func(w, lo, hi int) {
				if lo > hi || lo < 0 || hi > n {
					t.Errorf("workers=%d n=%d: bad chunk [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visited[i], 1)
				}
				chunks.Add(1)
			})
			if n > 0 && int(chunks.Load()) > workers {
				t.Fatalf("workers=%d n=%d: %d chunks, want <= workers", workers, n, chunks.Load())
			}
			for i, c := range visited {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestForNilPool checks the nil pool runs serially over the whole range.
func TestForNilPool(t *testing.T) {
	var p *Pool
	if got := p.Workers(); got != 1 {
		t.Fatalf("nil pool workers = %d, want 1", got)
	}
	calls := 0
	p.For(10, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != 10 {
			t.Fatalf("nil pool chunk (%d,%d,%d), want (0,0,10)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("nil pool made %d chunk calls, want 1", calls)
	}
	if p.ParallelWall() != 0 {
		t.Fatalf("nil pool reports nonzero parallel wall")
	}
}

// TestForWeightedBalance checks weighted chunking covers the range once
// and roughly balances total weight across chunks.
func TestForWeightedBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 500
	weights := make([]int, n)
	prefix := make([]int, n+1)
	for i := range weights {
		// Heavy-tailed weights: most rows tiny, a few huge.
		w := 1
		if rng.Intn(20) == 0 {
			w = 200 + rng.Intn(500)
		}
		weights[i] = w
		prefix[i+1] = prefix[i] + w
	}
	p := New(4)
	visited := make([]int32, n)
	var chunkWeights [4]int64
	p.ForWeighted(n, prefix, func(w, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visited[i], 1)
			s += int64(weights[i])
		}
		atomic.AddInt64(&chunkWeights[w], s)
	})
	for i, c := range visited {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
	total := int64(prefix[n])
	for w, s := range chunkWeights {
		if s > total {
			t.Fatalf("chunk %d weight %d exceeds total %d", w, s, total)
		}
	}
	// The largest chunk should hold well under the whole weight: each
	// boundary targets total/4, so no chunk exceeds total/4 plus one
	// maximal row.
	maxRow := int64(0)
	for _, w := range weights {
		if int64(w) > maxRow {
			maxRow = int64(w)
		}
	}
	for w, s := range chunkWeights {
		if s > total/4+maxRow {
			t.Fatalf("chunk %d weight %d, want <= %d", w, s, total/4+maxRow)
		}
	}
}

// TestForWeightedZeroTotal exercises the equal-count fallback.
func TestForWeightedZeroTotal(t *testing.T) {
	p := New(3)
	prefix := make([]int, 10)
	visited := make([]int32, 9)
	p.ForWeighted(9, prefix, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visited[i], 1)
		}
	})
	for i, c := range visited {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

// TestForChunkedCancellation checks a cancelled context stops scheduling
// and surfaces ctx.Err().
func TestForChunkedCancellation(t *testing.T) {
	p := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	err := p.ForChunked(ctx, 1_000_000, 8, func(w, lo, hi int) error {
		if done.Add(int64(hi-lo)) > 256 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if done.Load() >= 1_000_000 {
		t.Fatalf("cancellation did not stop the schedule")
	}
}

// TestForChunkedError propagates a body error and stops the worker that
// hit it.
func TestForChunkedError(t *testing.T) {
	p := New(2)
	boom := errors.New("boom")
	err := p.ForChunked(context.Background(), 100, 10, func(w, lo, hi int) error {
		if lo >= 50 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestForChunkedCovers checks full coverage with worker indexes in range.
func TestForChunkedCovers(t *testing.T) {
	p := New(3)
	n := 1000
	visited := make([]int32, n)
	err := p.ForChunked(context.Background(), n, 7, func(w, lo, hi int) error {
		if w < 0 || w >= 3 {
			return fmt.Errorf("worker index %d out of range", w)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visited[i], 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range visited {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

// TestTreeReduceDeterministic checks the reduction is exact on integers,
// independent of pool size, and bit-identical across repeats.
func TestTreeReduceDeterministic(t *testing.T) {
	const parts, width = 13, 257
	mk := func() [][]float64 {
		rng := rand.New(rand.NewSource(11))
		ps := make([][]float64, parts)
		for w := range ps {
			ps[w] = make([]float64, width)
			for j := range ps[w] {
				ps[w][j] = rng.NormFloat64()
			}
		}
		return ps
	}
	ref := New(1).TreeReduce(mk())
	for _, workers := range []int{2, 5, 8} {
		got := New(workers).TreeReduce(mk())
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("workers=%d: element %d = %v, want %v (tree order must not depend on pool size)",
					workers, j, got[j], ref[j])
			}
		}
	}
}

// TestParallelWallAccumulates checks the busy-time accounting moves.
func TestParallelWallAccumulates(t *testing.T) {
	p := New(2)
	sinks := make([]float64, p.Workers())
	p.For(1_000_00, func(w, lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i) * 1e-9
		}
		sinks[w] = s
	})
	if p.ParallelWall() <= 0 {
		t.Fatalf("ParallelWall = %v, want > 0", p.ParallelWall())
	}
}
