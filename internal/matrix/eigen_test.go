package matrix

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// randomSymmetric returns a random symmetric matrix.
func randomSymmetric(n int, rng *rand.Rand) *Dense {
	a := GaussianDense(n, n, rng)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (a.At(i, j) + a.At(j, i)) / 2
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func TestSymEigenDiagonal(t *testing.T) {
	a := Diag([]float64{3, -1, 2})
	vals, vecs := SymEigen(a)
	want := []float64{3, 2, -1}
	for i, v := range want {
		if !almostEqual(vals[i], v, 1e-12) {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	// Eigenvectors are (signed) unit basis vectors.
	for j := 0; j < 3; j++ {
		col := []float64{vecs.At(0, j), vecs.At(1, j), vecs.At(2, j)}
		if !almostEqual(Norm2(col), 1, 1e-12) {
			t.Fatalf("eigenvector %d not unit: %v", j, col)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewDenseFromRows([][]float64{{2, 1}, {1, 2}})
	vals, _ := SymEigen(a)
	if !almostEqual(vals[0], 3, 1e-12) || !almostEqual(vals[1], 1, 1e-12) {
		t.Fatalf("vals=%v want [3 1]", vals)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{1, 2, 3, 5, 10, 25, 60} {
		a := randomSymmetric(n, rng)
		vals, vecs := SymEigen(a)
		recon := Mul(Mul(vecs, Diag(vals)), vecs.T())
		if d := recon.MaxAbsDiff(a); d > 1e-8 {
			t.Fatalf("n=%d reconstruction error %v", n, d)
		}
		checkOrthonormalCols(t, vecs, 1e-9)
		if !sort.IsSorted(sort.Reverse(sort.Float64Slice(vals))) {
			t.Fatalf("n=%d eigenvalues not descending: %v", n, vals)
		}
	}
}

// Property: for random symmetric A, A·v_i == λ_i·v_i per eigenpair.
func TestSymEigenPairsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randomSymmetric(n, rng)
		vals, vecs := SymEigen(a)
		av := Mul(a, vecs)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if math.Abs(av.At(i, j)-vals[j]*vecs.At(i, j)) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: trace(A) == sum of eigenvalues.
func TestSymEigenTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randomSymmetric(n, rng)
		vals, _ := SymEigen(a)
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += vals[i]
		}
		return math.Abs(trace-sum) < 1e-8*math.Max(1, math.Abs(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKEigen(t *testing.T) {
	a := Diag([]float64{5, 1, 4, 2})
	vals, vecs := TopKEigen(a, 2)
	if len(vals) != 2 || !almostEqual(vals[0], 5, 1e-12) || !almostEqual(vals[1], 4, 1e-12) {
		t.Fatalf("TopKEigen vals=%v", vals)
	}
	if vecs.Cols != 2 || vecs.Rows != 4 {
		t.Fatalf("TopKEigen vecs shape %dx%d", vecs.Rows, vecs.Cols)
	}
	// Requesting more than n clamps.
	vals, _ = TopKEigen(a, 10)
	if len(vals) != 4 {
		t.Fatalf("clamp failed: %v", vals)
	}
}

func TestSymEigenEmpty(t *testing.T) {
	vals, vecs := SymEigen(NewDense(0, 0))
	if len(vals) != 0 || vecs.Rows != 0 {
		t.Fatal("empty eigen failed")
	}
}

func TestSymEigenRejectsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SymEigen(NewDense(2, 3))
}
