package matrix

import "math/rand"

// GaussianDense returns an r-by-c matrix with i.i.d. standard normal
// entries drawn from rng. Used for the random projections in BKSVD and
// RandNE.
func GaussianDense(r, c int, rng *rand.Rand) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}
