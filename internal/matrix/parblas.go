package matrix

// This file holds the cache-blocked, pool-parallel kernels of the dense
// layer. Every function takes a *par.Pool (nil = serial) and follows the
// engine's determinism contract:
//
//   - MulPool and MulABtPool partition output rows, so each element's
//     accumulation order matches the serial kernel exactly — results are
//     bit-identical to Mul/MulABt for every pool size.
//   - MulAtBPool and GramPool accumulate per-worker partial products over
//     row ranges and merge them in fixed tree order — bit-identical for a
//     fixed pool size, ≈machine-epsilon reassociation across sizes.
//   - OrthonormalizePool is a blocked classical Gram–Schmidt with full
//     reorthogonalization (BCGS2) whose parallel building blocks write
//     disjoint ranges in fixed loop order — bit-identical for every pool
//     size (including nil), though not to the serial modified-Gram-Schmidt
//     Orthonormalize, which orders its projections differently.

import (
	"math"

	"github.com/nrp-embed/nrp/internal/par"
)

// mulKBlock is the k-panel height of the blocked GEMM inner loops: panels
// of b this tall stay resident in L1/L2 while a chunk of output rows
// streams over them. Blocking over k preserves each output element's
// ascending-k accumulation order, so results match the unblocked kernel
// bit for bit.
const mulKBlock = 256

// MulPool returns a·b, row-partitioned across the pool and cache-blocked
// over the inner dimension. Bit-identical to Mul for every pool size.
func MulPool(p *par.Pool, a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic("matrix: MulPool shape mismatch")
	}
	out := NewDense(a.Rows, b.Cols)
	p.For(a.Rows, func(_, lo, hi int) {
		for k0 := 0; k0 < a.Cols; k0 += mulKBlock {
			k1 := k0 + mulKBlock
			if k1 > a.Cols {
				k1 = a.Cols
			}
			for i := lo; i < hi; i++ {
				arow := a.Row(i)
				orow := out.Row(i)
				for k := k0; k < k1; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					brow := b.Row(k)
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	})
	return out
}

// MulABtPool returns a·bᵀ, row-partitioned across the pool. Each output
// element is one serial dot product, so results are bit-identical to
// MulABt for every pool size.
func MulABtPool(p *par.Pool, a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic("matrix: MulABtPool shape mismatch")
	}
	out := NewDense(a.Rows, b.Rows)
	p.For(a.Rows, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				orow[j] = Dot(arow, b.Row(j))
			}
		}
	})
	return out
}

// MulAtBPool returns aᵀ·b. The accumulation runs over the shared row
// dimension, so each worker reduces its row range into a private
// a.Cols×b.Cols partial and the partials merge in fixed tree order:
// bit-identical for a fixed pool size.
func MulAtBPool(p *par.Pool, a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic("matrix: MulAtBPool shape mismatch")
	}
	nc := p.Chunks(a.Rows)
	if nc <= 1 {
		return MulAtB(a, b)
	}
	parts := make([][]float64, nc)
	p.For(a.Rows, func(w, lo, hi int) {
		acc := make([]float64, a.Cols*b.Cols)
		for r := lo; r < hi; r++ {
			arow := a.Row(r)
			brow := b.Row(r)
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := acc[i*b.Cols : (i+1)*b.Cols]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		parts[w] = acc
	})
	return &Dense{Rows: a.Cols, Cols: b.Cols, Data: p.TreeReduce(parts)}
}

// GramPool returns aᵀ·a, exploiting symmetry: each worker accumulates
// only the upper triangle of its row-range partial (half the flops of
// MulAtBPool), the partials merge in fixed tree order, and the result is
// mirrored. Bit-identical for a fixed pool size.
func GramPool(p *par.Pool, a *Dense) *Dense {
	k := a.Cols
	if a.Rows == 0 {
		return NewDense(k, k)
	}
	nc := p.Chunks(a.Rows)
	parts := make([][]float64, nc)
	p.For(a.Rows, func(w, lo, hi int) {
		acc := make([]float64, k*k)
		for r := lo; r < hi; r++ {
			arow := a.Row(r)
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := acc[i*k : (i+1)*k]
				for j := i; j < k; j++ {
					orow[j] += av * arow[j]
				}
			}
		}
		parts[w] = acc
	})
	out := &Dense{Rows: k, Cols: k, Data: p.TreeReduce(parts)}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			out.Data[j*k+i] = out.Data[i*k+j]
		}
	}
	return out
}

// orthBlock is the column-block width of OrthonormalizePool. Within a
// block, columns are orthonormalized serially (O(n·nb²) per block); the
// dominant inter-block projections are the parallel kernels.
const orthBlock = 32

// OrthonormalizePool returns a matrix whose columns form an orthonormal
// basis of the column space of a — the pool-parallel counterpart of
// Orthonormalize, computed by blocked classical Gram–Schmidt with full
// reorthogonalization (BCGS2): each 32-column block is projected against
// the basis built so far (twice, via parallel panel products), then
// orthonormalized internally by serial MGS2. Numerically dependent
// columns are dropped with Orthonormalize's tolerance. The parallel
// building blocks write disjoint ranges in fixed loop order, so the
// result is bit-identical for every pool size, including nil.
func OrthonormalizePool(p *par.Pool, a *Dense) *Dense {
	n, c := a.Rows, a.Cols
	if c == 0 || n == 0 {
		return NewDense(n, 0)
	}
	// qt holds the basis column-major: row q of qt is basis vector q.
	qt := NewDense(c, n)
	built := 0

	bcols := make([][]float64, 0, orthBlock)
	for c0 := 0; c0 < c; c0 += orthBlock {
		c1 := c0 + orthBlock
		if c1 > c {
			c1 = c
		}
		nb := c1 - c0
		// Gather the block column-major (parallel over rows).
		bcols = bcols[:0]
		for j := 0; j < nb; j++ {
			bcols = append(bcols, make([]float64, n))
		}
		p.For(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				arow := a.Row(i)
				for j := 0; j < nb; j++ {
					bcols[j][i] = arow[c0+j]
				}
			}
		})
		orig := make([]float64, nb)
		for j := 0; j < nb; j++ {
			orig[j] = Norm2(bcols[j])
		}

		// Project the block against the basis built so far, twice
		// (classical Gram–Schmidt with reorthogonalization).
		for pass := 0; pass < 2 && built > 0; pass++ {
			// S[q][j] = <basis q, block column j>: disjoint S rows, each a
			// serial dot — order independent of the partition.
			s := NewDense(built, nb)
			p.For(built, func(_, qlo, qhi int) {
				for q := qlo; q < qhi; q++ {
					qrow := qt.Row(q)
					srow := s.Row(q)
					for j := 0; j < nb; j++ {
						srow[j] = Dot(qrow, bcols[j])
					}
				}
			})
			// block -= basisᵀ·S: parallel over element ranges, basis
			// vectors applied in fixed ascending order.
			p.For(n, func(_, lo, hi int) {
				for q := 0; q < built; q++ {
					qseg := qt.Row(q)[lo:hi]
					srow := s.Row(q)
					for j := 0; j < nb; j++ {
						sv := srow[j]
						if sv == 0 {
							continue
						}
						bseg := bcols[j][lo:hi]
						for i, qv := range qseg {
							bseg[i] -= sv * qv
						}
					}
				}
			})
		}

		// Orthonormalize within the block: serial MGS with a second pass,
		// appending surviving columns to the basis.
		blockStart := built
		for j := 0; j < nb; j++ {
			col := bcols[j]
			for pass := 0; pass < 2; pass++ {
				for q := blockStart; q < built; q++ {
					proj := Dot(qt.Row(q), col)
					Axpy(-proj, qt.Row(q), col)
				}
			}
			nrm := Norm2(col)
			if nrm <= orthTol || nrm <= orthTol*math.Max(1, orig[j]) {
				continue // dependent column
			}
			inv := 1 / nrm
			dst := qt.Row(built)
			for i, v := range col {
				dst[i] = v * inv
			}
			built++
		}
	}

	// Transpose the basis back to column layout (parallel over rows).
	out := NewDense(n, built)
	p.For(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Row(i)
			for q := 0; q < built; q++ {
				orow[q] = qt.Data[q*n+i]
			}
		}
	})
	return out
}
