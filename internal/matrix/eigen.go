package matrix

import (
	"fmt"
	"math"
)

// SymEigen computes the eigendecomposition of the symmetric matrix a,
// returning eigenvalues in descending order and the corresponding
// eigenvectors as the columns of vecs, so that a ≈ vecs·diag(vals)·vecsᵀ.
//
// The implementation is the classic two-stage dense symmetric solver:
// Householder tridiagonalization (tred2) followed by the implicit-shift QL
// iteration (tql2), in the EISPACK/JAMA lineage. Only the lower/upper
// symmetry of a is assumed; a is not modified.
func SymEigen(a *Dense) (vals []float64, vecs *Dense) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("matrix: SymEigen needs square input, got %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	if n == 0 {
		return nil, NewDense(0, 0)
	}
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		copy(v[i], a.Row(i))
	}
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(v, d, e)
	tql2(v, d, e)
	sortEigenDesc(v, d)

	vecs = NewDense(n, n)
	for i := 0; i < n; i++ {
		copy(vecs.Row(i), v[i])
	}
	return d, vecs
}

// tred2 reduces the symmetric matrix stored in v to tridiagonal form by
// Householder similarity transformations, accumulating the transformation
// in v. On return d holds the diagonal and e the subdiagonal (e[0] == 0).
func tred2(v [][]float64, d, e []float64) {
	n := len(d)
	copy(d, v[n-1])

	for i := n - 1; i > 0; i-- {
		// Scale to avoid under/overflow.
		scale, h := 0.0, 0.0
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = v[i-1][j]
				v[i][j] = 0
				v[j][i] = 0
			}
		} else {
			// Generate Householder vector.
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			// Apply similarity transformation to remaining columns.
			for j := 0; j < i; j++ {
				f = d[j]
				v[j][i] = f
				g = e[j] + v[j][j]*f
				for k := j + 1; k <= i-1; k++ {
					g += v[k][j] * d[k]
					e[k] += v[k][j] * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j < i; j++ {
				f = d[j]
				g = e[j]
				for k := j; k <= i-1; k++ {
					v[k][j] -= f*e[k] + g*d[k]
				}
				d[j] = v[i-1][j]
				v[i][j] = 0
			}
		}
		d[i] = h
	}

	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		v[n-1][i] = v[i][i]
		v[i][i] = 1
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = v[k][i+1] / h
			}
			for j := 0; j <= i; j++ {
				g := 0.0
				for k := 0; k <= i; k++ {
					g += v[k][i+1] * v[k][j]
				}
				for k := 0; k <= i; k++ {
					v[k][j] -= g * d[k]
				}
			}
		}
		for k := 0; k <= i; k++ {
			v[k][i+1] = 0
		}
	}
	for j := 0; j < n; j++ {
		d[j] = v[n-1][j]
		v[n-1][j] = 0
	}
	v[n-1][n-1] = 1
	e[0] = 0
}

// tql2 computes eigenvalues and eigenvectors of the symmetric tridiagonal
// matrix (d, e) by the implicit-shift QL method, updating the accumulated
// transformation in v. Eigenvalues are returned in d (unsorted).
func tql2(v [][]float64, d, e []float64) {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	f, tst1 := 0.0, 0.0
	eps := math.Pow(2, -52)
	for l := 0; l < n; l++ {
		// Find small subdiagonal element.
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		// If m == l, d[l] is an eigenvalue; otherwise iterate.
		if m > l {
			for iter := 0; ; iter++ {
				if iter > 100 {
					// The QL iteration essentially always converges in a
					// handful of sweeps; bail out rather than spin forever
					// on pathological input.
					break
				}
				// Compute implicit shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				// Implicit QL transformation.
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					// Accumulate transformation.
					for k := 0; k < n; k++ {
						h = v[k][i+1]
						v[k][i+1] = s*v[k][i] + c*h
						v[k][i] = c*v[k][i] - s*h
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
}

// sortEigenDesc reorders eigenpairs so eigenvalues are descending.
func sortEigenDesc(v [][]float64, d []float64) {
	n := len(d)
	for i := 0; i < n-1; i++ {
		k := i
		for j := i + 1; j < n; j++ {
			if d[j] > d[k] {
				k = j
			}
		}
		if k != i {
			d[i], d[k] = d[k], d[i]
			for r := 0; r < n; r++ {
				v[r][i], v[r][k] = v[r][k], v[r][i]
			}
		}
	}
}

// TopKEigen returns the k largest eigenvalues (by signed value) of the
// symmetric matrix a together with the corresponding eigenvector columns.
func TopKEigen(a *Dense, k int) (vals []float64, vecs *Dense) {
	allVals, allVecs := SymEigen(a)
	if k > len(allVals) {
		k = len(allVals)
	}
	vals = allVals[:k]
	vecs = NewDense(a.Rows, k)
	for i := 0; i < a.Rows; i++ {
		copy(vecs.Row(i), allVecs.Row(i)[:k])
	}
	return vals, vecs
}
