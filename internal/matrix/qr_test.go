package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// checkOrthonormalCols verifies QᵀQ == I within tol.
func checkOrthonormalCols(t *testing.T, q *Dense, tol float64) {
	t.Helper()
	g := MulAtB(q, q)
	if d := g.MaxAbsDiff(Identity(q.Cols)); d > tol {
		t.Fatalf("columns not orthonormal: max deviation %v", d)
	}
}

func TestOrthonormalizeBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := GaussianDense(20, 5, rng)
	q := Orthonormalize(a)
	if q.Cols != 5 {
		t.Fatalf("expected 5 columns, got %d", q.Cols)
	}
	checkOrthonormalCols(t, q, 1e-10)
}

func TestOrthonormalizeDropsDependentColumns(t *testing.T) {
	a := NewDense(4, 3)
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 1, 2*float64(i+1)) // dependent on col 0
		a.Set(i, 2, float64(i*i))
	}
	q := Orthonormalize(a)
	if q.Cols != 2 {
		t.Fatalf("expected dependent column dropped: got %d cols", q.Cols)
	}
	checkOrthonormalCols(t, q, 1e-10)
}

func TestOrthonormalizePreservesSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := GaussianDense(15, 4, rng)
	q := Orthonormalize(a)
	// Every column of a must be reconstructible: a == Q Qᵀ a.
	proj := Mul(q, MulAtB(q, a))
	if d := proj.MaxAbsDiff(a); d > 1e-9 {
		t.Fatalf("span not preserved: residual %v", d)
	}
}

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := GaussianDense(10, 6, rng)
	q, r := QR(a)
	checkOrthonormalCols(t, q, 1e-10)
	if d := Mul(q, r).MaxAbsDiff(a); d > 1e-9 {
		t.Fatalf("QR != A: residual %v", d)
	}
	// R upper triangular.
	for i := 1; i < r.Rows; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R not upper triangular at (%d,%d)=%v", i, j, r.At(i, j))
			}
		}
	}
}

// Property: QR reconstruction holds on random tall matrices.
func TestQRProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(12)
		c := 1 + r.Intn(n)
		a := GaussianDense(n, c, r)
		q, rr := QR(a)
		return Mul(q, rr).MaxAbsDiff(a) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOrthonormalizeEmpty(t *testing.T) {
	q := Orthonormalize(NewDense(5, 0))
	if q.Rows != 5 || q.Cols != 0 {
		t.Fatalf("unexpected shape %dx%d", q.Rows, q.Cols)
	}
}
