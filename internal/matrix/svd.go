package matrix

import (
	"fmt"
	"math"
)

// SVD computes the thin singular value decomposition of a dense matrix,
// a = U·diag(S)·Vᵀ, via the symmetric eigendecomposition of the smaller
// Gram matrix. Singular values are in descending order; U has orthonormal
// columns for every S[i] > svdTol, and V is orthonormal.
//
// This routine is intended for small, well-conditioned matrices (tests,
// the tiny projected problems inside BKSVD); large sparse factorizations go
// through the randomized solver in internal/svd.
func SVD(a *Dense) (u *Dense, s []float64, v *Dense) {
	if a.Rows >= a.Cols {
		return svdTall(a)
	}
	// Wide: decompose the transpose and swap factors.
	vT, s, uT := svdTall(a.T())
	return uT, s, vT
}

const svdTol = 1e-12

func svdTall(a *Dense) (u *Dense, s []float64, v *Dense) {
	if a.Rows < a.Cols {
		panic(fmt.Sprintf("matrix: svdTall needs rows >= cols, got %dx%d", a.Rows, a.Cols))
	}
	// Gram matrix G = aᵀa is Cols x Cols symmetric PSD.
	g := MulAtB(a, a)
	vals, vecs := SymEigen(g)
	c := a.Cols
	s = make([]float64, c)
	for i, lambda := range vals {
		if lambda < 0 {
			lambda = 0
		}
		s[i] = math.Sqrt(lambda)
	}
	v = vecs
	// U = A V Σ⁻¹ column by column; zero singular values give zero columns.
	u = NewDense(a.Rows, c)
	av := Mul(a, v)
	for j := 0; j < c; j++ {
		if s[j] <= svdTol {
			continue
		}
		inv := 1 / s[j]
		for i := 0; i < a.Rows; i++ {
			u.Set(i, j, av.At(i, j)*inv)
		}
	}
	return u, s, v
}
