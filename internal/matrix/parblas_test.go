package matrix

import (
	"math"
	"math/rand"
	"testing"

	"github.com/nrp-embed/nrp/internal/par"
)

func bitIdentical(t *testing.T, name string, got, want *Dense) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range want.Data {
		if got.Data[i] != v {
			t.Fatalf("%s: element %d = %v, want %v (must be bit-identical)", name, i, got.Data[i], v)
		}
	}
}

// TestMulPoolBitIdentical checks the blocked parallel GEMM matches the
// serial kernel exactly for every pool size (k-ascending accumulation
// order is preserved by the blocking).
func TestMulPoolBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := GaussianDense(70, 513, rng) // inner dim spans two k-blocks
	b := GaussianDense(513, 29, rng)
	want := Mul(a, b)
	for _, workers := range []int{0, 1, 3, 8} {
		var pool *par.Pool
		if workers > 0 {
			pool = par.New(workers)
		}
		bitIdentical(t, "MulPool", MulPool(pool, a, b), want)
	}
}

// TestMulABtPoolBitIdentical checks the row-partitioned A·Bᵀ matches the
// serial kernel exactly.
func TestMulABtPoolBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := GaussianDense(57, 33, rng)
	b := GaussianDense(41, 33, rng)
	want := MulABt(a, b)
	for _, workers := range []int{1, 4, 9} {
		bitIdentical(t, "MulABtPool", MulABtPool(par.New(workers), a, b), want)
	}
}

// TestMulAtBPoolMatchesSerial checks the partial-merged Aᵀ·B agrees with
// the serial kernel to reassociation tolerance and repeats bit-identically
// at a fixed pool size.
func TestMulAtBPoolMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := GaussianDense(301, 23, rng)
	b := GaussianDense(301, 17, rng)
	want := MulAtB(a, b)
	for _, workers := range []int{1, 2, 5} {
		pool := par.New(workers)
		got := MulAtBPool(pool, a, b)
		if d := got.MaxAbsDiff(want); d > 1e-12 {
			t.Fatalf("workers=%d: max abs diff %g", workers, d)
		}
		bitIdentical(t, "MulAtBPool repeat", MulAtBPool(pool, a, b), got)
	}
}

// TestGramPoolSymmetricAndCorrect checks GramPool against MulAtB(a, a)
// and that the result is exactly symmetric.
func TestGramPoolSymmetricAndCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := GaussianDense(211, 19, rng)
	want := MulAtB(a, a)
	for _, workers := range []int{1, 3, 6} {
		g := GramPool(par.New(workers), a)
		if d := g.MaxAbsDiff(want); d > 1e-12 {
			t.Fatalf("workers=%d: max abs diff %g", workers, d)
		}
		for i := 0; i < g.Rows; i++ {
			for j := 0; j < g.Cols; j++ {
				if g.At(i, j) != g.At(j, i) {
					t.Fatalf("workers=%d: asymmetric at (%d,%d)", workers, i, j)
				}
			}
		}
	}
	empty := GramPool(par.New(2), NewDense(0, 5))
	if empty.Rows != 5 || empty.Cols != 5 {
		t.Fatalf("empty Gram shape %dx%d", empty.Rows, empty.Cols)
	}
}

// TestOrthonormalizePoolProperties checks the blocked BCGS2 produces an
// orthonormal basis spanning the input columns, is invariant to pool
// size bit for bit, and drops dependent columns.
func TestOrthonormalizePoolProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := GaussianDense(157, 45, rng) // spans two column blocks
	ref := OrthonormalizePool(nil, a)
	if ref.Cols != 45 {
		t.Fatalf("full-rank input kept %d of 45 columns", ref.Cols)
	}
	// Orthonormality.
	g := MulAtB(ref, ref)
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g.At(i, j)-want) > 1e-10 {
				t.Fatalf("QᵀQ[%d,%d] = %v", i, j, g.At(i, j))
			}
		}
	}
	// Span: every input column reconstructs from the basis.
	proj := Mul(ref, MulAtB(ref, a)) // Q·QᵀA
	if d := proj.MaxAbsDiff(a); d > 1e-9 {
		t.Fatalf("span not preserved: residual %g", d)
	}
	// Pool-size invariance, bit for bit.
	for _, workers := range []int{1, 2, 7} {
		bitIdentical(t, "OrthonormalizePool", OrthonormalizePool(par.New(workers), a), ref)
	}
}

// TestOrthonormalizePoolDropsDependent feeds duplicated and zero columns.
func TestOrthonormalizePoolDropsDependent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := GaussianDense(50, 3, rng)
	a := NewDense(50, 7)
	for i := 0; i < 50; i++ {
		row := a.Row(i)
		brow := base.Row(i)
		row[0], row[1], row[2] = brow[0], brow[1], brow[2]
		row[3] = brow[0]                     // duplicate
		row[4] = 2*brow[1] - 0.5*brow[2]     // combination
		row[5] = 0                           // zero column
		row[6] = brow[0] + brow[1] + brow[2] // combination
	}
	q := OrthonormalizePool(par.New(3), a)
	if q.Cols != 3 {
		t.Fatalf("kept %d columns of rank-3 input, want 3", q.Cols)
	}
}
