package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %dx%d len=%d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatalf("not zeroed: %v", m.Data)
		}
	}
}

func TestNewDenseFromRows(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("bad shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Fatalf("bad content: %v", m.Data)
	}
}

func TestNewDenseFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	NewDenseFromRows([][]float64{{1, 2}, {3}})
}

func TestAtSetRow(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At/Set mismatch")
	}
	row := m.Row(1)
	row[0] = -1 // Row aliases storage
	if m.At(1, 0) != -1 {
		t.Fatalf("Row must alias storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatalf("Clone must not alias original")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := GaussianDense(5, 3, rng)
	tt := m.T().T()
	if m.MaxAbsDiff(tt) != 0 {
		t.Fatalf("transpose twice should be identity")
	}
}

func TestMulAgainstHandComputed(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := NewDenseFromRows([][]float64{{19, 22}, {43, 50}})
	if got.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("Mul mismatch: %v", got.Data)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulABtEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := GaussianDense(4, 6, rng)
	b := GaussianDense(5, 6, rng)
	got := MulABt(a, b)
	want := Mul(a, b.T())
	if got.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("MulABt != Mul(a, bT), diff=%v", got.MaxAbsDiff(want))
	}
}

func TestMulAtBEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := GaussianDense(6, 4, rng)
	b := GaussianDense(6, 5, rng)
	got := MulAtB(a, b)
	want := Mul(a.T(), b)
	if got.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("MulAtB != Mul(aT, b), diff=%v", got.MaxAbsDiff(want))
	}
}

func TestIdentityMulIsNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := GaussianDense(4, 4, rng)
	if Mul(Identity(4), a).MaxAbsDiff(a) > 1e-14 {
		t.Fatal("I*a != a")
	}
	if Mul(a, Identity(4)).MaxAbsDiff(a) > 1e-14 {
		t.Fatal("a*I != a")
	}
}

func TestDiag(t *testing.T) {
	d := Diag([]float64{1, 2, 3})
	if d.At(0, 0) != 1 || d.At(1, 1) != 2 || d.At(2, 2) != 3 || d.At(0, 1) != 0 {
		t.Fatalf("bad diag: %v", d.Data)
	}
}

func TestScaleAndScaleRow(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Fatalf("Scale failed: %v", m.Data)
	}
	m.ScaleRow(0, 10)
	if m.At(0, 0) != 20 || m.At(1, 0) != 6 {
		t.Fatalf("ScaleRow failed: %v", m.Data)
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := GaussianDense(3, 3, rng)
	b := GaussianDense(3, 3, rng)
	c := a.Clone()
	c.AddInPlace(b)
	back := c.Sub(b)
	if back.MaxAbsDiff(a) > 1e-12 {
		t.Fatalf("(a+b)-b != a")
	}
}

func TestDotAxpyNorm(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("Dot=%v", Dot(x, y))
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[2] != 12 {
		t.Fatalf("Axpy result %v", y)
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 failed")
	}
}

func TestNormalizeRow(t *testing.T) {
	v := []float64{3, 4}
	n := NormalizeRow(v)
	if !almostEqual(n, 5, 1e-15) || !almostEqual(Norm2(v), 1, 1e-15) {
		t.Fatalf("NormalizeRow: n=%v v=%v", n, v)
	}
	z := []float64{0, 0}
	if NormalizeRow(z) != 0 || z[0] != 0 {
		t.Fatal("zero vector must be unchanged")
	}
}

// Property: matrix multiplication distributes over vector addition,
// (A·(x+y)) == A·x + A·y, exercised through small random instances.
func TestMulDistributiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		c := 2 + r.Intn(6)
		a := GaussianDense(n, c, r)
		x := GaussianDense(c, 1, r)
		y := GaussianDense(c, 1, r)
		xy := x.Clone()
		xy.AddInPlace(y)
		lhs := Mul(a, xy)
		rhs := Mul(a, x)
		rhs.AddInPlace(Mul(a, y))
		return lhs.MaxAbsDiff(rhs) < 1e-10
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := GaussianDense(m, k, r)
		b := GaussianDense(k, n, r)
		lhs := Mul(a, b).T()
		rhs := Mul(b.T(), a.T())
		return lhs.MaxAbsDiff(rhs) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewDenseFromRows([][]float64{{3, 0}, {0, 4}})
	if !almostEqual(m.FrobeniusNorm(), 5, 1e-14) {
		t.Fatalf("frobenius = %v", m.FrobeniusNorm())
	}
}

func TestGaussianDenseMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := GaussianDense(200, 200, rng)
	mean, varSum := 0.0, 0.0
	for _, v := range m.Data {
		mean += v
	}
	mean /= float64(len(m.Data))
	for _, v := range m.Data {
		varSum += (v - mean) * (v - mean)
	}
	variance := varSum / float64(len(m.Data))
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("gaussian moments off: mean=%v var=%v", mean, variance)
	}
}
