package matrix

import "math"

// orthTol is the column-norm threshold below which a column is considered
// linearly dependent on the previous ones and dropped during
// orthonormalization.
const orthTol = 1e-10

// Orthonormalize returns a matrix Q whose columns form an orthonormal basis
// of the column space of a, computed by modified Gram–Schmidt with a second
// reorthogonalization pass. Columns that are (numerically) linear
// combinations of earlier columns are dropped, so Q may have fewer columns
// than a. The input is not modified.
func Orthonormalize(a *Dense) *Dense {
	n, c := a.Rows, a.Cols
	// Work column-major for locality of the Gram-Schmidt inner loops.
	cols := make([][]float64, 0, c)
	for j := 0; j < c; j++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = a.At(i, j)
		}
		orig := Norm2(col)
		for pass := 0; pass < 2; pass++ {
			for _, q := range cols {
				proj := Dot(q, col)
				Axpy(-proj, q, col)
			}
		}
		nrm := Norm2(col)
		if nrm <= orthTol || nrm <= orthTol*math.Max(1, orig) {
			continue // dependent column
		}
		inv := 1 / nrm
		for i := range col {
			col[i] *= inv
		}
		cols = append(cols, col)
	}
	q := NewDense(n, len(cols))
	for j, col := range cols {
		for i, v := range col {
			q.Data[i*q.Cols+j] = v
		}
	}
	return q
}

// QR computes the thin QR factorization a = Q·R for a with Rows >= Cols and
// full column rank, using modified Gram–Schmidt with reorthogonalization.
// Q is Rows-by-Cols with orthonormal columns and R is Cols-by-Cols upper
// triangular. Rank-deficient inputs yield zero columns in Q and zero
// diagonal entries in R.
func QR(a *Dense) (q, r *Dense) {
	n, c := a.Rows, a.Cols
	q = a.Clone()
	r = NewDense(c, c)
	// Column-major copy of q for the inner loops.
	cols := make([][]float64, c)
	for j := 0; j < c; j++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = q.At(i, j)
		}
		cols[j] = col
	}
	for j := 0; j < c; j++ {
		col := cols[j]
		for pass := 0; pass < 2; pass++ {
			for k := 0; k < j; k++ {
				proj := Dot(cols[k], col)
				Axpy(-proj, cols[k], col)
				r.Data[k*c+j] += proj
			}
		}
		nrm := Norm2(col)
		r.Data[j*c+j] = nrm
		if nrm > orthTol {
			inv := 1 / nrm
			for i := range col {
				col[i] *= inv
			}
		} else {
			for i := range col {
				col[i] = 0
			}
			r.Data[j*c+j] = 0
		}
	}
	for j, col := range cols {
		for i, v := range col {
			q.Data[i*c+j] = v
		}
	}
	return q, r
}
