package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulVecIntoMatchesMul(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := GaussianDense(r, c, rng)
		x := make([]float64, c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, r)
		m.MulVecInto(x, y)
		xm := NewDense(c, 1)
		copy(xm.Data, x)
		want := Mul(m, xm)
		for i := range y {
			if d := y[i] - want.At(i, 0); d > 1e-12 || d < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecIntoShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	NewDense(2, 3).MulVecInto(make([]float64, 2), make([]float64, 2))
}

// Repeated eigenvalues are the classic hard case for QL iterations; the
// reconstruction must still hold.
func TestSymEigenRepeatedEigenvalues(t *testing.T) {
	// 2·I plus a tiny symmetric perturbation on one off-diagonal pair.
	n := 6
	a := Identity(n)
	a.Scale(2)
	a.Set(0, 1, 1e-3)
	a.Set(1, 0, 1e-3)
	vals, vecs := SymEigen(a)
	recon := Mul(Mul(vecs, Diag(vals)), vecs.T())
	if d := recon.MaxAbsDiff(a); d > 1e-10 {
		t.Fatalf("reconstruction error %v with near-repeated eigenvalues", d)
	}
	checkOrthonormalCols(t, vecs, 1e-10)
}
