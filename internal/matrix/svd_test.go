package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSVDReconstructionTall(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	a := GaussianDense(12, 5, rng)
	u, s, v := SVD(a)
	recon := Mul(Mul(u, Diag(s)), v.T())
	if d := recon.MaxAbsDiff(a); d > 1e-8 {
		t.Fatalf("SVD reconstruction error %v", d)
	}
	checkOrthonormalCols(t, v, 1e-9)
	checkOrthonormalCols(t, u, 1e-7)
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1]+1e-12 {
			t.Fatalf("singular values not descending: %v", s)
		}
	}
}

func TestSVDReconstructionWide(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := GaussianDense(4, 9, rng)
	u, s, v := SVD(a)
	recon := Mul(Mul(u, Diag(s)), v.T())
	if d := recon.MaxAbsDiff(a); d > 1e-8 {
		t.Fatalf("wide SVD reconstruction error %v", d)
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := NewDenseFromRows([][]float64{{3, 0}, {0, -4}})
	_, s, _ := SVD(a)
	if !almostEqual(s[0], 4, 1e-9) || !almostEqual(s[1], 3, 1e-9) {
		t.Fatalf("singular values %v, want [4 3]", s)
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: outer product.
	a := NewDense(5, 3)
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, -1, 2}
	for i := range x {
		for j := range y {
			a.Set(i, j, x[i]*y[j])
		}
	}
	u, s, v := SVD(a)
	if s[0] < 1 {
		t.Fatalf("leading singular value too small: %v", s)
	}
	for _, tail := range s[1:] {
		if tail > 1e-6 {
			t.Fatalf("trailing singular values should vanish: %v", s)
		}
	}
	recon := Mul(Mul(u, Diag(s)), v.T())
	if d := recon.MaxAbsDiff(a); d > 1e-7 {
		t.Fatalf("rank-1 reconstruction error %v", d)
	}
}

// Property: singular values of A equal sqrt of eigenvalues of AᵀA.
func TestSVDSingularValuesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		c := 1 + rng.Intn(n)
		a := GaussianDense(n, c, rng)
		_, s, _ := SVD(a)
		// Frobenius norm identity: sum s_i^2 == ||A||_F^2.
		sum := 0.0
		for _, v := range s {
			sum += v * v
		}
		fn := a.FrobeniusNorm()
		return almostEqual(sum, fn*fn, 1e-7*(1+fn*fn))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
