// Package matrix provides the dense linear-algebra substrate used by the
// NRP embedding pipeline: row-major dense matrices, QR orthonormalization,
// symmetric eigendecomposition and small dense SVD.
//
// The package is deliberately self-contained (standard library only); the
// kernels are the ones Algorithm 1 of the NRP paper delegates to LAPACK-grade
// libraries in the authors' implementation.
package matrix

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix of float64.
//
// The zero value is an empty 0x0 matrix. Rows are stored contiguously, so
// Row(i) aliases the backing slice and can be mutated in place.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewDense returns a zeroed r-by-c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewDenseFromRows builds a matrix from a slice of equally sized rows.
func NewDenseFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: ragged row %d: %d != %d", i, len(row), c))
		}
		copy(m.Row(i), row)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Scale multiplies every element of m by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// ScaleRow multiplies row i by s in place.
func (m *Dense) ScaleRow(i int, s float64) {
	row := m.Row(i)
	for j := range row {
		row[j] *= s
	}
}

// AddInPlace adds b to m element-wise, storing the result in m.
func (m *Dense) AddInPlace(b *Dense) {
	m.mustSameShape(b)
	for i, v := range b.Data {
		m.Data[i] += v
	}
}

// Sub returns m - b as a new matrix.
func (m *Dense) Sub(b *Dense) *Dense {
	m.mustSameShape(b)
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

func (m *Dense) mustSameShape(b *Dense) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

// Mul returns the matrix product a*b.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: product shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulABt returns a * bᵀ. Both operands must have the same column count.
func MulABt(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: MulABt shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = Dot(arow, b.Row(j))
		}
	}
	return out
}

// MulAtB returns aᵀ * b. Both operands must have the same row count.
func MulAtB(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("matrix: MulAtB shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		brow := b.Row(r)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVecInto computes y = m·x with len(x) == Cols and len(y) == Rows.
func (m *Dense) MulVecInto(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("matrix: MulVecInto shapes x=%d y=%d for %dx%d", len(x), len(y), m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		y[i] = Dot(m.Row(i), x)
	}
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Dense {
	m := NewDense(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// MaxAbsDiff returns the maximum absolute element-wise difference between
// m and b.
func (m *Dense) MaxAbsDiff(b *Dense) float64 {
	m.mustSameShape(b)
	max := 0.0
	for i, v := range m.Data {
		if d := math.Abs(v - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("matrix: dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += a*x for equal-length vectors.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matrix: axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormalizeRow scales v to unit Euclidean norm in place; zero vectors are
// left unchanged. It returns the original norm.
func NormalizeRow(v []float64) float64 {
	n := Norm2(v)
	if n > 0 {
		inv := 1 / n
		for i := range v {
			v[i] *= inv
		}
	}
	return n
}
