package svd

import (
	"math"
	"math/rand"
	"testing"

	"github.com/nrp-embed/nrp/internal/par"
	"github.com/nrp-embed/nrp/internal/sparse"
)

// TestBKSVDPoolParity checks that the factorization computed on a
// multi-worker pool matches the serial one: identical singular values up
// to reduction reassociation and an equally good low-rank reconstruction.
func TestBKSVDPoolParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, nnz, k = 400, 6000, 12
	entries := make([]sparse.Triple, nnz)
	for i := range entries {
		entries[i] = sparse.Triple{
			Row: int32(rng.Intn(n)), Col: int32(rng.Intn(n)), Val: rng.NormFloat64(),
		}
	}
	a, err := sparse.FromTriples(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}

	serial, err := BKSVD(a, Options{Rank: k, Epsilon: 0.2, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := BKSVD(a, Options{Rank: k, Epsilon: 0.2, Rng: rand.New(rand.NewSource(1)), Pool: par.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.S) != len(pooled.S) {
		t.Fatalf("rank mismatch: %d vs %d", len(serial.S), len(pooled.S))
	}
	for i := range serial.S {
		if d := math.Abs(serial.S[i] - pooled.S[i]); d > 1e-8*(1+serial.S[i]) {
			t.Fatalf("singular value %d: serial %v vs pooled %v", i, serial.S[i], pooled.S[i])
		}
	}
	// The factors may differ by sign/rotation within degenerate blocks;
	// the reconstruction must agree entry-wise.
	for trial := 0; trial < 200; trial++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if d := math.Abs(serial.LowRankApply(i, j) - pooled.LowRankApply(i, j)); d > 1e-8 {
			t.Fatalf("reconstruction (%d,%d): serial %v vs pooled %v",
				i, j, serial.LowRankApply(i, j), pooled.LowRankApply(i, j))
		}
	}
	// Repeatability: same pool size and seed → bit-identical factors.
	again, err := BKSVD(a, Options{Rank: k, Epsilon: 0.2, Rng: rand.New(rand.NewSource(1)), Pool: par.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pooled.U.Data {
		if pooled.U.Data[i] != again.U.Data[i] {
			t.Fatalf("repeated pooled run differs in U at %d", i)
		}
	}
}
