// Package svd implements randomized low-rank singular value decomposition
// of sparse matrices. The primary algorithm is BKSVD — randomized Block
// Krylov Iteration (Musco & Musco, "Randomized Block Krylov Methods for
// Stronger and Faster Approximate Singular Value Decomposition",
// NeurIPS 2015) — which Algorithm 1 of the NRP paper uses to factorize the
// adjacency matrix with a (1+ε) spectral-norm low-rank guarantee.
//
// A simpler randomized subspace (simultaneous) iteration is also provided
// as an ablation alternative.
package svd

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/par"
	"github.com/nrp-embed/nrp/internal/sparse"
)

// Result holds a (possibly truncated) singular value decomposition
// A ≈ U·diag(S)·Vᵀ with U (n×k), S (k), V (m×k).
type Result struct {
	U *matrix.Dense
	S []float64
	V *matrix.Dense
	// ItersRun is the number of block power iterations actually executed.
	ItersRun int
}

// Options configure the randomized solvers.
type Options struct {
	// Rank is the target rank k (number of singular triplets).
	Rank int
	// Epsilon is the relative spectral-norm error target; it determines the
	// number of Krylov iterations as q ≈ log(n)/(2√ε), clamped to
	// [MinIters, MaxIters]. The NRP paper uses ε = 0.2.
	Epsilon float64
	// Iters, when positive, overrides the ε-derived iteration count.
	Iters int
	// Rng supplies the random projection; required.
	Rng *rand.Rand
	// Init, when non-nil, seeds the block iteration with the given m×k
	// block instead of a fresh Gaussian projection. Warm-starting from a
	// previous factorization's right singular vectors lets a solver
	// re-converge in one or two iterations after a small perturbation of
	// a — the basis of incremental embedding refresh. Init is not
	// mutated; its shape must be Cols(a)×Rank.
	Init *matrix.Dense
	// Ctx, when non-nil, is checked between block iterations so a caller
	// can abort a long factorization; the solver returns Ctx.Err().
	Ctx context.Context
	// Pool, when non-nil, parallelizes the sparse products, Gram matrix
	// and orthonormalizations across its workers (nil = serial). Results
	// are deterministic for a fixed pool size; different sizes differ only
	// by floating-point reassociation in the reduction steps.
	Pool *par.Pool
	// Progress, when non-nil, is invoked after each block iteration with
	// the number of iterations completed and the total planned.
	Progress func(iter, total int)
}

// checkCtx reports the context's error, if a context is set and cancelled.
func (o Options) checkCtx() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// step reports one completed block iteration to the Progress callback.
func (o Options) step(iter, total int) {
	if o.Progress != nil {
		o.Progress(iter, total)
	}
}

const (
	minKrylovIters = 2
	maxKrylovIters = 8
)

// iters resolves the Krylov iteration count from the options. The theory
// prescribes q = Θ(log n/√ε); the constant here (1/4) follows the practical
// regime reported by Musco & Musco, where a handful of block iterations
// already meets the (1+ε) bound.
func (o Options) iters(n int) int {
	if o.Iters > 0 {
		return o.Iters
	}
	eps := o.Epsilon
	if eps <= 0 {
		eps = 0.2
	}
	q := int(math.Ceil(math.Log(float64(n)+1) / (4 * math.Sqrt(eps))))
	if q < minKrylovIters {
		q = minKrylovIters
	}
	if q > maxKrylovIters {
		q = maxKrylovIters
	}
	return q
}

// BKSVD computes an approximate rank-k SVD of the sparse matrix a using
// randomized block Krylov iteration. The returned factors satisfy
// ‖A − U·diag(S)·Vᵀ‖₂ ≤ (1+ε)·σ_{k+1} with high probability for the
// iteration counts used here.
func BKSVD(a *sparse.CSR, opt Options) (*Result, error) {
	k := opt.Rank
	if k <= 0 {
		return nil, fmt.Errorf("svd: rank must be positive, got %d", k)
	}
	if opt.Rng == nil {
		return nil, fmt.Errorf("svd: Options.Rng is required")
	}
	n, m := a.Rows, a.Cols
	if k > n || k > m {
		return nil, fmt.Errorf("svd: rank %d exceeds matrix dimensions %dx%d", k, n, m)
	}
	q := opt.iters(max(n, m))
	// Cap the Krylov block so the basis never exceeds the matrix dimension.
	for q > 1 && (q+1)*k > n {
		q--
	}

	// Build the Krylov block K = [AΠ, (AAᵀ)AΠ, …, (AAᵀ)^q AΠ], Π ∈ R^{m×k}.
	pi, err := opt.initBlock(m, k)
	if err != nil {
		return nil, err
	}
	pool := opt.Pool
	blocks := make([]*matrix.Dense, 0, q+1)
	cur := a.MulDensePool(pool, pi) // n×k
	// Orthonormalize each block before powering to tame the geometric
	// growth of the leading direction (standard practice; preserves span).
	cur = matrix.OrthonormalizePool(pool, cur)
	blocks = append(blocks, cur)
	itersRun := 0
	for i := 0; i < q; i++ {
		if err := opt.checkCtx(); err != nil {
			return nil, err
		}
		next := a.MulDensePool(pool, a.MulDenseTPool(pool, cur)) // (A Aᵀ) cur
		next = matrix.OrthonormalizePool(pool, next)
		blocks = append(blocks, next)
		cur = next
		itersRun++
		opt.step(itersRun, q)
	}
	if err := opt.checkCtx(); err != nil {
		return nil, err
	}
	kry := hcat(n, blocks)

	// Q = orth(K); M = Qᵀ A Aᵀ Q = WᵀW with W = AᵀQ.
	qMat := matrix.OrthonormalizePool(pool, kry)
	w := a.MulDenseTPool(pool, qMat) // m × B
	mSmall := matrix.GramPool(pool, w)

	vals, vecs := matrix.TopKEigen(mSmall, k)
	s := make([]float64, len(vals))
	for i, lambda := range vals {
		if lambda < 0 {
			lambda = 0
		}
		s[i] = math.Sqrt(lambda)
	}
	u := matrix.MulPool(pool, qMat, vecs) // n × k
	// V = AᵀUΣ⁻¹ = W · vecs · Σ⁻¹.
	v := scaledV(pool, w, vecs, s)
	return &Result{U: u, S: s, V: v, ItersRun: itersRun}, nil
}

// scaledV computes V = W·vecs·Σ⁻¹, zeroing the inverse for numerically
// vanishing singular values; the row loop parallelizes over the pool.
func scaledV(pool *par.Pool, w, vecs *matrix.Dense, s []float64) *matrix.Dense {
	v := matrix.MulPool(pool, w, vecs)
	inv := make([]float64, len(s))
	for j, sv := range s {
		if sv > 1e-12 {
			inv[j] = 1 / sv
		} else {
			inv[j] = 1 // leave the (zero) column untouched
		}
	}
	pool.For(v.Rows, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := v.Row(i)
			for j := range row {
				row[j] *= inv[j]
			}
		}
	})
	return v
}

// SubspaceIteration computes an approximate rank-k SVD by randomized
// simultaneous (power) iteration: Q ← orth((AAᵀ)^q A Π). It is cheaper per
// iteration than BKSVD (the basis stays of width k) but needs more
// iterations for the same accuracy — the trade-off the paper cites when
// preferring BKSVD. Used in ablation benchmarks.
func SubspaceIteration(a *sparse.CSR, opt Options) (*Result, error) {
	k := opt.Rank
	if k <= 0 {
		return nil, fmt.Errorf("svd: rank must be positive, got %d", k)
	}
	if opt.Rng == nil {
		return nil, fmt.Errorf("svd: Options.Rng is required")
	}
	n, m := a.Rows, a.Cols
	if k > n || k > m {
		return nil, fmt.Errorf("svd: rank %d exceeds matrix dimensions %dx%d", k, n, m)
	}
	q := opt.iters(max(n, m))
	pi, err := opt.initBlock(m, k)
	if err != nil {
		return nil, err
	}
	pool := opt.Pool
	cur := matrix.OrthonormalizePool(pool, a.MulDensePool(pool, pi))
	itersRun := 0
	for i := 0; i < q; i++ {
		if err := opt.checkCtx(); err != nil {
			return nil, err
		}
		cur = matrix.OrthonormalizePool(pool, a.MulDensePool(pool, a.MulDenseTPool(pool, cur)))
		itersRun++
		opt.step(itersRun, q)
	}
	if err := opt.checkCtx(); err != nil {
		return nil, err
	}
	w := a.MulDenseTPool(pool, cur)
	mSmall := matrix.GramPool(pool, w)
	vals, vecs := matrix.TopKEigen(mSmall, k)
	s := make([]float64, len(vals))
	for i, lambda := range vals {
		if lambda < 0 {
			lambda = 0
		}
		s[i] = math.Sqrt(lambda)
	}
	u := matrix.MulPool(pool, cur, vecs)
	v := scaledV(pool, w, vecs, s)
	return &Result{U: u, S: s, V: v, ItersRun: itersRun}, nil
}

// hcat horizontally concatenates blocks that all have n rows.
func hcat(n int, blocks []*matrix.Dense) *matrix.Dense {
	total := 0
	for _, b := range blocks {
		total += b.Cols
	}
	out := matrix.NewDense(n, total)
	off := 0
	for _, b := range blocks {
		for i := 0; i < n; i++ {
			copy(out.Row(i)[off:off+b.Cols], b.Row(i))
		}
		off += b.Cols
	}
	return out
}

// initBlock resolves the starting block: the caller's warm-start block
// when provided (shape-checked), a fresh Gaussian projection otherwise.
func (o Options) initBlock(m, k int) (*matrix.Dense, error) {
	if o.Init == nil {
		return matrix.GaussianDense(m, k, o.Rng), nil
	}
	if o.Init.Rows != m || o.Init.Cols != k {
		return nil, fmt.Errorf("svd: warm-start block is %dx%d, want %dx%d", o.Init.Rows, o.Init.Cols, m, k)
	}
	return o.Init, nil
}

// LowRankApply reconstructs (U·diag(S)·Vᵀ)[i,j] without materializing the
// product; used by tests and examples.
func (r *Result) LowRankApply(i, j int) float64 {
	s := 0.0
	ui := r.U.Row(i)
	vj := r.V.Row(j)
	for t := range r.S {
		s += ui[t] * r.S[t] * vj[t]
	}
	return s
}
