package svd

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/sparse"
)

// lowRankSparse builds a sparse-ish matrix with known singular values by
// assembling sum_i s_i u_i v_iᵀ from random orthonormal u, v and densifying
// to triples (small sizes only).
func lowRankSparse(t *testing.T, n, m int, s []float64, rng *rand.Rand) *sparse.CSR {
	t.Helper()
	u := matrix.Orthonormalize(matrix.GaussianDense(n, len(s), rng))
	v := matrix.Orthonormalize(matrix.GaussianDense(m, len(s), rng))
	var entries []sparse.Triple
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			val := 0.0
			for t := range s {
				val += s[t] * u.At(i, t) * v.At(j, t)
			}
			if val != 0 {
				entries = append(entries, sparse.Triple{Row: int32(i), Col: int32(j), Val: val})
			}
		}
	}
	a, err := sparse.FromTriples(n, m, entries)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBKSVDRecoversSingularValues(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trueS := []float64{10, 6, 3, 1}
	a := lowRankSparse(t, 40, 30, trueS, rng)
	res, err := BKSVD(a, Options{Rank: 4, Epsilon: 0.1, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range trueS {
		if math.Abs(res.S[i]-want) > 0.05*want {
			t.Fatalf("singular value %d: got %v want %v", i, res.S[i], want)
		}
	}
}

func TestBKSVDReconstructionError(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	trueS := []float64{8, 5, 2, 0.5, 0.1}
	a := lowRankSparse(t, 35, 35, trueS, rng)
	res, err := BKSVD(a, Options{Rank: 3, Epsilon: 0.1, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	// Spectral error of rank-3 approx should be close to sigma_4 = 0.5.
	// Check the Frobenius residual against the optimal sqrt(0.5^2+0.1^2).
	dense := a.ToDense()
	recon := matrix.Mul(matrix.Mul(res.U, matrix.Diag(res.S)), res.V.T())
	resid := dense.Sub(recon).FrobeniusNorm()
	optimal := math.Sqrt(0.5*0.5 + 0.1*0.1)
	if resid > optimal*1.3 {
		t.Fatalf("residual %v, optimal %v", resid, optimal)
	}
}

func TestBKSVDOrthonormalFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := lowRankSparse(t, 30, 25, []float64{5, 4, 3, 2, 1}, rng)
	res, err := BKSVD(a, Options{Rank: 4, Epsilon: 0.2, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	gu := matrix.MulAtB(res.U, res.U)
	if d := gu.MaxAbsDiff(matrix.Identity(4)); d > 1e-6 {
		t.Fatalf("U not orthonormal: %v", d)
	}
	gv := matrix.MulAtB(res.V, res.V)
	if d := gv.MaxAbsDiff(matrix.Identity(4)); d > 1e-4 {
		t.Fatalf("V not orthonormal: %v", d)
	}
}

func TestBKSVDMatchesExactSVDOnSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	var entries []sparse.Triple
	n := 20
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.3 {
				entries = append(entries, sparse.Triple{Row: int32(i), Col: int32(j), Val: rng.NormFloat64()})
			}
		}
	}
	a, _ := sparse.FromTriples(n, n, entries)
	_, exactS, _ := matrix.SVD(a.ToDense())
	res, err := BKSVD(a, Options{Rank: 5, Iters: 12, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(res.S[i]-exactS[i]) > 0.02*math.Max(1, exactS[i]) {
			t.Fatalf("sigma_%d: bksvd=%v exact=%v", i, res.S[i], exactS[i])
		}
	}
}

func TestSubspaceIterationRecoversSingularValues(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	trueS := []float64{9, 4, 2}
	a := lowRankSparse(t, 30, 30, trueS, rng)
	res, err := SubspaceIteration(a, Options{Rank: 3, Iters: 15, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range trueS {
		if math.Abs(res.S[i]-want) > 0.05*want {
			t.Fatalf("sigma_%d: got %v want %v", i, res.S[i], want)
		}
	}
}

func TestBKSVDErrors(t *testing.T) {
	a, _ := sparse.FromTriples(3, 3, []sparse.Triple{{Row: 0, Col: 0, Val: 1}})
	if _, err := BKSVD(a, Options{Rank: 0, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := BKSVD(a, Options{Rank: 2}); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := BKSVD(a, Options{Rank: 9, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Fatal("oversized rank accepted")
	}
}

func TestBKSVDCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	a := lowRankSparse(t, 30, 30, []float64{5, 3, 1}, rng)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BKSVD(a, Options{Rank: 3, Rng: rng, Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("BKSVD: want context.Canceled, got %v", err)
	}
	if _, err := SubspaceIteration(a, Options{Rank: 3, Rng: rng, Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubspaceIteration: want context.Canceled, got %v", err)
	}
}

func TestBKSVDCancelMidIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	a := lowRankSparse(t, 30, 30, []float64{5, 3, 1}, rng)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := 0
	_, err := BKSVD(a, Options{Rank: 3, Iters: 6, Rng: rng, Ctx: ctx, Progress: func(iter, total int) {
		fired++
		if iter == 2 {
			cancel()
		}
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if fired != 2 {
		t.Fatalf("progress fired %d times before abort, want 2", fired)
	}
}

func TestBKSVDItersRunAndProgress(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	a := lowRankSparse(t, 30, 30, []float64{5, 3, 1}, rng)
	var steps []int
	res, err := BKSVD(a, Options{Rank: 3, Iters: 4, Rng: rng, Progress: func(iter, total int) {
		if total != 4 {
			t.Fatalf("progress total %d, want 4", total)
		}
		steps = append(steps, iter)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ItersRun != 4 {
		t.Fatalf("ItersRun = %d, want 4", res.ItersRun)
	}
	if len(steps) != 4 || steps[0] != 1 || steps[3] != 4 {
		t.Fatalf("progress steps %v", steps)
	}
}

func TestOptionsIters(t *testing.T) {
	o := Options{Epsilon: 0.2}
	q := o.iters(5000)
	if q < minKrylovIters || q > maxKrylovIters {
		t.Fatalf("iters out of range: %d", q)
	}
	o = Options{Iters: 7}
	if o.iters(1000) != 7 {
		t.Fatal("explicit iters ignored")
	}
	// Smaller epsilon should not decrease iterations.
	qSmall := Options{Epsilon: 0.05}.iters(5000)
	if qSmall < q {
		t.Fatalf("iters(eps=0.05)=%d < iters(eps=0.2)=%d", qSmall, q)
	}
}

func TestLowRankApply(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := lowRankSparse(t, 15, 15, []float64{4, 2}, rng)
	res, err := BKSVD(a, Options{Rank: 2, Iters: 10, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	dense := a.ToDense()
	for i := 0; i < 15; i += 3 {
		for j := 0; j < 15; j += 4 {
			if math.Abs(res.LowRankApply(i, j)-dense.At(i, j)) > 1e-4 {
				t.Fatalf("LowRankApply(%d,%d) = %v, want %v", i, j, res.LowRankApply(i, j), dense.At(i, j))
			}
		}
	}
}

// TestBKSVDWarmStart factorizes a matrix, perturbs it slightly, and checks
// that a single warm-started iteration from the previous V factor matches
// the accuracy of a fully converged cold run — while a cold single
// iteration from a fresh Gaussian block is given no such guarantee.
func TestBKSVDWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	trueS := []float64{12, 8, 5, 2.5}
	a := lowRankSparse(t, 50, 50, trueS, rng)
	cold, err := BKSVD(a, Options{Rank: 4, Epsilon: 0.1, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}

	// Perturb: add a small rank-1 bump.
	bump := lowRankSparse(t, 50, 50, []float64{0.3}, rand.New(rand.NewSource(10)))
	entries := make([]sparse.Triple, 0, a.NNZ()+bump.NNZ())
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			entries = append(entries, sparse.Triple{Row: int32(i), Col: a.ColIdx[p], Val: a.Val[p]})
		}
	}
	for i := 0; i < bump.Rows; i++ {
		for p := bump.RowPtr[i]; p < bump.RowPtr[i+1]; p++ {
			entries = append(entries, sparse.Triple{Row: int32(i), Col: bump.ColIdx[p], Val: bump.Val[p]})
		}
	}
	a2, err := sparse.FromTriples(50, 50, entries)
	if err != nil {
		t.Fatal(err)
	}

	full, err := BKSVD(a2, Options{Rank: 4, Epsilon: 0.1, Rng: rand.New(rand.NewSource(11))})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := BKSVD(a2, Options{Rank: 4, Iters: 1, Init: cold.V, Rng: rand.New(rand.NewSource(12))})
	if err != nil {
		t.Fatal(err)
	}
	if warm.ItersRun != 1 {
		t.Fatalf("warm run executed %d iterations, want 1", warm.ItersRun)
	}
	for i := range full.S {
		if math.Abs(warm.S[i]-full.S[i]) > 0.02*full.S[i]+1e-9 {
			t.Fatalf("warm singular value %d: got %v, converged run has %v", i, warm.S[i], full.S[i])
		}
	}

	// Shape mismatch is rejected up front.
	if _, err := BKSVD(a2, Options{Rank: 4, Init: matrix.NewDense(7, 4), Rng: rng}); err == nil {
		t.Fatal("expected shape error for bad warm-start block")
	}
	if _, err := SubspaceIteration(a2, Options{Rank: 4, Init: matrix.NewDense(7, 4), Rng: rng}); err == nil {
		t.Fatal("expected shape error for bad warm-start block (subspace)")
	}
}
