package svd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/sparse"
)

// Property: on random sparse matrices, both randomized solvers recover the
// dominant singular value within a few percent of the exact SVD.
func TestRandomizedSolversTrackExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(15)
		var entries []sparse.Triple
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.25 {
					entries = append(entries, sparse.Triple{Row: int32(i), Col: int32(j), Val: rng.NormFloat64()})
				}
			}
		}
		a, err := sparse.FromTriples(n, n, entries)
		if err != nil || a.NNZ() == 0 {
			return true
		}
		_, exact, _ := matrix.SVD(a.ToDense())
		for _, solve := range []func(*sparse.CSR, Options) (*Result, error){BKSVD, SubspaceIteration} {
			res, err := solve(a, Options{Rank: 3, Iters: 15, Rng: rng})
			if err != nil {
				return false
			}
			if math.Abs(res.S[0]-exact[0]) > 0.03*math.Max(1, exact[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// BKSVD should dominate subspace iteration at equal (low) iteration counts
// on a slowly decaying spectrum — the advantage the paper cites.
func TestBKSVDBeatsSubspaceAtLowIters(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	// Slowly decaying spectrum makes power iteration converge slowly.
	s := []float64{10, 9.0, 8.2, 7.5, 6.9, 6.3, 5.8, 5.3}
	a := lowRankSparse(t, 60, 60, s, rng)
	frob := func(res *Result) float64 {
		recon := matrix.Mul(matrix.Mul(res.U, matrix.Diag(res.S)), res.V.T())
		return a.ToDense().Sub(recon).FrobeniusNorm()
	}
	errBK, errSI := 0.0, 0.0
	const trials = 5
	for i := 0; i < trials; i++ {
		bk, err := BKSVD(a, Options{Rank: 4, Iters: 2, Rng: rand.New(rand.NewSource(int64(i)))})
		if err != nil {
			t.Fatal(err)
		}
		si, err := SubspaceIteration(a, Options{Rank: 4, Iters: 2, Rng: rand.New(rand.NewSource(int64(i)))})
		if err != nil {
			t.Fatal(err)
		}
		errBK += frob(bk)
		errSI += frob(si)
	}
	if errBK >= errSI {
		t.Fatalf("BKSVD (%.4f) should beat subspace iteration (%.4f) at q=2", errBK/trials, errSI/trials)
	}
	t.Logf("avg Frobenius residual: BKSVD %.4f, subspace %.4f", errBK/trials, errSI/trials)
}
