package sparse

import "testing"

func testMatrix(t *testing.T) *CSR {
	t.Helper()
	a, err := FromTriples(3, 3, []Triple{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 2}, {Row: 2, Col: 2, Val: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestInsertEntries(t *testing.T) {
	a := testMatrix(t)
	out, err := a.InsertEntries([]Triple{{Row: 0, Col: 0, Val: 5}, {Row: 2, Col: 0, Val: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if out.NNZ() != 5 || out.At(0, 0) != 5 || out.At(2, 0) != 6 || out.At(0, 1) != 1 {
		t.Fatalf("merged matrix wrong: nnz=%d", out.NNZ())
	}
	if a.NNZ() != 3 {
		t.Fatal("source matrix mutated")
	}
	// Colliding with an existing entry is an error, not a duplicate.
	if _, err := a.InsertEntries([]Triple{{Row: 0, Col: 1, Val: 9}}); err == nil {
		t.Fatal("expected collision error")
	}
	// Duplicate within the batch is an error.
	if _, err := a.InsertEntries([]Triple{{Row: 0, Col: 2, Val: 1}, {Row: 0, Col: 2, Val: 1}}); err == nil {
		t.Fatal("expected duplicate error")
	}
	// Out of range is an error.
	if _, err := a.InsertEntries([]Triple{{Row: 0, Col: 7, Val: 1}}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestDropEntries(t *testing.T) {
	a := testMatrix(t)
	out, removed, err := a.DropEntries([]Triple{{Row: 0, Col: 1}, {Row: 1, Col: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || out.NNZ() != 2 || out.At(0, 1) != 0 || out.At(1, 0) != 2 {
		t.Fatalf("drop wrong: removed=%d nnz=%d", removed, out.NNZ())
	}
	if _, _, err := a.DropEntries([]Triple{{Row: 9, Col: 0}}); err == nil {
		t.Fatal("expected range error")
	}
}
