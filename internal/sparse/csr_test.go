package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nrp-embed/nrp/internal/matrix"
)

// randomCSR builds a random sparse matrix with about density*r*c entries.
func randomCSR(t testing.TB, r, c int, density float64, rng *rand.Rand) *CSR {
	var entries []Triple
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				entries = append(entries, Triple{Row: int32(i), Col: int32(j), Val: rng.NormFloat64()})
			}
		}
	}
	m, err := FromTriples(r, c, entries)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFromTriplesBasic(t *testing.T) {
	m, err := FromTriples(3, 3, []Triple{
		{0, 1, 2}, {2, 0, 5}, {0, 0, 1}, {1, 2, -3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 {
		t.Fatalf("NNZ=%d", m.NNZ())
	}
	if m.At(0, 0) != 1 || m.At(0, 1) != 2 || m.At(1, 2) != -3 || m.At(2, 0) != 5 {
		t.Fatalf("bad contents: %+v", m)
	}
	if m.At(1, 1) != 0 {
		t.Fatal("missing entry should be 0")
	}
}

func TestFromTriplesSumsDuplicates(t *testing.T) {
	m, err := FromTriples(2, 2, []Triple{{0, 0, 1}, {0, 0, 2.5}, {1, 1, 1}, {1, 1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 3.5 {
		t.Fatalf("duplicate sum = %v", m.At(0, 0))
	}
	if m.At(1, 1) != 0 || m.NNZ() != 2 {
		t.Fatalf("cancelled duplicate kept: nnz=%d at=%v", m.NNZ(), m.At(1, 1))
	}
}

func TestFromTriplesOutOfRange(t *testing.T) {
	if _, err := FromTriples(2, 2, []Triple{{2, 0, 1}}); err == nil {
		t.Fatal("expected error for out-of-range row")
	}
	if _, err := FromTriples(2, 2, []Triple{{0, 5, 1}}); err == nil {
		t.Fatal("expected error for out-of-range col")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 2, []int{0, 1}, []int32{0}, []float64{1}); err == nil {
		t.Fatal("short rowPtr accepted")
	}
	if _, err := New(2, 2, []int{0, 1, 1}, []int32{5}, []float64{1}); err == nil {
		t.Fatal("bad endpoint accepted")
	}
	if _, err := New(1, 1, []int{0, 1}, []int32{3}, []float64{1}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if _, err := New(1, 1, []int{0, 1}, []int32{0}, []float64{1}); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomCSR(t, 7, 5, 0.4, rng)
	d := a.ToDense()
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 7)
	a.MulVec(x, y)
	for i := 0; i < 7; i++ {
		want := matrix.Dot(d.Row(i), x)
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("row %d: got %v want %v", i, y[i], want)
		}
	}
}

func TestMulVecTAgainstTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomCSR(t, 6, 9, 0.3, rng)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, 9)
	a.MulVecT(x, y1)
	y2 := make([]float64, 9)
	a.Transpose().MulVec(x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("MulVecT mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		a := randomCSR(t, r, c, 0.3, rng)
		tt := a.Transpose().Transpose()
		return a.ToDense().MaxAbsDiff(tt.ToDense()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulDenseAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCSR(t, 8, 6, 0.35, rng)
	x := matrix.GaussianDense(6, 4, rng)
	got := a.MulDense(x)
	want := matrix.Mul(a.ToDense(), x)
	if got.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("MulDense mismatch: %v", got.MaxAbsDiff(want))
	}
}

func TestMulDenseTAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomCSR(t, 8, 6, 0.35, rng)
	x := matrix.GaussianDense(8, 3, rng)
	got := a.MulDenseT(x)
	want := matrix.Mul(a.ToDense().T(), x)
	if got.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("MulDenseT mismatch: %v", got.MaxAbsDiff(want))
	}
}

// Property: (A+A)x == 2Ax via value doubling through ScaleRows.
func TestScaleRowsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 2+rng.Intn(8), 2+rng.Intn(8)
		a := randomCSR(t, r, c, 0.4, rng)
		d := make([]float64, r)
		for i := range d {
			d[i] = rng.Float64() * 3
		}
		scaled := a.ScaleRows(d)
		x := make([]float64, c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, r)
		scaled.MulVec(x, y1)
		y2 := make([]float64, r)
		a.MulVec(x, y2)
		for i := range y1 {
			if math.Abs(y1[i]-d[i]*y2[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRowSums(t *testing.T) {
	m, err := FromTriples(2, 3, []Triple{{0, 0, 1}, {0, 2, 2}, {1, 1, -4}})
	if err != nil {
		t.Fatal(err)
	}
	s := m.RowSums()
	if s[0] != 3 || s[1] != -4 {
		t.Fatalf("RowSums = %v", s)
	}
}

func TestIdentityCSR(t *testing.T) {
	id := Identity(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	id.MulVec(x, y)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity MulVec: %v", y)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := FromTriples(1, 1, []Triple{{0, 0, 1}})
	b := a.Clone()
	b.Val[0] = 99
	if a.Val[0] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestRowNNZ(t *testing.T) {
	m, _ := FromTriples(3, 3, []Triple{{0, 0, 1}, {0, 1, 1}, {2, 2, 1}})
	if m.RowNNZ(0) != 2 || m.RowNNZ(1) != 0 || m.RowNNZ(2) != 1 {
		t.Fatalf("RowNNZ wrong: %d %d %d", m.RowNNZ(0), m.RowNNZ(1), m.RowNNZ(2))
	}
}

func TestEmptyMatrixOps(t *testing.T) {
	m, err := FromTriples(3, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 0 {
		t.Fatal("empty should have 0 nnz")
	}
	y := make([]float64, 3)
	m.MulVec([]float64{1, 2, 3}, y)
	for _, v := range y {
		if v != 0 {
			t.Fatal("empty matrix product nonzero")
		}
	}
	tt := m.Transpose()
	if tt.Rows != 3 || tt.NNZ() != 0 {
		t.Fatal("empty transpose wrong")
	}
}

func TestFromStridedRowsBasic(t *testing.T) {
	// Three rows in stride-3 slots, partially filled; slack entries in the
	// buffers must be ignored.
	lens := []int32{2, 0, 3}
	cols := []int32{
		1, 3, -9,
		-9, -9, -9,
		0, 2, 3,
	}
	vals := []float64{
		1.5, -2, 99,
		99, 99, 99,
		4, 5, 6,
	}
	m, err := FromStridedRows(3, 4, lens, 3, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FromTriples(3, 4, []Triple{
		{Row: 0, Col: 1, Val: 1.5}, {Row: 0, Col: 3, Val: -2},
		{Row: 2, Col: 0, Val: 4}, {Row: 2, Col: 2, Val: 5}, {Row: 2, Col: 3, Val: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != want.NNZ() {
		t.Fatalf("nnz %d, want %d", m.NNZ(), want.NNZ())
	}
	for i := 0; i <= 3; i++ {
		if m.RowPtr[i] != want.RowPtr[i] {
			t.Fatalf("rowPtr[%d] = %d, want %d", i, m.RowPtr[i], want.RowPtr[i])
		}
	}
	for i := range m.ColIdx {
		if m.ColIdx[i] != want.ColIdx[i] || m.Val[i] != want.Val[i] {
			t.Fatalf("entry %d = (%d,%v), want (%d,%v)", i, m.ColIdx[i], m.Val[i], want.ColIdx[i], want.Val[i])
		}
	}
}

func TestFromStridedRowsMatchesTriples(t *testing.T) {
	// Random strided rows with ascending columns must assemble to the same
	// matrix FromTriples builds from the equivalent entry list.
	rng := rand.New(rand.NewSource(11))
	const rows, colsN, stride = 40, 60, 8
	lens := make([]int32, rows)
	colBuf := make([]int32, rows*stride)
	valBuf := make([]float64, rows*stride)
	var entries []Triple
	for i := 0; i < rows; i++ {
		l := rng.Intn(stride + 1)
		perm := rng.Perm(colsN)[:l]
		cs := make([]int, l)
		copy(cs, perm)
		sortInts(cs)
		lens[i] = int32(l)
		for j, c := range cs {
			v := rng.NormFloat64()
			colBuf[i*stride+j] = int32(c)
			valBuf[i*stride+j] = v
			entries = append(entries, Triple{Row: int32(i), Col: int32(c), Val: v})
		}
	}
	m, err := FromStridedRows(rows, colsN, lens, stride, colBuf, valBuf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FromTriples(rows, colsN, entries)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != want.NNZ() {
		t.Fatalf("nnz %d, want %d", m.NNZ(), want.NNZ())
	}
	for i := range m.ColIdx {
		if m.ColIdx[i] != want.ColIdx[i] || m.Val[i] != want.Val[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

func TestFromStridedRowsValidation(t *testing.T) {
	ok := func() ([]int32, []int32, []float64) {
		return []int32{2, 2}, []int32{0, 2, -9, 1, 2, -9}, []float64{1, 2, 99, 3, 4, 99}
	}
	cases := []struct {
		name string
		mut  func(lens, cols []int32, vals []float64) (int, int, []int32, int, []int32, []float64)
	}{
		{"negative rows", func(l, c []int32, v []float64) (int, int, []int32, int, []int32, []float64) {
			return -1, 3, l, 3, c, v
		}},
		{"lens mismatch", func(l, c []int32, v []float64) (int, int, []int32, int, []int32, []float64) {
			return 2, 3, l[:1], 3, c, v
		}},
		{"short buffer", func(l, c []int32, v []float64) (int, int, []int32, int, []int32, []float64) {
			return 2, 3, l, 3, c[:4], v
		}},
		{"len exceeds stride", func(l, c []int32, v []float64) (int, int, []int32, int, []int32, []float64) {
			l[0] = 4
			return 2, 3, l, 3, c, v
		}},
		{"negative len", func(l, c []int32, v []float64) (int, int, []int32, int, []int32, []float64) {
			l[1] = -1
			return 2, 3, l, 3, c, v
		}},
		{"descending cols", func(l, c []int32, v []float64) (int, int, []int32, int, []int32, []float64) {
			c[0], c[1] = 2, 0
			return 2, 3, l, 3, c, v
		}},
		{"duplicate cols", func(l, c []int32, v []float64) (int, int, []int32, int, []int32, []float64) {
			c[1] = c[0]
			return 2, 3, l, 3, c, v
		}},
		{"col out of range", func(l, c []int32, v []float64) (int, int, []int32, int, []int32, []float64) {
			c[3] = 3
			return 2, 3, l, 3, c, v
		}},
	}
	for _, tc := range cases {
		l, c, v := ok()
		rows, colsN, lens, stride, cols, vals := tc.mut(l, c, v)
		if _, err := FromStridedRows(rows, colsN, lens, stride, cols, vals); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The unmutated fixture is valid.
	l, c, v := ok()
	if _, err := FromStridedRows(2, 3, l, 3, c, v); err != nil {
		t.Fatalf("valid fixture rejected: %v", err)
	}
}
