package sparse

import (
	"math/rand"
	"testing"

	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/par"
)

// randCSR builds a random sparse matrix with skewed row lengths, the
// shape that stresses nnz-balanced partitioning.
func randCSR(t *testing.T, rows, cols, nnz int, seed int64) *CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	entries := make([]Triple, nnz)
	for i := range entries {
		r := rng.Intn(rows)
		if rng.Intn(4) == 0 {
			r = rng.Intn(1 + rows/10) // hot rows
		}
		entries[i] = Triple{Row: int32(r), Col: int32(rng.Intn(cols)), Val: rng.NormFloat64()}
	}
	a, err := FromTriples(rows, cols, entries)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestMulDensePoolMatchesSerial checks the row-partitioned parallel
// forward product is bit-identical to the serial one for several pool
// sizes (disjoint output rows, identical inner loops).
func TestMulDensePoolMatchesSerial(t *testing.T) {
	a := randCSR(t, 300, 200, 4000, 1)
	x := matrix.GaussianDense(200, 17, rand.New(rand.NewSource(2)))
	want := a.MulDense(x)
	for _, workers := range []int{1, 2, 4, 7} {
		got := a.MulDensePool(par.New(workers), x)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("workers=%d: shape %dx%d, want %dx%d", workers, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i, v := range want.Data {
			if got.Data[i] != v {
				t.Fatalf("workers=%d: element %d = %v, want %v (must be bit-identical)", workers, i, got.Data[i], v)
			}
		}
	}
}

// TestMulDenseTPoolMatchesSerial checks the accumulator-merged transpose
// product agrees with the serial one to floating-point reassociation
// tolerance, and is bit-identical across repeated runs at a fixed pool
// size.
func TestMulDenseTPoolMatchesSerial(t *testing.T) {
	a := randCSR(t, 250, 180, 3500, 3)
	x := matrix.GaussianDense(250, 13, rand.New(rand.NewSource(4)))
	want := a.MulDenseT(x)
	for _, workers := range []int{1, 2, 4, 7} {
		pool := par.New(workers)
		got := a.MulDenseTPool(pool, x)
		if d := got.MaxAbsDiff(want); d > 1e-12 {
			t.Fatalf("workers=%d: max abs diff %g vs serial", workers, d)
		}
		again := a.MulDenseTPool(pool, x)
		for i, v := range got.Data {
			if again.Data[i] != v {
				t.Fatalf("workers=%d: repeated run differs at %d (%v vs %v)", workers, i, again.Data[i], v)
			}
		}
	}
}

// TestFromTriplesCountingSortMatchesReference cross-checks the counting-
// sort CSR build against a dense reference accumulation on random inputs
// with many duplicates.
func TestFromTriplesCountingSortMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(40)
		nnz := rng.Intn(300)
		entries := make([]Triple, nnz)
		ref := make([]float64, rows*cols)
		for i := range entries {
			r, c := rng.Intn(rows), rng.Intn(cols)
			v := rng.NormFloat64()
			entries[i] = Triple{Row: int32(r), Col: int32(c), Val: v}
			ref[r*cols+c] += v
		}
		a, err := FromTriples(rows, cols, entries)
		if err != nil {
			t.Fatal(err)
		}
		// Structure: strictly increasing columns within each row (all
		// duplicates merged), monotone rowPtr.
		for i := 0; i < rows; i++ {
			for p := a.RowPtr[i] + 1; p < a.RowPtr[i+1]; p++ {
				if a.ColIdx[p-1] >= a.ColIdx[p] {
					t.Fatalf("trial %d: row %d columns not strictly increasing", trial, i)
				}
			}
		}
		got := a.ToDense()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if d := got.At(i, j) - ref[i*cols+j]; d > 1e-12 || d < -1e-12 {
					t.Fatalf("trial %d: (%d,%d) = %v, want %v", trial, i, j, got.At(i, j), ref[i*cols+j])
				}
			}
		}
	}
}

// BenchmarkFromTriples measures the counting-sort CSR build on a graph-
// shaped triple load (2 entries per undirected edge).
func BenchmarkFromTriples(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const n, m = 50_000, 400_000
	entries := make([]Triple, 0, 2*m)
	for i := 0; i < m; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		entries = append(entries, Triple{Row: u, Col: v, Val: 1}, Triple{Row: v, Col: u, Val: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromTriples(n, n, entries); err != nil {
			b.Fatal(err)
		}
	}
}
