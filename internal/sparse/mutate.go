package sparse

import (
	"fmt"
	"sort"
)

// InsertEntries returns a new CSR matrix with the given entries added. The
// whole batch is merged in one O(nnz + b·log b) pass over the matrix —
// the amortization that makes batched graph updates cheap — instead of a
// full triple rebuild. Entries must name positions that are currently
// zero and must not repeat within the batch; the caller is responsible
// for deduplication (FromTriples-style summing is deliberately not done
// here, so an accidental duplicate surfaces as an error instead of a
// silently doubled weight).
func (a *CSR) InsertEntries(entries []Triple) (*CSR, error) {
	for _, e := range entries {
		if int(e.Row) < 0 || int(e.Row) >= a.Rows || int(e.Col) < 0 || int(e.Col) >= a.Cols {
			return nil, fmt.Errorf("sparse: insert (%d,%d) outside %dx%d", e.Row, e.Col, a.Rows, a.Cols)
		}
	}
	ins := append([]Triple(nil), entries...)
	sort.Slice(ins, func(i, j int) bool {
		if ins[i].Row != ins[j].Row {
			return ins[i].Row < ins[j].Row
		}
		return ins[i].Col < ins[j].Col
	})
	out := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int, a.Rows+1),
		ColIdx: make([]int32, 0, a.NNZ()+len(ins)),
		Val:    make([]float64, 0, a.NNZ()+len(ins)),
	}
	k := 0 // cursor into ins
	for i := 0; i < a.Rows; i++ {
		p, hi := a.RowPtr[i], a.RowPtr[i+1]
		for p < hi || (k < len(ins) && int(ins[k].Row) == i) {
			insHere := k < len(ins) && int(ins[k].Row) == i
			if insHere && p < hi && ins[k].Col == a.ColIdx[p] {
				return nil, fmt.Errorf("sparse: insert (%d,%d) collides with existing entry", ins[k].Row, ins[k].Col)
			}
			if insHere && (p >= hi || ins[k].Col < a.ColIdx[p]) {
				if k > 0 && ins[k-1].Row == ins[k].Row && ins[k-1].Col == ins[k].Col {
					return nil, fmt.Errorf("sparse: duplicate insert (%d,%d)", ins[k].Row, ins[k].Col)
				}
				out.ColIdx = append(out.ColIdx, ins[k].Col)
				out.Val = append(out.Val, ins[k].Val)
				k++
			} else {
				out.ColIdx = append(out.ColIdx, a.ColIdx[p])
				out.Val = append(out.Val, a.Val[p])
				p++
			}
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out, nil
}

// DropEntries returns a new CSR matrix with the given (row, col) positions
// removed, merged in one pass like InsertEntries. Positions that hold no
// entry are ignored; the number of entries actually removed is returned.
// Triple values are ignored.
func (a *CSR) DropEntries(entries []Triple) (*CSR, int, error) {
	for _, e := range entries {
		if int(e.Row) < 0 || int(e.Row) >= a.Rows || int(e.Col) < 0 || int(e.Col) >= a.Cols {
			return nil, 0, fmt.Errorf("sparse: drop (%d,%d) outside %dx%d", e.Row, e.Col, a.Rows, a.Cols)
		}
	}
	drop := make(map[int64]struct{}, len(entries))
	for _, e := range entries {
		drop[int64(e.Row)*int64(a.Cols)+int64(e.Col)] = struct{}{}
	}
	out := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int, a.Rows+1),
		ColIdx: make([]int32, 0, a.NNZ()),
		Val:    make([]float64, 0, a.NNZ()),
	}
	removed := 0
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if _, ok := drop[int64(i)*int64(a.Cols)+int64(a.ColIdx[p])]; ok {
				removed++
				continue
			}
			out.ColIdx = append(out.ColIdx, a.ColIdx[p])
			out.Val = append(out.Val, a.Val[p])
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out, removed, nil
}
