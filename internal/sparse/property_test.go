package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: At agrees with the dense materialization everywhere.
func TestAtMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(12), 1+rng.Intn(12)
		a := randomCSR(t, r, c, 0.35, rng)
		d := a.ToDense()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if a.At(i, j) != d.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: MulDense and MulDenseT are adjoint: ⟨A·X, Y⟩ == ⟨X, Aᵀ·Y⟩.
func TestAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c, k := 2+rng.Intn(8), 2+rng.Intn(8), 1+rng.Intn(4)
		a := randomCSR(t, r, c, 0.4, rng)
		x := randomCSR(t, c, k, 1.0, rng).ToDense()
		y := randomCSR(t, r, k, 1.0, rng).ToDense()
		ax := a.MulDense(x)
		aty := a.MulDenseT(y)
		lhs, rhs := 0.0, 0.0
		for i := range ax.Data {
			lhs += ax.Data[i] * y.Data[i]
		}
		for i := range aty.Data {
			rhs += aty.Data[i] * x.Data[i]
		}
		return abs(lhs-rhs) < 1e-9*(1+abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Property: transposing preserves every entry: Aᵀ[j,i] == A[i,j].
func TestTransposeEntriesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		a := randomCSR(t, r, c, 0.4, rng)
		at := a.Transpose()
		for i := 0; i < r; i++ {
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				j := int(a.ColIdx[p])
				if at.At(j, i) != a.Val[p] {
					return false
				}
			}
		}
		return at.NNZ() == a.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
