// Package sparse provides the compressed-sparse-row (CSR) matrix substrate
// used throughout the NRP pipeline: adjacency and transition matrices,
// sparse×vector and sparse×dense products, transposes and row scalings.
//
// Column indices are stored as int32 (graphs up to 2^31-1 nodes), values as
// float64. The dense products come in two forms: the plain methods
// (MulDense, MulDenseT) are single-threaded, and the Pool-taking variants
// (MulDensePool, MulDenseTPool) partition work across a par.Pool — the
// forward product by nnz-balanced row ranges writing disjoint output rows
// (bit-identical to serial for any pool size), the transpose product via
// per-worker accumulator matrices merged in fixed tree order (conflict-free
// columns, deterministic for a fixed pool size).
package sparse

import (
	"fmt"
	"sort"

	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/par"
)

// CSR is a sparse matrix in compressed-sparse-row form.
type CSR struct {
	Rows, Cols int
	RowPtr     []int     // len Rows+1; row i occupies [RowPtr[i], RowPtr[i+1])
	ColIdx     []int32   // len NNZ
	Val        []float64 // len NNZ
}

// New constructs a CSR matrix from raw components, validating their shape.
func New(rows, cols int, rowPtr []int, colIdx []int32, val []float64) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: negative dimension %dx%d", rows, cols)
	}
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("sparse: rowPtr length %d, want %d", len(rowPtr), rows+1)
	}
	if len(colIdx) != len(val) {
		return nil, fmt.Errorf("sparse: colIdx/val length mismatch %d vs %d", len(colIdx), len(val))
	}
	if rowPtr[0] != 0 || rowPtr[rows] != len(colIdx) {
		return nil, fmt.Errorf("sparse: rowPtr endpoints [%d,%d], want [0,%d]", rowPtr[0], rowPtr[rows], len(colIdx))
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return nil, fmt.Errorf("sparse: rowPtr not monotone at row %d", i)
		}
	}
	for _, j := range colIdx {
		if int(j) < 0 || int(j) >= cols {
			return nil, fmt.Errorf("sparse: column index %d out of range [0,%d)", j, cols)
		}
	}
	return &CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}, nil
}

// FromStridedRows assembles a CSR matrix from fixed-stride row storage:
// row i occupies colIdx[i*stride : i*stride+int(lens[i])] and the matching
// vals range, with strictly ascending column indices within each row.
// This is the zero-sort assembly path for row-emitting estimators that
// already produce sorted, duplicate-free rows (each worker writes its rows
// into disjoint stride-sized slots with no coordination): FromTriples
// would pay two counting passes plus a triple buffer over the whole nnz to
// rediscover an order the producer already had.
func FromStridedRows(rows, cols int, lens []int32, stride int, colIdx []int32, vals []float64) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: negative dimension %dx%d", rows, cols)
	}
	if stride < 0 {
		return nil, fmt.Errorf("sparse: negative stride %d", stride)
	}
	if len(lens) != rows {
		return nil, fmt.Errorf("sparse: %d row lengths for %d rows", len(lens), rows)
	}
	if len(colIdx) < rows*stride || len(vals) < rows*stride {
		return nil, fmt.Errorf("sparse: strided buffers hold %d/%d entries, want ≥ %d", len(colIdx), len(vals), rows*stride)
	}
	nnz := 0
	rowPtr := make([]int, rows+1)
	for i, l := range lens {
		if l < 0 || int(l) > stride {
			return nil, fmt.Errorf("sparse: row %d length %d outside [0,%d]", i, l, stride)
		}
		nnz += int(l)
		rowPtr[i+1] = nnz
	}
	outC := make([]int32, nnz)
	outV := make([]float64, nnz)
	for i := 0; i < rows; i++ {
		base := i * stride
		row := colIdx[base : base+int(lens[i])]
		prev := int32(-1)
		for _, c := range row {
			if c <= prev || int(c) >= cols {
				return nil, fmt.Errorf("sparse: row %d columns not strictly ascending in [0,%d) at %d", i, cols, c)
			}
			prev = c
		}
		copy(outC[rowPtr[i]:rowPtr[i+1]], row)
		copy(outV[rowPtr[i]:rowPtr[i+1]], vals[base:base+int(lens[i])])
	}
	return &CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColIdx: outC, Val: outV}, nil
}

// Triple is a single (row, col, value) entry used by FromTriples.
type Triple struct {
	Row, Col int32
	Val      float64
}

// FromTriples builds a CSR matrix from an unordered list of entries.
// Duplicate (row, col) entries are summed. Triples outside the matrix
// bounds yield an error.
//
// The build is two stable counting sorts — first by column, then by row —
// so the entries land in (row, col) order in O(nnz + rows + cols) time
// with no comparison sort, followed by a single duplicate-merging sweep.
func FromTriples(rows, cols int, entries []Triple) (*CSR, error) {
	for _, e := range entries {
		if int(e.Row) < 0 || int(e.Row) >= rows || int(e.Col) < 0 || int(e.Col) >= cols {
			return nil, fmt.Errorf("sparse: triple (%d,%d) outside %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	nnz := len(entries)

	// Pass 1: stable counting sort by column into scratch arrays.
	colStart := make([]int, cols+1)
	for _, e := range entries {
		colStart[e.Col+1]++
	}
	for j := 0; j < cols; j++ {
		colStart[j+1] += colStart[j]
	}
	rowTmp := make([]int32, nnz)
	colTmp := make([]int32, nnz)
	valTmp := make([]float64, nnz)
	for _, e := range entries {
		p := colStart[e.Col]
		colStart[e.Col]++
		rowTmp[p] = e.Row
		colTmp[p] = e.Col
		valTmp[p] = e.Val
	}

	// Pass 2: stable counting sort by row. Stability preserves the column
	// order established by pass 1, so each row segment comes out sorted by
	// column with duplicates adjacent.
	rowStart := make([]int, rows+1)
	for _, r := range rowTmp {
		rowStart[r+1]++
	}
	for i := 0; i < rows; i++ {
		rowStart[i+1] += rowStart[i]
	}
	colIdx := make([]int32, nnz)
	val := make([]float64, nnz)
	next := make([]int, rows)
	copy(next, rowStart[:rows])
	for p := 0; p < nnz; p++ {
		r := rowTmp[p]
		q := next[r]
		next[r]++
		colIdx[q] = colTmp[p]
		val[q] = valTmp[p]
	}

	// Merge duplicates in place: entries are sorted by (row, col), so
	// duplicates are adjacent within each row segment.
	rowPtr := make([]int, rows+1)
	out := 0
	for i := 0; i < rows; i++ {
		lo, hi := rowStart[i], rowStart[i+1]
		rowPtr[i] = out
		for p := lo; p < hi; p++ {
			if out > rowPtr[i] && colIdx[out-1] == colIdx[p] {
				val[out-1] += val[p]
			} else {
				colIdx[out] = colIdx[p]
				val[out] = val[p]
				out++
			}
		}
	}
	rowPtr[rows] = out
	return &CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColIdx: colIdx[:out], Val: val[:out]}, nil
}

// NNZ reports the number of stored entries.
func (a *CSR) NNZ() int { return len(a.ColIdx) }

// RowNNZ reports the number of stored entries in row i.
func (a *CSR) RowNNZ(i int) int { return a.RowPtr[i+1] - a.RowPtr[i] }

// At returns the (i, j) element. O(log nnz(row i)).
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	seg := a.ColIdx[lo:hi]
	p := sort.Search(len(seg), func(k int) bool { return seg[k] >= int32(j) })
	if p < len(seg) && seg[p] == int32(j) {
		return a.Val[lo+p]
	}
	return 0
}

// Clone returns a deep copy of a.
func (a *CSR) Clone() *CSR {
	c := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: append([]int32(nil), a.ColIdx...),
		Val:    append([]float64(nil), a.Val...),
	}
	return c
}

// Transpose returns aᵀ as a new CSR matrix.
func (a *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   a.Cols,
		Cols:   a.Rows,
		RowPtr: make([]int, a.Cols+1),
		ColIdx: make([]int32, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	for _, j := range a.ColIdx {
		t.RowPtr[j+1]++
	}
	for i := 0; i < a.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int, a.Cols)
	copy(next, t.RowPtr[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := a.ColIdx[p]
			q := next[j]
			t.ColIdx[q] = int32(i)
			t.Val[q] = a.Val[p]
			next[j]++
		}
	}
	return t
}

// ScaleRows returns diag(d)·a as a new matrix: row i is scaled by d[i].
func (a *CSR) ScaleRows(d []float64) *CSR {
	if len(d) != a.Rows {
		panic(fmt.Sprintf("sparse: ScaleRows length %d, want %d", len(d), a.Rows))
	}
	out := a.Clone()
	for i := 0; i < a.Rows; i++ {
		s := d[i]
		for p := out.RowPtr[i]; p < out.RowPtr[i+1]; p++ {
			out.Val[p] *= s
		}
	}
	return out
}

// RowSums returns the vector of row sums of a.
func (a *CSR) RowSums() []float64 {
	sums := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			s += a.Val[p]
		}
		sums[i] = s
	}
	return sums
}

// MulVec computes y = a·x. y must have length a.Rows; x length a.Cols.
func (a *CSR) MulVec(x, y []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: MulVec shapes x=%d y=%d for %dx%d", len(x), len(y), a.Rows, a.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			s += a.Val[p] * x[a.ColIdx[p]]
		}
		y[i] = s
	}
}

// MulVecT computes y = aᵀ·x. y must have length a.Cols; x length a.Rows.
func (a *CSR) MulVecT(x, y []float64) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic(fmt.Sprintf("sparse: MulVecT shapes x=%d y=%d for %dx%d", len(x), len(y), a.Rows, a.Cols))
	}
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			y[a.ColIdx[p]] += a.Val[p] * xi
		}
	}
}

// MulDense computes a·x for a dense x (a.Cols rows), returning a new
// a.Rows-by-x.Cols dense matrix. This is the workhorse of the block Krylov
// iteration: the inner loop streams rows of x, which are contiguous.
// Single-threaded; see MulDensePool.
func (a *CSR) MulDense(x *matrix.Dense) *matrix.Dense {
	return a.MulDensePool(nil, x)
}

// MulDensePool is MulDense parallelized over a par.Pool: the output rows
// are partitioned into nnz-balanced contiguous ranges (one per worker),
// each written by exactly one worker with the same inner loop as the
// serial product — so the result is bit-identical to MulDense for every
// pool size. A nil pool runs serially.
func (a *CSR) MulDensePool(p *par.Pool, x *matrix.Dense) *matrix.Dense {
	if x.Rows != a.Cols {
		panic(fmt.Sprintf("sparse: MulDense shape %dx%d * %dx%d", a.Rows, a.Cols, x.Rows, x.Cols))
	}
	out := matrix.NewDense(a.Rows, x.Cols)
	p.ForWeighted(a.Rows, a.RowPtr, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Row(i)
			for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
				matrix.Axpy(a.Val[q], x.Row(int(a.ColIdx[q])), orow)
			}
		}
	})
	return out
}

// MulDenseT computes aᵀ·x for a dense x (a.Rows rows), returning a new
// a.Cols-by-x.Cols dense matrix. Single-threaded; see MulDenseTPool.
func (a *CSR) MulDenseT(x *matrix.Dense) *matrix.Dense {
	return a.MulDenseTPool(nil, x)
}

// MulDenseTPool is MulDenseT parallelized over a par.Pool. The transpose
// product scatters into output rows indexed by column, so a row partition
// of the input would conflict; instead each worker accumulates its
// nnz-balanced input range into a private a.Cols×x.Cols accumulator and
// the partials are merged in fixed tree order — conflict-free and
// deterministic for a fixed pool size (different pool sizes differ only
// by floating-point reassociation). Memory cost is one accumulator per
// worker; a nil pool runs serially with no extra allocation.
func (a *CSR) MulDenseTPool(p *par.Pool, x *matrix.Dense) *matrix.Dense {
	if x.Rows != a.Rows {
		panic(fmt.Sprintf("sparse: MulDenseT shape %dx%d^T * %dx%d", a.Rows, a.Cols, x.Rows, x.Cols))
	}
	k := x.Cols
	nc := p.Chunks(a.Rows)
	if nc <= 1 {
		out := matrix.NewDense(a.Cols, k)
		for i := 0; i < a.Rows; i++ {
			xrow := x.Row(i)
			for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
				matrix.Axpy(a.Val[q], xrow, out.Row(int(a.ColIdx[q])))
			}
		}
		return out
	}
	parts := make([][]float64, nc)
	p.ForWeighted(a.Rows, a.RowPtr, func(w, lo, hi int) {
		acc := make([]float64, a.Cols*k)
		for i := lo; i < hi; i++ {
			xrow := x.Row(i)
			for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
				j := int(a.ColIdx[q]) * k
				matrix.Axpy(a.Val[q], xrow, acc[j:j+k])
			}
		}
		parts[w] = acc
	})
	return &matrix.Dense{Rows: a.Cols, Cols: k, Data: p.TreeReduce(parts)}
}

// ToDense materializes a as a dense matrix (for tests and tiny graphs).
func (a *CSR) ToDense() *matrix.Dense {
	out := matrix.NewDense(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := out.Row(i)
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			row[a.ColIdx[p]] += a.Val[p]
		}
	}
	return out
}

// Identity returns the n-by-n identity in CSR form.
func Identity(n int) *CSR {
	rowPtr := make([]int, n+1)
	colIdx := make([]int32, n)
	val := make([]float64, n)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = i + 1
		colIdx[i] = int32(i)
		val[i] = 1
	}
	return &CSR{Rows: n, Cols: n, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}
