//go:build !amd64

package quant

// Non-amd64 architectures always take the portable kernel; the constant
// lets the compiler drop the dispatch branch and the stub entirely.
const useAVX2 = false

func dotAVX2(a, b []int8) int32 { panic("quant: dotAVX2 without AVX2") }
