//go:build amd64

package quant

// dotAVX2 is the assembly kernel (dot_amd64.s): Σ a_i·b_i with 16-lane
// sign-extended int16 multiplies fused into int32 pair-sums (VPMADDWD).
// len(a) must be a non-zero multiple of 16 and len(b) >= len(a).
//
//go:noescape
func dotAVX2(a, b []int8) int32

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (XCR0).
func xgetbv0() (eax, edx uint32)

// useAVX2 gates the assembly kernel: the CPU must support AVX2 and the
// OS must have enabled XMM/YMM state saving (OSXSAVE + XCR0 bits 1–2).
var useAVX2 = func() bool {
	_, _, c, _ := cpuidex(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if c&osxsaveBit == 0 || c&avxBit == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuidex(7, 0)
	const avx2Bit = 1 << 5
	return b&avx2Bit != 0
}()
