//go:build amd64

#include "textflag.h"

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dotAVX2(a, b []int8) int32
//
// Preconditions (enforced by the Go wrapper): len(a) is a non-zero
// multiple of 16 and len(b) >= len(a).
//
// Per 16 elements: two 128-bit loads sign-extended to 16×int16
// (VPMOVSXBW), one fused multiply of adjacent-pair sums into 8×int32
// (VPMADDWD), one 8-lane add into the accumulator. Products are at most
// 2·127² per lane-pair, so the int32 lanes are exact for any dimension
// the package supports.
TEXT ·dotAVX2(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	SHRQ $4, CX
	VPXOR Y0, Y0, Y0

loop:
	VPMOVSXBW (SI), Y1
	VPMOVSXBW (DI), Y2
	VPMADDWD Y2, Y1, Y1
	VPADDD   Y1, Y0, Y0
	ADDQ     $16, SI
	ADDQ     $16, DI
	DECQ     CX
	JNZ      loop

	// Horizontal reduction of the 8 int32 lanes.
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x4E, X0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0xB1, X0, X1
	VPADDD       X1, X0, X0
	VMOVD        X0, AX
	VZEROUPPER
	MOVL AX, ret+48(FP)
	RET
