// Package quant implements symmetric int8 quantization of embedding
// matrices and the fused integer dot-product kernel the quantized query
// backend is built on.
//
// The layout follows the standard asymmetric-roles scheme for maximum
// inner-product search: the database side (the backward embeddings Y) is
// quantized once per dimension — scale_j = max_v |Y_vj| / 127, so each
// dimension uses the full int8 range regardless of its magnitude — while
// the query side folds those per-dimension scales into the float query
// first (x'_j = x_j·scale_j) and then quantizes the folded vector with a
// single per-query scale. The decoded product
//
//	qscale · Σ_j qx_j·qy_j  ≈  Σ_j (x_j·scale_j)·(Y_vj/scale_j)  =  X_u·Y_v
//
// reduces to one fused int32 dot per candidate plus one float multiply,
// touching 8× less memory than the float64 scan.
package quant

import (
	"math"

	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/par"
)

// Matrix is a row-major int8 quantization of an n×dim float matrix with
// one reconstruction scale per dimension: value ≈ code · Scales[j].
type Matrix struct {
	N, Dim int
	// Scales holds the per-dimension reconstruction scales; a dimension
	// that is identically zero gets scale 0 (its codes are all zero).
	Scales []float64
	// Codes is the row-major n×dim code array.
	Codes []int8
}

// qmax is the symmetric code range: codes live in [-127, 127] so that
// negation is closed and the zero point is exactly representable.
const qmax = 127

// QuantizeRows quantizes every row of m with per-dimension symmetric
// scales chosen from the column-wise absolute maxima. Single-threaded;
// see QuantizeRowsPool.
func QuantizeRows(m *matrix.Dense) *Matrix {
	return QuantizeRowsPool(nil, m)
}

// QuantizeRowsPool is QuantizeRows parallelized over a par.Pool (nil =
// serial): the column-maxima pass reduces per-worker maxima (max is
// order-independent) and the encode pass writes disjoint row ranges, so
// the result is bit-identical for every pool size.
func QuantizeRowsPool(p *par.Pool, m *matrix.Dense) *Matrix {
	n, dim := m.Rows, m.Cols
	q := &Matrix{N: n, Dim: dim, Scales: make([]float64, dim), Codes: make([]int8, n*dim)}
	nc := p.Chunks(n)
	maxParts := make([][]float64, nc)
	p.For(n, func(w, lo, hi int) {
		mx := make([]float64, dim)
		for v := lo; v < hi; v++ {
			row := m.Row(v)
			for j, x := range row {
				if a := math.Abs(x); a > mx[j] {
					mx[j] = a
				}
			}
		}
		maxParts[w] = mx
	})
	for _, mx := range maxParts {
		for j, a := range mx {
			if a > q.Scales[j] {
				q.Scales[j] = a
			}
		}
	}
	inv := make([]float64, dim)
	for j := range q.Scales {
		q.Scales[j] /= qmax
		if q.Scales[j] > 0 {
			inv[j] = 1 / q.Scales[j]
		}
	}
	p.For(n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			row := m.Row(v)
			codes := q.Codes[v*dim : (v+1)*dim]
			for j, x := range row {
				codes[j] = clampInt8(math.Round(x * inv[j]))
			}
		}
	})
	return q
}

// Row returns node v's code row, aliasing internal storage.
func (q *Matrix) Row(v int) []int8 { return q.Codes[v*q.Dim : (v+1)*q.Dim] }

// QuantizeQuery folds the matrix's per-dimension scales into the float
// query x and quantizes the folded vector symmetrically with a single
// per-query scale, so that scale·Dot(codes, q.Row(v)) ≈ x·Y_v. A zero
// query yields scale 0 and all-zero codes.
func (q *Matrix) QuantizeQuery(x []float64) (codes []int8, scale float64) {
	codes = make([]int8, q.Dim)
	scale = q.QuantizeQueryInto(codes, x)
	return codes, scale
}

// QuantizeQueryInto is QuantizeQuery writing into a caller-owned buffer
// of length Dim, for query paths hot enough that two small allocations
// per call show up (the HNSW searcher quantizes on every TopK).
func (q *Matrix) QuantizeQueryInto(codes []int8, x []float64) (scale float64) {
	if len(codes) != q.Dim {
		panic("quant: QuantizeQueryInto buffer length mismatch")
	}
	x = x[:q.Dim]
	scales := q.Scales[:q.Dim]
	var maxAbs float64
	for j, v := range x {
		if a := math.Abs(v * scales[j]); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for j := range codes {
			codes[j] = 0
		}
		return 0
	}
	scale = maxAbs / qmax
	inv := 1 / scale
	for j, v := range x {
		codes[j] = clampInt8(math.Round(v * scales[j] * inv))
	}
	return scale
}

func clampInt8(x float64) int8 {
	if x > qmax {
		return qmax
	}
	if x < -qmax {
		return -qmax
	}
	return int8(x)
}

// Dot is the fused integer kernel: Σ a_i·b_i accumulated in int32. With
// |codes| ≤ 127 each term is at most 16129, so the accumulator is exact
// up to ~133k dimensions. On amd64 with AVX2 the 16-aligned prefix runs
// through a sign-extending VPMADDWD kernel (16 lanes per step); the
// scalar path covers the tail and every other architecture.
func Dot(a, b []int8) int32 {
	if useAVX2 {
		n := len(a) &^ 15
		var s int32
		if n > 0 {
			s = dotAVX2(a[:n], b[:n])
		}
		for i := n; i < len(a); i++ {
			s += int32(a[i]) * int32(b[i])
		}
		return s
	}
	return dotGeneric(a, b)
}

// dotGeneric is the portable kernel. Four independent accumulators break
// the loop dependency chain so the adds pipeline.
func dotGeneric(a, b []int8) int32 {
	n := len(a)
	b = b[:n] // eliminate bounds checks in the loop
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
		s2 += int32(a[i+2]) * int32(b[i+2])
		s3 += int32(a[i+3]) * int32(b[i+3])
	}
	for ; i < n; i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return s0 + s1 + s2 + s3
}
