package quant

import (
	"math"
	"math/rand"
	"testing"

	"github.com/nrp-embed/nrp/internal/matrix"
)

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 3, 4, 7, 64, 129} {
		a := make([]int8, n)
		b := make([]int8, n)
		var want int32
		for i := range a {
			a[i] = int8(rng.Intn(255) - 127)
			b[i] = int8(rng.Intn(255) - 127)
			want += int32(a[i]) * int32(b[i])
		}
		if got := Dot(a, b); got != want {
			t.Fatalf("n=%d: Dot=%d want %d", n, got, want)
		}
	}
}

func TestDotExtremes(t *testing.T) {
	// 64 dims of the extreme codes must not overflow int32.
	a := make([]int8, 64)
	b := make([]int8, 64)
	for i := range a {
		a[i], b[i] = 127, 127
	}
	if got := Dot(a, b); got != 64*127*127 {
		t.Fatalf("extreme dot = %d", got)
	}
}

func TestQuantizeRowsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := matrix.GaussianDense(200, 32, rng)
	// Skew the dimensions so per-dimension scales actually differ.
	for v := 0; v < m.Rows; v++ {
		row := m.Row(v)
		for j := range row {
			row[j] *= math.Pow(10, float64(j%4)-2)
		}
	}
	q := QuantizeRows(m)
	for v := 0; v < m.Rows; v++ {
		row := m.Row(v)
		codes := q.Row(v)
		for j, x := range row {
			got := float64(codes[j]) * q.Scales[j]
			if err := math.Abs(got - x); err > q.Scales[j]/2+1e-12 {
				t.Fatalf("row %d dim %d: decoded %v want %v (scale %v)", v, j, got, x, q.Scales[j])
			}
		}
	}
}

func TestQuantizedDotApproximatesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	y := matrix.GaussianDense(500, 64, rng)
	q := QuantizeRows(y)
	x := make([]float64, 64)
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	codes, scale := q.QuantizeQuery(x)
	var maxRel float64
	for v := 0; v < y.Rows; v++ {
		exact := matrix.Dot(x, y.Row(v))
		approx := scale * float64(Dot(codes, q.Row(v)))
		// Normalize by the product of norms (the score magnitude scale);
		// int8 keeps the relative error well below a percent.
		denom := matrix.Norm2(x) * matrix.Norm2(y.Row(v))
		if rel := math.Abs(exact-approx) / denom; rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 0.01 {
		t.Fatalf("max normalized quantization error %v", maxRel)
	}
}

func TestQuantizeQueryZero(t *testing.T) {
	y := matrix.NewDense(4, 8)
	q := QuantizeRows(y)
	codes, scale := q.QuantizeQuery(make([]float64, 8))
	if scale != 0 {
		t.Fatalf("zero query scale = %v", scale)
	}
	for _, c := range codes {
		if c != 0 {
			t.Fatal("zero query produced nonzero code")
		}
	}
}

func BenchmarkDotInt8(b *testing.B) {
	x := make([]int8, 64)
	y := make([]int8, 64)
	for i := range x {
		x[i], y[i] = int8(i), int8(-i)
	}
	b.SetBytes(64 * 2)
	var sink int32
	for i := 0; i < b.N; i++ {
		sink += Dot(x, y)
	}
	_ = sink
}
