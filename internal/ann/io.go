package ann

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/nrp-embed/nrp/internal/matrix"
)

// Graph serialization. The payload is little-endian:
//
//	int64  M, efConstruction, efSearch
//	uint64 seed
//	int64  n, entry, maxLevel
//	int32  levels[n]
//	int32  cnts[cntOff[n]]
//	int32  nbrs[nbrOff[n]]
//
// The offset tables are not stored — they are a pure function of
// (levels, M) and are recomputed on decode. Build is deterministic, so
// encoding the same build twice yields identical bytes (the snapshot
// determinism tests pin this).
const encodeHeaderLen = 7 * 8

// Encode writes the built graph's payload to w.
func (ix *Index) Encode(w io.Writer) error {
	n := ix.N()
	header := []int64{int64(ix.cfg.M), int64(ix.cfg.EfConstruction), int64(ix.cfg.EfSearch),
		int64(ix.cfg.Seed), int64(n), int64(ix.entry), int64(ix.maxLevel)}
	for _, h := range header {
		if err := binary.Write(w, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, a := range [][]int32{ix.levels, ix.cnts, ix.nbrs} {
		if err := binary.Write(w, binary.LittleEndian, a); err != nil {
			return err
		}
	}
	return nil
}

// Decode reconstructs a graph from an Encode payload over the candidate
// rows y. Every structural invariant a search relies on is re-validated
// — level bounds, offset consistency against the payload length, live
// counts within capacity, neighbor ids in range and only at layers the
// neighbor reaches — so a corrupted section is rejected instead of
// causing out-of-bounds reads or silent garbage results.
func Decode(data []byte, y *matrix.Dense) (*Index, error) {
	r := bytes.NewReader(data)
	var m, efc, efs, seed, n, entry, maxLevel int64
	for _, p := range []*int64{&m, &efc, &efs, &seed, &n, &entry, &maxLevel} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("ann: reading graph header: %w", err)
		}
	}
	if m < 2 || m > 1<<20 || efc < 1 || efc > 1<<24 || efs < 1 || efs > 1<<24 {
		return nil, fmt.Errorf("ann: implausible graph config (M=%d efConstruction=%d efSearch=%d)", m, efc, efs)
	}
	if n != int64(y.Rows) {
		return nil, fmt.Errorf("ann: graph covers %d rows, embedding has %d", n, y.Rows)
	}
	ix := &Index{
		cfg:      Config{M: int(m), EfConstruction: int(efc), EfSearch: int(efs), Seed: uint64(seed)},
		y:        y,
		levels:   make([]int32, n),
		nbrOff:   make([]int64, n+1),
		cntOff:   make([]int64, n+1),
		entry:    int32(entry),
		maxLevel: int32(maxLevel),
	}
	if n == 0 {
		if entry != -1 || maxLevel != 0 || len(data) != encodeHeaderLen {
			return nil, fmt.Errorf("ann: corrupt empty graph")
		}
		return ix, nil
	}
	if err := binary.Read(r, binary.LittleEndian, ix.levels); err != nil {
		return nil, fmt.Errorf("ann: reading graph levels: %w", err)
	}
	var top int32
	for v, l := range ix.levels {
		if l < 0 || l > maxLevelCap {
			return nil, fmt.Errorf("ann: corrupt graph (node %d level %d)", v, l)
		}
		if l > top {
			top = l
		}
		ix.nbrOff[v+1] = ix.nbrOff[v] + 2*m + int64(l)*m
		ix.cntOff[v+1] = ix.cntOff[v] + int64(l) + 1
	}
	if entry < 0 || entry >= n || ix.levels[entry] != ix.maxLevel || top != ix.maxLevel {
		return nil, fmt.Errorf("ann: corrupt graph (entry %d level %d, max level %d)", entry, maxLevel, top)
	}
	// The header and levels are consumed; the rest of the payload must be
	// exactly the two adjacency arrays.
	want := int64(encodeHeaderLen) + 4*n + 4*ix.cntOff[n] + 4*ix.nbrOff[n]
	if int64(len(data)) != want {
		return nil, fmt.Errorf("ann: graph payload is %d bytes, layout needs %d", len(data), want)
	}
	ix.cnts = make([]int32, ix.cntOff[n])
	ix.nbrs = make([]int32, ix.nbrOff[n])
	for _, a := range [][]int32{ix.cnts, ix.nbrs} {
		if err := binary.Read(r, binary.LittleEndian, a); err != nil {
			return nil, fmt.Errorf("ann: reading graph adjacency: %w", err)
		}
	}
	for v := int32(0); int64(v) < n; v++ {
		for l := int32(0); l <= ix.levels[v]; l++ {
			start, capacity := ix.layerSpan(v, l)
			cnt := ix.cnts[ix.cntOff[v]+int64(l)]
			if cnt < 0 || cnt > capacity {
				return nil, fmt.Errorf("ann: corrupt graph (node %d layer %d count %d, capacity %d)", v, l, cnt, capacity)
			}
			for _, u := range ix.nbrs[start : start+int64(cnt)] {
				// A link at layer l must point to a node whose own block
				// reaches layer l, or searches would read another node's
				// slots.
				if u < 0 || int64(u) >= n || u == v || ix.levels[u] < l {
					return nil, fmt.Errorf("ann: corrupt graph (node %d layer %d links to %d)", v, l, u)
				}
			}
		}
	}
	return ix, nil
}
