package ann

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/par"
)

// fixture builds query rows X and candidate rows Y with NRP's
// heavy-tailed norm profile (row norms decaying as rank^-1/2), which is
// the regime the MIPS graph is designed for.
func fixture(n, dim int, seed int64) (x, y *matrix.Dense) {
	rng := rand.New(rand.NewSource(seed))
	x = matrix.NewDense(n, dim)
	y = matrix.NewDense(n, dim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	for v := 0; v < n; v++ {
		y.ScaleRow(v, 1/float64(v+1))
	}
	return x, y
}

// exactTopK is the brute-force reference.
func exactTopK(q []float64, y *matrix.Dense, k int) []int32 {
	type sc struct {
		v int32
		s float64
	}
	all := make([]sc, y.Rows)
	for v := 0; v < y.Rows; v++ {
		all[v] = sc{int32(v), matrix.Dot(q, y.Row(v))}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].v < all[j].v
	})
	out := make([]int32, k)
	for i := range out {
		out[i] = all[i].v
	}
	return out
}

// TestSearchRecall pins the accuracy contract at the ann layer: beam
// search with the default parameters recovers at least 95% of the exact
// top 10 while scoring a strict subset of the rows.
func TestSearchRecall(t *testing.T) {
	const n, dim, k, queries = 2000, 16, 10, 60
	x, y := fixture(n, dim, 1)
	ix := Build(y, Config{}, par.New(2))

	hits, total, maxScanned := 0, 0, 0
	for qi := 0; qi < queries; qi++ {
		q := x.Row(qi)
		want := exactTopK(q, y, k)
		got, scanned := ix.TopCandidates(func(v int32) float64 { return matrix.Dot(q, y.Row(int(v))) }, 0)
		if scanned > maxScanned {
			maxScanned = scanned
		}
		in := make(map[int32]bool, k)
		for _, c := range got[:k] {
			in[c.Node] = true
		}
		for _, v := range want {
			if in[v] {
				hits++
			}
			total++
		}
	}
	recall := float64(hits) / float64(total)
	t.Logf("recall@%d = %.4f, max scanned %d of %d", k, recall, maxScanned, n)
	if recall < 0.95 {
		t.Fatalf("recall@%d = %.4f < 0.95", k, recall)
	}
	if maxScanned >= n {
		t.Fatalf("search scanned %d >= n=%d: not sublinear", maxScanned, n)
	}
}

// TestBuildDeterminism pins the thread-count independence contract:
// builds with the same config encode to identical bytes for every pool
// size, and a different seed produces a different graph.
func TestBuildDeterminism(t *testing.T) {
	_, y := fixture(900, 12, 2)
	encode := func(pool *par.Pool, seed uint64) []byte {
		ix := Build(y, Config{M: 8, EfConstruction: 60, Seed: seed}, pool)
		var buf bytes.Buffer
		if err := ix.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := encode(nil, 7)
	for _, workers := range []int{1, 3, 8} {
		if got := encode(par.New(workers), 7); !bytes.Equal(got, ref) {
			t.Fatalf("%d-worker build encodes differently (%d vs %d bytes)", workers, len(got), len(ref))
		}
	}
	if bytes.Equal(encode(nil, 8), ref) {
		t.Fatal("different seeds encoded identically")
	}
}

// TestEncodeDecodeRoundTrip checks a decoded graph answers exactly like
// the original and re-encodes to the same bytes.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	x, y := fixture(600, 10, 3)
	ix := Build(y, Config{M: 6, EfConstruction: 50, EfSearch: 40, Seed: 11}, nil)
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(buf.Bytes(), y)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Config() != ix.Config() {
		t.Fatalf("decoded config %+v, want %+v", dec.Config(), ix.Config())
	}
	for qi := 0; qi < 20; qi++ {
		q := x.Row(qi)
		score := func(v int32) float64 { return matrix.Dot(q, y.Row(int(v))) }
		want, _ := ix.TopCandidates(score, 0)
		got, _ := dec.TopCandidates(score, 0)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d rank %d: %+v want %+v", qi, i, got[i], want[i])
			}
		}
	}
	var again bytes.Buffer
	if err := dec.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), buf.Bytes()) {
		t.Fatal("re-encode differs from original encode")
	}
}

// TestDecodeRejectsCorruption fuzzes the structural validation: header
// and adjacency mutations must produce errors, never panics or silently
// broken graphs.
func TestDecodeRejectsCorruption(t *testing.T) {
	_, y := fixture(300, 8, 4)
	ix := Build(y, Config{M: 4, EfConstruction: 30, Seed: 5}, nil)
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()

	mutate := func(off int, b byte) []byte {
		c := append([]byte(nil), base...)
		c[off] ^= b
		return c
	}
	// Node 0's first layer-0 slot is guaranteed live (node 1 back-links to
	// it during the first insert); setting its high byte pushes the id far
	// past n.
	liveNbr := encodeHeaderLen + 300*4 + int(ix.cntOff[300])*4
	cases := map[string][]byte{
		"config M":      mutate(0, 0xff),
		"node count":    mutate(4*8, 0x01),
		"entry point":   mutate(5*8, 0x40),
		"max level":     mutate(6*8, 0x07),
		"a level":       mutate(encodeHeaderLen+17*4, 0x13),
		"a count":       mutate(encodeHeaderLen+300*4+9*4, 0x7f),
		"a neighbor id": mutate(liveNbr+3, 0x7f),
		"truncated":     base[:len(base)-10],
		"extended":      append(append([]byte(nil), base...), 0, 0, 0, 0),
	}
	for name, data := range cases {
		if _, err := Decode(data, y); err == nil {
			t.Errorf("%s corruption accepted", name)
		}
	}
	// Decoding against a different-sized embedding is also rejected.
	if _, err := Decode(base, matrix.NewDense(299, 8)); err == nil {
		t.Error("row-count mismatch accepted")
	}
	// The untouched payload still decodes.
	if _, err := Decode(base, y); err != nil {
		t.Fatalf("pristine payload rejected: %v", err)
	}
}

// TestEmptyAndTinyGraphs covers the degenerate sizes.
func TestEmptyAndTinyGraphs(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5} {
		x, y := fixture(n, 4, int64(10+n))
		ix := Build(y, Config{M: 4, EfConstruction: 8}, nil)
		var buf bytes.Buffer
		if err := ix.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(buf.Bytes(), y)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n == 0 {
			if got, _ := dec.TopCandidates(func(int32) float64 { return 0 }, 4); len(got) != 0 {
				t.Fatalf("empty graph returned %d results", len(got))
			}
			continue
		}
		q := x.Row(0)
		got, _ := dec.TopCandidates(func(v int32) float64 { return matrix.Dot(q, y.Row(int(v))) }, n)
		if len(got) != n {
			t.Fatalf("n=%d: beam of %d returned %d results", n, n, len(got))
		}
	}
}

// TestSearchSeeded pins the seeded-beam contract: an empty seed list
// answers exactly like Search, pre-seeding a narrow beam with the
// top-norm rows never lowers its recall (it raises the admission bar
// before the walk starts), and malformed seed lists — duplicates,
// out-of-range ids — are tolerated rather than corrupting the beam.
func TestSearchSeeded(t *testing.T) {
	const n, dim, k, ef = 2000, 16, 10, 12
	x, y := fixture(n, dim, 4)
	ix := Build(y, Config{M: 8, EfConstruction: 60, Seed: 5}, par.New(2))

	// The fixture scales row v by (v+1)^-1, so ids 0..63 are exactly the
	// top-norm seed pool a caller would derive.
	seeds := make([]int32, 64)
	for i := range seeds {
		seeds[i] = int32(i)
	}

	scoreFor := func(q []float64) func(int32) float64 {
		return func(v int32) float64 { return matrix.Dot(q, y.Row(int(v))) }
	}

	for qi := 0; qi < 20; qi++ {
		score := scoreFor(x.Row(qi))
		plain, _ := ix.TopCandidates(score, ef)
		seeded, _ := ix.TopCandidatesSeeded(score, ef, nil)
		if len(plain) != len(seeded) {
			t.Fatalf("query %d: empty seed list changed result length %d != %d", qi, len(seeded), len(plain))
		}
		for i := range plain {
			if plain[i] != seeded[i] {
				t.Fatalf("query %d rank %d: empty seed list changed result %+v != %+v", qi, i, seeded[i], plain[i])
			}
		}
	}

	recall := func(seeds []int32) float64 {
		hits, total := 0, 0
		for qi := 0; qi < 60; qi++ {
			q := x.Row(qi)
			want := exactTopK(q, y, k)
			got, scanned := ix.TopCandidatesSeeded(scoreFor(q), ef, seeds)
			if scanned >= n {
				t.Fatalf("seeded search scanned %d >= n=%d: not sublinear", scanned, n)
			}
			in := make(map[int32]bool, k)
			for _, c := range got[:k] {
				in[c.Node] = true
			}
			for _, v := range want {
				if in[v] {
					hits++
				}
				total++
			}
		}
		return float64(hits) / float64(total)
	}
	base, boosted := recall(nil), recall(seeds)
	t.Logf("recall@%d at ef=%d: unseeded %.4f, seeded %.4f", k, ef, base, boosted)
	if boosted < base {
		t.Fatalf("seeding lowered recall: %.4f < %.4f", boosted, base)
	}

	// Junk seeds: duplicates and out-of-range ids must be ignored.
	junk := []int32{-5, 3, 3, int32(n), int32(n + 100), 3, 0, 0}
	got, _ := ix.TopCandidatesSeeded(scoreFor(x.Row(0)), ef, junk)
	if len(got) == 0 {
		t.Fatal("junk seed list produced no results")
	}
	seen := make(map[int32]bool, len(got))
	for i, c := range got {
		if c.Node < 0 || c.Node >= int32(n) {
			t.Fatalf("rank %d: out-of-range node %d in results", i, c.Node)
		}
		if seen[c.Node] {
			t.Fatalf("rank %d: duplicate node %d in results", i, c.Node)
		}
		seen[c.Node] = true
		if i > 0 && got[i-1].Score < c.Score {
			t.Fatalf("rank %d: results out of order (%.6f < %.6f)", i, got[i-1].Score, c.Score)
		}
	}
}
