// Package ann implements the HNSW (Hierarchical Navigable Small World)
// graph index behind the sublinear top-k serving backend: a layered
// proximity graph over the backward embedding rows whose greedy descent
// answers maximum-inner-product queries by visiting O(ef·M) candidates
// instead of scanning all n rows.
//
// Ordering is by inner product directly (higher is better) — the same
// asymmetric MIPS setting as the scan backends: the graph is built over
// the database rows Y, and a query scores X_u against them. Inner
// product is not a metric, but the navigable-graph construction only
// needs a consistent total order per query, and NRP's heavy-tailed norm
// profile makes the high-norm rows natural hubs that greedy descent
// finds quickly.
//
// Determinism contract (matching internal/par): a build with a fixed
// Config is bit-identical for every thread count. Node levels come from
// a per-node splitmix64 stream (independent of insertion order), and the
// build inserts nodes in batches — each batch searches the graph frozen
// at the batch boundary in parallel, then commits its links serially in
// ascending node order. Snapshots of the same build are therefore
// byte-identical, which the index snapshot tests pin.
package ann

import (
	"math"
	"slices"

	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/par"
)

// Tunables and their defaults. M is the out-degree budget per node at
// layers ≥ 1 (layer 0 keeps 2M); EfConstruction is the candidate-beam
// width while building; EfSearch the default beam width while querying.
const (
	DefaultM              = 16
	DefaultEfConstruction = 200
	DefaultEfSearch       = 96

	// maxLevelCap bounds the level geometric draw; with mL = 1/ln(M) a
	// level this high has probability ~M^-32 — hitting the cap means a
	// corrupt snapshot, not luck.
	maxLevelCap = 32

	// maxBatch caps the insert batch size: nodes inside one batch search
	// the graph frozen at the batch start, so the cap bounds how much of
	// the neighborhood structure an insert can miss (≤1% at n=100k).
	maxBatch = 1024
)

// Config fixes an HNSW build. The zero value selects every default.
type Config struct {
	// M is the maximum out-degree at layers ≥ 1; layer 0 allows 2M.
	M int
	// EfConstruction is the beam width of build-time neighbor searches.
	EfConstruction int
	// EfSearch is the default beam width of queries; Search clamps its
	// beam to at least this many candidates. Raising it buys recall with
	// proportionally more distance evaluations.
	EfSearch int
	// Seed feeds the per-node splitmix64 level streams.
	Seed uint64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.M <= 0 {
		c.M = DefaultM
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = DefaultEfConstruction
	}
	if c.EfSearch <= 0 {
		c.EfSearch = DefaultEfSearch
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Index is the built graph. Immutable after Build/Load and safe for
// concurrent searches; the embedding matrix it references must not be
// mutated while queries run.
type Index struct {
	cfg Config
	y   *matrix.Dense // candidate rows, not owned

	levels []int32 // per-node top layer
	// Flat adjacency. Node v's block spans nbrs[nbrOff[v]:nbrOff[v+1]]:
	// first 2M entries are layer 0, then levels[v] groups of M for layers
	// 1..levels[v]. cnts[cntOff[v]+l] holds v's live neighbor count at
	// layer l.
	nbrOff []int64
	cntOff []int64
	nbrs   []int32
	cnts   []int32

	entry    int32 // highest-level node, the search entry point; -1 when empty
	maxLevel int32

	ws wsPool
}

// Config reports the build configuration (defaults resolved).
func (ix *Index) Config() Config { return ix.cfg }

// N reports the number of indexed rows.
func (ix *Index) N() int { return len(ix.levels) }

// scored pairs a node with its query score. Ordering is by decreasing
// score, ties broken by ascending node id — the same total order the
// exact backends sort results with, so equal-score frontiers are
// deterministic.
type scored struct {
	node  int32
	score float64
}

// better reports whether a outranks b.
func better(a, b scored) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.node < b.node
}

// compareScored is better as a three-way comparison for slices.SortFunc
// (whose generic pdqsort avoids sort.Slice's reflection-based swapper —
// the sort is on every query's exit path).
func compareScored(a, b scored) int {
	if better(a, b) {
		return -1
	}
	if better(b, a) {
		return 1
	}
	return 0
}

// levelFor draws node v's level from its own splitmix64 stream, so the
// assignment depends only on (seed, v) — never on insertion or thread
// order.
func levelFor(seed uint64, v int, mL float64) int32 {
	r := newSplitmix64(mix64(seed, uint64(v)))
	u := r.float64()
	// u ∈ [0,1); flip to (0,1] so the log is finite.
	l := int32(-math.Log(1-u) * mL)
	if l > maxLevelCap {
		l = maxLevelCap
	}
	return l
}

// layerSpan locates node v's neighbor slot range at layer l.
func (ix *Index) layerSpan(v int32, l int32) (start int64, capacity int32) {
	m := int64(ix.cfg.M)
	base := ix.nbrOff[v]
	if l == 0 {
		return base, int32(2 * m)
	}
	return base + 2*m + int64(l-1)*m, int32(m)
}

// neighbors returns v's live neighbor list at layer l, aliasing storage.
func (ix *Index) neighbors(v, l int32) []int32 {
	start, _ := ix.layerSpan(v, l)
	cnt := ix.cnts[ix.cntOff[v]+int64(l)]
	return ix.nbrs[start : start+int64(cnt)]
}

// Build constructs the graph over the rows of y. The pool bounds build
// parallelism (nil = serial); the result is bit-identical for every pool
// size. Build time is O(n · efConstruction · M) distance evaluations.
func Build(y *matrix.Dense, cfg Config, pool *par.Pool) *Index {
	cfg = cfg.withDefaults()
	n := y.Rows
	ix := &Index{cfg: cfg, y: y, entry: -1, maxLevel: 0}
	ix.levels = make([]int32, n)
	ix.nbrOff = make([]int64, n+1)
	ix.cntOff = make([]int64, n+1)
	if n == 0 {
		return ix
	}

	mL := 1 / math.Log(float64(cfg.M))
	for v := 0; v < n; v++ {
		ix.levels[v] = levelFor(cfg.Seed, v, mL)
		ix.nbrOff[v+1] = ix.nbrOff[v] + int64(2*cfg.M) + int64(ix.levels[v])*int64(cfg.M)
		ix.cntOff[v+1] = ix.cntOff[v] + int64(ix.levels[v]) + 1
	}
	ix.nbrs = make([]int32, ix.nbrOff[n])
	ix.cnts = make([]int32, ix.cntOff[n])

	// Node 0 seeds the graph: no search, it just becomes the entry.
	ix.entry = 0
	ix.maxLevel = ix.levels[0]

	// plans[i] holds the selected links for batch node i, one slice per
	// layer 0..min(level, frozen maxLevel).
	type plan struct{ selected [][]scored }
	for done := 1; done < n; {
		end := done * 2
		if end > done+maxBatch {
			end = done + maxBatch
		}
		if end > n {
			end = n
		}
		batch := end - done
		plans := make([]plan, batch)
		// Frozen state for the whole batch: searches only ever reach
		// committed nodes (< done), so parallel reads race with nothing.
		entry, maxLevel := ix.entry, ix.maxLevel
		pool.For(batch, func(_, lo, hi int) {
			ws := newWorkspace(n)
			for i := lo; i < hi; i++ {
				v := int32(done + i)
				q := y.Row(int(v))
				score := func(u int32) float64 { return matrix.Dot(q, y.Row(int(u))) }
				lv := ix.levels[v]
				ep := scored{node: entry, score: score(entry)}
				for l := maxLevel; l > lv; l-- {
					ep = ix.greedyStep(score, ep, l)
				}
				top := lv
				if top > maxLevel {
					top = maxLevel
				}
				plans[i].selected = make([][]scored, top+1)
				for l := top; l >= 0; l-- {
					cands := ix.searchLayer(score, ep, cfg.EfConstruction, l, ws, nil)
					plans[i].selected[l] = ix.selectNeighbors(cands, cfg.M)
					if len(cands) > 0 {
						ep = cands[0]
					}
				}
			}
		})
		// Serial commit in ascending node order keeps the result
		// independent of the parallel schedule above.
		for i := 0; i < batch; i++ {
			v := int32(done + i)
			for l := int32(0); l < int32(len(plans[i].selected)); l++ {
				for _, nb := range plans[i].selected[l] {
					ix.addLink(v, nb.node, l)
					ix.addLink(nb.node, v, l)
				}
			}
			if ix.levels[v] > ix.maxLevel {
				ix.maxLevel = ix.levels[v]
				ix.entry = v
			}
		}
		done = end
	}
	return ix
}

// addLink appends u to v's layer-l list, re-selecting the list with the
// diversity heuristic when it overflows its capacity.
func (ix *Index) addLink(v, u, l int32) {
	start, capacity := ix.layerSpan(v, l)
	ci := ix.cntOff[v] + int64(l)
	cnt := ix.cnts[ci]
	if cnt < capacity {
		ix.nbrs[start+int64(cnt)] = u
		ix.cnts[ci] = cnt + 1
		return
	}
	// Overflow: score current list + u against v and keep the best
	// diverse subset (the new link may lose).
	q := ix.y.Row(int(v))
	cands := make([]scored, 0, cnt+1)
	for _, w := range ix.nbrs[start : start+int64(cnt)] {
		cands = append(cands, scored{node: w, score: matrix.Dot(q, ix.y.Row(int(w)))})
	}
	cands = append(cands, scored{node: u, score: matrix.Dot(q, ix.y.Row(int(u)))})
	slices.SortFunc(cands, compareScored)
	kept := ix.selectNeighbors(cands, int(capacity))
	for i, nb := range kept {
		ix.nbrs[start+int64(i)] = nb.node
	}
	ix.cnts[ci] = int32(len(kept))
}

// selectNeighbors is the diversity heuristic (Malkov & Yashunin, Alg. 4)
// in inner-product form: walk the candidates best-first and keep c only
// if no already-kept r is closer to it than the query is — i.e.
// ⟨Y_c, Y_r⟩ ≤ ⟨q, Y_c⟩ for all kept r. cands must be sorted best-first.
func (ix *Index) selectNeighbors(cands []scored, m int) []scored {
	kept := make([]scored, 0, m)
	for _, c := range cands {
		if len(kept) == m {
			break
		}
		cv := ix.y.Row(int(c.node))
		ok := true
		for _, r := range kept {
			if matrix.Dot(cv, ix.y.Row(int(r.node))) > c.score {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, c)
		}
	}
	return kept
}

// greedyStep walks layer l greedily from ep until no neighbor improves
// the score (the ef=1 descent used above the target layer).
func (ix *Index) greedyStep(score func(int32) float64, ep scored, l int32) scored {
	for {
		improved := false
		for _, u := range ix.neighbors(ep.node, l) {
			if c := (scored{node: u, score: score(u)}); better(c, ep) {
				ep = c
				improved = true
			}
		}
		if !improved {
			return ep
		}
	}
}

// searchLayer is the beam search at one layer: expand the best frontier
// candidate, admit neighbors that beat the worst of the current ef best.
// Returns the results sorted best-first. When scanned is non-nil it
// accumulates the number of score evaluations.
func (ix *Index) searchLayer(score func(int32) float64, ep scored, ef int, l int32, ws *workspace, scanned *int) []scored {
	ws.reset()
	ws.visit(ep.node)
	ws.cand.push(ep)
	ws.res.push(ep, ef)
	evals := ix.runBeam(score, ef, l, ws)
	if scanned != nil {
		*scanned += evals
	}
	return ws.res.drainSorted()
}

// runBeam drains the frontier heap until no pending candidate can beat
// the worst of the current ef best. Each expansion gathers the popped
// node's unvisited neighbors first and scores them in a tight loop —
// the (random) row loads of one expansion are independent, so batching
// them lets the memory pipeline overlap the misses instead of
// serializing each behind the previous neighbor's heap update. Scoring
// order and the sequential admission order match the classic
// interleaved loop exactly, so results and eval counts are unchanged.
func (ix *Index) runBeam(score func(int32) float64, ef int, l int32, ws *workspace) (evals int) {
	for ws.cand.len() > 0 {
		c := ws.cand.pop()
		if ws.res.len() == ef && better(ws.res.min(), c) {
			break
		}
		nbrs := ix.neighbors(c.node, l)
		ws.stage(len(nbrs))
		batch := ws.batch[:0]
		for _, u := range nbrs {
			if !ws.visited(u) {
				ws.visit(u)
				batch = append(batch, u)
			}
		}
		scores := ws.scores[:len(batch)]
		for i, u := range batch {
			scores[i] = score(u)
		}
		evals += len(batch)
		for i, u := range batch {
			s := scored{node: u, score: scores[i]}
			if ws.res.len() < ef || better(s, ws.res.min()) {
				ws.cand.push(s)
				ws.res.push(s, ef)
			}
		}
	}
	return evals
}

// Search runs a query: greedy descent from the entry point to layer 1,
// then a beam of width ef at layer 0. score must order candidates by
// (approximate) inner product with the query; Search returns the top
// min(ef, reachable) nodes best-first plus the number of score
// evaluations. ef ≤ 0 selects the build's EfSearch.
//
// Callers filtering results (self-exclusion, reranking) should ask for a
// beam at least as wide as the shortlist they need.
func (ix *Index) Search(score func(int32) float64, ef int) (results []scored, scanned int) {
	if ix.entry < 0 {
		return nil, 0
	}
	if ef <= 0 {
		ef = ix.cfg.EfSearch
	}
	ws := ix.ws.get(ix.N())
	defer ix.ws.put(ws)
	ep := scored{node: ix.entry, score: score(ix.entry)}
	scanned = 1
	for l := ix.maxLevel; l > 0; l-- {
		prev := ep
		ep = ix.greedyDescentCounted(score, prev, l, &scanned)
	}
	results = ix.searchLayer(score, ep, ef, 0, ws, &scanned)
	return results, scanned
}

// SearchSeeded runs a layer-0 beam whose result heap starts from the
// given seed rows instead of a hierarchical descent from the entry
// point. Seeds are scored up front (out-of-range and duplicate ids are
// skipped), which fills the result heap immediately and raises the
// admission threshold before any graph edge is followed — the beam then
// only expands where the graph can actually improve on the seeds. With
// NRP's heavy-tailed norm profile, seeding with the top-norm rows
// covers the hub mass every query shares and leaves the (much cheaper)
// beam to recover the query-specific tail; the upper layers, whose job
// the seeds do, are skipped entirely. An empty seed list falls back to
// Search.
func (ix *Index) SearchSeeded(score func(int32) float64, ef int, seeds []int32) (results []scored, scanned int) {
	if len(seeds) == 0 {
		return ix.Search(score, ef)
	}
	if ix.entry < 0 {
		return nil, 0
	}
	if ef <= 0 {
		ef = ix.cfg.EfSearch
	}
	n := int32(ix.N())
	ws := ix.ws.get(ix.N())
	defer ix.ws.put(ws)
	ws.reset()
	ws.stage(len(seeds))
	batch := ws.batch[:0]
	for _, s := range seeds {
		if s < 0 || s >= n || ws.visited(s) {
			continue
		}
		ws.visit(s)
		batch = append(batch, s)
	}
	scores := ws.scores[:len(batch)]
	for i, u := range batch {
		scores[i] = score(u)
	}
	scanned = len(batch)
	for i, u := range batch {
		sc := scored{node: u, score: scores[i]}
		// Same admission rule as the beam itself: a seed that cannot enter
		// the current ef best would be popped straight into the beam's
		// termination test, so queueing it as a frontier candidate is pure
		// heap traffic. Its own score was already counted above.
		if ws.res.len() < ef || better(sc, ws.res.min()) {
			ws.cand.push(sc)
			ws.res.push(sc, ef)
		}
	}
	scanned += ix.runBeam(score, ef, 0, ws)
	return ws.res.drainSorted(), scanned
}

// SearchScored adapts Search to a public result type.
type Candidate struct {
	Node  int32
	Score float64
}

// TopCandidates runs Search and copies the results into the exported
// Candidate type (best-first).
func (ix *Index) TopCandidates(score func(int32) float64, ef int) ([]Candidate, int) {
	res, scanned := ix.Search(score, ef)
	out := make([]Candidate, len(res))
	for i, s := range res {
		out[i] = Candidate{Node: s.node, Score: s.score}
	}
	return out, scanned
}

// TopCandidatesSeeded is TopCandidates over SearchSeeded.
func (ix *Index) TopCandidatesSeeded(score func(int32) float64, ef int, seeds []int32) ([]Candidate, int) {
	res, scanned := ix.SearchSeeded(score, ef, seeds)
	out := make([]Candidate, len(res))
	for i, s := range res {
		out[i] = Candidate{Node: s.node, Score: s.score}
	}
	return out, scanned
}

// greedyDescentCounted is greedyStep with evaluation accounting.
func (ix *Index) greedyDescentCounted(score func(int32) float64, ep scored, l int32, scanned *int) scored {
	for {
		improved := false
		for _, u := range ix.neighbors(ep.node, l) {
			*scanned++
			if c := (scored{node: u, score: score(u)}); better(c, ep) {
				ep = c
				improved = true
			}
		}
		if !improved {
			return ep
		}
	}
}
