package ann

// splitmix64 is the level-assignment RNG: a counter-based generator
// (Steele et al., "Fast splittable pseudorandom number generators")
// whose state is one uint64. Each node gets its own stream seeded by
// mixing the index seed with the node id, so level draws depend only on
// (seed, node) — never on insertion order or thread count. Same idiom
// as internal/fora's walk RNG.
type splitmix64 struct{ s uint64 }

func newSplitmix64(seed uint64) splitmix64 { return splitmix64{s: seed} }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *splitmix64) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// mix64 hashes a seed/stream-index pair into an independent stream seed
// (finalizer of splitmix64, applied to the XOR of the inputs).
func mix64(a, b uint64) uint64 {
	z := a ^ (b * 0xff51afd7ed558ccd)
	z ^= z >> 33
	z *= 0xc4ceb9fe1a85ec53
	z ^= z >> 33
	return z
}
