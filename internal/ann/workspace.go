package ann

import (
	"slices"
	"sync"
)

// workspace holds one search's scratch state: an epoch-stamped visited
// set (O(1) reset, no per-query allocation) plus the frontier max-heap
// and the bounded best-ef result heap. Workspaces are pooled across
// queries; each is used by one goroutine at a time.
type workspace struct {
	stamp []uint32
	epoch uint32
	cand  maxHeap
	res   boundedMinHeap
	// batch/scores stage one expansion's unvisited neighbors so they can
	// be scored in a tight loop (their independent row loads overlap in
	// the memory pipeline) before any heap updates.
	batch  []int32
	scores []float64
}

func newWorkspace(n int) *workspace {
	return &workspace{stamp: make([]uint32, n)}
}

// reset clears the visited set and both heaps. Epoch wraparound (one in
// 2^32 resets) falls back to zeroing the stamps.
func (ws *workspace) reset() {
	ws.epoch++
	if ws.epoch == 0 {
		for i := range ws.stamp {
			ws.stamp[i] = 0
		}
		ws.epoch = 1
	}
	ws.cand.a = ws.cand.a[:0]
	ws.res.a = ws.res.a[:0]
}

func (ws *workspace) visit(v int32)        { ws.stamp[v] = ws.epoch }
func (ws *workspace) visited(v int32) bool { return ws.stamp[v] == ws.epoch }

// stage ensures the batch/scores buffers can hold n entries.
func (ws *workspace) stage(n int) {
	if cap(ws.batch) < n {
		ws.batch = make([]int32, n)
		ws.scores = make([]float64, n)
	}
}

// wsPool recycles workspaces across concurrent queries.
type wsPool struct{ p sync.Pool }

func (wp *wsPool) get(n int) *workspace {
	if v := wp.p.Get(); v != nil {
		ws := v.(*workspace)
		if len(ws.stamp) >= n {
			return ws
		}
	}
	return newWorkspace(n)
}

func (wp *wsPool) put(ws *workspace) { wp.p.Put(ws) }

// maxHeap is the search frontier: pop returns the best (highest-score,
// then lowest-id) pending candidate.
type maxHeap struct{ a []scored }

func (h *maxHeap) len() int { return len(h.a) }

func (h *maxHeap) push(s scored) {
	h.a = append(h.a, s)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !better(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *maxHeap) pop() scored {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && better(h.a[l], h.a[best]) {
			best = l
		}
		if r < last && better(h.a[r], h.a[best]) {
			best = r
		}
		if best == i {
			break
		}
		h.a[i], h.a[best] = h.a[best], h.a[i]
		i = best
	}
	return top
}

// boundedMinHeap keeps the best ef candidates seen so far; its root is
// the weakest of them, so admission tests are O(1).
type boundedMinHeap struct{ a []scored }

func (h *boundedMinHeap) len() int    { return len(h.a) }
func (h *boundedMinHeap) min() scored { return h.a[0] }

// push inserts s, evicting the current weakest when the heap already
// holds ef elements (s must beat it — callers check via min()).
func (h *boundedMinHeap) push(s scored, ef int) {
	if len(h.a) < ef {
		h.a = append(h.a, s)
		i := len(h.a) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !better(h.a[p], h.a[i]) {
				break
			}
			h.a[i], h.a[p] = h.a[p], h.a[i]
			i = p
		}
		return
	}
	if !better(s, h.a[0]) {
		return
	}
	h.a[0] = s
	i, n := 0, len(h.a)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && better(h.a[worst], h.a[l]) {
			worst = l
		}
		if r < n && better(h.a[worst], h.a[r]) {
			worst = r
		}
		if worst == i {
			break
		}
		h.a[i], h.a[worst] = h.a[worst], h.a[i]
		i = worst
	}
}

// drainSorted returns the kept candidates best-first in a fresh slice
// (the workspace may be recycled immediately after).
func (h *boundedMinHeap) drainSorted() []scored {
	out := make([]scored, len(h.a))
	copy(out, h.a)
	h.a = h.a[:0]
	slices.SortFunc(out, compareScored)
	return out
}
