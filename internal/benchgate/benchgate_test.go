package benchgate

import (
	"strings"
	"testing"
)

const topkRecord = `{"benchmarks":[
  {"name":"TopKExact","backend":"exact","n":100000,"dim":64,"k":10,"ns_per_op":5000000,"qps":200},
  {"name":"TopKQuantized","backend":"quantized","n":100000,"dim":64,"k":10,"ns_per_op":800000,"qps":1250}
]}`

const topkHNSWRecord = `{"benchmarks":[
  {"name":"TopKExact","backend":"exact","n":100000,"dim":64,"k":10,"ns_per_op":5000000,"qps":200},
  {"name":"TopKQuantized","backend":"quantized","n":100000,"dim":64,"k":10,"ns_per_op":800000,"qps":1250},
  {"name":"TopKHNSW","backend":"hnsw","n":100000,"dim":64,"k":10,"ns_per_op":9000,"qps":111111}
],"hnsw":{"recall_at_10":0.97,"speedup_vs_pruned":12.5,"m":16,"ef_construction":200,
  "ef_search":24,"rerank":3,"quantized":true,"build_ms":54000}}`

const buildRecord = `{"n":100000,"m":500000,"dim":32,"threads":8,
  "serial_ms":9000,"parallel_ms":1800,"speedup":5.0,
  "auc_serial":0.972,"auc_parallel":0.972,
  "fora_ms":900,"fora_speedup":2.0,"auc_fora":0.968}`

// buildRecordNoFora is a pre-FORA-estimator record: the fora_* metrics
// are absent, so Extract must omit them instead of emitting zeros that
// would trip the stale-baseline check.
const buildRecordNoFora = `{"n":100000,"m":500000,"dim":32,"threads":8,
  "serial_ms":9000,"parallel_ms":1800,"speedup":5.0,
  "auc_serial":0.972,"auc_parallel":0.972}`

const ingestRecord = `{"n":200000,"m":800000,"threads":8,
  "serial_parse_ms":400,"parallel_parse_ms":90,"heap_load_ms":30,"mmap_load_ms":2,
  "parallel_speedup":4.4,"mmap_vs_text_speedup":200}`

const pprRecord = `{"n":100000,"m":500000,"queries":8,"seeds_per_query":4,"k":10,
  "epsilon":0.5,"delta":0.0001,"power_iters":100,"walks_per_node":16,
  "fora_ms":40,"fora_plus_ms":28,"power_ms":900,
  "speedup_vs_power":22.5,"index_speedup":1.43,"max_rel_err":0.11}`

const serveRecord = `{"n":100000,"dim":64,"k":10,"concurrency":16,"zipf_s":1.5,
  "phase_sec":2,"direct_qps":900,"coalesced_qps":1800,"coalesce_speedup":2.0,
  "mixed_qps":1500,"errors_5xx":0,
  "endpoints":{
    "topk":{"requests":2400,"p50_us":800,"p90_us":2000,"p99_us":5000},
    "score":{"requests":600,"p50_us":120,"p90_us":300,"p99_us":700}}}`

func TestExtractSchemas(t *testing.T) {
	cases := map[string]struct {
		data    string
		metrics int
	}{
		"BENCH_topk.json":   {topkRecord, 2},
		"BENCH_build.json":  {buildRecord, 8},
		"BENCH_ingest.json": {ingestRecord, 6},
		"BENCH_ppr.json":    {pprRecord, 6},
		"BENCH_serve.json":  {serveRecord, 8},
	}
	for file, tc := range cases {
		ms, err := Extract(file, []byte(tc.data))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if len(ms) != tc.metrics {
			t.Fatalf("%s: %d metrics, want %d", file, len(ms), tc.metrics)
		}
		for _, m := range ms {
			if m.File != file || m.Name == "" {
				t.Fatalf("%s: malformed metric %+v", file, m)
			}
		}
	}
	if _, err := Extract("BENCH_mystery.json", []byte("{}")); err == nil {
		t.Fatal("unknown record accepted")
	}
	if _, err := Extract("BENCH_topk.json", []byte(`{"benchmarks":[]}`)); err == nil {
		t.Fatal("empty topk record accepted")
	}
	if !Known("BENCH_dynamic.json") || Known("notes.json") {
		t.Fatal("Known misclassifies record names")
	}
}

// TestBuildRecordForaOptional checks both directions of schema drift: a
// pre-FORA baseline still extracts its 5 metrics and compares cleanly
// against a FORA-bearing current record (current-only metrics are
// ignored), and a fora_speedup collapse in a FORA-bearing pair fails.
func TestBuildRecordForaOptional(t *testing.T) {
	old, err := Extract("BENCH_build.json", []byte(buildRecordNoFora))
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 5 {
		t.Fatalf("pre-fora record extracts %d metrics, want 5", len(old))
	}
	cur, err := Extract("BENCH_build.json", []byte(buildRecord))
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := Compare(old, cur, 0.25, true)
	if err != nil {
		t.Fatalf("old baseline vs fora-bearing record: %v", err)
	}
	if n := Regressions(deltas); n != 0 {
		t.Fatalf("%d regressions from identical push metrics", n)
	}

	injected := strings.Replace(buildRecord, `"fora_speedup":2.0`, `"fora_speedup":1.0`, 1)
	curBad, err := Extract("BENCH_build.json", []byte(injected))
	if err != nil {
		t.Fatal(err)
	}
	deltas, err = Compare(cur, curBad, 0.25, true)
	if err != nil {
		t.Fatal(err)
	}
	if n := Regressions(deltas); n != 1 {
		t.Fatalf("%d regressions, want the fora_speedup collapse alone", n)
	}
	if deltas[0].Metric.Name != "fora_speedup" {
		t.Fatalf("flagged %q, want fora_speedup", deltas[0].Metric.Name)
	}
}

// TestCompareInjectedRegression is the gate's own acceptance test: a
// synthetic 40% throughput collapse must fail the gate, and the same
// numbers within tolerance must pass.
func TestCompareInjectedRegression(t *testing.T) {
	base, err := Extract("BENCH_topk.json", []byte(topkRecord))
	if err != nil {
		t.Fatal(err)
	}
	// Identical run: clean.
	deltas, err := Compare(base, base, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if n := Regressions(deltas); n != 0 {
		t.Fatalf("identical records produced %d regressions", n)
	}

	// Inject: quantized throughput drops 1250 → 700 qps (-44%).
	injected := strings.Replace(topkRecord, `"qps":1250`, `"qps":700`, 1)
	cur, err := Extract("BENCH_topk.json", []byte(injected))
	if err != nil {
		t.Fatal(err)
	}
	deltas, err = Compare(base, cur, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if n := Regressions(deltas); n != 1 {
		t.Fatalf("injected -44%% regression produced %d failures, want 1", n)
	}
	if !deltas[0].Regressed || deltas[0].Metric.Name != "qps/TopKQuantized" {
		t.Fatalf("worst delta %+v, want the injected quantized regression first", deltas[0])
	}
	// A generous tolerance forgives it.
	deltas, err = Compare(base, cur, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if n := Regressions(deltas); n != 0 {
		t.Fatalf("50%% tolerance still reports %d regressions", n)
	}
}

// TestCompareServeRecord covers the HTTP serving-load gate. The
// acceptance contract: an injected p99 latency regression beyond
// tolerance must fail the gate; so must a collapsed coalescing speedup;
// and under relativeOnly (CI's cross-host mode) only the speedup gates
// while the host-bound QPS and quantile absolutes are skipped.
func TestCompareServeRecord(t *testing.T) {
	base, err := Extract("BENCH_serve.json", []byte(serveRecord))
	if err != nil {
		t.Fatal(err)
	}

	// Identical run: clean.
	deltas, err := Compare(base, base, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if n := Regressions(deltas); n != 0 {
		t.Fatalf("identical serve records produced %d regressions", n)
	}

	// Inject: topk p99 5000µs → 9000µs (+80%, lower-is-better) fails a
	// local full gate.
	injected := strings.Replace(serveRecord, `"p99_us":5000`, `"p99_us":9000`, 1)
	cur, err := Extract("BENCH_serve.json", []byte(injected))
	if err != nil {
		t.Fatal(err)
	}
	deltas, err = Compare(base, cur, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if n := Regressions(deltas); n != 1 {
		t.Fatalf("injected p99 regression produced %d failures, want 1", n)
	}
	if !deltas[0].Regressed || deltas[0].Metric.Name != "topk_p99_us" {
		t.Fatalf("worst delta %+v, want topk_p99_us", deltas[0])
	}
	// The same record passes CI's relative-only mode: p99 is host-bound.
	deltas, err = Compare(base, cur, 0.25, true)
	if err != nil {
		t.Fatal(err)
	}
	if n := Regressions(deltas); n != 0 {
		t.Fatalf("relative-only mode gated an absolute metric: %d failures", n)
	}

	// A coalescing speedup collapse (2.0 → 0.9) fails even relative-only:
	// the ratio is machine-independent.
	injected = strings.Replace(serveRecord, `"coalesce_speedup":2.0`, `"coalesce_speedup":0.9`, 1)
	cur, err = Extract("BENCH_serve.json", []byte(injected))
	if err != nil {
		t.Fatal(err)
	}
	deltas, err = Compare(base, cur, 0.25, true)
	if err != nil {
		t.Fatal(err)
	}
	if n := Regressions(deltas); n != 1 {
		t.Fatalf("collapsed coalescing speedup produced %d failures, want 1", n)
	}
	// ... but its dedicated tolerance forgives noise down to half: 1.1x
	// against a 2.0x baseline is a 45% drop, inside the 50% band.
	injected = strings.Replace(serveRecord, `"coalesce_speedup":2.0`, `"coalesce_speedup":1.1`, 1)
	cur, err = Extract("BENCH_serve.json", []byte(injected))
	if err != nil {
		t.Fatal(err)
	}
	deltas, err = Compare(base, cur, 0.25, true)
	if err != nil {
		t.Fatal(err)
	}
	if n := Regressions(deltas); n != 0 {
		t.Fatalf("in-tolerance speedup wobble produced %d failures", n)
	}

	// Records without the speedup (e.g. a raw nrpload report) are not
	// gateable and must be rejected loudly.
	if _, err := Extract("BENCH_serve.json", []byte(`{"achieved_qps":100}`)); err == nil {
		t.Fatal("record without coalesce_speedup accepted")
	}
}

// TestCompareHNSWRecord covers the ANN serving gate: the optional "hnsw"
// object contributes two relative metrics — recall@10 at the tight
// quality tolerance (a 2-point drop fails even under a loose global
// tolerance) and the speedup-vs-pruned ratio at the global tolerance —
// and records without the object still extract cleanly.
func TestCompareHNSWRecord(t *testing.T) {
	ms, err := Extract("BENCH_topk.json", []byte(topkHNSWRecord))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("%d metrics, want qps×3 + recall + speedup", len(ms))
	}
	byName := map[string]Metric{}
	for _, m := range ms {
		byName[m.Name] = m
	}
	if m := byName["hnsw_recall_at_10"]; !m.Relative || m.Tolerance != hnswRecallTolerance || m.Value != 0.97 {
		t.Fatalf("recall metric %+v", m)
	}
	if m := byName["hnsw_speedup_vs_pruned"]; !m.Relative || m.Value != 12.5 {
		t.Fatalf("speedup metric %+v", m)
	}

	// recall 0.97 → 0.95 is past the 1% tolerance even when the global
	// throughput tolerance forgives 25%; CI's relative-only mode still
	// gates both.
	injected := strings.Replace(topkHNSWRecord, `"recall_at_10":0.97`, `"recall_at_10":0.95`, 1)
	cur, err := Extract("BENCH_topk.json", []byte(injected))
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := Compare(ms, cur, 0.25, true)
	if err != nil {
		t.Fatal(err)
	}
	if n := Regressions(deltas); n != 1 || deltas[0].Metric.Name != "hnsw_recall_at_10" {
		t.Fatalf("recall drop: %d regressions, worst %+v", n, deltas[0])
	}

	// A speedup collapse past the global tolerance fails too.
	injected = strings.Replace(topkHNSWRecord, `"speedup_vs_pruned":12.5`, `"speedup_vs_pruned":6`, 1)
	cur, err = Extract("BENCH_topk.json", []byte(injected))
	if err != nil {
		t.Fatal(err)
	}
	deltas, err = Compare(ms, cur, 0.25, true)
	if err != nil {
		t.Fatal(err)
	}
	if n := Regressions(deltas); n != 1 || deltas[0].Metric.Name != "hnsw_speedup_vs_pruned" {
		t.Fatalf("speedup collapse: %d regressions, worst %+v", n, deltas[0])
	}

	// An old baseline without the hnsw object compares cleanly against a
	// new record that has it (current-only metrics are ignored).
	base, err := Extract("BENCH_topk.json", []byte(topkRecord))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compare(base, ms, 0.25, true); err != nil {
		t.Fatalf("old baseline vs hnsw-bearing record: %v", err)
	}
}

// TestCompareRelativeOnly mirrors the CI configuration: absolute metrics
// (wall ms) are skipped, relative ones (speedup, AUC) still gate.
func TestCompareRelativeOnly(t *testing.T) {
	base, err := Extract("BENCH_build.json", []byte(buildRecord))
	if err != nil {
		t.Fatal(err)
	}
	// Halve the speedup and double the wall time.
	injected := strings.NewReplacer(
		`"speedup":5.0`, `"speedup":2.0`,
		`"parallel_ms":1800`, `"parallel_ms":4500`,
	).Replace(buildRecord)
	cur, err := Extract("BENCH_build.json", []byte(injected))
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := Compare(base, cur, 0.25, true)
	if err != nil {
		t.Fatal(err)
	}
	if n := Regressions(deltas); n != 1 {
		t.Fatalf("%d regressions, want exactly the speedup collapse", n)
	}
	for _, d := range deltas {
		switch d.Metric.Name {
		case "speedup":
			if !d.Regressed {
				t.Fatal("speedup collapse not flagged")
			}
		case "parallel_ms":
			if !d.Skipped || d.Regressed {
				t.Fatalf("absolute metric delta %+v should be skipped under relative-only", d)
			}
		}
	}
}

// TestCompareAUCTightTolerance checks quality metrics gate at their own
// 2% tolerance even when the global tolerance is loose.
func TestCompareAUCTightTolerance(t *testing.T) {
	base, err := Extract("BENCH_build.json", []byte(buildRecord))
	if err != nil {
		t.Fatal(err)
	}
	injected := strings.Replace(buildRecord, `"auc_parallel":0.972`, `"auc_parallel":0.91`, 1)
	cur, err := Extract("BENCH_build.json", []byte(injected))
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := Compare(base, cur, 0.25, true) // −6% AUC ≪ 25% global tolerance
	if err != nil {
		t.Fatal(err)
	}
	if n := Regressions(deltas); n != 1 {
		t.Fatalf("%d regressions, want the AUC drop alone", n)
	}
	if deltas[0].Metric.Name != "auc_parallel" {
		t.Fatalf("flagged %q, want auc_parallel", deltas[0].Metric.Name)
	}
}

// TestComparePPRRecord covers the online-PPR gate: the FORA-vs-power
// speedup gates as a relative metric, wall times skip under CI's
// relative-only mode, and max_rel_err (lower-better, deterministic in
// CI) only fails once it blows past its own doubled-error tolerance.
func TestComparePPRRecord(t *testing.T) {
	base, err := Extract("BENCH_ppr.json", []byte(pprRecord))
	if err != nil {
		t.Fatal(err)
	}
	// Speedup collapses 22.5× → 9× while wall times balloon: only the
	// relative metrics may fire under relative-only.
	injected := strings.NewReplacer(
		`"speedup_vs_power":22.5`, `"speedup_vs_power":9`,
		`"fora_ms":40`, `"fora_ms":100`,
		`"power_ms":900`, `"power_ms":900.5`,
	).Replace(pprRecord)
	cur, err := Extract("BENCH_ppr.json", []byte(injected))
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := Compare(base, cur, 0.25, true)
	if err != nil {
		t.Fatal(err)
	}
	if n := Regressions(deltas); n != 1 {
		t.Fatalf("%d regressions, want exactly the speedup collapse", n)
	}
	for _, d := range deltas {
		switch d.Metric.Name {
		case "speedup_vs_power":
			if !d.Regressed {
				t.Fatal("speedup collapse not flagged")
			}
		case "fora_ms", "power_ms":
			if !d.Skipped || d.Regressed {
				t.Fatalf("absolute metric delta %+v should be skipped under relative-only", d)
			}
		}
	}

	// Error wobble within 2× passes; past it, fails — even though the
	// global tolerance would forgive far more than 80%.
	for _, tc := range []struct {
		errVal    string
		regressed bool
	}{
		{`0.2`, false}, {`0.4`, true},
	} {
		cur, err := Extract("BENCH_ppr.json",
			[]byte(strings.Replace(pprRecord, `"max_rel_err":0.11`, `"max_rel_err":`+tc.errVal, 1)))
		if err != nil {
			t.Fatal(err)
		}
		deltas, err := Compare(base, cur, 5.0, true)
		if err != nil {
			t.Fatal(err)
		}
		got := false
		for _, d := range deltas {
			if d.Metric.Name == "max_rel_err" && d.Regressed {
				got = true
			}
		}
		if got != tc.regressed {
			t.Fatalf("max_rel_err=%s: regressed=%v, want %v", tc.errVal, got, tc.regressed)
		}
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	base, err := Extract("BENCH_topk.json", []byte(topkRecord))
	if err != nil {
		t.Fatal(err)
	}
	shrunk := `{"benchmarks":[{"name":"TopKExact","qps":200}]}`
	cur, err := Extract("BENCH_topk.json", []byte(shrunk))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compare(base, cur, 0.25, false); err == nil {
		t.Fatal("vanished benchmark passed the gate")
	}
	// The reverse — new metrics without baselines — is allowed.
	if _, err := Compare(cur, base, 0.25, false); err != nil {
		t.Fatalf("new current-only metric rejected: %v", err)
	}
}

// TestCompareZeroBaselineFails: a zero baseline (renamed JSON field, or
// a stale record) must fail loudly instead of gating vacuously.
func TestCompareZeroBaselineFails(t *testing.T) {
	zeroed := strings.Replace(topkRecord, `"qps":1250`, `"qps":0`, 1)
	base, err := Extract("BENCH_topk.json", []byte(zeroed))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := Extract("BENCH_topk.json", []byte(topkRecord))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compare(base, cur, 0.25, false); err == nil {
		t.Fatal("zero baseline gated as a pass")
	}
}

func TestCompareImprovement(t *testing.T) {
	base, err := Extract("BENCH_ingest.json", []byte(ingestRecord))
	if err != nil {
		t.Fatal(err)
	}
	injected := strings.Replace(ingestRecord, `"mmap_vs_text_speedup":200`, `"mmap_vs_text_speedup":500`, 1)
	cur, err := Extract("BENCH_ingest.json", []byte(injected))
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := Compare(base, cur, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	if Regressions(deltas) != 0 {
		t.Fatal("an improvement was flagged as regression")
	}
	// Lower-is-better direction: a drop in wall time is a positive change.
	injected = strings.Replace(ingestRecord, `"parallel_parse_ms":90`, `"parallel_parse_ms":45`, 1)
	cur, err = Extract("BENCH_ingest.json", []byte(injected))
	if err != nil {
		t.Fatal(err)
	}
	deltas, err = Compare(base, cur, 0.25, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		if d.Metric.Name == "parallel_parse_ms" && (d.Regressed || d.Change < 0.4) {
			t.Fatalf("halved wall time reported as %+v", d)
		}
	}
}
