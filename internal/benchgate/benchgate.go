// Package benchgate turns the repository's BENCH_*.json benchmark
// records into a CI regression gate: it extracts named metrics from each
// known record schema and compares a fresh run against committed
// baselines with a configurable tolerance.
//
// Metrics are classified as relative (machine-independent ratios such as
// parallel speedups and AUC quality scores, comparable across hosts) or
// absolute (throughput and wall-time numbers, only comparable on similar
// hardware). CI gates on relative metrics so a committed baseline from
// one machine remains meaningful on another; local runs can gate on
// everything. Quality metrics (AUC) carry a tight per-metric tolerance —
// a 2% AUC drop is a real regression even when a 25% throughput swing is
// noise.
package benchgate

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Metric is one gated measurement extracted from a benchmark record.
type Metric struct {
	File        string // record file name, e.g. "BENCH_topk.json"
	Name        string // metric name within the file, e.g. "qps/TopKQuantized"
	Value       float64
	LowerBetter bool    // regression direction: true when rising is bad
	Relative    bool    // machine-independent ratio vs host-bound absolute
	Tolerance   float64 // per-metric override; 0 = caller's global tolerance
}

// aucTolerance gates embedding-quality metrics far tighter than
// throughput: quality does not wobble with machine load.
const aucTolerance = 0.02

// pprErrTolerance forgives the PPR estimator's max relative error
// doubling against the baseline. The measurement is deterministic for a
// fixed walk seed and thread count, so CI (which pins GOMAXPROCS) sees
// the baseline value bit-for-bit; the slack only covers local runs on
// other core counts. The benchmark itself already fails hard when the
// error exceeds ε, so this gate catches silent accuracy drift, not the
// guarantee.
const pprErrTolerance = 1.0

// pprIndexTolerance gates the FORA+ walk-index speedup loosely: the walk
// phase is a modest share of query time, so the ratio hovers near 1.5×
// and wobbles with load. Halving it still fails — that means the index
// path has stopped helping at all.
const pprIndexTolerance = 0.5

// hnswRecallTolerance gates the HNSW serving recall as tightly as AUC:
// recall@10 is deterministic for a fixed graph seed and query set, so
// any drop beyond a point of noise means the accuracy contract broke.
const hnswRecallTolerance = 0.01

// coalesceTolerance gates the request-coalescing speedup loosely: it is
// a QPS ratio of two identical load phases, machine-independent in
// direction but noisy under closed-loop HTTP timing. Halving still fails
// — that means coalescing has stopped paying for itself.
const coalesceTolerance = 0.5

// Known reports whether the gate understands a record file's schema.
func Known(file string) bool {
	switch file {
	case "BENCH_topk.json", "BENCH_build.json", "BENCH_dynamic.json", "BENCH_ingest.json", "BENCH_ppr.json", "BENCH_serve.json":
		return true
	}
	return false
}

// Extract parses one benchmark record (dispatching on its base file
// name) into gated metrics.
func Extract(file string, data []byte) ([]Metric, error) {
	switch file {
	case "BENCH_topk.json":
		return extractTopK(file, data)
	case "BENCH_build.json":
		var r struct {
			Speedup     float64 `json:"speedup"`
			SerialMs    float64 `json:"serial_ms"`
			ParallelMs  float64 `json:"parallel_ms"`
			AUCSerial   float64 `json:"auc_serial"`
			AUCParallel float64 `json:"auc_parallel"`
			ForaMs      float64 `json:"fora_ms"`
			ForaSpeedup float64 `json:"fora_speedup"`
			AUCFora     float64 `json:"auc_fora"`
		}
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("benchgate: %s: %w", file, err)
		}
		ms := []Metric{
			{File: file, Name: "speedup", Value: r.Speedup, Relative: true},
			{File: file, Name: "serial_ms", Value: r.SerialMs, LowerBetter: true},
			{File: file, Name: "parallel_ms", Value: r.ParallelMs, LowerBetter: true},
			{File: file, Name: "auc_serial", Value: r.AUCSerial, Relative: true, Tolerance: aucTolerance},
			{File: file, Name: "auc_parallel", Value: r.AUCParallel, Relative: true, Tolerance: aucTolerance},
		}
		// The FORA-estimator metrics are optional until a baseline records
		// them (Compare ignores current-only metrics, but a zero value
		// against a real baseline would fail the stale-record check).
		if r.ForaMs > 0 {
			ms = append(ms,
				Metric{File: file, Name: "fora_ms", Value: r.ForaMs, LowerBetter: true},
				Metric{File: file, Name: "fora_speedup", Value: r.ForaSpeedup, Relative: true},
				Metric{File: file, Name: "auc_fora", Value: r.AUCFora, Relative: true, Tolerance: aucTolerance},
			)
		}
		return ms, nil
	case "BENCH_dynamic.json":
		var r struct {
			Speedup        float64 `json:"speedup"`
			IncrementalMs  float64 `json:"incremental_ms"`
			FullMs         float64 `json:"full_ms"`
			AUCIncremental float64 `json:"auc_incremental"`
			AUCFull        float64 `json:"auc_full"`
		}
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("benchgate: %s: %w", file, err)
		}
		return []Metric{
			{File: file, Name: "speedup", Value: r.Speedup, Relative: true},
			{File: file, Name: "incremental_ms", Value: r.IncrementalMs, LowerBetter: true},
			{File: file, Name: "full_ms", Value: r.FullMs, LowerBetter: true},
			{File: file, Name: "auc_incremental", Value: r.AUCIncremental, Relative: true, Tolerance: aucTolerance},
			{File: file, Name: "auc_full", Value: r.AUCFull, Relative: true, Tolerance: aucTolerance},
		}, nil
	case "BENCH_ingest.json":
		var r struct {
			SerialParseMs   float64 `json:"serial_parse_ms"`
			ParallelParseMs float64 `json:"parallel_parse_ms"`
			HeapLoadMs      float64 `json:"heap_load_ms"`
			MmapLoadMs      float64 `json:"mmap_load_ms"`
			ParallelSpeedup float64 `json:"parallel_speedup"`
			MmapSpeedup     float64 `json:"mmap_vs_text_speedup"`
		}
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("benchgate: %s: %w", file, err)
		}
		return []Metric{
			{File: file, Name: "parallel_speedup", Value: r.ParallelSpeedup, Relative: true},
			{File: file, Name: "mmap_vs_text_speedup", Value: r.MmapSpeedup, Relative: true},
			{File: file, Name: "serial_parse_ms", Value: r.SerialParseMs, LowerBetter: true},
			{File: file, Name: "parallel_parse_ms", Value: r.ParallelParseMs, LowerBetter: true},
			{File: file, Name: "heap_load_ms", Value: r.HeapLoadMs, LowerBetter: true},
			{File: file, Name: "mmap_load_ms", Value: r.MmapLoadMs, LowerBetter: true},
		}, nil
	case "BENCH_ppr.json":
		var r struct {
			SpeedupVsPower float64 `json:"speedup_vs_power"`
			IndexSpeedup   float64 `json:"index_speedup"`
			MaxRelErr      float64 `json:"max_rel_err"`
			ForaMs         float64 `json:"fora_ms"`
			ForaPlusMs     float64 `json:"fora_plus_ms"`
			PowerMs        float64 `json:"power_ms"`
		}
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("benchgate: %s: %w", file, err)
		}
		return []Metric{
			{File: file, Name: "speedup_vs_power", Value: r.SpeedupVsPower, Relative: true},
			{File: file, Name: "index_speedup", Value: r.IndexSpeedup, Relative: true, Tolerance: pprIndexTolerance},
			{File: file, Name: "max_rel_err", Value: r.MaxRelErr, LowerBetter: true, Relative: true, Tolerance: pprErrTolerance},
			{File: file, Name: "fora_ms", Value: r.ForaMs, LowerBetter: true},
			{File: file, Name: "fora_plus_ms", Value: r.ForaPlusMs, LowerBetter: true},
			{File: file, Name: "power_ms", Value: r.PowerMs, LowerBetter: true},
		}, nil
	case "BENCH_serve.json":
		return extractServe(file, data)
	}
	return nil, fmt.Errorf("benchgate: unknown record file %q", file)
}

// extractServe reads the HTTP serving load record written by
// BenchmarkServeLoad (or cmd/nrpload's -out, which shares the endpoint
// stats shape). The coalescing speedup is the gated relative metric;
// raw QPS and the client-side latency quantiles are host-bound
// absolutes, compared only on like hardware.
func extractServe(file string, data []byte) ([]Metric, error) {
	var r struct {
		DirectQPS       float64 `json:"direct_qps"`
		CoalescedQPS    float64 `json:"coalesced_qps"`
		CoalesceSpeedup float64 `json:"coalesce_speedup"`
		MixedQPS        float64 `json:"mixed_qps"`
		Endpoints       map[string]struct {
			P50Us float64 `json:"p50_us"`
			P99Us float64 `json:"p99_us"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", file, err)
	}
	if r.CoalesceSpeedup == 0 {
		return nil, fmt.Errorf("benchgate: %s holds no coalesce_speedup", file)
	}
	ms := []Metric{
		{File: file, Name: "coalesce_speedup", Value: r.CoalesceSpeedup, Relative: true, Tolerance: coalesceTolerance},
		{File: file, Name: "direct_qps", Value: r.DirectQPS},
		{File: file, Name: "coalesced_qps", Value: r.CoalescedQPS},
		{File: file, Name: "mixed_qps", Value: r.MixedQPS},
	}
	names := make([]string, 0, len(r.Endpoints))
	for name := range r.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ep := r.Endpoints[name]
		ms = append(ms,
			Metric{File: file, Name: name + "_p50_us", Value: ep.P50Us, LowerBetter: true},
			Metric{File: file, Name: name + "_p99_us", Value: ep.P99Us, LowerBetter: true},
		)
	}
	return ms, nil
}

func extractTopK(file string, data []byte) ([]Metric, error) {
	var r struct {
		Benchmarks []struct {
			Name string  `json:"name"`
			QPS  float64 `json:"qps"`
		} `json:"benchmarks"`
		// The optional "hnsw" object holds the ANN backend's accuracy and
		// speedup contract; absent in records from runs that skipped the
		// HNSW benchmarks.
		HNSW *struct {
			RecallAt10      float64 `json:"recall_at_10"`
			SpeedupVsPruned float64 `json:"speedup_vs_pruned"`
		} `json:"hnsw"`
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", file, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchgate: %s holds no benchmark entries", file)
	}
	ms := make([]Metric, 0, len(r.Benchmarks)+2)
	for _, b := range r.Benchmarks {
		ms = append(ms, Metric{File: file, Name: "qps/" + b.Name, Value: b.QPS})
	}
	if r.HNSW != nil {
		// Both are machine-independent: recall is deterministic for a fixed
		// graph, and the speedup is a QPS ratio of two batch benchmarks that
		// parallelize across queries identically.
		ms = append(ms,
			Metric{File: file, Name: "hnsw_recall_at_10", Value: r.HNSW.RecallAt10, Relative: true, Tolerance: hnswRecallTolerance},
			Metric{File: file, Name: "hnsw_speedup_vs_pruned", Value: r.HNSW.SpeedupVsPruned, Relative: true},
		)
	}
	return ms, nil
}

// Delta is the comparison of one metric against its baseline.
type Delta struct {
	Metric    Metric
	Baseline  float64
	Change    float64 // fractional change, signed so that positive = better
	Tolerance float64 // tolerance actually applied (0 when skipped)
	Skipped   bool    // absolute metric under relativeOnly
	Regressed bool
}

// Compare evaluates current metrics against baselines. Every baseline
// metric must be present in current — a silently vanished benchmark is a
// gate failure, not a pass. Metrics present only in current (newly added
// benchmarks whose baseline has not been recorded yet) are ignored.
// tolerance is the allowed fractional regression; relativeOnly restricts
// gating to machine-independent metrics, which is how CI compares a
// committed baseline against a different host.
func Compare(baseline, current []Metric, tolerance float64, relativeOnly bool) ([]Delta, error) {
	if tolerance < 0 {
		return nil, fmt.Errorf("benchgate: negative tolerance %v", tolerance)
	}
	cur := make(map[string]Metric, len(current))
	for _, m := range current {
		cur[m.File+"\x00"+m.Name] = m
	}
	deltas := make([]Delta, 0, len(baseline))
	for _, b := range baseline {
		c, ok := cur[b.File+"\x00"+b.Name]
		if !ok {
			return nil, fmt.Errorf("benchgate: %s: metric %q has a baseline but no current measurement", b.File, b.Name)
		}
		if b.Value == 0 {
			// A zero baseline cannot anchor a ratio and almost always means
			// a renamed/absent JSON field unmarshalled to its zero value —
			// gating against it would pass vacuously forever.
			return nil, fmt.Errorf("benchgate: %s: metric %q has a zero baseline (stale or mismatched record?); refresh bench/baseline", b.File, b.Name)
		}
		d := Delta{Metric: c, Baseline: b.Value}
		d.Change = (c.Value - b.Value) / b.Value
		if b.LowerBetter {
			d.Change = -d.Change
		}
		if relativeOnly && !b.Relative {
			d.Skipped = true
		} else {
			d.Tolerance = tolerance
			if b.Tolerance > 0 {
				d.Tolerance = b.Tolerance
			}
			d.Regressed = d.Change < -d.Tolerance
		}
		deltas = append(deltas, d)
	}
	sort.SliceStable(deltas, func(i, j int) bool {
		if deltas[i].Regressed != deltas[j].Regressed {
			return deltas[i].Regressed
		}
		return deltas[i].Change < deltas[j].Change
	})
	return deltas, nil
}

// Regressions counts the failed deltas.
func Regressions(deltas []Delta) int {
	n := 0
	for _, d := range deltas {
		if d.Regressed {
			n++
		}
	}
	return n
}
