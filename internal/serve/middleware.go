package serve

import (
	"context"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// endpointLabel maps a request path onto the bounded metric label set —
// unknown paths collapse into "other" so clients probing random URLs
// cannot grow the label space without bound.
func endpointLabel(path string) string {
	switch path {
	case "/v1/healthz", "/v1/topk", "/v1/score", "/v1/ppr", "/v1/update", "/v1/refresh":
		return strings.TrimPrefix(path, "/v1/")
	case "/metrics":
		return "metrics"
	default:
		return "other"
	}
}

// reqInfo rides the request context so handlers can annotate the
// middleware's log line and metrics with request-shape details.
type reqInfo struct {
	k         int  // top-k requested (-1 when not a topk/ppr call)
	batch     int  // sources in the batch (topk), pairs (score), seeds (ppr)
	coalesced bool // served through the coalescer
}

type reqInfoKey struct{}

func infoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// statusRecorder captures the response status for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// exemptFromGating reports whether a path bypasses drain 503s and rate
// limiting: health checks must answer while draining (that is how a load
// balancer learns to stop routing here) and scrapes must never be shed.
func exemptFromGating(path string) bool {
	return path == "/metrics" || path == "/v1/healthz"
}

// instrument wraps the route table with the full observability and
// protection chain: in-flight gauge, latency histogram, request counter,
// one structured log line per call, drain gating, and (when configured)
// per-client rate limiting.
func (sv *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		endpoint := endpointLabel(r.URL.Path)
		ri := &reqInfo{k: -1}
		r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri))
		rec := &statusRecorder{ResponseWriter: w}

		sv.metrics.inflight.Inc()
		defer func() {
			sv.metrics.inflight.Dec()
			elapsed := time.Since(start)
			code := rec.status
			if code == 0 {
				code = http.StatusOK
			}
			sv.metrics.requests.With(endpoint, strconv.Itoa(code)).Inc()
			sv.metrics.latency.With(endpoint).Observe(elapsed.Seconds())
			sv.logRequest(r, endpoint, code, elapsed, ri)
		}()

		switch {
		case sv.draining.Load() && !exemptFromGating(r.URL.Path):
			writeError(rec, http.StatusServiceUnavailable, "server is draining")
		case sv.limiter != nil && !exemptFromGating(r.URL.Path):
			if retry, ok := sv.limiter.allow(clientKey(r)); !ok {
				sv.metrics.rateLimited.Inc()
				rec.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retry)))
				writeError(rec, http.StatusTooManyRequests, "rate limit exceeded")
			} else {
				next.ServeHTTP(rec, r)
			}
		default:
			next.ServeHTTP(rec, r)
		}
	})
}

func (sv *Server) logRequest(r *http.Request, endpoint string, code int, elapsed time.Duration, ri *reqInfo) {
	if sv.cfg.Logger == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("endpoint", endpoint),
		slog.String("method", r.Method),
		slog.Int("status", code),
		slog.Duration("duration", elapsed),
		slog.String("client", clientKey(r)),
	}
	if ri.k >= 0 {
		attrs = append(attrs, slog.Int("k", ri.k))
	}
	if ri.batch > 0 {
		attrs = append(attrs, slog.Int("batch", ri.batch))
	}
	if ri.coalesced {
		attrs = append(attrs, slog.Bool("coalesced", true))
	}
	level := slog.LevelInfo
	if code >= 500 {
		level = slog.LevelError
	} else if code >= 400 {
		level = slog.LevelWarn
	}
	sv.cfg.Logger.LogAttrs(r.Context(), level, "request", attrs...)
}

// clientKey identifies a client for rate limiting and logging: the
// connection's source IP, without the ephemeral port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds renders a wait as a whole-second Retry-After value,
// rounding up so clients that honor it exactly do not immediately 429
// again.
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
