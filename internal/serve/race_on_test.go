//go:build race

package serve

// raceEnabled gates assertions that the race detector invalidates by
// design (sync.Pool drops items at random under -race).
const raceEnabled = true
