// Package serve implements the HTTP layer of cmd/nrpserve: JSON
// request/response types, handlers over an nrp.Searcher, typed-error to
// status-code mapping, and graceful drain on shutdown.
//
// Endpoints:
//
//	GET  /v1/healthz          liveness + index metadata
//	GET  /v1/topk?u=42&k=10   single top-k query
//	POST /v1/topk             {"u":42,"k":10} or {"us":[1,2,3],"k":10}
//	POST /v1/score            {"pairs":[[0,1],[2,3]]}
//	POST /v1/ppr              {"seeds":[1,2],"k":10}               (PPR-enabled servers)
//	POST /v1/update           {"insert":[[0,1]],"remove":[[2,3]]}  (live servers)
//	POST /v1/refresh          {}                                   (live servers)
//
// All responses are JSON. Malformed requests — bad JSON, k <= 0, node ids
// outside [0, N), invalid PPR parameters — map to 400 via the
// nrp.ErrInvalidK, nrp.ErrNodeOutOfRange, nrp.ErrEmptySeedSet,
// nrp.ErrInvalidAlpha and nrp.ErrInvalidEpsilon sentinels; queries cut
// short by server shutdown map to 503.
//
// A server constructed with NewLiveServer additionally accepts edge
// updates and refreshes: /v1/update applies batched insertions/removals
// to the underlying graph and /v1/refresh brings the embedding in sync
// and atomically swaps the serving index (in-flight queries finish on the
// old index — zero downtime). On a static server both return 409.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/nrp-embed/nrp"
)

// Config carries the serving metadata that is not derivable from the
// Searcher itself.
type Config struct {
	// Backend labels the index backend in /v1/healthz responses.
	Backend string
	// MaxK caps the k a single request may ask for (default 1000): a cheap
	// guard against a single query holding a worker for a full-index sort.
	MaxK int
	// MaxBatch caps the number of sources in one /v1/topk batch, the
	// number of pairs in one /v1/score call, and the number of seeds in
	// one /v1/ppr call (default 1024).
	MaxBatch int
	// PPR, when non-nil, enables /v1/ppr: online seed-set PPR queries on
	// the graph the server was booted from. On a live server, queries run
	// against the current graph snapshot, so they observe edges applied
	// through /v1/update immediately — no /v1/refresh needed.
	PPR *nrp.PPREngine
	// Logger, when non-nil, receives one structured request line per call
	// (endpoint, method, status, duration, k, client). Nil keeps the
	// server quiet — the default in tests.
	Logger *slog.Logger
	// RateLimit, when > 0, enables per-client-IP token-bucket rate
	// limiting at this many requests per second. Over-limit requests get
	// 429 with a Retry-After header. /metrics and /v1/healthz are exempt.
	RateLimit float64
	// RateBurst is the token-bucket burst capacity (default
	// max(1, RateLimit)). Only meaningful with RateLimit > 0.
	RateBurst int
	// Coalesce aggregates concurrent single-source /v1/topk calls into
	// one TopKMany pass through the batched kernel, deduplicating hot
	// sources — a throughput win under concurrent skewed traffic.
	Coalesce bool
	// CoalesceWindow is how long a lone round leader waits for concurrent
	// callers to join its batch before scanning (default 250µs; negative
	// disables the wait). Only meaningful with Coalesce.
	CoalesceWindow time.Duration
	// Shard, when non-nil, marks this process as one slice of a sharded
	// deployment (nrpserve -shard i/N). It is advertised in /v1/healthz so
	// a router can validate that its shard set forms a complete partition
	// of [0, N) before fanning queries out.
	Shard *ShardInfo
}

// ShardInfo describes the node-range slice a shard server is responsible
// for. Lo/Hi are the half-open candidate range [Lo, Hi) computed by
// nrp.ShardRange — the same ceil-chunked partition the in-process shard
// scans use, so slice boundaries never drift between layers.
type ShardInfo struct {
	Index int `json:"index"`
	Count int `json:"count"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
}

const (
	defaultMaxK     = 1000
	defaultMaxBatch = 1024
)

// Server serves proximity queries over a fixed Searcher, or — when
// constructed with NewLiveServer — over a live index that accepts updates.
type Server struct {
	searcher nrp.Searcher
	live     *nrp.LiveIndex // nil for static servers
	cfg      Config
	metrics  *Metrics
	limiter  *rateLimiter // nil unless cfg.RateLimit > 0
	coal     *coalescer   // nil unless cfg.Coalesce
	draining atomic.Bool
	start    time.Time
}

// NewServer wraps a Searcher for HTTP serving. The update endpoints
// respond 409 (the index is static); use NewLiveServer to accept updates.
func NewServer(s nrp.Searcher, cfg Config) *Server {
	if cfg.MaxK <= 0 {
		cfg.MaxK = defaultMaxK
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	sv := &Server{searcher: s, cfg: cfg, start: time.Now()}
	sv.metrics = newMetrics(sv)
	if cfg.RateLimit > 0 {
		sv.limiter = newRateLimiter(cfg.RateLimit, cfg.RateBurst)
	}
	if cfg.Coalesce {
		sv.coal = newCoalescer(s, sv.metrics, cfg.CoalesceWindow)
	}
	return sv
}

// NewLiveServer wraps a LiveIndex for HTTP serving with the update and
// refresh endpoints enabled. Queries hit the index current at request
// start; a concurrent refresh swaps the index without failing them.
func NewLiveServer(li *nrp.LiveIndex, cfg Config) *Server {
	sv := NewServer(li, cfg)
	sv.live = li
	// Re-register so the live-index families (swaps, pending, lag) exist.
	sv.metrics = newMetrics(sv)
	if sv.coal != nil {
		sv.coal = newCoalescer(li, sv.metrics, cfg.CoalesceWindow)
	}
	return sv
}

// Metrics exposes the server's telemetry surface so callers outside the
// HTTP handlers (the background refresh loop in cmd/nrpserve) can record
// events on the same registry /metrics serves.
func (sv *Server) Metrics() *Metrics { return sv.metrics }

// BeginDrain flips the server into drain mode: requests already in
// flight run to completion, while new requests (except /v1/healthz and
// /metrics) are rejected with 503 so a load balancer retries them on a
// healthy replica.
func (sv *Server) BeginDrain() {
	if sv.draining.CompareAndSwap(false, true) {
		sv.metrics.drainGauge.Set(1)
	}
}

// Draining reports whether BeginDrain has been called.
func (sv *Server) Draining() bool { return sv.draining.Load() }

// Handler returns the route table wrapped in the observability and
// protection middleware (metrics, request logging, drain gating, rate
// limiting), plus the GET /metrics exposition endpoint.
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", sv.handleHealthz)
	mux.HandleFunc("/v1/topk", sv.handleTopK)
	mux.HandleFunc("/v1/score", sv.handleScore)
	mux.HandleFunc("/v1/ppr", sv.handlePPR)
	mux.HandleFunc("/v1/update", sv.handleUpdate)
	mux.HandleFunc("/v1/refresh", sv.handleRefresh)
	mux.Handle("/metrics", sv.metrics.reg.Handler())
	return sv.instrument(mux)
}

// TopKRequest is the /v1/topk POST body. Exactly one of U or Us must be
// set. Stats opts into per-query backend work counters in the response
// (the GET form uses the ?stats=1 query parameter).
type TopKRequest struct {
	U     *int  `json:"u,omitempty"`
	Us    []int `json:"us,omitempty"`
	K     int   `json:"k"`
	Stats bool  `json:"stats,omitempty"`
}

// NeighborJSON is one scored candidate.
type NeighborJSON struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

// StatsJSON reports per-query backend work.
type StatsJSON struct {
	Scanned   int   `json:"scanned"`
	Pruned    int   `json:"pruned"`
	Reranked  int   `json:"reranked"`
	ElapsedUs int64 `json:"elapsed_us"`
}

// ResultJSON is one query's answer. Stats is present only when the
// request asked for it (?stats=1 or "stats":true).
type ResultJSON struct {
	U         int            `json:"u"`
	Neighbors []NeighborJSON `json:"neighbors"`
	Stats     *StatsJSON     `json:"stats,omitempty"`
}

// TopKResponse is the /v1/topk response body. Partial is set only by the
// scatter-gather router (internal/router) when one or more shards failed
// and the answer covers a subset of the node space; shard servers and
// single-node deployments never set it.
type TopKResponse struct {
	K       int          `json:"k"`
	Results []ResultJSON `json:"results"`
	Partial bool         `json:"partial,omitempty"`
}

// ScoreRequest is the /v1/score POST body: pairs of [source, target].
type ScoreRequest struct {
	Pairs [][2]int `json:"pairs"`
}

// ScoreResponse is the /v1/score response body, aligned with the request
// pairs.
type ScoreResponse struct {
	Scores []float64 `json:"scores"`
}

// HealthzResponse is the /v1/healthz response body.
type HealthzResponse struct {
	Status  string `json:"status"`
	Nodes   int    `json:"nodes"`
	Backend string `json:"backend"`
	// Version and Revision identify the running build (module version and
	// VCS commit from runtime/debug.ReadBuildInfo; "unknown" when the
	// binary was built without that metadata).
	Version  string `json:"version"`
	Revision string `json:"revision"`
	// UptimeSeconds is the time since the Server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// PPR reports whether /v1/ppr is enabled on this deployment.
	PPR bool `json:"ppr,omitempty"`
	// Live reports whether the server accepts /v1/update and /v1/refresh.
	Live bool `json:"live,omitempty"`
	// PendingUpdates is the number of edge updates applied since the
	// serving index was last refreshed. Always present on live servers
	// (including the healthy 0), absent on static ones.
	PendingUpdates *int `json:"pending_updates,omitempty"`
	// Draining reports that the server is shedding new requests with 503.
	Draining bool `json:"draining,omitempty"`
	// Shard is present on shard servers (nrpserve -shard i/N): the slice of
	// the node space this process answers top-k queries over.
	Shard *ShardInfo `json:"shard,omitempty"`
}

// UpdateRequest is the /v1/update POST body: pairs of [source, target] to
// insert and to remove. Within one request, insertions and removals are
// applied in that order.
type UpdateRequest struct {
	Insert [][2]int `json:"insert,omitempty"`
	Remove [][2]int `json:"remove,omitempty"`
}

// UpdateResponse reports how many updates changed the graph and how many
// changes the serving index has not absorbed yet.
type UpdateResponse struct {
	Applied int `json:"applied"`
	Pending int `json:"pending"`
}

// RefreshResponse is the /v1/refresh response body: the refresh stats
// plus the (possibly new) index size.
type RefreshResponse struct {
	Mode          string  `json:"mode"`
	WarmStart     bool    `json:"warm_start,omitempty"`
	Fallback      bool    `json:"fallback,omitempty"`
	TouchedNodes  int     `json:"touched_nodes"`
	PushMass      float64 `json:"push_mass"`
	ResidualMass  float64 `json:"residual_mass"`
	AccumResidual float64 `json:"accum_residual"`
	ArcsChanged   int     `json:"arcs_changed"`
	ElapsedUs     int64   `json:"elapsed_us"`
	Nodes         int     `json:"nodes"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (sv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	version, revision := buildInfo()
	resp := HealthzResponse{
		Status:        "ok",
		Nodes:         sv.searcher.N(),
		Backend:       sv.cfg.Backend,
		Version:       version,
		Revision:      revision,
		UptimeSeconds: time.Since(sv.start).Seconds(),
		PPR:           sv.cfg.PPR != nil,
		Draining:      sv.draining.Load(),
		Shard:         sv.cfg.Shard,
	}
	if sv.live != nil {
		resp.Live = true
		pending := sv.live.Pending()
		resp.PendingUpdates = &pending
	}
	writeJSON(w, http.StatusOK, resp)
}

// requireLive guards the update endpoints: a static server has no graph
// to mutate, which is the client's misunderstanding of the deployment,
// not a malformed request — hence 409.
func (sv *Server) requireLive(w http.ResponseWriter) bool {
	if sv.live == nil {
		writeError(w, http.StatusConflict, "index is static: server was not started over a live graph")
		return false
	}
	return true
}

func (sv *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !sv.requireLive(w) {
		return
	}
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	total := len(req.Insert) + len(req.Remove)
	if total == 0 {
		writeError(w, http.StatusBadRequest, `set at least one of "insert" and "remove"`)
		return
	}
	if total > sv.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d updates exceeds limit %d", total, sv.cfg.MaxBatch))
		return
	}
	ups := make([]nrp.EdgeUpdate, 0, total)
	for _, batch := range []struct {
		pairs [][2]int
		op    nrp.UpdateOp
	}{
		{req.Insert, nrp.UpdateInsert},
		{req.Remove, nrp.UpdateRemove},
	} {
		for _, p := range batch.pairs {
			// Reject ids that int32 would silently wrap into range before
			// they reach the engine's [0, N) validation.
			if p[0] < 0 || p[0] > math.MaxInt32 || p[1] < 0 || p[1] > math.MaxInt32 {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("node id outside [0, %d] in pair [%d,%d]", math.MaxInt32, p[0], p[1]))
				return
			}
			ups = append(ups, nrp.EdgeUpdate{U: int32(p[0]), V: int32(p[1]), Op: batch.op})
		}
	}
	applied, err := sv.live.ApplyUpdates(r.Context(), ups)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusServiceUnavailable, "update cancelled: "+err.Error())
			return
		}
		// Update batches fail only on validation (ids out of range, bad op).
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, UpdateResponse{Applied: applied, Pending: sv.live.Pending()})
}

func (sv *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !sv.requireLive(w) {
		return
	}
	st, err := sv.live.Refresh(r.Context())
	if err != nil {
		writeQueryError(w, err)
		return
	}
	sv.metrics.ObserveRefresh(st)
	writeJSON(w, http.StatusOK, RefreshResponse{
		Mode:          string(st.Mode),
		WarmStart:     st.WarmStart,
		Fallback:      st.Fallback,
		TouchedNodes:  st.TouchedNodes,
		PushMass:      st.PushMass,
		ResidualMass:  st.ResidualMass,
		AccumResidual: st.AccumResidual,
		ArcsChanged:   st.ArcsChanged,
		ElapsedUs:     st.Wall.Microseconds(),
		Nodes:         sv.live.N(),
	})
}

func (sv *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req TopKRequest
	switch r.Method {
	case http.MethodGet:
		u, err := strconv.Atoi(r.URL.Query().Get("u"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "query parameter u must be an integer")
			return
		}
		req.U = &u
		req.K = 10
		if ks := r.URL.Query().Get("k"); ks != "" {
			if req.K, err = strconv.Atoi(ks); err != nil {
				writeError(w, http.StatusBadRequest, "query parameter k must be an integer")
				return
			}
		}
		switch r.URL.Query().Get("stats") {
		case "", "0", "false":
		default:
			req.Stats = true
		}
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
		return
	}

	var us []int
	switch {
	case req.U != nil && len(req.Us) > 0:
		writeError(w, http.StatusBadRequest, `set exactly one of "u" and "us"`)
		return
	case req.U != nil:
		us = []int{*req.U}
	case len(req.Us) > 0:
		us = req.Us
	default:
		writeError(w, http.StatusBadRequest, `set one of "u" and "us"`)
		return
	}
	if len(us) > sv.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d sources exceeds limit %d", len(us), sv.cfg.MaxBatch))
		return
	}
	if req.K > sv.cfg.MaxK {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("k=%d exceeds limit %d", req.K, sv.cfg.MaxK))
		return
	}
	if ri := infoFrom(r.Context()); ri != nil {
		ri.k = req.K
		ri.batch = len(us)
	}
	sv.metrics.batchSize.Observe(float64(len(us)))

	var results []nrp.Result
	var err error
	if sv.coal != nil && len(us) == 1 {
		// The coalescer batches this call with its concurrent neighbors,
		// so validation the backend would do per-call must happen first:
		// one bad request must not fail the round it rides in.
		if req.K <= 0 {
			writeQueryError(w, fmt.Errorf("%w: k=%d", nrp.ErrInvalidK, req.K))
			return
		}
		if n := sv.searcher.N(); us[0] < 0 || us[0] >= n {
			writeQueryError(w, fmt.Errorf("%w: u=%d not in [0, %d)", nrp.ErrNodeOutOfRange, us[0], n))
			return
		}
		if ri := infoFrom(r.Context()); ri != nil {
			ri.coalesced = true
		}
		var res nrp.Result
		res, err = sv.coal.topK(r.Context(), us[0], req.K)
		results = []nrp.Result{res}
	} else {
		results, err = sv.searcher.TopKMany(r.Context(), us, req.K)
	}
	if err != nil {
		writeQueryError(w, err)
		return
	}
	resp := TopKResponse{K: req.K, Results: make([]ResultJSON, len(results))}
	for i, res := range results {
		rj := ResultJSON{
			U:         res.Source,
			Neighbors: make([]NeighborJSON, len(res.Neighbors)),
		}
		if req.Stats {
			rj.Stats = &StatsJSON{
				Scanned:   res.Stats.Scanned,
				Pruned:    res.Stats.Pruned,
				Reranked:  res.Stats.Reranked,
				ElapsedUs: res.Stats.Elapsed.Microseconds(),
			}
		}
		for j, nb := range res.Neighbors {
			rj.Neighbors[j] = NeighborJSON{Node: nb.Node, Score: nb.Score}
		}
		resp.Results[i] = rj
	}
	writeJSON(w, http.StatusOK, resp)
}

func (sv *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req ScoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Pairs) > sv.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d pairs exceeds limit %d", len(req.Pairs), sv.cfg.MaxBatch))
		return
	}
	if ri := infoFrom(r.Context()); ri != nil {
		ri.batch = len(req.Pairs)
	}
	pairs := make([]nrp.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		pairs[i] = nrp.Pair{U: p[0], V: p[1]}
	}
	scores, err := sv.searcher.ScoreMany(r.Context(), pairs)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ScoreResponse{Scores: scores})
}

// PPRRequest is the /v1/ppr POST body. Alpha and Epsilon, when nonzero,
// override the engine defaults for this query.
type PPRRequest struct {
	Seeds   []int   `json:"seeds"`
	K       int     `json:"k,omitempty"`
	Alpha   float64 `json:"alpha,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`
}

// PPRStatsJSON reports how one PPR query was answered.
type PPRStatsJSON struct {
	Rmax       float64 `json:"rmax"`
	Residual   float64 `json:"residual"`
	Walks      int64   `json:"walks"`
	Pushed     int     `json:"pushed"`
	Candidates int     `json:"candidates"`
	UsedIndex  bool    `json:"used_index"`
	PushUs     int64   `json:"push_us"`
	WalkUs     int64   `json:"walk_us"`
}

// PPRResponse is the /v1/ppr response body: the top-k nodes by estimated
// PPR from the seed set, descending.
type PPRResponse struct {
	K      int            `json:"k"`
	Scores []NeighborJSON `json:"scores"`
	Stats  PPRStatsJSON   `json:"stats"`
}

func (sv *Server) handlePPR(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if sv.cfg.PPR == nil {
		// Like /v1/update on a static server: the deployment has no graph
		// to query, which is not a malformed request — hence 409.
		writeError(w, http.StatusConflict, "PPR is disabled: server was not started over a graph")
		return
	}
	var req PPRRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Seeds) > sv.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("seed set of %d exceeds limit %d", len(req.Seeds), sv.cfg.MaxBatch))
		return
	}
	if req.K == 0 {
		req.K = 10
	}
	if req.K > sv.cfg.MaxK {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("k=%d exceeds limit %d", req.K, sv.cfg.MaxK))
		return
	}
	if ri := infoFrom(r.Context()); ri != nil {
		ri.k = req.K
		ri.batch = len(req.Seeds)
	}
	q := nrp.PPRQuery{Seeds: req.Seeds, K: req.K, Alpha: req.Alpha, Epsilon: req.Epsilon}
	if sv.live != nil {
		// The current RCU snapshot: PPR answers on the updated topology as
		// soon as /v1/update returns, independent of index refreshes.
		q.Graph = sv.live.Dynamic().Graph()
	}
	res, err := sv.cfg.PPR.Query(r.Context(), q)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	resp := PPRResponse{
		K:      req.K,
		Scores: make([]NeighborJSON, len(res.Scores)),
		Stats: PPRStatsJSON{
			Rmax:       res.Stats.Rmax,
			Residual:   res.Stats.Residual,
			Walks:      res.Stats.Walks,
			Pushed:     res.Stats.Pushed,
			Candidates: res.Stats.Candidates,
			UsedIndex:  res.Stats.UsedIndex,
			PushUs:     res.Stats.PushTime.Microseconds(),
			WalkUs:     res.Stats.WalkTime.Microseconds(),
		},
	}
	for i, s := range res.Scores {
		resp.Scores[i] = NeighborJSON{Node: s.Node, Score: s.Score}
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeQueryError maps Searcher errors onto HTTP statuses: the typed
// validation sentinels are the client's fault, cancellation means the
// server (or client) went away mid-query, anything else is a 500.
func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, nrp.ErrInvalidK) || errors.Is(err, nrp.ErrNodeOutOfRange),
		errors.Is(err, nrp.ErrEmptySeedSet) || errors.Is(err, nrp.ErrInvalidAlpha) || errors.Is(err, nrp.ErrInvalidEpsilon):
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, "query cancelled: "+err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// Serve runs an HTTP server on ln until ctx is cancelled, then drains
// in-flight requests for up to drain before forcing connections closed.
// It returns nil on a clean (or drained) shutdown.
func Serve(ctx context.Context, ln net.Listener, h http.Handler, drain time.Duration) error {
	return serveHTTP(ctx, ln, h, drain, nil)
}

// Serve runs sv's handler on ln until ctx is cancelled, then flips the
// server into drain mode (new requests shed with 503, the drain gauge
// raised) while in-flight requests run to completion, for up to drain
// before forcing connections closed.
func (sv *Server) Serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	return serveHTTP(ctx, ln, sv.Handler(), drain, sv.BeginDrain)
}

func serveHTTP(ctx context.Context, ln net.Listener, h http.Handler, drain time.Duration, onDrain func()) error {
	srv := &http.Server{
		Handler: h,
		// Detach request contexts from ctx so that cancelling ctx starts
		// the drain without aborting in-flight queries; Shutdown waits for
		// them, and only a drain timeout force-closes their connections.
		BaseContext: func(net.Listener) context.Context { return context.WithoutCancel(ctx) },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	if onDrain != nil {
		onDrain()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
		return fmt.Errorf("serve: drain timed out: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
