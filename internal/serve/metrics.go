package serve

import (
	"runtime/debug"
	"time"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/telemetry"
)

// Metrics is the server's telemetry surface, exposed at GET /metrics in
// Prometheus text format. Every Server owns one registry; cmd/nrpserve
// reaches it through Server.Metrics to record events that happen outside
// the HTTP handlers (the background refresh loop).
type Metrics struct {
	reg *telemetry.Registry

	requests    *telemetry.CounterVec   // nrp_http_requests_total{endpoint,code}
	latency     *telemetry.HistogramVec // nrp_http_request_duration_seconds{endpoint}
	inflight    *telemetry.Gauge        // nrp_http_inflight_requests
	drainGauge  *telemetry.Gauge        // nrp_http_draining
	rateLimited *telemetry.Counter      // nrp_http_rate_limited_total

	batchSize *telemetry.Histogram // nrp_topk_batch_size

	coalesceBatches   *telemetry.Counter   // nrp_coalesce_batches_total
	coalesceRequests  *telemetry.Counter   // nrp_coalesce_requests_total
	coalesceBatchSize *telemetry.Histogram // nrp_coalesce_batch_size

	refreshes  *telemetry.CounterVec // nrp_index_refreshes_total{mode}
	refreshDur *telemetry.Histogram  // nrp_index_refresh_duration_seconds
}

// newMetrics registers the full metric surface for sv. The live-index
// families (swap count, pending updates, refresh lag) only exist on live
// servers; a static snapshot server has no refresh lifecycle to report.
func newMetrics(sv *Server) *Metrics {
	reg := telemetry.NewRegistry()
	m := &Metrics{
		reg: reg,
		requests: reg.CounterVec("nrp_http_requests_total",
			"HTTP requests by endpoint and status code.", "endpoint", "code"),
		latency: reg.HistogramVec("nrp_http_request_duration_seconds",
			"Request latency in seconds by endpoint.", telemetry.DefBuckets, "endpoint"),
		inflight: reg.Gauge("nrp_http_inflight_requests",
			"Requests currently being served."),
		drainGauge: reg.Gauge("nrp_http_draining",
			"1 while the server is draining (new requests get 503), else 0."),
		rateLimited: reg.Counter("nrp_http_rate_limited_total",
			"Requests rejected with 429 by the per-client rate limiter."),
		batchSize: reg.Histogram("nrp_topk_batch_size",
			"Number of source nodes per /v1/topk request.", telemetry.SizeBuckets),
		coalesceBatches: reg.Counter("nrp_coalesce_batches_total",
			"Coalesced TopKMany passes executed."),
		coalesceRequests: reg.Counter("nrp_coalesce_requests_total",
			"Single-source /v1/topk requests served through the coalescer."),
		coalesceBatchSize: reg.Histogram("nrp_coalesce_batch_size",
			"Requests aggregated into one coalesced TopKMany pass.", telemetry.SizeBuckets),
		refreshes: reg.CounterVec("nrp_index_refreshes_total",
			"Index refreshes by outcome mode (incremental, full, skipped).", "mode"),
		refreshDur: reg.Histogram("nrp_index_refresh_duration_seconds",
			"Wall time of index refreshes.", telemetry.DefBuckets),
	}

	version, revision := buildInfo()
	reg.ConstGauge("nrp_build_info",
		"Build metadata; value is always 1.",
		[]string{"version", "revision", "backend"},
		[]string{version, revision, sv.cfg.Backend})
	reg.GaugeFunc("nrp_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(sv.start).Seconds() })
	reg.GaugeFunc("nrp_index_nodes", "Number of indexed nodes.",
		func() float64 { return float64(sv.searcher.N()) })

	if li := sv.live; li != nil {
		reg.CounterFunc("nrp_index_swaps_total",
			"Times the serving index was rebuilt and atomically swapped in.",
			func() float64 { return float64(li.Swaps()) })
		reg.GaugeFunc("nrp_index_pending_updates",
			"Edge updates applied since the serving index was last refreshed.",
			func() float64 { return float64(li.Pending()) })
		reg.GaugeFunc("nrp_index_refresh_lag_seconds",
			"Seconds since the current serving index was installed.",
			func() float64 { return time.Since(li.LastSwap()).Seconds() })
	}

	if pe := sv.cfg.PPR; pe != nil {
		reg.CounterFunc("nrp_fora_workspace_builds_total",
			"O(n) PPR query workspaces constructed (sync.Pool misses).",
			func() float64 { return float64(pe.Counters().WorkspaceBuilds) })
		reg.CounterFunc("nrp_fora_walks_total",
			"Monte Carlo walks run across all PPR queries.",
			func() float64 { return float64(pe.Counters().WalksRun) })
		reg.CounterFunc("nrp_fora_walk_index_hits_total",
			"Walk endpoints served from cached walk-index rows.",
			func() float64 { return float64(pe.Counters().WalkIndex.Hits) })
		reg.CounterFunc("nrp_fora_walk_index_stale_walks_total",
			"Walks simulated live because their start node was stale.",
			func() float64 { return float64(pe.Counters().WalkIndex.StaleWalks) })
		reg.CounterFunc("nrp_fora_walk_index_invalidated_total",
			"Walk-index nodes marked stale after edge updates.",
			func() float64 { return float64(pe.Counters().WalkIndex.Invalidated) })
		reg.CounterFunc("nrp_fora_walk_index_repaired_total",
			"Walk-index nodes re-walked back to the fast path.",
			func() float64 { return float64(pe.Counters().WalkIndex.Repaired) })
		reg.GaugeFunc("nrp_fora_walk_index_stale_pending",
			"Invalidated walk-index nodes currently awaiting repair.",
			func() float64 { return float64(pe.Counters().WalkIndexStalePending) })
	}
	return m
}

// ObserveRefresh records one index refresh: its outcome mode and wall
// time. The HTTP handler calls it for /v1/refresh; cmd/nrpserve calls it
// from the periodic background refresh loop.
func (m *Metrics) ObserveRefresh(st *nrp.RefreshStats) {
	m.refreshes.With(string(st.Mode)).Inc()
	m.refreshDur.Observe(st.Wall.Seconds())
}

// Registry exposes the underlying registry for callers that want to
// register additional process-level metrics on the same /metrics page.
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

// buildInfo extracts the module version and VCS revision embedded by the
// go toolchain. Both degrade to "unknown" under plain `go test`.
func buildInfo() (version, revision string) {
	version, revision = "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
			if len(revision) > 12 {
				revision = revision[:12]
			}
		}
	}
	return
}
