package serve

import (
	"sync"
	"time"
)

// maxTrackedClients bounds the limiter's memory: when the client table
// grows past this, buckets idle long enough to have fully refilled are
// dropped (rejoining at full burst, exactly as if they were retained).
const maxTrackedClients = 4096

// rateLimiter is a per-client token bucket: each client accrues `rate`
// tokens per second up to `burst`, and each request spends one. Clients
// are keyed by source IP.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time // injectable for tests

	mu      sync.Mutex
	clients map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = int(rate)
		if burst < 1 {
			burst = 1
		}
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		clients: make(map[string]*bucket),
	}
}

// allow spends one token for key. When the bucket is empty it returns
// ok=false and how long until the next token accrues (the Retry-After
// hint).
func (rl *rateLimiter) allow(key string) (retry time.Duration, ok bool) {
	now := rl.now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.clients[key]
	if b == nil {
		if len(rl.clients) >= maxTrackedClients {
			rl.evictLocked(now)
		}
		b = &bucket{tokens: rl.burst, last: now}
		rl.clients[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * rl.rate
		if b.tokens > rl.burst {
			b.tokens = rl.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return time.Duration((1 - b.tokens) / rl.rate * float64(time.Second)), false
}

// evictLocked drops buckets that have been idle long enough to refill
// completely — forgetting them is behavior-preserving.
func (rl *rateLimiter) evictLocked(now time.Time) {
	full := time.Duration(rl.burst / rl.rate * float64(time.Second))
	for k, b := range rl.clients {
		if now.Sub(b.last) >= full {
			delete(rl.clients, k)
		}
	}
}
