package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/telemetry"
)

func mustUnmarshal(t *testing.T, body []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("unmarshal %q: %v", body, err)
	}
}

// testFullServer builds a live server with PPR enabled, so every /v1
// endpoint is exercisable.
func testFullServer(t *testing.T) *Server {
	t.Helper()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 150, M: 900, Communities: 4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 16
	dyn, err := nrp.NewDynamicEmbedding(context.Background(), g, opt, nrp.DynamicConfig{
		Policy: nrp.RefreshIncremental,
	})
	if err != nil {
		t.Fatal(err)
	}
	live, err := nrp.NewLiveIndex(dyn, nrp.WithBackend(nrp.BackendExact))
	if err != nil {
		t.Fatal(err)
	}
	pe, err := nrp.NewPPREngine(g, nrp.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	return NewLiveServer(live, Config{Backend: "exact", PPR: pe})
}

// TestMetricsEndpointCoversLifecycle drives all six /v1 endpoints and
// asserts GET /metrics afterwards serves valid Prometheus text (checked
// with the strict parser) covering each of them, plus the index
// lifecycle families.
func TestMetricsEndpointCoversLifecycle(t *testing.T) {
	sv := testFullServer(t)
	h := sv.Handler()

	doJSON(t, h, http.MethodGet, "/v1/healthz", nil)
	doJSON(t, h, http.MethodGet, "/v1/topk?u=3&k=5", nil)
	doJSON(t, h, http.MethodPost, "/v1/topk", TopKRequest{Us: []int{1, 2, 3}, K: 4})
	doJSON(t, h, http.MethodPost, "/v1/score", ScoreRequest{Pairs: [][2]int{{0, 1}}})
	doJSON(t, h, http.MethodPost, "/v1/ppr", PPRRequest{Seeds: []int{5}, K: 3})
	doJSON(t, h, http.MethodPost, "/v1/update", UpdateRequest{Insert: [][2]int{{0, 149}}})
	doJSON(t, h, http.MethodPost, "/v1/refresh", struct{}{})
	// One client error, so the 400 code label exists too.
	if rec, _ := doJSON(t, h, http.MethodGet, "/v1/topk?u=99999&k=5", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad topk status %d", rec.Code)
	}

	rec, body := doJSON(t, h, http.MethodGet, "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d: %s", rec.Code, body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	samples, err := telemetry.ParseText(string(body))
	if err != nil {
		t.Fatalf("metrics output is not valid Prometheus text: %v\n%s", err, body)
	}

	// Request counts for all six endpoints.
	for _, ep := range []string{"healthz", "topk", "score", "ppr", "update", "refresh"} {
		key := `nrp_http_requests_total{endpoint="` + ep + `",code="200"}`
		if samples[key] < 1 {
			t.Errorf("missing request count for %s: %s = %v", ep, key, samples[key])
		}
	}
	if samples[`nrp_http_requests_total{endpoint="topk",code="400"}`] != 1 {
		t.Error("400 on topk not counted")
	}
	// Latency histogram: the p99 source. Two 200s plus one 400 on topk.
	if got := samples[`nrp_http_request_duration_seconds_count{endpoint="topk"}`]; got != 3 {
		t.Errorf("topk latency count = %v, want 3", got)
	}
	// Quiescent server: nothing in flight (the /metrics request itself is
	// rendered before its own decrement, so it reports 1).
	if got := samples[`nrp_http_inflight_requests`]; got != 1 {
		t.Errorf("inflight during scrape = %v, want 1", got)
	}
	if got := samples[`nrp_http_draining`]; got != 0 {
		t.Errorf("draining = %v, want 0", got)
	}
	// Index lifecycle: one update pending-then-refreshed, one swap.
	if got := samples[`nrp_index_swaps_total`]; got != 1 {
		t.Errorf("swaps = %v, want 1", got)
	}
	if got := samples[`nrp_index_pending_updates`]; got != 0 {
		t.Errorf("pending updates = %v, want 0", got)
	}
	if _, ok := samples[`nrp_index_refresh_lag_seconds`]; !ok {
		t.Error("refresh lag gauge missing")
	}
	if got := samples[`nrp_index_refreshes_total{mode="incremental"}`]; got != 1 {
		t.Errorf("refreshes{incremental} = %v, want 1", got)
	}
	if got := samples[`nrp_index_refresh_duration_seconds_count`]; got != 1 {
		t.Errorf("refresh duration count = %v, want 1", got)
	}
	// Batch sizes observed for the GET (1), the POST batch (3), and the
	// bad-u GET (1, observed before the backend rejects it): 3 samples.
	if got := samples[`nrp_topk_batch_size_count`]; got != 3 {
		t.Errorf("topk batch size count = %v, want 3", got)
	}
	if got := samples[`nrp_index_nodes`]; got != 150 {
		t.Errorf("index nodes = %v, want 150", got)
	}
	// Build info renders with value 1.
	found := false
	for k, v := range samples {
		if strings.HasPrefix(k, "nrp_build_info{") && v == 1 {
			found = true
		}
	}
	if !found {
		t.Error("nrp_build_info missing")
	}
	if _, ok := samples[`nrp_uptime_seconds`]; !ok {
		t.Error("uptime gauge missing")
	}
	// FORA engine counters: the /v1/ppr request above built at least one
	// query workspace; the walk-index families render at zero (no index
	// attached) rather than disappearing.
	if got := samples[`nrp_fora_workspace_builds_total`]; got < 1 {
		t.Errorf("fora workspace builds = %v, want ≥ 1", got)
	}
	for _, name := range []string{
		"nrp_fora_walks_total",
		"nrp_fora_walk_index_hits_total",
		"nrp_fora_walk_index_stale_walks_total",
		"nrp_fora_walk_index_invalidated_total",
		"nrp_fora_walk_index_repaired_total",
		"nrp_fora_walk_index_stale_pending",
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("%s missing from /metrics", name)
		}
	}
}

func TestHealthzBuildInfo(t *testing.T) {
	sv := testFullServer(t)
	h := sv.Handler()
	rec, body := doJSON(t, h, http.MethodGet, "/v1/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var hz HealthzResponse
	mustUnmarshal(t, body, &hz)
	if hz.Version == "" || hz.Revision == "" {
		t.Fatalf("healthz missing build info: %+v", hz)
	}
	if !hz.PPR {
		t.Fatalf("healthz must report ppr enabled: %+v", hz)
	}
	if hz.UptimeSeconds < 0 {
		t.Fatalf("negative uptime: %+v", hz)
	}
}
