package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/nrp-embed/nrp"
)

// stubSearcher satisfies nrp.Searcher for servers whose tests exercise
// only /v1/ppr — it skips the embedding build, which matters for the
// large-graph allocation test.
type stubSearcher struct{ n int }

func (s stubSearcher) TopK(context.Context, int, int) ([]nrp.Neighbor, error) { return nil, nil }
func (s stubSearcher) TopKMany(context.Context, []int, int) ([]nrp.Result, error) {
	return nil, nil
}
func (s stubSearcher) ScoreMany(context.Context, []nrp.Pair) ([]float64, error) { return nil, nil }
func (s stubSearcher) N() int                                                   { return s.n }

func testPPRServer(t *testing.T, n, m int, cfg Config) http.Handler {
	t.Helper()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: n, M: m, Communities: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	pe, err := nrp.NewPPREngine(g, nrp.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg.PPR = pe
	return NewServer(stubSearcher{n: n}, cfg).Handler()
}

func TestPPREndpoint(t *testing.T) {
	h := testPPRServer(t, 300, 1500, Config{})

	rec, body := doJSON(t, h, http.MethodPost, "/v1/ppr", PPRRequest{Seeds: []int{1, 2, 250}, K: 7})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp PPRResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.K != 7 || len(resp.Scores) != 7 {
		t.Fatalf("got %d scores with k=%d, want 7", len(resp.Scores), resp.K)
	}
	if !sort.SliceIsSorted(resp.Scores, func(i, j int) bool {
		return resp.Scores[i].Score > resp.Scores[j].Score
	}) {
		t.Fatalf("scores not sorted descending: %+v", resp.Scores)
	}
	if resp.Stats.Rmax <= 0 || resp.Stats.Candidates == 0 {
		t.Fatalf("stats not populated: %+v", resp.Stats)
	}

	// k defaults to 10 when omitted.
	rec, body = doJSON(t, h, http.MethodPost, "/v1/ppr", PPRRequest{Seeds: []int{0}})
	if rec.Code != http.StatusOK {
		t.Fatalf("default-k status %d: %s", rec.Code, body)
	}
	resp = PPRResponse{}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Scores) != 10 {
		t.Fatalf("default k returned %d scores, want 10", len(resp.Scores))
	}

	// Per-query epsilon/alpha overrides are accepted.
	if rec, body := doJSON(t, h, http.MethodPost, "/v1/ppr", PPRRequest{Seeds: []int{5}, K: 3, Alpha: 0.3, Epsilon: 0.25}); rec.Code != http.StatusOK {
		t.Fatalf("override status %d: %s", rec.Code, body)
	}
}

func TestPPREndpointValidation(t *testing.T) {
	h := testPPRServer(t, 200, 900, Config{MaxK: 50, MaxBatch: 4})
	cases := []struct {
		name string
		body PPRRequest
	}{
		{"empty seed set", PPRRequest{K: 5}},
		{"out-of-range seed", PPRRequest{Seeds: []int{200}, K: 5}},
		{"negative seed", PPRRequest{Seeds: []int{-1}, K: 5}},
		{"negative k", PPRRequest{Seeds: []int{1}, K: -3}},
		{"k over MaxK", PPRRequest{Seeds: []int{1}, K: 51}},
		{"seeds over MaxBatch", PPRRequest{Seeds: []int{1, 2, 3, 4, 5}, K: 5}},
		{"bad alpha", PPRRequest{Seeds: []int{1}, K: 5, Alpha: 1.5}},
		{"bad epsilon", PPRRequest{Seeds: []int{1}, K: 5, Epsilon: -0.1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, body := doJSON(t, h, http.MethodPost, "/v1/ppr", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d: %s", rec.Code, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("error body %q (%v)", body, err)
			}
		})
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/ppr", strings.NewReader("{nope"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d", rec.Code)
	}
	if rec, _ := doJSON(t, h, http.MethodGet, "/v1/ppr", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET ppr status %d", rec.Code)
	}
}

func TestPPRDisabledConflicts(t *testing.T) {
	s, _ := testSearcher(t)
	h := NewServer(s, Config{}).Handler()
	rec, body := doJSON(t, h, http.MethodPost, "/v1/ppr", PPRRequest{Seeds: []int{1}, K: 5})
	if rec.Code != http.StatusConflict {
		t.Fatalf("ppr on a server without a graph: status %d: %s", rec.Code, body)
	}
}

// TestPPRHandlerReusesWorkspaces is the serving-layer allocation
// assertion: steady /v1/ppr traffic must not allocate O(n) per request —
// the engine's sync.Pool keeps one workspace hot, and the handler only
// pays for JSON plumbing and the O(k) response. On this 20k-node graph a
// single workspace build costs well over 1 MB, so the per-request budget
// below fails loudly if pooling ever regresses.
func TestPPRHandlerReusesWorkspaces(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool intentionally drops items under the race detector")
	}
	const n = 20000
	h := testPPRServer(t, n, 60000, Config{})

	do := func() {
		rec, body := doJSON(t, h, http.MethodPost, "/v1/ppr", PPRRequest{Seeds: []int{3, 7}, K: 10})
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, body)
		}
	}
	// Warm up: first request builds the workspace, a few more settle the
	// JSON encoder and transport scratch.
	for i := 0; i < 5; i++ {
		do()
	}

	const requests = 50
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < requests; i++ {
		do()
	}
	runtime.ReadMemStats(&after)
	perReq := (after.TotalAlloc - before.TotalAlloc) / requests
	// An O(n) allocation per request would be >= 160 KB (one float64
	// array) — budget far below that, far above JSON scratch.
	if perReq > 64*1024 {
		t.Fatalf("/v1/ppr allocates %d B per request; workspace pooling is broken", perReq)
	}
}

// TestPPRQueryDuringUpdateHammer drives concurrent /v1/ppr queries while
// /v1/update batches mutate the live graph — the race-detector run of
// this test is the proof that PPR-on-RCU-snapshots is data-race free, and
// every query must succeed mid-update.
func TestPPRQueryDuringUpdateHammer(t *testing.T) {
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 150, M: 900, Communities: 4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 16
	dyn, err := nrp.NewDynamicEmbedding(context.Background(), g, opt, nrp.DynamicConfig{})
	if err != nil {
		t.Fatal(err)
	}
	live, err := nrp.NewLiveIndex(dyn, nrp.WithBackend(nrp.BackendExact))
	if err != nil {
		t.Fatal(err)
	}
	pe, err := nrp.NewPPREngine(dyn.Graph(), nrp.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	sv := NewLiveServer(live, Config{Backend: "exact", PPR: pe})
	h := sv.Handler()

	var (
		stop     atomic.Bool
		queries  atomic.Int64
		failures atomic.Int64
	)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Minimum iteration floor: on a single core the update loop can
			// finish before a worker is first scheduled.
			for i := 0; i < 10 || !stop.Load(); i++ {
				rec, body := doJSON(t, h, http.MethodPost, "/v1/ppr", PPRRequest{
					Seeds: []int{(w*31 + i) % 150, (w*17 + 2*i) % 150},
					K:     5,
				})
				queries.Add(1)
				if rec.Code != http.StatusOK {
					failures.Add(1)
					t.Errorf("ppr during update: status %d: %s", rec.Code, body)
					return
				}
			}
		}(w)
	}

	for round := 0; round < 8; round++ {
		req := UpdateRequest{
			Insert: [][2]int{{round, 100 + round}, {round + 1, 120 + round}},
		}
		if round > 0 {
			req.Remove = [][2]int{{round - 1, 100 + round - 1}}
		}
		rec, body := doJSON(t, h, http.MethodPost, "/v1/update", req)
		if rec.Code != http.StatusOK {
			t.Fatalf("update round %d: status %d: %s", round, rec.Code, body)
		}
	}
	stop.Store(true)
	wg.Wait()
	if queries.Load() == 0 {
		t.Fatal("no PPR queries ran during the hammer")
	}
	if failures.Load() != 0 {
		t.Fatalf("%d of %d PPR queries failed during live updates", failures.Load(), queries.Load())
	}
}
