package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nrp-embed/nrp"
)

func testSearcher(t *testing.T) (nrp.Searcher, *nrp.Embedding) {
	t.Helper()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 120, M: 700, Communities: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 16
	emb, _, err := nrp.EmbedCtx(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	s, err := nrp.BuildIndex(emb, nrp.WithBackend(nrp.BackendQuantized), nrp.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	return s, emb
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func TestHealthz(t *testing.T) {
	s, _ := testSearcher(t)
	h := NewServer(s, Config{Backend: "quantized"}).Handler()
	rec, body := doJSON(t, h, http.MethodGet, "/v1/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp HealthzResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.Nodes != 120 || resp.Backend != "quantized" {
		t.Fatalf("healthz %+v", resp)
	}
	if rec, _ := doJSON(t, h, http.MethodPost, "/v1/healthz", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST healthz status %d", rec.Code)
	}
}

func TestTopKGetAndPost(t *testing.T) {
	s, _ := testSearcher(t)
	h := NewServer(s, Config{Backend: "quantized"}).Handler()

	rec, body := doJSON(t, h, http.MethodGet, "/v1/topk?u=5&k=3", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET status %d: %s", rec.Code, body)
	}
	var resp TopKResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].U != 5 || len(resp.Results[0].Neighbors) != 3 {
		t.Fatalf("GET response %+v", resp)
	}
	if resp.Results[0].Stats != nil {
		t.Fatal("stats present without ?stats=1")
	}

	// ?stats=1 opts into the per-query work counters.
	rec, body = doJSON(t, h, http.MethodGet, "/v1/topk?u=5&k=3&stats=1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET stats status %d: %s", rec.Code, body)
	}
	resp = TopKResponse{}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Stats == nil || resp.Results[0].Stats.Scanned == 0 {
		t.Fatalf("stats not populated with ?stats=1: %s", body)
	}

	rec, body = doJSON(t, h, http.MethodPost, "/v1/topk", TopKRequest{Us: []int{1, 2, 3}, K: 4})
	if rec.Code != http.StatusOK {
		t.Fatalf("POST status %d: %s", rec.Code, body)
	}
	resp = TopKResponse{}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("batch returned %d results", len(resp.Results))
	}
	for i, want := range []int{1, 2, 3} {
		if resp.Results[i].U != want || len(resp.Results[i].Neighbors) != 4 {
			t.Fatalf("batch result %d: %+v", i, resp.Results[i])
		}
	}
}

func TestTopKBadRequests(t *testing.T) {
	s, _ := testSearcher(t)
	h := NewServer(s, Config{MaxK: 50, MaxBatch: 4}).Handler()
	u := 3
	cases := []struct {
		name   string
		method string
		path   string
		body   any
	}{
		{"non-integer u", http.MethodGet, "/v1/topk?u=zip", nil},
		{"non-integer k", http.MethodGet, "/v1/topk?u=1&k=zap", nil},
		{"neither u nor us", http.MethodPost, "/v1/topk", TopKRequest{K: 5}},
		{"both u and us", http.MethodPost, "/v1/topk", TopKRequest{U: &u, Us: []int{1}, K: 5}},
		{"k=0", http.MethodPost, "/v1/topk", TopKRequest{U: &u, K: 0}},
		{"k over MaxK", http.MethodPost, "/v1/topk", TopKRequest{U: &u, K: 51}},
		{"out-of-range node", http.MethodGet, "/v1/topk?u=120&k=5", nil},
		{"negative node", http.MethodGet, "/v1/topk?u=-1&k=5", nil},
		{"batch over MaxBatch", http.MethodPost, "/v1/topk", TopKRequest{Us: []int{1, 2, 3, 4, 5}, K: 5}},
		{"malformed json", http.MethodPost, "/v1/topk", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rec *httptest.ResponseRecorder
			var body []byte
			if tc.name == "malformed json" {
				req := httptest.NewRequest(tc.method, tc.path, strings.NewReader("{nope"))
				r := httptest.NewRecorder()
				h.ServeHTTP(r, req)
				rec, body = r, r.Body.Bytes()
			} else {
				rec, body = doJSON(t, h, tc.method, tc.path, tc.body)
			}
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d: %s", rec.Code, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("error body %q (%v)", body, err)
			}
		})
	}
	if rec, _ := doJSON(t, h, http.MethodDelete, "/v1/topk", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status %d", rec.Code)
	}
}

func TestScore(t *testing.T) {
	s, emb := testSearcher(t)
	h := NewServer(s, Config{}).Handler()
	rec, body := doJSON(t, h, http.MethodPost, "/v1/score", ScoreRequest{Pairs: [][2]int{{0, 1}, {5, 9}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp ScoreResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Scores) != 2 || resp.Scores[0] != emb.Score(0, 1) || resp.Scores[1] != emb.Score(5, 9) {
		t.Fatalf("scores %+v", resp.Scores)
	}

	if rec, _ := doJSON(t, h, http.MethodPost, "/v1/score", ScoreRequest{Pairs: [][2]int{{0, 500}}}); rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range pair status %d", rec.Code)
	}
	if rec, _ := doJSON(t, h, http.MethodGet, "/v1/score", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET score status %d", rec.Code)
	}
}

// TestServeGracefulDrain boots a real listener, verifies it serves, then
// cancels the context and requires Serve to return cleanly within the
// drain window.
func TestServeGracefulDrain(t *testing.T) {
	s, _ := testSearcher(t)
	h := NewServer(s, Config{Backend: "quantized"}).Handler()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, ln, h, 5*time.Second) }()

	url := fmt.Sprintf("http://%s/v1/topk?u=2&k=4", ln.Addr())
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live query status %d: %s", resp.StatusCode, raw)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("server still accepting connections after drain")
	}
}

// --- live server (update/refresh) tests ----------------------------------

func testLiveServer(t *testing.T) (*Server, *nrp.LiveIndex) {
	t.Helper()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 150, M: 900, Communities: 4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 16
	dyn, err := nrp.NewDynamicEmbedding(context.Background(), g, opt, nrp.DynamicConfig{
		Policy: nrp.RefreshIncremental,
	})
	if err != nil {
		t.Fatal(err)
	}
	live, err := nrp.NewLiveIndex(dyn, nrp.WithBackend(nrp.BackendExact))
	if err != nil {
		t.Fatal(err)
	}
	return NewLiveServer(live, Config{Backend: "exact"}), live
}

func TestUpdateRefreshEndpoints(t *testing.T) {
	sv, live := testLiveServer(t)
	h := sv.Handler()

	// Healthz reports the live flag.
	rec, body := doJSON(t, h, http.MethodGet, "/v1/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d: %s", rec.Code, body)
	}
	var hz HealthzResponse
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if !hz.Live || hz.PendingUpdates == nil || *hz.PendingUpdates != 0 {
		t.Fatalf("healthz %+v, want live with pending_updates present and 0", hz)
	}
	if !strings.Contains(string(body), `"pending_updates":0`) {
		t.Fatalf("healthz must serialize the healthy zero explicitly: %s", body)
	}

	// Apply a batch of insertions.
	rec, body = doJSON(t, h, http.MethodPost, "/v1/update", UpdateRequest{
		Insert: [][2]int{{0, 149}, {1, 148}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("update status %d: %s", rec.Code, body)
	}
	var ur UpdateResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Applied != 2 || ur.Pending != 2 {
		t.Fatalf("update response %+v, want 2 applied 2 pending", ur)
	}

	// Refresh swaps the index.
	before := live.Searcher()
	rec, body = doJSON(t, h, http.MethodPost, "/v1/refresh", struct{}{})
	if rec.Code != http.StatusOK {
		t.Fatalf("refresh status %d: %s", rec.Code, body)
	}
	var rr RefreshResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Mode != "incremental" || rr.TouchedNodes == 0 || rr.Nodes != 150 {
		t.Fatalf("refresh response %+v", rr)
	}
	if live.Searcher() == before {
		t.Fatal("refresh endpoint did not swap the index")
	}

	// Queries still served.
	if rec, body := doJSON(t, h, http.MethodGet, "/v1/topk?u=0&k=5", nil); rec.Code != http.StatusOK {
		t.Fatalf("topk after refresh: status %d: %s", rec.Code, body)
	}
}

func TestUpdateEndpointValidation(t *testing.T) {
	sv, _ := testLiveServer(t)
	h := sv.Handler()
	cases := []struct {
		name string
		body any
		want int
	}{
		{"empty batch", UpdateRequest{}, http.StatusBadRequest},
		{"out of range", UpdateRequest{Insert: [][2]int{{0, 9999}}}, http.StatusBadRequest},
		{"negative id", UpdateRequest{Remove: [][2]int{{-1, 3}}}, http.StatusBadRequest},
		{"id wraps int32", UpdateRequest{Insert: [][2]int{{1 << 32, 5}}}, http.StatusBadRequest},
		{"oversized batch", UpdateRequest{Insert: make([][2]int, 5000)}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if rec, body := doJSON(t, h, http.MethodPost, "/v1/update", tc.body); rec.Code != tc.want {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.want, body)
			}
		})
	}
	if rec, _ := doJSON(t, h, http.MethodGet, "/v1/update", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET update status %d", rec.Code)
	}
	if rec, _ := doJSON(t, h, http.MethodGet, "/v1/refresh", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET refresh status %d", rec.Code)
	}
	// Bad JSON body.
	req := httptest.NewRequest(http.MethodPost, "/v1/update", strings.NewReader("{nope"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d", rec.Code)
	}
}

func TestUpdateOnStaticIndexConflicts(t *testing.T) {
	s, _ := testSearcher(t)
	h := NewServer(s, Config{Backend: "quantized"}).Handler()
	if rec, body := doJSON(t, h, http.MethodPost, "/v1/update", UpdateRequest{Insert: [][2]int{{0, 1}}}); rec.Code != http.StatusConflict {
		t.Fatalf("static update status %d: %s", rec.Code, body)
	}
	if rec, body := doJSON(t, h, http.MethodPost, "/v1/refresh", struct{}{}); rec.Code != http.StatusConflict {
		t.Fatalf("static refresh status %d: %s", rec.Code, body)
	}
	var hz HealthzResponse
	_, body := doJSON(t, h, http.MethodGet, "/v1/healthz", nil)
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Live || hz.PendingUpdates != nil {
		t.Fatal("static server reports live state")
	}
}

// TestZeroDowntimeOverHTTP runs a real listener and hammers /v1/topk from
// several client goroutines while update+refresh cycles swap the index:
// every query must come back 200.
func TestZeroDowntimeOverHTTP(t *testing.T) {
	sv, _ := testLiveServer(t)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	var (
		stop     atomic.Bool
		queries  atomic.Int64
		failures atomic.Int64
	)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; !stop.Load(); i++ {
				resp, err := client.Get(fmt.Sprintf("%s/v1/topk?u=%d&k=5", ts.URL, (w*37+i)%150))
				queries.Add(1)
				if err != nil {
					failures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}

	client := ts.Client()
	for round := 0; round < 5; round++ {
		body, _ := json.Marshal(UpdateRequest{Insert: [][2]int{{round, 100 + round}, {round + 1, 120 + round}}})
		resp, err := client.Post(ts.URL+"/v1/update", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update round %d: status %d", round, resp.StatusCode)
		}
		resp, err = client.Post(ts.URL+"/v1/refresh", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("refresh round %d: status %d", round, resp.StatusCode)
		}
	}
	stop.Store(true)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d queries failed during live swaps", failures.Load(), queries.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("no queries ran")
	}
}
