package serve

import (
	"context"
	"sync"
	"time"

	"github.com/nrp-embed/nrp"
)

// defaultGatherWindow is how long a leader that finds itself alone waits
// for company before scanning. Closed-loop clients synchronize on round
// boundaries — every follower gets its response at the same instant,
// loops, and re-sends — so the first re-arrival would otherwise lead a
// round of one and the batches (and the dedup win) collapse. The window
// is far below a scan's cost at serving scale, so the latency price of a
// genuinely lone request is small; it is also the knob Config exposes as
// CoalesceWindow.
const defaultGatherWindow = 250 * time.Microsecond

// coalescer aggregates concurrent single-source /v1/topk calls into one
// TopKMany pass through the batched kernel. The first arriver becomes the
// round leader: it drains the queue, deduplicates sources (hot keys under
// skewed traffic collapse into one scan), executes one batched query at
// the round's max k, and fans results back out. Leadership then hands off
// to the first caller queued during the round, so no request serves more
// than one round of other callers' work.
//
// Callers must pre-validate u and k: a coalesced batch is executed as one
// query, and per-call validation errors must not fail innocent neighbors
// in the same round.
type coalescer struct {
	searcher nrp.Searcher
	metrics  *Metrics
	window   time.Duration // gather window for lone leaders; <=0 disables

	mu     sync.Mutex
	queue  []*coalesceCall
	active bool // a leader is running or a handoff is pending
}

type coalesceCall struct {
	u, k int
	res  nrp.Result
	err  error
	done chan struct{} // closed once res/err are set
	lead chan struct{} // receives when this call must lead the next round
}

func newCoalescer(s nrp.Searcher, m *Metrics, window time.Duration) *coalescer {
	if window == 0 {
		window = defaultGatherWindow
	}
	return &coalescer{searcher: s, metrics: m, window: window}
}

// topK answers one single-source query through the coalescer.
//
// The batch runs detached from any one caller's context (a leader whose
// client disconnects mid-round must not fail its followers); rounds are
// one index scan, so the unbounded context is short-lived. For the same
// reason followers wait for the round to finish rather than honoring
// cancellation — abandoning the queue could strand a pending leadership
// handoff.
func (c *coalescer) topK(ctx context.Context, u, k int) (nrp.Result, error) {
	cl := &coalesceCall{u: u, k: k, done: make(chan struct{}), lead: make(chan struct{}, 1)}
	c.mu.Lock()
	c.queue = append(c.queue, cl)
	isLeader := !c.active
	c.active = true
	c.mu.Unlock()

	c.metrics.coalesceRequests.Inc()
	if !isLeader {
		select {
		case <-cl.done:
			return cl.res, cl.err
		case <-cl.lead:
			// Promoted: run the round that includes this call.
		}
	}
	// A leader with no company yet pauses one gather window so the
	// concurrent callers racing toward the queue can join this round;
	// leaders promoted into a waiting batch run immediately.
	if c.window > 0 {
		c.mu.Lock()
		alone := len(c.queue) == 1
		c.mu.Unlock()
		if alone {
			time.Sleep(c.window)
		}
	}
	c.runRound(context.WithoutCancel(ctx))
	c.handoff()
	return cl.res, cl.err
}

// runRound drains the current queue and answers it with one TopKMany.
func (c *coalescer) runRound(ctx context.Context) {
	c.mu.Lock()
	batch := c.queue
	c.queue = nil
	c.mu.Unlock()

	c.metrics.coalesceBatches.Inc()
	c.metrics.coalesceBatchSize.Observe(float64(len(batch)))

	// Deduplicate sources; the batch runs at the round's max k and each
	// call truncates to its own.
	kmax := 0
	slot := make(map[int]int, len(batch))
	us := make([]int, 0, len(batch))
	for _, cl := range batch {
		if _, ok := slot[cl.u]; !ok {
			slot[cl.u] = len(us)
			us = append(us, cl.u)
		}
		if cl.k > kmax {
			kmax = cl.k
		}
	}

	results, err := c.searcher.TopKMany(ctx, us, kmax)
	for _, cl := range batch {
		if err != nil {
			cl.err = err
		} else {
			cl.res = results[slot[cl.u]]
			if len(cl.res.Neighbors) > cl.k {
				cl.res.Neighbors = cl.res.Neighbors[:cl.k]
			}
		}
		close(cl.done)
	}
}

// handoff promotes the first caller queued during the round to lead the
// next one, or marks the coalescer idle. The promoted call is guaranteed
// waiting: queued callers never leave before done or lead fires.
func (c *coalescer) handoff() {
	c.mu.Lock()
	if len(c.queue) == 0 {
		c.active = false
		c.mu.Unlock()
		return
	}
	next := c.queue[0]
	c.mu.Unlock()
	next.lead <- struct{}{}
}
