package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/nrp-embed/nrp"
)

// gateSearcher blocks every TopKMany until the gate opens, so the test
// can hold requests in flight deterministically.
type gateSearcher struct {
	nrp.Searcher
	gate    chan struct{}
	entered chan struct{}
}

func (g *gateSearcher) TopKMany(ctx context.Context, us []int, k int) ([]nrp.Result, error) {
	g.entered <- struct{}{}
	<-g.gate
	return g.Searcher.TopKMany(ctx, us, k)
}

// TestDrainUnderLoad holds requests open at the backend, flips the
// server into drain mode, and asserts the contract: in-flight requests
// complete with 200, new requests are shed with 503, health checks keep
// answering (and report draining), and the in-flight gauge returns to
// zero once the load resolves.
func TestDrainUnderLoad(t *testing.T) {
	s, _ := testSearcher(t)
	gs := &gateSearcher{Searcher: s, gate: make(chan struct{}), entered: make(chan struct{})}
	sv := NewServer(gs, Config{Backend: "quantized"})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	const inflight = 4
	errs := make(chan error, inflight)
	var wg sync.WaitGroup
	for w := 0; w < inflight; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			resp, err := ts.Client().Get(fmt.Sprintf("%s/v1/topk?u=%d&k=3", ts.URL, w))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("in-flight request %d finished %d, want 200", w, resp.StatusCode)
			}
		}(w)
	}
	for i := 0; i < inflight; i++ {
		select {
		case <-gs.entered:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d requests reached the backend", i, inflight)
		}
	}
	if got := sv.metrics.inflight.Value(); got != inflight {
		t.Fatalf("inflight gauge = %v with %d requests held", got, inflight)
	}

	sv.BeginDrain()

	// New work is shed…
	resp, err := ts.Client().Get(ts.URL + "/v1/topk?u=1&k=3")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new request during drain got %d, want 503", resp.StatusCode)
	}
	// …but health checks answer, reporting the drain.
	resp, err = ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain got %d: %s", resp.StatusCode, raw)
	}
	var hz HealthzResponse
	mustUnmarshal(t, raw, &hz)
	if !hz.Draining {
		t.Fatalf("healthz during drain: %+v, want draining=true", hz)
	}
	if got := sv.metrics.drainGauge.Value(); got != 1 {
		t.Fatalf("drain gauge = %v, want 1", got)
	}

	close(gs.gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for sv.metrics.inflight.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight gauge stuck at %v after drain", sv.metrics.inflight.Value())
		}
		time.Sleep(time.Millisecond)
	}
}
