package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/nrp-embed/nrp"
)

// TestCoalescerMatchesDirect fires concurrent single-source queries
// through the coalescer and requires byte-identical answers to direct
// TopK calls, including per-call k truncation within a shared round.
func TestCoalescerMatchesDirect(t *testing.T) {
	s, _ := testSearcher(t)
	sv := NewServer(s, Config{Coalesce: true})
	c := sv.coal

	const workers = 16
	type ans struct {
		res nrp.Result
		err error
	}
	got := make([]ans, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Overlapping sources (hot keys) and mixed k exercise dedup
			// and truncation.
			res, err := c.topK(context.Background(), w%5, 2+w%4)
			got[w] = ans{res, err}
		}(w)
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		if got[w].err != nil {
			t.Fatalf("worker %d: %v", w, got[w].err)
		}
		u, k := w%5, 2+w%4
		want, err := s.TopK(context.Background(), u, k)
		if err != nil {
			t.Fatal(err)
		}
		res := got[w].res
		if res.Source != u || len(res.Neighbors) != len(want) {
			t.Fatalf("worker %d: got %d neighbors of u=%d, want %d", w, len(res.Neighbors), res.Source, len(want))
		}
		for i := range want {
			if res.Neighbors[i].Node != want[i].Node {
				t.Fatalf("worker %d neighbor %d: got node %d, want %d", w, i, res.Neighbors[i].Node, want[i].Node)
			}
		}
	}

	// Every request went through the coalescer; rounds never exceed the
	// request count and at least one round ran.
	m := sv.metrics
	if got := m.coalesceRequests.Value(); got != workers {
		t.Fatalf("coalesce_requests_total = %v, want %d", got, workers)
	}
	batches := m.coalesceBatches.Value()
	if batches < 1 || batches > workers {
		t.Fatalf("coalesce_batches_total = %v, want in [1, %d]", batches, workers)
	}
}

// TestCoalesceOverHTTP runs the full handler path with coalescing on:
// concurrent GETs must all succeed with correct per-request answers, and
// invalid requests must fail individually without poisoning a round.
func TestCoalesceOverHTTP(t *testing.T) {
	s, _ := testSearcher(t)
	sv := NewServer(s, Config{Backend: "quantized", Coalesce: true})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	const workers = 12
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			u, k := w%4, 3
			if w == 5 {
				u = 10_000 // out of range: must 400 without failing others
			}
			resp, err := ts.Client().Get(fmt.Sprintf("%s/v1/topk?u=%d&k=%d", ts.URL, u, k))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if w == 5 {
				if resp.StatusCode != http.StatusBadRequest {
					errs <- fmt.Errorf("bad-u status %d: %s", resp.StatusCode, raw)
				}
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("worker %d status %d: %s", w, resp.StatusCode, raw)
				return
			}
			var tr TopKResponse
			if err := json.Unmarshal(raw, &tr); err != nil {
				errs <- err
				return
			}
			if len(tr.Results) != 1 || tr.Results[0].U != u || len(tr.Results[0].Neighbors) != k {
				errs <- fmt.Errorf("worker %d: unexpected response %+v", w, tr)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
