package serve

import (
	"net/http"
	"testing"
	"time"
)

// TestRateLimiterBucket drives the token bucket with a fake clock.
func TestRateLimiterBucket(t *testing.T) {
	rl := newRateLimiter(2, 2) // 2 rps, burst 2
	now := time.Unix(1000, 0)
	rl.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if _, ok := rl.allow("a"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	retry, ok := rl.allow("a")
	if ok {
		t.Fatal("request beyond burst allowed")
	}
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retry hint %v, want in (0, 500ms]", retry)
	}
	// Another client has its own bucket.
	if _, ok := rl.allow("b"); !ok {
		t.Fatal("independent client denied")
	}
	// Half a second refills one token at 2 rps.
	now = now.Add(500 * time.Millisecond)
	if _, ok := rl.allow("a"); !ok {
		t.Fatal("refilled request denied")
	}
	if _, ok := rl.allow("a"); ok {
		t.Fatal("second request after single-token refill allowed")
	}
}

func TestRateLimiterEviction(t *testing.T) {
	rl := newRateLimiter(1, 1)
	now := time.Unix(1000, 0)
	rl.now = func() time.Time { return now }
	for i := 0; i < maxTrackedClients; i++ {
		rl.allow(string(rune(i)) + "x")
	}
	if len(rl.clients) != maxTrackedClients {
		t.Fatalf("tracked %d clients", len(rl.clients))
	}
	// All buckets fully refill after 1s; the next new client triggers a
	// sweep that drops them.
	now = now.Add(2 * time.Second)
	rl.allow("fresh")
	if len(rl.clients) != 1 {
		t.Fatalf("eviction left %d clients, want 1", len(rl.clients))
	}
}

// TestRateLimitOverHandler asserts the middleware's 429 path: over-limit
// requests get Retry-After, exempt paths never shed, and the rejection
// counter moves.
func TestRateLimitOverHandler(t *testing.T) {
	s, _ := testSearcher(t)
	sv := NewServer(s, Config{RateLimit: 1, RateBurst: 1})
	h := sv.Handler()

	rec, body := doJSON(t, h, http.MethodGet, "/v1/topk?u=1&k=3", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("first request status %d: %s", rec.Code, body)
	}
	rec, body = doJSON(t, h, http.MethodGet, "/v1/topk?u=1&k=3", nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request status %d, want 429: %s", rec.Code, body)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	// Health checks and scrapes are never rate limited.
	if rec, _ := doJSON(t, h, http.MethodGet, "/v1/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz shed by limiter: %d", rec.Code)
	}
	if rec, _ := doJSON(t, h, http.MethodGet, "/metrics", nil); rec.Code != http.StatusOK {
		t.Fatalf("metrics shed by limiter: %d", rec.Code)
	}
	if got := sv.metrics.rateLimited.Value(); got != 1 {
		t.Fatalf("rate_limited_total = %v, want 1", got)
	}
}
