// Package loadgen is a closed-loop HTTP load generator for nrpserve: a
// pool of workers drives mixed topk/score/ppr/update traffic against a
// live server — optionally paced to a target rate, optionally with
// Zipf-skewed source nodes — and reports achieved QPS plus client-side
// latency quantiles per endpoint. cmd/nrpload is the CLI; the root-level
// BenchmarkServeLoad reuses it to measure the request-coalescing win for
// BENCH_serve.json.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mix is the traffic composition by endpoint. Weights are relative; they
// need not sum to 1. Endpoints the target server does not support
// (update on a static server, ppr when disabled) have their weight
// folded into TopK, with a warning on the report.
type Mix struct {
	TopK   float64
	Score  float64
	PPR    float64
	Update float64
}

// DefaultMix is read-heavy with a trickle of writes, the serving
// scenario the roadmap names.
var DefaultMix = Mix{TopK: 0.80, Score: 0.10, PPR: 0.05, Update: 0.05}

// ParseMix parses "topk=80,score=10,ppr=5,update=5" (weights are
// relative, missing endpoints are zero).
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("loadgen: mix element %q is not name=weight", part)
		}
		var w float64
		if _, err := fmt.Sscanf(val, "%g", &w); err != nil || w < 0 {
			return Mix{}, fmt.Errorf("loadgen: bad weight in %q", part)
		}
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "topk":
			m.TopK = w
		case "score":
			m.Score = w
		case "ppr":
			m.PPR = w
		case "update":
			m.Update = w
		default:
			return Mix{}, fmt.Errorf("loadgen: unknown endpoint %q in mix", name)
		}
	}
	if m.TopK+m.Score+m.PPR+m.Update <= 0 {
		return Mix{}, fmt.Errorf("loadgen: mix has no positive weight")
	}
	return m, nil
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Duration is how long to drive traffic.
	Duration time.Duration
	// Concurrency is the number of closed-loop workers.
	Concurrency int
	// TargetQPS paces the aggregate request rate; 0 drives as fast as the
	// closed loop allows.
	TargetQPS float64
	// K is the top-k per query (default 10).
	K int
	// Mix is the traffic composition (zero value: DefaultMix).
	Mix Mix
	// ZipfS skews source-node selection with a Zipf(s) law when > 1;
	// otherwise sources are uniform. Skew is what makes request
	// coalescing's hot-key dedup measurable.
	ZipfS float64
	// Seed makes the traffic reproducible.
	Seed int64
	// Client overrides the HTTP client (default: pooled transport).
	Client *http.Client
}

// EndpointStats aggregates client-observed behavior of one endpoint.
type EndpointStats struct {
	Requests int64            `json:"requests"`
	Errors   int64            `json:"transport_errors"`
	Status   map[string]int64 `json:"status,omitempty"`
	P50Us    int64            `json:"p50_us"`
	P90Us    int64            `json:"p90_us"`
	P99Us    int64            `json:"p99_us"`
}

// Report is the outcome of one load run.
type Report struct {
	DurationSec     float64 `json:"duration_sec"`
	Concurrency     int     `json:"concurrency"`
	TotalRequests   int64   `json:"total_requests"`
	AchievedQPS     float64 `json:"achieved_qps"`
	Errors5xx       int64   `json:"errors_5xx"`
	RateLimited     int64   `json:"rate_limited"`
	TransportErrors int64   `json:"transport_errors"`
	// PartialResponses counts topk 200s flagged "partial": true — answers
	// a scatter-gather router (cmd/nrprouter) served from a degraded shard
	// fleet. Always 0 against a single-node server.
	PartialResponses int64                     `json:"partial_responses,omitempty"`
	Endpoints        map[string]*EndpointStats `json:"endpoints"`
	Warnings         []string                  `json:"warnings,omitempty"`
}

// healthz is the slice of the server's health response the generator
// needs: the id space and which optional endpoints exist.
type healthz struct {
	Nodes int  `json:"nodes"`
	Live  bool `json:"live"`
	PPR   bool `json:"ppr"`
}

// sample is one completed request.
type sample struct {
	endpoint int
	us       int64
	status   int
	failed   bool // transport error
	partial  bool // topk 200 flagged "partial": true by a degraded router
}

const (
	epTopK = iota
	epScore
	epPPR
	epUpdate
	epCount
)

var epNames = [epCount]string{"topk", "score", "ppr", "update"}

// Run drives the configured load and reports. It fails only on setup
// errors (unreachable server, bad config); request-level failures are
// counted in the report for the caller to judge.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if (cfg.Mix == Mix{}) {
		cfg.Mix = DefaultMix
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive duration")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: cfg.Concurrency,
		}}
	}

	var report Report
	report.Concurrency = cfg.Concurrency

	// Probe the server: node count bounds the id space, and capability
	// flags prune the mix.
	var hz healthz
	if err := getJSON(ctx, client, cfg.BaseURL+"/v1/healthz", &hz); err != nil {
		return nil, fmt.Errorf("loadgen: probing %s: %w", cfg.BaseURL, err)
	}
	if hz.Nodes <= 1 {
		return nil, fmt.Errorf("loadgen: server reports %d nodes", hz.Nodes)
	}
	mix := cfg.Mix
	if mix.Update > 0 && !hz.Live {
		report.Warnings = append(report.Warnings,
			"server is static: update share folded into topk")
		mix.TopK += mix.Update
		mix.Update = 0
	}
	if mix.PPR > 0 && !hz.PPR {
		report.Warnings = append(report.Warnings,
			"server has no PPR engine: ppr share folded into topk")
		mix.TopK += mix.PPR
		mix.PPR = 0
	}
	total := mix.TopK + mix.Score + mix.PPR + mix.Update
	cum := [epCount]float64{
		mix.TopK / total,
		(mix.TopK + mix.Score) / total,
		(mix.TopK + mix.Score + mix.PPR) / total,
		1,
	}

	var slots atomic.Int64 // global pacing counter for TargetQPS
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	perWorker := make([][]sample, cfg.Concurrency)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			var zipf *rand.Zipf
			if cfg.ZipfS > 1 {
				zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(hz.Nodes-1))
			}
			pick := func() int {
				if zipf != nil {
					return int(zipf.Uint64())
				}
				return rng.Intn(hz.Nodes)
			}
			samples := make([]sample, 0, 4096)
			for time.Now().Before(deadline) && ctx.Err() == nil {
				if cfg.TargetQPS > 0 {
					slot := slots.Add(1) - 1
					due := start.Add(time.Duration(float64(slot) / cfg.TargetQPS * float64(time.Second)))
					if d := time.Until(due); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done(): // loop condition exits next pass
						}
					}
				}
				r := rng.Float64()
				ep := epTopK
				for ep < epCount-1 && r >= cum[ep] {
					ep++
				}
				samples = append(samples, doRequest(ctx, client, cfg, ep, pick, rng))
			}
			perWorker[w] = samples
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	byEp := make([][]int64, epCount)
	status := make([]map[string]int64, epCount)
	counts := make([]int64, epCount)
	fails := make([]int64, epCount)
	for _, samples := range perWorker {
		for _, s := range samples {
			report.TotalRequests++
			if s.failed {
				fails[s.endpoint]++
				report.TransportErrors++
				continue
			}
			counts[s.endpoint]++
			byEp[s.endpoint] = append(byEp[s.endpoint], s.us)
			if status[s.endpoint] == nil {
				status[s.endpoint] = make(map[string]int64)
			}
			status[s.endpoint][fmt.Sprint(s.status)]++
			if s.status >= 500 {
				report.Errors5xx++
			}
			if s.status == http.StatusTooManyRequests {
				report.RateLimited++
			}
			if s.partial {
				report.PartialResponses++
			}
		}
	}
	report.DurationSec = elapsed.Seconds()
	report.AchievedQPS = float64(report.TotalRequests) / elapsed.Seconds()
	report.Endpoints = make(map[string]*EndpointStats)
	for ep := 0; ep < epCount; ep++ {
		if counts[ep]+fails[ep] == 0 {
			continue
		}
		lat := byEp[ep]
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		report.Endpoints[epNames[ep]] = &EndpointStats{
			Requests: counts[ep] + fails[ep],
			Errors:   fails[ep],
			Status:   status[ep],
			P50Us:    quantile(lat, 0.50),
			P90Us:    quantile(lat, 0.90),
			P99Us:    quantile(lat, 0.99),
		}
	}
	return &report, nil
}

// doRequest issues one request of the given endpoint type and times it.
func doRequest(ctx context.Context, client *http.Client, cfg Config, ep int, pick func() int, rng *rand.Rand) sample {
	var (
		method = http.MethodPost
		url    string
		body   io.Reader
	)
	switch ep {
	case epTopK:
		method = http.MethodGet
		url = fmt.Sprintf("%s/v1/topk?u=%d&k=%d", cfg.BaseURL, pick(), cfg.K)
	case epScore:
		url = cfg.BaseURL + "/v1/score"
		raw, _ := json.Marshal(map[string]any{"pairs": [][2]int{{pick(), pick()}}})
		body = bytes.NewReader(raw)
	case epPPR:
		url = cfg.BaseURL + "/v1/ppr"
		raw, _ := json.Marshal(map[string]any{"seeds": []int{pick()}, "k": cfg.K})
		body = bytes.NewReader(raw)
	case epUpdate:
		url = cfg.BaseURL + "/v1/update"
		raw, _ := json.Marshal(map[string]any{"insert": [][2]int{{pick(), pick()}}})
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return sample{endpoint: ep, failed: true}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	us := time.Since(t0).Microseconds()
	if err != nil {
		return sample{endpoint: ep, us: us, failed: true}
	}
	s := sample{endpoint: ep, us: us, status: resp.StatusCode}
	if ep == epTopK && resp.StatusCode == http.StatusOK {
		// Sniff the router's degradation flag without a full JSON decode on
		// the hot path; single-node servers never emit the field.
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		s.partial = bytes.Contains(raw, []byte(`"partial":true`))
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return s
}

func getJSON(ctx context.Context, client *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// quantile reads the q-quantile from an ascending latency slice.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
