package loadgen_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/loadgen"
	"github.com/nrp-embed/nrp/internal/serve"
)

func TestParseMix(t *testing.T) {
	m, err := loadgen.ParseMix("topk=70, score=20 ,ppr=10")
	if err != nil {
		t.Fatal(err)
	}
	if m.TopK != 70 || m.Score != 20 || m.PPR != 10 || m.Update != 0 {
		t.Fatalf("mix %+v", m)
	}
	for _, bad := range []string{"", "topk", "topk=-1", "walk=5", "topk=0,score=0"} {
		if _, err := loadgen.ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// liveServer builds a full live server (update + ppr available) for
// end-to-end load runs.
func liveServer(t *testing.T) *serve.Server {
	t.Helper()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 200, M: 1200, Communities: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 16
	dyn, err := nrp.NewDynamicEmbedding(context.Background(), g, opt, nrp.DynamicConfig{
		Policy: nrp.RefreshIncremental,
	})
	if err != nil {
		t.Fatal(err)
	}
	live, err := nrp.NewLiveIndex(dyn, nrp.WithBackend(nrp.BackendExact))
	if err != nil {
		t.Fatal(err)
	}
	pe, err := nrp.NewPPREngine(g, nrp.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	return serve.NewLiveServer(live, serve.Config{Backend: "exact", PPR: pe})
}

// TestRunMixedLoad drives the default mix against a live server and
// checks the report is coherent: traffic on every endpoint, quantiles
// ordered, no errors.
func TestRunMixedLoad(t *testing.T) {
	ts := httptest.NewServer(liveServer(t).Handler())
	defer ts.Close()

	report, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     ts.URL,
		Duration:    400 * time.Millisecond,
		Concurrency: 4,
		K:           5,
		Mix:         loadgen.Mix{TopK: 40, Score: 30, PPR: 15, Update: 15},
		ZipfS:       1.3,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalRequests == 0 || report.AchievedQPS <= 0 {
		t.Fatalf("no traffic: %+v", report)
	}
	if report.Errors5xx != 0 || report.TransportErrors != 0 {
		t.Fatalf("errors during clean run: %+v", report)
	}
	if len(report.Warnings) != 0 {
		t.Fatalf("unexpected warnings %v", report.Warnings)
	}
	for _, name := range []string{"topk", "score", "ppr", "update"} {
		ep := report.Endpoints[name]
		if ep == nil || ep.Requests == 0 {
			t.Fatalf("endpoint %s saw no traffic: %+v", name, report.Endpoints)
		}
		if ep.P50Us > ep.P90Us || ep.P90Us > ep.P99Us {
			t.Fatalf("endpoint %s quantiles out of order: %+v", name, ep)
		}
		if ep.Status["200"] != ep.Requests {
			t.Fatalf("endpoint %s non-200s: %+v", name, ep.Status)
		}
	}
}

// TestRunFoldsUnsupportedEndpoints points a write-heavy mix at a static
// snapshot server: update and ppr shares must fold into topk with
// warnings rather than producing 4xx noise.
func TestRunFoldsUnsupportedEndpoints(t *testing.T) {
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 150, M: 900, Communities: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 16
	emb, _, err := nrp.EmbedCtx(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	s, err := nrp.BuildIndex(emb, nrp.WithBackend(nrp.BackendQuantized))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(s, serve.Config{Backend: "quantized"}).Handler())
	defer ts.Close()

	report, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     ts.URL,
		Duration:    250 * time.Millisecond,
		Concurrency: 2,
		Mix:         loadgen.Mix{TopK: 50, PPR: 25, Update: 25},
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Warnings) != 2 {
		t.Fatalf("warnings %v, want ppr+update folds", report.Warnings)
	}
	if ep := report.Endpoints["ppr"]; ep != nil {
		t.Fatalf("ppr traffic sent to a server without PPR: %+v", ep)
	}
	if ep := report.Endpoints["update"]; ep != nil {
		t.Fatalf("update traffic sent to a static server: %+v", ep)
	}
	if report.Errors5xx != 0 {
		t.Fatalf("5xx: %+v", report)
	}
	if ep := report.Endpoints["topk"]; ep == nil || ep.Requests == 0 {
		t.Fatal("folded mix drove no topk traffic")
	}
}

// TestRunPacing checks a target rate is honored within slack: at 50 QPS
// for half a second the closed loop must not blast thousands of
// requests.
func TestRunPacing(t *testing.T) {
	ts := httptest.NewServer(liveServer(t).Handler())
	defer ts.Close()

	report, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     ts.URL,
		Duration:    500 * time.Millisecond,
		Concurrency: 4,
		TargetQPS:   50,
		Mix:         loadgen.Mix{TopK: 1},
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 50 QPS over 0.5s is ~25 requests; allow generous jitter but catch
	// an unpaced blast (hundreds+).
	if report.TotalRequests < 5 || report.TotalRequests > 60 {
		t.Fatalf("paced run issued %d requests, want ~25", report.TotalRequests)
	}
}

// TestRunRejectsUnreachable fails fast when the server is absent.
func TestRunRejectsUnreachable(t *testing.T) {
	_, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:  "http://127.0.0.1:1",
		Duration: 100 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("Run against dead address succeeded")
	}
}
