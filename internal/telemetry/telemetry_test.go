package telemetry

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	g := r.Gauge("test_gauge", "a gauge")
	c.Inc()
	c.Add(2.5)
	c.Add(-4) // dropped: counters never go down
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.05) // second bucket
	}
	h.Observe(5) // +Inf bucket
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	wantSum := 90*0.005 + 9*0.05 + 5
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	// p50 lands mid-first-bucket, p99 at the top of the second.
	if q := h.Quantile(0.5); q <= 0 || q > 0.01 {
		t.Fatalf("p50 = %v, want in (0, 0.01]", q)
	}
	if q := h.Quantile(0.99); q <= 0.01 || q > 0.1 {
		t.Fatalf("p99 = %v, want in (0.01, 0.1]", q)
	}
	// +Inf observations clamp the estimate to the largest finite bound.
	if q := h.Quantile(1); q != 1 {
		t.Fatalf("p100 = %v, want clamp to 1", q)
	}
	empty := r.Histogram("empty_seconds", "none", []float64{1})
	if q := empty.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestVectorsResolveAndCache(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("req_total", "requests", "endpoint", "code")
	cv.With("topk", "200").Inc()
	cv.With("topk", "200").Inc()
	cv.With("topk", "400").Inc()
	if a, b := cv.With("topk", "200"), cv.With("topk", "200"); a != b {
		t.Fatal("With must return the cached series")
	}
	if got := cv.With("topk", "200").Value(); got != 2 {
		t.Fatalf("series value = %v, want 2", got)
	}
	hv := r.HistogramVec("lat_seconds", "latency", []float64{0.1, 1}, "endpoint")
	hv.With("topk").Observe(0.05)
	if got := hv.With("topk").Count(); got != 1 {
		t.Fatalf("hist count = %d, want 1", got)
	}
}

func TestRegisterPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"bad metric name", func(r *Registry) { r.Counter("0bad", "x") }},
		{"bad label name", func(r *Registry) { r.CounterVec("ok_total", "x", "0bad") }},
		{"duplicate name", func(r *Registry) { r.Counter("dup", "x"); r.Gauge("dup", "y") }},
		{"empty buckets", func(r *Registry) { r.Histogram("h", "x", nil) }},
		{"unsorted buckets", func(r *Registry) { r.Histogram("h", "x", []float64{1, 1}) }},
		{"label arity", func(r *Registry) { r.CounterVec("v_total", "x", "a").With("1", "2") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "x")
	h := r.Histogram("h_seconds", "x", DefBuckets)
	g := r.Gauge("g", "x")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %v, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*per)
	}
}

// --- exposition-format validation ----------------------------------------

// parsePrometheus wraps ParseText with test failure semantics.
func parsePrometheus(t *testing.T, payload string) map[string]float64 {
	t.Helper()
	samples, err := ParseText(payload)
	if err != nil {
		t.Fatalf("%v\npayload:\n%s", err, payload)
	}
	return samples
}

func TestParseTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_type_line 1",
		"# TYPE x counter\nx{unclosed 1",
		"# TYPE x counter\nx oops",
		"# TYPE x histogram\nx_bucket{le=\"1\"} 5\nx_bucket{le=\"+Inf\"} 3",
		"# HELP x one\n# HELP x twice\n# TYPE x counter\nx 1",
		"# TYPE x counter\nx 1\nx 2",
	} {
		if _, err := ParseText(bad); err == nil {
			t.Fatalf("payload accepted: %q", bad)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("nrp_requests_total", "Total requests.", "endpoint", "code")
	cv.With("topk", "200").Add(5)
	cv.With("score", "400").Inc()
	r.Gauge("nrp_inflight", "In-flight requests.").Set(3)
	h := r.HistogramVec("nrp_latency_seconds", "Latency.", []float64{0.01, 0.1}, "endpoint")
	h.With("topk").Observe(0.005)
	h.With("topk").Observe(0.05)
	h.With("topk").Observe(7)
	r.GaugeFunc("nrp_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	r.CounterFunc("nrp_swaps_total", "Swaps.", func() float64 { return 2 })
	r.ConstGauge("nrp_build_info", "Build info.", []string{"version", "revision"}, []string{"v1.2.3", "abc\"def"})

	payload := r.String()
	samples := parsePrometheus(t, payload)

	want := map[string]float64{
		`nrp_requests_total{endpoint="topk",code="200"}`:  5,
		`nrp_requests_total{endpoint="score",code="400"}`: 1,
		`nrp_inflight`: 3,
		`nrp_latency_seconds_bucket{endpoint="topk",le="0.01"}`: 1,
		`nrp_latency_seconds_bucket{endpoint="topk",le="0.1"}`:  2,
		`nrp_latency_seconds_bucket{endpoint="topk",le="+Inf"}`: 3,
		`nrp_latency_seconds_count{endpoint="topk"}`:            3,
		`nrp_uptime_seconds`: 12.5,
		`nrp_swaps_total`:    2,
		`nrp_build_info{version="v1.2.3",revision="abc\"def"}`: 1,
	}
	for k, v := range want {
		got, ok := samples[k]
		if !ok {
			t.Fatalf("missing sample %q in:\n%s", k, payload)
		}
		if got != v {
			t.Fatalf("sample %q = %v, want %v", k, got, v)
		}
	}
	if sum := samples[`nrp_latency_seconds_sum{endpoint="topk"}`]; math.Abs(sum-7.055) > 1e-9 {
		t.Fatalf("histogram sum = %v, want 7.055", sum)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	var buf strings.Builder
	if _, err := fmt.Fprint(&buf, r.String()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x_total 1") {
		t.Fatalf("payload %q", buf.String())
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", resp2.StatusCode)
	}
}
