// Package telemetry is a dependency-free metrics library exposing the
// Prometheus text exposition format (version 0.0.4): counters, gauges
// and fixed-bucket histograms with lock-free atomic hot paths, plus
// labelled vector variants and scrape-time function metrics.
//
// It exists so the serving tier (internal/serve, cmd/nrpserve) can
// publish QPS, error and latency series on GET /metrics without pulling
// the Prometheus client library into a zero-dependency module. The
// subset implemented is exactly what a Prometheus (or VictoriaMetrics,
// or `promtool check metrics`) scraper needs:
//
//	# HELP nrp_http_requests_total Total HTTP requests.
//	# TYPE nrp_http_requests_total counter
//	nrp_http_requests_total{code="200",endpoint="topk"} 42
//
// Metrics register once on a Registry (registration takes a lock, may
// panic on programmer error — duplicate names, bad label counts — and
// is meant for construction time); observation paths are wait-free
// atomics. A labelled series is resolved with With(values...), which
// callers on hot paths should do once up front and cache.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// nameRE validates metric and label names against the Prometheus data
// model ([a-zA-Z_:][a-zA-Z0-9_:]* for metrics, no colons for labels).
var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomicFloat
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds delta, which must be non-negative; negative deltas are
// dropped (a counter never goes down).
func (c *Counter) Add(delta float64) {
	if delta > 0 {
		c.v.add(delta)
	}
}

// Value reports the current count.
func (c *Counter) Value() float64 { return c.v.load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomicFloat
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.add(-1) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta float64) { g.v.add(delta) }

// Value reports the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

// atomicFloat is a float64 with atomic add/load via CAS on the bit
// pattern, so histograms can sum observations without a lock.
type atomicFloat struct {
	bits atomic.Uint64
}

func (a *atomicFloat) load() float64   { return math.Float64frombits(a.bits.Load()) }
func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) add(delta float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram counts observations into fixed cumulative buckets. Observe
// is wait-free: one atomic increment on the owning bucket plus a CAS
// loop on the running sum.
type Histogram struct {
	// bounds are the inclusive upper bounds of each bucket, strictly
	// increasing; an implicit +Inf bucket follows.
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, non-cumulative per bucket
	sum    atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; most latency observations
	// land in the first few buckets, but the search is branch-cheap either
	// way (len is small and fixed).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.add(v)
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts with linear interpolation inside the winning bucket, the same
// estimate PromQL's histogram_quantile computes. Observations in the
// +Inf bucket clamp to the largest finite bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i, bound := range h.bounds {
		c := float64(h.counts[i].Load())
		if seen+c >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if c == 0 {
				return bound
			}
			frac := (rank - seen) / c
			return lower + (bound-lower)*frac
		}
		seen += c
	}
	return h.bounds[len(h.bounds)-1]
}

// DefBuckets are the default latency buckets in seconds: 100µs to 10s,
// roughly geometric, matching the range an in-process query server
// spans from a cache-warm HNSW hit to a drain-window worst case.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are power-of-two buckets for batch-size distributions.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// metricKind is the TYPE line of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled instance inside a family.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	fn          func() float64 // scrape-time value (CounterFunc/GaugeFunc)
}

// family is one named metric with its help text and all label
// instantiations.
type family struct {
	name       string
	help       string
	kind       metricKind
	labelNames []string
	bounds     []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]*series
	order  []string // insertion-ordered keys; output sorts, this bounds it
}

// Registry holds metric families and renders them in the Prometheus
// text format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds a family, panicking on invalid or duplicate names —
// metric registration is construction-time code, and a silently dropped
// metric is worse than a crash at boot.
func (r *Registry) register(name, help string, kind metricKind, labelNames []string, bounds []float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !labelRE.MatchString(l) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %q", l, name))
		}
	}
	if kind == kindHistogram {
		if len(bounds) == 0 {
			panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket", name))
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %q buckets not strictly increasing", name))
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	f := &family{name: name, help: help, kind: kind, labelNames: labelNames,
		bounds: bounds, series: make(map[string]*series)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// get returns the series for the given label values, creating it with
// mk on first use. Reads take the fast RLock path.
func (f *family) get(labelValues []string, mk func() *series) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	s = mk()
	s.labelValues = append([]string(nil), labelValues...)
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter registers an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	return f.get(nil, func() *series { return &series{counter: &Counter{}} }).counter
}

// Gauge registers an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	return f.get(nil, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// Histogram registers an unlabelled histogram with the given bucket
// upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil, buckets)
	return f.get(nil, func() *series { return &series{hist: newHistogram(buckets)} }).hist
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// for values the process already tracks elsewhere (pending updates,
// uptime, lag).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	f.get(nil, func() *series { return &series{fn: fn} })
}

// CounterFunc registers a counter whose value is computed at scrape
// time; fn must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindCounter, nil, nil)
	f.get(nil, func() *series { return &series{fn: fn} })
}

// ConstGauge registers a gauge fixed at 1 with constant labels — the
// build_info idiom, where the information lives in the label values.
func (r *Registry) ConstGauge(name, help string, labelNames, labelValues []string) {
	f := r.register(name, help, kindGauge, labelNames, nil)
	g := f.get(labelValues, func() *series { return &series{gauge: &Gauge{}} }).gauge
	g.Set(1)
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labelNames, nil)}
}

// With returns (creating on first use) the counter for the given label
// values, in registration order of the label names.
func (cv *CounterVec) With(labelValues ...string) *Counter {
	return cv.f.get(labelValues, func() *series { return &series{counter: &Counter{}} }).counter
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labelNames, nil)}
}

// With returns (creating on first use) the gauge for the label values.
func (gv *GaugeVec) With(labelValues ...string) *Gauge {
	return gv.f.get(labelValues, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, labelNames, buckets)}
}

// With returns (creating on first use) the histogram for the label
// values.
func (hv *HistogramVec) With(labelValues ...string) *Histogram {
	return hv.f.get(labelValues, func() *series { return &series{hist: newHistogram(hv.f.bounds)} }).hist
}

// WritePrometheus renders every registered family in the text
// exposition format to w, families in registration order, series
// within a family sorted by label values so scrapes are deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	_, err := io.WriteString(w, r.String())
	return err
}

// String renders the registry to a string (the scrape payload).
func (r *Registry) String() string {
	var b strings.Builder
	r.mu.RLock()
	fams := append([]*family(nil), r.families...)
	r.mu.RUnlock()
	for _, f := range fams {
		f.write(&b)
	}
	return b.String()
}

// Handler serves the registry as GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.String()))
	})
}

func (f *family) write(w *strings.Builder) {
	f.mu.RLock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	sers := make([]*series, len(keys))
	for i, k := range keys {
		sers[i] = f.series[k]
	}
	f.mu.RUnlock()
	if len(sers) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range sers {
		switch {
		case s.fn != nil:
			writeSample(w, f.name, f.labelNames, s.labelValues, "", "", s.fn())
		case s.counter != nil:
			writeSample(w, f.name, f.labelNames, s.labelValues, "", "", s.counter.Value())
		case s.gauge != nil:
			writeSample(w, f.name, f.labelNames, s.labelValues, "", "", s.gauge.Value())
		case s.hist != nil:
			// Cumulative buckets; snapshot counts first so sum/count stay
			// consistent with the bucket lines within one scrape.
			var cum uint64
			for i, bound := range s.hist.bounds {
				cum += s.hist.counts[i].Load()
				writeSample(w, f.name+"_bucket", f.labelNames, s.labelValues,
					"le", formatFloat(bound), float64(cum))
			}
			cum += s.hist.counts[len(s.hist.bounds)].Load()
			writeSample(w, f.name+"_bucket", f.labelNames, s.labelValues, "le", "+Inf", float64(cum))
			writeSample(w, f.name+"_sum", f.labelNames, s.labelValues, "", "", s.hist.Sum())
			writeSample(w, f.name+"_count", f.labelNames, s.labelValues, "", "", float64(cum))
		}
	}
}

// writeSample emits one `name{labels} value` line; extraName/extraValue
// append the histogram "le" label after the family's own labels.
func writeSample(w *strings.Builder, name string, labelNames, labelValues []string, extraName, extraValue string, v float64) {
	w.WriteString(name)
	if len(labelNames) > 0 || extraName != "" {
		w.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(ln)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(labelValues[i]))
			w.WriteByte('"')
		}
		if extraName != "" {
			if len(labelNames) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(extraName)
			w.WriteString(`="`)
			w.WriteString(extraValue)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatFloat renders a sample value: integral values without an
// exponent (counters stay readable), everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
