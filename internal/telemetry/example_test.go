package telemetry_test

import (
	"fmt"

	"github.com/nrp-embed/nrp/internal/telemetry"
)

// Example shows the life of a metrics endpoint: register the families a
// server cares about, record traffic as it happens, and expose the
// registry over HTTP with Handler (mount it at GET /metrics). Here we
// render the payload directly instead of starting a server.
func Example() {
	reg := telemetry.NewRegistry()

	requests := reg.CounterVec("nrp_http_requests_total",
		"HTTP requests by endpoint and status code.", "endpoint", "code")
	latency := reg.HistogramVec("nrp_http_request_duration_seconds",
		"Request latency.", []float64{0.001, 0.01, 0.1}, "endpoint")
	inflight := reg.Gauge("nrp_http_inflight_requests",
		"Requests currently being served.")

	// A request arrives, is served in 2ms, and succeeds.
	inflight.Inc()
	requests.With("topk", "200").Inc()
	latency.With("topk").Observe(0.002)
	inflight.Dec()

	fmt.Print(reg.String())
	// In a server: mux.Handle("/metrics", reg.Handler())

	// Output:
	// # HELP nrp_http_requests_total HTTP requests by endpoint and status code.
	// # TYPE nrp_http_requests_total counter
	// nrp_http_requests_total{endpoint="topk",code="200"} 1
	// # HELP nrp_http_request_duration_seconds Request latency.
	// # TYPE nrp_http_request_duration_seconds histogram
	// nrp_http_request_duration_seconds_bucket{endpoint="topk",le="0.001"} 0
	// nrp_http_request_duration_seconds_bucket{endpoint="topk",le="0.01"} 1
	// nrp_http_request_duration_seconds_bucket{endpoint="topk",le="0.1"} 1
	// nrp_http_request_duration_seconds_bucket{endpoint="topk",le="+Inf"} 1
	// nrp_http_request_duration_seconds_sum{endpoint="topk"} 0.002
	// nrp_http_request_duration_seconds_count{endpoint="topk"} 1
	// # HELP nrp_http_inflight_requests Requests currently being served.
	// # TYPE nrp_http_inflight_requests gauge
	// nrp_http_inflight_requests 0
}
