package telemetry

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Line shapes of the text exposition format, used by ParseText.
var (
	sampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)
	helpRE   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeRE   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
)

// ParseText validates a Prometheus text-format payload and returns its
// sample values keyed by `name{labels}` exactly as rendered. It checks
// what a scraper checks: every line parses, each family's TYPE comes
// before its samples, HELP appears at most once per family, no series
// repeats, and histogram bucket counts are cumulative. It exists so the
// serving tests can assert /metrics is genuinely scrapeable rather than
// merely non-empty.
func ParseText(payload string) (map[string]float64, error) {
	samples := make(map[string]float64)
	typed := make(map[string]string)
	helped := make(map[string]bool)
	var lastBucketKey string
	var lastBucketVal float64
	for i, line := range strings.Split(payload, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			m := helpRE.FindStringSubmatch(line)
			if m == nil {
				return nil, fmt.Errorf("line %d: malformed HELP: %q", i+1, line)
			}
			if helped[m[1]] {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", i+1, m[1])
			}
			helped[m[1]] = true
			continue
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRE.FindStringSubmatch(line)
			if m == nil {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", i+1, line)
			}
			typed[m[1]] = m[2]
			continue
		case strings.HasPrefix(line, "#"):
			return nil, fmt.Errorf("line %d: unexpected comment %q", i+1, line)
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("line %d: malformed sample: %q", i+1, line)
		}
		name := m[1]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if typed[name] == "" && typed[base] == "" {
			return nil, fmt.Errorf("line %d: sample %q before its TYPE line", i+1, name)
		}
		v, err := strconv.ParseFloat(m[len(m)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value in %q: %v", i+1, line, err)
		}
		key := strings.SplitN(line, " ", 2)[0]
		if _, dup := samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %q", i+1, key)
		}
		samples[key] = v
		if strings.HasSuffix(name, "_bucket") {
			bk := name + stripLe(line)
			if bk == lastBucketKey && v < lastBucketVal {
				return nil, fmt.Errorf("line %d: bucket counts not cumulative: %q", i+1, line)
			}
			lastBucketKey, lastBucketVal = bk, v
		}
	}
	return samples, nil
}

// stripLe drops the le="..." label so consecutive buckets of one series
// compare under the same monotonicity key.
func stripLe(line string) string {
	labels := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		labels = line[i : strings.IndexByte(line, '}')+1]
	}
	parts := strings.Split(strings.Trim(labels, "{}"), ",")
	kept := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, `le="`) && p != "" {
			kept = append(kept, p)
		}
	}
	return strings.Join(kept, ",")
}
