package core

import (
	"errors"
	"fmt"
)

// Estimator names a backend for the approximate-PPR phase of the
// embedding build.
type Estimator string

const (
	// EstimatorPush is Algorithm 1's scheme — BKSVD factorization of the
	// adjacency matrix followed by ℓ₁−1 proximity-folding iterations —
	// the paper protocol and the default.
	EstimatorPush Estimator = "push"
	// EstimatorFORA estimates the top entries of every PPR row with the
	// FORA sampling estimator (forward push + walks over one shared walk
	// index, top-k early termination) and factorizes the resulting
	// sparse proximity matrix directly. Typically ≥ 2× faster than push
	// at matching link-prediction AUC; see the README's "Build
	// estimators" section for the trade-offs.
	EstimatorFORA Estimator = "fora"
)

// Typed sentinels for estimator validation, re-exported at the public nrp
// API boundary.
var (
	// ErrInvalidEstimator rejects unknown estimator names and
	// out-of-range estimator knobs.
	ErrInvalidEstimator = errors.New("core: invalid estimator")
	// ErrEstimatorOptionConflict rejects option combinations that name
	// one estimator and configure another — FORA-only knobs with the
	// push estimator, or a warm-start factorization on the FORA path.
	ErrEstimatorOptionConflict = errors.New("core: conflicting estimator options")
)

// ParseEstimator maps a CLI/user string to an Estimator. The empty string
// selects the push default; anything else unknown returns
// ErrInvalidEstimator.
func ParseEstimator(s string) (Estimator, error) {
	switch Estimator(s) {
	case "", EstimatorPush:
		return EstimatorPush, nil
	case EstimatorFORA:
		return EstimatorFORA, nil
	}
	return "", fmt.Errorf("%w: unknown name %q (want %q or %q)", ErrInvalidEstimator, s, EstimatorPush, EstimatorFORA)
}

// EstimatorConfig selects and tunes the PPR backend of a run. The zero
// value is the push default; the knobs apply to the FORA estimator only.
type EstimatorConfig struct {
	// Kind is the backend ("" = push).
	Kind Estimator
	// TopK overrides the entries kept per PPR row (0 = max(k′, 32)).
	TopK int
	// Epsilon overrides the FORA relative error bound ε (0 = 0.5).
	Epsilon float64
	// WalksPerNode overrides the shared walk index's stored endpoints
	// per node (0 = 8).
	WalksPerNode int
	// Exhaustive disables top-k early termination (test/ablation knob).
	Exhaustive bool
}

// validate checks the estimator selection after all options are applied,
// so WithEstimator / WithEstimatorTopK compose in any order.
func (c EstimatorConfig) validate() error {
	switch c.Kind {
	case "", EstimatorPush, EstimatorFORA:
	default:
		return fmt.Errorf("%w: unknown name %q (want %q or %q)", ErrInvalidEstimator, string(c.Kind), EstimatorPush, EstimatorFORA)
	}
	if c.TopK < 0 {
		return fmt.Errorf("%w: top-k must be non-negative, got %d", ErrInvalidEstimator, c.TopK)
	}
	if c.Epsilon < 0 {
		return fmt.Errorf("%w: epsilon must be non-negative, got %v", ErrInvalidEstimator, c.Epsilon)
	}
	if c.WalksPerNode < 0 {
		return fmt.Errorf("%w: walks per node must be non-negative, got %d", ErrInvalidEstimator, c.WalksPerNode)
	}
	if c.Kind != EstimatorFORA && (c.TopK != 0 || c.Epsilon != 0 || c.WalksPerNode != 0 || c.Exhaustive) {
		return fmt.Errorf("%w: FORA knobs (top-k/epsilon/walks/exhaustive) require the %q estimator", ErrEstimatorOptionConflict, EstimatorFORA)
	}
	return nil
}

// WithEstimator selects the approximate-PPR backend of the run.
func WithEstimator(e Estimator) RunOption {
	return RunOptionFunc(func(c *RunConfig) { c.Estimator.Kind = e })
}

// WithEstimatorTopK sets the entries the FORA estimator keeps per PPR row.
func WithEstimatorTopK(k int) RunOption {
	return RunOptionFunc(func(c *RunConfig) { c.Estimator.TopK = k })
}

// WithEstimatorEpsilon sets the FORA estimator's relative error bound ε.
func WithEstimatorEpsilon(eps float64) RunOption {
	return RunOptionFunc(func(c *RunConfig) { c.Estimator.Epsilon = eps })
}

// WithEstimatorWalks sets the walks per node of the shared walk index.
func WithEstimatorWalks(k int) RunOption {
	return RunOptionFunc(func(c *RunConfig) { c.Estimator.WalksPerNode = k })
}

// WithEstimatorExhaustive disables top-k early termination on the FORA
// path, paying the full (ε, δ = 1/n) guarantee per row — the control arm
// for early-termination accounting; far slower than the default.
func WithEstimatorExhaustive() RunOption {
	return RunOptionFunc(func(c *RunConfig) { c.Estimator.Exhaustive = true })
}
