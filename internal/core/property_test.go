package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/ppr"
)

// Property: learned weights always respect the 1/n lower bound of Eq. (6),
// across random graphs, dimensions and regularizers.
func TestWeightsLowerBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(40)
		g, err := graph.GenSBM(graph.SBMConfig{N: n, M: 4 * n, Communities: 3, Directed: seed%2 == 0, Seed: seed})
		if err != nil {
			return false
		}
		opt := DefaultOptions()
		opt.Dim = 8
		opt.L2 = 3
		opt.Lambda = []float64{0, 1, 10}[rng.Intn(3)]
		opt.Seed = seed
		emb, err := ApproxPPR(g, opt)
		if err != nil {
			return false
		}
		fw, bw, err := LearnWeights(g, emb, opt)
		if err != nil {
			return false
		}
		minW := 1 / float64(n)
		for v := 0; v < n; v++ {
			if fw[v] < minW-1e-12 || bw[v] < minW-1e-12 {
				return false
			}
			if math.IsNaN(fw[v]) || math.IsNaN(bw[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: Theorem 1's bound holds across random graphs (checked against
// the exact PPR matrix and the exact singular spectrum).
func TestTheorem1Property(t *testing.T) {
	f := func(seed int64) bool {
		g, err := graph.GenSBM(graph.SBMConfig{N: 50, M: 220, Communities: 3, Seed: seed})
		if err != nil {
			return false
		}
		opt := DefaultOptions()
		opt.Dim = 12
		opt.Seed = seed
		emb, err := ApproxPPR(g, opt)
		if err != nil {
			return false
		}
		pi, err := ppr.Exact(g, opt.Alpha, 300)
		if err != nil {
			return false
		}
		_, sigma, _ := matrix.SVD(g.Adj.ToDense())
		kPrime := opt.Dim / 2
		bound := (1+opt.Epsilon)*sigma[kPrime]*(1-opt.Alpha)*(1-math.Pow(1-opt.Alpha, float64(opt.L1))) +
			math.Pow(1-opt.Alpha, float64(opt.L1+1))
		for u := 0; u < g.N; u++ {
			for v := 0; v < g.N; v++ {
				if u == v {
					continue
				}
				if math.Abs(pi.At(u, v)-emb.Score(u, v)) > bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: embeddings contain no NaN/Inf across random inputs, including
// graphs with dangling nodes.
func TestEmbeddingsFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(30)
		// Sparse directed graph: dangling nodes are likely.
		var edges []graph.Edge
		for i := 0; i < 2*n; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
		}
		g, err := graph.New(n, edges, true)
		if err != nil {
			return false
		}
		opt := DefaultOptions()
		opt.Dim = 8
		opt.L2 = 2
		opt.Seed = seed
		emb, err := NRP(g, opt)
		if err != nil {
			return false
		}
		for _, m := range []*matrix.Dense{emb.X, emb.Y} {
			for _, v := range m.Data {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
