package core

import (
	"math"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/par"
)

// reweightState carries everything the coordinate-descent weight updates
// need: the fixed embeddings and degree targets, the evolving weights, and
// the options.
type reweightState struct {
	x, y    *matrix.Dense // fixed ApproxPPR embeddings, n×k′
	fw, bw  []float64     // forward →w and backward ←w node weights
	din     []float64     // in-degree targets
	dout    []float64     // out-degree targets
	lambda  float64
	exactB1 bool
	minW    float64 // 1/n lower bound of Eq. (6)'s constraint
	xyDot   []float64
	perm    []int
	kPrime  int
	n       int
	pool    *par.Pool // parallelizes the per-pass shared statistics
}

func newReweightState(emb *Embedding, din, dout []float64, opt Options, pool *par.Pool) *reweightState {
	n := emb.N()
	s := &reweightState{
		x:       emb.X,
		y:       emb.Y,
		fw:      make([]float64, n),
		bw:      make([]float64, n),
		din:     din,
		dout:    dout,
		lambda:  opt.Lambda,
		exactB1: opt.ExactB1,
		minW:    1 / float64(n),
		xyDot:   make([]float64, n),
		perm:    make([]int, n),
		kPrime:  emb.Dim(),
		n:       n,
		pool:    pool,
	}
	// Algorithm 3 lines 3–4: →w_v = dout(v), ←w_v = 1.
	pool.For(n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			s.fw[v] = dout[v]
			s.bw[v] = 1
			s.xyDot[v] = matrix.Dot(emb.X.Row(v), emb.Y.Row(v))
			s.perm[v] = v
		}
	})
	return s
}

// passStats holds one coordinate-descent pass's shared statistics
// (Eq. 9, 10, 13 for the backward pass; Eq. 24–29 for the forward one).
// gatherPassStats accumulates them over all nodes in parallel: each worker
// fills a private packed accumulator over its node range and the partials
// merge in fixed tree order, so a pass is deterministic for a fixed pool
// size.
type passStats struct {
	xi, chi, rho1, rho2, phi []float64
	lambdaM                  *matrix.Dense
}

// gatherPassStats runs body(node, acc) over all nodes, where acc is the
// worker-private packed statistics view, and returns the merged result.
// Layout: [ξ k][χ k][ρ₁ k][ρ₂ k][φ k][Λ k×k].
func (s *reweightState) gatherPassStats(body func(node int, st *passStats)) *passStats {
	k := s.kPrime
	stride := 5*k + k*k
	view := func(data []float64) *passStats {
		return &passStats{
			xi:      data[0*k : 1*k],
			chi:     data[1*k : 2*k],
			rho1:    data[2*k : 3*k],
			rho2:    data[3*k : 4*k],
			phi:     data[4*k : 5*k],
			lambdaM: &matrix.Dense{Rows: k, Cols: k, Data: data[5*k:]},
		}
	}
	nc := s.pool.Chunks(s.n)
	if nc <= 1 {
		st := view(make([]float64, stride))
		for u := 0; u < s.n; u++ {
			body(u, st)
		}
		return st
	}
	parts := make([][]float64, nc)
	s.pool.For(s.n, func(w, lo, hi int) {
		acc := make([]float64, stride)
		st := view(acc)
		for u := lo; u < hi; u++ {
			body(u, st)
		}
		parts[w] = acc
	})
	return view(s.pool.TreeReduce(parts))
}

// updateBwdWeights is Algorithm 2: one pass of coordinate descent over all
// backward weights, visiting nodes in random order. The shared statistics
// ξ, χ, Λ, φ are computed once per pass; ρ₁, ρ₂ are updated incrementally
// after each weight change (Eq. 11), making the pass O(n·k′²). It returns
// the total absolute weight movement of the pass, the convergence residual
// reported in Stats.
func (s *reweightState) updateBwdWeights(rng *rand.Rand) (moved float64) {
	k := s.kPrime
	// Line 1: shared statistics (Eq. 9, 10, 13), gathered in parallel:
	//   ξ  = Σ_u dout(u)·→w_u·X_u        χ  = Σ_u →w_u·X_u
	//   Λ  = Σ_u →w_u²·X_uᵀX_u           φ[r] = Σ_u →w_u²·X_u[r]²
	//   ρ₁ = Σ_v ←w_v·Y_v                ρ₂ = Σ_v →w_v²·←w_v·(X_vY_vᵀ)·X_v
	st := s.gatherPassStats(func(u int, st *passStats) {
		xu := s.x.Row(u)
		fwU := s.fw[u]
		matrix.Axpy(s.dout[u]*fwU, xu, st.xi)
		matrix.Axpy(fwU, xu, st.chi)
		fw2 := fwU * fwU
		for r := 0; r < k; r++ {
			xr := xu[r]
			st.phi[r] += fw2 * xr * xr
			matrix.Axpy(fw2*xr, xu, st.lambdaM.Row(r))
		}
		yu := s.y.Row(u)
		matrix.Axpy(s.bw[u], yu, st.rho1)
		matrix.Axpy(fw2*s.bw[u]*s.xyDot[u], xu, st.rho2)
	})
	xi, chi, lambdaM := st.xi, st.chi, st.lambdaM
	rho1, rho2, phi := st.rho1, st.rho2, st.phi

	// Lines 4–9: visit each node in random order.
	shuffle(s.perm, rng)
	lamY := make([]float64, k)
	for _, vStar := range s.perm {
		yv := s.y.Row(vStar)
		xv := s.x.Row(vStar)
		fwV := s.fw[vStar]
		bwV := s.bw[vStar]
		dotXY := s.xyDot[vStar]

		// Eq. (9): a₁ = ξ·Y_v*ᵀ, a₂ = din(v*)·(χ−→w_v*X_v*)·Y_v*ᵀ, b₂ = (…)².
		a1 := matrix.Dot(xi, yv)
		t := matrix.Dot(chi, yv) - fwV*dotXY
		a2 := s.din[vStar] * t
		b2 := t * t

		// Eq. (10): a₃ = ρ₁ΛY_v*ᵀ − ←w_v*Y_v*ΛY_v*ᵀ − ρ₂Y_v*ᵀ + ←w_v*(X_v*Y_v*ᵀ)²→w_v*².
		lambdaM.MulVecInto(yv, lamY)
		yLamY := matrix.Dot(yv, lamY)
		a3 := matrix.Dot(rho1, lamY) - bwV*yLamY - matrix.Dot(rho2, yv) + bwV*dotXY*dotXY*fwV*fwV

		// b₁: paper's AM–GM approximation (Eq. 14) or the exact value via Λ.
		var b1 float64
		if s.exactB1 {
			b1 = yLamY - fwV*fwV*dotXY*dotXY
		} else {
			sum := 0.0
			for r := 0; r < k; r++ {
				sum += yv[r] * yv[r] * (phi[r] - fwV*fwV*xv[r]*xv[r])
			}
			b1 = float64(k) / 2 * sum
		}

		// Eq. (8): ←w_v* = max(1/n, (a₁+a₂−a₃)/(b₁+b₂+λ)).
		newW := s.minW
		if denom := b1 + b2 + s.lambda; denom > 0 {
			if w := (a1 + a2 - a3) / denom; w > newW {
				newW = w
			}
		}

		// Eq. (11): incremental ρ₁, ρ₂ maintenance.
		delta := newW - bwV
		if delta != 0 {
			matrix.Axpy(delta, yv, rho1)
			matrix.Axpy(delta*fwV*fwV*dotXY, xv, rho2)
			s.bw[vStar] = newW
			moved += math.Abs(delta)
		}
	}
	return moved
}

// updateFwdWeights is Algorithm 4 (Appendix B): the mirror-image pass over
// forward weights with statistics ξ′, χ′, Λ′, ρ₁′, ρ₂′, φ′ (Eq. 24–29).
// Like updateBwdWeights, it returns the pass's total absolute weight
// movement.
func (s *reweightState) updateFwdWeights(rng *rand.Rand) (moved float64) {
	k := s.kPrime
	// Shared statistics (Eq. 24–29), gathered in parallel:
	//   ξ′  = Σ_v din(v)·←w_v·Y_v        χ′  = Σ_v ←w_v·Y_v
	//   Λ′  = Σ_v ←w_v²·Y_vᵀY_v          φ′[r] = Σ_v ←w_v²·Y_v[r]²
	//   ρ₁′ = Σ_u →w_u·X_u               ρ₂′ = Σ_v →w_v·←w_v²·(X_vY_vᵀ)·Y_v
	st := s.gatherPassStats(func(v int, st *passStats) {
		yv := s.y.Row(v)
		bwV := s.bw[v]
		matrix.Axpy(s.din[v]*bwV, yv, st.xi)
		matrix.Axpy(bwV, yv, st.chi)
		bw2 := bwV * bwV
		for r := 0; r < k; r++ {
			yr := yv[r]
			st.phi[r] += bw2 * yr * yr
			matrix.Axpy(bw2*yr, yv, st.lambdaM.Row(r))
		}
		xv := s.x.Row(v)
		matrix.Axpy(s.fw[v], xv, st.rho1)
		matrix.Axpy(s.fw[v]*bw2*s.xyDot[v], yv, st.rho2)
	})
	xi, chi, lambdaM := st.xi, st.chi, st.lambdaM
	rho1, rho2, phi := st.rho1, st.rho2, st.phi

	shuffle(s.perm, rng)
	lamX := make([]float64, k)
	for _, uStar := range s.perm {
		xu := s.x.Row(uStar)
		yu := s.y.Row(uStar)
		fwU := s.fw[uStar]
		bwU := s.bw[uStar]
		dotXY := s.xyDot[uStar]

		// Eq. (24): a₁′ = X_u*·ξ′ᵀ, a₂′ = dout(u*)·X_u*(χ′−←w_u*Y_u*)ᵀ, b₂′ = (…)².
		a1 := matrix.Dot(xu, xi)
		t := matrix.Dot(xu, chi) - bwU*dotXY
		a2 := s.dout[uStar] * t
		b2 := t * t

		// Eq. (25): a₃′ = ρ₁′Λ′X_u*ᵀ − →w_u*X_u*Λ′X_u*ᵀ − ρ₂′X_u*ᵀ + ←w_u*²(X_u*Y_u*ᵀ)²→w_u*.
		lambdaM.MulVecInto(xu, lamX)
		xLamX := matrix.Dot(xu, lamX)
		a3 := matrix.Dot(rho1, lamX) - fwU*xLamX - matrix.Dot(rho2, xu) + bwU*bwU*dotXY*dotXY*fwU

		var b1 float64
		if s.exactB1 {
			b1 = xLamX - bwU*bwU*dotXY*dotXY
		} else {
			// Eq. (29).
			sum := 0.0
			for r := 0; r < k; r++ {
				sum += xu[r] * xu[r] * (phi[r] - bwU*bwU*yu[r]*yu[r])
			}
			b1 = float64(k) / 2 * sum
		}

		// Eq. (23).
		newW := s.minW
		if denom := b1 + b2 + s.lambda; denom > 0 {
			if w := (a1 + a2 - a3) / denom; w > newW {
				newW = w
			}
		}

		// Eq. (26): incremental maintenance.
		delta := newW - fwU
		if delta != 0 {
			matrix.Axpy(delta, xu, rho1)
			matrix.Axpy(delta*bwU*bwU*dotXY, yu, rho2)
			s.fw[uStar] = newW
			moved += math.Abs(delta)
		}
	}
	return moved
}

// objective evaluates Eq. (6) exactly in O(n²k′) — used by tests and the
// convergence diagnostics, never by the solver itself.
func (s *reweightState) objective() float64 {
	n := s.n
	obj := 0.0
	// Strength of connection from u to v is →w_u·(X_uY_vᵀ)·←w_v.
	inStrength := make([]float64, n)
	outStrength := make([]float64, n)
	for u := 0; u < n; u++ {
		xu := s.x.Row(u)
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			st := s.fw[u] * matrix.Dot(xu, s.y.Row(v)) * s.bw[v]
			outStrength[u] += st
			inStrength[v] += st
		}
	}
	for v := 0; v < n; v++ {
		d1 := inStrength[v] - s.din[v]
		d2 := outStrength[v] - s.dout[v]
		obj += d1*d1 + d2*d2
		obj += s.lambda * (s.fw[v]*s.fw[v] + s.bw[v]*s.bw[v])
	}
	return obj
}

// shuffle permutes p in place with the supplied source of randomness.
func shuffle(p []int, rng *rand.Rand) {
	for i := len(p) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
