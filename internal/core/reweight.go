package core

import (
	"math"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/matrix"
)

// reweightState carries everything the coordinate-descent weight updates
// need: the fixed embeddings and degree targets, the evolving weights, and
// the options.
type reweightState struct {
	x, y    *matrix.Dense // fixed ApproxPPR embeddings, n×k′
	fw, bw  []float64     // forward →w and backward ←w node weights
	din     []float64     // in-degree targets
	dout    []float64     // out-degree targets
	lambda  float64
	exactB1 bool
	minW    float64 // 1/n lower bound of Eq. (6)'s constraint
	xyDot   []float64
	perm    []int
	kPrime  int
	n       int
}

func newReweightState(emb *Embedding, din, dout []float64, opt Options) *reweightState {
	n := emb.N()
	s := &reweightState{
		x:       emb.X,
		y:       emb.Y,
		fw:      make([]float64, n),
		bw:      make([]float64, n),
		din:     din,
		dout:    dout,
		lambda:  opt.Lambda,
		exactB1: opt.ExactB1,
		minW:    1 / float64(n),
		xyDot:   make([]float64, n),
		perm:    make([]int, n),
		kPrime:  emb.Dim(),
		n:       n,
	}
	// Algorithm 3 lines 3–4: →w_v = dout(v), ←w_v = 1.
	for v := 0; v < n; v++ {
		s.fw[v] = dout[v]
		s.bw[v] = 1
		s.xyDot[v] = matrix.Dot(emb.X.Row(v), emb.Y.Row(v))
		s.perm[v] = v
	}
	return s
}

// updateBwdWeights is Algorithm 2: one pass of coordinate descent over all
// backward weights, visiting nodes in random order. The shared statistics
// ξ, χ, Λ, φ are computed once per pass; ρ₁, ρ₂ are updated incrementally
// after each weight change (Eq. 11), making the pass O(n·k′²). It returns
// the total absolute weight movement of the pass, the convergence residual
// reported in Stats.
func (s *reweightState) updateBwdWeights(rng *rand.Rand) (moved float64) {
	k := s.kPrime
	// Line 1: shared statistics (Eq. 9, 10, 13).
	xi := make([]float64, k)         // ξ  = Σ_u dout(u)·→w_u·X_u
	chi := make([]float64, k)        // χ  = Σ_u →w_u·X_u
	lambdaM := matrix.NewDense(k, k) // Λ = Σ_u →w_u²·X_uᵀX_u
	rho1 := make([]float64, k)       // ρ₁ = Σ_v ←w_v·Y_v
	rho2 := make([]float64, k)       // ρ₂ = Σ_v →w_v²·←w_v·(X_vY_vᵀ)·X_v
	phi := make([]float64, k)        // φ[r] = Σ_u →w_u²·X_u[r]²
	for u := 0; u < s.n; u++ {
		xu := s.x.Row(u)
		fwU := s.fw[u]
		matrix.Axpy(s.dout[u]*fwU, xu, xi)
		matrix.Axpy(fwU, xu, chi)
		fw2 := fwU * fwU
		for r := 0; r < k; r++ {
			xr := xu[r]
			phi[r] += fw2 * xr * xr
			matrix.Axpy(fw2*xr, xu, lambdaM.Row(r))
		}
		yu := s.y.Row(u)
		matrix.Axpy(s.bw[u], yu, rho1)
		matrix.Axpy(fw2*s.bw[u]*s.xyDot[u], xu, rho2)
	}

	// Lines 4–9: visit each node in random order.
	shuffle(s.perm, rng)
	lamY := make([]float64, k)
	for _, vStar := range s.perm {
		yv := s.y.Row(vStar)
		xv := s.x.Row(vStar)
		fwV := s.fw[vStar]
		bwV := s.bw[vStar]
		dotXY := s.xyDot[vStar]

		// Eq. (9): a₁ = ξ·Y_v*ᵀ, a₂ = din(v*)·(χ−→w_v*X_v*)·Y_v*ᵀ, b₂ = (…)².
		a1 := matrix.Dot(xi, yv)
		t := matrix.Dot(chi, yv) - fwV*dotXY
		a2 := s.din[vStar] * t
		b2 := t * t

		// Eq. (10): a₃ = ρ₁ΛY_v*ᵀ − ←w_v*Y_v*ΛY_v*ᵀ − ρ₂Y_v*ᵀ + ←w_v*(X_v*Y_v*ᵀ)²→w_v*².
		lambdaM.MulVecInto(yv, lamY)
		yLamY := matrix.Dot(yv, lamY)
		a3 := matrix.Dot(rho1, lamY) - bwV*yLamY - matrix.Dot(rho2, yv) + bwV*dotXY*dotXY*fwV*fwV

		// b₁: paper's AM–GM approximation (Eq. 14) or the exact value via Λ.
		var b1 float64
		if s.exactB1 {
			b1 = yLamY - fwV*fwV*dotXY*dotXY
		} else {
			sum := 0.0
			for r := 0; r < k; r++ {
				sum += yv[r] * yv[r] * (phi[r] - fwV*fwV*xv[r]*xv[r])
			}
			b1 = float64(k) / 2 * sum
		}

		// Eq. (8): ←w_v* = max(1/n, (a₁+a₂−a₃)/(b₁+b₂+λ)).
		newW := s.minW
		if denom := b1 + b2 + s.lambda; denom > 0 {
			if w := (a1 + a2 - a3) / denom; w > newW {
				newW = w
			}
		}

		// Eq. (11): incremental ρ₁, ρ₂ maintenance.
		delta := newW - bwV
		if delta != 0 {
			matrix.Axpy(delta, yv, rho1)
			matrix.Axpy(delta*fwV*fwV*dotXY, xv, rho2)
			s.bw[vStar] = newW
			moved += math.Abs(delta)
		}
	}
	return moved
}

// updateFwdWeights is Algorithm 4 (Appendix B): the mirror-image pass over
// forward weights with statistics ξ′, χ′, Λ′, ρ₁′, ρ₂′, φ′ (Eq. 24–29).
// Like updateBwdWeights, it returns the pass's total absolute weight
// movement.
func (s *reweightState) updateFwdWeights(rng *rand.Rand) (moved float64) {
	k := s.kPrime
	xi := make([]float64, k)         // ξ′  = Σ_v din(v)·←w_v·Y_v
	chi := make([]float64, k)        // χ′  = Σ_v ←w_v·Y_v
	lambdaM := matrix.NewDense(k, k) // Λ′ = Σ_v ←w_v²·Y_vᵀY_v
	rho1 := make([]float64, k)       // ρ₁′ = Σ_u →w_u·X_u
	rho2 := make([]float64, k)       // ρ₂′ = Σ_v →w_v·←w_v²·(X_vY_vᵀ)·Y_v
	phi := make([]float64, k)        // φ′[r] = Σ_v ←w_v²·Y_v[r]²
	for v := 0; v < s.n; v++ {
		yv := s.y.Row(v)
		bwV := s.bw[v]
		matrix.Axpy(s.din[v]*bwV, yv, xi)
		matrix.Axpy(bwV, yv, chi)
		bw2 := bwV * bwV
		for r := 0; r < k; r++ {
			yr := yv[r]
			phi[r] += bw2 * yr * yr
			matrix.Axpy(bw2*yr, yv, lambdaM.Row(r))
		}
		xv := s.x.Row(v)
		matrix.Axpy(s.fw[v], xv, rho1)
		matrix.Axpy(s.fw[v]*bw2*s.xyDot[v], yv, rho2)
	}

	shuffle(s.perm, rng)
	lamX := make([]float64, k)
	for _, uStar := range s.perm {
		xu := s.x.Row(uStar)
		yu := s.y.Row(uStar)
		fwU := s.fw[uStar]
		bwU := s.bw[uStar]
		dotXY := s.xyDot[uStar]

		// Eq. (24): a₁′ = X_u*·ξ′ᵀ, a₂′ = dout(u*)·X_u*(χ′−←w_u*Y_u*)ᵀ, b₂′ = (…)².
		a1 := matrix.Dot(xu, xi)
		t := matrix.Dot(xu, chi) - bwU*dotXY
		a2 := s.dout[uStar] * t
		b2 := t * t

		// Eq. (25): a₃′ = ρ₁′Λ′X_u*ᵀ − →w_u*X_u*Λ′X_u*ᵀ − ρ₂′X_u*ᵀ + ←w_u*²(X_u*Y_u*ᵀ)²→w_u*.
		lambdaM.MulVecInto(xu, lamX)
		xLamX := matrix.Dot(xu, lamX)
		a3 := matrix.Dot(rho1, lamX) - fwU*xLamX - matrix.Dot(rho2, xu) + bwU*bwU*dotXY*dotXY*fwU

		var b1 float64
		if s.exactB1 {
			b1 = xLamX - bwU*bwU*dotXY*dotXY
		} else {
			// Eq. (29).
			sum := 0.0
			for r := 0; r < k; r++ {
				sum += xu[r] * xu[r] * (phi[r] - bwU*bwU*yu[r]*yu[r])
			}
			b1 = float64(k) / 2 * sum
		}

		// Eq. (23).
		newW := s.minW
		if denom := b1 + b2 + s.lambda; denom > 0 {
			if w := (a1 + a2 - a3) / denom; w > newW {
				newW = w
			}
		}

		// Eq. (26): incremental maintenance.
		delta := newW - fwU
		if delta != 0 {
			matrix.Axpy(delta, xu, rho1)
			matrix.Axpy(delta*bwU*bwU*dotXY, yu, rho2)
			s.fw[uStar] = newW
			moved += math.Abs(delta)
		}
	}
	return moved
}

// objective evaluates Eq. (6) exactly in O(n²k′) — used by tests and the
// convergence diagnostics, never by the solver itself.
func (s *reweightState) objective() float64 {
	n := s.n
	obj := 0.0
	// Strength of connection from u to v is →w_u·(X_uY_vᵀ)·←w_v.
	inStrength := make([]float64, n)
	outStrength := make([]float64, n)
	for u := 0; u < n; u++ {
		xu := s.x.Row(u)
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			st := s.fw[u] * matrix.Dot(xu, s.y.Row(v)) * s.bw[v]
			outStrength[u] += st
			inStrength[v] += st
		}
	}
	for v := 0; v < n; v++ {
		d1 := inStrength[v] - s.din[v]
		d2 := outStrength[v] - s.dout[v]
		obj += d1*d1 + d2*d2
		obj += s.lambda * (s.fw[v]*s.fw[v] + s.bw[v]*s.bw[v])
	}
	return obj
}

// shuffle permutes p in place with the supplied source of randomness.
func shuffle(p []int, rng *rand.Rand) {
	for i := len(p) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
