package core

import "fmt"

// Options configure ApproxPPR and NRP. The zero value is not usable; start
// from DefaultOptions.
type Options struct {
	// Dim is the total per-node space budget k; each node receives a
	// forward and a backward vector of k/2 dimensions. Must be even.
	Dim int
	// Alpha is the random-walk decay (termination) factor of Eq. (1).
	Alpha float64
	// L1 is the PPR truncation order ℓ₁ of Eq. (3).
	L1 int
	// L2 is the maximum number of reweighting epochs ℓ₂ of Algorithm 3.
	L2 int
	// ReweightTol stops the reweighting loop early once an epoch's mean
	// absolute weight movement falls below ReweightTol times the first
	// epoch's — the coordinate descent converges geometrically, so the
	// trailing epochs of a fixed ℓ₂ schedule move the weights (and the
	// downstream task quality) by noise-level amounts while costing as
	// much as the first ones. Zero disables early stopping and always
	// runs ℓ₂ epochs (the paper's fixed schedule).
	ReweightTol float64
	// Epsilon is the BKSVD relative error threshold ε.
	Epsilon float64
	// Lambda is the L2 regularizer λ of the reweighting objective (Eq. 6).
	Lambda float64
	// KrylovIters, when positive, overrides the ε-derived Krylov iteration
	// count of the BKSVD factorizer.
	KrylovIters int
	// ExactB1 replaces the paper's arithmetic–geometric-mean approximation
	// of the b₁ term (Eq. 12–14) with its exact O(k′²) evaluation via Λ.
	// Off by default to match the paper; see DESIGN.md ablation 1.
	ExactB1 bool
	// SubspaceIteration swaps the BKSVD factorizer of Algorithm 1 for
	// plain randomized subspace iteration. Off by default to match the
	// paper; see DESIGN.md ablation 2.
	SubspaceIteration bool
	// Seed drives all randomness (BKSVD projections, update order).
	Seed int64
}

// DefaultOptions returns the paper's parameter settings (§5.1):
// k=128, α=0.15, ℓ₁=20, ℓ₂=10, ε=0.2, λ=10.
func DefaultOptions() Options {
	return Options{
		Dim:         128,
		Alpha:       0.15,
		L1:          20,
		L2:          10,
		ReweightTol: 0.01,
		Epsilon:     0.2,
		Lambda:      10,
		Seed:        1,
	}
}

// Validate reports whether the options are internally consistent.
func (o Options) Validate() error {
	if o.Dim <= 0 || o.Dim%2 != 0 {
		return fmt.Errorf("core: Dim must be positive and even, got %d", o.Dim)
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return fmt.Errorf("core: Alpha must be in (0,1), got %v", o.Alpha)
	}
	if o.L1 <= 0 {
		return fmt.Errorf("core: L1 must be positive, got %d", o.L1)
	}
	if o.L2 < 0 {
		return fmt.Errorf("core: L2 must be non-negative, got %d", o.L2)
	}
	if o.ReweightTol < 0 || o.ReweightTol >= 1 {
		return fmt.Errorf("core: ReweightTol must be in [0,1), got %v", o.ReweightTol)
	}
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		return fmt.Errorf("core: Epsilon must be in (0,1), got %v", o.Epsilon)
	}
	if o.Lambda < 0 {
		return fmt.Errorf("core: Lambda must be non-negative, got %v", o.Lambda)
	}
	return nil
}
