package core

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
)

// This file implements the extension the paper's conclusion names as future
// work: "we plan to study how to extend NRP to handle attributed graphs."
//
// The design reuses NRP's own machinery: node attributes are smoothed
// through the same truncated personalized-PageRank operator
// Π′ = Σ_{i=0..ℓ₁} α(1−α)^i·P^i that Algorithm 1 factorizes, i.e.
// H = Π′·F for an attribute matrix F — the attribute analog of the PPR
// proximity NRP preserves (each node's representation is the PPR-weighted
// average of the attributes in its neighborhood). The smoothed attributes
// are fused with the reweighted topology embeddings by concatenation for
// features and by a convex score combination for pair scoring.

// AttributedOptions extends Options with attribute-fusion parameters.
type AttributedOptions struct {
	Options
	// AttrDim caps the attribute channel: attribute matrices wider than
	// this are Gaussian-projected down to AttrDim before propagation
	// (0 = keep the input width).
	AttrDim int
	// Beta weighs the attribute cosine similarity against the topology
	// inner product in Score: (1−β)·topology + β·attributes. Default 0.3.
	Beta float64
}

// DefaultAttributedOptions returns DefaultOptions plus the attribute
// defaults.
func DefaultAttributedOptions() AttributedOptions {
	return AttributedOptions{Options: DefaultOptions(), Beta: 0.3}
}

// Validate extends Options.Validate with the attribute parameters.
func (o AttributedOptions) Validate() error {
	if err := o.Options.Validate(); err != nil {
		return err
	}
	if o.AttrDim < 0 {
		return fmt.Errorf("core: AttrDim must be non-negative, got %d", o.AttrDim)
	}
	if o.Beta < 0 || o.Beta > 1 {
		return fmt.Errorf("core: Beta must be in [0,1], got %v", o.Beta)
	}
	return nil
}

// AttributedEmbedding couples NRP topology embeddings with PPR-smoothed,
// row-normalized attribute vectors.
type AttributedEmbedding struct {
	Topology *Embedding
	// Attr is the n×d smoothed attribute matrix with unit-norm rows
	// (zero rows stay zero).
	Attr *matrix.Dense
	Beta float64
}

// NRPAttributed embeds an attributed graph: NRP on the topology plus
// truncated-PPR propagation of the attribute matrix (n×d, one row per
// node).
//
// Deprecated: use NRPAttributedCtx, which supports cancellation, progress
// reporting and run stats.
func NRPAttributed(g *graph.Graph, attrs *matrix.Dense, opt AttributedOptions) (*AttributedEmbedding, error) {
	emb, _, err := NRPAttributedCtx(context.Background(), g, attrs, opt)
	return emb, err
}

// NRPAttributedCtx is the context-aware attributed pipeline: the topology
// phases inherit NRPCtx's cancellation points, and the attribute
// propagation checks the context between iterations. On cancellation the
// returned error is ctx.Err().
func NRPAttributedCtx(ctx context.Context, g *graph.Graph, attrs *matrix.Dense, opt AttributedOptions, opts ...RunOption) (*AttributedEmbedding, *Stats, error) {
	t := newTracker(ctx, NewRunConfig(opts))
	emb, err := nrpAttributed(g, attrs, opt, t)
	return emb, t.done(), err
}

func nrpAttributed(g *graph.Graph, attrs *matrix.Dense, opt AttributedOptions, t *tracker) (*AttributedEmbedding, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if attrs.Rows != g.N {
		return nil, fmt.Errorf("core: attribute matrix has %d rows for %d nodes", attrs.Rows, g.N)
	}
	topo, err := nrpTracked(g, opt.Options, t)
	if err != nil {
		return nil, err
	}
	smoothed, err := propagateAttributes(g, attrs, opt, t)
	if err != nil {
		return nil, err
	}
	return &AttributedEmbedding{Topology: topo, Attr: smoothed, Beta: opt.Beta}, nil
}

// PropagateAttributes computes H = Σ_{i=0..ℓ₁} α(1−α)^i·P^i·F (optionally
// after Gaussian projection to AttrDim columns) and row-normalizes the
// result. Cost is O(ℓ₁·m·d), the attribute analog of Algorithm 1's
// iterations.
func PropagateAttributes(g *graph.Graph, attrs *matrix.Dense, opt AttributedOptions) *matrix.Dense {
	acc, _ := propagateAttributes(g, attrs, opt, newTracker(context.Background(), RunConfig{}))
	return acc
}

func propagateAttributes(g *graph.Graph, attrs *matrix.Dense, opt AttributedOptions, t *tracker) (*matrix.Dense, error) {
	stop := t.phaseTimer(&t.stats.Attributes)
	f := attrs
	if opt.AttrDim > 0 && attrs.Cols > opt.AttrDim {
		rng := rand.New(rand.NewSource(opt.Seed + 17))
		proj := matrix.GaussianDense(attrs.Cols, opt.AttrDim, rng)
		proj.Scale(1 / float64(attrs.Cols))
		f = matrix.MulPool(t.pool, attrs, proj)
	}
	p := g.Transition()
	cur := f.Clone()
	cur.Scale(opt.Alpha)
	acc := cur.Clone()
	iters := 0
	for i := 1; i <= opt.L1; i++ {
		if err := t.err(); err != nil {
			stop(iters)
			return nil, err
		}
		cur = p.MulDensePool(t.pool, cur)
		// Fused (1−α)-scale of cur and accumulate into acc, parallel over
		// disjoint row ranges.
		t.pool.For(acc.Rows, func(_, lo, hi int) {
			oneMinus := 1 - opt.Alpha
			for v := lo; v < hi; v++ {
				crow := cur.Row(v)
				arow := acc.Row(v)
				for j := range crow {
					crow[j] *= oneMinus
					arow[j] += crow[j]
				}
			}
		})
		iters++
		t.step(PhaseAttributes, iters, opt.L1)
	}
	t.pool.For(acc.Rows, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			matrix.NormalizeRow(acc.Row(v))
		}
	})
	stop(iters)
	return acc, nil
}

// Score combines the topology inner product with attribute cosine
// similarity: (1−β)·X_u·Y_vᵀ + β·⟨H_u, H_v⟩.
func (e *AttributedEmbedding) Score(u, v int) float64 {
	topo := e.Topology.Score(u, v)
	attr := matrix.Dot(e.Attr.Row(u), e.Attr.Row(v))
	return (1-e.Beta)*topo + e.Beta*attr
}

// Features concatenates the normalized topology features with the smoothed
// attribute vector, for downstream classifiers.
func (e *AttributedEmbedding) Features(v int) []float64 {
	topo := e.Topology.Features(v)
	out := make([]float64, 0, len(topo)+e.Attr.Cols)
	out = append(out, topo...)
	return append(out, e.Attr.Row(v)...)
}
