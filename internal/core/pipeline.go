package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/nrp-embed/nrp/internal/par"
)

// Phase identifies one stage of the embedding pipeline in progress events
// and stats.
type Phase string

const (
	// PhaseFactorize is the randomized BKSVD / subspace-iteration
	// factorization of the adjacency matrix (Algorithm 1, line 1).
	PhaseFactorize Phase = "factorize"
	// PhasePPR is the ℓ₁−1 sparse proximity-folding iterations
	// (Algorithm 1, lines 3–5).
	PhasePPR Phase = "ppr"
	// PhaseReweight is the ℓ₂ coordinate-descent reweighting epochs
	// (Algorithm 3, lines 3–7).
	PhaseReweight Phase = "reweight"
	// PhaseAttributes is the truncated-PPR attribute propagation of the
	// attributed extension.
	PhaseAttributes Phase = "attributes"
)

// ProgressEvent reports one completed unit of work inside a phase. Step
// counts from 1 to Total within the phase; Elapsed is wall time since the
// pipeline started.
type ProgressEvent struct {
	Phase   Phase
	Step    int
	Total   int
	Elapsed time.Duration
}

// ProgressFunc receives progress events. Callbacks run synchronously on the
// computing goroutine and should return quickly.
type ProgressFunc func(ProgressEvent)

// PhaseStat records the work done in one pipeline phase.
type PhaseStat struct {
	// Duration is the wall time spent in the phase.
	Duration time.Duration
	// Steps is the number of units completed (iterations, epochs, …).
	Steps int
	// Parallel is the wall time the phase spent inside the parallel
	// engine's kernels (sparse products, GEMM, orthonormalization,
	// reductions) — the portion of Duration that scaled across threads.
	Parallel time.Duration
}

// Stats describes where an embedding run spent its time and how the
// numerical phases converged. All fields are filled in even on error for
// the phases that ran.
type Stats struct {
	// Factorize covers the randomized SVD; KrylovIters and AchievedRank
	// detail it.
	Factorize PhaseStat
	// PPR covers the sparse proximity-folding iterations.
	PPR PhaseStat
	// Reweight covers the coordinate-descent epochs; ReweightResiduals
	// details per-epoch movement.
	Reweight PhaseStat
	// Attributes covers attribute propagation (attributed runs only).
	Attributes PhaseStat
	// Total is end-to-end wall time of the pipeline.
	Total time.Duration
	// KrylovIters is the number of block power iterations the factorizer
	// actually ran.
	KrylovIters int
	// AchievedRank is the number of returned singular values numerically
	// above zero — the rank the factorization actually achieved.
	AchievedRank int
	// ReweightResiduals holds, per epoch, the mean absolute weight change
	// across both coordinate-descent passes; a decaying sequence indicates
	// convergence.
	ReweightResiduals []float64
	// Threads is the worker count the run's parallel engine used
	// (WithThreads, default GOMAXPROCS).
	Threads int
}

// Render writes a human-readable per-phase breakdown, the CLI's
// "stats printed on completion" format.
func (s *Stats) Render(w io.Writer) error {
	type row struct {
		name string
		st   PhaseStat
		note string
	}
	rows := []row{
		{"factorize", s.Factorize, fmt.Sprintf("krylov_iters=%d achieved_rank=%d", s.KrylovIters, s.AchievedRank)},
		{"ppr", s.PPR, ""},
		{"reweight", s.Reweight, residualNote(s.ReweightResiduals)},
		{"attributes", s.Attributes, ""},
	}
	for _, r := range rows {
		if r.st.Duration == 0 && r.st.Steps == 0 {
			continue
		}
		note := r.note
		if r.st.Parallel > 0 {
			note = fmt.Sprintf("par=%v %s", r.st.Parallel.Round(time.Millisecond), note)
		}
		if _, err := fmt.Fprintf(w, "%-10s %10v  steps=%-4d %s\n",
			r.name, r.st.Duration.Round(time.Millisecond), r.st.Steps, note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-10s %10v  threads=%d\n", "total", s.Total.Round(time.Millisecond), s.Threads)
	return err
}

func residualNote(res []float64) string {
	if len(res) == 0 {
		return ""
	}
	return fmt.Sprintf("residual %.3g → %.3g", res[0], res[len(res)-1])
}

// RunConfig carries the execution knobs of a pipeline run, separate from
// the numerical Options: observability hooks and the parallel engine's
// thread budget.
type RunConfig struct {
	// Progress, when non-nil, receives an event per completed step.
	Progress ProgressFunc
	// Threads bounds the run's parallel engine (0 = GOMAXPROCS).
	Threads int
	// Estimator selects and tunes the approximate-PPR backend (zero
	// value = Algorithm 1 backward push, the paper protocol).
	Estimator EstimatorConfig
}

// RunOption configures a pipeline run; see WithProgress and WithThreads.
// It is an interface (rather than a bare func) so that public wrapper
// packages can define options that double as configuration for other
// subsystems — nrp.WithThreads, for instance, is accepted by both the
// embedding pipeline and BuildIndex.
type RunOption interface {
	// ApplyRun folds the option into the run configuration.
	ApplyRun(*RunConfig)
}

// RunOptionFunc adapts a plain function to the RunOption interface.
type RunOptionFunc func(*RunConfig)

// ApplyRun implements RunOption.
func (f RunOptionFunc) ApplyRun(c *RunConfig) { f(c) }

// WithProgress installs a progress callback on a pipeline run.
func WithProgress(fn ProgressFunc) RunOption {
	return RunOptionFunc(func(c *RunConfig) { c.Progress = fn })
}

// WithThreads bounds the number of worker threads the run's compute
// kernels use (0 or negative = GOMAXPROCS). Embeddings computed with
// different thread counts agree to floating-point reassociation error;
// repeated runs with the same count and seed are bit-identical.
func WithThreads(n int) RunOption {
	return RunOptionFunc(func(c *RunConfig) { c.Threads = n })
}

// NewRunConfig folds options into a RunConfig.
func NewRunConfig(opts []RunOption) RunConfig {
	var c RunConfig
	for _, o := range opts {
		if o != nil {
			o.ApplyRun(&c)
		}
	}
	return c
}

// tracker threads the context, progress sink, parallel engine and stats
// through the pipeline internals.
type tracker struct {
	ctx   context.Context
	cfg   RunConfig
	stats *Stats
	start time.Time
	pool  *par.Pool
}

func newTracker(ctx context.Context, cfg RunConfig) *tracker {
	if ctx == nil {
		ctx = context.Background()
	}
	pool := par.New(cfg.Threads)
	return &tracker{ctx: ctx, cfg: cfg, stats: &Stats{Threads: pool.Workers()}, start: time.Now(), pool: pool}
}

// done stamps the total duration and returns the stats (also kept in t).
func (t *tracker) done() *Stats {
	t.stats.Total = time.Since(t.start)
	return t.stats
}

// err reports the context error, if any.
func (t *tracker) err() error { return t.ctx.Err() }

// step emits a progress event.
func (t *tracker) step(phase Phase, step, total int) {
	if t.cfg.Progress != nil {
		t.cfg.Progress(ProgressEvent{Phase: phase, Step: step, Total: total, Elapsed: time.Since(t.start)})
	}
}

// phaseTimer returns a stop function recording the wall time, step count
// and parallel-kernel time of a phase into the given PhaseStat.
func (t *tracker) phaseTimer(st *PhaseStat) func(steps int) {
	begin := time.Now()
	parBase := t.pool.ParallelWall()
	return func(steps int) {
		st.Duration = time.Since(begin)
		st.Steps = steps
		st.Parallel = t.pool.ParallelWall() - parBase
	}
}
