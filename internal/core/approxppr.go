package core

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/svd"
)

// ApproxPPR implements Algorithm 1 of the paper: it factorizes the
// adjacency matrix with randomized block-Krylov SVD, seeds
// X₁ = D⁻¹U√Σ, Y = V√Σ (so X₁Yᵀ ≈ P), then folds higher-order proximity
// into X by ℓ₁−1 sparse iterations X_i = (1−α)·P·X_{i−1} + X₁ and a final
// scaling by α(1−α), yielding X·Yᵀ ≈ Π′ = Σ_{i=1..ℓ₁} α(1−α)^i P^i with the
// Theorem-1 error bound. The embeddings are the paper's PPR baseline and
// the starting point of NRP.
func ApproxPPR(g *graph.Graph, opt Options) (*Embedding, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	kPrime := opt.Dim / 2
	if kPrime > g.N {
		return nil, fmt.Errorf("core: k/2 = %d exceeds node count %d", kPrime, g.N)
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Line 1: [U, Σ, V] ← BKSVD(A, k′, ε).
	factorize := svd.BKSVD
	if opt.SubspaceIteration {
		factorize = svd.SubspaceIteration
	}
	res, err := factorize(g.Adj, svd.Options{
		Rank:    kPrime,
		Epsilon: opt.Epsilon,
		Iters:   opt.KrylovIters,
		Rng:     rng,
	})
	if err != nil {
		return nil, fmt.Errorf("core: factorizing adjacency: %w", err)
	}

	// Line 2: X₁ = D⁻¹·U·√Σ, Y = V·√Σ.
	sqrtS := make([]float64, len(res.S))
	for i, s := range res.S {
		sqrtS[i] = math.Sqrt(s)
	}
	x1 := res.U.Clone()
	invDeg := g.InvOutDegrees()
	for u := 0; u < g.N; u++ {
		row := x1.Row(u)
		for j := range row {
			row[j] *= invDeg[u] * sqrtS[j]
		}
	}
	y := res.V.Clone()
	for v := 0; v < g.N; v++ {
		row := y.Row(v)
		for j := range row {
			row[j] *= sqrtS[j]
		}
	}

	// Lines 3–5: X_i = (1−α)·P·X_{i−1} + X₁; X = α(1−α)·X_{ℓ₁}.
	p := g.Transition()
	x := x1.Clone()
	for i := 2; i <= opt.L1; i++ {
		next := p.MulDense(x)
		next.Scale(1 - opt.Alpha)
		next.AddInPlace(x1)
		x = next
	}
	x.Scale(opt.Alpha * (1 - opt.Alpha))

	return &Embedding{X: x, Y: y}, nil
}
