package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/svd"
)

// ApproxPPR implements Algorithm 1 of the paper: it factorizes the
// adjacency matrix with randomized block-Krylov SVD, seeds
// X₁ = D⁻¹U√Σ, Y = V√Σ (so X₁Yᵀ ≈ P), then folds higher-order proximity
// into X by ℓ₁−1 sparse iterations X_i = (1−α)·P·X_{i−1} + X₁ and a final
// scaling by α(1−α), yielding X·Yᵀ ≈ Π′ = Σ_{i=1..ℓ₁} α(1−α)^i P^i with the
// Theorem-1 error bound. The embeddings are the paper's PPR baseline and
// the starting point of NRP.
//
// Deprecated: use ApproxPPRCtx, which supports cancellation, progress
// reporting and run stats.
func ApproxPPR(g *graph.Graph, opt Options) (*Embedding, error) {
	emb, _, err := ApproxPPRCtx(context.Background(), g, opt)
	return emb, err
}

// ApproxPPRCtx is the context-aware Algorithm 1. The context is checked
// between Krylov iterations and between PPR folding iterations; on
// cancellation the returned error is ctx.Err(). Stats are returned even on
// error, covering the phases that ran.
func ApproxPPRCtx(ctx context.Context, g *graph.Graph, opt Options, opts ...RunOption) (*Embedding, *Stats, error) {
	t := newTracker(ctx, NewRunConfig(opts))
	emb, err := approxPPR(g, opt, t)
	return emb, t.done(), err
}

// ApproxPPRFactorsCtx runs Algorithm 1 like ApproxPPRCtx, but additionally
// accepts an optional warm-start block for the BKSVD factorizer (the V
// factor of a previous run, pass nil for a cold start) and returns the
// right-singular-vector block of this run for warm-starting the next one.
// Combined with a reduced Options.KrylovIters this is how the dynamic
// subsystem re-factorizes an updated graph at a fraction of the cold cost.
func ApproxPPRFactorsCtx(ctx context.Context, g *graph.Graph, opt Options, init *matrix.Dense, opts ...RunOption) (*Embedding, *matrix.Dense, *Stats, error) {
	t := newTracker(ctx, NewRunConfig(opts))
	emb, v, err := approxPPRFactors(g, opt, t, init)
	return emb, v, t.done(), err
}

// isCtxErr reports whether err is a context cancellation/deadline error,
// which the pipeline propagates bare so callers can compare against
// ctx.Err().
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// approxPPR runs Algorithm 1 under an existing tracker so NRP can share
// one stats record across its phases.
func approxPPR(g *graph.Graph, opt Options, t *tracker) (*Embedding, error) {
	emb, _, err := approxPPRFactors(g, opt, t, nil)
	return emb, err
}

// approxPPRFactors is approxPPR with the factorizer's starting block
// exposed (init, nil = Gaussian) and its right-singular-vector block
// returned for warm-starting a future factorization.
func approxPPRFactors(g *graph.Graph, opt Options, t *tracker, init *matrix.Dense) (*Embedding, *matrix.Dense, error) {
	if err := opt.Validate(); err != nil {
		return nil, nil, err
	}
	if err := t.cfg.Estimator.validate(); err != nil {
		return nil, nil, err
	}
	kPrime := opt.Dim / 2
	if kPrime > g.N {
		return nil, nil, fmt.Errorf("core: k/2 = %d exceeds node count %d", kPrime, g.N)
	}
	if t.cfg.Estimator.Kind == EstimatorFORA {
		if init != nil {
			return nil, nil, fmt.Errorf("%w: warm-start factorization requires the %q estimator", ErrEstimatorOptionConflict, EstimatorPush)
		}
		return foraPPRFactors(g, opt, t)
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Line 1: [U, Σ, V] ← BKSVD(A, k′, ε).
	stopFactorize := t.phaseTimer(&t.stats.Factorize)
	factorize := svd.BKSVD
	if opt.SubspaceIteration {
		factorize = svd.SubspaceIteration
	}
	// Iterations seen via the progress hook, so a cancelled factorization
	// still reports how far it got.
	kryIters := 0
	res, err := factorize(g.Adj, svd.Options{
		Rank:    kPrime,
		Epsilon: opt.Epsilon,
		Iters:   opt.KrylovIters,
		Rng:     rng,
		Init:    init,
		Ctx:     t.ctx,
		Pool:    t.pool,
		Progress: func(iter, total int) {
			kryIters = iter
			t.step(PhaseFactorize, iter, total)
		},
	})
	if err != nil {
		stopFactorize(kryIters)
		t.stats.KrylovIters = kryIters
		if isCtxErr(err) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: factorizing adjacency: %w", err)
	}
	stopFactorize(res.ItersRun)
	t.stats.KrylovIters = res.ItersRun
	for _, s := range res.S {
		if s > 1e-12 {
			t.stats.AchievedRank++
		}
	}

	// Line 2: X₁ = D⁻¹·U·√Σ, Y = V·√Σ. Row loops parallelize over the
	// pool (disjoint rows: bit-identical for any thread count).
	sqrtS := make([]float64, len(res.S))
	for i, s := range res.S {
		sqrtS[i] = math.Sqrt(s)
	}
	x1 := res.U.Clone()
	invDeg := g.InvOutDegrees()
	t.pool.For(g.N, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			row := x1.Row(u)
			for j := range row {
				row[j] *= invDeg[u] * sqrtS[j]
			}
		}
	})
	y := res.V.Clone()
	t.pool.For(g.N, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			row := y.Row(v)
			for j := range row {
				row[j] *= sqrtS[j]
			}
		}
	})

	// Lines 3–5: X_i = (1−α)·P·X_{i−1} + X₁; X = α(1−α)·X_{ℓ₁}.
	stopPPR := t.phaseTimer(&t.stats.PPR)
	p := g.Transition()
	x := x1.Clone()
	iters := 0
	for i := 2; i <= opt.L1; i++ {
		if err := t.err(); err != nil {
			stopPPR(iters)
			return nil, nil, err
		}
		next := p.MulDensePool(t.pool, x)
		// Fused (1−α)·next + X₁, parallel over disjoint row ranges.
		t.pool.For(g.N, func(_, lo, hi int) {
			oneMinus := 1 - opt.Alpha
			for u := lo; u < hi; u++ {
				row := next.Row(u)
				x1row := x1.Row(u)
				for j := range row {
					row[j] = row[j]*oneMinus + x1row[j]
				}
			}
		})
		x = next
		iters++
		t.step(PhasePPR, iters, opt.L1-1)
	}
	scale := opt.Alpha * (1 - opt.Alpha)
	t.pool.For(g.N, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			row := x.Row(u)
			for j := range row {
				row[j] *= scale
			}
		}
	})
	stopPPR(iters)

	return &Embedding{X: x, Y: y}, res.V, nil
}
