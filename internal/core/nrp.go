package core

import (
	"fmt"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/graph"
)

// NRP implements Algorithm 3, the paper's main method. Starting from the
// ApproxPPR embeddings, it learns a forward weight →w_u and backward weight
// ←w_v per node by ℓ₂ epochs of coordinate descent on Eq. (6), so that the
// total connection strength Σ_v →w_u·(X_uY_vᵀ)·←w_v matches each node's
// out-degree (and symmetrically in-degree) — correcting PPR's purely local,
// source-relative view. The learned weights are folded into the embeddings:
// X_v ← →w_v·X_v, Y_v ← ←w_v·Y_v.
func NRP(g *graph.Graph, opt Options) (*Embedding, error) {
	emb, err := ApproxPPR(g, opt)
	if err != nil {
		return nil, err
	}
	if opt.L2 == 0 {
		// ℓ₂ = 0 disables reweighting entirely (§5.6): the result is the
		// conventional-PPR embedding, not the degree-scaled initialization.
		return emb, nil
	}
	fw, bw, err := LearnWeights(g, emb, opt)
	if err != nil {
		return nil, err
	}
	// Lines 8–9: fold weights into the embeddings.
	for v := 0; v < g.N; v++ {
		emb.X.ScaleRow(v, fw[v])
		emb.Y.ScaleRow(v, bw[v])
	}
	return emb, nil
}

// LearnWeights runs the reweighting phase of Algorithm 3 (lines 3–7) on
// fixed embeddings and returns the learned forward and backward weights.
// It is exposed separately so callers can inspect or reuse the weights
// (e.g. the parameter studies of Fig 8d).
func LearnWeights(g *graph.Graph, emb *Embedding, opt Options) (fw, bw []float64, err error) {
	return LearnWeightsWithTargets(emb, g.InDegrees(), g.OutDegrees(), opt)
}

// LearnWeightsWithTargets runs the coordinate descent against custom
// per-node strength targets instead of the in-/out-degrees of Eq. (5).
// This exists for the weight-target ablation (DESIGN.md §5.4): passing
// uniform targets isolates how much of NRP's gain comes from targeting
// degrees specifically.
func LearnWeightsWithTargets(emb *Embedding, din, dout []float64, opt Options) (fw, bw []float64, err error) {
	if err := opt.Validate(); err != nil {
		return nil, nil, err
	}
	if len(din) != emb.N() || len(dout) != emb.N() {
		return nil, nil, fmt.Errorf("core: target lengths %d/%d for %d nodes", len(din), len(dout), emb.N())
	}
	state := newReweightState(emb, din, dout, opt)
	rng := rand.New(rand.NewSource(opt.Seed + 0x9e3779b9))
	for epoch := 0; epoch < opt.L2; epoch++ {
		state.updateBwdWeights(rng)
		state.updateFwdWeights(rng)
	}
	return state.fw, state.bw, nil
}
