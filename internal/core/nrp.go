package core

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/graph"
)

// NRP implements Algorithm 3, the paper's main method. Starting from the
// ApproxPPR embeddings, it learns a forward weight →w_u and backward weight
// ←w_v per node by ℓ₂ epochs of coordinate descent on Eq. (6), so that the
// total connection strength Σ_v →w_u·(X_uY_vᵀ)·←w_v matches each node's
// out-degree (and symmetrically in-degree) — correcting PPR's purely local,
// source-relative view. The learned weights are folded into the embeddings:
// X_v ← →w_v·X_v, Y_v ← ←w_v·Y_v.
//
// Deprecated: use NRPCtx, which supports cancellation, progress reporting
// and run stats.
func NRP(g *graph.Graph, opt Options) (*Embedding, error) {
	emb, _, err := NRPCtx(context.Background(), g, opt)
	return emb, err
}

// NRPCtx is the context-aware Algorithm 3. The context is checked inside
// the factorization, the PPR folding iterations and between reweighting
// epochs; on cancellation the returned error is ctx.Err(). Stats are
// returned even on error, covering the phases that ran.
func NRPCtx(ctx context.Context, g *graph.Graph, opt Options, opts ...RunOption) (*Embedding, *Stats, error) {
	t := newTracker(ctx, NewRunConfig(opts))
	emb, err := nrpTracked(g, opt, t)
	return emb, t.done(), err
}

func nrpTracked(g *graph.Graph, opt Options, t *tracker) (*Embedding, error) {
	emb, err := approxPPR(g, opt, t)
	if err != nil {
		return nil, err
	}
	if opt.L2 == 0 {
		// ℓ₂ = 0 disables reweighting entirely (§5.6): the result is the
		// conventional-PPR embedding, not the degree-scaled initialization.
		return emb, nil
	}
	fw, bw, err := learnWeights(emb, g.InDegrees(), g.OutDegrees(), opt, t)
	if err != nil {
		return nil, err
	}
	// Lines 8–9: fold weights into the embeddings (disjoint rows).
	t.pool.For(g.N, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			emb.X.ScaleRow(v, fw[v])
			emb.Y.ScaleRow(v, bw[v])
		}
	})
	return emb, nil
}

// LearnWeights runs the reweighting phase of Algorithm 3 (lines 3–7) on
// fixed embeddings and returns the learned forward and backward weights.
// It is exposed separately so callers can inspect or reuse the weights
// (e.g. the parameter studies of Fig 8d).
//
// Deprecated: use LearnWeightsCtx, which supports cancellation, progress
// reporting and run stats.
func LearnWeights(g *graph.Graph, emb *Embedding, opt Options) (fw, bw []float64, err error) {
	fw, bw, _, err = LearnWeightsCtx(context.Background(), g, emb, opt)
	return fw, bw, err
}

// LearnWeightsCtx is the context-aware reweighting phase. The context is
// checked between coordinate-descent passes; on cancellation the returned
// error is ctx.Err(). Stats report per-epoch residuals.
func LearnWeightsCtx(ctx context.Context, g *graph.Graph, emb *Embedding, opt Options, opts ...RunOption) (fw, bw []float64, stats *Stats, err error) {
	t := newTracker(ctx, NewRunConfig(opts))
	fw, bw, err = learnWeights(emb, g.InDegrees(), g.OutDegrees(), opt, t)
	return fw, bw, t.done(), err
}

// LearnWeightsWithTargets runs the coordinate descent against custom
// per-node strength targets instead of the in-/out-degrees of Eq. (5).
// This exists for the weight-target ablation (DESIGN.md §5.4): passing
// uniform targets isolates how much of NRP's gain comes from targeting
// degrees specifically.
func LearnWeightsWithTargets(emb *Embedding, din, dout []float64, opt Options) (fw, bw []float64, err error) {
	return learnWeights(emb, din, dout, opt, newTracker(context.Background(), RunConfig{}))
}

// learnWeights is the shared reweighting loop: ℓ₂ epochs of backward then
// forward coordinate-descent passes, with a cancellation check between
// passes and per-epoch mean absolute weight movement recorded as the
// convergence residual.
func learnWeights(emb *Embedding, din, dout []float64, opt Options, t *tracker) (fw, bw []float64, err error) {
	if err := opt.Validate(); err != nil {
		return nil, nil, err
	}
	if len(din) != emb.N() || len(dout) != emb.N() {
		return nil, nil, fmt.Errorf("core: target lengths %d/%d for %d nodes", len(din), len(dout), emb.N())
	}
	stop := t.phaseTimer(&t.stats.Reweight)
	state := newReweightState(emb, din, dout, opt, t.pool)
	rng := rand.New(rand.NewSource(opt.Seed + 0x9e3779b9))
	epochs := 0
	for epoch := 0; epoch < opt.L2; epoch++ {
		if err := t.err(); err != nil {
			stop(epochs)
			return nil, nil, err
		}
		moveB := state.updateBwdWeights(rng)
		if err := t.err(); err != nil {
			stop(epochs)
			return nil, nil, err
		}
		moveF := state.updateFwdWeights(rng)
		epochs++
		residual := (moveB + moveF) / float64(2*emb.N())
		t.stats.ReweightResiduals = append(t.stats.ReweightResiduals, residual)
		t.step(PhaseReweight, epochs, opt.L2)
		// Convergence early-stop: the coordinate descent contracts
		// geometrically, so once an epoch moves the weights below
		// ReweightTol of the first epoch's movement, further epochs are
		// noise-level refinement at full cost.
		if opt.ReweightTol > 0 && epoch > 0 &&
			residual <= opt.ReweightTol*t.stats.ReweightResiduals[0] {
			break
		}
	}
	stop(epochs)
	return state.fw, state.bw, nil
}
