package core

import "github.com/nrp-embed/nrp/internal/matrix"

// This file holds the O(n²k′) reference implementations of the coordinate
// update coefficients, transcribed literally from Eq. (7) (backward) and
// Eq. (23) (forward) of the paper. They exist only so tests can verify the
// accelerated versions in reweight.go; nothing in the solver path calls
// them.

// naiveBwdCoeffs evaluates a₁, a₂, a₃, b₁ (exact), b₂ of Eq. (7) for node
// vStar under the current weights.
func (s *reweightState) naiveBwdCoeffs(vStar int) (a1, a2, a3, b1, b2 float64) {
	yv := s.y.Row(vStar)
	// a₁ = (Σ_u dout(u)·→w_u·X_u)·Y_v*ᵀ over all u.
	for u := 0; u < s.n; u++ {
		a1 += s.dout[u] * s.fw[u] * matrix.Dot(s.x.Row(u), yv)
	}
	// a₂ = din(v*)·(Σ_{u≠v*} →w_u·X_u)·Y_v*ᵀ ; b₂ = (Σ_{u≠v*} →w_u·X_u·Y_v*ᵀ)².
	sum := 0.0
	for u := 0; u < s.n; u++ {
		if u == vStar {
			continue
		}
		sum += s.fw[u] * matrix.Dot(s.x.Row(u), yv)
	}
	a2 = s.din[vStar] * sum
	b2 = sum * sum
	// a₃ = Σ_u →w_u²·(X_uY_v*ᵀ)·Σ_{v≠u,v≠v*} (X_uY_vᵀ)·←w_v.
	for u := 0; u < s.n; u++ {
		xu := s.x.Row(u)
		inner := 0.0
		for v := 0; v < s.n; v++ {
			if v == u || v == vStar {
				continue
			}
			inner += matrix.Dot(xu, s.y.Row(v)) * s.bw[v]
		}
		a3 += s.fw[u] * s.fw[u] * matrix.Dot(xu, yv) * inner
	}
	// b₁ = Σ_{u≠v*} (→w_u·X_u·Y_v*ᵀ)² — the exact value Eq. (12) bounds.
	for u := 0; u < s.n; u++ {
		if u == vStar {
			continue
		}
		d := s.fw[u] * matrix.Dot(s.x.Row(u), yv)
		b1 += d * d
	}
	return a1, a2, a3, b1, b2
}

// naiveFwdCoeffs evaluates a₁′, a₂′, a₃′, b₁′ (exact), b₂′ of Eq. (23) for
// node uStar under the current weights.
func (s *reweightState) naiveFwdCoeffs(uStar int) (a1, a2, a3, b1, b2 float64) {
	xu := s.x.Row(uStar)
	// a₁′ = X_u*·Σ_v din(v)·←w_v·Y_vᵀ over all v.
	for v := 0; v < s.n; v++ {
		a1 += s.din[v] * s.bw[v] * matrix.Dot(xu, s.y.Row(v))
	}
	// a₂′ = dout(u*)·X_u*·Σ_{v≠u*} ←w_v·Y_vᵀ ; b₂′ = (…)².
	sum := 0.0
	for v := 0; v < s.n; v++ {
		if v == uStar {
			continue
		}
		sum += s.bw[v] * matrix.Dot(xu, s.y.Row(v))
	}
	a2 = s.dout[uStar] * sum
	b2 = sum * sum
	// a₃′ = Σ_v (Σ_{u≠v,u≠u*} →w_u·X_u·Y_vᵀ·←w_v)·X_u*·Y_vᵀ·←w_v.
	for v := 0; v < s.n; v++ {
		yv := s.y.Row(v)
		inner := 0.0
		for u := 0; u < s.n; u++ {
			if u == v || u == uStar {
				continue
			}
			inner += s.fw[u] * matrix.Dot(s.x.Row(u), yv) * s.bw[v]
		}
		a3 += inner * matrix.Dot(xu, yv) * s.bw[v]
	}
	// b₁′ = Σ_{v≠u*} (X_u*·Y_vᵀ·←w_v)².
	for v := 0; v < s.n; v++ {
		if v == uStar {
			continue
		}
		d := matrix.Dot(xu, s.y.Row(v)) * s.bw[v]
		b1 += d * d
	}
	return a1, a2, a3, b1, b2
}

// fastBwdCoeffs recomputes the shared statistics from scratch and returns
// the accelerated coefficients for a single node, mirroring one iteration
// of updateBwdWeights without mutating state. Tests compare this against
// naiveBwdCoeffs.
func (s *reweightState) fastBwdCoeffs(vStar int) (a1, a2, a3, b1Approx, b1Exact, b2 float64) {
	k := s.kPrime
	xi := make([]float64, k)
	chi := make([]float64, k)
	lambdaM := matrix.NewDense(k, k)
	rho1 := make([]float64, k)
	rho2 := make([]float64, k)
	phi := make([]float64, k)
	for u := 0; u < s.n; u++ {
		xu := s.x.Row(u)
		fwU := s.fw[u]
		matrix.Axpy(s.dout[u]*fwU, xu, xi)
		matrix.Axpy(fwU, xu, chi)
		fw2 := fwU * fwU
		for r := 0; r < k; r++ {
			phi[r] += fw2 * xu[r] * xu[r]
			matrix.Axpy(fw2*xu[r], xu, lambdaM.Row(r))
		}
		matrix.Axpy(s.bw[u], s.y.Row(u), rho1)
		matrix.Axpy(fw2*s.bw[u]*s.xyDot[u], xu, rho2)
	}
	yv := s.y.Row(vStar)
	xv := s.x.Row(vStar)
	fwV, bwV, dotXY := s.fw[vStar], s.bw[vStar], s.xyDot[vStar]
	a1 = matrix.Dot(xi, yv)
	t := matrix.Dot(chi, yv) - fwV*dotXY
	a2 = s.din[vStar] * t
	b2 = t * t
	lamY := make([]float64, k)
	lambdaM.MulVecInto(yv, lamY)
	yLamY := matrix.Dot(yv, lamY)
	a3 = matrix.Dot(rho1, lamY) - bwV*yLamY - matrix.Dot(rho2, yv) + bwV*dotXY*dotXY*fwV*fwV
	sum := 0.0
	for r := 0; r < k; r++ {
		sum += yv[r] * yv[r] * (phi[r] - fwV*fwV*xv[r]*xv[r])
	}
	b1Approx = float64(k) / 2 * sum
	b1Exact = yLamY - fwV*fwV*dotXY*dotXY
	return a1, a2, a3, b1Approx, b1Exact, b2
}

// fastFwdCoeffs is the forward-weight analog of fastBwdCoeffs.
func (s *reweightState) fastFwdCoeffs(uStar int) (a1, a2, a3, b1Approx, b1Exact, b2 float64) {
	k := s.kPrime
	xi := make([]float64, k)
	chi := make([]float64, k)
	lambdaM := matrix.NewDense(k, k)
	rho1 := make([]float64, k)
	rho2 := make([]float64, k)
	phi := make([]float64, k)
	for v := 0; v < s.n; v++ {
		yv := s.y.Row(v)
		bwV := s.bw[v]
		matrix.Axpy(s.din[v]*bwV, yv, xi)
		matrix.Axpy(bwV, yv, chi)
		bw2 := bwV * bwV
		for r := 0; r < k; r++ {
			phi[r] += bw2 * yv[r] * yv[r]
			matrix.Axpy(bw2*yv[r], yv, lambdaM.Row(r))
		}
		matrix.Axpy(s.fw[v], s.x.Row(v), rho1)
		matrix.Axpy(s.fw[v]*bw2*s.xyDot[v], yv, rho2)
	}
	xu := s.x.Row(uStar)
	yu := s.y.Row(uStar)
	fwU, bwU, dotXY := s.fw[uStar], s.bw[uStar], s.xyDot[uStar]
	a1 = matrix.Dot(xu, xi)
	t := matrix.Dot(xu, chi) - bwU*dotXY
	a2 = s.dout[uStar] * t
	b2 = t * t
	lamX := make([]float64, k)
	lambdaM.MulVecInto(xu, lamX)
	xLamX := matrix.Dot(xu, lamX)
	a3 = matrix.Dot(rho1, lamX) - fwU*xLamX - matrix.Dot(rho2, xu) + bwU*bwU*dotXY*dotXY*fwU
	sum := 0.0
	for r := 0; r < k; r++ {
		sum += xu[r] * xu[r] * (phi[r] - bwU*bwU*yu[r]*yu[r])
	}
	b1Approx = float64(k) / 2 * sum
	b1Exact = xLamX - bwU*bwU*dotXY*dotXY
	return a1, a2, a3, b1Approx, b1Exact, b2
}
