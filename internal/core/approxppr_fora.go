package core

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/fora"
	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/sparse"
	"github.com/nrp-embed/nrp/internal/svd"
)

const (
	// foraMinTopK floors the entries kept per PPR row so low-dimensional
	// runs (small k′) still give the factorization enough support. On
	// community-structured graphs rows truncated near k′ itself are too
	// sparse relative to community size for the SVD to recover the
	// community subspace, so the floor sits well above typical k′.
	foraMinTopK = fora.DefaultBuildTopK
	// foraFactorIters is the default subspace-iteration count for
	// factorizing the sparse proximity matrix. Π̂ has fast spectral
	// decay (it is already a low-rank-plus-noise object), so a couple of
	// iterations recover the dominant subspace — and stopping there
	// measurably beats running longer: extra iterations converge toward
	// the truncated matrix's exact subspace, which includes its sampling
	// and truncation noise, while the dominant community structure is
	// already captured. Options.KrylovIters overrides.
	foraFactorIters = 2
)

// foraPPRFactors is the EstimatorFORA implementation of the
// approximate-PPR phase: estimate the top entries of every row of
// Π′ = Σ_{i≥1} α(1−α)^i P^i with the FORA build estimator (shared walk
// index, top-k early termination), assemble them as a sparse matrix, and
// factorize it directly with subspace iteration into X = U√Σ, Y = V√Σ —
// the STRAP-style direct factorization, replacing Algorithm 1's
// adjacency-BKSVD + proximity-folding route. The two backends produce
// different (not bit-comparable) factor pairs that agree on downstream
// task quality; the bench gate holds them to link-prediction AUC parity.
//
// Phase accounting maps the row estimation to PhasePPR and the SVD to
// PhaseFactorize, so Stats stay comparable across estimators.
func foraPPRFactors(g *graph.Graph, opt Options, t *tracker) (*Embedding, *matrix.Dense, error) {
	kPrime := opt.Dim / 2
	ec := t.cfg.Estimator
	topK := ec.TopK
	if topK == 0 {
		topK = kPrime
		if topK < foraMinTopK {
			topK = foraMinTopK
		}
	}

	stopPPR := t.phaseTimer(&t.stats.PPR)
	est, err := fora.NewBuildEstimator(t.ctx, g, t.pool, fora.BuildOptions{
		Alpha:        opt.Alpha,
		TopK:         topK,
		Epsilon:      ec.Epsilon,
		WalksPerNode: ec.WalksPerNode,
		Seed:         opt.Seed,
		Exhaustive:   ec.Exhaustive,
	})
	if err != nil {
		stopPPR(0)
		if isCtxErr(err) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: building FORA estimator: %w", err)
	}
	// Each emitted row lands in its own stride-sized slot of a flat buffer
	// pair — disjoint writes need no locking, and the rows arrive sorted
	// and duplicate-free, so the proximity matrix assembles with a single
	// packing pass instead of a triple buffer plus two counting sorts.
	stride := est.Options().TopK
	colBuf := make([]int32, g.N*stride)
	valBuf := make([]float64, g.N*stride)
	lens := make([]int32, g.N)
	rows := 0
	err = est.Rows(t.ctx, func(u int32, cols []int32, vals []float64) {
		base := int(u) * stride
		copy(colBuf[base:base+len(cols)], cols)
		copy(valBuf[base:base+len(vals)], vals)
		lens[u] = int32(len(cols))
	}, func(done, total int) {
		rows = done
		t.step(PhasePPR, done, total)
	})
	stopPPR(rows)
	if err != nil {
		if isCtxErr(err) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: estimating PPR rows: %w", err)
	}

	pi, err := sparse.FromStridedRows(g.N, g.N, lens, stride, colBuf, valBuf)
	if err != nil {
		return nil, nil, fmt.Errorf("core: assembling proximity matrix: %w", err)
	}

	stopFactorize := t.phaseTimer(&t.stats.Factorize)
	iters := opt.KrylovIters
	if iters <= 0 {
		iters = foraFactorIters
	}
	svdIters := 0
	res, err := svd.SubspaceIteration(pi, svd.Options{
		Rank:    kPrime,
		Epsilon: opt.Epsilon,
		Iters:   iters,
		Rng:     rand.New(rand.NewSource(opt.Seed)),
		Ctx:     t.ctx,
		Pool:    t.pool,
		Progress: func(iter, total int) {
			svdIters = iter
			t.step(PhaseFactorize, iter, total)
		},
	})
	if err != nil {
		stopFactorize(svdIters)
		t.stats.KrylovIters = svdIters
		if isCtxErr(err) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: factorizing proximity matrix: %w", err)
	}
	stopFactorize(res.ItersRun)
	t.stats.KrylovIters = res.ItersRun
	for _, s := range res.S {
		if s > 1e-12 {
			t.stats.AchievedRank++
		}
	}

	// X = U√Σ, Y = V√Σ (no D⁻¹ scaling: Π̂ is factorized directly, unlike
	// the push path which factorizes A and folds the transition later).
	sqrtS := make([]float64, len(res.S))
	for i, s := range res.S {
		sqrtS[i] = math.Sqrt(s)
	}
	x := res.U.Clone()
	t.pool.For(g.N, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			row := x.Row(u)
			for j := range row {
				row[j] *= sqrtS[j]
			}
		}
	})
	y := res.V.Clone()
	t.pool.For(g.N, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			row := y.Row(v)
			for j := range row {
				row[j] *= sqrtS[j]
			}
		}
	})

	return &Embedding{X: x, Y: y}, res.V, nil
}
