// Package core implements the paper's contribution: the ApproxPPR baseline
// (Algorithm 1) and the full Node-Reweighted PageRank method NRP
// (Algorithms 2–4), which augments PPR-derived embeddings with per-node
// forward/backward weights fitted to out-/in-degrees by coordinate descent.
package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/nrp-embed/nrp/internal/matrix"
)

// Embedding holds the forward (X) and backward (Y) embedding matrices of a
// graph: row u of X and row v of Y satisfy X_u·Y_vᵀ ≈ proximity(u→v). Both
// are n×k′ with k′ = k/2 of the user's total budget k.
type Embedding struct {
	X *matrix.Dense
	Y *matrix.Dense
}

// N reports the number of embedded nodes.
func (e *Embedding) N() int { return e.X.Rows }

// Clone returns a deep copy of the embedding, so that a snapshot handed to
// readers (a serving index, an evaluation) stays immutable while the copy
// is updated in place.
func (e *Embedding) Clone() *Embedding {
	return &Embedding{X: e.X.Clone(), Y: e.Y.Clone()}
}

// Dim reports the per-side dimensionality k′.
func (e *Embedding) Dim() int { return e.X.Cols }

// Score returns the directed proximity estimate X_u·Y_vᵀ, the quantity used
// for link prediction and graph reconstruction in the paper.
func (e *Embedding) Score(u, v int) float64 {
	return matrix.Dot(e.X.Row(u), e.Y.Row(v))
}

// Forward returns node v's forward embedding, aliasing internal storage.
func (e *Embedding) Forward(v int) []float64 { return e.X.Row(v) }

// Backward returns node v's backward embedding, aliasing internal storage.
func (e *Embedding) Backward(v int) []float64 { return e.Y.Row(v) }

// Features returns the classification feature vector of node v: the
// concatenation of the L2-normalized forward and backward embeddings, as in
// the paper's node-classification protocol (§5.4).
func (e *Embedding) Features(v int) []float64 {
	k := e.Dim()
	out := make([]float64, 2*k)
	copy(out[:k], e.X.Row(v))
	copy(out[k:], e.Y.Row(v))
	matrix.NormalizeRow(out[:k])
	matrix.NormalizeRow(out[k:])
	return out
}

const embMagic = "NRPE"
const embVersion = 1

// Save writes the embedding in a compact binary format.
func (e *Embedding) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(embMagic); err != nil {
		return err
	}
	header := []int64{embVersion, int64(e.X.Rows), int64(e.X.Cols)}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, m := range []*matrix.Dense{e.X, e.Y} {
		if err := binary.Write(bw, binary.LittleEndian, m.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveText writes the embedding in the word2vec text format commonly
// consumed by downstream tooling: a "n dim" header line, then one line per
// node with the node id followed by the concatenated forward and backward
// vector (k = 2k′ values).
func (e *Embedding) SaveText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	n, k := e.N(), e.Dim()
	if _, err := fmt.Fprintf(bw, "%d %d\n", n, 2*k); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		if _, err := fmt.Fprintf(bw, "%d", v); err != nil {
			return err
		}
		for _, row := range [][]float64{e.X.Row(v), e.Y.Row(v)} {
			for _, x := range row {
				if _, err := fmt.Fprintf(bw, " %g", x); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads an embedding written by Save.
func Load(r io.Reader) (*Embedding, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(embMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if string(magic) != embMagic {
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
	var version, n, k int64
	for _, p := range []*int64{&version, &n, &k} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("core: reading header: %w", err)
		}
	}
	if version != embVersion {
		return nil, fmt.Errorf("core: unsupported version %d", version)
	}
	if n < 0 || k < 0 || n*k > 1<<34 {
		return nil, fmt.Errorf("core: implausible dimensions %dx%d", n, k)
	}
	e := &Embedding{X: matrix.NewDense(int(n), int(k)), Y: matrix.NewDense(int(n), int(k))}
	for _, m := range []*matrix.Dense{e.X, e.Y} {
		if err := binary.Read(br, binary.LittleEndian, m.Data); err != nil {
			return nil, fmt.Errorf("core: reading payload: %w", err)
		}
	}
	return e, nil
}
