package core

import (
	"math"
	"testing"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
)

func attrGraph(t testing.TB) (*graph.Graph, *matrix.Dense) {
	t.Helper()
	g, err := graph.GenSBM(graph.SBMConfig{N: 300, M: 1800, Communities: 5, IntraFrac: 0.9, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := graph.GenAttributes(g, 12, 1.5, 62)
	if err != nil {
		t.Fatal(err)
	}
	return g, matrix.NewDenseFromRows(rows)
}

func TestAttributedOptionsValidate(t *testing.T) {
	if err := DefaultAttributedOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultAttributedOptions()
	bad.Beta = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("Beta > 1 accepted")
	}
	bad = DefaultAttributedOptions()
	bad.AttrDim = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative AttrDim accepted")
	}
	bad = DefaultAttributedOptions()
	bad.Dim = 3
	if err := bad.Validate(); err == nil {
		t.Fatal("odd Dim accepted via embedded options")
	}
}

func TestNRPAttributedShapes(t *testing.T) {
	g, attrs := attrGraph(t)
	opt := DefaultAttributedOptions()
	opt.Dim = 16
	opt.Seed = 5
	emb, err := NRPAttributed(g, attrs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Attr.Rows != g.N || emb.Attr.Cols != attrs.Cols {
		t.Fatalf("attr shape %dx%d", emb.Attr.Rows, emb.Attr.Cols)
	}
	f := emb.Features(0)
	if len(f) != 16+attrs.Cols {
		t.Fatalf("feature length %d", len(f))
	}
	// Attribute rows are unit-norm.
	for v := 0; v < g.N; v++ {
		if n := matrix.Norm2(emb.Attr.Row(v)); math.Abs(n-1) > 1e-9 && n != 0 {
			t.Fatalf("row %d norm %v", v, n)
		}
	}
}

func TestNRPAttributedRejectsMismatchedRows(t *testing.T) {
	g, _ := attrGraph(t)
	opt := DefaultAttributedOptions()
	opt.Dim = 8
	if _, err := NRPAttributed(g, matrix.NewDense(3, 4), opt); err == nil {
		t.Fatal("mismatched attribute rows accepted")
	}
}

// Propagation is denoising: within a community, smoothed attributes are
// more tightly clustered around their mean than raw noisy attributes.
func TestPropagationSmoothsWithinCommunities(t *testing.T) {
	g, attrs := attrGraph(t)
	opt := DefaultAttributedOptions()
	opt.Dim = 8
	smoothed := PropagateAttributes(g, attrs, opt)
	// Normalize raw rows for a fair comparison.
	raw := attrs.Clone()
	for v := 0; v < g.N; v++ {
		matrix.NormalizeRow(raw.Row(v))
	}
	spread := func(m *matrix.Dense) float64 {
		total := 0.0
		for c := int32(0); c < int32(g.NumLabels); c++ {
			var members []int
			for v := 0; v < g.N; v++ {
				if g.Labels[v][0] == c {
					members = append(members, v)
				}
			}
			if len(members) < 2 {
				continue
			}
			mean := make([]float64, m.Cols)
			for _, v := range members {
				matrix.Axpy(1, m.Row(v), mean)
			}
			for j := range mean {
				mean[j] /= float64(len(members))
			}
			for _, v := range members {
				diff := append([]float64(nil), m.Row(v)...)
				matrix.Axpy(-1, mean, diff)
				total += matrix.Dot(diff, diff)
			}
		}
		return total
	}
	if spread(smoothed) >= spread(raw) {
		t.Fatalf("propagation did not smooth: %v >= %v", spread(smoothed), spread(raw))
	}
}

// With informative attributes, attribute-aware scoring separates intra-
// community pairs better than β=0 (pure topology) on noisy attributes.
func TestAttributedScoreBlendsChannels(t *testing.T) {
	g, attrs := attrGraph(t)
	opt := DefaultAttributedOptions()
	opt.Dim = 16
	opt.Seed = 6
	emb, err := NRPAttributed(g, attrs, opt)
	if err != nil {
		t.Fatal(err)
	}
	// β=0 must reduce to the topology score.
	zero := *emb
	zero.Beta = 0
	if math.Abs(zero.Score(1, 2)-emb.Topology.Score(1, 2)) > 1e-12 {
		t.Fatal("β=0 should equal topology score")
	}
	// β=1 must reduce to attribute cosine.
	one := *emb
	one.Beta = 1
	want := matrix.Dot(emb.Attr.Row(1), emb.Attr.Row(2))
	if math.Abs(one.Score(1, 2)-want) > 1e-12 {
		t.Fatal("β=1 should equal attribute similarity")
	}
}

func TestPropagateAttributesProjection(t *testing.T) {
	g, attrs := attrGraph(t)
	opt := DefaultAttributedOptions()
	opt.Dim = 8
	opt.AttrDim = 4
	smoothed := PropagateAttributes(g, attrs, opt)
	if smoothed.Cols != 4 {
		t.Fatalf("projection ignored: %d cols", smoothed.Cols)
	}
	// AttrDim larger than input width keeps the input width.
	opt.AttrDim = 99
	if got := PropagateAttributes(g, attrs, opt); got.Cols != attrs.Cols {
		t.Fatalf("oversized AttrDim should keep width, got %d", got.Cols)
	}
}
