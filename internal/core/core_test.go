package core

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/ppr"
)

// fig1 builds the paper's Fig-1 example graph.
func fig1(t testing.TB) *graph.Graph {
	t.Helper()
	raw := [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 4}, {2, 3}, {2, 4}, {3, 4},
		{4, 5}, {5, 6}, {6, 7}, {7, 8},
	}
	edges := make([]graph.Edge, len(raw))
	for i, e := range raw {
		edges[i] = graph.Edge{U: e[0], V: e[1]}
	}
	g, err := graph.New(9, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testOptions() Options {
	opt := DefaultOptions()
	opt.Dim = 8
	opt.Seed = 7
	return opt
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	cases := []func(*Options){
		func(o *Options) { o.Dim = 0 },
		func(o *Options) { o.Dim = 7 }, // odd
		func(o *Options) { o.Alpha = 0 },
		func(o *Options) { o.Alpha = 1 },
		func(o *Options) { o.L1 = 0 },
		func(o *Options) { o.L2 = -1 },
		func(o *Options) { o.Epsilon = 0 },
		func(o *Options) { o.Lambda = -1 },
	}
	for i, mutate := range cases {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

// TestApproxPPRTheorem1Bound verifies the paper's Theorem 1: for every
// off-diagonal pair, |Π[u,v] − (XYᵀ)[u,v]| is within
// (1+ε)·σ_{k′+1}·(1−α)(1−(1−α)^ℓ₁) + (1−α)^{ℓ₁+1}.
func TestApproxPPRTheorem1Bound(t *testing.T) {
	g, err := graph.GenSBM(graph.SBMConfig{N: 120, M: 700, Communities: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	opt.Dim = 32
	emb, err := ApproxPPR(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := ppr.Exact(g, opt.Alpha, 400)
	if err != nil {
		t.Fatal(err)
	}
	_, sigma, _ := matrix.SVD(g.Adj.ToDense())
	kPrime := opt.Dim / 2
	bound := (1+opt.Epsilon)*sigma[kPrime]*(1-opt.Alpha)*(1-math.Pow(1-opt.Alpha, float64(opt.L1))) +
		math.Pow(1-opt.Alpha, float64(opt.L1+1))
	worst := 0.0
	for u := 0; u < g.N; u++ {
		for v := 0; v < g.N; v++ {
			if u == v {
				continue
			}
			if d := math.Abs(pi.At(u, v) - emb.Score(u, v)); d > worst {
				worst = d
			}
		}
	}
	if worst > bound {
		t.Fatalf("Theorem 1 violated: worst error %v > bound %v", worst, bound)
	}
}

// TestApproxPPRApproximatesPPRWell checks the example of Fig 2: with a
// near-full-rank factorization the inner products track PPR closely.
func TestApproxPPRApproximatesPPRWell(t *testing.T) {
	g := fig1(t)
	opt := testOptions()
	opt.Dim = 16 // k' = 8 of 9 possible
	opt.KrylovIters = 12
	emb, err := ApproxPPR(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := ppr.Exact(g, opt.Alpha, 400)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N; u++ {
		for v := 0; v < g.N; v++ {
			if u == v {
				continue
			}
			if d := math.Abs(pi.At(u, v) - emb.Score(u, v)); d > 0.05 {
				t.Fatalf("score(%d,%d)=%v vs π=%v", u, v, emb.Score(u, v), pi.At(u, v))
			}
		}
	}
}

// TestExample1Shape mirrors the paper's Example 1: the inner products for
// the two highlighted pairs approximate their PPR values (paper:
// X_{v2}·Y_{v4}ᵀ ≈ 0.119, X_{v9}·Y_{v7}ᵀ ≈ 0.166). An exact top-2
// factorization of this adjacency provably cannot reproduce the second
// value (σ₃..σ₅ ≈ 1.6 are far from negligible, and the rank-2 subspace
// concentrates on the v1–v5 clique, giving score(v9,v7) ≈ 0.003), so the
// paper's printed k′=2 factors must stem from a loose randomized run; we
// use k′=4, the smallest rank at which both example values appear.
func TestExample1Shape(t *testing.T) {
	g := fig1(t)
	opt := testOptions()
	opt.Dim = 8 // k' = 4
	opt.KrylovIters = 10
	emb, err := ApproxPPR(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(emb.Score(1, 3) - 0.119); d > 0.05 {
		t.Errorf("score(v2,v4)=%v, paper 0.119", emb.Score(1, 3))
	}
	if d := math.Abs(emb.Score(8, 6) - 0.166); d > 0.05 {
		t.Errorf("score(v9,v7)=%v, paper 0.166", emb.Score(8, 6))
	}
}

// TestNRPFixesPPRDeficiency reproduces the paper's motivating example
// (§1, §4): raw PPR ranks (v9,v7) above (v2,v4) even though v2 and v4
// share three common neighbors; after node reweighting the order flips.
func TestNRPFixesPPRDeficiency(t *testing.T) {
	g := fig1(t)
	opt := testOptions()
	opt.Dim = 8
	opt.KrylovIters = 12
	// Example 2 of the paper sets λ = 0; the default λ = 10 is tuned for
	// large graphs and over-regularizes a 9-node toy, pinning all weights
	// at the 1/n bound.
	opt.Lambda = 0

	base, err := ApproxPPR(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if base.Score(1, 3) >= base.Score(8, 6) {
		t.Fatalf("PPR baseline should rank (v9,v7) over (v2,v4): %v vs %v",
			base.Score(1, 3), base.Score(8, 6))
	}

	emb, err := NRP(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Score(1, 3) <= emb.Score(8, 6) {
		t.Fatalf("NRP should rank (v2,v4) over (v9,v7): %v vs %v",
			emb.Score(1, 3), emb.Score(8, 6))
	}
}

func TestNRPDeterministicPerSeed(t *testing.T) {
	g := fig1(t)
	opt := testOptions()
	a, err := NRP(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NRP(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.X.MaxAbsDiff(b.X) != 0 || a.Y.MaxAbsDiff(b.Y) != 0 {
		t.Fatal("NRP not deterministic for a fixed seed")
	}
}

func TestLearnWeightsRespectsLowerBound(t *testing.T) {
	g, err := graph.GenSBM(graph.SBMConfig{N: 80, M: 400, Communities: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	emb, err := ApproxPPR(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	fw, bw, err := LearnWeights(g, emb, opt)
	if err != nil {
		t.Fatal(err)
	}
	minW := 1 / float64(g.N)
	for v := 0; v < g.N; v++ {
		if fw[v] < minW-1e-15 || bw[v] < minW-1e-15 {
			t.Fatalf("weight below 1/n at %d: fw=%v bw=%v", v, fw[v], bw[v])
		}
	}
}

// TestObjectiveDecreases asserts the coordinate descent lowers Eq. (6)
// substantially from its initialization.
func TestObjectiveDecreases(t *testing.T) {
	for _, exactB1 := range []bool{false, true} {
		g, err := graph.GenSBM(graph.SBMConfig{N: 60, M: 300, Communities: 3, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		opt := testOptions()
		opt.ExactB1 = exactB1
		emb, err := ApproxPPR(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		state := newReweightState(emb, g.InDegrees(), g.OutDegrees(), opt, nil)
		before := state.objective()
		rng := rand.New(rand.NewSource(1))
		for epoch := 0; epoch < opt.L2; epoch++ {
			state.updateBwdWeights(rng)
			state.updateFwdWeights(rng)
		}
		after := state.objective()
		if after >= before {
			t.Fatalf("exactB1=%v: objective did not decrease: %v -> %v", exactB1, before, after)
		}
		if after > 0.9*before {
			t.Fatalf("exactB1=%v: objective barely moved: %v -> %v", exactB1, before, after)
		}
	}
}

// TestFastCoeffsMatchNaive verifies the §4.3 accelerations are exact
// rewritings of Eq. (7) and Eq. (23).
func TestFastCoeffsMatchNaive(t *testing.T) {
	g, err := graph.GenSBM(graph.SBMConfig{N: 40, M: 200, Communities: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	emb, err := ApproxPPR(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	state := newReweightState(emb, g.InDegrees(), g.OutDegrees(), opt, nil)
	// Randomize weights so the comparison is not at the special init point.
	rng := rand.New(rand.NewSource(9))
	for v := 0; v < g.N; v++ {
		state.fw[v] = rng.Float64()*3 + 0.1
		state.bw[v] = rng.Float64()*3 + 0.1
	}
	rel := func(a, b float64) float64 {
		return math.Abs(a-b) / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	}
	for _, v := range []int{0, 7, 19, 39} {
		na1, na2, na3, nb1, nb2 := state.naiveBwdCoeffs(v)
		fa1, fa2, fa3, b1Approx, b1Exact, fb2 := state.fastBwdCoeffs(v)
		if rel(na1, fa1) > 1e-9 || rel(na2, fa2) > 1e-9 || rel(na3, fa3) > 1e-9 || rel(nb2, fb2) > 1e-9 {
			t.Fatalf("bwd coeffs mismatch at %d: naive (%v %v %v %v) fast (%v %v %v %v)",
				v, na1, na2, na3, nb2, fa1, fa2, fa3, fb2)
		}
		if rel(nb1, b1Exact) > 1e-9 {
			t.Fatalf("exact b1 mismatch at %d: %v vs %v", v, nb1, b1Exact)
		}
		// Eq. (12)'s lower bound b1/k′ ≤ S always holds (Cauchy–Schwarz),
		// so approx = (k′/2)·S ≥ b1/2. The upper bound S ≤ b1 assumes no
		// sign cancellation and can fail on real embeddings, so only the
		// guaranteed direction is asserted.
		if b1Approx < nb1/2-1e-9 || b1Approx < -1e-12 {
			t.Fatalf("b1 approximation below Eq.(12) lower bound at %d: approx=%v exact=%v", v, b1Approx, nb1)
		}

		na1, na2, na3, nb1, nb2 = state.naiveFwdCoeffs(v)
		fa1, fa2, fa3, b1Approx, b1Exact, fb2 = state.fastFwdCoeffs(v)
		if rel(na1, fa1) > 1e-9 || rel(na2, fa2) > 1e-9 || rel(na3, fa3) > 1e-9 || rel(nb2, fb2) > 1e-9 {
			t.Fatalf("fwd coeffs mismatch at %d: naive (%v %v %v %v) fast (%v %v %v %v)",
				v, na1, na2, na3, nb2, fa1, fa2, fa3, fb2)
		}
		if rel(nb1, b1Exact) > 1e-9 {
			t.Fatalf("exact b1' mismatch at %d: %v vs %v", v, nb1, b1Exact)
		}
		if b1Approx < nb1/2-1e-9 || b1Approx < -1e-12 {
			t.Fatalf("b1' approximation below lower bound at %d: approx=%v exact=%v", v, b1Approx, nb1)
		}
	}
}

func TestEmbeddingSaveLoadRoundTrip(t *testing.T) {
	g := fig1(t)
	emb, err := NRP(g, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.X.MaxAbsDiff(emb.X) != 0 || got.Y.MaxAbsDiff(emb.Y) != 0 {
		t.Fatal("save/load changed embedding")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not an embedding"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestFeaturesNormalized(t *testing.T) {
	g := fig1(t)
	emb, err := NRP(g, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	k := emb.Dim()
	for v := 0; v < g.N; v++ {
		f := emb.Features(v)
		if len(f) != 2*k {
			t.Fatalf("feature length %d, want %d", len(f), 2*k)
		}
		if math.Abs(matrix.Norm2(f[:k])-1) > 1e-9 || math.Abs(matrix.Norm2(f[k:])-1) > 1e-9 {
			t.Fatalf("features not normalized at %d", v)
		}
	}
}

// Features are invariant under NRP's positive per-node rescaling, so NRP
// and ApproxPPR give identical classification features (§5.4).
func TestFeaturesInvariantUnderReweighting(t *testing.T) {
	g := fig1(t)
	opt := testOptions()
	base, err := ApproxPPR(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	nrp, err := NRP(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N; v++ {
		fb, fn := base.Features(v), nrp.Features(v)
		for i := range fb {
			if math.Abs(fb[i]-fn[i]) > 1e-9 {
				t.Fatalf("features differ at node %d dim %d: %v vs %v", v, i, fb[i], fn[i])
			}
		}
	}
}

func TestNRPL2ZeroEqualsApproxPPR(t *testing.T) {
	g := fig1(t)
	opt := testOptions()
	opt.L2 = 0
	nrpEmb, err := NRP(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	baseEmb, err := ApproxPPR(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if nrpEmb.X.MaxAbsDiff(baseEmb.X) > 1e-12 || nrpEmb.Y.MaxAbsDiff(baseEmb.Y) > 1e-12 {
		t.Fatal("NRP with ℓ₂=0 should reduce to ApproxPPR")
	}
}

func TestApproxPPRRejectsOversizedDim(t *testing.T) {
	g := fig1(t)
	opt := testOptions()
	opt.Dim = 64 // k' = 32 > n = 9
	if _, err := ApproxPPR(g, opt); err == nil {
		t.Fatal("oversized Dim accepted")
	}
}

func TestNRPDirectedGraph(t *testing.T) {
	g, err := graph.GenSBM(graph.SBMConfig{N: 100, M: 600, Communities: 4, Directed: true, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	emb, err := NRP(g, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Directed scores must be allowed to differ across orientation.
	asym := false
	for _, e := range g.Edges()[:50] {
		if math.Abs(emb.Score(int(e.U), int(e.V))-emb.Score(int(e.V), int(e.U))) > 1e-9 {
			asym = true
			break
		}
	}
	if !asym {
		t.Fatal("directed embedding should be asymmetric")
	}
}

func TestSaveTextFormat(t *testing.T) {
	g := fig1(t)
	emb, err := NRP(g, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emb.SaveText(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != g.N+1 {
		t.Fatalf("want %d lines, got %d", g.N+1, len(lines))
	}
	var n, k int
	if _, err := fmt.Sscanf(lines[0], "%d %d", &n, &k); err != nil {
		t.Fatal(err)
	}
	if n != g.N || k != emb.Dim()*2 {
		t.Fatalf("header %d %d", n, k)
	}
	fields := strings.Fields(lines[1])
	if len(fields) != 1+k {
		t.Fatalf("row has %d fields, want %d", len(fields), 1+k)
	}
}
