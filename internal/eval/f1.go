package eval

// F1Scores aggregates multi-label prediction quality the way the paper
// reports it: Micro-F1 pools true/false positives over all classes;
// Macro-F1 averages per-class F1.
type F1Scores struct {
	Micro, Macro float64
}

// MultiLabelF1 compares predicted and true label sets per example and
// returns Micro- and Macro-F1 over numClasses classes.
func MultiLabelF1(pred, truth [][]int32, numClasses int) F1Scores {
	tp := make([]float64, numClasses)
	fp := make([]float64, numClasses)
	fn := make([]float64, numClasses)
	inTruth := make([]bool, numClasses)
	for i := range truth {
		for _, c := range truth[i] {
			inTruth[c] = true
		}
		for _, c := range pred[i] {
			if inTruth[c] {
				tp[c]++
			} else {
				fp[c]++
			}
		}
		inPred := make(map[int32]bool, len(pred[i]))
		for _, c := range pred[i] {
			inPred[c] = true
		}
		for _, c := range truth[i] {
			if !inPred[c] {
				fn[c]++
			}
			inTruth[c] = false
		}
	}
	var sumTP, sumFP, sumFN, macro float64
	activeClasses := 0
	for c := 0; c < numClasses; c++ {
		sumTP += tp[c]
		sumFP += fp[c]
		sumFN += fn[c]
		if tp[c]+fp[c]+fn[c] == 0 {
			continue // class absent from both truth and predictions
		}
		activeClasses++
		macro += f1(tp[c], fp[c], fn[c])
	}
	out := F1Scores{}
	out.Micro = f1(sumTP, sumFP, sumFN)
	if activeClasses > 0 {
		out.Macro = macro / float64(activeClasses)
	}
	return out
}

func f1(tp, fp, fn float64) float64 {
	if tp == 0 {
		return 0
	}
	precision := tp / (tp + fp)
	recall := tp / (tp + fn)
	return 2 * precision * recall / (precision + recall)
}
