package eval

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"github.com/nrp-embed/nrp/internal/graph"
)

// Scorer assigns a directed proximity score to a node pair; embeddings
// implement it with the inner products the paper prescribes per method.
type Scorer interface {
	Score(u, v int) float64
}

// ScorerFunc adapts a plain function to the Scorer interface.
type ScorerFunc func(u, v int) float64

// Score implements Scorer.
func (f ScorerFunc) Score(u, v int) float64 { return f(u, v) }

// LinkPredictionAUC scores the split's test pairs with s and returns the
// AUC (§5.2).
func LinkPredictionAUC(s Scorer, split *LinkPredSplit) (float64, error) {
	pos := make([]float64, len(split.Pos))
	for i, e := range split.Pos {
		pos[i] = s.Score(int(e.U), int(e.V))
	}
	neg := make([]float64, len(split.Neg))
	for i, e := range split.Neg {
		neg[i] = s.Score(int(e.U), int(e.V))
	}
	return AUC(pos, neg)
}

// EdgeFeatureLinkPredictionAUC implements the paper's "edge features"
// protocol for methods with a single vector per node: concatenate the two
// endpoint embeddings, train a logistic regression on a sampled training
// set (positives from the training graph, negatives non-edges), then score
// the test pairs with the classifier.
func EdgeFeatureLinkPredictionAUC(features func(int) []float64, split *LinkPredSplit, cfg LogRegConfig) (float64, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 101))
	trainEdges := split.Train.Edges()
	shuffleEdges(trainEdges, rng)
	nTrain := len(split.Pos)
	if nTrain > len(trainEdges) {
		nTrain = len(trainEdges)
	}
	if nTrain == 0 {
		return 0, fmt.Errorf("eval: empty training graph")
	}
	trainNeg, err := SampleNonEdges(split.Train, nTrain, rng)
	if err != nil {
		return 0, err
	}
	concat := func(e graph.Edge) []float64 {
		fu, fv := features(int(e.U)), features(int(e.V))
		out := make([]float64, 0, len(fu)+len(fv))
		out = append(out, fu...)
		return append(out, fv...)
	}
	x := make([][]float64, 0, 2*nTrain)
	y := make([]int, 0, 2*nTrain)
	for _, e := range trainEdges[:nTrain] {
		x = append(x, concat(e))
		y = append(y, 1)
	}
	for _, e := range trainNeg {
		x = append(x, concat(e))
		y = append(y, 0)
	}
	model, err := TrainLogReg(x, y, cfg)
	if err != nil {
		return 0, err
	}
	pos := make([]float64, len(split.Pos))
	for i, e := range split.Pos {
		pos[i] = model.Score(concat(e))
	}
	neg := make([]float64, len(split.Neg))
	for i, e := range split.Neg {
		neg[i] = model.Score(concat(e))
	}
	return AUC(pos, neg)
}

// ReconstructionPrecision implements the graph-reconstruction protocol
// (§5.3): rank candidate node pairs by score and report, for each K in ks,
// the fraction of the top K that are true edges of g. sampleFrac selects
// the candidate set: 1 scores every pair, smaller values score a uniform
// sample (the paper uses 1% on the larger graphs). ks must be ascending.
func ReconstructionPrecision(g *graph.Graph, s Scorer, sampleFrac float64, ks []int, seed int64) ([]float64, error) {
	if len(ks) == 0 {
		return nil, fmt.Errorf("eval: no K values")
	}
	if !sort.IntsAreSorted(ks) {
		return nil, fmt.Errorf("eval: ks must be ascending")
	}
	if sampleFrac <= 0 || sampleFrac > 1 {
		return nil, fmt.Errorf("eval: sampleFrac must be in (0,1], got %v", sampleFrac)
	}
	maxK := ks[len(ks)-1]
	h := &pairHeap{}
	heap.Init(h)
	push := func(u, v int32) {
		sc := s.Score(int(u), int(v))
		if h.Len() < maxK {
			heap.Push(h, scoredPair{u, v, sc})
		} else if sc > (*h)[0].score {
			(*h)[0] = scoredPair{u, v, sc}
			heap.Fix(h, 0)
		}
	}
	if sampleFrac == 1 {
		for u := 0; u < g.N; u++ {
			lo := 0
			if !g.Directed {
				lo = u + 1
			}
			for v := lo; v < g.N; v++ {
				if u == v {
					continue
				}
				push(int32(u), int32(v))
			}
		}
	} else {
		total := int64(g.N) * int64(g.N-1)
		if !g.Directed {
			total /= 2
		}
		count := int(sampleFrac * float64(total))
		if count < maxK {
			count = maxK // never sample fewer candidates than the deepest K
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < count; i++ {
			u := int32(rng.Intn(g.N))
			v := int32(rng.Intn(g.N))
			if u == v {
				continue
			}
			if !g.Directed && u > v {
				u, v = v, u
			}
			push(u, v)
		}
	}
	// Extract ranked pairs (ascending from the min-heap, then reverse).
	ranked := make([]scoredPair, h.Len())
	for i := len(ranked) - 1; i >= 0; i-- {
		ranked[i] = heap.Pop(h).(scoredPair)
	}
	out := make([]float64, len(ks))
	hits := 0
	ki := 0
	for i, p := range ranked {
		if g.HasEdge(int(p.u), int(p.v)) {
			hits++
		}
		for ki < len(ks) && i+1 == ks[ki] {
			out[ki] = float64(hits) / float64(ks[ki])
			ki++
		}
	}
	// Ks beyond the candidate count keep the final precision.
	for ; ki < len(ks); ki++ {
		if len(ranked) > 0 {
			out[ki] = float64(hits) / float64(len(ranked))
		}
	}
	return out, nil
}

type scoredPair struct {
	u, v  int32
	score float64
}

// pairHeap is a min-heap on score, used for top-K selection.
type pairHeap []scoredPair

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i].score < h[j].score }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(scoredPair)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NodeClassification implements the protocol of §5.4: labeled nodes are
// split into a training fraction and a test remainder; a one-vs-rest
// logistic regression is trained on the feature vectors; for each test
// node with t true labels the top-t predictions are compared against the
// truth, yielding Micro-/Macro-F1.
func NodeClassification(features func(int) []float64, labels [][]int32, numClasses int, trainFrac float64, cfg LogRegConfig) (F1Scores, error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return F1Scores{}, fmt.Errorf("eval: trainFrac must be in (0,1), got %v", trainFrac)
	}
	labeled := make([]int, 0, len(labels))
	for v, ls := range labels {
		if len(ls) > 0 {
			labeled = append(labeled, v)
		}
	}
	if len(labeled) < 10 {
		return F1Scores{}, fmt.Errorf("eval: only %d labeled nodes", len(labeled))
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 57))
	shuffleInts(labeled, rng)
	nTrain := int(trainFrac * float64(len(labeled)))
	if nTrain == 0 || nTrain == len(labeled) {
		return F1Scores{}, fmt.Errorf("eval: degenerate train split %d of %d", nTrain, len(labeled))
	}
	trainX := make([][]float64, nTrain)
	trainY := make([][]int32, nTrain)
	for i, v := range labeled[:nTrain] {
		trainX[i] = features(v)
		trainY[i] = labels[v]
	}
	model, err := TrainOneVsRest(trainX, trainY, numClasses, cfg)
	if err != nil {
		return F1Scores{}, err
	}
	test := labeled[nTrain:]
	pred := make([][]int32, len(test))
	truth := make([][]int32, len(test))
	for i, v := range test {
		truth[i] = labels[v]
		pred[i] = model.PredictTop(features(v), len(labels[v]))
	}
	return MultiLabelF1(pred, truth, numClasses), nil
}
