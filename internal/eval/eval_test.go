package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nrp-embed/nrp/internal/graph"
)

func TestAUCPerfectSeparation(t *testing.T) {
	auc, err := AUC([]float64{3, 4, 5}, []float64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("AUC=%v want 1", auc)
	}
	auc, _ = AUC([]float64{0, 1}, []float64{5, 6})
	if auc != 0 {
		t.Fatalf("inverted AUC=%v want 0", auc)
	}
}

func TestAUCTiesGiveHalf(t *testing.T) {
	auc, err := AUC([]float64{1, 1}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("all-ties AUC=%v want 0.5", auc)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pos := make([]float64, 4000)
	neg := make([]float64, 4000)
	for i := range pos {
		pos[i] = rng.Float64()
		neg[i] = rng.Float64()
	}
	auc, err := AUC(pos, neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.03 {
		t.Fatalf("random AUC=%v", auc)
	}
}

func TestAUCEmptyInput(t *testing.T) {
	if _, err := AUC(nil, []float64{1}); err == nil {
		t.Fatal("empty positives accepted")
	}
	if _, err := AUC([]float64{1}, nil); err == nil {
		t.Fatal("empty negatives accepted")
	}
}

// Property: AUC is invariant under any strictly monotone transform.
func TestAUCMonotoneInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pos := make([]float64, 30)
		neg := make([]float64, 40)
		for i := range pos {
			pos[i] = rng.NormFloat64() + 0.5
		}
		for i := range neg {
			neg[i] = rng.NormFloat64()
		}
		a1, _ := AUC(pos, neg)
		mono := func(xs []float64) []float64 {
			out := make([]float64, len(xs))
			for i, x := range xs {
				out[i] = math.Exp(x/2) + 3
			}
			return out
		}
		a2, _ := AUC(mono(pos), mono(neg))
		return math.Abs(a1-a2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLogRegLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		label := i % 2
		shift := -1.0
		if label == 1 {
			shift = 1.0
		}
		x = append(x, []float64{shift + 0.3*rng.NormFloat64(), rng.NormFloat64()})
		y = append(y, label)
	}
	m, err := TrainLogReg(x, y, LogRegConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		p := 0
		if m.Prob(x[i]) > 0.5 {
			p = 1
		}
		if p == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.95 {
		t.Fatalf("accuracy %v on separable data", acc)
	}
}

func TestLogRegValidation(t *testing.T) {
	if _, err := TrainLogReg(nil, nil, LogRegConfig{}); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := TrainLogReg([][]float64{{1}}, []int{5}, LogRegConfig{}); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, err := TrainLogReg([][]float64{{1}, {1, 2}}, []int{0, 1}, LogRegConfig{}); err == nil {
		t.Fatal("ragged features accepted")
	}
}

func TestOneVsRestPredictTop(t *testing.T) {
	// Three well-separated clusters, one per class.
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y [][]int32
	centers := [][]float64{{2, 0}, {-2, 0}, {0, 2.5}}
	for i := 0; i < 600; i++ {
		c := i % 3
		x = append(x, []float64{centers[c][0] + 0.3*rng.NormFloat64(), centers[c][1] + 0.3*rng.NormFloat64()})
		y = append(y, []int32{int32(c)})
	}
	model, err := TrainOneVsRest(x, y, 3, LogRegConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if p := model.PredictTop(x[i], 1); len(p) == 1 && p[0] == y[i][0] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.95 {
		t.Fatalf("OVR accuracy %v", acc)
	}
	// PredictTop clamps t.
	if p := model.PredictTop(x[0], 99); len(p) != 3 {
		t.Fatalf("clamp failed: %d", len(p))
	}
	if p := model.PredictTop(x[0], 0); p != nil {
		t.Fatal("t=0 should give nil")
	}
}

func TestMultiLabelF1PerfectAndWorst(t *testing.T) {
	truth := [][]int32{{0, 1}, {2}, {1}}
	perfect := MultiLabelF1(truth, truth, 3)
	if perfect.Micro != 1 || perfect.Macro != 1 {
		t.Fatalf("perfect F1: %+v", perfect)
	}
	wrong := [][]int32{{2}, {0}, {0}}
	bad := MultiLabelF1(wrong, truth, 3)
	if bad.Micro != 0 || bad.Macro != 0 {
		t.Fatalf("all-wrong F1: %+v", bad)
	}
}

func TestMultiLabelF1Partial(t *testing.T) {
	truth := [][]int32{{0}, {1}}
	pred := [][]int32{{0}, {0}}
	got := MultiLabelF1(pred, truth, 2)
	// Class 0: tp=1 fp=1 fn=0 → F1 = 2/3. Class 1: tp=0 → F1 = 0.
	if math.Abs(got.Micro-0.5) > 1e-12 {
		t.Fatalf("micro=%v want 0.5", got.Micro)
	}
	if math.Abs(got.Macro-1.0/3) > 1e-12 {
		t.Fatalf("macro=%v want 1/3", got.Macro)
	}
}

func testGraph(t testing.TB, directed bool) *graph.Graph {
	t.Helper()
	g, err := graph.GenSBM(graph.SBMConfig{N: 300, M: 1800, Communities: 3, Directed: directed, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewLinkPredSplitInvariants(t *testing.T) {
	g := testGraph(t, false)
	split, err := NewLinkPredSplit(g, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantRemoved := int(0.3 * float64(g.NumEdges))
	if len(split.Pos) != wantRemoved {
		t.Fatalf("removed %d, want %d", len(split.Pos), wantRemoved)
	}
	if len(split.Neg) != len(split.Pos) {
		t.Fatalf("neg %d != pos %d", len(split.Neg), len(split.Pos))
	}
	if split.Train.NumEdges != g.NumEdges-wantRemoved {
		t.Fatalf("train has %d edges", split.Train.NumEdges)
	}
	for _, e := range split.Pos {
		if split.Train.HasEdge(int(e.U), int(e.V)) {
			t.Fatal("positive test edge still in training graph")
		}
		if !g.HasEdge(int(e.U), int(e.V)) {
			t.Fatal("positive test edge not from G")
		}
	}
	for _, e := range split.Neg {
		if g.HasEdge(int(e.U), int(e.V)) {
			t.Fatal("negative pair is an edge of G")
		}
	}
}

func TestNewLinkPredSplitValidation(t *testing.T) {
	g := testGraph(t, false)
	if _, err := NewLinkPredSplit(g, 0, 1); err == nil {
		t.Fatal("frac 0 accepted")
	}
	if _, err := NewLinkPredSplit(g, 1, 1); err == nil {
		t.Fatal("frac 1 accepted")
	}
}

// An oracle scorer that knows the removed edges should reach AUC 1; an
// anti-oracle should reach 0.
func TestLinkPredictionAUCOracle(t *testing.T) {
	g := testGraph(t, true)
	split, err := NewLinkPredSplit(g, 0.3, 8)
	if err != nil {
		t.Fatal(err)
	}
	inPos := make(map[int64]bool, len(split.Pos))
	for _, e := range split.Pos {
		inPos[int64(e.U)*int64(g.N)+int64(e.V)] = true
	}
	oracle := ScorerFunc(func(u, v int) float64 {
		if inPos[int64(u)*int64(g.N)+int64(v)] {
			return 1
		}
		return 0
	})
	auc, err := LinkPredictionAUC(oracle, split)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("oracle AUC=%v", auc)
	}
}

func TestEdgeFeatureLinkPredictionAUC(t *testing.T) {
	g := testGraph(t, false)
	split, err := NewLinkPredSplit(g, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	// A concatenation-based linear model cannot express "same community",
	// but it can exploit degree bias: SBM edges attach to hubs far more
	// often than uniformly sampled non-edge endpoints do.
	features := func(v int) []float64 {
		return []float64{math.Log1p(float64(g.OutDeg(v)))}
	}
	auc, err := EdgeFeatureLinkPredictionAUC(features, split, LogRegConfig{Seed: 10, Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.55 {
		t.Fatalf("degree features should beat chance: AUC=%v", auc)
	}
}

func TestReconstructionPrecisionOracle(t *testing.T) {
	g := testGraph(t, false)
	oracle := ScorerFunc(func(u, v int) float64 {
		if g.HasEdge(u, v) {
			return 1
		}
		return 0
	})
	ks := []int{10, 100, 1000}
	prec, err := ReconstructionPrecision(g, oracle, 1, ks, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range prec {
		if ks[i] <= g.NumEdges && p != 1 {
			t.Fatalf("oracle precision@%d=%v", ks[i], p)
		}
	}
	// Beyond the number of edges precision must decay.
	deep, err := ReconstructionPrecision(g, oracle, 1, []int{g.NumEdges * 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(deep[0]-0.5) > 0.01 {
		t.Fatalf("precision@2m=%v want ~0.5", deep[0])
	}
}

func TestReconstructionPrecisionRandomScorer(t *testing.T) {
	g := testGraph(t, false)
	rng := rand.New(rand.NewSource(12))
	random := ScorerFunc(func(u, v int) float64 { return rng.Float64() })
	prec, err := ReconstructionPrecision(g, random, 1, []int{2000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	density := float64(g.NumEdges) / (float64(g.N) * float64(g.N-1) / 2)
	if prec[0] > 5*density+0.02 {
		t.Fatalf("random scorer precision %v too high (density %v)", prec[0], density)
	}
}

func TestReconstructionPrecisionSampled(t *testing.T) {
	g := testGraph(t, false)
	oracle := ScorerFunc(func(u, v int) float64 {
		if g.HasEdge(u, v) {
			return 1
		}
		return 0
	})
	prec, err := ReconstructionPrecision(g, oracle, 0.2, []int{10, 100}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if prec[0] != 1 || prec[1] != 1 {
		t.Fatalf("sampled oracle precision: %v", prec)
	}
}

func TestReconstructionValidation(t *testing.T) {
	g := testGraph(t, false)
	s := ScorerFunc(func(u, v int) float64 { return 0 })
	if _, err := ReconstructionPrecision(g, s, 1, nil, 1); err == nil {
		t.Fatal("empty ks accepted")
	}
	if _, err := ReconstructionPrecision(g, s, 1, []int{100, 10}, 1); err == nil {
		t.Fatal("descending ks accepted")
	}
	if _, err := ReconstructionPrecision(g, s, 0, []int{10}, 1); err == nil {
		t.Fatal("sampleFrac 0 accepted")
	}
	if _, err := ReconstructionPrecision(g, s, 1.5, []int{10}, 1); err == nil {
		t.Fatal("sampleFrac > 1 accepted")
	}
}

func TestNodeClassificationSeparableCommunities(t *testing.T) {
	g := testGraph(t, false)
	features := func(v int) []float64 {
		f := make([]float64, g.NumLabels)
		f[g.Labels[v][0]] = 1
		return f
	}
	res, err := NodeClassification(features, g.Labels, g.NumLabels, 0.5, LogRegConfig{Seed: 13, Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Micro < 0.8 {
		t.Fatalf("separable classification micro-F1=%v", res.Micro)
	}
	if res.Macro <= 0 || res.Macro > 1 {
		t.Fatalf("macro-F1 out of range: %v", res.Macro)
	}
}

func TestNodeClassificationValidation(t *testing.T) {
	g := testGraph(t, false)
	feat := func(v int) []float64 { return []float64{1} }
	if _, err := NodeClassification(feat, g.Labels, g.NumLabels, 0, LogRegConfig{}); err == nil {
		t.Fatal("trainFrac 0 accepted")
	}
	if _, err := NodeClassification(feat, g.Labels, g.NumLabels, 1, LogRegConfig{}); err == nil {
		t.Fatal("trainFrac 1 accepted")
	}
	empty := make([][]int32, g.N)
	if _, err := NodeClassification(feat, empty, 3, 0.5, LogRegConfig{}); err == nil {
		t.Fatal("unlabeled graph accepted")
	}
}

func TestSampleNonEdgesRespectsGraph(t *testing.T) {
	g := testGraph(t, true)
	rng := rand.New(rand.NewSource(14))
	pairs, err := SampleNonEdges(g, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 500 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, e := range pairs {
		if g.HasEdge(int(e.U), int(e.V)) || e.U == e.V {
			t.Fatalf("invalid non-edge (%d,%d)", e.U, e.V)
		}
	}
	// Impossible request errors out.
	tiny, err := graph.New(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SampleNonEdges(tiny, 5, rng); err == nil {
		t.Fatal("oversized non-edge request accepted")
	}
}
