package eval

import (
	"fmt"
	"math"
	"math/rand"
)

// LogRegConfig configures the SGD logistic-regression trainer used by node
// classification and the edge-features link-prediction protocol.
type LogRegConfig struct {
	Epochs    int     // SGD passes over the training set (default 20)
	LearnRate float64 // initial step size (default 0.5)
	L2        float64 // L2 regularization strength (default 1e-4)
	Seed      int64
}

func (c *LogRegConfig) defaults() {
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.5
	}
	if c.L2 == 0 {
		c.L2 = 1e-4
	}
}

// LogReg is a binary logistic-regression model.
type LogReg struct {
	W    []float64
	Bias float64
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// TrainLogReg fits a binary logistic regression with mini-batch-free SGD
// and inverse-time step decay. Labels must be 0 or 1.
func TrainLogReg(features [][]float64, labels []int, cfg LogRegConfig) (*LogReg, error) {
	if len(features) == 0 || len(features) != len(labels) {
		return nil, fmt.Errorf("eval: bad training set sizes: %d features, %d labels", len(features), len(labels))
	}
	dim := len(features[0])
	for i, f := range features {
		if len(f) != dim {
			return nil, fmt.Errorf("eval: feature %d has dim %d, want %d", i, len(f), dim)
		}
		if labels[i] != 0 && labels[i] != 1 {
			return nil, fmt.Errorf("eval: label %d is %d, want 0/1", i, labels[i])
		}
	}
	cfg.defaults()
	m := &LogReg{W: make([]float64, dim)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(len(features))
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		shuffleInts(order, rng)
		for _, i := range order {
			lr := cfg.LearnRate / (1 + 0.01*float64(step))
			step++
			m.sgdStep(features[i], float64(labels[i]), lr, cfg.L2)
		}
	}
	return m, nil
}

func (m *LogReg) sgdStep(x []float64, y, lr, l2 float64) {
	g := sigmoid(m.Score(x)) - y
	for j, xj := range x {
		m.W[j] -= lr * (g*xj + l2*m.W[j])
	}
	m.Bias -= lr * g
}

// Score returns the pre-sigmoid logit for x.
func (m *LogReg) Score(x []float64) float64 {
	s := m.Bias
	for j, xj := range x {
		s += m.W[j] * xj
	}
	return s
}

// Prob returns the predicted probability of the positive class.
func (m *LogReg) Prob(x []float64) float64 { return sigmoid(m.Score(x)) }

// OneVsRest is a multi-label classifier: one logistic regression per class,
// trained jointly in a single pass structure for cache efficiency.
type OneVsRest struct {
	NumClasses int
	Models     []*LogReg
}

// TrainOneVsRest fits one binary model per class. labels[i] lists the
// classes of example i (multi-label).
func TrainOneVsRest(features [][]float64, labels [][]int32, numClasses int, cfg LogRegConfig) (*OneVsRest, error) {
	if len(features) == 0 || len(features) != len(labels) {
		return nil, fmt.Errorf("eval: bad training set sizes: %d features, %d labels", len(features), len(labels))
	}
	if numClasses <= 0 {
		return nil, fmt.Errorf("eval: numClasses must be positive, got %d", numClasses)
	}
	cfg.defaults()
	dim := len(features[0])
	ovr := &OneVsRest{NumClasses: numClasses, Models: make([]*LogReg, numClasses)}
	for c := range ovr.Models {
		ovr.Models[c] = &LogReg{W: make([]float64, dim)}
	}
	isMember := make([]bool, numClasses)
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(len(features))
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		shuffleInts(order, rng)
		for _, i := range order {
			lr := cfg.LearnRate / (1 + 0.01*float64(step))
			step++
			for _, c := range labels[i] {
				isMember[c] = true
			}
			for c, m := range ovr.Models {
				y := 0.0
				if isMember[c] {
					y = 1
				}
				m.sgdStep(features[i], y, lr, cfg.L2)
			}
			for _, c := range labels[i] {
				isMember[c] = false
			}
		}
	}
	return ovr, nil
}

// PredictTop returns the t highest-scoring classes for x, following the
// standard multi-label protocol (predict as many labels as the node truly
// has).
func (o *OneVsRest) PredictTop(x []float64, t int) []int32 {
	if t <= 0 {
		return nil
	}
	if t > o.NumClasses {
		t = o.NumClasses
	}
	type cs struct {
		c int32
		s float64
	}
	scores := make([]cs, o.NumClasses)
	for c, m := range o.Models {
		scores[c] = cs{int32(c), m.Score(x)}
	}
	// Partial selection: t is small (≤ a handful of labels per node).
	for i := 0; i < t; i++ {
		best := i
		for j := i + 1; j < len(scores); j++ {
			if scores[j].s > scores[best].s {
				best = j
			}
		}
		scores[i], scores[best] = scores[best], scores[i]
	}
	out := make([]int32, t)
	for i := 0; i < t; i++ {
		out[i] = scores[i].c
	}
	return out
}

func shuffleInts(p []int, rng *rand.Rand) {
	for i := len(p) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
