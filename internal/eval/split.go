package eval

import (
	"fmt"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/graph"
)

// LinkPredSplit is the paper's link-prediction protocol (§5.2): RemoveFrac
// of the edges are removed from G to form the training graph; the test set
// is the removed edges (positives) plus an equal number of uniformly
// sampled non-edges (negatives). On directed graphs pairs are ordered.
type LinkPredSplit struct {
	Train *graph.Graph
	Pos   []graph.Edge
	Neg   []graph.Edge
}

// NewLinkPredSplit builds a split with the given removal fraction.
func NewLinkPredSplit(g *graph.Graph, removeFrac float64, seed int64) (*LinkPredSplit, error) {
	if removeFrac <= 0 || removeFrac >= 1 {
		return nil, fmt.Errorf("eval: removeFrac must be in (0,1), got %v", removeFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	edges := g.Edges()
	shuffleEdges(edges, rng)
	nRemove := int(removeFrac * float64(len(edges)))
	if nRemove == 0 || nRemove == len(edges) {
		return nil, fmt.Errorf("eval: split would remove %d of %d edges", nRemove, len(edges))
	}
	pos := append([]graph.Edge(nil), edges[:nRemove]...)
	train, err := graph.New(g.N, edges[nRemove:], g.Directed)
	if err != nil {
		return nil, err
	}
	neg, err := SampleNonEdges(g, nRemove, rng)
	if err != nil {
		return nil, err
	}
	return &LinkPredSplit{Train: train, Pos: pos, Neg: neg}, nil
}

// SampleNonEdges draws count node pairs uniformly at random that are not
// connected in g (in either direction for undirected graphs) and are not
// self-pairs.
func SampleNonEdges(g *graph.Graph, count int, rng *rand.Rand) ([]graph.Edge, error) {
	maxPairs := int64(g.N) * int64(g.N-1)
	if !g.Directed {
		maxPairs /= 2
	}
	if int64(count) > maxPairs-int64(g.NumEdges) {
		return nil, fmt.Errorf("eval: cannot sample %d non-edges from graph with %d nodes, %d edges", count, g.N, g.NumEdges)
	}
	seen := make(map[int64]struct{}, count)
	out := make([]graph.Edge, 0, count)
	maxAttempts := 100*count + 10000
	for attempts := 0; len(out) < count; attempts++ {
		if attempts > maxAttempts {
			return nil, fmt.Errorf("eval: non-edge sampling stalled at %d of %d", len(out), count)
		}
		u := int32(rng.Intn(g.N))
		v := int32(rng.Intn(g.N))
		if u == v || g.HasEdge(int(u), int(v)) {
			continue
		}
		a, b := u, v
		if !g.Directed && a > b {
			a, b = b, a
		}
		key := int64(a)*int64(g.N) + int64(b)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, graph.Edge{U: u, V: v})
	}
	return out, nil
}

func shuffleEdges(e []graph.Edge, rng *rand.Rand) {
	for i := len(e) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		e[i], e[j] = e[j], e[i]
	}
}
