// Package eval implements the paper's three evaluation protocols — link
// prediction (AUC), graph reconstruction (precision@K) and node
// classification (Micro/Macro-F1 with one-vs-rest logistic regression) —
// together with the supporting machinery: edge splits, negative sampling,
// rank-based AUC with tie handling, and an SGD logistic-regression trainer.
package eval

import (
	"fmt"
	"sort"
)

// AUC computes the area under the ROC curve from positive- and
// negative-example scores using the rank statistic (Mann–Whitney U), with
// ties resolved by average ranks.
func AUC(pos, neg []float64) (float64, error) {
	if len(pos) == 0 || len(neg) == 0 {
		return 0, fmt.Errorf("eval: AUC needs both positive and negative scores (%d, %d)", len(pos), len(neg))
	}
	type scored struct {
		s     float64
		isPos bool
	}
	all := make([]scored, 0, len(pos)+len(neg))
	for _, s := range pos {
		all = append(all, scored{s, true})
	}
	for _, s := range neg {
		all = append(all, scored{s, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s < all[j].s })

	rankSumPos := 0.0
	i := 0
	for i < len(all) {
		j := i
		for j < len(all) && all[j].s == all[i].s {
			j++
		}
		// Average rank of the tie group [i, j) with 1-based ranks.
		avgRank := float64(i+j+1) / 2
		for t := i; t < j; t++ {
			if all[t].isPos {
				rankSumPos += avgRank
			}
		}
		i = j
	}
	nPos, nNeg := float64(len(pos)), float64(len(neg))
	u := rankSumPos - nPos*(nPos+1)/2
	return u / (nPos * nNeg), nil
}
