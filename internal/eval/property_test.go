package eval

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/nrp-embed/nrp/internal/graph"
)

// bruteAUC counts concordant pairs directly: the probability a random
// positive outscores a random negative, ties counting half.
func bruteAUC(pos, neg []float64) float64 {
	wins := 0.0
	for _, p := range pos {
		for _, n := range neg {
			switch {
			case p > n:
				wins++
			case p == n:
				wins += 0.5
			}
		}
	}
	return wins / float64(len(pos)*len(neg))
}

// Property: the rank-based AUC equals the brute-force pair statistic.
func TestAUCMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nPos := 1 + rng.Intn(30)
		nNeg := 1 + rng.Intn(30)
		pos := make([]float64, nPos)
		neg := make([]float64, nNeg)
		for i := range pos {
			// Coarse grid to force plenty of ties.
			pos[i] = float64(rng.Intn(6))
		}
		for i := range neg {
			neg[i] = float64(rng.Intn(6))
		}
		got, err := AUC(pos, neg)
		if err != nil {
			return false
		}
		return math.Abs(got-bruteAUC(pos, neg)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: top-K selection through the bounded heap matches a full sort
// over all pairs, for arbitrary score assignments.
func TestPrecisionHeapMatchesSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(6)
		var edges []graph.Edge
		for i := 0; i < 2*n; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
		g, err := graph.New(n, edges, false)
		if err != nil || g.NumEdges == 0 {
			return true // degenerate draw; nothing to check
		}
		// Deterministic pseudo-random pair scores.
		scorer := ScorerFunc(func(u, v int) float64 {
			h := int64(u*1000003 + v*7919)
			return float64((h*2654435761)%100003) / 100003
		})
		ks := []int{1, 5, 20}
		viaHeap, err := ReconstructionPrecision(g, scorer, 1, ks, seed)
		if err != nil {
			return false
		}
		type pair struct {
			u, v int
			s    float64
		}
		var all []pair
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				all = append(all, pair{u, v, scorer.Score(u, v)})
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].s > all[j].s })
		for ki, k := range ks {
			limit := k
			if len(all) < limit {
				limit = len(all)
			}
			hits := 0
			for i := 0; i < limit; i++ {
				if g.HasEdge(all[i].u, all[i].v) {
					hits++
				}
			}
			want := float64(hits) / float64(limit)
			if math.Abs(viaHeap[ki]-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: link-prediction splits conserve edges — every edge of G ends up
// in exactly one of train or test-positives.
func TestLinkPredSplitConservesEdges(t *testing.T) {
	f := func(seed int64) bool {
		g, err := graph.GenSBM(graph.SBMConfig{N: 80, M: 400, Communities: 4, Seed: seed})
		if err != nil {
			return false
		}
		split, err := NewLinkPredSplit(g, 0.3, seed)
		if err != nil {
			return false
		}
		if split.Train.NumEdges+len(split.Pos) != g.NumEdges {
			return false
		}
		for _, e := range split.Pos {
			if !g.HasEdge(int(e.U), int(e.V)) || split.Train.HasEdge(int(e.U), int(e.V)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
