package experiments

import (
	"fmt"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/eval"
	"github.com/nrp-embed/nrp/internal/graph"
)

func init() {
	register(Runner{
		Name:  "fig5",
		Paper: "Fig 5: graph reconstruction precision@K",
		Run:   runFig5,
	})
}

// fig5Config mirrors the paper's protocol per dataset: the two small graphs
// rank every node pair, larger graphs rank a sample (the paper uses 1%).
type fig5Config struct {
	dataset    string
	sampleFrac float64
	ks         []int
}

func fig5Configs(full bool) []fig5Config {
	quick := []fig5Config{
		{dataset: "wiki-sim", sampleFrac: 1, ks: []int{10, 100, 1000, 10000, 100000}},
		{dataset: "blogcatalog-sim", sampleFrac: 0.2, ks: []int{10, 100, 1000, 10000, 100000}},
	}
	if !full {
		return quick
	}
	return append(quick,
		fig5Config{dataset: "youtube-sim", sampleFrac: 0.01, ks: []int{10, 100, 1000, 10000, 100000, 1000000}},
		fig5Config{dataset: "tweibo-sim", sampleFrac: 0.01, ks: []int{10, 100, 1000, 10000, 100000, 1000000}},
	)
}

func runFig5(cfg Config) ([]*Table, error) {
	cfg = cfg.defaults()
	var tables []*Table
	for _, fc := range fig5Configs(cfg.Full) {
		if !cfg.wantDataset(fc.dataset) {
			continue
		}
		ds, err := FindDataset(fc.dataset)
		if err != nil {
			return nil, err
		}
		g, err := ds.Gen(cfg.Scale)
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title: fmt.Sprintf("Fig 5 (%s, stand-in for %s): reconstruction precision@K (pair sample %.0f%%)",
				ds.Name, ds.PaperName, fc.sampleFrac*100),
			Header: append([]string{"method"}, intHeaders("K=", fc.ks)...),
		}
		for _, m := range cfg.selectMethods() {
			if err := cfg.Err(); err != nil {
				return nil, err
			}
			if m.Slow && ds.Heavy {
				continue
			}
			model, err := m.TrainTimed(cfg.ctx(), g, cfg.Dim, cfg.Seed)
			if err != nil {
				return nil, err
			}
			scorer, err := reconstructionScorer(model, g, cfg.Seed)
			if err != nil {
				return nil, err
			}
			prec, err := eval.ReconstructionPrecision(g, scorer, fc.sampleFrac, fc.ks, cfg.Seed)
			if err != nil {
				return nil, err
			}
			row := []string{m.Name}
			for _, p := range prec {
				row = append(row, f3(p))
			}
			cfg.logf("fig5 %s %s precision=%v", ds.Name, m.Name, row[1:])
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// reconstructionScorer adapts a model to pair scoring for reconstruction.
// Inner-product protocols score directly. Edge-features protocols (the
// DeepWalk family, and VERSE on directed graphs) train a logistic
// regression on a sample of true edges vs non-edges and score with the
// classifier logit, matching the paper's "same approach as in link
// prediction" instruction (§5.3).
func reconstructionScorer(model *Model, g *graph.Graph, seed int64) (eval.Scorer, error) {
	proto := model.Protocol
	if proto == ProtoInnerOrEdgeFeatures {
		if g.Directed {
			proto = ProtoEdgeFeatures
		} else {
			proto = ProtoInner
		}
	}
	if proto != ProtoEdgeFeatures {
		return model.Scorer, nil
	}
	rng := rand.New(rand.NewSource(seed + 77))
	edges := g.Edges()
	nTrain := len(edges)
	const maxTrain = 20000
	if nTrain > maxTrain {
		// Reservoir-free subsample: shuffle prefix.
		for i := 0; i < maxTrain; i++ {
			j := i + rng.Intn(len(edges)-i)
			edges[i], edges[j] = edges[j], edges[i]
		}
		nTrain = maxTrain
	}
	neg, err := eval.SampleNonEdges(g, nTrain, rng)
	if err != nil {
		return nil, err
	}
	concat := func(u, v int) []float64 {
		fu, fv := model.Features(u), model.Features(v)
		out := make([]float64, 0, len(fu)+len(fv))
		out = append(out, fu...)
		return append(out, fv...)
	}
	x := make([][]float64, 0, 2*nTrain)
	y := make([]int, 0, 2*nTrain)
	for _, e := range edges[:nTrain] {
		x = append(x, concat(int(e.U), int(e.V)))
		y = append(y, 1)
	}
	for _, e := range neg {
		x = append(x, concat(int(e.U), int(e.V)))
		y = append(y, 0)
	}
	lr, err := eval.TrainLogReg(x, y, eval.LogRegConfig{Seed: seed, Epochs: 10})
	if err != nil {
		return nil, err
	}
	return eval.ScorerFunc(func(u, v int) float64 {
		return lr.Score(concat(u, v))
	}), nil
}
