package experiments

import "fmt"

func init() {
	register(Runner{
		Name:  "fig7",
		Paper: "Fig 7: embedding construction time vs k (single thread)",
		Run:   runFig7,
	})
}

func runFig7(cfg Config) ([]*Table, error) {
	cfg = cfg.defaults()
	var tables []*Table
	for _, ds := range fig4Datasets(cfg.Full) {
		if !cfg.wantDataset(ds.Name) {
			continue
		}
		g, err := ds.Gen(cfg.Scale)
		if err != nil {
			return nil, err
		}
		dims := cfg.dims(fig4Dims(cfg.Full))
		t := &Table{
			Title:  fmt.Sprintf("Fig 7 (%s, stand-in for %s): construction time vs k", ds.Name, ds.PaperName),
			Header: append([]string{"method"}, intHeaders("k=", dims)...),
		}
		for _, m := range cfg.selectMethods() {
			if err := cfg.Err(); err != nil {
				return nil, err
			}
			if m.Slow && ds.Heavy {
				continue
			}
			row := []string{m.Name}
			for _, dim := range dims {
				model, err := m.TrainTimed(cfg.ctx(), g, dim, cfg.Seed)
				if err != nil {
					return nil, err
				}
				cfg.logf("fig7 %s %s k=%d time=%.2fs", ds.Name, m.Name, dim, model.TrainTime.Seconds())
				row = append(row, f1s(model.TrainTime.Seconds()))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
