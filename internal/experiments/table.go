// Package experiments regenerates every table and figure of the paper's
// evaluation section on synthetic stand-ins for the original datasets (see
// DESIGN.md §3 for the substitution rationale and EXPERIMENTS.md for the
// paper-vs-measured record). Each experiment is registered by id
// ("table1", "fig4", …) and returns plain-text tables.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: one header row plus data rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a data row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("== " + t.Title + " ==\n")
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// f3 formats a float with three decimals, the paper's precision.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// f1s formats seconds with one decimal.
func f1s(seconds float64) string { return fmt.Sprintf("%.2fs", seconds) }
