package experiments

import (
	"fmt"

	"github.com/nrp-embed/nrp/internal/eval"
	"github.com/nrp-embed/nrp/internal/graph"
)

func init() {
	register(Runner{
		Name:  "fig9",
		Paper: "Fig 9: link prediction on evolving graphs (train on E_old, predict E_new)",
		Run:   runFig9,
	})
}

func runFig9(cfg Config) ([]*Table, error) {
	cfg = cfg.defaults()
	var tables []*Table
	for _, ds := range EvolvingDatasets {
		if !cfg.wantDataset(ds.Name) {
			continue
		}
		old, newEdges, err := ds.Gen(cfg.Scale)
		if err != nil {
			return nil, err
		}
		// Test set: the real future edges plus an equal number of pairs
		// absent from both snapshots.
		neg, err := sampleEvolvingNegatives(old, newEdges, cfg.Seed+ds.Seed)
		if err != nil {
			return nil, err
		}
		split := &eval.LinkPredSplit{Train: old, Pos: newEdges, Neg: neg}
		t := &Table{
			Title:  fmt.Sprintf("Fig 9 (%s, stand-in for %s): AUC predicting real new links", ds.Name, ds.PaperName),
			Header: []string{"method", "AUC"},
		}
		slowOK := !cfg.Full && old.N <= 10000 || cfg.Full
		for _, m := range cfg.selectMethods() {
			if err := cfg.Err(); err != nil {
				return nil, err
			}
			if m.Slow && !slowOK {
				continue
			}
			model, err := m.TrainTimed(cfg.ctx(), old, cfg.Dim, cfg.Seed)
			if err != nil {
				return nil, err
			}
			auc, err := linkPredictionAUC(model, old.Directed, split, cfg.Seed)
			if err != nil {
				return nil, err
			}
			cfg.logf("fig9 %s %s AUC=%.3f", ds.Name, m.Name, auc)
			t.AddRow(m.Name, f3(auc))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// sampleEvolvingNegatives samples pairs that are edges in neither the old
// snapshot nor the new batch.
func sampleEvolvingNegatives(old *graph.Graph, newEdges []graph.Edge, seed int64) ([]graph.Edge, error) {
	inNew := make(map[int64]bool, len(newEdges))
	key := func(u, v int32) int64 {
		a, b := u, v
		if !old.Directed && a > b {
			a, b = b, a
		}
		return int64(a)*int64(old.N) + int64(b)
	}
	for _, e := range newEdges {
		inNew[key(e.U, e.V)] = true
	}
	rng := randFrom(seed + 31)
	want := len(newEdges)
	seen := make(map[int64]bool, want)
	out := make([]graph.Edge, 0, want)
	maxAttempts := 200*want + 10000
	for attempts := 0; len(out) < want; attempts++ {
		if attempts > maxAttempts {
			return nil, fmt.Errorf("experiments: fig9 negative sampling exhausted (%d of %d)", len(out), want)
		}
		u := int32(rng.Intn(old.N))
		v := int32(rng.Intn(old.N))
		if u == v || old.HasEdge(int(u), int(v)) {
			continue
		}
		k := key(u, v)
		if inNew[k] || seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, graph.Edge{U: u, V: v})
	}
	return out, nil
}
