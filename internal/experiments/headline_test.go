package experiments

import (
	"testing"

	"github.com/nrp-embed/nrp/internal/core"
	"github.com/nrp-embed/nrp/internal/eval"
)

// TestPaperHeadlineClaims asserts the paper's two central comparative
// results at reduced scale on wiki-sim: node reweighting improves link
// prediction over the raw PPR factorization (Fig 4) and improves graph
// reconstruction (Fig 5). Deterministic seeds keep it stable.
func TestPaperHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ds, err := FindDataset("wiki-sim")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ds.Gen(0.25)
	if err != nil {
		t.Fatal(err)
	}
	split, err := eval.NewLinkPredSplit(g, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Dim = 64
	opt.Seed = 1

	base, err := core.ApproxPPR(split.Train, opt)
	if err != nil {
		t.Fatal(err)
	}
	nrpEmb, err := core.NRP(split.Train, opt)
	if err != nil {
		t.Fatal(err)
	}
	baseAUC, err := eval.LinkPredictionAUC(base, split)
	if err != nil {
		t.Fatal(err)
	}
	nrpAUC, err := eval.LinkPredictionAUC(nrpEmb, split)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("link prediction: ApproxPPR %.4f, NRP %.4f", baseAUC, nrpAUC)
	if nrpAUC <= baseAUC {
		t.Errorf("Fig 4 claim failed: NRP %.4f <= ApproxPPR %.4f", nrpAUC, baseAUC)
	}

	// Reconstruction on the full graph (Fig 5 protocol).
	baseFull, err := core.ApproxPPR(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	nrpFull, err := core.NRP(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	ks := []int{1000, 10000}
	basePrec, err := eval.ReconstructionPrecision(g, baseFull, 1, ks, 3)
	if err != nil {
		t.Fatal(err)
	}
	nrpPrec, err := eval.ReconstructionPrecision(g, nrpFull, 1, ks, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("reconstruction p@1k/p@10k: ApproxPPR %.3f/%.3f, NRP %.3f/%.3f",
		basePrec[0], basePrec[1], nrpPrec[0], nrpPrec[1])
	if nrpPrec[0] <= basePrec[0] {
		t.Errorf("Fig 5 claim failed at K=1000: NRP %.3f <= ApproxPPR %.3f", nrpPrec[0], basePrec[0])
	}
}
