package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
)

// Config controls an experiment run.
type Config struct {
	// Ctx, when non-nil, lets the caller cancel a run; runners check it
	// between training cells and return Ctx.Err(). Embedding runs inside a
	// cell also inherit it, so cancellation lands mid-factorization too.
	Ctx context.Context
	// Scale multiplies every dataset's node and edge counts (default 1).
	Scale float64
	// Dim is the embedding dimensionality for non-sweep experiments
	// (default 128, the paper's setting).
	Dim int
	// Seed drives all randomness.
	Seed int64
	// Full widens sweeps and dataset coverage toward the paper's grids;
	// the default "quick" profile completes the whole suite on one core.
	Full bool
	// Progress receives log lines during long experiments (nil = silent).
	Progress io.Writer
	// Methods restricts runs to the named methods (nil = all registered).
	Methods []string
	// DatasetNames restricts runs to the named datasets (nil = profile
	// default).
	DatasetNames []string
	// Dims overrides the dimensionality sweep of Fig 4 / Fig 7.
	Dims []int
}

// selectMethods resolves the method filter against the registry.
func (c Config) selectMethods() []Method {
	if len(c.Methods) == 0 {
		return Methods
	}
	var out []Method
	for _, m := range Methods {
		for _, want := range c.Methods {
			if m.Name == want {
				out = append(out, m)
				break
			}
		}
	}
	return out
}

// wantDataset reports whether the dataset filter admits name.
func (c Config) wantDataset(name string) bool {
	if len(c.DatasetNames) == 0 {
		return true
	}
	for _, want := range c.DatasetNames {
		if want == name {
			return true
		}
	}
	return false
}

// dims returns the dimensionality sweep, preferring the explicit override.
func (c Config) dims(def []int) []int {
	if len(c.Dims) > 0 {
		return c.Dims
	}
	return def
}

func (c Config) defaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Dim == 0 {
		c.Dim = 128
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Err reports the configured context's cancellation error, if any.
func (c Config) Err() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// ctx resolves the configured context, defaulting to context.Background().
func (c Config) ctx() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// Runner is a registered experiment regenerating one paper table/figure.
type Runner struct {
	Name  string // registry id, e.g. "fig4"
	Paper string // what it reproduces
	Run   func(Config) ([]*Table, error)
}

var registry = map[string]Runner{}

func register(r Runner) {
	if _, dup := registry[r.Name]; dup {
		panic("experiments: duplicate runner " + r.Name)
	}
	registry[r.Name] = r
}

// Find returns the runner registered under name.
func Find(name string) (Runner, error) {
	r, ok := registry[name]
	if !ok {
		return Runner{}, fmt.Errorf("experiments: unknown experiment %q (try one of %v)", name, Names())
	}
	return r, nil
}

// Names lists registered experiment ids in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns every registered runner sorted by name.
func All() []Runner {
	out := make([]Runner, 0, len(registry))
	for _, name := range Names() {
		out = append(out, registry[name])
	}
	return out
}
