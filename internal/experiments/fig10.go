package experiments

import (
	"fmt"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/core"
	"github.com/nrp-embed/nrp/internal/graph"
)

func init() {
	register(Runner{
		Name:  "fig10",
		Paper: "Fig 10: scalability of NRP on Erdős–Rényi graphs (time vs n, time vs m)",
		Run:   runFig10,
	})
}

// fig10Grid returns the node and edge sweeps. The paper fixes n = 10⁶ while
// varying m ∈ {2,4,6,8,10}·10⁷ and fixes m = 10⁷ while varying
// n ∈ {2,…,10}·10⁵; the harness scales both down (quick: 40×, full: 10×)
// preserving the 5-point linear sweep shape.
func fig10Grid(full bool) (fixedM int, ns []int, fixedN int, ms []int, dim int) {
	if full {
		return 1000000, []int{20000, 40000, 60000, 80000, 100000},
			100000, []int{2000000, 4000000, 6000000, 8000000, 10000000}, 64
	}
	return 250000, []int{5000, 10000, 15000, 20000, 25000},
		25000, []int{500000, 1000000, 1500000, 2000000, 2500000}, 32
}

func runFig10(cfg Config) ([]*Table, error) {
	cfg = cfg.defaults()
	fixedM, ns, fixedN, ms, dim := fig10Grid(cfg.Full)
	opt := core.DefaultOptions()
	opt.Dim = dim
	opt.Seed = cfg.Seed

	varyN := &Table{
		Title:  fmt.Sprintf("Fig 10a: NRP time vs number of nodes (m = %d, k = %d)", fixedM, dim),
		Header: []string{"nodes", "time", "ns/edge-equivalent"},
	}
	for i, n := range ns {
		if err := cfg.Err(); err != nil {
			return nil, err
		}
		g, err := graph.GenErdosRenyi(n, fixedM, false, cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		secs, err := timeNRP(cfg.ctx(), g, opt)
		if err != nil {
			return nil, err
		}
		cfg.logf("fig10a n=%d time=%.2fs", n, secs)
		varyN.AddRow(fmt.Sprintf("%d", n), f1s(secs), perUnit(secs, fixedM+n))
	}

	varyM := &Table{
		Title:  fmt.Sprintf("Fig 10b: NRP time vs number of edges (n = %d, k = %d)", fixedN, dim),
		Header: []string{"edges", "time", "ns/edge-equivalent"},
	}
	for i, m := range ms {
		if err := cfg.Err(); err != nil {
			return nil, err
		}
		g, err := graph.GenErdosRenyi(fixedN, m, false, cfg.Seed+100+int64(i))
		if err != nil {
			return nil, err
		}
		secs, err := timeNRP(cfg.ctx(), g, opt)
		if err != nil {
			return nil, err
		}
		cfg.logf("fig10b m=%d time=%.2fs", m, secs)
		varyM.AddRow(fmt.Sprintf("%d", m), f1s(secs), perUnit(secs, m+fixedN))
	}
	return []*Table{varyN, varyM}, nil
}

// perUnit reports normalized cost: a near-constant column demonstrates the
// linear scaling the paper claims.
func perUnit(secs float64, units int) string {
	return fmt.Sprintf("%.0f", secs*1e9/float64(units))
}

// randFrom builds a seeded rand for helpers that need one.
func randFrom(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
