package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/nrp-embed/nrp/internal/core"
	"github.com/nrp-embed/nrp/internal/eval"
	"github.com/nrp-embed/nrp/internal/graph"
)

func init() {
	register(Runner{
		Name:  "fig8",
		Paper: "Fig 8: link prediction AUC vs NRP parameters α, ε, ℓ1, ℓ2",
		Run:   runFig8,
	})
	register(Runner{
		Name:  "fig11",
		Paper: "Fig 11: running time vs NRP parameters α, ε, ℓ1, ℓ2",
		Run:   runFig11,
	})
}

// paramSweep defines one panel of Figs 8 and 11.
type paramSweep struct {
	name   string
	values []float64
	apply  func(*core.Options, float64)
}

func sweeps(full bool) []paramSweep {
	alpha := []float64{0.1, 0.15, 0.3, 0.5, 0.7, 0.9}
	eps := []float64{0.1, 0.2, 0.4, 0.8}
	l1 := []float64{1, 2, 5, 10, 20, 40}
	l2 := []float64{0, 1, 2, 5, 10, 20}
	if full {
		eps = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
		l1 = []float64{1, 2, 5, 10, 15, 20, 30, 40}
		l2 = []float64{0, 1, 2, 5, 10, 15, 20, 30}
	}
	return []paramSweep{
		{"alpha", alpha, func(o *core.Options, v float64) { o.Alpha = v }},
		{"epsilon", eps, func(o *core.Options, v float64) { o.Epsilon = v }},
		{"l1", l1, func(o *core.Options, v float64) { o.L1 = int(v) }},
		{"l2", l2, func(o *core.Options, v float64) { o.L2 = int(v) }},
	}
}

func fig8Datasets(full bool) []string {
	if full {
		return []string{"wiki-sim", "blogcatalog-sim", "youtube-sim"}
	}
	return []string{"wiki-sim"}
}

func runFig8(cfg Config) ([]*Table, error) {
	cfg = cfg.defaults()
	var tables []*Table
	for _, name := range fig8Datasets(cfg.Full) {
		if !cfg.wantDataset(name) {
			continue
		}
		ds, err := FindDataset(name)
		if err != nil {
			return nil, err
		}
		g, err := ds.Gen(cfg.Scale)
		if err != nil {
			return nil, err
		}
		split, err := eval.NewLinkPredSplit(g, 0.3, cfg.Seed+ds.Seed)
		if err != nil {
			return nil, err
		}
		for _, sw := range sweeps(cfg.Full) {
			t := &Table{
				Title:  fmt.Sprintf("Fig 8 (%s): AUC vs %s", ds.Name, sw.name),
				Header: []string{sw.name, "AUC"},
			}
			for _, v := range sw.values {
				if err := cfg.Err(); err != nil {
					return nil, err
				}
				opt := core.DefaultOptions()
				opt.Dim = cfg.Dim
				opt.Seed = cfg.Seed
				sw.apply(&opt, v)
				emb, _, err := core.NRPCtx(cfg.ctx(), split.Train, opt, singleCore)
				if err != nil {
					return nil, err
				}
				auc, err := eval.LinkPredictionAUC(emb, split)
				if err != nil {
					return nil, err
				}
				cfg.logf("fig8 %s %s=%v AUC=%.3f", ds.Name, sw.name, v, auc)
				t.AddRow(trimFloat(v), f3(auc))
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}

func runFig11(cfg Config) ([]*Table, error) {
	cfg = cfg.defaults()
	var tables []*Table
	datasets := []string{"wiki-sim"}
	if cfg.Full {
		datasets = []string{"wiki-sim", "blogcatalog-sim", "youtube-sim", "tweibo-sim"}
	}
	for _, name := range datasets {
		if !cfg.wantDataset(name) {
			continue
		}
		ds, err := FindDataset(name)
		if err != nil {
			return nil, err
		}
		g, err := ds.Gen(cfg.Scale)
		if err != nil {
			return nil, err
		}
		for _, sw := range sweeps(cfg.Full) {
			t := &Table{
				Title:  fmt.Sprintf("Fig 11 (%s): NRP running time vs %s", ds.Name, sw.name),
				Header: []string{sw.name, "time"},
			}
			for _, v := range sw.values {
				if err := cfg.Err(); err != nil {
					return nil, err
				}
				opt := core.DefaultOptions()
				opt.Dim = cfg.Dim
				opt.Seed = cfg.Seed
				sw.apply(&opt, v)
				secs, err := timeNRP(cfg.ctx(), g, opt)
				if err != nil {
					return nil, err
				}
				cfg.logf("fig11 %s %s=%v time=%.2fs", ds.Name, sw.name, v, secs)
				t.AddRow(trimFloat(v), f1s(secs))
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}

// timeNRP measures one single-core NRP build, the paper's Fig 11 protocol.
func timeNRP(ctx context.Context, g *graph.Graph, opt core.Options) (float64, error) {
	start := time.Now()
	if _, _, err := core.NRPCtx(ctx, g, opt, singleCore); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

func trimFloat(v float64) string {
	if v == float64(int(v)) {
		return fmt.Sprintf("%d", int(v))
	}
	return fmt.Sprintf("%g", v)
}
