package experiments

import "fmt"

func init() {
	register(Runner{
		Name:  "table3",
		Paper: "Table 3: dataset statistics (synthetic stand-ins vs paper originals)",
		Run:   runTable3,
	})
	register(Runner{
		Name:  "table4",
		Paper: "Table 4: evolving dataset statistics (VK, Digg stand-ins)",
		Run:   runTable4,
	})
}

func runTable3(cfg Config) ([]*Table, error) {
	cfg = cfg.defaults()
	t := &Table{
		Title:  "Table 3: dataset statistics (stand-in | paper original)",
		Header: []string{"name", "|V|", "|E|", "type", "#labels", "max outdeg", "paper |V|", "paper |E|"},
	}
	for _, d := range Datasets {
		if err := cfg.Err(); err != nil {
			return nil, err
		}
		cfg.logf("table3: generating %s", d.Name)
		g, err := d.Gen(cfg.Scale)
		if err != nil {
			return nil, err
		}
		s := g.Stats()
		kind := "undirected"
		if s.Directed {
			kind = "directed"
		}
		t.AddRow(d.Name,
			fmt.Sprintf("%d", s.Nodes), fmt.Sprintf("%d", s.Edges),
			kind, fmt.Sprintf("%d", s.NumLabels), fmt.Sprintf("%d", s.MaxOutDeg),
			d.PaperN, d.PaperM)
	}
	return []*Table{t}, nil
}

func runTable4(cfg Config) ([]*Table, error) {
	cfg = cfg.defaults()
	t := &Table{
		Title:  "Table 4: evolving dataset statistics (stand-in | paper original)",
		Header: []string{"name", "|V|", "|Eold|", "|Enew|", "type", "paper |V|", "paper |Eold|", "paper |Enew|"},
	}
	for _, d := range EvolvingDatasets {
		if err := cfg.Err(); err != nil {
			return nil, err
		}
		cfg.logf("table4: generating %s", d.Name)
		old, newEdges, err := d.Gen(cfg.Scale)
		if err != nil {
			return nil, err
		}
		kind := "undirected"
		if old.Directed {
			kind = "directed"
		}
		t.AddRow(d.Name,
			fmt.Sprintf("%d", old.N), fmt.Sprintf("%d", old.NumEdges), fmt.Sprintf("%d", len(newEdges)),
			kind, d.PaperN, d.PaperMOld, d.PaperMNew)
	}
	return []*Table{t}, nil
}
