package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/nrp-embed/nrp/internal/baselines"
	"github.com/nrp-embed/nrp/internal/core"
	"github.com/nrp-embed/nrp/internal/eval"
	"github.com/nrp-embed/nrp/internal/graph"
)

// ScoreProtocol selects how a method's embeddings score a node pair for
// link prediction and reconstruction, following §5.2 of the paper.
type ScoreProtocol int

const (
	// ProtoDual scores with forward·backward inner products (NRP,
	// ApproxPPR, APP, STRAP, AROPE).
	ProtoDual ScoreProtocol = iota
	// ProtoInner scores with plain inner products (RandNE, Spectral).
	ProtoInner
	// ProtoInnerOrEdgeFeatures uses inner products on undirected graphs
	// and the edge-features classifier on directed ones (VERSE, which has
	// a single vector per node and cannot express direction).
	ProtoInnerOrEdgeFeatures
	// ProtoEdgeFeatures always trains the edge-features classifier
	// (DeepWalk, node2vec, LINE).
	ProtoEdgeFeatures
)

// Model is a trained embedding with the evaluation hooks the harness needs.
type Model struct {
	Scorer    eval.Scorer
	Features  func(int) []float64
	Protocol  ScoreProtocol
	TrainTime time.Duration
}

// Method is a registered embedding method.
type Method struct {
	Name string
	// Slow marks SGD-trained methods excluded from Heavy datasets — the
	// analog of the paper's 7-day timeout policy at this harness's scale.
	Slow bool
	// UndirectedOnly marks methods that ignore edge direction (fed the
	// symmetrized graph, as the paper does for AROPE, RandNE, …).
	UndirectedOnly bool
	Protocol       ScoreProtocol
	// Train builds the method's embedding. Only the ctx-aware methods
	// (NRP, ApproxPPR) observe cancellation mid-run; the rest return at
	// their next cell boundary.
	Train func(ctx context.Context, g *graph.Graph, dim int, seed int64) (*Model, error)
}

func dualModel(emb *core.Embedding, proto ScoreProtocol) *Model {
	return &Model{Scorer: emb, Features: emb.Features, Protocol: proto}
}

func vecModel(emb *baselines.VectorEmbedding, proto ScoreProtocol) *Model {
	return &Model{Scorer: emb, Features: emb.Features, Protocol: proto}
}

// nrpOptions holds the paper's defaults with the dimensionality overridden.
func nrpOptions(dim int, seed int64) core.Options {
	opt := core.DefaultOptions()
	opt.Dim = dim
	opt.Seed = seed
	return opt
}

// singleCore pins the harness's NRP-family runs to one worker thread.
// The pipeline defaults to all cores, but the baselines here are serial
// and the paper's evaluation protocol is single-core — TrainTimed's
// cross-method wall-time comparisons (Fig 7, 10, 11 and the table time
// columns) are only meaningful if NRP plays by the same rule.
var singleCore = core.WithThreads(1)

// Methods lists every implemented method in the order the paper's figures
// use. The SGD sample budgets are the "quick" profile; cmd/nrpexp -full
// raises them.
var Methods = []Method{
	{
		Name: "NRP", Protocol: ProtoDual,
		Train: func(ctx context.Context, g *graph.Graph, dim int, seed int64) (*Model, error) {
			emb, _, err := core.NRPCtx(ctx, g, nrpOptions(dim, seed), singleCore)
			if err != nil {
				return nil, err
			}
			return dualModel(emb, ProtoDual), nil
		},
	},
	{
		Name: "ApproxPPR", Protocol: ProtoDual,
		Train: func(ctx context.Context, g *graph.Graph, dim int, seed int64) (*Model, error) {
			emb, _, err := core.ApproxPPRCtx(ctx, g, nrpOptions(dim, seed), singleCore)
			if err != nil {
				return nil, err
			}
			return dualModel(emb, ProtoDual), nil
		},
	},
	{
		Name: "STRAP", Protocol: ProtoDual,
		Train: func(ctx context.Context, g *graph.Graph, dim int, seed int64) (*Model, error) {
			// δ = 1e-5 as in the paper; on the harness's graph sizes this
			// is effectively exact push.
			emb, err := baselines.STRAP(g, baselines.STRAPConfig{Dim: dim, Delta: 1e-5, Seed: seed})
			if err != nil {
				return nil, err
			}
			return dualModel(emb, ProtoDual), nil
		},
	},
	{
		Name: "AROPE", UndirectedOnly: true, Protocol: ProtoDual,
		Train: func(ctx context.Context, g *graph.Graph, dim int, seed int64) (*Model, error) {
			emb, err := baselines.AROPE(g, baselines.AROPEConfig{Dim: dim, Seed: seed})
			if err != nil {
				return nil, err
			}
			return dualModel(emb, ProtoDual), nil
		},
	},
	{
		Name: "RandNE", UndirectedOnly: true, Protocol: ProtoInner,
		Train: func(ctx context.Context, g *graph.Graph, dim int, seed int64) (*Model, error) {
			emb, err := baselines.RandNE(g, baselines.RandNEConfig{Dim: dim, Seed: seed})
			if err != nil {
				return nil, err
			}
			return vecModel(emb, ProtoInner), nil
		},
	},
	{
		Name: "Spectral", UndirectedOnly: true, Protocol: ProtoInner,
		Train: func(ctx context.Context, g *graph.Graph, dim int, seed int64) (*Model, error) {
			emb, err := baselines.Spectral(g, baselines.SpectralConfig{Dim: dim, Seed: seed})
			if err != nil {
				return nil, err
			}
			return vecModel(emb, ProtoInner), nil
		},
	},
	{
		Name: "VERSE", Slow: true, Protocol: ProtoInnerOrEdgeFeatures,
		Train: func(ctx context.Context, g *graph.Graph, dim int, seed int64) (*Model, error) {
			emb, err := baselines.VERSE(g, baselines.VERSEConfig{Dim: dim, Samples: 60, Epochs: 6, LearnRate: 0.05, Seed: seed})
			if err != nil {
				return nil, err
			}
			return vecModel(emb, ProtoInnerOrEdgeFeatures), nil
		},
	},
	{
		Name: "APP", Slow: true, Protocol: ProtoDual,
		Train: func(ctx context.Context, g *graph.Graph, dim int, seed int64) (*Model, error) {
			emb, err := baselines.APP(g, baselines.APPConfig{Dim: dim, Samples: 100, Epochs: 8, Seed: seed})
			if err != nil {
				return nil, err
			}
			return dualModel(emb, ProtoDual), nil
		},
	},
	{
		Name: "DeepWalk", Slow: true, Protocol: ProtoEdgeFeatures,
		Train: func(ctx context.Context, g *graph.Graph, dim int, seed int64) (*Model, error) {
			emb, err := baselines.DeepWalk(g, baselines.WalkConfig{Dim: dim, Walks: 5, WalkLen: 20, Seed: seed})
			if err != nil {
				return nil, err
			}
			return vecModel(emb, ProtoEdgeFeatures), nil
		},
	},
	{
		Name: "node2vec", Slow: true, Protocol: ProtoEdgeFeatures,
		Train: func(ctx context.Context, g *graph.Graph, dim int, seed int64) (*Model, error) {
			emb, err := baselines.Node2Vec(g, baselines.WalkConfig{Dim: dim, Walks: 5, WalkLen: 20, P: 0.5, Q: 2, Seed: seed})
			if err != nil {
				return nil, err
			}
			return vecModel(emb, ProtoEdgeFeatures), nil
		},
	},
	{
		Name: "LINE", Slow: true, Protocol: ProtoEdgeFeatures,
		Train: func(ctx context.Context, g *graph.Graph, dim int, seed int64) (*Model, error) {
			emb, err := baselines.LINE(g, baselines.LINEConfig{Dim: dim, Order: 2, Samples: 30, Seed: seed})
			if err != nil {
				return nil, err
			}
			return vecModel(emb, ProtoEdgeFeatures), nil
		},
	},
	{
		Name: "ProNE", UndirectedOnly: true, Protocol: ProtoInner,
		Train: func(ctx context.Context, g *graph.Graph, dim int, seed int64) (*Model, error) {
			emb, err := baselines.ProNE(g, baselines.ProNEConfig{Dim: dim, Seed: seed})
			if err != nil {
				return nil, err
			}
			return vecModel(emb, ProtoInner), nil
		},
	},
	{
		Name: "Walklets", Slow: true, Protocol: ProtoEdgeFeatures,
		Train: func(ctx context.Context, g *graph.Graph, dim int, seed int64) (*Model, error) {
			emb, err := baselines.Walklets(g, baselines.WalkletsConfig{Dim: dim, Scales: 2, Walks: 5, WalkLen: 20, Seed: seed})
			if err != nil {
				return nil, err
			}
			return vecModel(emb, ProtoEdgeFeatures), nil
		},
	},
}

// FindMethod returns the registered method with the given name.
func FindMethod(name string) (Method, error) {
	for _, m := range Methods {
		if m.Name == name {
			return m, nil
		}
	}
	return Method{}, fmt.Errorf("experiments: unknown method %q", name)
}

// TrainTimed trains the method and records wall-clock construction time
// (excluding dataset generation, matching the paper's measurement).
func (m Method) TrainTimed(ctx context.Context, g *graph.Graph, dim int, seed int64) (*Model, error) {
	start := time.Now()
	model, err := m.Train(ctx, g, dim, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: training %s: %w", m.Name, err)
	}
	model.TrainTime = time.Since(start)
	return model, nil
}

// linkPredictionAUC applies the method's scoring protocol to a split.
func linkPredictionAUC(model *Model, directed bool, split *eval.LinkPredSplit, seed int64) (float64, error) {
	proto := model.Protocol
	if proto == ProtoInnerOrEdgeFeatures {
		if directed {
			proto = ProtoEdgeFeatures
		} else {
			proto = ProtoInner
		}
	}
	switch proto {
	case ProtoEdgeFeatures:
		return eval.EdgeFeatureLinkPredictionAUC(model.Features, split, eval.LogRegConfig{Seed: seed, Epochs: 10})
	default:
		return eval.LinkPredictionAUC(model.Scorer, split)
	}
}
