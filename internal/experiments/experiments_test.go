package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// tinyConfig shrinks every dataset far enough that each experiment smoke
// test finishes in seconds on one core.
func tinyConfig() Config {
	return Config{
		Scale:   0.05,
		Dim:     16,
		Seed:    3,
		Methods: []string{"NRP", "ApproxPPR", "RandNE"},
		Dims:    []int{8, 16},
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"example1", "fig10", "fig11", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "table1", "table3", "table4",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry has %v, want %v", got, want)
		}
	}
	if len(All()) != len(want) {
		t.Fatal("All() size mismatch")
	}
	if _, err := Find("fig4"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tables, err := runTable1(Config{})
	if err != nil {
		t.Fatal(err)
	}
	main := tables[0]
	if len(main.Rows) != 4 {
		t.Fatalf("want 4 source rows, got %d", len(main.Rows))
	}
	// Row 0 is π(v2,·); spot-check the printed paper values.
	wantV2 := []string{"0.150", "0.269", "0.188", "0.118", "0.170", "0.048", "0.029", "0.019", "0.008"}
	for i, w := range wantV2 {
		got := main.Rows[0][i+1]
		gw, _ := strconv.ParseFloat(w, 64)
		gg, _ := strconv.ParseFloat(got, 64)
		if math.Abs(gw-gg) > 0.0015 {
			t.Fatalf("π(v2,v%d) = %s, paper %s", i+1, got, w)
		}
	}
}

func TestExample1Runs(t *testing.T) {
	tables, err := runExample1(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("want 3 tables, got %d", len(tables))
	}
	if len(tables[0].Rows) != 9 {
		t.Fatalf("factor table should have 9 node rows, got %d", len(tables[0].Rows))
	}
	// The k'=4 scores should track PPR (paper values 0.119, 0.166).
	score24, _ := strconv.ParseFloat(tables[1].Rows[0][3], 64)
	score97, _ := strconv.ParseFloat(tables[1].Rows[1][3], 64)
	if math.Abs(score24-0.119) > 0.05 || math.Abs(score97-0.166) > 0.05 {
		t.Fatalf("example scores off: %v %v", score24, score97)
	}
}

func TestTable3Stats(t *testing.T) {
	cfg := Config{Scale: 0.02, Seed: 5, DatasetNames: []string{"wiki-sim", "blogcatalog-sim"}}
	// Only the listed datasets matter for assertions; generate all to keep
	// the row count stable.
	tables, err := runTable3(Config{Scale: 0.02, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != len(Datasets) {
		t.Fatalf("want %d dataset rows, got %d", len(Datasets), len(tables[0].Rows))
	}
	// wiki-sim row: directed with 40 labels.
	row := tables[0].Rows[0]
	if row[0] != "wiki-sim" || row[3] != "directed" || row[4] != "40" {
		t.Fatalf("wiki-sim row wrong: %v", row)
	}
	_ = cfg
}

func TestTable4Stats(t *testing.T) {
	tables, err := runTable4(Config{Scale: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != len(EvolvingDatasets) {
		t.Fatalf("want %d rows, got %d", len(EvolvingDatasets), len(tables[0].Rows))
	}
}

func TestFig4Smoke(t *testing.T) {
	cfg := tinyConfig()
	cfg.DatasetNames = []string{"wiki-sim"}
	tables, err := runFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("want 1 table, got %d", len(tables))
	}
	tab := tables[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 method rows, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			auc, err := strconv.ParseFloat(cell, 64)
			if err != nil || auc < 0 || auc > 1 {
				t.Fatalf("bad AUC cell %q in row %v", cell, row)
			}
		}
	}
}

func TestFig5Smoke(t *testing.T) {
	cfg := tinyConfig()
	cfg.DatasetNames = []string{"wiki-sim"}
	tables, err := runFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 3 {
		t.Fatalf("unexpected shape: %d tables", len(tables))
	}
	// Precision@10 of NRP on a tiny dense graph should be high.
	p10, _ := strconv.ParseFloat(tables[0].Rows[0][1], 64)
	if p10 < 0.5 {
		t.Fatalf("NRP precision@10 = %v", p10)
	}
}

func TestFig6Smoke(t *testing.T) {
	cfg := tinyConfig()
	cfg.DatasetNames = []string{"wiki-sim"}
	tables, err := runFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// micro + macro tables; ApproxPPR skipped by design.
	if len(tables) != 2 || len(tables[0].Rows) != 2 {
		t.Fatalf("unexpected shape: %d tables, %d rows", len(tables), len(tables[0].Rows))
	}
}

func TestFig8Smoke(t *testing.T) {
	cfg := tinyConfig()
	tables, err := runFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("want 4 sweep panels, got %d", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) < 4 {
			t.Fatalf("sweep %s too short: %d rows", tab.Title, len(tab.Rows))
		}
	}
}

func TestFig9Smoke(t *testing.T) {
	cfg := tinyConfig()
	cfg.DatasetNames = []string{"vk-sim"}
	tables, err := runFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 3 {
		t.Fatalf("unexpected shape")
	}
}

func TestFig10Smoke(t *testing.T) {
	// Override the grid through a minimal run: quick grid at tiny scale is
	// still too big for a unit test, so test the helper shape instead and
	// run one midpoint by hand.
	fixedM, ns, fixedN, ms, dim := fig10Grid(false)
	if len(ns) != 5 || len(ms) != 5 || fixedM <= 0 || fixedN <= 0 || dim <= 0 {
		t.Fatal("fig10 grid malformed")
	}
	full := fig10Grid
	fm, _, fn, _, fdim := full(true)
	if fm <= fixedM || fn <= fixedN || fdim < dim {
		t.Fatal("full grid should dominate quick grid")
	}
}

func TestFig11Smoke(t *testing.T) {
	cfg := tinyConfig()
	tables, err := runFig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("want 4 panels, got %d", len(tables))
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "333") {
		t.Fatalf("render output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestConfigFilters(t *testing.T) {
	cfg := Config{Methods: []string{"NRP", "bogus"}}
	sel := cfg.selectMethods()
	if len(sel) != 1 || sel[0].Name != "NRP" {
		t.Fatalf("selectMethods: %v", sel)
	}
	if !(Config{}).wantDataset("anything") {
		t.Fatal("empty filter should admit all")
	}
	if (Config{DatasetNames: []string{"a"}}).wantDataset("b") {
		t.Fatal("filter leaked")
	}
	if got := (Config{Dims: []int{4}}).dims([]int{1, 2}); len(got) != 1 || got[0] != 4 {
		t.Fatalf("dims override: %v", got)
	}
}

func TestFindDatasetAndMethod(t *testing.T) {
	if _, err := FindDataset("wiki-sim"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindDataset("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := FindMethod("NRP"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindMethod("nope"); err == nil {
		t.Fatal("unknown method accepted")
	}
}
