package experiments

import (
	"fmt"

	"github.com/nrp-embed/nrp/internal/core"
	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/ppr"
)

// Fig1Graph builds the paper's 9-node example graph (edge set recovered
// from Table 1; see DESIGN.md §2).
func Fig1Graph() (*graph.Graph, error) {
	raw := [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 4}, {2, 3}, {2, 4}, {3, 4},
		{4, 5}, {5, 6}, {6, 7}, {7, 8},
	}
	edges := make([]graph.Edge, len(raw))
	for i, e := range raw {
		edges[i] = graph.Edge{U: e[0], V: e[1]}
	}
	return graph.New(9, edges, false)
}

func init() {
	register(Runner{
		Name:  "table1",
		Paper: "Table 1: PPR values for v2, v4, v7, v9 on the Fig-1 graph (α=0.15)",
		Run:   runTable1,
	})
	register(Runner{
		Name:  "example1",
		Paper: "Fig 2 / Example 1: ApproxPPR factors on the Fig-1 graph",
		Run:   runExample1,
	})
}

func runTable1(cfg Config) ([]*Table, error) {
	g, err := Fig1Graph()
	if err != nil {
		return nil, err
	}
	pi, err := ppr.Exact(g, 0.15, 300)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 1: PPR for v2, v4, v7 and v9 in Fig. 1 (α = 0.15)",
		Header: []string{"source", "v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8", "v9"},
	}
	for _, u := range []int{1, 3, 6, 8} {
		row := []string{fmt.Sprintf("π(v%d,·)", u+1)}
		for v := 0; v < g.N; v++ {
			row = append(row, f3(pi.At(u, v)))
		}
		t.AddRow(row...)
	}
	note := &Table{
		Title:  "Table 1 notes",
		Header: []string{"note"},
	}
	note.AddRow("rows v2, v4, v9 match the paper to its printed 3 decimals")
	note.AddRow("the paper's v7 row is internally inconsistent (see DESIGN.md §2)")
	return []*Table{t, note}, nil
}

func runExample1(cfg Config) ([]*Table, error) {
	cfg = cfg.defaults()
	g, err := Fig1Graph()
	if err != nil {
		return nil, err
	}
	// Example 1 uses k′ = 2; an exact rank-2 subspace cannot reproduce the
	// paper's illustrated chain-side values (DESIGN.md §2), so the factors
	// are reported at k′ = 2 and the headline pair scores also at k′ = 4.
	opt := core.DefaultOptions()
	opt.Dim = 4
	opt.Seed = cfg.Seed
	emb2, err := core.ApproxPPR(g, opt)
	if err != nil {
		return nil, err
	}
	opt.Dim = 8
	emb4, err := core.ApproxPPR(g, opt)
	if err != nil {
		return nil, err
	}
	factors := &Table{
		Title:  "Example 1: ApproxPPR factors at k'=2 (X row | Y row per node)",
		Header: []string{"node", "X[0]", "X[1]", "Y[0]", "Y[1]"},
	}
	for v := 0; v < g.N; v++ {
		factors.AddRow(
			fmt.Sprintf("v%d", v+1),
			f3(emb2.X.At(v, 0)), f3(emb2.X.At(v, 1)),
			f3(emb2.Y.At(v, 0)), f3(emb2.Y.At(v, 1)),
		)
	}
	pi, err := ppr.Exact(g, opt.Alpha, 300)
	if err != nil {
		return nil, err
	}
	scores := &Table{
		Title:  "Example 1: X_u·Y_vᵀ vs π(u,v) (paper: 0.119 and 0.166)",
		Header: []string{"pair", "π(u,v)", "score k'=2", "score k'=4"},
	}
	scores.AddRow("(v2,v4)", f3(pi.At(1, 3)), f3(emb2.Score(1, 3)), f3(emb4.Score(1, 3)))
	scores.AddRow("(v9,v7)", f3(pi.At(8, 6)), f3(emb2.Score(8, 6)), f3(emb4.Score(8, 6)))

	// Average factorization quality across all pairs, tying the example to
	// Theorem 1.
	worst, sum := 0.0, 0.0
	for u := 0; u < g.N; u++ {
		for v := 0; v < g.N; v++ {
			if u == v {
				continue
			}
			d := pi.At(u, v) - emb4.Score(u, v)
			if d < 0 {
				d = -d
			}
			sum += d
			if d > worst {
				worst = d
			}
		}
	}
	quality := &Table{
		Title:  "Example 1: factorization error at k'=4",
		Header: []string{"max |π-XYᵀ|", "mean |π-XYᵀ|"},
	}
	quality.AddRow(f3(worst), f3(sum/float64(g.N*(g.N-1))))
	return []*Table{factors, scores, quality}, nil
}
