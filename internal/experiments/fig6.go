package experiments

import (
	"fmt"

	"github.com/nrp-embed/nrp/internal/eval"
)

func init() {
	register(Runner{
		Name:  "fig6",
		Paper: "Fig 6: node classification Micro-F1 vs training percentage",
		Run:   runFig6,
	})
}

func fig6Datasets(full bool) []string {
	if full {
		return []string{"wiki-sim", "blogcatalog-sim", "youtube-sim", "tweibo-sim"}
	}
	return []string{"wiki-sim", "blogcatalog-sim"}
}

func fig6Fracs(full bool) []float64 {
	if full {
		return []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	return []float64{0.1, 0.5, 0.9}
}

func runFig6(cfg Config) ([]*Table, error) {
	cfg = cfg.defaults()
	var tables []*Table
	for _, name := range fig6Datasets(cfg.Full) {
		if !cfg.wantDataset(name) {
			continue
		}
		ds, err := FindDataset(name)
		if err != nil {
			return nil, err
		}
		g, err := ds.Gen(cfg.Scale)
		if err != nil {
			return nil, err
		}
		if g.NumLabels == 0 {
			return nil, fmt.Errorf("experiments: fig6 needs labels on %s", name)
		}
		fracs := fig6Fracs(cfg.Full)
		micro := &Table{
			Title:  fmt.Sprintf("Fig 6 (%s, stand-in for %s): Micro-F1 vs train fraction", ds.Name, ds.PaperName),
			Header: append([]string{"method"}, fracHeaders(fracs)...),
		}
		macro := &Table{
			Title:  fmt.Sprintf("Fig 6 (%s): Macro-F1 vs train fraction (paper omits for space)", ds.Name),
			Header: append([]string{"method"}, fracHeaders(fracs)...),
		}
		for _, m := range cfg.selectMethods() {
			if err := cfg.Err(); err != nil {
				return nil, err
			}
			if m.Slow && ds.Heavy {
				continue
			}
			if m.Name == "ApproxPPR" {
				// NRP and ApproxPPR have identical normalized features
				// (§5.4); the paper plots them as one.
				continue
			}
			model, err := m.TrainTimed(cfg.ctx(), g, cfg.Dim, cfg.Seed)
			if err != nil {
				return nil, err
			}
			microRow := []string{m.Name}
			macroRow := []string{m.Name}
			for _, frac := range fracs {
				res, err := eval.NodeClassification(model.Features, g.Labels, g.NumLabels, frac,
					eval.LogRegConfig{Seed: cfg.Seed, Epochs: 12})
				if err != nil {
					return nil, err
				}
				cfg.logf("fig6 %s %s frac=%.1f micro=%.3f macro=%.3f", ds.Name, m.Name, frac, res.Micro, res.Macro)
				microRow = append(microRow, f3(res.Micro))
				macroRow = append(macroRow, f3(res.Macro))
			}
			micro.AddRow(microRow...)
			macro.AddRow(macroRow...)
		}
		tables = append(tables, micro, macro)
	}
	return tables, nil
}

func fracHeaders(fracs []float64) []string {
	out := make([]string, len(fracs))
	for i, f := range fracs {
		out[i] = fmt.Sprintf("%.0f%%", f*100)
	}
	return out
}
