package experiments

import (
	"fmt"

	"github.com/nrp-embed/nrp/internal/graph"
)

// Dataset describes a synthetic stand-in for one of the paper's graphs
// (Table 3 / Table 4). Quick sizes keep the whole suite runnable on a
// single core; Scale (cmd/nrpexp -scale) multiplies nodes and edges.
type Dataset struct {
	Name      string // our name, e.g. "wiki-sim"
	PaperName string // the dataset it stands in for
	Directed  bool
	N, M      int // quick-profile size
	PaperN    string
	PaperM    string
	Labels    int
	Seed      int64
	// Heavy marks graphs that only the scalable methods run on (the
	// paper's 7-day-timeout policy, scaled to this harness).
	Heavy bool
}

// Gen generates the dataset at the given scale multiplier.
func (d Dataset) Gen(scale float64) (*graph.Graph, error) {
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(d.N) * scale)
	m := int(float64(d.M) * scale)
	labels := d.Labels
	if labels == 0 {
		labels = 20 // unlabeled in the paper; synthetic communities still shape the topology
	}
	g, err := graph.GenSBM(graph.SBMConfig{
		N:           n,
		M:           m,
		Communities: labels,
		Directed:    d.Directed,
		Seed:        d.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: generating %s: %w", d.Name, err)
	}
	if d.Labels == 0 {
		g.Labels = nil
		g.NumLabels = 0
	}
	return g, nil
}

// Datasets mirrors the paper's Table 3. The two small graphs match the
// paper's n and m exactly; larger ones are scaled down (factors recorded in
// EXPERIMENTS.md) so the full suite runs on one core.
var Datasets = []Dataset{
	{Name: "wiki-sim", PaperName: "Wiki", Directed: true, N: 4780, M: 184810, PaperN: "4.78K", PaperM: "184.81K", Labels: 40, Seed: 101},
	{Name: "blogcatalog-sim", PaperName: "BlogCatalog", Directed: false, N: 10310, M: 333980, PaperN: "10.31K", PaperM: "333.98K", Labels: 39, Seed: 102},
	{Name: "youtube-sim", PaperName: "Youtube", Directed: false, N: 56500, M: 149500, PaperN: "1.13M", PaperM: "2.99M", Labels: 47, Seed: 103, Heavy: true},
	{Name: "tweibo-sim", PaperName: "TWeibo", Directed: true, N: 46400, M: 1013000, PaperN: "2.32M", PaperM: "50.65M", Labels: 100, Seed: 104, Heavy: true},
	{Name: "orkut-sim", PaperName: "Orkut", Directed: false, N: 62000, M: 4680000, PaperN: "3.1M", PaperM: "234M", Labels: 100, Seed: 105, Heavy: true},
	{Name: "twitter-sim", PaperName: "Twitter", Directed: true, N: 83200, M: 2400000, PaperN: "41.6M", PaperM: "1.2B", Labels: 0, Seed: 106, Heavy: true},
	{Name: "friendster-sim", PaperName: "Friendster", Directed: false, N: 131200, M: 3600000, PaperN: "65.6M", PaperM: "1.8B", Labels: 0, Seed: 107, Heavy: true},
}

// EvolvingDataset mirrors Table 4: a snapshot plus future edges.
type EvolvingDataset struct {
	Name       string
	PaperName  string
	Directed   bool
	N          int
	MOld, MNew int
	PaperN     string
	PaperMOld  string
	PaperMNew  string
	Seed       int64
}

// Gen generates the snapshot and new-edge set at the given scale.
func (d EvolvingDataset) Gen(scale float64) (*graph.Graph, []graph.Edge, error) {
	if scale <= 0 {
		scale = 1
	}
	return graph.GenEvolving(graph.EvolvingConfig{
		Base: graph.SBMConfig{
			N:           int(float64(d.N) * scale),
			M:           int(float64(d.MOld) * scale),
			Communities: 20,
			Directed:    d.Directed,
			Seed:        d.Seed,
		},
		MNew: int(float64(d.MNew) * scale),
		Seed: d.Seed + 1,
	})
}

// EvolvingDatasets mirrors Table 4 (VK, Digg), scaled down.
var EvolvingDatasets = []EvolvingDataset{
	{Name: "vk-sim", PaperName: "VK", Directed: false, N: 7860, MOld: 268000, MNew: 267000, PaperN: "78.59K", PaperMOld: "2.68M", PaperMNew: "2.67M", Seed: 201},
	{Name: "digg-sim", PaperName: "Digg", Directed: true, N: 27960, MOld: 103000, MNew: 70160, PaperN: "279.63K", PaperMOld: "1.03M", PaperMNew: "701.59K", Seed: 202},
}

// FindDataset returns the registered dataset with the given name.
func FindDataset(name string) (Dataset, error) {
	for _, d := range Datasets {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("experiments: unknown dataset %q", name)
}
