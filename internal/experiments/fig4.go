package experiments

import (
	"fmt"

	"github.com/nrp-embed/nrp/internal/eval"
)

func init() {
	register(Runner{
		Name:  "fig4",
		Paper: "Fig 4: link prediction AUC vs embedding dimensionality k",
		Run:   runFig4,
	})
}

// fig4Dims returns the k sweep: the paper uses {16,32,64,128,256}; the
// quick profile stops at 128.
func fig4Dims(full bool) []int {
	if full {
		return []int{16, 32, 64, 128, 256}
	}
	return []int{16, 32, 64, 128}
}

// fig4Datasets picks the dataset coverage per profile: quick reproduces the
// two exactly sized graphs; full adds the scaled heavy graphs with the
// scalable methods only.
func fig4Datasets(full bool) []Dataset {
	var out []Dataset
	for _, d := range Datasets {
		if d.Heavy && !full {
			continue
		}
		out = append(out, d)
	}
	return out
}

func runFig4(cfg Config) ([]*Table, error) {
	cfg = cfg.defaults()
	var tables []*Table
	for _, ds := range fig4Datasets(cfg.Full) {
		if !cfg.wantDataset(ds.Name) {
			continue
		}
		g, err := ds.Gen(cfg.Scale)
		if err != nil {
			return nil, err
		}
		split, err := eval.NewLinkPredSplit(g, 0.3, cfg.Seed+int64(ds.Seed))
		if err != nil {
			return nil, err
		}
		dims := cfg.dims(fig4Dims(cfg.Full))
		t := &Table{
			Title:  fmt.Sprintf("Fig 4 (%s, stand-in for %s): link prediction AUC vs k", ds.Name, ds.PaperName),
			Header: append([]string{"method"}, intHeaders("k=", dims)...),
		}
		for _, m := range cfg.selectMethods() {
			if m.Slow && ds.Heavy {
				continue // the paper's timeout policy, scaled to this harness
			}
			row := []string{m.Name}
			for _, dim := range dims {
				if err := cfg.Err(); err != nil {
					return nil, err
				}
				model, err := m.TrainTimed(cfg.ctx(), split.Train, dim, cfg.Seed)
				if err != nil {
					return nil, err
				}
				auc, err := linkPredictionAUC(model, g.Directed, split, cfg.Seed)
				if err != nil {
					return nil, err
				}
				cfg.logf("fig4 %s %s k=%d AUC=%.3f (train %.2fs)", ds.Name, m.Name, dim, auc, model.TrainTime.Seconds())
				row = append(row, f3(auc))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func intHeaders(prefix string, xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%s%d", prefix, x)
	}
	return out
}
