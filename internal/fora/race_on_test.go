//go:build race

package fora

// The race detector makes sync.Pool drop items at random to flush out
// lifetime bugs, so the strict workspace-reuse assertion only holds in
// normal builds.
const raceEnabled = true
