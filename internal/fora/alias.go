package fora

// aliasTable samples from a discrete distribution in O(1) per draw using
// Vose's alias method. The walk phase draws millions of start nodes from
// the residual distribution left by forward push; a linear or binary
// cumulative search would make start sampling the bottleneck, while the
// alias table costs O(support) to build once per query and two table reads
// per draw. Buffers are retained and reused across queries via the engine
// workspace pool, so steady-state queries build tables with zero
// allocation.
type aliasTable struct {
	prob  []float64 // acceptance threshold per slot
	alias []int32   // fallback slot when the draw rejects
	// small/large are the work stacks of Vose's construction, kept to
	// reuse their capacity.
	small, large []int32
}

// build initializes the table over weights w (w[i] >= 0, sum > 0). Slot i
// corresponds to index i of w; sample returns such an index.
func (t *aliasTable) build(w []float64) {
	n := len(w)
	t.prob = append(t.prob[:0], w...)
	if cap(t.alias) < n {
		t.alias = make([]int32, n)
	}
	t.alias = t.alias[:n]
	t.small, t.large = t.small[:0], t.large[:0]

	sum := 0.0
	for _, x := range w {
		sum += x
	}
	scale := float64(n) / sum
	for i := range t.prob {
		t.prob[i] *= scale
		if t.prob[i] < 1 {
			t.small = append(t.small, int32(i))
		} else {
			t.large = append(t.large, int32(i))
		}
	}
	for len(t.small) > 0 && len(t.large) > 0 {
		s := t.small[len(t.small)-1]
		t.small = t.small[:len(t.small)-1]
		l := t.large[len(t.large)-1]
		t.alias[s] = l
		// Donate the slack of slot s from slot l's mass.
		t.prob[l] -= 1 - t.prob[s]
		if t.prob[l] < 1 {
			t.large = t.large[:len(t.large)-1]
			t.small = append(t.small, l)
		}
	}
	// Float round-off can leave stragglers on either stack; they are all
	// (numerically) exactly 1.
	for _, i := range t.small {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range t.large {
		t.prob[i] = 1
		t.alias[i] = i
	}
}

// sample draws a slot index using two uniforms from rng. Safe for
// concurrent use by multiple readers once built.
func (t *aliasTable) sample(rng *splitmix64) int32 {
	i := rng.intn(len(t.prob))
	if rng.float64() < t.prob[i] {
		return int32(i)
	}
	return t.alias[i]
}
