package fora

import (
	"context"
	"math"
	"sync"
	"testing"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/par"
	"github.com/nrp-embed/nrp/internal/ppr"
)

// collectRows runs a full Rows sweep and returns every emitted row,
// copied out of the estimator's scratch.
func collectRows(t *testing.T, e *BuildEstimator) (cols [][]int32, vals [][]float64) {
	t.Helper()
	cols = make([][]int32, e.g.N)
	vals = make([][]float64, e.g.N)
	var mu sync.Mutex
	err := e.Rows(context.Background(), func(u int32, c []int32, v []float64) {
		cc := make([]int32, len(c))
		vv := make([]float64, len(v))
		copy(cc, c)
		copy(vv, v)
		mu.Lock()
		cols[u], vals[u] = cc, vv
		mu.Unlock()
	}, nil)
	if err != nil {
		t.Fatalf("Rows: %v", err)
	}
	return cols, vals
}

// TestBuildEarlyTerminationReducesWork is the early-termination
// accounting test of the acceptance criteria: on the same graph, the
// top-k early-terminated sweep must spend a fraction of the push
// operations and walks of the exhaustive (full per-row guarantee)
// control arm.
func TestBuildEarlyTerminationReducesWork(t *testing.T) {
	g := testGraph(t, 600, 3000, false, 9)
	pool := par.New(2)
	base := BuildOptions{TopK: 32, Seed: 5}

	early, err := NewBuildEstimator(context.Background(), g, pool, base)
	if err != nil {
		t.Fatalf("NewBuildEstimator: %v", err)
	}
	collectRows(t, early)

	exOpts := base
	exOpts.Exhaustive = true
	exhaustive, err := NewBuildEstimator(context.Background(), g, pool, exOpts)
	if err != nil {
		t.Fatalf("NewBuildEstimator(exhaustive): %v", err)
	}
	collectRows(t, exhaustive)

	es, xs := early.Stats(), exhaustive.Stats()
	if es.Rows != int64(g.N) || xs.Rows != int64(g.N) {
		t.Fatalf("row counts %d/%d, want %d", es.Rows, xs.Rows, g.N)
	}
	if es.Walks == 0 || es.PushOps == 0 {
		t.Fatalf("early-terminated sweep did no work: %+v", es)
	}
	if es.Walks*2 > xs.Walks {
		t.Errorf("early termination ran %d walks, exhaustive %d — want < half", es.Walks, xs.Walks)
	}
	if es.PushOps*2 > xs.PushOps {
		t.Errorf("early termination ran %d push ops, exhaustive %d — want < half", es.PushOps, xs.PushOps)
	}
}

// TestBuildRowsDeterministicAcrossPools asserts the (Seed, row)
// determinism contract: sweeps on 1 and 4 workers emit bit-identical
// rows.
func TestBuildRowsDeterministicAcrossPools(t *testing.T) {
	g := testGraph(t, 400, 2000, false, 12)
	var refC [][]int32
	var refV [][]float64
	for i, workers := range []int{1, 4} {
		e, err := NewBuildEstimator(context.Background(), g, par.New(workers), BuildOptions{TopK: 24, Seed: 3})
		if err != nil {
			t.Fatalf("NewBuildEstimator(%d workers): %v", workers, err)
		}
		c, v := collectRows(t, e)
		if i == 0 {
			refC, refV = c, v
			continue
		}
		for u := range c {
			if len(c[u]) != len(refC[u]) {
				t.Fatalf("row %d: %d entries on %d workers, %d on 1", u, len(c[u]), workers, len(refC[u]))
			}
			for j := range c[u] {
				if c[u][j] != refC[u][j] || v[u][j] != refV[u][j] {
					t.Fatalf("row %d entry %d differs across pool sizes", u, j)
				}
			}
		}
	}
}

// TestBuildRowsShape checks the per-row output contract: at most TopK
// entries, strictly ascending columns, strictly positive values.
func TestBuildRowsShape(t *testing.T) {
	g := testGraph(t, 300, 1500, true, 8)
	e, err := NewBuildEstimator(context.Background(), g, par.New(2), BuildOptions{TopK: 16, Seed: 2})
	if err != nil {
		t.Fatalf("NewBuildEstimator: %v", err)
	}
	cols, vals := collectRows(t, e)
	for u := range cols {
		if len(cols[u]) > 16 {
			t.Fatalf("row %d has %d entries, want ≤ 16", u, len(cols[u]))
		}
		prev := int32(-1)
		for j, c := range cols[u] {
			if c <= prev || int(c) >= g.N {
				t.Fatalf("row %d columns not strictly ascending in range at %d", u, c)
			}
			prev = c
			if !(vals[u][j] > 0) {
				t.Fatalf("row %d entry %d has non-positive value %v", u, j, vals[u][j])
			}
		}
	}
}

func TestBuildOptionsValidation(t *testing.T) {
	g := testGraph(t, 50, 200, false, 1)
	pool := par.New(1)
	for _, tc := range []struct {
		name string
		o    BuildOptions
	}{
		{"alpha", BuildOptions{Alpha: 1.5}},
		{"epsilon", BuildOptions{Epsilon: -1}},
		{"topk", BuildOptions{TopK: -2}},
		{"walks per node", BuildOptions{WalksPerNode: -1}},
		{"walk budget", BuildOptions{WalkBudget: -1}},
		{"push budget", BuildOptions{PushBudget: -3}},
		{"pfail", BuildOptions{PFail: 1}},
	} {
		if _, err := NewBuildEstimator(context.Background(), g, pool, tc.o); err == nil {
			t.Errorf("%s: invalid options accepted", tc.name)
		}
	}
}

// TestWalkIndexInvalidateRepair covers the maintenance lifecycle after a
// batch of edge insertions and removals: invalidation marks exactly the
// changed nodes, stale rows are excluded from the fast path, and Repair
// re-walks them to bit-match a fresh build on the updated graph.
func TestWalkIndexInvalidateRepair(t *testing.T) {
	g0 := testGraph(t, 300, 1500, false, 7)
	pool := par.New(2)
	const walks, seed = 16, 5
	idx, err := BuildWalkIndex(context.Background(), g0, pool, DefaultAlpha, walks, seed)
	if err != nil {
		t.Fatalf("BuildWalkIndex: %v", err)
	}

	// Unmaintained indexes ignore invalidation entirely.
	if n := idx.Invalidate([]int32{1, 2}); n != 0 {
		t.Fatalf("unmaintained Invalidate marked %d nodes", n)
	}

	g1, added, err := g0.AddEdges([]graph.Edge{{U: 0, V: 9}, {U: 4, V: 120}, {U: 7, V: 250}})
	if err != nil {
		t.Fatalf("AddEdges: %v", err)
	}
	g1, removed, err := g1.RemoveEdges(g0.Edges()[:5])
	if err != nil {
		t.Fatalf("RemoveEdges: %v", err)
	}
	var touched []int32
	for _, e := range append(added, removed...) {
		touched = append(touched, e.U, e.V) // undirected: both out-lists changed
	}

	idx.EnableMaintenance()
	if !idx.Maintained() {
		t.Fatal("Maintained() = false after EnableMaintenance")
	}
	marked := idx.Invalidate(touched)
	if marked == 0 || marked > len(touched) {
		t.Fatalf("Invalidate marked %d of %d touched nodes", marked, len(touched))
	}
	// Re-invalidating already-stale nodes is a no-op.
	if n := idx.Invalidate(touched); n != 0 {
		t.Fatalf("second Invalidate marked %d nodes", n)
	}
	// Out-of-range ids are skipped, in-range ones still marked.
	if n := idx.Invalidate([]int32{-1, int32(g1.N)}); n != 0 {
		t.Fatalf("out-of-range Invalidate marked %d nodes", n)
	}
	if p := idx.StalePending(); p != marked {
		t.Fatalf("StalePending() = %d, want %d", p, marked)
	}
	if c := idx.Counters(); c.Invalidated != int64(marked) {
		t.Fatalf("Counters().Invalidated = %d, want %d", c.Invalidated, marked)
	}

	// Partial repair drains the queue incrementally…
	if n := idx.Repair(g1, 2); n != 2 {
		t.Fatalf("Repair(2) repaired %d nodes", n)
	}
	if p := idx.StalePending(); p != marked-2 {
		t.Fatalf("StalePending() after partial repair = %d, want %d", p, marked-2)
	}
	// …and a full repair returns every row to fresh.
	if n := idx.Repair(g1, 0); n != marked-2 {
		t.Fatalf("Repair(0) repaired %d nodes, want %d", n, marked-2)
	}
	if p := idx.StalePending(); p != 0 {
		t.Fatalf("StalePending() after full repair = %d", p)
	}
	if c := idx.Counters(); c.Repaired != int64(marked) {
		t.Fatalf("Counters().Repaired = %d, want %d", c.Repaired, marked)
	}

	// Repaired rows use the same (seed, node) RNG streams as a fresh
	// build, so the touched rows must now bit-match an index built on g1.
	fresh, err := BuildWalkIndex(context.Background(), g1, pool, DefaultAlpha, walks, seed)
	if err != nil {
		t.Fatalf("BuildWalkIndex(g1): %v", err)
	}
	for _, v := range touched {
		for j := 0; j < walks; j++ {
			got := idx.Raw()[int(v)*walks+j]
			want := fresh.Raw()[int(v)*walks+j]
			if got != want {
				t.Fatalf("repaired row %d walk %d = %d, want %d", v, j, got, want)
			}
		}
	}
}

// TestWalkIndexStalenessBoundUnderUpdateStream is the staleness-bound
// acceptance test: after a 1k-edge update stream with per-node
// invalidation (no explicit repair), queries through the maintained
// index on the updated graph must still meet the (ε, δ) relative-error
// guarantee against power-iteration ground truth — stale starts fall
// back to live walks, and the residual staleness of cached walks merely
// passing through changed nodes stays inside the guarantee slack.
func TestWalkIndexStalenessBoundUnderUpdateStream(t *testing.T) {
	const eps = 0.3
	g0, err := graph.GenSBM(graph.SBMConfig{N: 2000, M: 20000, Communities: 4, Seed: 21})
	if err != nil {
		t.Fatalf("GenSBM: %v", err)
	}
	pool := par.New(2)
	idx, err := BuildWalkIndex(context.Background(), g0, pool, DefaultAlpha, 128, 5)
	if err != nil {
		t.Fatalf("BuildWalkIndex: %v", err)
	}
	idx.EnableMaintenance()
	delta := 1.0 / float64(g0.N)
	e, err := NewEngine(g0, pool, idx, Params{Epsilon: eps, Delta: delta, PFail: 1e-3})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	// 1k-edge stream: 500 removals of existing edges, 500 insertions.
	stream := make([]graph.Edge, 0, 500)
	for i := 0; i < 500; i++ {
		stream = append(stream, graph.Edge{U: int32((13 * i) % g0.N), V: int32((29*i + 7) % g0.N)})
	}
	g1, removed, err := g0.RemoveEdges(g0.Edges()[:500])
	if err != nil {
		t.Fatalf("RemoveEdges: %v", err)
	}
	g1, added, err := g1.AddEdges(stream)
	if err != nil {
		t.Fatalf("AddEdges: %v", err)
	}
	if len(removed)+len(added) < 900 {
		t.Fatalf("update stream only changed %d edges", len(removed)+len(added))
	}
	var touched []int32
	for _, ed := range append(removed, added...) {
		touched = append(touched, ed.U, ed.V)
	}
	if idx.Invalidate(touched) == 0 {
		t.Fatal("no nodes invalidated by the update stream")
	}

	for _, seeds := range [][]int32{{0}, {3, 17, 42}, {100, 900, 1500}} {
		res, err := e.Query(context.Background(), Query{Seeds: seeds, K: g1.N, Epsilon: eps, Graph: g1})
		if err != nil {
			t.Fatalf("Query(%v): %v", seeds, err)
		}
		if !res.Stats.UsedIndex {
			t.Fatalf("query %v bypassed the maintained index", seeds)
		}
		est := make(map[int32]float64, len(res.Scores))
		for _, s := range res.Scores {
			est[s.Node] = s.Score
		}
		truth, err := ppr.MultiSource(g1, seeds, e.Params().Alpha, 400)
		if err != nil {
			t.Fatalf("MultiSource: %v", err)
		}
		for v, pi := range truth {
			if pi < delta {
				continue
			}
			if diff := math.Abs(est[int32(v)] - pi); diff > eps*pi {
				t.Errorf("seeds %v node %d: |%.3g - %.3g| = %.3g > ε·π = %.3g",
					seeds, v, est[int32(v)], pi, diff, eps*pi)
			}
		}
	}
	c := idx.Counters()
	if c.StaleWalks == 0 {
		t.Error("no stale walks simulated — invalidation had no effect on the walk phase")
	}
	// The engine's lazy post-query repair should have started draining
	// the stale queue as queries touched it.
	if c.Repaired == 0 && idx.StalePending() == 0 {
		t.Error("stale queue empty without any repairs recorded")
	}
}

// TestWalkIndexQueryDuringMaintenanceRace hammers concurrent queries
// against an invalidate/repair churn loop; run under -race it is the
// reader/maintainer race check of the acceptance criteria.
func TestWalkIndexQueryDuringMaintenanceRace(t *testing.T) {
	g0 := testGraph(t, 400, 2000, false, 15)
	pool := par.New(4)
	idx, err := BuildWalkIndex(context.Background(), g0, pool, DefaultAlpha, 32, 5)
	if err != nil {
		t.Fatalf("BuildWalkIndex: %v", err)
	}
	idx.EnableMaintenance()
	e, err := NewEngine(g0, pool, idx, Params{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	g1, _, err := g0.AddEdges([]graph.Edge{{U: 1, V: 200}, {U: 2, V: 300}})
	if err != nil {
		t.Fatalf("AddEdges: %v", err)
	}

	iters := 60
	if raceEnabled {
		iters = 25
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seeds := []int32{int32(w * 10), int32(w*10 + 5)}
			for i := 0; i < iters; i++ {
				if _, err := e.Query(context.Background(), Query{Seeds: seeds, K: 10, Graph: g1}); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		nodes := make([]int32, g0.N)
		for i := range nodes {
			nodes[i] = int32(i)
		}
		for i := 0; i < iters; i++ {
			lo := (i * 37) % (g0.N - 40)
			idx.Invalidate(nodes[lo : lo+40])
			idx.Repair(g1, 25)
		}
		idx.Repair(g1, 0)
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("query during maintenance: %v", err)
	default:
	}
	if p := idx.StalePending(); p != 0 {
		t.Fatalf("StalePending() = %d after final full repair", p)
	}
}
