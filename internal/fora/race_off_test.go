//go:build !race

package fora

const raceEnabled = false
