package fora

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sync/atomic"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/par"
	"github.com/nrp-embed/nrp/internal/ppr"
)

// This file is the batch-build face of the FORA estimator: where Engine
// answers one online seed-set query with a full (ε, δ) guarantee, the
// BuildEstimator sweeps every node as a source row of the PPR proximity
// matrix, shares one walk index across all n rows, and uses TopPPR-style
// top-k early termination — the embedding build only consumes the top
// entries of each row, so each row stops pushing and walking as soon as
// its k-th estimate is separated from the residual bound, instead of
// paying the full per-row guarantee.

// Build-estimator defaults, chosen on the 100k-node SBM bench fixture so
// the FORA build beats backward push ≥ 2× at link-prediction AUC parity.
const (
	// DefaultBuildTopK is the number of entries kept per source row. Wider
	// than the factorization rank on purpose: on community-structured
	// graphs the SVD recovers the community subspace from the union of
	// kept entries, and rows truncated at the rank itself are too sparse
	// relative to community size to carry it.
	DefaultBuildTopK = 56
	// DefaultBuildPFail is the per-row failure probability. The build
	// tolerates far noisier rows than serving (the rank-k′ SVD averages
	// ~n·k entries), so this is orders looser than the 1/n serving
	// default.
	DefaultBuildPFail = 0.1
	// DefaultBuildWalksPerNode is K, the walk-index endpoints stored per
	// node.
	DefaultBuildWalksPerNode = 8
	// DefaultBuildWalkBudget caps the Monte Carlo walks any single row
	// spends after early termination.
	DefaultBuildWalkBudget = 256
	// DefaultBuildPushBudget caps the push operations any single row
	// spends across refinement rounds. Together with the walk budget it
	// hard-bounds per-row work: rows whose k-th value never separates
	// cleanly stop refining here and let the factorization absorb the
	// extra sampling noise.
	DefaultBuildPushBudget = 48

	// buildTopKTheta sets the early-termination guarantee threshold to
	// θ·p_k: entries at or above a θ fraction of the current k-th
	// estimate are resolved within ε relative error, everything smaller
	// is noise the factorization truncates anyway.
	buildTopKTheta = 0.5
	// buildRmaxShrink is the per-round refinement factor of the push
	// threshold in the coarse-to-fine loop. Kept small so one refinement
	// round overshoots the push budget by at most ~this factor (the
	// budget is only checked between rounds).
	buildRmaxShrink = 2
	// buildRowSalt keys the per-row walk RNG streams apart from the
	// (seed, node) streams the walk index itself is built from.
	buildRowSalt = 0x5851f42d4c957f2d
)

// BuildOptions configure a BuildEstimator. Zero values select the
// defaults above (and the engine-level Alpha/Epsilon defaults).
type BuildOptions struct {
	// Alpha is the walk termination probability of Eq. (1).
	Alpha float64
	// TopK is the number of largest entries kept per source row.
	TopK int
	// Epsilon is the relative error bound ε on the kept entries.
	Epsilon float64
	// PFail is the per-row failure probability of the guarantee.
	PFail float64
	// WalksPerNode is K, the shared walk-index endpoints per node.
	WalksPerNode int
	// WalkBudget caps the walks per row under early termination.
	WalkBudget int
	// PushBudget caps the push operations per row under early
	// termination.
	PushBudget int
	// Seed keys all RNG streams; rows are deterministic in (Seed, row)
	// regardless of thread count.
	Seed int64
	// Exhaustive disables top-k early termination: every row pays the
	// full (ε, δ = 1/n) FORA guarantee. Only useful as the control arm
	// of the early-termination accounting tests — the batch build would
	// take longer than backward push this way.
	Exhaustive bool
}

func (o BuildOptions) withDefaults() (BuildOptions, error) {
	if o.Alpha == 0 {
		o.Alpha = DefaultAlpha
	}
	if o.TopK == 0 {
		o.TopK = DefaultBuildTopK
	}
	if o.Epsilon == 0 {
		o.Epsilon = DefaultEpsilon
	}
	if o.PFail == 0 {
		o.PFail = DefaultBuildPFail
	}
	if o.WalksPerNode == 0 {
		o.WalksPerNode = DefaultBuildWalksPerNode
	}
	if o.WalkBudget == 0 {
		o.WalkBudget = DefaultBuildWalkBudget
	}
	if o.PushBudget == 0 {
		o.PushBudget = DefaultBuildPushBudget
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if err := checkAlpha(o.Alpha); err != nil {
		return o, err
	}
	if !(o.Epsilon > 0) || math.IsInf(o.Epsilon, 1) {
		return o, fmt.Errorf("%w: got %v", ErrInvalidEpsilon, o.Epsilon)
	}
	if o.TopK < 1 {
		return o, fmt.Errorf("fora: build top-k must be positive, got %d", o.TopK)
	}
	if o.WalksPerNode < 1 {
		return o, fmt.Errorf("fora: walks per node must be positive, got %d", o.WalksPerNode)
	}
	if o.WalkBudget < 1 {
		return o, fmt.Errorf("fora: walk budget must be positive, got %d", o.WalkBudget)
	}
	if o.PushBudget < 1 {
		return o, fmt.Errorf("fora: push budget must be positive, got %d", o.PushBudget)
	}
	if !(o.PFail > 0 && o.PFail < 1) {
		return o, fmt.Errorf("fora: failure probability must be in (0,1), got %v", o.PFail)
	}
	return o, nil
}

// BuildStats are the cumulative work counters of a BuildEstimator — the
// observable that the early-termination tests assert on.
type BuildStats struct {
	// Rows is the number of source rows estimated.
	Rows int64
	// PushOps is the total number of node-push operations across rows.
	PushOps int64
	// Walks is the total number of Monte Carlo walks across rows.
	Walks int64
	// Rounds is the total number of push rounds (1 per row plus 1 per
	// coarse-to-fine refinement).
	Rounds int64
	// IndexWalks is the number of walks simulated while building the
	// shared walk index (n·WalksPerNode).
	IndexWalks int64
}

// BuildEstimator estimates the top entries of every row of the PPR
// proximity matrix Π′ = Σ_{i≥1} α(1−α)^i P^i over one shared walk index.
// Safe for one Rows sweep at a time; counters accumulate across sweeps.
type BuildEstimator struct {
	g    *graph.Graph
	pool *par.Pool
	idx  *WalkIndex
	o    BuildOptions

	omegaC     float64 // (2ε/3+2)·ln(2/p_f)/ε²
	deltaFloor float64 // 1/n — the full-guarantee δ
	rmaxFloor  float64 // FORA-balanced rmax at δ = deltaFloor

	rows    atomic.Int64
	pushOps atomic.Int64
	walks   atomic.Int64
	rounds  atomic.Int64
}

// NewBuildEstimator validates o and builds the shared walk index on the
// pool (the one O(n·K/α) upfront cost all rows amortize).
func NewBuildEstimator(ctx context.Context, g *graph.Graph, pool *par.Pool, o BuildOptions) (*BuildEstimator, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	idx, err := BuildWalkIndex(ctx, g, pool, o.Alpha, o.WalksPerNode, o.Seed)
	if err != nil {
		return nil, err
	}
	n := g.N
	if n < 2 {
		n = 2
	}
	m := g.Arcs()
	if m == 0 {
		m = 1
	}
	e := &BuildEstimator{
		g:          g,
		pool:       pool,
		idx:        idx,
		o:          o,
		omegaC:     (2*o.Epsilon/3 + 2) * math.Log(2/o.PFail) / (o.Epsilon * o.Epsilon),
		deltaFloor: 1 / float64(n),
	}
	e.rmaxFloor = o.Epsilon * math.Sqrt(e.deltaFloor/(e.omegaC*float64(m)))
	return e, nil
}

// Index returns the shared walk index.
func (e *BuildEstimator) Index() *WalkIndex { return e.idx }

// Options returns the resolved build options.
func (e *BuildEstimator) Options() BuildOptions { return e.o }

// Stats returns a snapshot of the cumulative work counters.
func (e *BuildEstimator) Stats() BuildStats {
	return BuildStats{
		Rows:       e.rows.Load(),
		PushOps:    e.pushOps.Load(),
		Walks:      e.walks.Load(),
		Rounds:     e.rounds.Load(),
		IndexWalks: int64(e.idx.Nodes()) * int64(e.idx.WalksPerNode()),
	}
}

// buildWS is the per-worker scratch of a Rows sweep.
type buildWS struct {
	push    *ppr.Workspace
	acc     []float64 // per-node walk-mass accumulator, zeroed via hitList
	hitList []int32
	pheap   []float64 // k-th-largest-estimate selection heap
	cand    []Score   // top-k output candidate buffer
	cols    []int32
	vals    []float64
	seedBuf [1]int32
	walks   int64 // chunk-local counters, flushed per chunk
	rounds  int64
}

// Rows estimates every source row in parallel and hands each row's top
// entries to emit as (row, cols, vals) with cols ascending. emit is
// called concurrently from pool workers, once per row, with scratch
// slices valid only for the duration of the call; rows are disjoint, so
// writing to a per-row slot needs no locking. progress (optional)
// receives cumulative completed-row counts. Output is deterministic in
// (Seed, row) for any thread count.
func (e *BuildEstimator) Rows(ctx context.Context, emit func(u int32, cols []int32, vals []float64), progress func(done, total int)) error {
	n := e.g.N
	states := make([]*buildWS, e.pool.Workers())
	var done atomic.Int64
	err := e.pool.ForChunked(ctx, n, 512, func(w, lo, hi int) error {
		ws := states[w]
		if ws == nil {
			ws = &buildWS{
				push: ppr.NewWorkspace(n),
				acc:  make([]float64, n),
			}
			states[w] = ws
		}
		opsBefore := ws.push.Ops()
		ws.walks, ws.rounds = 0, 0
		for i := lo; i < hi; i++ {
			u := int32(i)
			cols, vals := e.estimateRow(ws, u)
			emit(u, cols, vals)
		}
		e.rows.Add(int64(hi - lo))
		e.pushOps.Add(ws.push.Ops() - opsBefore)
		e.walks.Add(ws.walks)
		e.rounds.Add(ws.rounds)
		if progress != nil {
			progress(int(done.Add(int64(hi-lo))), n)
		}
		return nil
	})
	return err
}

// estimateRow estimates the top entries of source row u. The returned
// slices alias ws scratch.
//
// Early-termination loop: push coarsely, then refine rmax geometrically
// until the walk count implied by δ = max(θ·p_k, 1/n) — p_k the current
// k-th largest push estimate — fits the per-row walk budget. Separating
// the k-th value from the residual bound this way is the TopPPR insight:
// the guarantee only needs to hold down to the smallest entry the caller
// keeps, not down to the global 1/n floor.
func (e *BuildEstimator) estimateRow(ws *buildWS, u int32) (cols []int32, vals []float64) {
	g, o := e.g, &e.o
	opsStart := ws.push.Ops()

	rmax := e.rmaxFloor
	if !o.Exhaustive {
		// Coarse opening threshold; the 1/(2·deg) cap makes high-degree
		// sources push at least their own residual instead of sending
		// everything to the walk phase.
		rmax = 1 / float64(4*o.TopK)
		if deg := g.OutDeg(int(u)); deg > 0 {
			if c := 1 / float64(2*deg); c < rmax {
				rmax = c
			}
		}
		if rmax < e.rmaxFloor {
			rmax = e.rmaxFloor
		}
	}
	ws.seedBuf[0] = u
	rsum := ws.push.ForwardPushSeeds(g, ws.seedBuf[:], o.Alpha, rmax)
	ws.rounds++

	var omega int64
	for rsum > 0 {
		if o.Exhaustive {
			need := math.Ceil(rsum * e.omegaC / e.deltaFloor)
			if need > maxWalksPerQuery {
				need = maxWalksPerQuery
			}
			omega = int64(need)
			break
		}
		stop := rmax <= e.rmaxFloor || ws.push.Ops()-opsStart >= int64(o.PushBudget)
		// δ = max(θ·p_k, 1/n) can never exceed max(θ·p_1, 1/n), and p_1 is
		// tracked for free by the push workspace — so whenever even that
		// optimistic δ demands more walks than the budget, the exact k-th
		// selection cannot terminate the row either and its O(touched)
		// heap scan is skipped. On hard rows (the bulk of a batch sweep,
		// which run to the push budget with p_1 still small) the selection
		// never runs at all.
		dmax := buildTopKTheta * ws.push.PMax()
		if dmax < e.deltaFloor {
			dmax = e.deltaFloor
		}
		if rsum*e.omegaC > float64(o.WalkBudget)*dmax {
			// Guarantee unreachable within the walk budget at any δ.
			if stop {
				omega = int64(o.WalkBudget)
				break
			}
		} else {
			delta := e.deltaFloor
			if d := buildTopKTheta * ws.kthLargestP(o.TopK); d > delta {
				delta = d
			}
			need := math.Ceil(rsum * e.omegaC / delta)
			if need > maxWalksPerQuery {
				need = maxWalksPerQuery
			}
			// Early termination: stop once δ = θ·p_k is resolvable within
			// the walk budget — or once a budget says more refinement
			// cannot pay for itself, and let the factorization absorb the
			// extra noise.
			if need <= float64(o.WalkBudget) || stop {
				omega = int64(need)
				if omega > int64(o.WalkBudget) {
					omega = int64(o.WalkBudget)
				}
				break
			}
		}
		rmax /= buildRmaxShrink
		if rmax < e.rmaxFloor {
			rmax = e.rmaxFloor
		}
		rsum = ws.push.ForwardPushResume(g, o.Alpha, rmax)
		ws.rounds++
	}

	// Walk phase: stratified allocation over the shared index. Node v's
	// exact share is x_v = r(v)·ω/r_sum walks. A start whose share
	// reaches K (the stored walks per node) consumes its whole index row
	// deterministically at mass r(v)/K per endpoint — more resampling
	// could add no information beyond the K stored walks, so the cost of
	// a heavy start is capped at K array reads regardless of ω. Light
	// starts probabilistically round x_v to ⌊x_v⌋ or ⌈x_v⌉ sampled
	// endpoints at the uniform mass r_sum/ω, keeping every node's
	// expected contribution exactly r(v). Serial within the row
	// (parallelism is across rows) with the RNG stream keyed on
	// (Seed, row), so the result is thread-count independent.
	if omega > 0 {
		rng := newSplitmix64(mix64(uint64(o.Seed)^buildRowSalt, uint64(u)))
		inc := rsum / float64(omega)
		perMass := float64(omega) / rsum
		// The estimator owns its freshly built, unmaintained index, so
		// rows can be read directly; fall back to the slot-atomic
		// endpoint path if a caller enabled maintenance on Index().
		fresh := !e.idx.Maintained()
		ik := e.idx.k
		k := float64(ik)
		walked := int64(0)
		for _, v := range ws.push.Touched() {
			r := ws.push.R(v)
			if r <= 0 {
				continue
			}
			x := r * perMass
			if fresh {
				row := e.idx.ends[int(v)*ik : int(v)*ik+ik]
				if x >= k {
					// Heavy start: consume the whole stored row at mass
					// r/K — more resampling could add no information
					// beyond the K stored walks, so heavy-start cost is
					// capped at K reads regardless of ω.
					incv := r / k
					for _, t := range row {
						if t >= 0 {
							if ws.acc[t] == 0 {
								ws.hitList = append(ws.hitList, t)
							}
							ws.acc[t] += incv
						}
					}
					walked += int64(ik)
					continue
				}
				wv := int(x)
				if rng.float64() < x-float64(wv) {
					wv++
				}
				for j := 0; j < wv; j++ {
					if t := row[rng.intn(ik)]; t >= 0 {
						if ws.acc[t] == 0 {
							ws.hitList = append(ws.hitList, t)
						}
						ws.acc[t] += inc
					}
				}
				walked += int64(wv)
				continue
			}
			wv := int(x)
			if rng.float64() < x-float64(wv) {
				wv++
			}
			for j := 0; j < wv; j++ {
				t, _ := e.idx.endpoint(g, v, &rng)
				if t >= 0 {
					if ws.acc[t] == 0 {
						ws.hitList = append(ws.hitList, t)
					}
					ws.acc[t] += inc
				}
			}
			walked += int64(wv)
		}
		ws.walks += walked
	}

	// Merge push estimates with walk mass, subtract the i=0 self mass α
	// (Π′ starts at i=1), and keep the row's top entries. Candidates are
	// collected flat and the top k selected with one quickselect pass —
	// the candidate set is small (pushed nodes plus distinct walk
	// endpoints), so a partition beats maintaining a min-heap across
	// every insertion.
	h := ws.cand[:0]
	for _, t := range ws.hitList {
		if ws.push.P(t) > 0 {
			continue // merged in the push loop below
		}
		s := ws.acc[t]
		if t == u {
			s -= o.Alpha
		}
		if s > 0 {
			h = append(h, Score{Node: t, Score: s})
		}
	}
	for _, v := range ws.push.Touched() {
		p := ws.push.P(v)
		if p <= 0 {
			continue
		}
		s := p + ws.acc[v]
		if v == u {
			s -= o.Alpha
		}
		if s > 0 {
			h = append(h, Score{Node: v, Score: s})
		}
	}
	if len(h) > o.TopK {
		selectTop(h, o.TopK)
		h = h[:o.TopK]
	}
	ws.cand = h[:0]

	// O(touched) cleanup; the push workspace resets itself on the next
	// ForwardPushSeeds.
	for _, t := range ws.hitList {
		ws.acc[t] = 0
	}
	ws.hitList = ws.hitList[:0]

	slices.SortFunc(h, func(a, b Score) int { return int(a.Node) - int(b.Node) })
	cols = ws.cols[:0]
	vals = ws.vals[:0]
	for _, sc := range h {
		cols = append(cols, sc.Node)
		vals = append(vals, sc.Score)
	}
	ws.cols, ws.vals = cols, vals
	return cols, vals
}

// kthLargestP returns the k-th largest push estimate of the current row
// (0 when fewer than k nodes have one) via a size-k min-heap over the
// touched set.
func (ws *buildWS) kthLargestP(k int) float64 {
	h := ws.pheap[:0]
	for _, v := range ws.push.Touched() {
		p := ws.push.P(v)
		if p <= 0 {
			continue
		}
		if len(h) < k {
			h = append(h, p)
			for i := len(h) - 1; i > 0; {
				parent := (i - 1) / 2
				if h[parent] <= h[i] {
					break
				}
				h[i], h[parent] = h[parent], h[i]
				i = parent
			}
		} else if p > h[0] {
			h[0] = p
			i := 0
			for {
				l, r := 2*i+1, 2*i+2
				min := i
				if l < len(h) && h[l] < h[min] {
					min = l
				}
				if r < len(h) && h[r] < h[min] {
					min = r
				}
				if min == i {
					break
				}
				h[i], h[min] = h[min], h[i]
				i = min
			}
		}
	}
	ws.pheap = h
	if len(h) < k {
		return 0
	}
	return h[0]
}

// selectTop partially orders sc so that its k best entries under the
// worse ordering (highest score, ties to the lower node id) occupy
// sc[:k], in unspecified order. The ordering is a strict total order
// (node ids are unique), so the selected set is exact — identical to
// what a full sort would keep. Deterministic quickselect; candidate
// buffers arrive in discovery order with pseudo-random scores, so the
// middle-element pivot stays near the median in practice.
func selectTop(sc []Score, k int) {
	lo, hi := 0, len(sc)
	for hi-lo > 1 {
		p := partitionTop(sc, lo, hi)
		switch {
		case p == k:
			return
		case p < k:
			lo = p + 1
		default:
			hi = p
		}
	}
}

// partitionTop partitions sc[lo:hi] around the middle element so entries
// better than it precede it, and returns its final index.
func partitionTop(sc []Score, lo, hi int) int {
	mid := lo + (hi-lo)/2
	sc[lo], sc[mid] = sc[mid], sc[lo]
	piv := sc[lo]
	i := lo
	for j := lo + 1; j < hi; j++ {
		if worse(piv, sc[j]) {
			i++
			sc[i], sc[j] = sc[j], sc[i]
		}
	}
	sc[lo], sc[i] = sc[i], sc[lo]
	return i
}
