package fora

// splitmix64 is the engine's walk RNG: a tiny counter-based generator
// (Steele et al., "Fast splittable pseudorandom number generators") whose
// state is one uint64. Each parallel walk chunk gets its own stream seeded
// by mixing the query seed with the chunk index, so walk results are
// deterministic for a fixed pool size — the same contract the rest of the
// compute engine keeps via internal/par.
type splitmix64 struct{ s uint64 }

func newSplitmix64(seed uint64) splitmix64 { return splitmix64{s: seed} }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *splitmix64) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform draw in [0, n) for n > 0. The modulo bias is at
// most n/2^64 — far below the sampling error of any walk budget this
// engine can run — so the cheap reduction is fine here.
func (r *splitmix64) intn(n int) int {
	return int(r.next() % uint64(n))
}

// mix64 hashes a seed/stream-index pair into an independent stream seed
// (finalizer of splitmix64, applied to the XOR of the inputs).
func mix64(a, b uint64) uint64 {
	z := a ^ (b * 0xff51afd7ed558ccd)
	z ^= z >> 33
	z *= 0xc4ceb9fe1a85ec53
	z ^= z >> 33
	return z
}
