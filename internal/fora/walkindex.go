package fora

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/par"
)

// WalkIndex is the FORA+ acceleration structure: K precomputed
// α-terminating walk endpoints per node, stored flat as n×K int32. A
// query that needs walks from residual node v samples stored endpoints
// (with replacement) instead of traversing the graph, turning each walk
// into one array read. Endpoint -1 records a walk that halted at a
// dangling node without terminating (its mass is lost, matching the
// truncated Eq. (1) semantics used across the repo).
//
// The index is built against one graph snapshot. By default it never
// changes after build (safe for concurrent readers): queries against a
// graph with the same node count reuse it even after live edge updates,
// and the resampled endpoints then approximate the pre-update graph —
// the classic FORA+ staleness trade-off.
//
// EnableMaintenance upgrades that contract for live graphs. A maintained
// index tracks per-node staleness: Invalidate marks nodes whose out-edges
// changed, queries fall back to simulating walks for stale nodes (always
// correct on the current snapshot, just slower), and Repair / the
// engine's lazy post-query repair re-walk stale rows against the current
// graph and return them to the fast path. Walks that merely pass
// *through* a changed node from an unchanged start stay cached — that
// residual staleness is second-order in the update size and bounded by
// the (ε, δ) guarantee slack (asserted in the maintenance tests).
type WalkIndex struct {
	n     int
	k     int
	alpha float64
	seed  int64
	ends  []int32
	maint *walkMaintenance
}

// walkMaintenance is the mutable state of a maintained index. Writers
// (Invalidate, Repair) serialize on mu and are the only mutators of ends;
// readers never block: they atomically load the per-node state word and
// either use the cached row (fresh) or simulate the walk (stale). Row
// slots are written and read with atomic int32 ops while maintenance is
// on, so a reader racing a repair observes either the old or the new
// endpoint — both are valid walk samples.
type walkMaintenance struct {
	mu    sync.Mutex
	state []atomic.Int32 // per node: 0 = fresh, 1 = stale
	queue []int32        // stale nodes awaiting repair (guarded by mu)

	hits        atomic.Int64 // endpoint served from the cached row
	staleWalks  atomic.Int64 // endpoint simulated because the node was stale
	invalidated atomic.Int64 // nodes marked stale by Invalidate
	repaired    atomic.Int64 // nodes re-walked back to fresh
}

// BuildWalkIndex simulates k α-terminating walks from every node of g on
// the pool and records their endpoints. Each node's walks use an RNG
// stream derived only from (seed, node), so the built index is
// bit-identical for any pool size. Cost is O(n·k/α) expected steps.
func BuildWalkIndex(ctx context.Context, g *graph.Graph, pool *par.Pool, alpha float64, k int, seed int64) (*WalkIndex, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("fora: walks per node must be positive, got %d", k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	wi := &WalkIndex{
		n:     g.N,
		k:     k,
		alpha: alpha,
		seed:  seed,
		ends:  make([]int32, g.N*k),
	}
	var canceled atomic.Bool
	pool.For(g.N, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			if v%4096 == 0 && ctx.Err() != nil {
				canceled.Store(true)
				return
			}
			rng := newSplitmix64(mix64(uint64(seed), uint64(v)))
			row := wi.ends[v*k : (v+1)*k]
			for i := range row {
				row[i] = walkEnd(g, int32(v), alpha, &rng)
			}
		}
	})
	if canceled.Load() {
		return nil, ctx.Err()
	}
	return wi, nil
}

// WalkIndexFromRaw wraps endpoints loaded from a snapshot, validating
// shape and range (len(ends) == n·k, each endpoint in [-1, n)).
func WalkIndexFromRaw(n int, alpha float64, k int, seed int64, ends []int32) (*WalkIndex, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	if n < 0 || k < 1 {
		return nil, fmt.Errorf("fora: invalid walk index shape n=%d k=%d", n, k)
	}
	if len(ends) != n*k {
		return nil, fmt.Errorf("fora: walk index has %d endpoints, want n·k = %d", len(ends), n*k)
	}
	for _, t := range ends {
		if t < -1 || int(t) >= n {
			return nil, fmt.Errorf("fora: walk endpoint %d outside [-1,%d)", t, n)
		}
	}
	return &WalkIndex{n: n, k: k, alpha: alpha, seed: seed, ends: ends}, nil
}

// Nodes reports the node count the index was built for.
func (wi *WalkIndex) Nodes() int { return wi.n }

// WalksPerNode reports K, the stored walks per node.
func (wi *WalkIndex) WalksPerNode() int { return wi.k }

// Alpha reports the termination probability the walks were run with.
func (wi *WalkIndex) Alpha() float64 { return wi.alpha }

// Seed reports the RNG seed the index was built with.
func (wi *WalkIndex) Seed() int64 { return wi.seed }

// Raw exposes the flat n×K endpoint array for snapshot serialization.
// Callers must not mutate it.
func (wi *WalkIndex) Raw() []int32 { return wi.ends }

// EnableMaintenance switches the index into maintained mode, allocating
// the per-node staleness state and copying the endpoint array onto the
// heap (snapshot-loaded indexes may wrap a read-only mmap, which Repair
// could not write through). Idempotent. Call it during setup, before the
// index is shared with concurrent readers — the mode switch itself is not
// synchronized.
func (wi *WalkIndex) EnableMaintenance() {
	if wi.maint != nil {
		return
	}
	ends := make([]int32, len(wi.ends))
	copy(ends, wi.ends)
	wi.ends = ends
	wi.maint = &walkMaintenance{state: make([]atomic.Int32, wi.n)}
}

// Maintained reports whether EnableMaintenance has been called.
func (wi *WalkIndex) Maintained() bool { return wi.maint != nil }

// Invalidate marks the given nodes stale: until repaired, walks starting
// at them are simulated on the query's graph snapshot instead of served
// from the cached rows. Out-of-range and already-stale nodes are skipped.
// Returns the number of nodes newly marked. No-op (returning 0) unless
// maintenance is enabled. Safe for concurrent use with queries and
// Repair.
func (wi *WalkIndex) Invalidate(nodes []int32) int {
	m := wi.maint
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	marked := 0
	for _, v := range nodes {
		if v < 0 || int(v) >= wi.n {
			continue
		}
		if m.state[v].CompareAndSwap(0, 1) {
			m.queue = append(m.queue, v)
			marked++
		}
	}
	m.invalidated.Add(int64(marked))
	return marked
}

// Repair re-walks up to maxNodes stale nodes (0 = all pending) against g
// and returns them to the fast path, using the same per-node RNG streams
// as the original build so a fully repaired index matches a fresh
// BuildWalkIndex on g. Returns the number of nodes repaired. No-op unless
// maintenance is enabled or if g's node count does not match. Safe for
// concurrent use with queries.
func (wi *WalkIndex) Repair(g *graph.Graph, maxNodes int) int {
	m := wi.maint
	if m == nil || g.N != wi.n {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return wi.repairLocked(g, maxNodes)
}

// tryRepair is Repair without blocking: if another maintenance pass holds
// the lock it does nothing. The engine calls it after queries that hit
// stale nodes, so repair work rides on the query path without stacking up
// behind itself.
func (wi *WalkIndex) tryRepair(g *graph.Graph, maxNodes int) int {
	m := wi.maint
	if m == nil || g.N != wi.n {
		return 0
	}
	if !m.mu.TryLock() {
		return 0
	}
	defer m.mu.Unlock()
	return wi.repairLocked(g, maxNodes)
}

func (wi *WalkIndex) repairLocked(g *graph.Graph, maxNodes int) int {
	m := wi.maint
	todo := len(m.queue)
	if maxNodes > 0 && todo > maxNodes {
		todo = maxNodes
	}
	for i := 0; i < todo; i++ {
		v := m.queue[i]
		rng := newSplitmix64(mix64(uint64(wi.seed), uint64(v)))
		base := int(v) * wi.k
		for j := 0; j < wi.k; j++ {
			atomic.StoreInt32(&wi.ends[base+j], walkEnd(g, v, wi.alpha, &rng))
		}
		m.state[v].Store(0)
	}
	m.queue = m.queue[:copy(m.queue, m.queue[todo:])]
	m.repaired.Add(int64(todo))
	return todo
}

// StalePending reports how many invalidated nodes currently await repair.
func (wi *WalkIndex) StalePending() int {
	m := wi.maint
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// WalkIndexCounters are the cumulative maintenance counters of a
// maintained index (all zero otherwise), exported on /metrics by serving.
type WalkIndexCounters struct {
	// Hits counts walk endpoints served from cached rows.
	Hits int64
	// StaleWalks counts walks simulated because their start was stale.
	StaleWalks int64
	// Invalidated counts nodes marked stale by Invalidate.
	Invalidated int64
	// Repaired counts nodes re-walked back to fresh.
	Repaired int64
}

// Counters returns a snapshot of the maintenance counters.
func (wi *WalkIndex) Counters() WalkIndexCounters {
	m := wi.maint
	if m == nil {
		return WalkIndexCounters{}
	}
	return WalkIndexCounters{
		Hits:        m.hits.Load(),
		StaleWalks:  m.staleWalks.Load(),
		Invalidated: m.invalidated.Load(),
		Repaired:    m.repaired.Load(),
	}
}

// addEndpointStats folds a query chunk's local hit/miss tallies into the
// counters (batched so the walk hot loop stays free of shared atomics).
func (wi *WalkIndex) addEndpointStats(hits, staleWalks int64) {
	m := wi.maint
	if m == nil {
		return
	}
	if hits > 0 {
		m.hits.Add(hits)
	}
	if staleWalks > 0 {
		m.staleWalks.Add(staleWalks)
	}
}

// endpoint resamples one stored walk endpoint of node v, reporting whether
// the cached row served it (false = v was stale and the walk was simulated
// on g). Callers batch the tallies via addEndpointStats.
func (wi *WalkIndex) endpoint(g *graph.Graph, v int32, rng *splitmix64) (int32, bool) {
	base := int(v) * wi.k
	if m := wi.maint; m != nil {
		if m.state[v].Load() != 0 {
			return walkEnd(g, v, wi.alpha, rng), false
		}
		return atomic.LoadInt32(&wi.ends[base+rng.intn(wi.k)]), true
	}
	return wi.ends[base+rng.intn(wi.k)], true
}

// walkEnd runs one α-terminating walk from start and returns the node it
// terminates at, or -1 if it halts at a dangling node (mass lost).
func walkEnd(g *graph.Graph, start int32, alpha float64, rng *splitmix64) int32 {
	cur := start
	for {
		if rng.float64() < alpha {
			return cur
		}
		nbrs := g.OutNeighbors(int(cur))
		if len(nbrs) == 0 {
			return -1
		}
		cur = nbrs[rng.intn(len(nbrs))]
	}
}
