package fora

import (
	"context"
	"fmt"
	"sync/atomic"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/par"
)

// WalkIndex is the FORA+ acceleration structure: K precomputed
// α-terminating walk endpoints per node, stored flat as n×K int32. A
// query that needs walks from residual node v samples stored endpoints
// (with replacement) instead of traversing the graph, turning each walk
// into one array read. Endpoint -1 records a walk that halted at a
// dangling node without terminating (its mass is lost, matching the
// truncated Eq. (1) semantics used across the repo).
//
// The index is built against one graph snapshot. Queries against a graph
// with the same node count reuse it even after live edge updates — the
// resampled endpoints then approximate the pre-update graph, which is the
// standard FORA+ staleness trade-off; rebuild (or query without an index)
// when updates must be reflected exactly. An index never changes after
// build, so it is safe for concurrent readers.
type WalkIndex struct {
	n     int
	k     int
	alpha float64
	seed  int64
	ends  []int32
}

// BuildWalkIndex simulates k α-terminating walks from every node of g on
// the pool and records their endpoints. Each node's walks use an RNG
// stream derived only from (seed, node), so the built index is
// bit-identical for any pool size. Cost is O(n·k/α) expected steps.
func BuildWalkIndex(ctx context.Context, g *graph.Graph, pool *par.Pool, alpha float64, k int, seed int64) (*WalkIndex, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("fora: walks per node must be positive, got %d", k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	wi := &WalkIndex{
		n:     g.N,
		k:     k,
		alpha: alpha,
		seed:  seed,
		ends:  make([]int32, g.N*k),
	}
	var canceled atomic.Bool
	pool.For(g.N, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			if v%4096 == 0 && ctx.Err() != nil {
				canceled.Store(true)
				return
			}
			rng := newSplitmix64(mix64(uint64(seed), uint64(v)))
			row := wi.ends[v*k : (v+1)*k]
			for i := range row {
				row[i] = walkEnd(g, int32(v), alpha, &rng)
			}
		}
	})
	if canceled.Load() {
		return nil, ctx.Err()
	}
	return wi, nil
}

// WalkIndexFromRaw wraps endpoints loaded from a snapshot, validating
// shape and range (len(ends) == n·k, each endpoint in [-1, n)).
func WalkIndexFromRaw(n int, alpha float64, k int, seed int64, ends []int32) (*WalkIndex, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	if n < 0 || k < 1 {
		return nil, fmt.Errorf("fora: invalid walk index shape n=%d k=%d", n, k)
	}
	if len(ends) != n*k {
		return nil, fmt.Errorf("fora: walk index has %d endpoints, want n·k = %d", len(ends), n*k)
	}
	for _, t := range ends {
		if t < -1 || int(t) >= n {
			return nil, fmt.Errorf("fora: walk endpoint %d outside [-1,%d)", t, n)
		}
	}
	return &WalkIndex{n: n, k: k, alpha: alpha, seed: seed, ends: ends}, nil
}

// Nodes reports the node count the index was built for.
func (wi *WalkIndex) Nodes() int { return wi.n }

// WalksPerNode reports K, the stored walks per node.
func (wi *WalkIndex) WalksPerNode() int { return wi.k }

// Alpha reports the termination probability the walks were run with.
func (wi *WalkIndex) Alpha() float64 { return wi.alpha }

// Seed reports the RNG seed the index was built with.
func (wi *WalkIndex) Seed() int64 { return wi.seed }

// Raw exposes the flat n×K endpoint array for snapshot serialization.
// Callers must not mutate it.
func (wi *WalkIndex) Raw() []int32 { return wi.ends }

// endpoint resamples one stored walk endpoint of node v.
func (wi *WalkIndex) endpoint(v int32, rng *splitmix64) int32 {
	row := wi.ends[int(v)*wi.k : (int(v)+1)*wi.k]
	return row[rng.intn(wi.k)]
}

// walkEnd runs one α-terminating walk from start and returns the node it
// terminates at, or -1 if it halts at a dangling node (mass lost).
func walkEnd(g *graph.Graph, start int32, alpha float64, rng *splitmix64) int32 {
	cur := start
	for {
		if rng.float64() < alpha {
			return cur
		}
		nbrs := g.OutNeighbors(int(cur))
		if len(nbrs) == 0 {
			return -1
		}
		cur = nbrs[rng.intn(len(nbrs))]
	}
}
