package fora

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/par"
	"github.com/nrp-embed/nrp/internal/ppr"
)

func testGraph(t *testing.T, n, m int, directed bool, seed int64) *graph.Graph {
	t.Helper()
	g, err := graph.GenSBM(graph.SBMConfig{N: n, M: m, Communities: 4, Directed: directed, Seed: seed})
	if err != nil {
		t.Fatalf("GenSBM: %v", err)
	}
	return g
}

// checkGuarantee verifies the (ε, δ) contract of one query against
// power-iteration ground truth: every node with π(t) ≥ δ must be
// estimated within ε relative error. The engine's estimates are read from
// a full-width (K = n) query.
func checkGuarantee(t *testing.T, e *Engine, g *graph.Graph, seeds []int32, eps, delta float64) {
	t.Helper()
	res, err := e.Query(context.Background(), Query{Seeds: seeds, K: g.N, Epsilon: eps})
	if err != nil {
		t.Fatalf("Query(%v): %v", seeds, err)
	}
	est := make(map[int32]float64, len(res.Scores))
	for _, s := range res.Scores {
		est[s.Node] = s.Score
	}
	truth, err := ppr.MultiSource(g, seeds, e.Params().Alpha, 400)
	if err != nil {
		t.Fatalf("MultiSource: %v", err)
	}
	for v, pi := range truth {
		if pi < delta {
			continue
		}
		if err := math.Abs(est[int32(v)] - pi); err > eps*pi {
			t.Errorf("seeds %v node %d: |%.3g - %.3g| = %.3g > ε·π = %.3g",
				seeds, v, est[int32(v)], pi, err, eps*pi)
		}
	}
}

func TestGuaranteeAgainstPowerIteration(t *testing.T) {
	const eps = 0.3
	for _, tc := range []struct {
		name     string
		directed bool
		seed     int64
	}{
		{"undirected", false, 7},
		{"directed", true, 11},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := testGraph(t, 300, 1500, tc.directed, tc.seed)
			delta := 1.0 / float64(g.N)
			e, err := NewEngine(g, par.New(2), nil, Params{Epsilon: eps, Delta: delta, PFail: 1e-3})
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			for _, seeds := range [][]int32{{0}, {1, 2, 3}, {42, 17, 99, 250}} {
				checkGuarantee(t, e, g, seeds, eps, delta)
			}
		})
	}
}

func TestGuaranteeWithWalkIndex(t *testing.T) {
	const eps = 0.3
	g := testGraph(t, 300, 1500, false, 7)
	delta := 1.0 / float64(g.N)
	pool := par.New(2)
	idx, err := BuildWalkIndex(context.Background(), g, pool, DefaultAlpha, 128, 5)
	if err != nil {
		t.Fatalf("BuildWalkIndex: %v", err)
	}
	e, err := NewEngine(g, pool, idx, Params{Epsilon: eps, Delta: delta, PFail: 1e-3})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := e.Query(context.Background(), Query{Seeds: []int32{1, 2}, K: 10})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.Stats.UsedIndex {
		t.Fatalf("Stats.UsedIndex = false, want index-backed walks")
	}
	for _, seeds := range [][]int32{{0}, {1, 2, 3}} {
		checkGuarantee(t, e, g, seeds, eps, delta)
	}
	// A query overriding alpha cannot use an index built for a different
	// alpha; it must fall back to live walks and stay correct.
	res, err = e.Query(context.Background(), Query{Seeds: []int32{0}, K: 5, Alpha: 0.3})
	if err != nil {
		t.Fatalf("Query(alpha override): %v", err)
	}
	if res.Stats.UsedIndex {
		t.Fatalf("index built for alpha=%v served an alpha=0.3 query", DefaultAlpha)
	}
}

func TestQueryDeterministicForFixedPool(t *testing.T) {
	g := testGraph(t, 200, 900, false, 3)
	e, err := NewEngine(g, par.New(3), nil, Params{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	q := Query{Seeds: []int32{5, 9}, K: 20}
	a, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	b, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(a.Scores) != len(b.Scores) {
		t.Fatalf("result sizes differ: %d vs %d", len(a.Scores), len(b.Scores))
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("rank %d differs: %+v vs %+v", i, a.Scores[i], b.Scores[i])
		}
	}
}

func TestDuplicateSeedsDeduped(t *testing.T) {
	g := testGraph(t, 200, 900, false, 3)
	e, err := NewEngine(g, nil, nil, Params{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	a, err := e.Query(context.Background(), Query{Seeds: []int32{5, 9, 5, 5}, K: 10})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	b, err := e.Query(context.Background(), Query{Seeds: []int32{9, 5}, K: 10})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("rank %d differs after dedupe: %+v vs %+v", i, a.Scores[i], b.Scores[i])
		}
	}
}

func TestValidationSentinels(t *testing.T) {
	g := testGraph(t, 100, 400, false, 1)
	e, err := NewEngine(g, nil, nil, Params{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ctx := context.Background()
	if _, err := e.Query(ctx, Query{Seeds: nil, K: 5}); !errors.Is(err, ErrEmptySeedSet) {
		t.Errorf("empty seeds: got %v, want ErrEmptySeedSet", err)
	}
	if _, err := e.Query(ctx, Query{Seeds: []int32{0}, K: 5, Alpha: 1.5}); !errors.Is(err, ErrInvalidAlpha) {
		t.Errorf("alpha 1.5: got %v, want ErrInvalidAlpha", err)
	}
	if _, err := e.Query(ctx, Query{Seeds: []int32{0}, K: 5, Epsilon: -0.1}); !errors.Is(err, ErrInvalidEpsilon) {
		t.Errorf("epsilon -0.1: got %v, want ErrInvalidEpsilon", err)
	}
	if _, err := e.Query(ctx, Query{Seeds: []int32{int32(g.N)}, K: 5}); err == nil {
		t.Errorf("out-of-range seed accepted")
	}
	if _, err := e.Query(ctx, Query{Seeds: []int32{0}, K: 0}); err == nil {
		t.Errorf("k=0 accepted")
	}
	if _, err := NewEngine(g, nil, nil, Params{Alpha: -1}); !errors.Is(err, ErrInvalidAlpha) {
		t.Errorf("NewEngine alpha -1: got %v, want ErrInvalidAlpha", err)
	}
	if _, err := NewEngine(g, nil, nil, Params{Epsilon: math.Inf(1)}); !errors.Is(err, ErrInvalidEpsilon) {
		t.Errorf("NewEngine epsilon +Inf: got %v, want ErrInvalidEpsilon", err)
	}
}

func TestWorkspaceReuseAcrossQueries(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	g := testGraph(t, 500, 2500, false, 2)
	e, err := NewEngine(g, par.New(2), nil, Params{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for i := 0; i < 50; i++ {
		if _, err := e.Query(context.Background(), Query{Seeds: []int32{int32(i * 7 % g.N)}, K: 10}); err != nil {
			t.Fatalf("Query %d: %v", i, err)
		}
	}
	if builds := e.WorkspaceBuilds(); builds != 1 {
		t.Fatalf("50 sequential queries built %d workspaces, want 1 (sync.Pool reuse broken)", builds)
	}
}

func TestDanglingNodesLoseMass(t *testing.T) {
	// 0 → 1 → 2(dangling); mass reaching 2 that does not terminate there
	// is lost, exactly as in ppr.MultiSource.
	g, err := graph.New(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, true)
	if err != nil {
		t.Fatalf("graph.New: %v", err)
	}
	e, err := NewEngine(g, nil, nil, Params{Epsilon: 0.1, PFail: 1e-4})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	checkGuarantee(t, e, g, []int32{0}, 0.1, 1.0/3)
}

func TestQueryCanceledContext(t *testing.T) {
	g := testGraph(t, 100, 400, false, 1)
	e, err := NewEngine(g, nil, nil, Params{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Query(ctx, Query{Seeds: []int32{0}, K: 5}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: got %v, want context.Canceled", err)
	}
}

func TestWalkIndexBuildDeterministicAcrossPoolSizes(t *testing.T) {
	g := testGraph(t, 200, 900, false, 3)
	a, err := BuildWalkIndex(context.Background(), g, par.New(1), DefaultAlpha, 8, 9)
	if err != nil {
		t.Fatalf("BuildWalkIndex(1 worker): %v", err)
	}
	b, err := BuildWalkIndex(context.Background(), g, par.New(3), DefaultAlpha, 8, 9)
	if err != nil {
		t.Fatalf("BuildWalkIndex(3 workers): %v", err)
	}
	ra, rb := a.Raw(), b.Raw()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("endpoint %d differs across pool sizes: %d vs %d", i, ra[i], rb[i])
		}
	}
}

func TestWalkIndexFromRawValidation(t *testing.T) {
	if _, err := WalkIndexFromRaw(2, DefaultAlpha, 2, 1, []int32{0, 1, 1}); err == nil {
		t.Errorf("short endpoint array accepted")
	}
	if _, err := WalkIndexFromRaw(2, DefaultAlpha, 2, 1, []int32{0, 1, 1, 2}); err == nil {
		t.Errorf("out-of-range endpoint accepted")
	}
	if _, err := WalkIndexFromRaw(2, 1.5, 2, 1, []int32{0, 1, 1, 0}); !errors.Is(err, ErrInvalidAlpha) {
		t.Errorf("bad alpha: got %v, want ErrInvalidAlpha", err)
	}
	wi, err := WalkIndexFromRaw(2, DefaultAlpha, 2, 1, []int32{0, 1, -1, 0})
	if err != nil {
		t.Fatalf("valid raw index rejected: %v", err)
	}
	if wi.Nodes() != 2 || wi.WalksPerNode() != 2 {
		t.Fatalf("shape accessors wrong: n=%d k=%d", wi.Nodes(), wi.WalksPerNode())
	}
}

func TestAliasTableMatchesWeights(t *testing.T) {
	w := []float64{0.1, 0.4, 0.2, 0.3}
	var at aliasTable
	at.build(w)
	rng := newSplitmix64(123)
	const draws = 200000
	counts := make([]int, len(w))
	for i := 0; i < draws; i++ {
		counts[at.sample(&rng)]++
	}
	for i, wi := range w {
		got := float64(counts[i]) / draws
		if math.Abs(got-wi) > 0.01 {
			t.Errorf("slot %d frequency %.4f, want %.4f ± 0.01", i, got, wi)
		}
	}
}
