// Package fora is the online seed-set PPR query engine: FORA-style
// two-phase estimation (Wang et al., SIGMOD 2017; the state of the art
// for online single/multi-source PPR per the survey in PAPERS.md).
//
// A query runs forward local push (reusing ppr.Workspace) from the seed
// set down to an adaptively chosen residual threshold rmax, then finishes
// the remaining residual mass with ω Monte Carlo α-terminating walks
// whose start nodes are alias-sampled from the residual distribution.
// With rmax = ε·√(δ / ((2ε/3+2)·m·ln(2/p_f))) and
// ω = ⌈r_sum·(2ε/3+2)·ln(2/p_f) / (ε²·δ)⌉, every estimate π̂(t)
// satisfies |π̂(t) − π(t)| ≤ ε·π(t) for all t with π(t) ≥ δ, with
// probability at least 1 − p_f (standard Chernoff argument; sampling walk
// starts i.i.d. from r/r_sum keeps the same bound as FORA's deterministic
// ⌈r(v)·ω⌉ allocation). Walks parallelize on the internal/par pool with
// per-chunk splitmix64 streams, so results are deterministic for a fixed
// pool size. An optional precomputed walk index (FORA+, see WalkIndex)
// replaces walk simulation with endpoint resampling.
//
// Dangling nodes halt walks and absorb pushed mass without terminating
// anywhere — the truncated Eq. (1) semantics every PPR path in this repo
// shares, so estimates are comparable with ppr.MultiSource ground truth.
package fora

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/par"
	"github.com/nrp-embed/nrp/internal/ppr"
)

// Typed sentinels for parameter validation, re-exported at the public nrp
// API boundary and mapped to HTTP 400 by internal/serve.
var (
	ErrInvalidAlpha   = errors.New("fora: alpha must be in (0,1)")
	ErrInvalidEpsilon = errors.New("fora: epsilon must be positive")
	ErrEmptySeedSet   = errors.New("fora: seed set is empty")
)

const (
	// DefaultAlpha matches the α = 0.15 regime the paper's embedding
	// pipeline uses, so online queries and embeddings agree by default.
	DefaultAlpha = 0.15
	// DefaultEpsilon is the relative error bound ε; 0.5 is the FORA
	// paper's serving default.
	DefaultEpsilon = 0.5
	// maxWalksPerQuery caps ω so a pathological (ε, δ) choice degrades
	// into an error instead of an unbounded compute bill.
	maxWalksPerQuery = 1 << 27
	// lazyRepairBudget caps how many stale walk-index rows one query's
	// post-answer repair pass re-walks, bounding the latency tax any
	// single request pays for index maintenance.
	lazyRepairBudget = 2048
)

// Params are the engine-level estimation parameters. Zero values select
// defaults at validation time: Alpha 0.15, Epsilon 0.5, Delta 1/n,
// PFail 1/n, Seed 1.
type Params struct {
	// Alpha is the walk termination probability of Eq. (1).
	Alpha float64
	// Epsilon is the relative error bound ε of the (ε, δ) guarantee.
	Epsilon float64
	// Delta is the guarantee threshold δ: estimates of nodes with
	// π(t) ≥ δ are within ε relative error. Smaller δ → more walks.
	Delta float64
	// PFail is the per-query failure probability p_f of the guarantee.
	PFail float64
	// Seed seeds the walk RNG streams. Queries are deterministic for a
	// fixed (Seed, pool size); vary Seed for independent estimates.
	Seed int64
}

func (p Params) withDefaults(n int) (Params, error) {
	if n < 2 {
		n = 2
	}
	if p.Alpha == 0 {
		p.Alpha = DefaultAlpha
	}
	if p.Epsilon == 0 {
		p.Epsilon = DefaultEpsilon
	}
	if p.Delta == 0 {
		p.Delta = 1 / float64(n)
	}
	if p.PFail == 0 {
		p.PFail = 1 / float64(n)
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if err := checkAlpha(p.Alpha); err != nil {
		return p, err
	}
	if !(p.Epsilon > 0) || math.IsInf(p.Epsilon, 1) {
		return p, fmt.Errorf("%w: got %v", ErrInvalidEpsilon, p.Epsilon)
	}
	if !(p.Delta > 0 && p.Delta < 1) {
		return p, fmt.Errorf("fora: delta must be in (0,1), got %v", p.Delta)
	}
	if !(p.PFail > 0 && p.PFail < 1) {
		return p, fmt.Errorf("fora: failure probability must be in (0,1), got %v", p.PFail)
	}
	return p, nil
}

func checkAlpha(alpha float64) error {
	if !(alpha > 0 && alpha < 1) {
		return fmt.Errorf("%w: got %v", ErrInvalidAlpha, alpha)
	}
	return nil
}

// Query is one seed-set PPR request.
type Query struct {
	// Seeds is the non-empty seed set; duplicates are deduped, so the
	// estimated vector is π_S = (1/|S|)·Σ_{s∈S} π(s,·).
	Seeds []int32
	// K is the number of top results to return (clamped to n).
	K int
	// Alpha/Epsilon, when nonzero, override the engine defaults for this
	// query only.
	Alpha, Epsilon float64
	// Graph, when non-nil, is the graph snapshot to answer on — the live
	// RCU snapshot in serving — and must have the engine's node count.
	// Nil queries the graph the engine was built with.
	Graph *graph.Graph
}

// Score is one ranked result entry.
type Score struct {
	Node  int32
	Score float64
}

// Stats describes how a query was answered.
type Stats struct {
	// Rmax is the adaptive push threshold used.
	Rmax float64
	// Residual is r_sum, the mass left for the walk phase.
	Residual float64
	// Walks is ω, the number of walks run (0 if push converged fully).
	Walks int64
	// Pushed is the number of nodes touched by forward push.
	Pushed int
	// Candidates is the number of nodes with a nonzero estimate.
	Candidates int
	// UsedIndex reports whether the FORA+ walk index answered the walk
	// phase.
	UsedIndex bool
	// PushTime and WalkTime split the query latency by phase.
	PushTime, WalkTime time.Duration
}

// Result is a ranked answer: the top-K nodes by estimated π_S, descending
// (ties broken by ascending node id), plus query stats.
type Result struct {
	Scores []Score
	Stats  Stats
}

// Engine answers seed-set PPR queries over graphs with a fixed node
// count. It is safe for concurrent use; per-query scratch state lives in
// an internal sync.Pool so steady-state queries allocate O(k), not O(n).
type Engine struct {
	g         *graph.Graph
	pool      *par.Pool
	idx       *WalkIndex
	def       Params
	maxChunks int
	ws        sync.Pool
	wsBuilds  atomic.Int64
	walksRun  atomic.Int64
}

// NewEngine builds an engine over g. pool may be nil (serial); idx may be
// nil (walks are simulated on the graph) or a WalkIndex with matching
// node count and alpha. def's zero fields select package defaults.
func NewEngine(g *graph.Graph, pool *par.Pool, idx *WalkIndex, def Params) (*Engine, error) {
	def, err := def.withDefaults(g.N)
	if err != nil {
		return nil, err
	}
	if idx != nil && idx.Nodes() != g.N {
		return nil, fmt.Errorf("fora: walk index built for %d nodes, graph has %d", idx.Nodes(), g.N)
	}
	return &Engine{g: g, pool: pool, idx: idx, def: def, maxChunks: pool.Workers()}, nil
}

// Graph returns the graph the engine was built with.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Params returns the engine's resolved default parameters.
func (e *Engine) Params() Params { return e.def }

// Index returns the engine's walk index, nil if none.
func (e *Engine) Index() *WalkIndex { return e.idx }

// WorkspaceBuilds reports how many O(n) query workspaces have been
// constructed — observability for the sync.Pool reuse contract (a
// steady sequential caller should see this stay at 1).
func (e *Engine) WorkspaceBuilds() int64 { return e.wsBuilds.Load() }

// EngineCounters are the engine's cumulative work counters, exported on
// /metrics by serving.
type EngineCounters struct {
	// WorkspaceBuilds counts O(n) query-workspace constructions.
	WorkspaceBuilds int64
	// WalksRun counts Monte Carlo walks across all queries (index-served
	// and simulated alike).
	WalksRun int64
	// WalkIndex holds the walk-index maintenance counters (zero when no
	// index is attached or maintenance is off).
	WalkIndex WalkIndexCounters
	// WalkIndexStalePending is the current count of invalidated nodes
	// awaiting repair (a gauge, not a counter).
	WalkIndexStalePending int
}

// Counters returns a snapshot of the engine's work counters.
func (e *Engine) Counters() EngineCounters {
	c := EngineCounters{
		WorkspaceBuilds: e.wsBuilds.Load(),
		WalksRun:        e.walksRun.Load(),
	}
	if e.idx != nil {
		c.WalkIndex = e.idx.Counters()
		c.WalkIndexStalePending = e.idx.StalePending()
	}
	return c
}

// workspace is the per-query scratch state: the push workspace, the alias
// table over residuals, per-chunk walk-endpoint counters with their touch
// lists (so cleanup is O(touched), never O(n)), and top-k selection
// buffers.
type workspace struct {
	push    *ppr.Workspace
	alias   aliasTable
	starts  []int32
	weights []float64
	counts  [][]int32
	hits    [][]int32
	seen    []bool
	cand    []int32
	heap    []Score
}

func (e *Engine) getWS() *workspace {
	if v := e.ws.Get(); v != nil {
		return v.(*workspace)
	}
	e.wsBuilds.Add(1)
	n := e.g.N
	w := &workspace{
		push:   ppr.NewWorkspace(n),
		counts: make([][]int32, e.maxChunks),
		hits:   make([][]int32, e.maxChunks),
		seen:   make([]bool, n),
	}
	for i := range w.counts {
		w.counts[i] = make([]int32, n)
	}
	return w
}

func (e *Engine) putWS(w *workspace) { e.ws.Put(w) }

// Query answers q with the (ε, δ) relative-error guarantee described in
// the package comment. It returns ErrEmptySeedSet, ErrInvalidAlpha or
// ErrInvalidEpsilon (possibly wrapped) on invalid input.
func (e *Engine) Query(ctx context.Context, q Query) (*Result, error) {
	p := e.def
	if q.Alpha != 0 {
		p.Alpha = q.Alpha
	}
	if q.Epsilon != 0 {
		p.Epsilon = q.Epsilon
	}
	p, err := p.withDefaults(e.g.N)
	if err != nil {
		return nil, err
	}
	g := q.Graph
	if g == nil {
		g = e.g
	}
	if g.N != e.g.N {
		return nil, fmt.Errorf("fora: query graph has %d nodes, engine built for %d", g.N, e.g.N)
	}
	if len(q.Seeds) == 0 {
		return nil, ErrEmptySeedSet
	}
	for _, s := range q.Seeds {
		if s < 0 || int(s) >= g.N {
			return nil, fmt.Errorf("fora: seed %d outside [0,%d)", s, g.N)
		}
	}
	if q.K < 1 {
		return nil, fmt.Errorf("fora: k must be positive, got %d", q.K)
	}
	k := q.K
	if k > g.N {
		k = g.N
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	seeds := dedupeSeeds(q.Seeds)

	m := g.Arcs()
	if m == 0 {
		m = 1
	}
	// ω = r_sum·ωc/δ walks match push cost when rmax balances the two
	// phases; see package comment for the derivation.
	omegaC := (2*p.Epsilon/3 + 2) * math.Log(2/p.PFail) / (p.Epsilon * p.Epsilon)
	rmax := p.Epsilon * math.Sqrt(p.Delta/(omegaC*float64(m)))

	ws := e.getWS()
	defer e.putWS(ws)

	res := &Result{Stats: Stats{Rmax: rmax}}
	t0 := time.Now()
	rsum := ws.push.ForwardPushSeeds(g, seeds, p.Alpha, rmax)
	res.Stats.PushTime = time.Since(t0)
	res.Stats.Residual = rsum
	res.Stats.Pushed = len(ws.push.Touched())

	nc := 0
	if rsum > 0 {
		walks := int64(math.Ceil(rsum * omegaC / p.Delta))
		if walks > maxWalksPerQuery {
			return nil, fmt.Errorf("fora: query needs %d walks (epsilon/delta too demanding); relax epsilon or delta", walks)
		}
		res.Stats.Walks = walks
		t1 := time.Now()
		nc, err = e.runWalks(ctx, g, ws, p, walks)
		res.Stats.WalkTime = time.Since(t1)
		if err != nil {
			return nil, err
		}
	}

	res.Scores = e.selectTopK(ws, nc, rsum, res.Stats.Walks, k)
	res.Stats.Candidates = len(ws.cand)
	idx := e.usableIndex(g, p.Alpha)
	res.Stats.UsedIndex = idx != nil && rsum > 0
	cleanup(ws, nc)
	e.walksRun.Add(res.Stats.Walks)
	if idx != nil && idx.Maintained() {
		// Lazy maintenance: piggyback a bounded repair pass on the query
		// path so stale rows drain back to the fast path under load,
		// without a dedicated repair goroutine. Non-blocking — skipped
		// when another pass holds the maintenance lock.
		idx.tryRepair(g, lazyRepairBudget)
	}
	return res, nil
}

// usableIndex returns the walk index when it answers walks for this
// (graph, alpha) pair: matching node count and termination probability.
// Without maintenance, live edge updates do not invalidate it (the FORA+
// staleness trade-off documented on WalkIndex); a maintained index serves
// fresh rows fast and simulates walks for invalidated nodes.
func (e *Engine) usableIndex(g *graph.Graph, alpha float64) *WalkIndex {
	if e.idx != nil && e.idx.Nodes() == g.N && e.idx.Alpha() == alpha {
		return e.idx
	}
	return nil
}

// runWalks alias-samples walk starts from the residual distribution and
// accumulates endpoint counts into per-chunk counters. Returns the number
// of chunks used.
func (e *Engine) runWalks(ctx context.Context, g *graph.Graph, ws *workspace, p Params, walks int64) (int, error) {
	ws.starts = ws.starts[:0]
	ws.weights = ws.weights[:0]
	for _, v := range ws.push.Touched() {
		if r := ws.push.R(v); r > 0 {
			ws.starts = append(ws.starts, v)
			ws.weights = append(ws.weights, r)
		}
	}
	if len(ws.starts) == 0 {
		return 0, nil
	}
	ws.alias.build(ws.weights)

	idx := e.usableIndex(g, p.Alpha)
	nc := e.pool.Chunks(int(walks))
	var canceled atomic.Bool
	e.pool.For(int(walks), func(w, lo, hi int) {
		counts := ws.counts[w]
		hits := ws.hits[w][:0]
		rng := newSplitmix64(mix64(uint64(p.Seed), uint64(w)))
		var served, simulated int64
		for i := lo; i < hi; i++ {
			if i&0xfff == 0 && ctx.Err() != nil {
				canceled.Store(true)
				break
			}
			v := ws.starts[ws.alias.sample(&rng)]
			var t int32
			if idx != nil {
				var cached bool
				t, cached = idx.endpoint(g, v, &rng)
				if cached {
					served++
				} else {
					simulated++
				}
			} else {
				t = walkEnd(g, v, p.Alpha, &rng)
			}
			if t >= 0 {
				if counts[t] == 0 {
					hits = append(hits, t)
				}
				counts[t]++
			}
		}
		ws.hits[w] = hits
		if idx != nil {
			idx.addEndpointStats(served, simulated)
		}
	})
	if canceled.Load() {
		cleanup(ws, nc)
		return nc, ctx.Err()
	}
	return nc, nil
}

// selectTopK merges push estimates with walk counts and returns the top-k
// scores, descending (ties by ascending node id). π̂(t) = p(t) +
// (r_sum/ω)·count(t).
func (e *Engine) selectTopK(ws *workspace, nc int, rsum float64, walks int64, k int) []Score {
	cand := ws.cand[:0]
	for _, v := range ws.push.Touched() {
		if ws.push.P(v) > 0 {
			ws.seen[v] = true
			cand = append(cand, v)
		}
	}
	for w := 0; w < nc; w++ {
		for _, t := range ws.hits[w] {
			if !ws.seen[t] {
				ws.seen[t] = true
				cand = append(cand, t)
			}
		}
	}
	ws.cand = cand

	inc := 0.0
	if walks > 0 {
		inc = rsum / float64(walks)
	}
	h := ws.heap[:0]
	for _, t := range cand {
		s := ws.push.P(t)
		if inc > 0 {
			total := int32(0)
			for w := 0; w < nc; w++ {
				total += ws.counts[w][t]
			}
			s += inc * float64(total)
		}
		sc := Score{Node: t, Score: s}
		if len(h) < k {
			h = append(h, sc)
			siftUp(h, len(h)-1)
		} else if worse(h[0], sc) {
			h[0] = sc
			siftDown(h, 0)
		}
	}
	ws.heap = h[:0]
	out := make([]Score, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool { return worse(out[j], out[i]) })
	return out
}

// cleanup zeroes exactly the entries a query touched, so pooled
// workspaces carry no state between requests at O(touched) cost.
func cleanup(ws *workspace, nc int) {
	for _, v := range ws.cand {
		ws.seen[v] = false
	}
	ws.cand = ws.cand[:0]
	for w := 0; w < nc; w++ {
		counts := ws.counts[w]
		for _, t := range ws.hits[w] {
			counts[t] = 0
		}
		ws.hits[w] = ws.hits[w][:0]
	}
}

// worse reports whether a ranks strictly below b (lower score, ties by
// higher node id) — the min-heap order for top-k selection.
func worse(a, b Score) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Node > b.Node
}

func siftUp(h []Score, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []Score, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && worse(h[l], h[min]) {
			min = l
		}
		if r < len(h) && worse(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// dedupeSeeds returns the sorted distinct seed set without mutating the
// input.
func dedupeSeeds(seeds []int32) []int32 {
	out := make([]int32, len(seeds))
	copy(out, seeds)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}
