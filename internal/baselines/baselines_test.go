package baselines

import (
	"math"
	"testing"

	"github.com/nrp-embed/nrp/internal/eval"
	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/ppr"
)

// testGraph is a small SBM with clear community structure, so any method
// that captures multi-hop proximity should beat chance at link prediction.
func testGraph(t testing.TB, directed bool) *graph.Graph {
	t.Helper()
	g, err := graph.GenSBM(graph.SBMConfig{N: 250, M: 1500, Communities: 3, IntraFrac: 0.9, Directed: directed, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// linkPredAUC trains on a 30%-removed split and evaluates the scorer the
// paper prescribes for each method family.
func linkPredAUC(t *testing.T, g *graph.Graph, train func(*graph.Graph) eval.Scorer) float64 {
	t.Helper()
	split, err := eval.NewLinkPredSplit(g, 0.3, 31)
	if err != nil {
		t.Fatal(err)
	}
	scorer := train(split.Train)
	auc, err := eval.LinkPredictionAUC(scorer, split)
	if err != nil {
		t.Fatal(err)
	}
	return auc
}

func requireAUC(t *testing.T, name string, auc, threshold float64) {
	t.Helper()
	if auc < threshold {
		t.Fatalf("%s link-prediction AUC %.3f below %.2f", name, auc, threshold)
	}
	t.Logf("%s AUC = %.3f", name, auc)
}

func TestDeepWalkLinkPrediction(t *testing.T) {
	g := testGraph(t, false)
	auc := linkPredAUC(t, g, func(tr *graph.Graph) eval.Scorer {
		emb, err := DeepWalk(tr, WalkConfig{Dim: 32, Walks: 5, WalkLen: 20, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return emb
	})
	requireAUC(t, "DeepWalk", auc, 0.65)
}

func TestNode2VecLinkPrediction(t *testing.T) {
	g := testGraph(t, false)
	auc := linkPredAUC(t, g, func(tr *graph.Graph) eval.Scorer {
		emb, err := Node2Vec(tr, WalkConfig{Dim: 32, Walks: 5, WalkLen: 20, P: 0.5, Q: 2, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		return emb
	})
	requireAUC(t, "node2vec", auc, 0.65)
}

func TestLINELinkPrediction(t *testing.T) {
	g := testGraph(t, false)
	for _, order := range []int{1, 2, 3} {
		auc := linkPredAUC(t, g, func(tr *graph.Graph) eval.Scorer {
			emb, err := LINE(tr, LINEConfig{Dim: 32, Order: order, Samples: 120, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			return emb
		})
		requireAUC(t, "LINE", auc, 0.6)
	}
}

func TestAPPLinkPrediction(t *testing.T) {
	g := testGraph(t, true)
	auc := linkPredAUC(t, g, func(tr *graph.Graph) eval.Scorer {
		emb, err := APP(tr, APPConfig{Dim: 32, Samples: 100, Epochs: 10, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return emb
	})
	requireAUC(t, "APP", auc, 0.6)
}

func TestVERSELinkPrediction(t *testing.T) {
	g := testGraph(t, false)
	auc := linkPredAUC(t, g, func(tr *graph.Graph) eval.Scorer {
		emb, err := VERSE(tr, VERSEConfig{Dim: 32, Samples: 60, Epochs: 6, LearnRate: 0.05, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return emb
	})
	requireAUC(t, "VERSE", auc, 0.6)
}

func TestSpectralLinkPrediction(t *testing.T) {
	g := testGraph(t, false)
	auc := linkPredAUC(t, g, func(tr *graph.Graph) eval.Scorer {
		emb, err := Spectral(tr, SpectralConfig{Dim: 16, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		return emb
	})
	requireAUC(t, "Spectral", auc, 0.6)
}

func TestRandNELinkPrediction(t *testing.T) {
	g := testGraph(t, false)
	auc := linkPredAUC(t, g, func(tr *graph.Graph) eval.Scorer {
		emb, err := RandNE(tr, RandNEConfig{Dim: 32, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return emb
	})
	requireAUC(t, "RandNE", auc, 0.6)
}

func TestAROPELinkPrediction(t *testing.T) {
	g := testGraph(t, false)
	auc := linkPredAUC(t, g, func(tr *graph.Graph) eval.Scorer {
		emb, err := AROPE(tr, AROPEConfig{Dim: 32, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		return emb
	})
	requireAUC(t, "AROPE", auc, 0.65)
}

func TestSTRAPLinkPrediction(t *testing.T) {
	g := testGraph(t, false)
	auc := linkPredAUC(t, g, func(tr *graph.Graph) eval.Scorer {
		emb, err := STRAP(tr, STRAPConfig{Dim: 32, Delta: 1e-4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return emb
	})
	requireAUC(t, "STRAP", auc, 0.65)
}

// STRAP's factorized scores should track the transpose proximity
// π(u,v) + π̃(v,u) on a small graph.
func TestSTRAPApproximatesTransposeProximity(t *testing.T) {
	g, err := graph.GenSBM(graph.SBMConfig{N: 60, M: 250, Communities: 2, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	emb, err := STRAP(g, STRAPConfig{Dim: 60, Delta: 1e-7, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := ppr.Exact(g, 0.15, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Undirected: M[u,v] = π(u,v) + π(v,u).
	maxErr := 0.0
	for u := 0; u < g.N; u++ {
		for v := 0; v < g.N; v++ {
			if u == v {
				continue
			}
			want := pi.At(u, v) + pi.At(v, u)
			if d := math.Abs(emb.Score(u, v) - want); d > maxErr {
				maxErr = d
			}
		}
	}
	// The transpose proximity matrix is not exactly rank k/2; the residual
	// reflects truncation, not a defect, so the tolerance is loose.
	if maxErr > 0.1 {
		t.Fatalf("STRAP proximity error %v", maxErr)
	}
}

// AROPE's first-order weights should reproduce adjacency structure: true
// edges must outscore random non-edges on average.
func TestAROPESeparatesEdges(t *testing.T) {
	g := testGraph(t, false)
	emb, err := AROPE(g, AROPEConfig{Dim: 32, Weights: []float64{1}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	meanEdge := 0.0
	for _, e := range edges {
		meanEdge += emb.Score(int(e.U), int(e.V))
	}
	meanEdge /= float64(len(edges))
	meanRand := 0.0
	count := 0
	for u := 0; u < g.N; u += 3 {
		for v := 1; v < g.N; v += 7 {
			if u != v && !g.HasEdge(u, v) {
				meanRand += emb.Score(u, v)
				count++
			}
		}
	}
	meanRand /= float64(count)
	if meanEdge <= meanRand {
		t.Fatalf("AROPE edge mean %v <= non-edge mean %v", meanEdge, meanRand)
	}
}

func TestVERSESymmetricScores(t *testing.T) {
	g := testGraph(t, true)
	emb, err := VERSE(g, VERSEConfig{Dim: 16, Samples: 10, Epochs: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Single-table methods cannot represent direction.
	for u := 0; u < 20; u++ {
		if emb.Score(u, u+1) != emb.Score(u+1, u) {
			t.Fatal("VERSE scores should be symmetric")
		}
	}
}

func TestAPPAsymmetricScores(t *testing.T) {
	g := testGraph(t, true)
	emb, err := APP(g, APPConfig{Dim: 16, Samples: 10, Epochs: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	asym := false
	for u := 0; u < 30 && !asym; u++ {
		if math.Abs(emb.Score(u, u+1)-emb.Score(u+1, u)) > 1e-12 {
			asym = true
		}
	}
	if !asym {
		t.Fatal("APP should produce direction-aware scores")
	}
}

func TestConfigValidation(t *testing.T) {
	g := testGraph(t, false)
	if _, err := DeepWalk(g, WalkConfig{}); err == nil {
		t.Fatal("DeepWalk Dim 0 accepted")
	}
	if _, err := LINE(g, LINEConfig{Dim: 8, Order: 5}); err == nil {
		t.Fatal("LINE bad order accepted")
	}
	if _, err := LINE(g, LINEConfig{Dim: 9, Order: 3}); err == nil {
		t.Fatal("LINE odd dim for order 3 accepted")
	}
	if _, err := APP(g, APPConfig{Dim: 7}); err == nil {
		t.Fatal("APP odd dim accepted")
	}
	if _, err := APP(g, APPConfig{Dim: 8, Alpha: 2}); err == nil {
		t.Fatal("APP bad alpha accepted")
	}
	if _, err := VERSE(g, VERSEConfig{}); err == nil {
		t.Fatal("VERSE Dim 0 accepted")
	}
	if _, err := Spectral(g, SpectralConfig{Dim: 0}); err == nil {
		t.Fatal("Spectral Dim 0 accepted")
	}
	if _, err := RandNE(g, RandNEConfig{}); err == nil {
		t.Fatal("RandNE Dim 0 accepted")
	}
	if _, err := AROPE(g, AROPEConfig{Dim: 5}); err == nil {
		t.Fatal("AROPE odd dim accepted")
	}
	if _, err := STRAP(g, STRAPConfig{Dim: 8, Delta: -1}); err == nil {
		t.Fatal("STRAP negative delta accepted")
	}
}

func TestWalksRespectGraph(t *testing.T) {
	g := testGraph(t, true)
	rng := newTestRand()
	buf := make([]int32, 0, 16)
	for i := 0; i < 50; i++ {
		walk := randomWalk(g, int32(i%g.N), 16, rng, buf)
		for j := 1; j < len(walk); j++ {
			if !g.HasEdge(int(walk[j-1]), int(walk[j])) {
				t.Fatalf("walk used missing arc (%d,%d)", walk[j-1], walk[j])
			}
		}
		walk = node2vecWalk(g, int32(i%g.N), 16, 0.5, 2, rng, buf)
		for j := 1; j < len(walk); j++ {
			if !g.HasEdge(int(walk[j-1]), int(walk[j])) {
				t.Fatalf("biased walk used missing arc (%d,%d)", walk[j-1], walk[j])
			}
		}
	}
}

func TestPPRWalkEndpointDistribution(t *testing.T) {
	// Monte-Carlo endpoints should match exact PPR on a tiny graph.
	g, err := graph.New(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}}, false)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ppr.Exact(g, 0.3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rng := newTestRand()
	counts := make([]float64, 4)
	const samples = 200000
	for i := 0; i < samples; i++ {
		counts[pprWalkEndpoint(g, 0, 0.3, rng)]++
	}
	for v := 0; v < 4; v++ {
		got := counts[v] / samples
		if math.Abs(got-exact.At(0, v)) > 0.01 {
			t.Fatalf("endpoint freq %v vs π(0,%d)=%v", got, v, exact.At(0, v))
		}
	}
}

func TestNegTableBiasedTowardHubs(t *testing.T) {
	g := testGraph(t, false)
	table := newNegTable(g)
	rng := newTestRand()
	counts := make([]int, g.N)
	for i := 0; i < 100000; i++ {
		counts[table.sample(rng)]++
	}
	// The hub with the highest degree should be sampled more often than a
	// low-degree node.
	hub, leaf := 0, 0
	for v := 1; v < g.N; v++ {
		if g.OutDeg(v) > g.OutDeg(hub) {
			hub = v
		}
		if g.OutDeg(v) < g.OutDeg(leaf) {
			leaf = v
		}
	}
	if counts[hub] <= counts[leaf] {
		t.Fatalf("hub sampled %d times, leaf %d", counts[hub], counts[leaf])
	}
}

func TestVectorEmbeddingFeatures(t *testing.T) {
	g := testGraph(t, false)
	emb, err := RandNE(g, RandNEConfig{Dim: 8, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	f := emb.Features(0)
	norm := 0.0
	for _, x := range f {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("features not normalized: %v", norm)
	}
	// Features must not alias the embedding.
	f[0] = 999
	if emb.Vecs.At(0, 0) == 999 {
		t.Fatal("Features aliases storage")
	}
}
