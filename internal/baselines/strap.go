package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/core"
	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/ppr"
	"github.com/nrp-embed/nrp/internal/sparse"
	"github.com/nrp-embed/nrp/internal/svd"
)

// STRAPConfig parameterizes STRAP (Yin & Wei, KDD'19): the transpose
// proximity matrix M = Π + Π̃ᵀ is assembled from forward-push approximate
// PPR on G and on its transpose, entries below Delta/2 are discarded, and
// M is factorized by randomized SVD into X = U√Σ, Y = V√Σ.
type STRAPConfig struct {
	Dim   int
	Alpha float64 // walk decay (default 0.15)
	Delta float64 // PPR error threshold δ; the paper fixes 1e-5
	Seed  int64
}

func (c *STRAPConfig) defaults() error {
	if c.Dim <= 0 || c.Dim%2 != 0 {
		return fmt.Errorf("baselines: STRAP Dim must be positive and even, got %d", c.Dim)
	}
	if c.Alpha == 0 {
		c.Alpha = 0.15
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("baselines: STRAP Alpha must be in (0,1), got %v", c.Alpha)
	}
	if c.Delta == 0 {
		c.Delta = 1e-5
	}
	if c.Delta <= 0 {
		return fmt.Errorf("baselines: STRAP Delta must be positive, got %v", c.Delta)
	}
	return nil
}

// STRAP returns the dual embedding factorized from the sparse transpose
// proximity matrix.
func STRAP(g *graph.Graph, cfg STRAPConfig) (*core.Embedding, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	kPrime := cfg.Dim / 2
	if kPrime > g.N {
		return nil, fmt.Errorf("baselines: STRAP k/2=%d exceeds n=%d", kPrime, g.N)
	}
	keep := cfg.Delta / 2
	var entries []sparse.Triple
	// Π of G.
	for u := 0; u < g.N; u++ {
		for v, p := range ppr.ForwardPush(g, u, cfg.Alpha, cfg.Delta) {
			if p > keep {
				entries = append(entries, sparse.Triple{Row: int32(u), Col: v, Val: p})
			}
		}
	}
	// Π̃ᵀ of the transpose graph: π̃(v,u) contributes to M[u,v].
	gt := g.Transpose()
	for v := 0; v < g.N; v++ {
		for u, p := range ppr.ForwardPush(gt, v, cfg.Alpha, cfg.Delta) {
			if p > keep {
				entries = append(entries, sparse.Triple{Row: u, Col: int32(v), Val: p})
			}
		}
	}
	m, err := sparse.FromTriples(g.N, g.N, entries)
	if err != nil {
		return nil, err
	}
	res, err := svd.BKSVD(m, svd.Options{Rank: kPrime, Epsilon: 0.1, Rng: rand.New(rand.NewSource(cfg.Seed))})
	if err != nil {
		return nil, err
	}
	x := res.U.Clone()
	y := res.V.Clone()
	for j, s := range res.S {
		scale := math.Sqrt(s)
		for i := 0; i < g.N; i++ {
			x.Set(i, j, x.At(i, j)*scale)
			y.Set(i, j, y.At(i, j)*scale)
		}
	}
	return &core.Embedding{X: x, Y: y}, nil
}
