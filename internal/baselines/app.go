package baselines

import (
	"fmt"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/core"
	"github.com/nrp-embed/nrp/internal/graph"
)

// APPConfig parameterizes APP (Zhou et al., AAAI'17), the asymmetric
// PPR-sampling method: positives (u, v) are endpoints of α-terminated walks
// from u, trained into separate source and target tables, preserving edge
// direction.
type APPConfig struct {
	Dim       int     // total dimensionality; k/2 per side as in the paper's protocol
	Alpha     float64 // walk stop probability (default 0.15)
	Samples   int     // walk samples per node per epoch (default 40)
	Epochs    int     // passes over all nodes (default 5)
	Negatives int     // negatives per positive (default 5)
	LearnRate float64 // initial SGD step (default 0.025)
	Seed      int64
}

func (c *APPConfig) defaults() error {
	if c.Dim <= 0 || c.Dim%2 != 0 {
		return fmt.Errorf("baselines: APP Dim must be positive and even, got %d", c.Dim)
	}
	if c.Alpha == 0 {
		c.Alpha = 0.15
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("baselines: APP Alpha must be in (0,1), got %v", c.Alpha)
	}
	if c.Samples == 0 {
		c.Samples = 100
	}
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.Negatives == 0 {
		c.Negatives = 5
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.025
	}
	return nil
}

// APP returns a dual (forward/backward) embedding trained on PPR walk
// endpoint samples.
func APP(g *graph.Graph, cfg APPConfig) (*core.Embedding, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	kPrime := cfg.Dim / 2
	src := initEmbedding(g.N, kPrime, rng)
	dst := initEmbedding(g.N, kPrime, rng)
	trainer := newSGNSTrainer(src, dst, newNegTable(g), cfg.Negatives, cfg.LearnRate)
	trainer.setTotalSteps(g.N * cfg.Samples * cfg.Epochs)

	order := rng.Perm(g.N)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		shuffleIdx(order, rng)
		for _, u := range order {
			for s := 0; s < cfg.Samples; s++ {
				v := pprWalkEndpoint(g, int32(u), cfg.Alpha, rng)
				if v == int32(u) {
					continue
				}
				trainer.Update(int32(u), v, rng)
			}
		}
	}
	return &core.Embedding{X: src, Y: dst}, nil
}

func shuffleIdx(p []int, rng *rand.Rand) {
	for i := len(p) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
