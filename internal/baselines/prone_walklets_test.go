package baselines

import (
	"math"
	"testing"

	"github.com/nrp-embed/nrp/internal/eval"
	"github.com/nrp-embed/nrp/internal/graph"
)

func TestProNELinkPrediction(t *testing.T) {
	g := testGraph(t, false)
	auc := linkPredAUC(t, g, func(tr *graph.Graph) eval.Scorer {
		emb, err := ProNE(tr, ProNEConfig{Dim: 32, Seed: 41})
		if err != nil {
			t.Fatal(err)
		}
		return emb
	})
	requireAUC(t, "ProNE", auc, 0.6)
}

// ProNE's strength in the paper is classification: its features should
// separate the SBM communities well.
func TestProNEClassification(t *testing.T) {
	g := testGraph(t, false)
	emb, err := ProNE(g, ProNEConfig{Dim: 32, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eval.NodeClassification(emb.Features, g.Labels, g.NumLabels, 0.5,
		eval.LogRegConfig{Seed: 1, Epochs: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Micro < 0.5 {
		t.Fatalf("ProNE micro-F1 = %v", res.Micro)
	}
	t.Logf("ProNE micro-F1 = %.3f", res.Micro)
}

func TestProNEValidation(t *testing.T) {
	g := testGraph(t, false)
	if _, err := ProNE(g, ProNEConfig{}); err == nil {
		t.Fatal("Dim 0 accepted")
	}
	if _, err := ProNE(g, ProNEConfig{Dim: 8, Order: 1}); err == nil {
		t.Fatal("Order 1 accepted")
	}
	if _, err := ProNE(g, ProNEConfig{Dim: 100000}); err == nil {
		t.Fatal("oversized Dim accepted")
	}
}

func TestBesselSeries(t *testing.T) {
	// Reference values of I_n(x) (Abramowitz & Stegun).
	cases := []struct {
		n    int
		x    float64
		want float64
	}{
		{0, 0.5, 1.0634833707413236},
		{1, 0.5, 0.2578943053908963},
		{0, 1.0, 1.2660658777520082},
		{1, 1.0, 0.5651591039924850},
		{2, 1.0, 0.1357476697670383},
		// I_3(0.5) = Σ_m (0.25)^(2m+3)/(m!(m+3)!) = 0.00260417 + 4.069e-5 + …
		{3, 0.5, 0.0026451119689903},
	}
	for _, c := range cases {
		if got := besselI(c.n, c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("I_%d(%v) = %.16f, want %.16f", c.n, c.x, got, c.want)
		}
	}
}

func TestWalkletsLinkPrediction(t *testing.T) {
	g := testGraph(t, false)
	auc := linkPredAUC(t, g, func(tr *graph.Graph) eval.Scorer {
		emb, err := Walklets(tr, WalkletsConfig{Dim: 32, Scales: 2, Walks: 5, WalkLen: 20, Seed: 43})
		if err != nil {
			t.Fatal(err)
		}
		return emb
	})
	requireAUC(t, "Walklets", auc, 0.6)
}

func TestWalkletsShape(t *testing.T) {
	g := testGraph(t, false)
	emb, err := Walklets(g, WalkletsConfig{Dim: 16, Scales: 4, Walks: 2, WalkLen: 10, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	if emb.Dim() != 16 || emb.N() != g.N {
		t.Fatalf("shape %dx%d", emb.N(), emb.Dim())
	}
}

func TestWalkletsValidation(t *testing.T) {
	g := testGraph(t, false)
	if _, err := Walklets(g, WalkletsConfig{}); err == nil {
		t.Fatal("Dim 0 accepted")
	}
	if _, err := Walklets(g, WalkletsConfig{Dim: 10, Scales: 4}); err == nil {
		t.Fatal("indivisible Dim accepted")
	}
	if _, err := Walklets(g, WalkletsConfig{Dim: 8, Scales: 4, WalkLen: 3}); err == nil {
		t.Fatal("too-short walks accepted")
	}
}
