package baselines

import (
	"fmt"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
)

// RandNEConfig parameterizes RandNE (Zhang et al., ICDM'18): iterative
// Gaussian random projection. U₀ is an orthogonalized random matrix and
// U_i = P·U_{i−1}; the embedding is Σ a_i·U_i.
type RandNEConfig struct {
	Dim     int
	Weights []float64 // per-order weights a₀..a_q (default 1, 1e2, 1e4, 1e5)
	Seed    int64
}

// RandNE computes the iterative random-projection embedding. It is the
// fastest baseline in the paper (no factorization at all) at the cost of
// result utility.
func RandNE(g *graph.Graph, cfg RandNEConfig) (*VectorEmbedding, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("baselines: RandNE Dim must be positive, got %d", cfg.Dim)
	}
	if len(cfg.Weights) == 0 {
		cfg.Weights = []float64{1, 1e2, 1e4, 1e5}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	u := matrix.Orthonormalize(matrix.GaussianDense(g.N, cfg.Dim, rng))
	if u.Cols < cfg.Dim {
		return nil, fmt.Errorf("baselines: RandNE projection lost rank (%d of %d)", u.Cols, cfg.Dim)
	}
	p := g.Transition()
	emb := u.Clone()
	emb.Scale(cfg.Weights[0])
	for i := 1; i < len(cfg.Weights); i++ {
		u = p.MulDense(u)
		term := u.Clone()
		term.Scale(cfg.Weights[i])
		emb.AddInPlace(term)
	}
	return &VectorEmbedding{Vecs: emb}, nil
}
