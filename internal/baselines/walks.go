package baselines

import (
	"math/rand"

	"github.com/nrp-embed/nrp/internal/graph"
)

// randomWalk appends a uniform random walk of length walkLen starting at
// start to buf (including the start node) and returns it. Walks stop early
// at dangling nodes.
func randomWalk(g *graph.Graph, start int32, walkLen int, rng *rand.Rand, buf []int32) []int32 {
	buf = append(buf[:0], start)
	cur := start
	for len(buf) < walkLen {
		nbrs := g.OutNeighbors(int(cur))
		if len(nbrs) == 0 {
			break
		}
		cur = nbrs[rng.Intn(len(nbrs))]
		buf = append(buf, cur)
	}
	return buf
}

// node2vecWalk appends a second-order biased walk (Grover & Leskovec) with
// return parameter p and in-out parameter q, sampled by rejection: a
// uniform neighbor candidate x of the current node v is accepted with
// probability proportional to 1/p if x is the previous node, 1 if x is a
// neighbor of the previous node, and 1/q otherwise.
func node2vecWalk(g *graph.Graph, start int32, walkLen int, p, q float64, rng *rand.Rand, buf []int32) []int32 {
	buf = append(buf[:0], start)
	cur := start
	prev := int32(-1)
	upper := max(1/p, 1, 1/q)
	for len(buf) < walkLen {
		nbrs := g.OutNeighbors(int(cur))
		if len(nbrs) == 0 {
			break
		}
		var next int32
		if prev < 0 {
			next = nbrs[rng.Intn(len(nbrs))]
		} else {
			for {
				cand := nbrs[rng.Intn(len(nbrs))]
				var w float64
				switch {
				case cand == prev:
					w = 1 / p
				case g.HasEdge(int(prev), int(cand)):
					w = 1
				default:
					w = 1 / q
				}
				if rng.Float64()*upper <= w {
					next = cand
					break
				}
			}
		}
		prev = cur
		cur = next
		buf = append(buf, cur)
	}
	return buf
}

// pprWalkEndpoint simulates a single α-terminated walk from start and
// returns its endpoint — a sample from the PPR distribution π(start, ·)
// (used by APP and VERSE).
func pprWalkEndpoint(g *graph.Graph, start int32, alpha float64, rng *rand.Rand) int32 {
	cur := start
	for {
		if rng.Float64() < alpha {
			return cur
		}
		nbrs := g.OutNeighbors(int(cur))
		if len(nbrs) == 0 {
			return cur
		}
		cur = nbrs[rng.Intn(len(nbrs))]
	}
}
