package baselines

import (
	"fmt"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
)

// WalkletsConfig parameterizes Walklets (Perozzi et al., ASONAM'17):
// multi-scale DeepWalk where scale j trains only on walk pairs exactly j
// hops apart, and the final embedding concatenates the per-scale vectors.
type WalkletsConfig struct {
	Dim       int // total dimensionality, split evenly across scales
	Scales    int // number of scales (default 4); Dim must be divisible
	Walks     int // walks per node (default 10)
	WalkLen   int // walk length (default 40)
	Negatives int
	LearnRate float64
	Seed      int64
}

func (c *WalkletsConfig) defaults() error {
	if c.Dim <= 0 {
		return fmt.Errorf("baselines: Walklets Dim must be positive, got %d", c.Dim)
	}
	if c.Scales == 0 {
		c.Scales = 4
	}
	if c.Scales < 1 {
		return fmt.Errorf("baselines: Walklets Scales must be >= 1, got %d", c.Scales)
	}
	if c.Dim%c.Scales != 0 {
		return fmt.Errorf("baselines: Walklets Dim %d not divisible by %d scales", c.Dim, c.Scales)
	}
	if c.Walks == 0 {
		c.Walks = 10
	}
	if c.WalkLen == 0 {
		c.WalkLen = 40
	}
	if c.WalkLen <= c.Scales {
		return fmt.Errorf("baselines: Walklets WalkLen %d too short for %d scales", c.WalkLen, c.Scales)
	}
	if c.Negatives == 0 {
		c.Negatives = 5
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.025
	}
	return nil
}

// Walklets learns one SGNS embedding per hop distance and concatenates
// them, capturing community structure at multiple granularities.
func Walklets(g *graph.Graph, cfg WalkletsConfig) (*VectorEmbedding, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	perScale := cfg.Dim / cfg.Scales
	out := matrix.NewDense(g.N, cfg.Dim)
	rng := rand.New(rand.NewSource(cfg.Seed))
	neg := newNegTable(g)
	buf := make([]int32, 0, cfg.WalkLen)
	for scale := 1; scale <= cfg.Scales; scale++ {
		in := initEmbedding(g.N, perScale, rng)
		ctx := initEmbedding(g.N, perScale, rng)
		trainer := newSGNSTrainer(in, ctx, neg, cfg.Negatives, cfg.LearnRate)
		trainer.setTotalSteps(g.N * cfg.Walks * cfg.WalkLen * 2)
		order := rng.Perm(g.N)
		for w := 0; w < cfg.Walks; w++ {
			for _, v := range order {
				buf = randomWalk(g, int32(v), cfg.WalkLen, rng, buf)
				// Pairs exactly `scale` positions apart, both directions.
				for i := 0; i+scale < len(buf); i++ {
					trainer.Update(buf[i], buf[i+scale], rng)
					trainer.Update(buf[i+scale], buf[i], rng)
				}
			}
		}
		off := (scale - 1) * perScale
		for v := 0; v < g.N; v++ {
			copy(out.Row(v)[off:off+perScale], in.Row(v))
		}
	}
	return &VectorEmbedding{Vecs: out}, nil
}
