package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/svd"
)

// SpectralConfig parameterizes the classic spectral embedding baseline
// (Tang & Liu): the top-k singular vectors of the symmetrically normalized
// adjacency D^{-1/2} A D^{-1/2}.
type SpectralConfig struct {
	Dim  int
	Seed int64
}

// Spectral computes the spectral embedding via the randomized SVD
// machinery. On directed input the direction is ignored (the paper feeds
// undirected versions to the methods limited to undirected graphs).
func Spectral(g *graph.Graph, cfg SpectralConfig) (*VectorEmbedding, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("baselines: Spectral Dim must be positive, got %d", cfg.Dim)
	}
	if cfg.Dim > g.N {
		return nil, fmt.Errorf("baselines: Spectral Dim %d exceeds n=%d", cfg.Dim, g.N)
	}
	// Symmetrize: use A + Aᵀ support with normalization by total degree.
	sym := symmetrized(g)
	deg := sym.RowSums()
	invSqrt := make([]float64, g.N)
	for v, d := range deg {
		if d > 0 {
			invSqrt[v] = 1 / math.Sqrt(d)
		}
	}
	norm := sym.ScaleRows(invSqrt).Transpose().ScaleRows(invSqrt)
	res, err := svd.BKSVD(norm, svd.Options{Rank: cfg.Dim, Epsilon: 0.1, Rng: rand.New(rand.NewSource(cfg.Seed))})
	if err != nil {
		return nil, err
	}
	u := res.U.Clone()
	for j, s := range res.S {
		scale := math.Sqrt(s)
		for i := 0; i < u.Rows; i++ {
			u.Set(i, j, u.At(i, j)*scale)
		}
	}
	return &VectorEmbedding{Vecs: u}, nil
}
