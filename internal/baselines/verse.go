package baselines

import (
	"fmt"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/graph"
)

// VERSEConfig parameterizes VERSE (Tsitsulin et al., WWW'18) with its PPR
// similarity: one embedding table, positives sampled as α-terminated walk
// endpoints, noise-contrastive updates against uniform negatives.
type VERSEConfig struct {
	Dim       int     // embedding dimensionality
	Alpha     float64 // walk stop probability (default 0.15)
	Samples   int     // positive samples per node per epoch (default 40)
	Epochs    int     // passes over all nodes (default 5)
	Negatives int     // negatives per positive (default 3)
	LearnRate float64 // initial step (default 0.0025, as in the reference code)
	Seed      int64
}

func (c *VERSEConfig) defaults() error {
	if c.Dim <= 0 {
		return fmt.Errorf("baselines: VERSE Dim must be positive, got %d", c.Dim)
	}
	if c.Alpha == 0 {
		c.Alpha = 0.15
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("baselines: VERSE Alpha must be in (0,1), got %v", c.Alpha)
	}
	if c.Samples == 0 {
		c.Samples = 40
	}
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.Negatives == 0 {
		c.Negatives = 3
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.0025
	}
	return nil
}

// VERSE returns a single-vector embedding trained to reproduce PPR
// similarity with noise-contrastive estimation. Because both walk roles
// share one table, edge direction is not represented — the weakness on
// directed graphs the paper highlights (§5.2).
func VERSE(g *graph.Graph, cfg VERSEConfig) (*VectorEmbedding, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := initEmbedding(g.N, cfg.Dim, rng)
	// Shared table: in == out.
	trainer := newSGNSTrainer(w, w, newNegTable(g), cfg.Negatives, cfg.LearnRate)
	trainer.setTotalSteps(g.N * cfg.Samples * cfg.Epochs)

	order := rng.Perm(g.N)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		shuffleIdx(order, rng)
		for _, u := range order {
			for s := 0; s < cfg.Samples; s++ {
				v := pprWalkEndpoint(g, int32(u), cfg.Alpha, rng)
				if v == int32(u) {
					continue
				}
				trainer.Update(int32(u), v, rng)
			}
		}
	}
	return &VectorEmbedding{Vecs: w}, nil
}
