package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/core"
	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/sparse"
	"github.com/nrp-embed/nrp/internal/svd"
)

// AROPEConfig parameterizes AROPE (Zhang et al., KDD'18): arbitrary-order
// proximity preserved by reweighting the top eigenpairs of the (undirected)
// adjacency matrix — S = Σ_i w_i·A^i shares A's eigenvectors with
// eigenvalues F(λ) = Σ_i w_i·λ^i.
type AROPEConfig struct {
	Dim     int
	Weights []float64 // proximity-order weights w₁..w_q (default 1, 0.1, 0.01, 0.001)
	Seed    int64
}

// AROPE returns a dual embedding with X_u·Y_vᵀ = Σ_j F(λ_j)·U[u,j]·U[v,j].
// Direction is ignored, as in the paper's protocol for undirected-only
// methods.
func AROPE(g *graph.Graph, cfg AROPEConfig) (*core.Embedding, error) {
	if cfg.Dim <= 0 || cfg.Dim%2 != 0 {
		return nil, fmt.Errorf("baselines: AROPE Dim must be positive and even, got %d", cfg.Dim)
	}
	kPrime := cfg.Dim / 2
	if kPrime > g.N {
		return nil, fmt.Errorf("baselines: AROPE k/2=%d exceeds n=%d", kPrime, g.N)
	}
	if len(cfg.Weights) == 0 {
		cfg.Weights = []float64{1, 0.1, 0.01, 0.001}
	}
	sym := symmetrized(g)
	res, err := svd.BKSVD(sym, svd.Options{Rank: kPrime, Epsilon: 0.1, Rng: rand.New(rand.NewSource(cfg.Seed))})
	if err != nil {
		return nil, err
	}
	// Recover signed eigenvalues of the symmetric matrix: λ_j = ±σ_j with
	// the sign read off u_jᵀ·A·u_j.
	av := sym.MulDense(res.U)
	lambda := make([]float64, kPrime)
	for j := 0; j < kPrime; j++ {
		q := 0.0
		for i := 0; i < g.N; i++ {
			q += res.U.At(i, j) * av.At(i, j)
		}
		lambda[j] = q
	}
	// F(λ) per eigenpair; X = U·diag(F), Y = U.
	x := res.U.Clone()
	y := res.U.Clone()
	for j := 0; j < kPrime; j++ {
		f := 0.0
		pow := 1.0
		for _, w := range cfg.Weights {
			pow *= lambda[j]
			f += w * pow
		}
		// Split the magnitude across both sides to keep scales comparable,
		// carrying the sign on X.
		mag := math.Sqrt(math.Abs(f))
		sign := 1.0
		if f < 0 {
			sign = -1
		}
		for i := 0; i < g.N; i++ {
			x.Set(i, j, x.At(i, j)*mag*sign)
			y.Set(i, j, y.At(i, j)*mag)
		}
	}
	return &core.Embedding{X: x, Y: y}, nil
}

// symmetrized returns the undirected support of g's adjacency: A for
// undirected graphs, else max(A, Aᵀ) with unit weights.
func symmetrized(g *graph.Graph) *sparse.CSR {
	if !g.Directed {
		return g.Adj
	}
	entries := make([]sparse.Triple, 0, 2*g.Adj.NNZ())
	for u := 0; u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			entries = append(entries, sparse.Triple{Row: int32(u), Col: v, Val: 1})
			entries = append(entries, sparse.Triple{Row: v, Col: int32(u), Val: 1})
		}
	}
	sym, err := sparse.FromTriples(g.N, g.N, entries)
	if err != nil {
		// Entries are in range by construction.
		panic(fmt.Sprintf("baselines: symmetrize: %v", err))
	}
	// Clamp duplicate-summed entries back to unit weight.
	for i, v := range sym.Val {
		if v > 1 {
			sym.Val[i] = 1
		}
	}
	return sym
}
