package baselines

import (
	"fmt"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/graph"
)

// WalkConfig parameterizes the DeepWalk/node2vec family.
type WalkConfig struct {
	Dim       int     // embedding dimensionality k
	Walks     int     // walks per node γ (default 10)
	WalkLen   int     // walk length t (default 40)
	Window    int     // skip-gram window w (default 5)
	Negatives int     // negative samples per positive (default 5)
	LearnRate float64 // initial SGD step (default 0.025)
	P, Q      float64 // node2vec bias parameters (both 1 == DeepWalk)
	Seed      int64
}

func (c *WalkConfig) defaults() error {
	if c.Dim <= 0 {
		return fmt.Errorf("baselines: Dim must be positive, got %d", c.Dim)
	}
	if c.Walks == 0 {
		c.Walks = 10
	}
	if c.WalkLen == 0 {
		c.WalkLen = 40
	}
	if c.Window == 0 {
		c.Window = 5
	}
	if c.Negatives == 0 {
		c.Negatives = 5
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.025
	}
	if c.P == 0 {
		c.P = 1
	}
	if c.Q == 0 {
		c.Q = 1
	}
	return nil
}

// DeepWalk learns embeddings by skip-gram with negative sampling over
// uniform random walks (Perozzi et al., KDD'14).
func DeepWalk(g *graph.Graph, cfg WalkConfig) (*VectorEmbedding, error) {
	cfg.P, cfg.Q = 1, 1
	return walkSGNS(g, cfg, false)
}

// Node2Vec learns embeddings from second-order biased walks (Grover &
// Leskovec, KDD'16). P < 1 keeps walks local; Q < 1 pushes them outward.
func Node2Vec(g *graph.Graph, cfg WalkConfig) (*VectorEmbedding, error) {
	return walkSGNS(g, cfg, true)
}

func walkSGNS(g *graph.Graph, cfg WalkConfig, biased bool) (*VectorEmbedding, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := initEmbedding(g.N, cfg.Dim, rng)
	out := initEmbedding(g.N, cfg.Dim, rng)
	trainer := newSGNSTrainer(in, out, newNegTable(g), cfg.Negatives, cfg.LearnRate)
	trainer.setTotalSteps(g.N * cfg.Walks * cfg.WalkLen * cfg.Window)

	order := rng.Perm(g.N)
	buf := make([]int32, 0, cfg.WalkLen)
	for w := 0; w < cfg.Walks; w++ {
		for _, v := range order {
			if biased {
				buf = node2vecWalk(g, int32(v), cfg.WalkLen, cfg.P, cfg.Q, rng, buf)
			} else {
				buf = randomWalk(g, int32(v), cfg.WalkLen, rng, buf)
			}
			for i, center := range buf {
				lo := i - cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := i + cfg.Window
				if hi >= len(buf) {
					hi = len(buf) - 1
				}
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					trainer.Update(center, buf[j], rng)
				}
			}
		}
	}
	return &VectorEmbedding{Vecs: in}, nil
}
