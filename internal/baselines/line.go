package baselines

import (
	"fmt"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
)

// LINEConfig parameterizes LINE (Tang et al., WWW'15).
type LINEConfig struct {
	Dim       int     // total dimensionality (split across orders for Order=3)
	Order     int     // 1 = first-order, 2 = second-order, 3 = concatenation
	Samples   int     // edge samples per stored arc (default 200)
	Negatives int     // negatives per positive (default 5)
	LearnRate float64 // initial SGD step (default 0.025)
	Seed      int64
}

func (c *LINEConfig) defaults() error {
	if c.Dim <= 0 {
		return fmt.Errorf("baselines: Dim must be positive, got %d", c.Dim)
	}
	switch c.Order {
	case 0:
		c.Order = 2
	case 1, 2, 3:
	default:
		return fmt.Errorf("baselines: Order must be 1, 2 or 3, got %d", c.Order)
	}
	if c.Order == 3 && c.Dim%2 != 0 {
		return fmt.Errorf("baselines: Order=3 needs an even Dim, got %d", c.Dim)
	}
	if c.Samples == 0 {
		c.Samples = 200
	}
	if c.Negatives == 0 {
		c.Negatives = 5
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.025
	}
	return nil
}

// LINE learns embeddings by edge sampling with negative sampling. First
// order models σ(u·v) over undirected proximity (both endpoints in the same
// table); second order models σ(u·c_v) with a separate context table.
func LINE(g *graph.Graph, cfg LINEConfig) (*VectorEmbedding, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	switch cfg.Order {
	case 1, 2:
		return lineOrder(g, cfg, cfg.Order, cfg.Dim, cfg.Seed)
	default: // 3: concatenate first and second order halves
		half := cfg.Dim / 2
		first, err := lineOrder(g, cfg, 1, half, cfg.Seed)
		if err != nil {
			return nil, err
		}
		second, err := lineOrder(g, cfg, 2, half, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		vecs := matrix.NewDense(g.N, cfg.Dim)
		for v := 0; v < g.N; v++ {
			copy(vecs.Row(v)[:half], first.Vecs.Row(v))
			copy(vecs.Row(v)[half:], second.Vecs.Row(v))
		}
		return &VectorEmbedding{Vecs: vecs}, nil
	}
}

func lineOrder(g *graph.Graph, cfg LINEConfig, order, dim int, seed int64) (*VectorEmbedding, error) {
	rng := rand.New(rand.NewSource(seed))
	in := initEmbedding(g.N, dim, rng)
	out := in // first order shares the table
	if order == 2 {
		out = initEmbedding(g.N, dim, rng)
	}
	trainer := newSGNSTrainer(in, out, newNegTable(g), cfg.Negatives, cfg.LearnRate)
	total := cfg.Samples * g.Arcs()
	trainer.setTotalSteps(total)

	adj := g.Adj
	arcs := g.Arcs()
	if arcs == 0 {
		return nil, fmt.Errorf("baselines: LINE needs a non-empty graph")
	}
	// Arc index -> (u, v) via binary search on RowPtr.
	tailOf := func(p int) int32 {
		lo, hi := 0, g.N
		for lo < hi-1 {
			mid := (lo + hi) / 2
			if adj.RowPtr[mid] <= p {
				lo = mid
			} else {
				hi = mid
			}
		}
		return int32(lo)
	}
	for s := 0; s < total; s++ {
		p := rng.Intn(arcs)
		u := tailOf(p)
		v := adj.ColIdx[p]
		trainer.Update(u, v, rng)
	}
	return &VectorEmbedding{Vecs: in}, nil
}
