package baselines

import (
	"math"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
)

// negTable samples negative nodes proportionally to degree^0.75, the
// unigram-smoothed distribution of word2vec that DeepWalk, node2vec and
// LINE inherit.
type negTable struct {
	cum []float64
}

func newNegTable(g *graph.Graph) *negTable {
	cum := make([]float64, g.N)
	total := 0.0
	for v := 0; v < g.N; v++ {
		total += math.Pow(float64(g.OutDeg(v)+g.InDeg(v))+1, 0.75)
		cum[v] = total
	}
	return &negTable{cum: cum}
}

func (t *negTable) sample(rng *rand.Rand) int32 {
	x := rng.Float64() * t.cum[len(t.cum)-1]
	lo, hi := 0, len(t.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if t.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// sgnsTrainer performs skip-gram-with-negative-sampling updates on a pair
// of embedding tables: in-vectors (centers/sources) and out-vectors
// (contexts/targets). DeepWalk-family methods emit (center, context) pairs
// into Update; APP uses distinct source/target roles; VERSE shares one
// table for both sides.
type sgnsTrainer struct {
	in, out    *matrix.Dense
	neg        *negTable
	negatives  int
	lr         float64
	lr0        float64
	step       int
	decayEvery int
	gradIn     []float64
}

func newSGNSTrainer(in, out *matrix.Dense, neg *negTable, negatives int, lr float64) *sgnsTrainer {
	return &sgnsTrainer{
		in:         in,
		out:        out,
		neg:        neg,
		negatives:  negatives,
		lr:         lr,
		lr0:        lr,
		decayEvery: 10000,
		gradIn:     make([]float64, in.Cols),
	}
}

// setTotalSteps arranges a linear learning-rate decay to 10% of the initial
// rate over the expected number of Update calls.
func (t *sgnsTrainer) setTotalSteps(total int) {
	if total > 0 {
		t.decayEvery = total
	}
}

func sigmoidClipped(z float64) float64 {
	if z > 8 {
		return 1
	}
	if z < -8 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

// Update applies one positive (center, context) pair plus sampled
// negatives.
func (t *sgnsTrainer) Update(center, context int32, rng *rand.Rand) {
	t.step++
	if t.step%1000 == 0 {
		frac := float64(t.step) / float64(t.decayEvery)
		if frac > 0.9 {
			frac = 0.9
		}
		t.lr = t.lr0 * (1 - frac)
	}
	cin := t.in.Row(int(center))
	for i := range t.gradIn {
		t.gradIn[i] = 0
	}
	// Positive sample.
	t.pairStep(cin, t.out.Row(int(context)), 1)
	// Negative samples.
	for s := 0; s < t.negatives; s++ {
		nv := t.neg.sample(rng)
		if nv == context {
			continue
		}
		t.pairStep(cin, t.out.Row(int(nv)), 0)
	}
	matrix.Axpy(1, t.gradIn, cin)
}

// pairStep accumulates the center gradient and applies the context update
// for a single (positive or negative) pair.
func (t *sgnsTrainer) pairStep(cin, cout []float64, label float64) {
	g := (label - sigmoidClipped(matrix.Dot(cin, cout))) * t.lr
	for i, o := range cout {
		t.gradIn[i] += g * o
		cout[i] = o + g*cin[i]
	}
}
