package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/sparse"
	"github.com/nrp-embed/nrp/internal/svd"
)

// ProNEConfig parameterizes ProNE (Zhang et al., IJCAI'19): randomized
// factorization of the transition matrix followed by spectral propagation —
// a Chebyshev expansion of a Gaussian band-pass filter over the modulated
// normalized Laplacian. Defaults follow the reference implementation
// (order 10, µ = 0.2, θ = 0.5).
type ProNEConfig struct {
	Dim   int
	Order int     // Chebyshev expansion order (default 10)
	Mu    float64 // filter center modulation µ (default 0.2)
	Theta float64 // filter width θ (default 0.5)
	Seed  int64
}

func (c *ProNEConfig) defaults() error {
	if c.Dim <= 0 {
		return fmt.Errorf("baselines: ProNE Dim must be positive, got %d", c.Dim)
	}
	if c.Order == 0 {
		c.Order = 10
	}
	if c.Order < 2 {
		return fmt.Errorf("baselines: ProNE Order must be >= 2, got %d", c.Order)
	}
	if c.Mu == 0 {
		c.Mu = 0.2
	}
	if c.Theta == 0 {
		c.Theta = 0.5
	}
	return nil
}

// ProNE computes the two-stage ProNE embedding. Direction is ignored, as in
// the paper's protocol for undirected-only methods.
func ProNE(g *graph.Graph, cfg ProNEConfig) (*VectorEmbedding, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if cfg.Dim > g.N {
		return nil, fmt.Errorf("baselines: ProNE Dim %d exceeds n=%d", cfg.Dim, g.N)
	}
	// Stage 1: randomized factorization of the row-normalized adjacency.
	sym := symmetrized(g)
	deg := sym.RowSums()
	invDeg := make([]float64, g.N)
	for v, d := range deg {
		if d > 0 {
			invDeg[v] = 1 / d
		}
	}
	p := sym.ScaleRows(invDeg)
	res, err := svd.BKSVD(p, svd.Options{Rank: cfg.Dim, Epsilon: 0.2, Rng: rand.New(rand.NewSource(cfg.Seed))})
	if err != nil {
		return nil, err
	}
	r := res.U.Clone()
	for j, s := range res.S {
		scale := math.Sqrt(s)
		for i := 0; i < g.N; i++ {
			r.Set(i, j, r.At(i, j)*scale)
		}
	}

	// Stage 2: spectral propagation. Build the modulated normalized
	// Laplacian M = (L − µI) scaled into Chebyshev domain, then expand the
	// band-pass filter with Bessel-weighted Chebyshev terms:
	// conv = Σ_i c_i·T_i(M)·R with c_0 = I₀(θ), c_i = 2·(−1)^i·I_i(θ).
	lap, err := normalizedLaplacian(sym, deg)
	if err != nil {
		return nil, err
	}
	mulM := func(x *matrix.Dense) *matrix.Dense {
		// M·x = L·x − µ·x
		out := lap.MulDense(x)
		for i := range out.Data {
			out.Data[i] -= cfg.Mu * x.Data[i]
		}
		return out
	}
	t0 := r.Clone()
	t1 := mulM(r)
	conv := t0.Clone()
	conv.Scale(besselI(0, cfg.Theta))
	addScaled(conv, t1, -2*besselI(1, cfg.Theta))
	sign := 1.0
	for i := 2; i <= cfg.Order; i++ {
		// T_i = 2·M·T_{i-1} − T_{i-2}
		t2 := mulM(t1)
		t2.Scale(2)
		sub := t0
		for j := range t2.Data {
			t2.Data[j] -= sub.Data[j]
		}
		addScaled(conv, t2, 2*sign*besselI(i, cfg.Theta))
		sign = -sign
		t0, t1 = t1, t2
	}
	// Re-inject one hop of structure and re-factorize (U·√Σ), as the
	// reference implementation's final dense SVD does — keeping the
	// spectral scaling matters for inner-product ranking.
	prop := p.MulDense(conv)
	u, s, _ := matrix.SVD(prop)
	out := matrix.NewDense(g.N, cfg.Dim)
	for j := 0; j < cfg.Dim && j < len(s); j++ {
		scale := math.Sqrt(s[j])
		for i := 0; i < g.N; i++ {
			out.Set(i, j, u.At(i, j)*scale)
		}
	}
	return &VectorEmbedding{Vecs: out}, nil
}

// normalizedLaplacian returns L = I − D^{-1/2}·A·D^{-1/2} in CSR form.
func normalizedLaplacian(sym *sparse.CSR, deg []float64) (*sparse.CSR, error) {
	n := sym.Rows
	invSqrt := make([]float64, n)
	for v, d := range deg {
		if d > 0 {
			invSqrt[v] = 1 / math.Sqrt(d)
		}
	}
	entries := make([]sparse.Triple, 0, sym.NNZ()+n)
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Triple{Row: int32(i), Col: int32(i), Val: 1})
		for ptr := sym.RowPtr[i]; ptr < sym.RowPtr[i+1]; ptr++ {
			j := sym.ColIdx[ptr]
			entries = append(entries, sparse.Triple{
				Row: int32(i), Col: j,
				Val: -sym.Val[ptr] * invSqrt[i] * invSqrt[j],
			})
		}
	}
	return sparse.FromTriples(n, n, entries)
}

// besselI computes the modified Bessel function of the first kind I_n(x)
// by its power series — adequate for the small n, moderate x used here.
func besselI(n int, x float64) float64 {
	sum := 0.0
	half := x / 2
	term := 1.0
	// (x/2)^n / n!
	for k := 1; k <= n; k++ {
		term *= half / float64(k)
	}
	for m := 0; m < 60; m++ {
		sum += term
		term *= half * half / (float64(m+1) * float64(m+1+n))
		if term < 1e-18*sum {
			break
		}
	}
	return sum
}

func addScaled(dst, src *matrix.Dense, s float64) {
	for i := range dst.Data {
		dst.Data[i] += s * src.Data[i]
	}
}
