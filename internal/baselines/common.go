// Package baselines re-implements the competing network-embedding methods
// the paper evaluates NRP against, spanning its two scalable families:
//
//   - factorization-based: Spectral embedding, RandNE (iterative orthogonal
//     random projection), AROPE (arbitrary-order eigen reweighting) and
//     STRAP (forward-push PPR + transpose proximity + randomized SVD);
//   - random-walk-based: DeepWalk, node2vec, LINE, APP and VERSE, all built
//     on a shared skip-gram-with-negative-sampling (SGNS) trainer.
//
// Deep-neural baselines from the paper (DNGR, GraphGAN, …) are intentionally
// out of scope; see DESIGN.md §3.
package baselines

import (
	"math/rand"

	"github.com/nrp-embed/nrp/internal/matrix"
)

// VectorEmbedding is a single-vector-per-node embedding, the output format
// of DeepWalk, node2vec, LINE, VERSE, RandNE and Spectral. Scoring follows
// the paper's protocol for these methods: the inner product of the two
// endpoint vectors.
type VectorEmbedding struct {
	Vecs *matrix.Dense // n×k
}

// N reports the number of embedded nodes.
func (e *VectorEmbedding) N() int { return e.Vecs.Rows }

// Dim reports the embedding dimensionality.
func (e *VectorEmbedding) Dim() int { return e.Vecs.Cols }

// Score returns the inner product of the endpoint vectors.
func (e *VectorEmbedding) Score(u, v int) float64 {
	return matrix.Dot(e.Vecs.Row(u), e.Vecs.Row(v))
}

// Vector returns node v's embedding, aliasing internal storage.
func (e *VectorEmbedding) Vector(v int) []float64 { return e.Vecs.Row(v) }

// Features returns the L2-normalized embedding of v for classification.
func (e *VectorEmbedding) Features(v int) []float64 {
	out := append([]float64(nil), e.Vecs.Row(v)...)
	matrix.NormalizeRow(out)
	return out
}

// initEmbedding fills an n×k matrix with small uniform noise, the standard
// SGNS initialization.
func initEmbedding(n, k int, rng *rand.Rand) *matrix.Dense {
	m := matrix.NewDense(n, k)
	scale := 0.5 / float64(k)
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}
