package router

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/nrp-embed/nrp/internal/serve"
)

// HealthzResponse is the router's /v1/healthz body: fleet-level status
// plus one entry per shard. Status is "ok" when every shard is in
// rotation and "degraded" while any is out — load balancers should keep
// routing here either way (the router still answers), but alerting can
// key off the field or the nrp_router_degraded gauge.
type HealthzResponse struct {
	Status        string        `json:"status"`
	Nodes         int           `json:"nodes"`
	Backend       string        `json:"backend"`
	HealthyShards int           `json:"healthy_shards"`
	Shards        []ShardStatus `json:"shards"`
	UptimeSeconds float64       `json:"uptime_seconds"`
}

// ShardStatus is one shard's slice and rotation state.
type ShardStatus struct {
	URL     string `json:"url"`
	Index   int    `json:"index"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	Healthy bool   `json:"healthy"`
}

// Handler returns the router's route table wrapped in the metrics and
// logging middleware. The surface is the read-only subset of a shard
// server's: healthz, topk (GET and POST batch), score and metrics. The
// write and PPR endpoints do not exist here — a sharded fleet serves
// static snapshots.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", rt.handleHealthz)
	mux.HandleFunc("/v1/topk", rt.handleTopK)
	mux.HandleFunc("/v1/score", rt.handleScore)
	mux.Handle("/metrics", rt.metrics.reg.Handler())
	return rt.instrument(mux)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := HealthzResponse{
		Status:        "ok",
		Nodes:         rt.n,
		Backend:       rt.backend,
		Shards:        make([]ShardStatus, len(rt.shards)),
		UptimeSeconds: time.Since(rt.start).Seconds(),
	}
	for i, sh := range rt.shards {
		ok := sh.healthy.Load()
		if ok {
			resp.HealthyShards++
		}
		resp.Shards[i] = ShardStatus{
			URL: sh.url, Index: sh.info.Index, Lo: sh.info.Lo, Hi: sh.info.Hi, Healthy: ok,
		}
	}
	if resp.HealthyShards < len(rt.shards) {
		resp.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req serve.TopKRequest
	switch r.Method {
	case http.MethodGet:
		u, err := strconv.Atoi(r.URL.Query().Get("u"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "query parameter u must be an integer")
			return
		}
		req.U = &u
		req.K = 10
		if ks := r.URL.Query().Get("k"); ks != "" {
			if req.K, err = strconv.Atoi(ks); err != nil {
				writeError(w, http.StatusBadRequest, "query parameter k must be an integer")
				return
			}
		}
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
		return
	}

	var us []int
	switch {
	case req.U != nil && len(req.Us) > 0:
		writeError(w, http.StatusBadRequest, `set exactly one of "u" and "us"`)
		return
	case req.U != nil:
		us = []int{*req.U}
	case len(req.Us) > 0:
		us = req.Us
	default:
		writeError(w, http.StatusBadRequest, `set one of "u" and "us"`)
		return
	}
	if len(us) > rt.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d sources exceeds limit %d", len(us), rt.cfg.MaxBatch))
		return
	}
	if req.K > rt.cfg.MaxK {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("k=%d exceeds limit %d", req.K, rt.cfg.MaxK))
		return
	}

	resp, err := rt.topKMany(r.Context(), us, req.K)
	if err != nil {
		var se *shardError
		if errors.As(err, &se) {
			writeError(w, se.status, se.msg)
			return
		}
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	status, out, err := rt.forwardScore(r.Context(), body)
	if err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(out)
}

func readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("bad request body: %w", err)
	}
	return body, nil
}

// statusRecorder captures the response status for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// endpointLabel bounds the metric label space: unknown paths collapse
// into "other".
func endpointLabel(path string) string {
	switch path {
	case "/v1/healthz", "/v1/topk", "/v1/score":
		return strings.TrimPrefix(path, "/v1/")
	case "/metrics":
		return "metrics"
	default:
		return "other"
	}
}

// instrument wraps the route table with the in-flight gauge, latency
// histogram, request counter and one structured log line per call.
func (rt *Router) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		endpoint := endpointLabel(r.URL.Path)
		rec := &statusRecorder{ResponseWriter: w}
		rt.metrics.inflight.Inc()
		defer func() {
			rt.metrics.inflight.Dec()
			elapsed := time.Since(start)
			code := rec.status
			if code == 0 {
				code = http.StatusOK
			}
			rt.metrics.requests.With(endpoint, strconv.Itoa(code)).Inc()
			rt.metrics.latency.With(endpoint).Observe(elapsed.Seconds())
			if rt.cfg.Logger != nil {
				level := slog.LevelInfo
				if code >= 500 {
					level = slog.LevelError
				} else if code >= 400 {
					level = slog.LevelWarn
				}
				rt.cfg.Logger.Log(r.Context(), level, "request",
					"endpoint", endpoint, "method", r.Method, "status", code,
					"duration", elapsed, "healthy_shards", rt.healthyCount())
			}
		}()
		next.ServeHTTP(rec, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{msg})
}
