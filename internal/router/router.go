// Package router implements the scatter-gather layer of cmd/nrprouter: a
// stateless HTTP front for a fleet of nrpserve -shard i/N processes.
//
// Each shard serves top-k queries over one contiguous node-range slice of
// the same index snapshot. The router discovers the slices from the
// shards' /v1/healthz responses at boot, validates that they form a
// complete partition of [0, N), and then answers /v1/topk by fanning each
// query out to every healthy shard with the full k, merging the returned
// exact scores (score descending, node ascending — the backends' own
// order) and truncating to k. Because shard scores are exact float64 dot
// products and JSON round-trips them losslessly, the merged answer over
// healthy shards is bit-identical to a single unsharded server's for the
// exact and pruned backends, and rank-for-rank at least as good for the
// quantized backend (the union of per-slice shortlists is a superset of
// the global one).
//
// Failure handling: every shard call runs under a per-attempt timeout
// with one hedged retry — a second attempt fires when the first is slow
// (tail latency) or failed (transport error or 5xx). A shard that still
// fails is marked unhealthy (a background probe loop restores it) and
// the query degrades gracefully: the remaining shards' answers are
// merged and the response carries "partial": true, mirrored by the
// nrp_router_degraded gauge and nrp_router_partial_responses_total
// counter. Client errors (4xx) are authoritative — every shard would
// reject the same request the same way — and propagate immediately
// without retries.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nrp-embed/nrp/internal/serve"
)

// Config carries the router's deployment knobs.
type Config struct {
	// Shards are the base URLs of the shard servers, e.g.
	// ["http://10.0.0.1:8080", "http://10.0.0.2:8080"]. Order is
	// irrelevant; slices are discovered from /v1/healthz.
	Shards []string
	// Timeout bounds each individual shard request attempt (default 2s).
	Timeout time.Duration
	// HedgeAfter is how long to wait on a shard attempt before launching
	// a second, racing attempt (default Timeout/4; negative disables
	// hedging). Whichever attempt answers first wins.
	HedgeAfter time.Duration
	// HealthInterval is the period of the background shard health probe
	// (default 2s). A probe both restores shards marked unhealthy by
	// failed queries and retires shards that stopped answering.
	HealthInterval time.Duration
	// BootTimeout bounds how long New waits for all shards to come up and
	// advertise their slices (default 30s).
	BootTimeout time.Duration
	// MaxK and MaxBatch mirror the shard servers' request caps (defaults
	// 1000 and 1024): oversized requests are rejected at the router
	// before any fan-out.
	MaxK     int
	MaxBatch int
	// Logger, when non-nil, receives one structured line per request plus
	// shard-failure and health-transition events. Nil keeps the router
	// quiet — the default in tests.
	Logger *slog.Logger
	// Client overrides the HTTP client used for shard calls (tests). The
	// default is a dedicated client with sane connection pooling; the
	// per-attempt Timeout is applied via request contexts either way.
	Client *http.Client
}

const (
	defaultTimeout        = 2 * time.Second
	defaultHealthInterval = 2 * time.Second
	defaultBootTimeout    = 30 * time.Second
)

// shard is one backend process and its discovered slice.
type shard struct {
	url     string
	info    serve.ShardInfo
	healthy atomic.Bool
}

// Router scatter-gathers /v1/topk across a validated shard fleet.
type Router struct {
	cfg     Config
	client  *http.Client
	shards  []*shard // sorted by slice index
	n       int      // total nodes, from the shards' healthz
	backend string   // backend label, from the shards' healthz
	metrics *Metrics
	rr      atomic.Uint64 // round-robin cursor for /v1/score forwarding
	start   time.Time
}

// New probes every configured shard, validates that their advertised
// slices form a complete partition of the node space, and returns a
// Router ready to serve. It retries unreachable shards until BootTimeout
// so the fleet may come up in any order.
func New(ctx context.Context, cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: no shard URLs configured")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultTimeout
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = cfg.Timeout / 4
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = defaultHealthInterval
	}
	if cfg.BootTimeout <= 0 {
		cfg.BootTimeout = defaultBootTimeout
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 1000
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	rt := &Router{cfg: cfg, client: cfg.Client, start: time.Now()}
	if rt.client == nil {
		rt.client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if err := rt.discover(ctx); err != nil {
		return nil, err
	}
	rt.metrics = newMetrics(rt)
	return rt, nil
}

// discover collects every shard's healthz until all answer (or
// BootTimeout), then validates the partition.
func (rt *Router) discover(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.BootTimeout)
	defer cancel()
	shards := make([]*shard, len(rt.cfg.Shards))
	var lastErr error
	for {
		pending := 0
		for i, url := range rt.cfg.Shards {
			if shards[i] != nil {
				continue
			}
			hz, err := rt.probe(ctx, url)
			if err != nil {
				pending++
				lastErr = fmt.Errorf("shard %s: %w", url, err)
				continue
			}
			sh := &shard{url: url}
			if hz.Shard != nil {
				sh.info = *hz.Shard
			} else {
				// An unsharded server is a valid 1-shard fleet: it covers
				// the whole node space.
				sh.info = serve.ShardInfo{Index: 0, Count: 1, Lo: 0, Hi: hz.Nodes}
			}
			sh.healthy.Store(true)
			rt.n = hz.Nodes
			rt.backend = hz.Backend
			shards[i] = sh
		}
		if pending == 0 {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("router: %d shard(s) unreachable at boot: %w", pending, lastErr)
		case <-time.After(200 * time.Millisecond):
		}
	}
	return rt.validatePartition(shards)
}

// validatePartition checks that the discovered slices are exactly the
// ShardRange partition of [0, n): one shard per index, contiguous,
// covering, all over the same snapshot. Anything else is a deployment
// error worth failing loudly at boot instead of silently mis-merging.
func (rt *Router) validatePartition(shards []*shard) error {
	sort.Slice(shards, func(i, j int) bool { return shards[i].info.Index < shards[j].info.Index })
	next := 0
	for i, sh := range shards {
		in := sh.info
		if in.Count != len(shards) {
			return fmt.Errorf("router: shard %s advertises count %d, fleet has %d", sh.url, in.Count, len(shards))
		}
		if in.Index != i {
			return fmt.Errorf("router: shard index %d missing or duplicated (got %d from %s)", i, in.Index, sh.url)
		}
		if in.Lo != next || in.Hi < in.Lo || in.Hi > rt.n {
			return fmt.Errorf("router: shard %s slice [%d,%d) does not continue the partition at %d", sh.url, in.Lo, in.Hi, next)
		}
		next = in.Hi
	}
	if next != rt.n {
		return fmt.Errorf("router: shard slices cover [0,%d), index has %d nodes", next, rt.n)
	}
	rt.shards = shards
	return nil
}

// probe fetches one shard's healthz under the per-attempt timeout.
func (rt *Router) probe(ctx context.Context, url string) (*serve.HealthzResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	var hz serve.HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		return nil, err
	}
	return &hz, nil
}

// Run drives the background health loop until ctx is cancelled: each
// tick re-probes every shard, restoring ones that failed queries and
// retiring ones that stopped answering. cmd/nrprouter runs it alongside
// the HTTP server.
func (rt *Router) Run(ctx context.Context) {
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.checkHealth(ctx)
		}
	}
}

// checkHealth probes every shard once, concurrently.
func (rt *Router) checkHealth(ctx context.Context) {
	var wg sync.WaitGroup
	for _, sh := range rt.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			hz, err := rt.probe(ctx, sh.url)
			// A shard that answers but advertises a different slice (e.g.
			// restarted with the wrong flags) must not rejoin: its answers
			// would silently corrupt the merge.
			ok := err == nil && hz.Shard != nil && *hz.Shard == sh.info ||
				err == nil && hz.Shard == nil && sh.info.Count == 1
			if sh.healthy.CompareAndSwap(!ok, ok) && rt.cfg.Logger != nil {
				rt.cfg.Logger.Info("shard health changed", "shard", sh.url, "healthy", ok, "err", err)
			}
		}(sh)
	}
	wg.Wait()
}

// healthyCount returns how many shards are currently in the rotation.
func (rt *Router) healthyCount() int {
	c := 0
	for _, sh := range rt.shards {
		if sh.healthy.Load() {
			c++
		}
	}
	return c
}

// shardError is a shard's authoritative client-error answer (4xx):
// every shard validates identically, so the first one speaks for the
// fleet and the router forwards its status and message verbatim.
type shardError struct {
	status int
	msg    string
}

func (e *shardError) Error() string { return e.msg }

// fetchTopK runs one shard's /v1/topk call with per-attempt timeouts,
// hedging and one retry. body is the already-encoded request JSON.
func (rt *Router) fetchTopK(ctx context.Context, sh *shard, body []byte) (*serve.TopKResponse, error) {
	label := strconv.Itoa(sh.info.Index)
	type outcome struct {
		resp *serve.TopKResponse
		err  error
	}
	resc := make(chan outcome, 2)
	attempt := func() {
		start := time.Now()
		resp, err := rt.doTopK(ctx, sh, body)
		rt.metrics.shardLatency.With(label).Observe(time.Since(start).Seconds())
		resc <- outcome{resp, err}
	}
	go attempt()
	launched, failed := 1, 0
	var hedge <-chan time.Time
	if rt.cfg.HedgeAfter > 0 {
		hedge = time.After(rt.cfg.HedgeAfter)
	}
	for {
		select {
		case out := <-resc:
			if out.err == nil {
				return out.resp, nil
			}
			var se *shardError
			if errors.As(out.err, &se) {
				return nil, out.err // authoritative 4xx: retrying cannot help
			}
			rt.metrics.shardErrors.With(label).Inc()
			failed++
			if launched < 2 {
				// Fast failure: retry immediately rather than waiting for
				// the hedge timer.
				launched++
				go attempt()
				continue
			}
			if failed == launched {
				return nil, out.err
			}
		case <-hedge:
			hedge = nil
			if launched < 2 {
				launched++
				rt.metrics.hedges.With(label).Inc()
				go attempt()
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// doTopK is a single shard request attempt.
func (rt *Router) doTopK(ctx context.Context, sh *shard, body []byte) (*serve.TopKResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, sh.url+"/v1/topk", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg := readErrorMessage(resp.Body)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return nil, &shardError{status: resp.StatusCode, msg: msg}
		}
		return nil, fmt.Errorf("shard %s: status %d: %s", sh.url, resp.StatusCode, msg)
	}
	var tk serve.TopKResponse
	if err := json.NewDecoder(resp.Body).Decode(&tk); err != nil {
		return nil, fmt.Errorf("shard %s: bad response: %w", sh.url, err)
	}
	return &tk, nil
}

func readErrorMessage(r io.Reader) string {
	var er struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(r, 1<<16)).Decode(&er); err == nil && er.Error != "" {
		return er.Error
	}
	return "unreadable error body"
}

// topKMany scatter-gathers one (possibly batched) top-k query. The
// returned response is complete when every shard answered; otherwise it
// merges what arrived and sets Partial. An error is returned only when
// no shard produced an answer, or a shard rejected the request as
// malformed (shardError, forwarded verbatim).
func (rt *Router) topKMany(ctx context.Context, us []int, k int) (*serve.TopKResponse, error) {
	body, err := json.Marshal(serve.TopKRequest{Us: us, K: k})
	if err != nil {
		return nil, err
	}
	type gathered struct {
		resp *serve.TopKResponse
		err  error
	}
	results := make([]gathered, len(rt.shards))
	skipped := 0
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		if !sh.healthy.Load() {
			skipped++
			results[i].err = fmt.Errorf("shard %s: out of rotation", sh.url)
			continue
		}
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			resp, err := rt.fetchTopK(ctx, sh, body)
			if err != nil {
				var se *shardError
				if !errors.As(err, &se) {
					// Transport-level failure after retry: pull the shard
					// out of rotation until the health loop clears it.
					sh.healthy.Store(false)
					if rt.cfg.Logger != nil {
						rt.cfg.Logger.Warn("shard failed, marked unhealthy", "shard", sh.url, "err", err)
					}
				}
			}
			results[i] = gathered{resp, err}
		}(i, sh)
	}
	wg.Wait()

	answered := 0
	var lastErr error
	for i, g := range results {
		if g.err == nil && len(g.resp.Results) != len(us) {
			// A malformed shard answer must degrade the query, not panic
			// the merge.
			g.err = fmt.Errorf("shard %s: %d results for %d sources", rt.shards[i].url, len(g.resp.Results), len(us))
			results[i] = g
		}
		switch {
		case g.err == nil:
			answered++
		default:
			var se *shardError
			if errors.As(g.err, &se) {
				return nil, g.err
			}
			lastErr = g.err
		}
	}
	if answered == 0 {
		if lastErr == nil {
			lastErr = errors.New("no healthy shards")
		}
		return nil, fmt.Errorf("router: no shard answered: %w", lastErr)
	}

	// Merge per source: concatenate the shards' neighbor lists — each
	// already sorted by (score desc, node asc) over disjoint node ranges —
	// re-sort by the same rule and keep the global top k. Scores are the
	// shards' exact float64 values round-tripped through JSON, so on a
	// fully-answered query this reproduces the single-node result.
	resp := &serve.TopKResponse{K: k, Partial: answered < len(rt.shards)}
	resp.Results = make([]serve.ResultJSON, len(us))
	for qi, u := range us {
		merged := make([]serve.NeighborJSON, 0, k*answered)
		for _, g := range results {
			if g.err != nil {
				continue
			}
			merged = append(merged, g.resp.Results[qi].Neighbors...)
		}
		sort.Slice(merged, func(a, b int) bool {
			if merged[a].Score != merged[b].Score {
				return merged[a].Score > merged[b].Score
			}
			return merged[a].Node < merged[b].Node
		})
		if len(merged) > k {
			merged = merged[:k]
		}
		resp.Results[qi] = serve.ResultJSON{U: u, Neighbors: merged}
	}
	if resp.Partial {
		rt.metrics.partials.Inc()
	}
	return resp, nil
}

// forwardScore proxies /v1/score to one healthy shard: scores are global
// exact dot products (every shard loads the full embedding), so any
// shard answers authoritatively. Round-robin spreads the load; on
// transport failure the next healthy shard is tried.
func (rt *Router) forwardScore(ctx context.Context, body []byte) (int, []byte, error) {
	tried := 0
	for tried < len(rt.shards) {
		sh := rt.shards[int(rt.rr.Add(1))%len(rt.shards)]
		if !sh.healthy.Load() {
			tried++
			continue
		}
		status, out, err := rt.doScore(ctx, sh, body)
		if err == nil {
			return status, out, nil
		}
		rt.metrics.shardErrors.With(strconv.Itoa(sh.info.Index)).Inc()
		sh.healthy.Store(false)
		tried++
	}
	return 0, nil, errors.New("router: no healthy shard for /v1/score")
}

func (rt *Router) doScore(ctx context.Context, sh *shard, body []byte) (int, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, sh.url+"/v1/score", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := rt.client.Do(req)
	rt.metrics.shardLatency.With(strconv.Itoa(sh.info.Index)).Observe(time.Since(start).Seconds())
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		return 0, nil, fmt.Errorf("shard %s: status %d", sh.url, resp.StatusCode)
	}
	out, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}
