package router

import (
	"strconv"
	"time"

	"github.com/nrp-embed/nrp/internal/telemetry"
)

// Metrics is the router's telemetry surface, exposed at GET /metrics.
// Shard-level families are labelled by slice index — a small, bounded
// label space fixed at boot — with URLs confined to log lines.
type Metrics struct {
	reg *telemetry.Registry

	requests *telemetry.CounterVec   // nrp_router_requests_total{endpoint,code}
	latency  *telemetry.HistogramVec // nrp_router_request_duration_seconds{endpoint}
	inflight *telemetry.Gauge        // nrp_router_inflight_requests

	shardLatency *telemetry.HistogramVec // nrp_router_shard_request_duration_seconds{shard}
	shardErrors  *telemetry.CounterVec   // nrp_router_shard_errors_total{shard}
	hedges       *telemetry.CounterVec   // nrp_router_hedged_requests_total{shard}
	partials     *telemetry.Counter      // nrp_router_partial_responses_total
}

func newMetrics(rt *Router) *Metrics {
	reg := telemetry.NewRegistry()
	m := &Metrics{
		reg: reg,
		requests: reg.CounterVec("nrp_router_requests_total",
			"Router HTTP requests by endpoint and status code.", "endpoint", "code"),
		latency: reg.HistogramVec("nrp_router_request_duration_seconds",
			"Router request latency in seconds by endpoint.", telemetry.DefBuckets, "endpoint"),
		inflight: reg.Gauge("nrp_router_inflight_requests",
			"Requests currently being routed."),
		shardLatency: reg.HistogramVec("nrp_router_shard_request_duration_seconds",
			"Per-attempt shard call latency in seconds by shard index.", telemetry.DefBuckets, "shard"),
		shardErrors: reg.CounterVec("nrp_router_shard_errors_total",
			"Failed shard call attempts (transport errors and 5xx) by shard index.", "shard"),
		hedges: reg.CounterVec("nrp_router_hedged_requests_total",
			"Hedged second attempts launched because the first was slow, by shard index.", "shard"),
		partials: reg.Counter("nrp_router_partial_responses_total",
			"Top-k responses served from a subset of shards (partial=true)."),
	}
	reg.GaugeFunc("nrp_router_degraded",
		"Number of shards currently out of rotation (0 = fully healthy).",
		func() float64 { return float64(len(rt.shards) - rt.healthyCount()) })
	reg.GaugeFunc("nrp_router_healthy_shards",
		"Shards currently in the query rotation.",
		func() float64 { return float64(rt.healthyCount()) })
	reg.ConstGauge("nrp_router_info",
		"Router fleet metadata; value is always 1.",
		[]string{"shards", "backend"},
		[]string{strconv.Itoa(len(rt.shards)), rt.backend})
	reg.GaugeFunc("nrp_router_uptime_seconds", "Seconds since the router started.",
		func() float64 { return time.Since(rt.start).Seconds() })
	reg.GaugeFunc("nrp_router_index_nodes", "Nodes covered by the shard fleet.",
		func() float64 { return float64(rt.n) })
	return m
}

// Registry exposes the underlying registry so cmd/nrprouter can add
// process-level metrics to the same /metrics page.
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }
