package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/serve"
)

func testEmbedding(t *testing.T, n int) *nrp.Embedding {
	t.Helper()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: n, M: 6 * n, Communities: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 16
	emb, _, err := nrp.EmbedCtx(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return emb
}

// flaky wraps a shard handler with a kill switch so tests can take a
// shard down (every request answers 500) and bring it back, without the
// port churn of restarting the httptest server. stall holds nanoseconds
// of delay consumed by the next /v1/topk call — the hedging test's slow
// first attempt.
type flaky struct {
	down  atomic.Bool
	stall atomic.Int64
	next  http.Handler
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		http.Error(w, `{"error":"shard down"}`, http.StatusInternalServerError)
		return
	}
	if r.URL.Path == "/v1/topk" {
		if d := f.stall.Swap(0); d > 0 {
			time.Sleep(time.Duration(d))
		}
	}
	f.next.ServeHTTP(w, r)
}

// startFleet boots count shard servers over slice-restricted searchers
// plus one unsharded reference server, all from the same embedding.
func startFleet(t *testing.T, emb *nrp.Embedding, backend nrp.Backend, count int) (urls []string, flakies []*flaky, ref *httptest.Server) {
	t.Helper()
	label := backend.String()
	for i := 0; i < count; i++ {
		s, err := nrp.BuildIndex(emb, nrp.WithBackend(backend), nrp.WithShardSlice(i, count))
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := nrp.ShardRange(emb.N(), i, count)
		sv := serve.NewServer(s, serve.Config{
			Backend: label,
			Shard:   &serve.ShardInfo{Index: i, Count: count, Lo: lo, Hi: hi},
		})
		fl := &flaky{next: sv.Handler()}
		ts := httptest.NewServer(fl)
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
		flakies = append(flakies, fl)
	}
	full, err := nrp.BuildIndex(emb, nrp.WithBackend(backend))
	if err != nil {
		t.Fatal(err)
	}
	ref = httptest.NewServer(serve.NewServer(full, serve.Config{Backend: label}).Handler())
	t.Cleanup(ref.Close)
	return urls, flakies, ref
}

func newTestRouter(t *testing.T, urls []string, mutate func(*Config)) *Router {
	t.Helper()
	cfg := Config{
		Shards:         urls,
		Timeout:        2 * time.Second,
		HedgeAfter:     -1, // deterministic single attempts unless a test opts in
		HealthInterval: 50 * time.Millisecond,
		BootTimeout:    5 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func getTopK(t *testing.T, base string, query string) (*serve.TopKResponse, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/topk?" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tk serve.TopKResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&tk); err != nil {
			t.Fatal(err)
		}
	}
	return &tk, resp.StatusCode
}

func postTopK(t *testing.T, base, body string) (*serve.TopKResponse, int) {
	t.Helper()
	resp, err := http.Post(base+"/v1/topk", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tk serve.TopKResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&tk); err != nil {
			t.Fatal(err)
		}
	}
	return &tk, resp.StatusCode
}

// TestScatterGatherBitMatch is the acceptance property of the tentpole:
// for the exact-result backends, the router's merged answers over a
// healthy fleet are bit-identical (same nodes, same float64 scores after
// the same JSON round-trip) to a single unsharded server's — for GET
// single-source and POST batched queries alike.
func TestScatterGatherBitMatch(t *testing.T) {
	emb := testEmbedding(t, 130)
	for _, backend := range []nrp.Backend{nrp.BackendExact, nrp.BackendPruned} {
		for _, count := range []int{2, 3, 5} {
			urls, _, ref := startFleet(t, emb, backend, count)
			rt := newTestRouter(t, urls, nil)
			rts := httptest.NewServer(rt.Handler())

			for _, q := range []string{"u=0&k=1", "u=7&k=10", "u=129&k=200"} {
				got, code := getTopK(t, rts.URL, q)
				want, wantCode := getTopK(t, ref.URL, q)
				if code != wantCode || code != http.StatusOK {
					t.Fatalf("%v/%d %s: status %d want %d", backend, count, q, code, wantCode)
				}
				if got.Partial {
					t.Fatalf("%v/%d %s: healthy fleet answered partial", backend, count, q)
				}
				if !reflect.DeepEqual(got.Results, want.Results) {
					t.Fatalf("%v/%d %s:\nrouter %+v\nsingle %+v", backend, count, q, got.Results, want.Results)
				}
			}

			body := `{"us":[3,50,101,7],"k":12}`
			got, _ := postTopK(t, rts.URL, body)
			want, _ := postTopK(t, ref.URL, body)
			if !reflect.DeepEqual(got.Results, want.Results) {
				t.Fatalf("%v/%d batch:\nrouter %+v\nsingle %+v", backend, count, got.Results, want.Results)
			}
			rts.Close()
		}
	}
}

// TestQuantizedDominance: the quantized backend's merged shortlists are
// a superset of the single-node shortlist, so per-rank exact scores can
// only improve through the router.
func TestQuantizedDominance(t *testing.T) {
	emb := testEmbedding(t, 130)
	urls, _, ref := startFleet(t, emb, nrp.BackendQuantized, 3)
	rt := newTestRouter(t, urls, nil)
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	for _, u := range []int{0, 42, 129} {
		q := fmt.Sprintf("u=%d&k=10", u)
		got, _ := getTopK(t, rts.URL, q)
		want, _ := getTopK(t, ref.URL, q)
		g, w := got.Results[0].Neighbors, want.Results[0].Neighbors
		if len(g) != len(w) {
			t.Fatalf("u=%d: router %d results, single %d", u, len(g), len(w))
		}
		for r := range g {
			if g[r].Score < w[r].Score {
				t.Fatalf("u=%d rank %d: router %g below single-node %g", u, r, g[r].Score, w[r].Score)
			}
		}
	}
}

// TestDegradation is the second acceptance property: with one shard
// down the router still answers 200, flags the response partial, keeps
// the surviving shards' results correct, reports a degraded fleet — and
// heals back to complete answers once the shard returns.
func TestDegradation(t *testing.T) {
	emb := testEmbedding(t, 130)
	urls, flakies, _ := startFleet(t, emb, nrp.BackendExact, 3)
	rt := newTestRouter(t, urls, nil)
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	flakies[1].down.Store(true)
	lo, hi := nrp.ShardRange(emb.N(), 1, 3)

	got, code := getTopK(t, rts.URL, "u=7&k=120")
	if code != http.StatusOK {
		t.Fatalf("degraded query status %d, want 200", code)
	}
	if !got.Partial {
		t.Fatal("one shard down: response not flagged partial")
	}
	for _, nb := range got.Results[0].Neighbors {
		if nb.Node >= lo && nb.Node < hi && nb.Node != 7 {
			t.Fatalf("dead shard's node %d in merged answer", nb.Node)
		}
	}

	// The fleet health surfaces everywhere an operator would look.
	resp, err := http.Get(rts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "degraded" || hz.HealthyShards != 2 {
		t.Fatalf("healthz %+v, want degraded with 2 healthy", hz)
	}
	page := rt.metrics.reg.String()
	if !strings.Contains(page, "nrp_router_degraded 1") {
		t.Fatalf("metrics page missing nrp_router_degraded 1:\n%s", page)
	}
	if !strings.Contains(page, "nrp_router_partial_responses_total 1") {
		t.Fatalf("metrics page missing partial counter:\n%s", page)
	}

	// Recovery: probe loop brings the shard back, answers are whole again.
	flakies[1].down.Store(false)
	rt.checkHealth(context.Background())
	got, _ = getTopK(t, rts.URL, "u=7&k=120")
	if got.Partial {
		t.Fatal("recovered fleet still answering partial")
	}
	found := false
	for _, nb := range got.Results[0].Neighbors {
		if nb.Node >= lo && nb.Node < hi {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("recovered shard's slice absent from merged answer")
	}
}

// TestAllShardsDown: with nothing to merge the router fails the query
// rather than fabricating an empty 200.
func TestAllShardsDown(t *testing.T) {
	emb := testEmbedding(t, 60)
	urls, flakies, _ := startFleet(t, emb, nrp.BackendExact, 2)
	rt := newTestRouter(t, urls, nil)
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	for _, fl := range flakies {
		fl.down.Store(true)
	}
	_, code := getTopK(t, rts.URL, "u=0&k=5")
	if code != http.StatusBadGateway {
		t.Fatalf("all shards down: status %d, want 502", code)
	}
}

// TestClientErrorPropagation: 4xx answers are authoritative — the shard
// fleet validates identically, so the router forwards status and message
// without marking anything unhealthy.
func TestClientErrorPropagation(t *testing.T) {
	emb := testEmbedding(t, 60)
	urls, _, _ := startFleet(t, emb, nrp.BackendExact, 2)
	rt := newTestRouter(t, urls, nil)
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	for q, want := range map[string]int{
		"u=999999&k=5": http.StatusBadRequest, // node out of range
		"u=0&k=-2":     http.StatusBadRequest, // invalid k
		"u=abc":        http.StatusBadRequest, // rejected at the router
	} {
		if _, code := getTopK(t, rts.URL, q); code != want {
			t.Fatalf("%s: status %d, want %d", q, code, want)
		}
	}
	if rt.healthyCount() != 2 {
		t.Fatal("client errors must not eject shards from rotation")
	}
}

// TestBootValidation: a fleet whose slices do not partition the node
// space is a deployment error rejected at boot.
func TestBootValidation(t *testing.T) {
	emb := testEmbedding(t, 60)

	// Two servers both claiming slice 0/2: index 1 is missing.
	s, err := nrp.BuildIndex(emb, nrp.WithShardSlice(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := nrp.ShardRange(emb.N(), 0, 2)
	mk := func() *httptest.Server {
		sv := serve.NewServer(s, serve.Config{
			Backend: "exact",
			Shard:   &serve.ShardInfo{Index: 0, Count: 2, Lo: lo, Hi: hi},
		})
		ts := httptest.NewServer(sv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	a, b := mk(), mk()
	_, err = New(context.Background(), Config{
		Shards:      []string{a.URL, b.URL},
		BootTimeout: 2 * time.Second,
	})
	if err == nil {
		t.Fatal("duplicate slice fleet accepted")
	}

	// A shard URL that never answers fails boot at the timeout.
	_, err = New(context.Background(), Config{
		Shards:      []string{a.URL, "http://127.0.0.1:1"},
		BootTimeout: 300 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("unreachable shard accepted at boot")
	}

	// A single unsharded server is a valid 1-shard fleet.
	full, err := nrp.BuildIndex(emb)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(full, serve.Config{Backend: "exact"}).Handler())
	t.Cleanup(ts.Close)
	if _, err := New(context.Background(), Config{Shards: []string{ts.URL}}); err != nil {
		t.Fatalf("unsharded single server rejected: %v", err)
	}
}

// TestHedging: a shard whose first attempt stalls past the hedge delay
// gets a racing second attempt; the query still answers correctly and
// the hedge counter records it.
func TestHedging(t *testing.T) {
	emb := testEmbedding(t, 60)
	urls, flakies, ref := startFleet(t, emb, nrp.BackendExact, 2)

	rt := newTestRouter(t, urls, func(c *Config) {
		c.HedgeAfter = 20 * time.Millisecond
	})
	// Stall the next /v1/topk attempt on shard 0 past the hedge delay.
	flakies[0].stall.Store(int64(400 * time.Millisecond))
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	got, code := getTopK(t, rts.URL, "u=3&k=8")
	want, _ := getTopK(t, ref.URL, "u=3&k=8")
	if code != http.StatusOK || got.Partial {
		t.Fatalf("hedged query: status %d partial %v", code, got.Partial)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatalf("hedged answer differs:\nrouter %+v\nsingle %+v", got.Results, want.Results)
	}
	if !strings.Contains(rt.metrics.reg.String(), `nrp_router_hedged_requests_total{shard="0"} 1`) {
		t.Fatalf("hedge not recorded:\n%s", rt.metrics.reg.String())
	}
}

// TestScoreForwarding: /v1/score answers are global (every shard loads
// the full embedding), so the router proxies them to any healthy shard
// and survives individual shard failures.
func TestScoreForwarding(t *testing.T) {
	emb := testEmbedding(t, 60)
	urls, flakies, ref := startFleet(t, emb, nrp.BackendExact, 3)
	rt := newTestRouter(t, urls, nil)
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	flakies[0].down.Store(true)
	body := `{"pairs":[[0,1],[5,9],[59,0]]}`
	resp, err := http.Post(rts.URL+"/v1/score", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var got serve.ScoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score status %d", resp.StatusCode)
	}
	resp, err = http.Post(ref.URL+"/v1/score", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var want serve.ScoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("score through router %v, single-node %v", got, want)
	}
}

// TestQueryDuringShardRestart hammers the router with concurrent queries
// while one shard flaps down and up and the health loop runs at full
// tilt — under -race this is the concurrency soundness check for the
// shard state machine. Every response must be a decodable 200 (complete
// or partial); nothing may wedge or data-race.
func TestQueryDuringShardRestart(t *testing.T) {
	emb := testEmbedding(t, 90)
	urls, flakies, _ := startFleet(t, emb, nrp.BackendExact, 3)
	rt := newTestRouter(t, urls, func(c *Config) {
		c.HedgeAfter = 5 * time.Millisecond
		c.HealthInterval = 10 * time.Millisecond
	})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var loops sync.WaitGroup
	loops.Add(1)
	go func() { defer loops.Done(); rt.Run(ctx) }()
	loops.Add(1)
	go func() {
		defer loops.Done()
		for i := 0; ctx.Err() == nil; i++ {
			flakies[1].down.Store(i%2 == 0)
			time.Sleep(7 * time.Millisecond)
		}
		flakies[1].down.Store(false)
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				u := (w*37 + i*11) % emb.N()
				resp, err := http.Get(fmt.Sprintf("%s/v1/topk?u=%d&k=9", rts.URL, u))
				if err != nil {
					t.Errorf("query %d/%d: %v", w, i, err)
					return
				}
				var got serve.TopKResponse
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || err != nil {
					t.Errorf("query %d/%d: status %d err %v", w, i, resp.StatusCode, err)
					return
				}
				if len(got.Results) != 1 || got.Results[0].U != u {
					t.Errorf("query %d/%d: malformed response %+v", w, i, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	cancel()
	loops.Wait()
}
