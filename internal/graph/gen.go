package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// GenErdosRenyi generates a G(n, m) Erdős–Rényi graph with exactly m
// distinct edges (no self-loops, no duplicates), as used by the paper's
// scalability tests (Fig 10).
func GenErdosRenyi(n, m int, directed bool, seed int64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: GenErdosRenyi needs n >= 2, got %d", n)
	}
	maxEdges := int64(n) * int64(n-1)
	if !directed {
		maxEdges /= 2
	}
	if int64(m) > maxEdges {
		return nil, fmt.Errorf("graph: m=%d exceeds maximum %d for n=%d", m, maxEdges, n)
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[int64]struct{}, m)
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		a, b := u, v
		if !directed && a > b {
			a, b = b, a
		}
		key := int64(a)*int64(n) + int64(b)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, Edge{U: u, V: v})
	}
	return New(n, edges, directed)
}

// SBMConfig parameterizes the degree-skewed stochastic block model used as
// the synthetic stand-in for the paper's labeled social networks (Wiki,
// BlogCatalog, Youtube, TWeibo, Orkut, …). Nodes get Chung–Lu style
// power-law weights so degree distributions are heavy-tailed, and edges
// fall inside a node's community with probability IntraFrac, giving the
// multi-hop cluster structure that link prediction, reconstruction and
// classification all rely on.
type SBMConfig struct {
	N           int     // number of nodes
	M           int     // number of edges to sample
	Communities int     // number of communities == label classes
	Directed    bool    // edge semantics
	IntraFrac   float64 // fraction of edges inside a community (default 0.8)
	Skew        float64 // Chung–Lu weight exponent γ, w_i ∝ (rank+10)^-γ (default 0.6)
	MultiLabel  float64 // probability a node carries one extra label (default 0.2)
	Seed        int64
}

func (c *SBMConfig) defaults() {
	if c.IntraFrac == 0 {
		c.IntraFrac = 0.8
	}
	if c.Skew == 0 {
		c.Skew = 0.6
	}
	if c.MultiLabel == 0 {
		c.MultiLabel = 0.2
	}
	if c.Communities == 0 {
		c.Communities = 10
	}
}

// weightedSampler draws indices proportionally to fixed weights by binary
// search over the cumulative sum.
type weightedSampler struct {
	cum   []float64
	items []int32
}

func newWeightedSampler(items []int32, weight func(int32) float64) *weightedSampler {
	cum := make([]float64, len(items))
	total := 0.0
	for i, it := range items {
		total += weight(it)
		cum[i] = total
	}
	return &weightedSampler{cum: cum, items: items}
}

func (s *weightedSampler) sample(rng *rand.Rand) int32 {
	total := s.cum[len(s.cum)-1]
	x := rng.Float64() * total
	i := sort.SearchFloat64s(s.cum, x)
	if i >= len(s.items) {
		i = len(s.items) - 1
	}
	return s.items[i]
}

// GenAttributes synthesizes an n×dim node-attribute matrix correlated with
// the graph's labels: nodes sharing a primary label share a random class
// center, perturbed by Gaussian noise of the given level. Used to exercise
// the attributed-graph extension (the paper's stated future work).
func GenAttributes(g *Graph, dim int, noise float64, seed int64) ([][]float64, error) {
	if g.NumLabels == 0 {
		return nil, fmt.Errorf("graph: GenAttributes needs a labeled graph")
	}
	if dim <= 0 {
		return nil, fmt.Errorf("graph: GenAttributes dim must be positive, got %d", dim)
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, g.NumLabels)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64()
		}
	}
	out := make([][]float64, g.N)
	for v := 0; v < g.N; v++ {
		row := make([]float64, dim)
		if len(g.Labels[v]) > 0 {
			copy(row, centers[g.Labels[v][0]])
		}
		for j := range row {
			row[j] += noise * rng.NormFloat64()
		}
		out[v] = row
	}
	return out, nil
}

// GenSBM generates a labeled, degree-skewed stochastic block model graph.
func GenSBM(cfg SBMConfig) (*Graph, error) {
	cfg.defaults()
	if cfg.N < 2 {
		return nil, fmt.Errorf("graph: GenSBM needs N >= 2, got %d", cfg.N)
	}
	if cfg.Communities > cfg.N {
		return nil, fmt.Errorf("graph: more communities (%d) than nodes (%d)", cfg.Communities, cfg.N)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Assign communities uniformly; assign Chung–Lu weights by a random
	// degree rank so hubs are spread across communities.
	community := make([]int32, cfg.N)
	members := make([][]int32, cfg.Communities)
	for v := 0; v < cfg.N; v++ {
		c := int32(rng.Intn(cfg.Communities))
		community[v] = c
		members[c] = append(members[c], int32(v))
	}
	rank := rng.Perm(cfg.N)
	weight := make([]float64, cfg.N)
	for v := 0; v < cfg.N; v++ {
		weight[v] = math.Pow(float64(rank[v])+10, -cfg.Skew)
	}
	wfn := func(v int32) float64 { return weight[v] }

	all := make([]int32, cfg.N)
	for v := range all {
		all[v] = int32(v)
	}
	global := newWeightedSampler(all, wfn)
	perCommunity := make([]*weightedSampler, cfg.Communities)
	for c := range members {
		if len(members[c]) > 0 {
			perCommunity[c] = newWeightedSampler(members[c], wfn)
		}
	}

	seen := make(map[int64]struct{}, cfg.M)
	edges := make([]Edge, 0, cfg.M)
	maxAttempts := 50*cfg.M + 10000
	for attempts := 0; len(edges) < cfg.M; attempts++ {
		if attempts > maxAttempts {
			return nil, fmt.Errorf("graph: GenSBM could not place %d edges (placed %d); graph too dense", cfg.M, len(edges))
		}
		var u, v int32
		if rng.Float64() < cfg.IntraFrac {
			c := community[global.sample(rng)]
			s := perCommunity[c]
			if s == nil || len(members[c]) < 2 {
				continue
			}
			u, v = s.sample(rng), s.sample(rng)
		} else {
			u, v = global.sample(rng), global.sample(rng)
		}
		if u == v {
			continue
		}
		a, b := u, v
		if !cfg.Directed && a > b {
			a, b = b, a
		}
		key := int64(a)*int64(cfg.N) + int64(b)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, Edge{U: u, V: v})
	}

	g, err := New(cfg.N, edges, cfg.Directed)
	if err != nil {
		return nil, err
	}
	labels := make([][]int32, cfg.N)
	for v := 0; v < cfg.N; v++ {
		labels[v] = []int32{community[v]}
		if rng.Float64() < cfg.MultiLabel {
			extra := int32(rng.Intn(cfg.Communities))
			if extra != community[v] {
				labels[v] = append(labels[v], extra)
			}
		}
	}
	return g.WithLabels(labels, cfg.Communities)
}
