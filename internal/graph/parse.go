package graph

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode/utf8"
)

// MaxLineLen is the longest edge-list line both parsers accept: the
// serial ReadEdgeList caps its scanner buffer here, and the parallel
// parser in internal/gio enforces the same bound so the two loaders
// keep accepting and rejecting the same inputs.
const MaxLineLen = 1 << 20

// asciiSpace marks the single-byte runes strings.Fields splits on; lines
// made of these bytes parse on the allocation-free fast path below.
var asciiSpace = [256]bool{'\t': true, '\n': true, '\v': true, '\f': true, '\r': true, ' ': true}

// ParseEdgeLine parses one edge-list line: at least two whitespace-
// separated non-negative integer node ids (extra fields are ignored, as
// are trailing '\r' and surrounding whitespace). Blank lines and lines
// whose first non-space byte is '#' or '%' report ok=false. Malformed
// lines — fewer than two fields, non-numeric ids, negative ids, or ids
// overflowing int32 — return an error without a line number; callers
// prepend their own position. ParseEdgeLine is the single line grammar
// shared by the serial ReadEdgeList and the parallel parser in
// internal/gio, which keeps the two loaders equivalent by construction.
func ParseEdgeLine(line []byte) (u, v int32, ok bool, err error) {
	i, n := 0, len(line)
	for i < n && asciiSpace[line[i]] {
		i++
	}
	if i == n || line[i] == '#' || line[i] == '%' {
		return 0, 0, false, nil
	}
	for _, c := range line {
		if c >= utf8.RuneSelf {
			// Non-ASCII bytes are vanishingly rare in edge lists; take the
			// unicode-correct reference path so exotic whitespace still
			// parses the way strings.Fields would split it.
			return parseEdgeLineSlow(line)
		}
	}
	u, i, err = parseNodeID(line, i)
	if err != nil {
		return 0, 0, false, err
	}
	for i < n && asciiSpace[line[i]] {
		i++
	}
	if i == n {
		return 0, 0, false, fmt.Errorf("want 'u v', got %q", bytes.TrimSpace(line))
	}
	v, _, err = parseNodeID(line, i)
	if err != nil {
		return 0, 0, false, err
	}
	return u, v, true, nil
}

// parseNodeID parses the whitespace-delimited token starting at line[i] as
// a non-negative int32, returning the index just past the token.
func parseNodeID(line []byte, i int) (int32, int, error) {
	j := i
	for j < len(line) && !asciiSpace[line[j]] {
		j++
	}
	tok := line[i:j]
	k := 0
	neg := false
	if tok[0] == '+' || tok[0] == '-' {
		neg = tok[0] == '-'
		k++
	}
	if k == len(tok) {
		return 0, 0, fmt.Errorf("invalid node id %q", tok)
	}
	var x int64
	for ; k < len(tok); k++ {
		c := tok[k]
		if c < '0' || c > '9' {
			return 0, 0, fmt.Errorf("invalid node id %q", tok)
		}
		x = x*10 + int64(c-'0')
		if x > math.MaxInt32 {
			return 0, 0, fmt.Errorf("node id %q overflows int32", tok)
		}
	}
	if neg && x != 0 {
		return 0, 0, fmt.Errorf("negative node id")
	}
	return int32(x), j, nil
}

// parseEdgeLineSlow is the strings-based reference grammar, kept for lines
// containing non-ASCII bytes.
func parseEdgeLineSlow(line []byte) (int32, int32, bool, error) {
	s := strings.TrimSpace(string(line))
	if s == "" || s[0] == '#' || s[0] == '%' {
		return 0, 0, false, nil
	}
	fields := strings.Fields(s)
	if len(fields) < 2 {
		return 0, 0, false, fmt.Errorf("want 'u v', got %q", s)
	}
	u, err := strconv.ParseInt(fields[0], 10, 32)
	if err != nil {
		return 0, 0, false, err
	}
	v, err := strconv.ParseInt(fields[1], 10, 32)
	if err != nil {
		return 0, 0, false, err
	}
	if u < 0 || v < 0 {
		return 0, 0, false, fmt.Errorf("negative node id")
	}
	return int32(u), int32(v), true, nil
}
