package graph

import (
	"math/rand"
	"testing"
)

// rebuildEqual asserts that got is structurally identical to a graph built
// from scratch over wantEdges.
func rebuildEqual(t *testing.T, got *Graph, n int, wantEdges []Edge, directed bool) {
	t.Helper()
	want, err := New(n, wantEdges, directed)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != want.N || got.Directed != want.Directed || got.NumEdges != want.NumEdges {
		t.Fatalf("shape: got N=%d dir=%v m=%d, want N=%d dir=%v m=%d",
			got.N, got.Directed, got.NumEdges, want.N, want.Directed, want.NumEdges)
	}
	for _, pair := range [][2]*Graph{{got, want}} {
		a, b := pair[0], pair[1]
		if a.Adj.NNZ() != b.Adj.NNZ() {
			t.Fatalf("arcs: got %d, want %d", a.Adj.NNZ(), b.Adj.NNZ())
		}
		for i := 0; i < a.N; i++ {
			ar, br := a.OutNeighbors(i), b.OutNeighbors(i)
			if len(ar) != len(br) {
				t.Fatalf("row %d: got %v, want %v", i, ar, br)
			}
			for j := range ar {
				if ar[j] != br[j] {
					t.Fatalf("row %d: got %v, want %v", i, ar, br)
				}
			}
			arIn, brIn := a.InNeighbors(i), b.InNeighbors(i)
			if len(arIn) != len(brIn) {
				t.Fatalf("in-row %d: got %v, want %v", i, arIn, brIn)
			}
			for j := range arIn {
				if arIn[j] != brIn[j] {
					t.Fatalf("in-row %d: got %v, want %v", i, arIn, brIn)
				}
			}
		}
	}
}

func TestAddEdgesTable(t *testing.T) {
	base := []Edge{{0, 1}, {1, 2}, {2, 3}}
	cases := []struct {
		name      string
		directed  bool
		add       []Edge
		wantAdded int
		wantErr   bool
		want      []Edge // nil means base unchanged
	}{
		{name: "insert two", directed: false, add: []Edge{{0, 2}, {3, 0}},
			wantAdded: 2, want: []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 2}, {3, 0}}},
		{name: "self loop skipped", directed: false, add: []Edge{{1, 1}}, wantAdded: 0},
		{name: "existing skipped", directed: false, add: []Edge{{0, 1}}, wantAdded: 0},
		{name: "reversed existing skipped undirected", directed: false, add: []Edge{{1, 0}}, wantAdded: 0},
		{name: "batch duplicate skipped", directed: false, add: []Edge{{0, 3}, {3, 0}},
			wantAdded: 1, want: []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}}},
		{name: "out of range", directed: false, add: []Edge{{0, 9}}, wantErr: true},
		{name: "negative id", directed: false, add: []Edge{{-1, 2}}, wantErr: true},
		{name: "directed reverse arc is new", directed: true, add: []Edge{{1, 0}},
			wantAdded: 1, want: []Edge{{0, 1}, {1, 2}, {2, 3}, {1, 0}}},
		{name: "empty batch", directed: false, add: nil, wantAdded: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := New(5, base, tc.directed)
			if err != nil {
				t.Fatal(err)
			}
			before := g.Adj.NNZ()
			ng, added, err := g.AddEdges(tc.add)
			if tc.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(added) != tc.wantAdded {
				t.Fatalf("added %d, want %d", len(added), tc.wantAdded)
			}
			if g.Adj.NNZ() != before {
				t.Fatalf("base graph mutated: %d arcs, had %d", g.Adj.NNZ(), before)
			}
			want := tc.want
			if want == nil {
				want = base
			}
			rebuildEqual(t, ng, 5, want, tc.directed)
		})
	}
}

func TestRemoveEdgesTable(t *testing.T) {
	base := []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	cases := []struct {
		name        string
		directed    bool
		remove      []Edge
		wantRemoved int
		wantErr     bool
		want        []Edge
	}{
		{name: "remove one", directed: false, remove: []Edge{{1, 2}},
			wantRemoved: 1, want: []Edge{{0, 1}, {2, 3}, {3, 4}}},
		{name: "remove reversed undirected", directed: false, remove: []Edge{{2, 1}},
			wantRemoved: 1, want: []Edge{{0, 1}, {2, 3}, {3, 4}}},
		{name: "absent skipped", directed: false, remove: []Edge{{0, 4}}, wantRemoved: 0},
		{name: "self loop skipped", directed: false, remove: []Edge{{2, 2}}, wantRemoved: 0},
		{name: "batch duplicate counted once", directed: false, remove: []Edge{{0, 1}, {1, 0}},
			wantRemoved: 1, want: []Edge{{1, 2}, {2, 3}, {3, 4}}},
		{name: "out of range", directed: false, remove: []Edge{{0, 17}}, wantErr: true},
		{name: "directed reverse arc absent", directed: true, remove: []Edge{{1, 0}}, wantRemoved: 0},
		{name: "remove all", directed: false, remove: base, wantRemoved: 4, want: []Edge{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := New(5, base, tc.directed)
			if err != nil {
				t.Fatal(err)
			}
			ng, removed, err := g.RemoveEdges(tc.remove)
			if tc.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(removed) != tc.wantRemoved {
				t.Fatalf("removed %d, want %d", len(removed), tc.wantRemoved)
			}
			want := tc.want
			if want == nil {
				want = base
			}
			rebuildEqual(t, ng, 5, want, tc.directed)
		})
	}
}

// TestMutateMatchesRebuild drives random batches of insertions and
// deletions against both the incremental path and a from-scratch New,
// asserting identical CSR structure after every batch.
func TestMutateMatchesRebuild(t *testing.T) {
	for _, directed := range []bool{false, true} {
		rng := rand.New(rand.NewSource(11))
		n := 60
		g, err := GenErdosRenyi(n, 180, directed, 3)
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 8; batch++ {
			ins := make([]Edge, 0, 20)
			for len(ins) < 20 {
				ins = append(ins, Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
			}
			ng, _, err := g.AddEdges(ins)
			if err != nil {
				t.Fatal(err)
			}
			rebuildEqual(t, ng, n, ng.Edges(), directed)

			cur := ng.Edges()
			rng.Shuffle(len(cur), func(i, j int) { cur[i], cur[j] = cur[j], cur[i] })
			del := cur[:10]
			ng2, removed, err := ng.RemoveEdges(del)
			if err != nil {
				t.Fatal(err)
			}
			if len(removed) != len(del) {
				t.Fatalf("removed %d of %d present edges", len(removed), len(del))
			}
			rebuildEqual(t, ng2, n, ng2.Edges(), directed)
			g = ng2
		}
	}
}
