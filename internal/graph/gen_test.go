package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenErdosRenyiExactCounts(t *testing.T) {
	g, err := GenErdosRenyi(100, 300, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 100 || g.NumEdges != 300 {
		t.Fatalf("n=%d m=%d", g.N, g.NumEdges)
	}
	gd, err := GenErdosRenyi(50, 200, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gd.NumEdges != 200 || gd.Arcs() != 200 {
		t.Fatalf("directed: m=%d arcs=%d", gd.NumEdges, gd.Arcs())
	}
}

func TestGenErdosRenyiDeterministicPerSeed(t *testing.T) {
	a, _ := GenErdosRenyi(40, 100, false, 7)
	b, _ := GenErdosRenyi(40, 100, false, 7)
	if a.Adj.ToDense().MaxAbsDiff(b.Adj.ToDense()) != 0 {
		t.Fatal("same seed produced different graphs")
	}
	c, _ := GenErdosRenyi(40, 100, false, 8)
	if a.Adj.ToDense().MaxAbsDiff(c.Adj.ToDense()) == 0 {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGenErdosRenyiRejectsImpossible(t *testing.T) {
	if _, err := GenErdosRenyi(3, 100, false, 1); err == nil {
		t.Fatal("impossible edge count accepted")
	}
	if _, err := GenErdosRenyi(1, 0, false, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

// Property: generated ER graphs have no self-loops or duplicates and the
// requested counts, across random sizes.
func TestGenErdosRenyiProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 10 + int(seed%50+50)%50
		m := n
		g, err := GenErdosRenyi(n, m, seed%2 == 0, seed)
		if err != nil {
			return false
		}
		if g.NumEdges != m {
			return false
		}
		for v := 0; v < g.N; v++ {
			if g.HasEdge(v, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGenSBMBasics(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 500, M: 2000, Communities: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 500 || g.NumEdges != 2000 {
		t.Fatalf("n=%d m=%d", g.N, g.NumEdges)
	}
	if g.NumLabels != 5 || len(g.Labels) != 500 {
		t.Fatalf("labels missing: %d classes", g.NumLabels)
	}
	for v, ls := range g.Labels {
		if len(ls) == 0 {
			t.Fatalf("node %d unlabeled", v)
		}
	}
}

func TestGenSBMCommunityStructure(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 400, M: 3000, Communities: 4, IntraFrac: 0.9, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	intra := 0
	for _, e := range g.Edges() {
		if g.Labels[e.U][0] == g.Labels[e.V][0] {
			intra++
		}
	}
	frac := float64(intra) / float64(g.NumEdges)
	if frac < 0.7 {
		t.Fatalf("intra-community fraction too low: %v", frac)
	}
}

func TestGenSBMDegreeSkew(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 1000, M: 5000, Communities: 8, Skew: 0.7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	maxDeg, sumDeg := 0, 0
	for v := 0; v < g.N; v++ {
		d := g.OutDeg(v)
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sumDeg) / float64(g.N)
	if float64(maxDeg) < 5*avg {
		t.Fatalf("degrees not skewed: max=%d avg=%v", maxDeg, avg)
	}
}

func TestGenSBMDirected(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 300, M: 1500, Communities: 6, Directed: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed || g.Arcs() != 1500 {
		t.Fatalf("directed SBM wrong: arcs=%d", g.Arcs())
	}
}

func TestGenSBMRejectsBadConfig(t *testing.T) {
	if _, err := GenSBM(SBMConfig{N: 1, M: 0}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := GenSBM(SBMConfig{N: 5, M: 1, Communities: 10}); err == nil {
		t.Fatal("more communities than nodes accepted")
	}
	if _, err := GenSBM(SBMConfig{N: 4, M: 1000, Communities: 2, Seed: 1}); err == nil {
		t.Fatal("too-dense config accepted")
	}
}

func TestGenEvolving(t *testing.T) {
	old, newEdges, err := GenEvolving(EvolvingConfig{
		Base: SBMConfig{N: 400, M: 2500, Communities: 5, Seed: 10},
		MNew: 600,
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if old.NumEdges != 2500 || len(newEdges) != 600 {
		t.Fatalf("old=%d new=%d", old.NumEdges, len(newEdges))
	}
	seen := map[[2]int32]bool{}
	for _, e := range newEdges {
		if old.HasEdge(int(e.U), int(e.V)) {
			t.Fatalf("new edge (%d,%d) already in old graph", e.U, e.V)
		}
		if e.U == e.V {
			t.Fatal("self loop in new edges")
		}
		k := [2]int32{e.U, e.V}
		if !old.Directed && e.U > e.V {
			k = [2]int32{e.V, e.U}
		}
		if seen[k] {
			t.Fatalf("duplicate new edge (%d,%d)", e.U, e.V)
		}
		seen[k] = true
	}
}

// New edges from triadic closure should connect node pairs with common
// neighbors far more often than uniformly random pairs would.
func TestGenEvolvingClosureBias(t *testing.T) {
	old, newEdges, err := GenEvolving(EvolvingConfig{
		Base:        SBMConfig{N: 500, M: 3000, Communities: 5, Seed: 12},
		MNew:        500,
		ClosureFrac: 1.0,
		Seed:        13,
	})
	if err != nil {
		t.Fatal(err)
	}
	withCommon := 0
	for _, e := range newEdges {
		nu := old.OutNeighbors(int(e.U))
		set := map[int32]bool{}
		for _, x := range nu {
			set[x] = true
		}
		for _, x := range old.InNeighbors(int(e.V)) {
			if set[x] {
				withCommon++
				break
			}
		}
	}
	if frac := float64(withCommon) / float64(len(newEdges)); frac < 0.95 {
		t.Fatalf("closure edges without common neighbor: frac with common = %v", frac)
	}
}

func TestGenSBMDeterminism(t *testing.T) {
	a, _ := GenSBM(SBMConfig{N: 200, M: 800, Communities: 4, Seed: 42})
	b, _ := GenSBM(SBMConfig{N: 200, M: 800, Communities: 4, Seed: 42})
	if a.Adj.ToDense().MaxAbsDiff(b.Adj.ToDense()) != 0 {
		t.Fatal("SBM not deterministic per seed")
	}
	if math.Abs(float64(a.NumLabels-b.NumLabels)) != 0 {
		t.Fatal("labels not deterministic")
	}
}
