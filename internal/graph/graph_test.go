package graph

import (
	"math"
	"strings"
	"testing"
)

// fig1Edges is the example graph of the paper's Fig 1 (recovered from
// Table 1, see DESIGN.md).
func fig1Edges() []Edge {
	raw := [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 4}, {2, 3}, {2, 4}, {3, 4},
		{4, 5}, {5, 6}, {6, 7}, {7, 8},
	}
	edges := make([]Edge, len(raw))
	for i, e := range raw {
		edges[i] = Edge{U: e[0], V: e[1]}
	}
	return edges
}

// Fig1 builds the undirected 9-node example graph.
func Fig1(t testing.TB) *Graph {
	t.Helper()
	g, err := New(9, fig1Edges(), false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewUndirectedSymmetrizes(t *testing.T) {
	g := Fig1(t)
	if g.NumEdges != 12 {
		t.Fatalf("NumEdges=%d want 12", g.NumEdges)
	}
	if g.Arcs() != 24 {
		t.Fatalf("Arcs=%d want 24", g.Arcs())
	}
	for u := 0; u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			if !g.HasEdge(int(v), u) {
				t.Fatalf("missing reverse arc (%d,%d)", v, u)
			}
		}
	}
}

func TestFig1Degrees(t *testing.T) {
	g := Fig1(t)
	// Matches Example 2's initial forward weights: dout = [3 3 4 3 4 2 2 2 1].
	want := []int{3, 3, 4, 3, 4, 2, 2, 2, 1}
	for v, w := range want {
		if g.OutDeg(v) != w {
			t.Fatalf("deg(v%d)=%d want %d", v+1, g.OutDeg(v), w)
		}
		if g.InDeg(v) != w {
			t.Fatalf("indeg(v%d)=%d want %d (undirected)", v+1, g.InDeg(v), w)
		}
	}
}

func TestNewDirected(t *testing.T) {
	g, err := New(3, []Edge{{0, 1}, {1, 2}, {2, 0}, {0, 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges != 4 || g.Arcs() != 4 {
		t.Fatalf("edges=%d arcs=%d", g.NumEdges, g.Arcs())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("directed semantics broken")
	}
	if g.OutDeg(0) != 2 || g.InDeg(0) != 1 {
		t.Fatalf("deg wrong: out=%d in=%d", g.OutDeg(0), g.InDeg(0))
	}
}

func TestNewDropsSelfLoopsAndDuplicates(t *testing.T) {
	g, err := New(3, []Edge{{0, 0}, {0, 1}, {0, 1}, {1, 0}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges != 1 {
		t.Fatalf("NumEdges=%d want 1", g.NumEdges)
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	if _, err := New(2, []Edge{{0, 5}}, false); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := New(0, nil, false); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestTransitionRowsSumToOne(t *testing.T) {
	g := Fig1(t)
	p := g.Transition()
	sums := p.RowSums()
	for v, s := range sums {
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d of P sums to %v", v, s)
		}
	}
}

func TestTransitionDanglingNode(t *testing.T) {
	g, err := New(3, []Edge{{0, 1}, {1, 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	p := g.Transition()
	sums := p.RowSums()
	if sums[2] != 0 {
		t.Fatalf("dangling row should be zero, got %v", sums[2])
	}
	if sums[0] != 1 || sums[1] != 1 {
		t.Fatalf("non-dangling rows: %v", sums)
	}
}

func TestTransposeDirected(t *testing.T) {
	g, _ := New(3, []Edge{{0, 1}, {1, 2}}, true)
	tr := g.Transpose()
	if !tr.HasEdge(1, 0) || !tr.HasEdge(2, 1) || tr.HasEdge(0, 1) {
		t.Fatal("transpose arcs wrong")
	}
	if tr.OutDeg(0) != g.InDeg(0) {
		t.Fatal("transpose degrees wrong")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := Fig1(t)
	edges := g.Edges()
	if len(edges) != g.NumEdges {
		t.Fatalf("Edges() returned %d, want %d", len(edges), g.NumEdges)
	}
	g2, err := New(g.N, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Adj.ToDense().MaxAbsDiff(g.Adj.ToDense()) != 0 {
		t.Fatal("round trip changed adjacency")
	}
}

func TestWithLabels(t *testing.T) {
	g := Fig1(t)
	labels := make([][]int32, g.N)
	for v := range labels {
		labels[v] = []int32{int32(v % 3)}
	}
	lg, err := g.WithLabels(labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lg.NumLabels != 3 || lg.Labels[4][0] != 1 {
		t.Fatal("labels not attached")
	}
	if _, err := g.WithLabels(labels[:2], 3); err == nil {
		t.Fatal("short labels accepted")
	}
	bad := make([][]int32, g.N)
	bad[0] = []int32{7}
	if _, err := g.WithLabels(bad, 3); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestStats(t *testing.T) {
	g := Fig1(t)
	s := g.Stats()
	if s.Nodes != 9 || s.Edges != 12 || s.MaxOutDeg != 4 {
		t.Fatalf("stats %+v", s)
	}
	if math.Abs(s.AvgDeg-24.0/9.0) > 1e-12 {
		t.Fatalf("avg deg %v", s.AvgDeg)
	}
}

func TestReadWriteEdgeList(t *testing.T) {
	g := Fig1(t)
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(sb.String()), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.NumEdges != g.NumEdges {
		t.Fatalf("round trip: n=%d m=%d", g2.N, g2.NumEdges)
	}
	if g2.Adj.ToDense().MaxAbsDiff(g.Adj.ToDense()) != 0 {
		t.Fatal("edge list round trip changed graph")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("1\n"), false, 0); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n"), false, 0); err == nil {
		t.Fatal("non-numeric accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("-1 2\n"), false, 0); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("# only comments\n"), false, 0); err == nil {
		t.Fatal("empty list with no min nodes accepted")
	}
}

func TestReadEdgeListMinNodes(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"), false, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 10 {
		t.Fatalf("minNodes ignored: n=%d", g.N)
	}
}

func TestReadWriteLabels(t *testing.T) {
	labels := [][]int32{{0, 2}, nil, {1}}
	var sb strings.Builder
	if err := WriteLabels(&sb, labels); err != nil {
		t.Fatal(err)
	}
	got, numLabels, err := ReadLabels(strings.NewReader(sb.String()), 3)
	if err != nil {
		t.Fatal(err)
	}
	if numLabels != 3 {
		t.Fatalf("numLabels=%d", numLabels)
	}
	if len(got[0]) != 2 || got[0][1] != 2 || len(got[1]) != 0 || got[2][0] != 1 {
		t.Fatalf("labels round trip: %v", got)
	}
}
