// Package graph provides the graph substrate of the NRP reproduction:
// a CSR-backed directed/undirected graph type, edge-list and label I/O,
// and the synthetic generators standing in for the paper's datasets
// (Erdős–Rényi for the scalability tests, degree-skewed stochastic block
// models for the labeled social networks, and evolving graphs for the
// VK/Digg link-prediction experiment).
package graph

import (
	"fmt"

	"github.com/nrp-embed/nrp/internal/sparse"
)

// Edge is a directed or undirected edge between two node ids.
type Edge struct {
	U, V int32
}

// Graph is a node-indexed graph with CSR adjacency. For undirected graphs
// each edge {u,v} is stored as both arcs (u,v) and (v,u), following the
// paper's convention (§3.1).
type Graph struct {
	// N is the number of nodes; nodes are 0..N-1.
	N int
	// Directed reports the input semantics: false means every edge was
	// symmetrized on construction.
	Directed bool
	// NumEdges is the number of input edges (undirected edges counted once).
	NumEdges int
	// Adj is the n×n out-adjacency matrix with unit weights.
	Adj *sparse.CSR
	// RAdj is Adjᵀ, the in-adjacency matrix.
	RAdj *sparse.CSR
	// Labels optionally assigns each node a set of class labels
	// (multi-label); nil when the graph is unlabeled.
	Labels [][]int32
	// NumLabels is the number of distinct label classes (0 if unlabeled).
	NumLabels int
}

// New builds a graph from an edge list. Self-loops and duplicate edges are
// dropped. For undirected graphs, both orientations of each edge are
// inserted.
func New(n int, edges []Edge, directed bool) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: need at least one node, got %d", n)
	}
	for _, e := range edges {
		if int(e.U) < 0 || int(e.U) >= n || int(e.V) < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) outside [0,%d)", e.U, e.V, n)
		}
	}
	// Deduplication rides on FromTriples' counting sort instead of a hash
	// set: duplicate arcs land adjacent and are summed, so clamping the
	// values back to 1 afterwards yields exactly the unit-weight adjacency
	// a per-edge dedup would build, in O(nnz + n) with no map.
	triples := make([]sparse.Triple, 0, 2*len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue // drop self-loops
		}
		triples = append(triples, sparse.Triple{Row: e.U, Col: e.V, Val: 1})
		if !directed {
			triples = append(triples, sparse.Triple{Row: e.V, Col: e.U, Val: 1})
		}
	}
	adj, err := sparse.FromTriples(n, n, triples)
	if err != nil {
		return nil, err
	}
	for i := range adj.Val {
		adj.Val[i] = 1
	}
	numEdges := adj.NNZ()
	if !directed {
		// Each unique undirected edge was inserted as both arcs.
		numEdges /= 2
	}
	g := &Graph{
		N:        n,
		Directed: directed,
		NumEdges: numEdges,
		Adj:      adj,
		RAdj:     adj.Transpose(),
	}
	return g, nil
}

// OutDeg returns the out-degree of node v.
func (g *Graph) OutDeg(v int) int { return g.Adj.RowNNZ(v) }

// InDeg returns the in-degree of node v.
func (g *Graph) InDeg(v int) int { return g.RAdj.RowNNZ(v) }

// OutDegrees returns the out-degree of every node as float64.
func (g *Graph) OutDegrees() []float64 {
	d := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		d[v] = float64(g.OutDeg(v))
	}
	return d
}

// InDegrees returns the in-degree of every node as float64.
func (g *Graph) InDegrees() []float64 {
	d := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		d[v] = float64(g.InDeg(v))
	}
	return d
}

// OutNeighbors returns the out-neighbor ids of v, aliasing internal storage.
func (g *Graph) OutNeighbors(v int) []int32 {
	return g.Adj.ColIdx[g.Adj.RowPtr[v]:g.Adj.RowPtr[v+1]]
}

// InNeighbors returns the in-neighbor ids of v, aliasing internal storage.
func (g *Graph) InNeighbors(v int) []int32 {
	return g.RAdj.ColIdx[g.RAdj.RowPtr[v]:g.RAdj.RowPtr[v+1]]
}

// HasEdge reports whether the arc (u,v) exists (for undirected graphs this
// is symmetric).
func (g *Graph) HasEdge(u, v int) bool { return g.Adj.At(u, v) != 0 }

// Arcs reports the number of stored arcs (2·NumEdges for undirected graphs).
func (g *Graph) Arcs() int { return g.Adj.NNZ() }

// Transition returns the random-walk transition matrix P = D⁻¹A. Rows of
// out-degree-0 nodes are zero: a walk reaching them halts, which keeps
// Eq. (1) of the paper well defined on graphs with dangling nodes.
func (g *Graph) Transition() *sparse.CSR {
	inv := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		if d := g.OutDeg(v); d > 0 {
			inv[v] = 1 / float64(d)
		}
	}
	return g.Adj.ScaleRows(inv)
}

// InvOutDegrees returns the element-wise inverse out-degree vector used as
// D⁻¹ in Algorithm 1, with zeros for dangling nodes.
func (g *Graph) InvOutDegrees() []float64 {
	inv := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		if d := g.OutDeg(v); d > 0 {
			inv[v] = 1 / float64(d)
		}
	}
	return inv
}

// Transpose returns the graph with every arc reversed. Undirected graphs
// are returned unchanged (a fresh value sharing the CSR storage).
func (g *Graph) Transpose() *Graph {
	if !g.Directed {
		c := *g
		return &c
	}
	return &Graph{
		N:         g.N,
		Directed:  true,
		NumEdges:  g.NumEdges,
		Adj:       g.RAdj,
		RAdj:      g.Adj,
		Labels:    g.Labels,
		NumLabels: g.NumLabels,
	}
}

// Edges materializes the input-semantics edge list: each undirected edge
// appears once with U < V; each directed arc appears once.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges)
	for u := 0; u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			if !g.Directed && int32(u) > v {
				continue
			}
			out = append(out, Edge{U: int32(u), V: v})
		}
	}
	return out
}

// WithLabels returns a shallow copy of g carrying the given node labels.
func (g *Graph) WithLabels(labels [][]int32, numLabels int) (*Graph, error) {
	if len(labels) != g.N {
		return nil, fmt.Errorf("graph: %d label rows for %d nodes", len(labels), g.N)
	}
	for v, ls := range labels {
		for _, l := range ls {
			if int(l) < 0 || int(l) >= numLabels {
				return nil, fmt.Errorf("graph: node %d has label %d outside [0,%d)", v, l, numLabels)
			}
		}
	}
	c := *g
	c.Labels = labels
	c.NumLabels = numLabels
	return &c, nil
}

// Stats summarizes a graph the way the paper's Table 3 does.
type Stats struct {
	Nodes, Edges int
	Directed     bool
	NumLabels    int
	MaxOutDeg    int
	AvgDeg       float64
}

// Stats computes summary statistics for dataset tables.
func (g *Graph) Stats() Stats {
	maxOut := 0
	for v := 0; v < g.N; v++ {
		if d := g.OutDeg(v); d > maxOut {
			maxOut = d
		}
	}
	return Stats{
		Nodes:     g.N,
		Edges:     g.NumEdges,
		Directed:  g.Directed,
		NumLabels: g.NumLabels,
		MaxOutDeg: maxOut,
		AvgDeg:    float64(g.Adj.NNZ()) / float64(g.N),
	}
}
