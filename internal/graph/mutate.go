package graph

import (
	"fmt"

	"github.com/nrp-embed/nrp/internal/sparse"
)

// AddEdges returns a new graph with the batch of edges inserted, leaving g
// untouched so readers of the old snapshot (a serving index, an in-flight
// query) keep a consistent view. The whole batch is merged into the CSR
// adjacency in one pass (see sparse.InsertEntries), amortizing the rebuild
// across the batch instead of paying O(m) per edge.
//
// Validation follows New: an edge naming a node outside [0, N) is an
// error; self-loops, edges already present, and duplicates within the
// batch are skipped. The returned slice holds the canonicalized edges
// actually inserted (undirected edges once, with U < V), so callers
// tracking which nodes changed need not re-derive the skip rules.
func (g *Graph) AddEdges(edges []Edge) (*Graph, []Edge, error) {
	for _, e := range edges {
		if int(e.U) < 0 || int(e.U) >= g.N || int(e.V) < 0 || int(e.V) >= g.N {
			return nil, nil, fmt.Errorf("graph: AddEdges edge (%d,%d) outside [0,%d)", e.U, e.V, g.N)
		}
	}
	seen := make(map[int64]struct{}, len(edges))
	arcs := make([]sparse.Triple, 0, 2*len(edges))
	var added []Edge
	for _, e := range edges {
		if e.U == e.V {
			continue // drop self-loops, as New does
		}
		u, v := e.U, e.V
		if !g.Directed && u > v {
			u, v = v, u
		}
		key := int64(u)*int64(g.N) + int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		if g.HasEdge(int(u), int(v)) {
			continue
		}
		added = append(added, Edge{U: u, V: v})
		arcs = append(arcs, sparse.Triple{Row: u, Col: v, Val: 1})
		if !g.Directed {
			arcs = append(arcs, sparse.Triple{Row: v, Col: u, Val: 1})
		}
	}
	if len(added) == 0 {
		c := *g
		return &c, nil, nil
	}
	adj, err := g.Adj.InsertEntries(arcs)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: AddEdges: %w", err)
	}
	return &Graph{
		N:         g.N,
		Directed:  g.Directed,
		NumEdges:  g.NumEdges + len(added),
		Adj:       adj,
		RAdj:      adj.Transpose(),
		Labels:    g.Labels,
		NumLabels: g.NumLabels,
	}, added, nil
}

// RemoveEdges returns a new graph with the batch of edges deleted, leaving
// g untouched (same snapshot semantics as AddEdges). Edges naming nodes
// outside [0, N) are an error; self-loops, edges not present, and
// duplicates within the batch are skipped. The returned slice holds the
// canonicalized edges actually removed.
func (g *Graph) RemoveEdges(edges []Edge) (*Graph, []Edge, error) {
	for _, e := range edges {
		if int(e.U) < 0 || int(e.U) >= g.N || int(e.V) < 0 || int(e.V) >= g.N {
			return nil, nil, fmt.Errorf("graph: RemoveEdges edge (%d,%d) outside [0,%d)", e.U, e.V, g.N)
		}
	}
	seen := make(map[int64]struct{}, len(edges))
	arcs := make([]sparse.Triple, 0, 2*len(edges))
	var removed []Edge
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		u, v := e.U, e.V
		if !g.Directed && u > v {
			u, v = v, u
		}
		key := int64(u)*int64(g.N) + int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		if !g.HasEdge(int(u), int(v)) {
			continue
		}
		removed = append(removed, Edge{U: u, V: v})
		arcs = append(arcs, sparse.Triple{Row: u, Col: v})
		if !g.Directed {
			arcs = append(arcs, sparse.Triple{Row: v, Col: u})
		}
	}
	if len(removed) == 0 {
		c := *g
		return &c, nil, nil
	}
	adj, _, err := g.Adj.DropEntries(arcs)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: RemoveEdges: %w", err)
	}
	return &Graph{
		N:         g.N,
		Directed:  g.Directed,
		NumEdges:  g.NumEdges - len(removed),
		Adj:       adj,
		RAdj:      adj.Transpose(),
		Labels:    g.Labels,
		NumLabels: g.NumLabels,
	}, removed, nil
}
