package graph

import (
	"fmt"
	"math/rand"
)

// EvolvingConfig parameterizes the evolving-graph generator standing in for
// the paper's VK/Digg snapshots (Table 4, Fig 9): a base graph E_old plus a
// batch of future edges E_new. New edges are drawn predominantly by triadic
// closure (an open two-path is closed), the growth mechanism behind the
// paper's "mutual friends predict future links" intuition, mixed with a
// fraction of uniformly random links as noise.
type EvolvingConfig struct {
	Base        SBMConfig // parameters of the E_old snapshot
	MNew        int       // number of future edges to generate
	ClosureFrac float64   // fraction of new edges from triadic closure (default 0.8)
	Seed        int64
}

// GenEvolving returns the old snapshot and the list of genuinely new edges
// (absent from the snapshot, deduplicated).
func GenEvolving(cfg EvolvingConfig) (old *Graph, newEdges []Edge, err error) {
	if cfg.ClosureFrac == 0 {
		cfg.ClosureFrac = 0.8
	}
	old, err = GenSBM(cfg.Base)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	n := old.N

	exists := func(u, v int32) bool { return old.HasEdge(int(u), int(v)) }
	seen := make(map[int64]struct{}, cfg.MNew)
	key := func(u, v int32) int64 {
		a, b := u, v
		if !old.Directed && a > b {
			a, b = b, a
		}
		return int64(a)*int64(n) + int64(b)
	}

	// Degree-weighted start node sampling: walk to a node via a random arc
	// so hubs grow faster (preferential attachment flavour).
	arcs := old.Adj
	totalArcs := arcs.NNZ()
	if totalArcs == 0 {
		return nil, nil, fmt.Errorf("graph: GenEvolving needs a non-empty base graph")
	}
	randomArcTail := func() int32 {
		p := rng.Intn(totalArcs)
		// Binary search the row containing arc index p.
		lo, hi := 0, n
		for lo < hi-1 {
			mid := (lo + hi) / 2
			if arcs.RowPtr[mid] <= p {
				lo = mid
			} else {
				hi = mid
			}
		}
		return int32(lo)
	}

	maxAttempts := 200*cfg.MNew + 10000
	for attempts := 0; len(newEdges) < cfg.MNew; attempts++ {
		if attempts > maxAttempts {
			return nil, nil, fmt.Errorf("graph: GenEvolving placed only %d of %d new edges", len(newEdges), cfg.MNew)
		}
		var u, w int32
		if rng.Float64() < cfg.ClosureFrac {
			// Triadic closure: u -> v -> w becomes u -> w.
			u = randomArcTail()
			nbrs := old.OutNeighbors(int(u))
			if len(nbrs) == 0 {
				continue
			}
			v := nbrs[rng.Intn(len(nbrs))]
			nbrs2 := old.OutNeighbors(int(v))
			if len(nbrs2) == 0 {
				continue
			}
			w = nbrs2[rng.Intn(len(nbrs2))]
		} else {
			u = int32(rng.Intn(n))
			w = int32(rng.Intn(n))
		}
		if u == w || exists(u, w) {
			continue
		}
		k := key(u, w)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		newEdges = append(newEdges, Edge{U: u, V: w})
	}
	return old, newEdges, nil
}
