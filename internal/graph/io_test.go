package graph

import (
	"strings"
	"testing"
)

// TestReadEdgeListGrammar exercises the tolerated line shapes: comments,
// blank lines, '\r\n' endings, surrounding whitespace, extra fields, and
// duplicate/self-loop edges.
func TestReadEdgeListGrammar(t *testing.T) {
	input := strings.Join([]string{
		"# comment",
		"% matrix-market style comment",
		"",
		"   ",
		"0 1",
		"1\t2",
		"  2   3  ",
		"3 4\r",
		"4 5 999 ignored trailing fields",
		"+5 6",
		"1 0", // duplicate of 0 1 (undirected)
		"2 2", // self-loop, dropped
		"\t#indented comment",
	}, "\n")
	g, err := ReadEdgeList(strings.NewReader(input), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 7 {
		t.Fatalf("n = %d, want 7", g.N)
	}
	if g.NumEdges != 6 {
		t.Fatalf("edges = %d, want 6", g.NumEdges)
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
	if g.HasEdge(2, 2) {
		t.Error("self-loop survived")
	}
}

// TestReadEdgeListMalformed checks that malformed input is rejected with
// the offending line number in the error.
func TestReadEdgeListMalformed(t *testing.T) {
	cases := []struct {
		name  string
		input string
		line  string // substring the error must contain (the line number)
	}{
		{"single field", "0 1\n7\n", "line 2"},
		{"non-numeric", "0 1\nfoo bar\n", "line 2"},
		{"non-numeric second", "0 1\n2 bar\n", "line 2"},
		{"negative id", "0 1\n1 -2\n", "line 2"},
		{"negative first", "-1 2\n", "line 1"},
		{"int32 overflow", "0 1\n1 2\n2 2147483648\n", "line 3"},
		{"big overflow", "0 99999999999999999999\n", "line 1"},
		{"float id", "0 1.5\n", "line 1"},
		{"hex id", "0 0x1f\n", "line 1"},
		{"stray sign", "0 +\n", "line 1"},
		{"crlf preserved line count", "0 1\r\n\r\nbogus line\r\n", "line 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadEdgeList(strings.NewReader(tc.input), true, 0)
			if err == nil {
				t.Fatalf("accepted %q", tc.input)
			}
			if !strings.Contains(err.Error(), tc.line) {
				t.Fatalf("error %q does not name %s", err, tc.line)
			}
		})
	}
}

// TestParseEdgeLineBoundaryIDs pins down the int32 boundary at the line
// grammar level (a 2^31-node graph would not fit in memory): MaxInt32 is
// a valid node id, MaxInt32+1 is not.
func TestParseEdgeLineBoundaryIDs(t *testing.T) {
	u, v, ok, err := ParseEdgeLine([]byte("2147483647 0"))
	if err != nil || !ok {
		t.Fatalf("max int32 id rejected: ok=%v err=%v", ok, err)
	}
	if u != 1<<31-1 || v != 0 {
		t.Fatalf("parsed (%d,%d)", u, v)
	}
	if _, _, _, err := ParseEdgeLine([]byte("2147483648 0")); err == nil {
		t.Fatal("accepted id overflowing int32")
	}
	if _, _, _, err := ParseEdgeLine([]byte("0 -0")); err != nil {
		t.Fatalf("-0 rejected: %v", err) // strconv.ParseInt accepts -0; keep it
	}
}

func TestReadEdgeListEmpty(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("# only comments\n"), false, 0); err == nil {
		t.Fatal("accepted empty edge list without minNodes")
	}
	g, err := ReadEdgeList(strings.NewReader(""), false, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 5 || g.NumEdges != 0 {
		t.Fatalf("got n=%d m=%d, want n=5 m=0", g.N, g.NumEdges)
	}
}
