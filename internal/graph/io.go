package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line;
// '#' and '%' start comments; '\r\n' endings and surrounding whitespace
// are tolerated) and returns the graph. Node ids must be non-negative
// integers fitting in int32 — overflowing or malformed ids are rejected
// with the offending line number. The node count is max id + 1 unless
// minNodes is larger.
//
// ReadEdgeList streams serially; internal/gio.ParseEdgeList parses the
// same grammar in parallel byte-range chunks and produces a bit-identical
// graph.
func ReadEdgeList(r io.Reader, directed bool, minNodes int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), MaxLineLen)
	var edges []Edge
	maxID := int32(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		u, v, ok, err := ParseEdgeLine(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		if !ok {
			continue
		}
		edges = append(edges, Edge{U: u, V: v})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	n := int(maxID) + 1
	if n < minNodes {
		n = minNodes
	}
	if n == 0 {
		return nil, fmt.Errorf("graph: empty edge list and no minimum node count")
	}
	return New(n, edges, directed)
}

// WriteEdgeList writes the graph in the format accepted by ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d directed=%v\n", g.N, g.NumEdges, g.Directed); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLabels parses "node label1 label2 ..." lines into a per-node label
// table for n nodes. Nodes not mentioned get no labels.
func ReadLabels(r io.Reader, n int) (labels [][]int32, numLabels int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	labels = make([][]int32, n)
	maxLabel := int32(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: labels line %d: %v", lineNo, err)
		}
		if v < 0 || int(v) >= n {
			return nil, 0, fmt.Errorf("graph: labels line %d: node %d outside [0,%d)", lineNo, v, n)
		}
		for _, f := range fields[1:] {
			l, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return nil, 0, fmt.Errorf("graph: labels line %d: %v", lineNo, err)
			}
			labels[v] = append(labels[v], int32(l))
			if int32(l) > maxLabel {
				maxLabel = int32(l)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("graph: reading labels: %w", err)
	}
	return labels, int(maxLabel) + 1, nil
}

// WriteLabels writes per-node labels in the format accepted by ReadLabels,
// skipping unlabeled nodes.
func WriteLabels(w io.Writer, labels [][]int32) error {
	bw := bufio.NewWriter(w)
	for v, ls := range labels {
		if len(ls) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d", v); err != nil {
			return err
		}
		for _, l := range ls {
			if _, err := fmt.Fprintf(bw, " %d", l); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}
