package nrp

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestEmbedCtxCancelDuringFactorization is the acceptance test for
// cooperative cancellation: on a 100k-node graph, cancelling the context at
// the first factorization progress event must surface ctx.Err() promptly —
// within seconds of the cancel, far under the full embedding time.
func TestEmbedCtxCancelDuringFactorization(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 100000, M: 500000, Communities: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Dim = 64

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelledAt atomic.Value // time.Time of the cancel call
	emb, stats, err := EmbedCtx(ctx, g, opt, WithProgress(func(ev ProgressEvent) {
		if ev.Phase == PhaseFactorize && cancelledAt.Load() == nil {
			cancelledAt.Store(time.Now())
			cancel()
		}
	}))
	returned := time.Now()

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if emb != nil {
		t.Fatal("cancelled run returned an embedding")
	}
	if stats == nil {
		t.Fatal("cancelled run returned nil stats")
	}
	// The phase ran at least one iteration before the cancel, and the
	// stats must say so even on the error path.
	if stats.KrylovIters < 1 || stats.Factorize.Steps < 1 {
		t.Fatalf("cancelled factorization lost its iteration count: %+v", stats.Factorize)
	}
	at, ok := cancelledAt.Load().(time.Time)
	if !ok {
		t.Fatal("no factorize progress event fired before completion")
	}
	// The abort must land at the next iteration boundary — seconds at this
	// scale, versus tens of seconds for a full k=64 run on 100k nodes.
	if lag := returned.Sub(at); lag > 10*time.Second {
		t.Fatalf("cancellation took %v to surface", lag)
	}
}

func TestEmbedCtxPreCancelled(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 300, M: 1500, Communities: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := DefaultOptions()
	opt.Dim = 16
	if _, _, err := EmbedCtx(ctx, g, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, _, err := EmbedPPRCtx(ctx, g, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("EmbedPPRCtx: want context.Canceled, got %v", err)
	}
}

func TestLearnWeightsCtxCancelled(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 300, M: 1500, Communities: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Dim = 16
	emb, _, err := EmbedPPRCtx(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := LearnWeightsCtx(ctx, g, emb, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestEmbedAttributedCtxCancelled(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 200, M: 1000, Communities: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := GenAttributes(g, 8, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultAttributedOptions()
	opt.Dim = 16
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := EmbedAttributedCtx(ctx, g, attrs, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestEmbedCtxStatsAndProgress(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 400, M: 2400, Communities: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Dim = 16
	var events []ProgressEvent
	emb, stats, err := EmbedCtx(context.Background(), g, opt, WithProgress(func(ev ProgressEvent) {
		events = append(events, ev)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if emb == nil || stats == nil {
		t.Fatal("nil embedding or stats")
	}
	if stats.KrylovIters <= 0 {
		t.Fatalf("KrylovIters = %d", stats.KrylovIters)
	}
	if stats.AchievedRank <= 0 || stats.AchievedRank > opt.Dim/2 {
		t.Fatalf("AchievedRank = %d", stats.AchievedRank)
	}
	if stats.PPR.Steps != opt.L1-1 {
		t.Fatalf("PPR steps = %d, want %d", stats.PPR.Steps, opt.L1-1)
	}
	// Early stopping (Options.ReweightTol) may converge before the ℓ₂
	// epoch cap; at least two epochs always run so the residual sequence
	// witnesses a decay.
	if stats.Reweight.Steps < 2 || stats.Reweight.Steps > opt.L2 {
		t.Fatalf("Reweight steps = %d, want in [2,%d]", stats.Reweight.Steps, opt.L2)
	}
	if len(stats.ReweightResiduals) != stats.Reweight.Steps {
		t.Fatalf("%d residuals for %d epochs", len(stats.ReweightResiduals), stats.Reweight.Steps)
	}
	if stats.Total <= 0 {
		t.Fatalf("Total = %v", stats.Total)
	}
	// Later epochs should move weights less than the first: the residual
	// sequence witnesses coordinate-descent convergence.
	first, last := stats.ReweightResiduals[0], stats.ReweightResiduals[len(stats.ReweightResiduals)-1]
	if !(last < first) {
		t.Fatalf("residuals did not decay: first=%v last=%v", first, last)
	}

	seen := map[Phase]int{}
	for _, ev := range events {
		seen[ev.Phase]++
		if ev.Step <= 0 || ev.Step > ev.Total {
			t.Fatalf("bad event %+v", ev)
		}
	}
	for _, ph := range []Phase{PhaseFactorize, PhasePPR, PhaseReweight} {
		if seen[ph] == 0 {
			t.Fatalf("no progress events for phase %s (saw %v)", ph, seen)
		}
	}

	var buf bytes.Buffer
	if err := stats.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"factorize", "reweight", "total", "achieved_rank"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered stats missing %q:\n%s", want, out)
		}
	}
}

func TestEmbedCtxValidatesUpFront(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 50, M: 200, Communities: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Dim = 7 // odd: invalid
	if _, _, err := EmbedCtx(context.Background(), g, opt); err == nil || !strings.Contains(err.Error(), "Dim") {
		t.Fatalf("want Dim validation error, got %v", err)
	}
	if _, _, err := EmbedPPRCtx(context.Background(), g, opt); err == nil || !strings.Contains(err.Error(), "Dim") {
		t.Fatalf("EmbedPPRCtx: want Dim validation error, got %v", err)
	}
}

// TestDeprecatedWrappersMatchCtxAPI pins the migration contract: the v1
// wrappers are thin delegates, so results are bit-identical to the ctx API
// with the same options.
func TestDeprecatedWrappersMatchCtxAPI(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 150, M: 700, Communities: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Dim = 16
	old, err := Embed(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	neu, _, err := EmbedCtx(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{0, 1}, {3, 140}, {77, 12}} {
		if old.Score(pair[0], pair[1]) != neu.Score(pair[0], pair[1]) {
			t.Fatalf("wrapper and ctx API disagree on %v", pair)
		}
	}
}

// TestEmbeddingSaveLoadSaveTextRoundTrip checks Save → Load preserves
// scores exactly and SaveText re-emits the same vectors in text form.
func TestEmbeddingSaveLoadSaveTextRoundTrip(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 80, M: 350, Communities: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Dim = 8
	emb, _, err := EmbedCtx(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}

	var bin bytes.Buffer
	if err := emb.Save(&bin); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEmbedding(&bin)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N; u += 7 {
		for v := 0; v < g.N; v += 11 {
			if back.Score(u, v) != emb.Score(u, v) {
				t.Fatalf("binary round trip changed Score(%d,%d)", u, v)
			}
		}
	}

	var txtOrig, txtBack bytes.Buffer
	if err := emb.SaveText(&txtOrig); err != nil {
		t.Fatal(err)
	}
	if err := back.SaveText(&txtBack); err != nil {
		t.Fatal(err)
	}
	if txtOrig.String() != txtBack.String() {
		t.Fatal("SaveText after binary round trip differs from original")
	}
	header := strings.SplitN(txtOrig.String(), "\n", 2)[0]
	if header != "80 8" {
		t.Fatalf("SaveText header %q", header)
	}
}
