package nrp_test

import (
	"context"
	"fmt"
	"log"

	"github.com/nrp-embed/nrp"
)

// ExampleWithEstimator builds the same embedding twice, once per
// approximate-PPR backend: the default backward-push scheme (Algorithm 1
// of the paper) and the FORA sampling estimator, which shares one walk
// index across all source rows and stops each row early once its top-k
// entries are resolved. The two backends return different (not
// bit-comparable) factor pairs that agree on downstream task quality;
// the FORA path is the faster choice on large graphs, the push path the
// reference protocol.
func ExampleWithEstimator() {
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 600, M: 3000, Communities: 4, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 16

	push, _, err := nrp.EmbedCtx(context.Background(), g, opt,
		nrp.WithEstimator(nrp.EstimatorPush))
	if err != nil {
		log.Fatal(err)
	}
	fora, _, err := nrp.EmbedCtx(context.Background(), g, opt,
		nrp.WithEstimator(nrp.EstimatorFORA),
		nrp.WithEstimatorTopK(48)) // entries kept per PPR row (FORA only)
	if err != nil {
		log.Fatal(err)
	}
	// Dim() is the per-side width: Options.Dim covers both the forward
	// and backward halves of the factorization.
	fmt.Println("push:", push.N(), "nodes ×", push.Dim(), "dims per side")
	fmt.Println("fora:", fora.N(), "nodes ×", fora.Dim(), "dims per side")

	// The estimator name round-trips through the CLI flag parser.
	est, err := nrp.ParseEstimator("fora")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed:", est)
	// Output:
	// push: 600 nodes × 8 dims per side
	// fora: 600 nodes × 8 dims per side
	// parsed: fora
}
