package nrp

import (
	"github.com/nrp-embed/nrp/internal/core"
)

// Estimator names a backend for the approximate-PPR phase of the
// embedding build, selected with WithEstimator (or `nrp embed
// -estimator`). See the README's "Build estimators" section for guidance.
type Estimator = core.Estimator

// Build estimators.
const (
	// EstimatorPush is Algorithm 1's backward-push scheme — the paper
	// protocol and the default.
	EstimatorPush = core.EstimatorPush
	// EstimatorFORA estimates the top entries of each PPR row by FORA
	// sampling over a shared walk index with top-k early termination,
	// then factorizes the sparse proximity matrix directly. Typically
	// ≥ 2× faster than push at matching link-prediction AUC.
	EstimatorFORA = core.EstimatorFORA
)

// Estimator validation sentinels; Embed and friends return them (possibly
// wrapped) on unknown estimator names, out-of-range knobs, or option
// combinations that mix backends.
var (
	// ErrInvalidEstimator rejects unknown estimator names and
	// out-of-range estimator knobs.
	ErrInvalidEstimator = core.ErrInvalidEstimator
	// ErrEstimatorOptionConflict rejects FORA-only knobs combined with
	// the push estimator, and warm-start factorization on the FORA path.
	ErrEstimatorOptionConflict = core.ErrEstimatorOptionConflict
)

// ParseEstimator resolves an estimator name as accepted by `nrp embed
// -estimator` ("push", "fora"; empty selects the push default). Unknown
// names return ErrInvalidEstimator.
func ParseEstimator(s string) (Estimator, error) { return core.ParseEstimator(s) }

// WithEstimator selects the approximate-PPR backend of an embedding run.
func WithEstimator(e Estimator) RunOption { return core.WithEstimator(e) }

// WithEstimatorTopK sets how many entries the FORA estimator keeps per
// PPR row (0 = max(k/2, 32)). Larger keeps more proximity signal at more
// push/walk work per row. Requires WithEstimator(EstimatorFORA).
func WithEstimatorTopK(k int) RunOption { return core.WithEstimatorTopK(k) }

// WithEstimatorEpsilon sets the FORA estimator's relative error bound ε
// on the kept entries (0 = 0.5). Requires WithEstimator(EstimatorFORA).
func WithEstimatorEpsilon(eps float64) RunOption { return core.WithEstimatorEpsilon(eps) }

// WithEstimatorWalks sets K, the stored endpoints per node of the shared
// walk index the FORA estimator builds once and resamples across all
// rows (0 = 8). Requires WithEstimator(EstimatorFORA).
func WithEstimatorWalks(k int) RunOption { return core.WithEstimatorWalks(k) }
