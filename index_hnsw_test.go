package nrp

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestHNSWRecallVsExact pins the accuracy contract on the SBM fixture:
// recall@10 against the exact scan must not drop below 0.95 — the same
// floor the CI bench gate enforces on the 100k serving graph.
func TestHNSWRecallVsExact(t *testing.T) {
	emb := testEmbedding(t, 1200)
	ctx := context.Background()
	exact := NewIndex(emb)

	for _, tc := range []struct {
		name string
		opts []IndexOption
	}{
		{"float", nil},
		{"quantcoarse", []IndexOption{WithHNSWQuantized(true)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := BuildIndex(emb, append([]IndexOption{WithBackend(BackendHNSW)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			const k = 10
			var hits, total float64
			for u := 0; u < emb.N(); u += 13 {
				want, err := exact.TopK(ctx, u, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := s.TopK(ctx, u, k)
				if err != nil {
					t.Fatal(err)
				}
				hits += recallAt(got, want) * float64(len(want))
				total += float64(len(want))
			}
			if recall := hits / total; recall < 0.95 {
				t.Fatalf("recall@%d = %.4f < 0.95", k, recall)
			} else {
				t.Logf("recall@%d = %.4f", k, recall)
			}
		})
	}
}

// TestHNSWSnapshotDeterministicRebuild pins the determinism contract end
// to end: rebuilding with the same seed — at any thread count — must
// produce a byte-identical NRPX snapshot, so serving fleets can verify
// artifact integrity by hash.
func TestHNSWSnapshotDeterministicRebuild(t *testing.T) {
	emb := testEmbedding(t, 500)
	snap := func(threads int) []byte {
		s, err := BuildIndex(emb, WithBackend(BackendHNSW), WithHNSWSeed(42), WithThreads(threads))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SaveIndex(&buf, s); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := snap(1)
	for _, threads := range []int{2, 4} {
		if got := snap(threads); !bytes.Equal(got, ref) {
			t.Fatalf("%d-thread rebuild produced a different snapshot (%d vs %d bytes)", threads, len(got), len(ref))
		}
	}

	// A different seed must change the graph section (the embedding part
	// is identical), or the seed option is silently ignored.
	s, err := BuildIndex(emb, WithBackend(BackendHNSW), WithHNSWSeed(43))
	if err != nil {
		t.Fatal(err)
	}
	var other bytes.Buffer
	if err := SaveIndex(&other, s); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(other.Bytes(), ref) {
		t.Fatal("different HNSW seeds produced identical snapshots")
	}
}

// hnswBaseLen computes where the trailing graph section starts in an
// HNSW snapshot: magic + 7-field header + X and Y payloads, plus the
// quantization payload when the coarse stage is quantized.
func hnswBaseLen(n, dim int, quantized bool) int {
	base := 4 + 7*8 + 2*n*dim*8
	if quantized {
		base += dim*8 + n*dim
	}
	return base
}

// TestHNSWSnapshotForwardCompat pins the compatibility story: the bytes
// before the NRPH section are a complete v1 snapshot, so a reader that
// stops there (an old binary) gets a working scan index over the same
// embedding; a corrupted section is rejected, never half-loaded.
func TestHNSWSnapshotForwardCompat(t *testing.T) {
	emb := testEmbedding(t, 300)
	ctx := context.Background()
	for _, tc := range []struct {
		name        string
		opts        []IndexOption
		baseBackend Backend
	}{
		{"float", nil, BackendExact},
		{"quantcoarse", []IndexOption{WithHNSWQuantized(true)}, BackendQuantized},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := BuildIndex(emb, append([]IndexOption{WithBackend(BackendHNSW)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := SaveIndex(&buf, s); err != nil {
				t.Fatal(err)
			}
			snap := buf.Bytes()
			baseLen := hnswBaseLen(emb.N(), emb.Dim(), tc.baseBackend == BackendQuantized)
			if len(snap) <= baseLen {
				t.Fatalf("snapshot %d bytes, base alone is %d", len(snap), baseLen)
			}
			if got := string(snap[baseLen : baseLen+4]); got != "NRPH" {
				t.Fatalf("section magic %q at offset %d", got, baseLen)
			}

			// A v1 reader stops at the base payload: loading the truncated
			// file is exactly that reader's view, and must yield a working
			// scan index of the base backend.
			old, err := LoadIndex(bytes.NewReader(snap[:baseLen]))
			if err != nil {
				t.Fatalf("base-only load: %v", err)
			}
			if b, ok := old.(interface{ Backend() Backend }); !ok || b.Backend() != tc.baseBackend {
				t.Fatalf("base-only load backend = %v, want %v", old, tc.baseBackend)
			}
			nbrs, err := old.TopK(ctx, 7, 5)
			if err != nil || len(nbrs) != 5 {
				t.Fatalf("base-only TopK: %v, %d results", err, len(nbrs))
			}

			// The full file loads as HNSW and answers identically to the
			// index it was saved from.
			loaded, err := LoadIndex(bytes.NewReader(snap))
			if err != nil {
				t.Fatal(err)
			}
			if b, ok := loaded.(interface{ Backend() Backend }); !ok || b.Backend() != BackendHNSW {
				t.Fatal("full load did not reconstruct the HNSW backend")
			}
			want, err := s.TopK(ctx, 7, 5)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.TopK(ctx, 7, 5)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("rank %d: loaded %+v built %+v", i, got[i], want[i])
				}
			}

			// Corruptions of the section are rejected with clean errors.
			flip := func(off int) []byte {
				c := append([]byte(nil), snap...)
				c[off] ^= 0x3c
				return c
			}
			corruptions := map[string]struct {
				snap []byte
				want string
			}{
				"section magic":   {flip(baseLen + 1), "section magic"},
				"section version": {flip(baseLen + 4), "section version"},
				"graph payload":   {flip(baseLen + 4 + 16 + 9), "checksum"},
				"checksum":        {flip(len(snap) - 2), "checksum"},
				"truncated section": {snap[:len(snap)-3],
					"section"},
			}
			for name, c := range corruptions {
				_, err := LoadIndex(bytes.NewReader(c.snap))
				if err == nil {
					t.Fatalf("%s corruption accepted", name)
				}
				if !strings.Contains(err.Error(), c.want) {
					t.Fatalf("%s corruption: error %q does not mention %q", name, err, c.want)
				}
			}
		})
	}
}

// TestHNSWLoadOverrides pins the load-time option semantics: efSearch is
// a serving knob (wider beams scan more and recall at least as much),
// build-time parameters are frozen in the snapshot, and HNSW options on
// non-HNSW snapshots conflict.
func TestHNSWLoadOverrides(t *testing.T) {
	emb := testEmbedding(t, 800)
	ctx := context.Background()
	s, err := BuildIndex(emb, WithBackend(BackendHNSW), WithEfSearch(12))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveIndex(&buf, s); err != nil {
		t.Fatal(err)
	}
	scannedWith := func(opts ...IndexOption) int {
		t.Helper()
		ix, err := LoadIndex(bytes.NewReader(buf.Bytes()), opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ix.TopKMany(ctx, []int{3}, 10)
		if err != nil {
			t.Fatal(err)
		}
		return res[0].Stats.Scanned
	}
	narrow := scannedWith()
	wide := scannedWith(WithEfSearch(256))
	if wide <= narrow {
		t.Fatalf("ef=256 scanned %d, persisted ef=12 scanned %d: override had no effect", wide, narrow)
	}

	// Build-time parameters are baked in; overriding them at load is a
	// conflict, as is an HNSW option on a non-HNSW snapshot.
	if _, err := LoadIndex(bytes.NewReader(buf.Bytes()), WithHNSWM(4)); !errors.Is(err, ErrIndexOptionConflict) {
		t.Fatalf("WithHNSWM at load: %v", err)
	}
	if _, err := LoadIndex(bytes.NewReader(buf.Bytes()), WithHNSWSeed(9)); !errors.Is(err, ErrIndexOptionConflict) {
		t.Fatalf("WithHNSWSeed at load: %v", err)
	}
	exact, err := BuildIndex(emb)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := SaveIndex(&buf, exact); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(bytes.NewReader(buf.Bytes()), WithEfSearch(64)); !errors.Is(err, ErrIndexOptionConflict) {
		t.Fatalf("WithEfSearch on exact snapshot: %v", err)
	}
}

// TestLiveIndexHNSWQueryDuringSwap is the -race hammer for the HNSW
// backend behind LiveIndex: worker goroutines mix TopK, TopKMany and
// ScoreMany while the graph index is rebuilt and atomically swapped
// underneath them.
func TestLiveIndexHNSWQueryDuringSwap(t *testing.T) {
	dyn, newEdges := dynFixture(t, DynamicConfig{Policy: RefreshIncremental, ResidualBudget: 1e9})
	live, err := NewLiveIndex(dyn, WithBackend(BackendHNSW), WithEfSearch(48))
	if err != nil {
		t.Fatal(err)
	}
	if live.Backend() != BackendHNSW {
		t.Fatalf("live backend %v", live.Backend())
	}
	ctx := context.Background()
	n := live.N()

	var (
		stop     atomic.Bool
		queries  atomic.Int64
		failures atomic.Int64
		firstErr atomic.Value
	)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				u := (w*1009 + i*31) % n
				var err error
				switch i % 3 {
				case 0:
					_, err = live.TopK(ctx, u, 10)
				case 1:
					_, err = live.TopKMany(ctx, []int{u, (u + 7) % n}, 5)
				default:
					_, err = live.ScoreMany(ctx, []Pair{{U: u, V: (u + 3) % n}})
				}
				queries.Add(1)
				if err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}(w)
	}

	const batch = 40
	swaps := 0
	for lo := 0; lo < len(newEdges); lo += batch {
		hi := min(lo+batch, len(newEdges))
		if _, err := live.ApplyUpdates(ctx, insertBatch(newEdges[lo:hi])); err != nil {
			t.Fatal(err)
		}
		if _, err := live.Refresh(ctx); err != nil {
			t.Fatal(err)
		}
		swaps++
	}
	stop.Store(true)
	wg.Wait()

	if got := failures.Load(); got != 0 {
		t.Fatalf("%d of %d queries failed during %d swaps; first error: %v",
			got, queries.Load(), swaps, firstErr.Load())
	}
	if queries.Load() == 0 || swaps == 0 {
		t.Fatalf("degenerate run: %d queries, %d swaps", queries.Load(), swaps)
	}
}
