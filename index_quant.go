package nrp

import (
	"context"
	"time"

	"github.com/nrp-embed/nrp/internal/par"
	"github.com/nrp-embed/nrp/internal/quant"
)

// quantIndex is the int8-quantized Searcher backend: the backward
// embeddings are quantized once at build time (per-dimension symmetric
// scales), each query folds those scales into X_u and scans every
// candidate with the fused int32 kernel — an 8× reduction in memory
// traffic over the float64 scan — and the top rerank·k shortlist is then
// re-scored exactly, so returned scores are exact and only ranks beyond
// the shortlist can be missed.
type quantIndex struct {
	emb *Embedding
	cfg indexConfig
	qy  *quant.Matrix
}

var _ Searcher = (*quantIndex)(nil)

func newQuantIndex(emb *Embedding, cfg indexConfig) *quantIndex {
	// Build-time quantization parallelizes over the WithThreads budget;
	// the result is bit-identical for every thread count.
	pool := par.New(cfg.buildThreads)
	return &quantIndex{emb: emb, cfg: cfg, qy: quant.QuantizeRowsPool(pool, emb.Y)}
}

// loadedQuantIndex rebuilds a quantized index from snapshot payload
// without re-quantizing.
func loadedQuantIndex(emb *Embedding, cfg indexConfig, qy *quant.Matrix) *quantIndex {
	return &quantIndex{emb: emb, cfg: cfg, qy: qy}
}

func (ix *quantIndex) N() int { return ix.emb.N() }

// Backend reports BackendQuantized.
func (ix *quantIndex) Backend() Backend { return BackendQuantized }

func (ix *quantIndex) TopK(ctx context.Context, u, k int) ([]Neighbor, error) {
	nbrs, _, err := ix.topkOne(ctx, u, k, true)
	return nbrs, err
}

func (ix *quantIndex) TopKMany(ctx context.Context, us []int, k int) ([]Result, error) {
	return topkMany(ctx, ix.emb.N(), ix.cfg.shards, us, k, ix.topkOne)
}

func (ix *quantIndex) ScoreMany(ctx context.Context, pairs []Pair) ([]float64, error) {
	return scoreManyExact(ctx, ix.emb, pairs, ix.cfg.shards)
}

func (ix *quantIndex) topkOne(ctx context.Context, u, k int, parallel bool) ([]Neighbor, QueryStats, error) {
	start := time.Now()
	var stats QueryStats
	n := ix.emb.N()
	if err := validateQuery(n, u, k); err != nil {
		return nil, stats, err
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	if avail := ix.cfg.availCandidates(n, u); k > avail {
		k = avail
	}
	if k <= 0 {
		return nil, stats, nil
	}

	// Candidate range: the whole index, or this process's slice under
	// WithShardSlice. The quantization scales stay global (computed over
	// all rows at build time), so per-slice quantized scores are identical
	// to the single-process scan's.
	rlo, rhi := ix.cfg.candRange(n)
	qx, _ := ix.qy.QuantizeQuery(ix.emb.X.Row(u))
	// Each shard shortlists its own top rerank·k by quantized score; the
	// merged shortlist is re-scored exactly below, so the quantized scale
	// factor (a positive constant per query) never needs to be applied —
	// it cannot change the ordering.
	rk := k * ix.cfg.rerank
	scan := func(ctx context.Context, w, shards int, h *topkHeap) (scanned, pruned int, err error) {
		lo, hi := contiguousSpan(rhi-rlo, w, shards)
		lo, hi = lo+rlo, hi+rlo
		for v := lo; v < hi; v++ {
			if (v-lo)%ctxCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return scanned, 0, err
				}
			}
			if v == u && !ix.cfg.includeSelf {
				continue
			}
			h.offer(v, float64(quant.Dot(qx, ix.qy.Row(v))))
			scanned++
		}
		return scanned, 0, nil
	}
	shortlist, stats, err := runShardScan(ctx, rhi-rlo, ix.cfg.shards, rk, parallel, scan)
	if err != nil {
		return nil, stats, err
	}

	// Exact rerank of the shortlist: float64 re-score, global top k.
	final := newTopkHeap(k)
	for _, nb := range shortlist {
		final.offer(nb.Node, ix.emb.Score(u, nb.Node))
	}
	stats.Reranked = len(shortlist)
	stats.Elapsed = time.Since(start)
	return sortNeighbors(final.items), stats, nil
}
