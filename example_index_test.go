package nrp_test

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"github.com/nrp-embed/nrp"
)

// ExampleBuildIndex embeds a small synthetic graph, builds a quantized
// sharded index over it, serves a batch of top-k queries, and round-trips
// the index through a snapshot — the full serving lifecycle.
func ExampleBuildIndex() {
	ctx := context.Background()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 200, M: 1200, Communities: 4, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 16
	emb, _, err := nrp.EmbedCtx(ctx, g, opt)
	if err != nil {
		log.Fatal(err)
	}

	// Build: int8-quantized scan across 4 shards, exact rerank of the
	// top 4·k shortlist.
	s, err := nrp.BuildIndex(emb,
		nrp.WithBackend(nrp.BackendQuantized),
		nrp.WithShards(4),
		nrp.WithRerank(4))
	if err != nil {
		log.Fatal(err)
	}

	// Query: a batch of sources, with per-query work stats.
	results, err := s.TopKMany(ctx, []int{0, 1}, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("node %d: %d neighbors, %d candidates scanned, %d reranked\n",
			r.Source, len(r.Neighbors), r.Stats.Scanned, r.Stats.Reranked)
	}

	// Snapshot: persist the built index and boot a second Searcher from
	// it without re-quantizing.
	var snap bytes.Buffer
	if err := nrp.SaveIndex(&snap, s); err != nil {
		log.Fatal(err)
	}
	loaded, err := nrp.LoadIndex(&snap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded index over %d nodes\n", loaded.N())
	// Output:
	// node 0: 5 neighbors, 199 candidates scanned, 20 reranked
	// node 1: 5 neighbors, 199 candidates scanned, 20 reranked
	// reloaded index over 200 nodes
}
