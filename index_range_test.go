package nrp

import (
	"bytes"
	"context"
	"errors"
	"slices"
	"testing"
)

// mergeSliceResults emulates the router's scatter-gather merge: union the
// per-slice answers, re-sort by the exact scores the slices returned
// (score desc, node asc — the backends' own order), truncate to k.
func mergeSliceResults(parts [][]Neighbor, k int) []Neighbor {
	union := make([]Neighbor, 0, k*len(parts))
	for _, p := range parts {
		union = append(union, p...)
	}
	sortNeighbors(union)
	if len(union) > k {
		union = union[:k]
	}
	return union
}

// TestShardSliceUnionMatchesFull is the library-level statement of the
// distributed-serving contract: for the exact-result backends, merging
// the per-slice top-k answers of a count-way WithShardSlice partition
// reproduces the single-index answer bit for bit.
func TestShardSliceUnionMatchesFull(t *testing.T) {
	emb := testEmbedding(t, 150)
	n := emb.N()
	ctx := context.Background()
	for _, backend := range []Backend{BackendExact, BackendPruned} {
		for _, count := range []int{1, 2, 3, 5, 8} {
			full, err := BuildIndex(emb, WithBackend(backend))
			if err != nil {
				t.Fatal(err)
			}
			slices_ := make([]Searcher, count)
			for i := range slices_ {
				s, err := BuildIndex(emb, WithBackend(backend), WithShardSlice(i, count))
				if err != nil {
					t.Fatalf("%v slice %d/%d: %v", backend, i, count, err)
				}
				slices_[i] = s
			}
			for _, u := range []int{0, 7, n - 1} {
				for _, k := range []int{1, 10, n + 5} {
					want, err := full.TopK(ctx, u, k)
					if err != nil {
						t.Fatal(err)
					}
					parts := make([][]Neighbor, count)
					for i, s := range slices_ {
						if parts[i], err = s.TopK(ctx, u, k); err != nil {
							t.Fatal(err)
						}
					}
					got := mergeSliceResults(parts, k)
					if !slices.Equal(got, want) {
						t.Fatalf("%v count=%d u=%d k=%d: merged slices differ from full index\n got %v\nwant %v",
							backend, count, u, k, got, want)
					}
				}
			}
		}
	}
}

// TestShardSliceQuantizedDominates: the quantized backend's per-slice
// shortlists union to a superset of the single-index shortlist, so the
// merged answer's exact scores can only be at least as good, rank for
// rank.
func TestShardSliceQuantizedDominates(t *testing.T) {
	emb := testEmbedding(t, 150)
	ctx := context.Background()
	const count, k = 3, 10
	full, err := BuildIndex(emb, WithBackend(BackendQuantized))
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][]Neighbor, count)
	for u := 0; u < 20; u++ {
		want, err := full.TopK(ctx, u, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range parts {
			s, err := BuildIndex(emb, WithBackend(BackendQuantized), WithShardSlice(i, count))
			if err != nil {
				t.Fatal(err)
			}
			if parts[i], err = s.TopK(ctx, u, k); err != nil {
				t.Fatal(err)
			}
		}
		got := mergeSliceResults(parts, k)
		if len(got) != len(want) {
			t.Fatalf("u=%d: merged %d results, full %d", u, len(got), len(want))
		}
		for r := range got {
			if got[r].Score < want[r].Score {
				t.Fatalf("u=%d rank %d: merged score %g below single-index %g", u, r, got[r].Score, want[r].Score)
			}
		}
	}
}

// TestShardSliceTopKMany: the batched path respects the slice too.
func TestShardSliceTopKMany(t *testing.T) {
	emb := testEmbedding(t, 120)
	ctx := context.Background()
	lo, hi := ShardRange(emb.N(), 1, 3)
	s, err := BuildIndex(emb, WithShardSlice(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.TopKMany(ctx, []int{3, 50, 110}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		for _, nb := range r.Neighbors {
			if nb.Node < lo || nb.Node >= hi {
				t.Fatalf("source %d: candidate %d outside slice [%d,%d)", r.Source, nb.Node, lo, hi)
			}
		}
	}
	// ScoreMany stays global: pairs outside the slice still score.
	if _, err := s.ScoreMany(ctx, []Pair{{U: 0, V: emb.N() - 1}}); err != nil {
		t.Fatalf("ScoreMany outside slice: %v", err)
	}
}

func TestShardSliceValidation(t *testing.T) {
	emb := testEmbedding(t, 60)
	for _, tc := range []struct {
		name string
		opts []IndexOption
		want error
	}{
		{"negative index", []IndexOption{WithShardSlice(-1, 3)}, ErrInvalidIndexOption},
		{"index past count", []IndexOption{WithShardSlice(3, 3)}, ErrInvalidIndexOption},
		{"zero count", []IndexOption{WithShardSlice(0, 0)}, ErrInvalidIndexOption},
		{"count past n", []IndexOption{WithShardSlice(0, 61)}, ErrInvalidIndexOption},
		{"hnsw conflict", []IndexOption{WithBackend(BackendHNSW), WithShardSlice(0, 2)}, ErrIndexOptionConflict},
	} {
		if _, err := BuildIndex(emb, tc.opts...); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestShardSliceSnapshot: slices are a load-time choice — a restricted
// index cannot be persisted, and loading a full snapshot with
// WithShardSlice reproduces the restricted build for every backend that
// persists build state.
func TestShardSliceSnapshot(t *testing.T) {
	emb := testEmbedding(t, 90)
	ctx := context.Background()
	for _, backend := range []Backend{BackendExact, BackendQuantized, BackendPruned} {
		full, err := BuildIndex(emb, WithBackend(backend))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SaveIndex(&buf, full); err != nil {
			t.Fatal(err)
		}
		restricted, err := LoadIndex(bytes.NewReader(buf.Bytes()), WithShardSlice(1, 2))
		if err != nil {
			t.Fatalf("%v: loading with slice: %v", backend, err)
		}
		built, err := BuildIndex(emb, WithBackend(backend), WithShardSlice(1, 2))
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range []int{0, 45, 89} {
			got, err := restricted.TopK(ctx, u, 7)
			if err != nil {
				t.Fatal(err)
			}
			want, err := built.TopK(ctx, u, 7)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(got, want) {
				t.Fatalf("%v u=%d: snapshot-loaded slice differs from built slice", backend, u)
			}
		}
		// The restricted index itself must refuse to persist.
		if err := SaveIndex(&bytes.Buffer{}, restricted); err == nil {
			t.Fatalf("%v: SaveIndex accepted a slice-restricted index", backend)
		}
	}
}

func TestShardRangePartition(t *testing.T) {
	for _, n := range []int{1, 5, 7, 100, 101} {
		for count := 1; count <= n && count <= 9; count++ {
			next := 0
			for i := 0; i < count; i++ {
				lo, hi := ShardRange(n, i, count)
				if lo != next || hi < lo || hi > n {
					t.Fatalf("n=%d count=%d slice %d: [%d,%d) does not continue partition at %d", n, count, i, lo, hi, next)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d count=%d: partition ends at %d", n, count, next)
			}
		}
	}
}
