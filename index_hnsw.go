package nrp

import (
	"context"
	"sort"
	"sync"
	"time"

	"github.com/nrp-embed/nrp/internal/ann"
	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/par"
	"github.com/nrp-embed/nrp/internal/quant"
)

// hnswIndex is the sublinear Searcher backend: a hierarchical navigable
// small-world graph (internal/ann) over the backward embedding rows,
// answering each top-k query with a greedy beam search that scores
// O(efSearch·M) candidates instead of all n. Results are approximate —
// recall is bought with a wider beam (WithEfSearch) — which is the only
// backend in this package trading exactness for sublinear query time.
//
// With the quantized coarse stage (WithHNSWQuantized), in-graph scores
// use the fused int8 kernel and the top rerank·k beam survivors are
// re-scored exactly, mirroring the quantized scan backend's contract:
// returned scores are always exact, only ranks can be missed.
type hnswIndex struct {
	emb *Embedding
	cfg indexConfig
	g   *ann.Index
	qy  *quant.Matrix // non-nil iff the coarse stage is quantized
	// seeds holds the ids of the highest-norm rows (descending norm).
	// Each query's beam starts from a prefix of this list — NRP's
	// heavy-tailed norms mean these hubs dominate every top-k answer, so
	// seeding them raises the beam's admission bar immediately and the
	// graph only has to recover the query-specific tail. Derived from the
	// embedding, never persisted.
	seeds []int32
	// qbuf recycles per-query int8 quantization buffers: at a few
	// microseconds per query the two small allocations inside
	// QuantizeQuery are measurable.
	qbuf sync.Pool
}

var _ Searcher = (*hnswIndex)(nil)

// hnswSeedPool caps the stored seed list; queries take the leading
// hnswSeedRows entries (default 4·efSearch).
const hnswSeedPool = 1024

// hnswSeedPoolSize sizes the stored list so an explicit WithHNSWSeedRows
// or a wide default beam is never silently clipped.
func hnswSeedPoolSize(cfg *indexConfig) int {
	want := 4 * cfg.efSearch
	if cfg.hnswSeedRowsExpl {
		want = cfg.hnswSeedRows
	}
	if want < hnswSeedPool {
		want = hnswSeedPool
	}
	return want
}

// topNormRows returns the ids of the top-t rows of y by norm (ties by
// ascending id). pool bounds the norm pass; nil runs serially.
func topNormRows(y *matrix.Dense, t int, pool *par.Pool) []int32 {
	n := y.Rows
	if t > n {
		t = n
	}
	if t <= 0 {
		return nil
	}
	norms := make([]float64, n)
	pool.For(n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			r := y.Row(v)
			norms[v] = matrix.Dot(r, r)
		}
	})
	ids := make([]int32, n)
	for v := range ids {
		ids[v] = int32(v)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if norms[a] != norms[b] {
			return norms[a] > norms[b]
		}
		return a < b
	})
	return append([]int32(nil), ids[:t]...)
}

func newHNSWIndex(emb *Embedding, cfg indexConfig) *hnswIndex {
	// Graph construction parallelizes over the WithThreads budget; the
	// result is bit-identical for every thread count (internal/ann's
	// determinism contract), so snapshots don't depend on the build host.
	pool := par.New(cfg.buildThreads)
	g := ann.Build(emb.Y, ann.Config{
		M:              cfg.hnswM,
		EfConstruction: cfg.hnswEfCons,
		EfSearch:       cfg.efSearch,
		Seed:           cfg.hnswSeed,
	}, pool)
	// Reflect resolved defaults back into the config so SaveIndex
	// persists the parameters the graph was actually built with.
	ac := g.Config()
	cfg.hnswM, cfg.hnswEfCons, cfg.efSearch, cfg.hnswSeed = ac.M, ac.EfConstruction, ac.EfSearch, ac.Seed
	ix := &hnswIndex{emb: emb, cfg: cfg, g: g}
	ix.seeds = topNormRows(emb.Y, hnswSeedPoolSize(&cfg), pool)
	if cfg.hnswQuant {
		ix.qy = quant.QuantizeRowsPool(pool, emb.Y)
	}
	return ix
}

// loadedHNSWIndex rebinds a decoded graph (and optional quantized rows)
// from snapshot payload without rebuilding. The seed list is not part of
// the snapshot — it is re-derived from the embedding (a single norm pass
// plus a sort, milliseconds at n=100k).
func loadedHNSWIndex(emb *Embedding, cfg indexConfig, g *ann.Index, qy *quant.Matrix) *hnswIndex {
	ix := &hnswIndex{emb: emb, cfg: cfg, g: g, qy: qy}
	ix.seeds = topNormRows(emb.Y, hnswSeedPoolSize(&cfg), nil)
	return ix
}

func (ix *hnswIndex) N() int { return ix.emb.N() }

// Backend reports BackendHNSW.
func (ix *hnswIndex) Backend() Backend { return BackendHNSW }

func (ix *hnswIndex) TopK(ctx context.Context, u, k int) ([]Neighbor, error) {
	nbrs, _, err := ix.topkOne(ctx, u, k, true)
	return nbrs, err
}

func (ix *hnswIndex) TopKMany(ctx context.Context, us []int, k int) ([]Result, error) {
	return topkMany(ctx, ix.emb.N(), ix.cfg.shards, us, k, ix.topkOne)
}

func (ix *hnswIndex) ScoreMany(ctx context.Context, pairs []Pair) ([]float64, error) {
	return scoreManyExact(ctx, ix.emb, pairs, ix.cfg.shards)
}

// topkOne runs one graph search. A query is a few microseconds of work,
// so shards play no role here (the parallel flag is accepted only to
// satisfy topkOneFunc); TopKMany still parallelizes across queries.
func (ix *hnswIndex) topkOne(ctx context.Context, u, k int, _ bool) ([]Neighbor, QueryStats, error) {
	start := time.Now()
	var stats QueryStats
	n := ix.emb.N()
	if err := validateQuery(n, u, k); err != nil {
		return nil, stats, err
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	k = clampK(n, k, ix.cfg.includeSelf)
	if k == 0 {
		return nil, stats, nil
	}

	// The beam must return at least k results plus one slot for a self
	// hit that will be filtered out. The rerank shortlist does NOT widen
	// the beam: re-scoring beam survivors exactly costs ~15ns each, so
	// rerank·k is simply capped by what the beam returns — recall is
	// bought with efSearch (graph work), precision within the beam with
	// rerank (a few exact dots).
	short := k
	if ix.qy != nil {
		short = k * ix.cfg.rerank
	}
	ef := ix.cfg.efSearch
	need := k
	if !ix.cfg.includeSelf {
		need++
	}
	if ef < need {
		ef = need
	}

	var score func(int32) float64
	if ix.qy != nil {
		// Quantized scale factors are positive per-query constants: they
		// cannot change the candidate ordering, so the raw int32 dot
		// drives the search and the exact rerank below restores scores.
		var qx []int8
		if v, ok := ix.qbuf.Get().(*[]int8); ok {
			qx = *v
		} else {
			qx = make([]int8, ix.emb.Dim())
		}
		defer ix.qbuf.Put(&qx)
		ix.qy.QuantizeQueryInto(qx, ix.emb.X.Row(u))
		score = func(v int32) float64 { return float64(quant.Dot(qx, ix.qy.Row(int(v)))) }
	} else {
		xu := ix.emb.X.Row(u)
		score = func(v int32) float64 { return matrix.Dot(xu, ix.emb.Y.Row(int(v))) }
	}

	seeds := ix.seeds
	t := 4 * ef
	if ix.cfg.hnswSeedRowsExpl {
		t = ix.cfg.hnswSeedRows
	}
	if t > len(seeds) {
		t = len(seeds)
	}
	cands, scanned := ix.g.TopCandidatesSeeded(score, ef, seeds[:t])
	stats.Scanned = scanned

	final := newTopkHeap(k)
	taken := 0
	for _, c := range cands {
		if taken == short {
			break
		}
		v := int(c.Node)
		if v == u && !ix.cfg.includeSelf {
			continue
		}
		taken++
		if ix.qy != nil {
			final.offer(v, ix.emb.Score(u, v))
			stats.Reranked++
		} else {
			final.offer(v, c.Score)
		}
	}
	stats.Elapsed = time.Since(start)
	return sortNeighbors(final.items), stats, nil
}
