package nrp

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"

	"github.com/nrp-embed/nrp/internal/ann"
	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/quant"
)

// Index snapshots persist a built Searcher — embedding plus the
// backend's build-time preprocessing (quantization codes and scales, or
// the norm-sort permutation) — so a serving process boots by reading the
// file instead of re-quantizing or re-sorting.
//
// Format (little-endian): the magic "NRPX", an int64 header
// {version, backend, shards, rerank, includeSelf, n, dim}, the X then Y
// float64 payloads, and a backend-specific payload (quantized: dim
// scales + n·dim int8 codes; pruned: n int32 permutation).
//
// An HNSW snapshot is framed as a valid exact (or, with the quantized
// coarse stage, quantized) snapshot followed by a trailing section:
// the magic "NRPH", int64 {sectionVersion, payloadLen}, the ann graph
// payload, and its CRC-32C. Readers of the base format stop after the
// base payload and never see the section, so an old binary loads the
// same file as a scan index over the identical embedding; readers that
// know the section reconstruct the graph without rebuilding it.
const (
	indexMagic   = "NRPX"
	indexVersion = 1

	hnswSectionMagic   = "NRPH"
	hnswSectionVersion = 1
)

// indexCRCTable is the CRC-32C (Castagnoli) table guarding the HNSW
// section payload, matching the NRPG snapshot checksums.
var indexCRCTable = crc32.MakeTable(crc32.Castagnoli)

// SaveIndex writes a snapshot of a Searcher built by BuildIndex (or
// loaded by LoadIndex). Searcher implementations from outside this
// package are rejected.
func SaveIndex(w io.Writer, s Searcher) error {
	var (
		emb     *Embedding
		cfg     indexConfig
		payload func(*bufio.Writer) error
		section func(*bufio.Writer) error
	)
	quantPayload := func(qy *quant.Matrix) func(*bufio.Writer) error {
		return func(bw *bufio.Writer) error {
			if err := binary.Write(bw, binary.LittleEndian, qy.Scales); err != nil {
				return err
			}
			return binary.Write(bw, binary.LittleEndian, qy.Codes)
		}
	}
	switch ix := s.(type) {
	case *Index:
		emb, cfg = ix.emb, ix.cfg
		payload = func(*bufio.Writer) error { return nil }
	case *quantIndex:
		emb, cfg = ix.emb, ix.cfg
		payload = quantPayload(ix.qy)
	case *prunedIndex:
		emb, cfg = ix.emb, ix.cfg
		payload = func(bw *bufio.Writer) error {
			return binary.Write(bw, binary.LittleEndian, ix.perm)
		}
	case *hnswIndex:
		emb, cfg = ix.emb, ix.cfg
		// The header names the base backend an old reader should fall
		// back to; the graph itself rides in the trailing section.
		if ix.qy != nil {
			cfg.backend = BackendQuantized
			payload = quantPayload(ix.qy)
		} else {
			cfg.backend = BackendExact
			payload = func(*bufio.Writer) error { return nil }
		}
		section = func(bw *bufio.Writer) error {
			var buf bytes.Buffer
			if err := ix.g.Encode(&buf); err != nil {
				return err
			}
			if _, err := bw.WriteString(hnswSectionMagic); err != nil {
				return err
			}
			for _, h := range []int64{hnswSectionVersion, int64(buf.Len())} {
				if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
					return err
				}
			}
			if _, err := bw.Write(buf.Bytes()); err != nil {
				return err
			}
			return binary.Write(bw, binary.LittleEndian, crc32.Checksum(buf.Bytes(), indexCRCTable))
		}
	default:
		return fmt.Errorf("nrp: SaveIndex: unsupported Searcher %T", s)
	}
	if cfg.sliceSet {
		// A slice-restricted index holds filtered build state (the pruned
		// backend's permutation); snapshots always persist the full index.
		// Persist an unrestricted build and load it with WithShardSlice.
		return fmt.Errorf("nrp: SaveIndex: index is restricted to shard slice %d/%d; save the full index and pass WithShardSlice at load", cfg.shardIdx, cfg.shardCnt)
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return err
	}
	self := int64(0)
	if cfg.includeSelf {
		self = 1
	}
	// A defaulted shard count is host-derived state, not configuration:
	// persist 0 so the serving host re-derives it from its own cores.
	shards := int64(0)
	if cfg.shardsExplicit {
		shards = int64(cfg.shards)
	}
	header := []int64{indexVersion, int64(cfg.backend), shards,
		int64(cfg.rerank), self, int64(emb.N()), int64(emb.Dim())}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, m := range []*matrix.Dense{emb.X, emb.Y} {
		if err := binary.Write(bw, binary.LittleEndian, m.Data); err != nil {
			return err
		}
	}
	if err := payload(bw); err != nil {
		return err
	}
	if section != nil {
		if err := section(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadIndex reads a snapshot written by SaveIndex and reconstructs the
// Searcher without redoing build-time preprocessing. Options override the
// snapshot's serving configuration — WithShards to match the host's cores,
// WithRerank, WithIncludeSelf, WithEfSearch for HNSW snapshots — but the
// backend and the HNSW build parameters are part of the payload: passing
// WithBackend with a different backend, or an HNSW build option, is an
// error.
func LoadIndex(r io.Reader, opts ...IndexOption) (Searcher, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("nrp: reading index magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("nrp: bad index magic %q", magic)
	}
	var version, backend, shards, rerank, self, n, dim int64
	for _, p := range []*int64{&version, &backend, &shards, &rerank, &self, &n, &dim} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("nrp: reading index header: %w", err)
		}
	}
	if version != indexVersion {
		return nil, fmt.Errorf("nrp: unsupported index version %d", version)
	}
	// Bound each dimension before multiplying so a corrupt header cannot
	// overflow the product into plausibility (or makeslice into a panic).
	if n < 0 || dim < 0 || n > 1<<34 || dim > 1<<24 || (dim > 0 && n > (1<<34)/dim) {
		return nil, fmt.Errorf("nrp: implausible index dimensions %dx%d", n, dim)
	}
	if shards < 0 || shards > 1<<20 || rerank < 0 || rerank > 1<<20 {
		return nil, fmt.Errorf("nrp: implausible index config (shards=%d rerank=%d)", shards, rerank)
	}

	stored := indexConfig{backend: Backend(backend), shards: int(shards),
		shardsExplicit: shards != 0, rerank: int(rerank), includeSelf: self != 0}

	emb := &Embedding{X: matrix.NewDense(int(n), int(dim)), Y: matrix.NewDense(int(n), int(dim))}
	for _, m := range []*matrix.Dense{emb.X, emb.Y} {
		if err := binary.Read(br, binary.LittleEndian, m.Data); err != nil {
			return nil, fmt.Errorf("nrp: reading index embedding: %w", err)
		}
	}

	// Base backend payload.
	var (
		qy   *quant.Matrix
		perm []int32
	)
	switch stored.backend {
	case BackendExact:
	case BackendQuantized:
		qy = &quant.Matrix{N: int(n), Dim: int(dim),
			Scales: make([]float64, dim), Codes: make([]int8, n*dim)}
		if err := binary.Read(br, binary.LittleEndian, qy.Scales); err != nil {
			return nil, fmt.Errorf("nrp: reading quantization scales: %w", err)
		}
		if err := binary.Read(br, binary.LittleEndian, qy.Codes); err != nil {
			return nil, fmt.Errorf("nrp: reading quantization codes: %w", err)
		}
	case BackendPruned:
		perm = make([]int32, n)
		if err := binary.Read(br, binary.LittleEndian, perm); err != nil {
			return nil, fmt.Errorf("nrp: reading norm permutation: %w", err)
		}
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || int64(v) >= n || seen[v] {
				return nil, fmt.Errorf("nrp: corrupt norm permutation (node %d)", v)
			}
			seen[v] = true
		}
	default:
		return nil, fmt.Errorf("nrp: snapshot names unknown backend %d", backend)
	}

	// Trailing HNSW section. A base-format snapshot simply ends here; any
	// trailing bytes must be a well-formed, checksummed graph section.
	var graph *ann.Index
	if _, err := br.Peek(1); err == nil {
		graph, err = readHNSWSection(br, emb.Y)
		if err != nil {
			return nil, err
		}
		if stored.backend == BackendPruned {
			return nil, fmt.Errorf("nrp: HNSW section on a pruned base snapshot")
		}
		ac := graph.Config()
		stored.backend = BackendHNSW
		stored.hnswM, stored.hnswEfCons, stored.efSearch, stored.hnswSeed = ac.M, ac.EfConstruction, ac.EfSearch, ac.Seed
		stored.hnswQuant = qy != nil
	} else if err != io.EOF {
		return nil, fmt.Errorf("nrp: probing for index sections: %w", err)
	}

	cfg := stored
	for _, o := range opts {
		if o != nil {
			o.applyIndex(&cfg)
		}
	}
	if cfg.backend != stored.backend {
		return nil, fmt.Errorf("nrp: snapshot was built with backend %v, cannot load as %v", stored.backend, cfg.backend)
	}
	if cfg.hnswMExplicit || cfg.hnswEfConsExpl || cfg.hnswSeedExpl || cfg.hnswQuantExpl {
		return nil, fmt.Errorf("nrp: HNSW build parameters are baked into the snapshot; only serving options (WithEfSearch, WithHNSWSeedRows, WithShards, WithRerank, WithIncludeSelf) can be overridden at load: %w", ErrIndexOptionConflict)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := cfg.validateSize(int(n)); err != nil {
		return nil, err
	}
	if cfg.shards == 0 {
		cfg.shards = runtime.GOMAXPROCS(0)
	}

	switch cfg.backend {
	case BackendExact:
		return &Index{emb: emb, cfg: cfg}, nil
	case BackendQuantized:
		return loadedQuantIndex(emb, cfg, qy), nil
	case BackendPruned:
		ix := loadedPrunedIndex(emb, cfg, perm, nil)
		// The early-exit bound assumes positions are in non-increasing norm
		// order; a bijective but shuffled permutation would silently drop
		// results, so reject it here.
		for i := 1; i < len(ix.norms); i++ {
			if ix.norms[i] > ix.norms[i-1] {
				return nil, fmt.Errorf("nrp: corrupt norm permutation (norms not sorted at position %d)", i)
			}
		}
		return ix, nil
	default:
		return loadedHNSWIndex(emb, cfg, graph, qy), nil
	}
}

// readHNSWSection parses and verifies the trailing graph section: magic,
// version, length-prefixed payload, CRC-32C, then the graph's own
// structural validation against the embedding it will search.
func readHNSWSection(br *bufio.Reader, y *matrix.Dense) (*ann.Index, error) {
	magic := make([]byte, len(hnswSectionMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("nrp: reading index section magic: %w", err)
	}
	if string(magic) != hnswSectionMagic {
		return nil, fmt.Errorf("nrp: bad index section magic %q", magic)
	}
	var sversion, plen int64
	for _, p := range []*int64{&sversion, &plen} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("nrp: reading index section header: %w", err)
		}
	}
	if sversion != hnswSectionVersion {
		return nil, fmt.Errorf("nrp: unsupported index section version %d", sversion)
	}
	if plen < 0 || plen > 1<<38 {
		return nil, fmt.Errorf("nrp: implausible index section length %d", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("nrp: reading index section payload: %w", err)
	}
	var sum uint32
	if err := binary.Read(br, binary.LittleEndian, &sum); err != nil {
		return nil, fmt.Errorf("nrp: reading index section checksum: %w", err)
	}
	if got := crc32.Checksum(payload, indexCRCTable); got != sum {
		return nil, fmt.Errorf("nrp: index section checksum mismatch (stored %08x, computed %08x)", sum, got)
	}
	graph, err := ann.Decode(payload, y)
	if err != nil {
		return nil, fmt.Errorf("nrp: decoding HNSW section: %w", err)
	}
	return graph, nil
}
