package nrp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"

	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/quant"
)

// Index snapshots persist a built Searcher — embedding plus the
// backend's build-time preprocessing (quantization codes and scales, or
// the norm-sort permutation) — so a serving process boots by reading the
// file instead of re-quantizing or re-sorting.
//
// Format (little-endian): the magic "NRPX", an int64 header
// {version, backend, shards, rerank, includeSelf, n, dim}, the X then Y
// float64 payloads, and a backend-specific payload (quantized: dim
// scales + n·dim int8 codes; pruned: n int32 permutation).
const (
	indexMagic   = "NRPX"
	indexVersion = 1
)

// SaveIndex writes a snapshot of a Searcher built by BuildIndex (or
// loaded by LoadIndex). Searcher implementations from outside this
// package are rejected.
func SaveIndex(w io.Writer, s Searcher) error {
	var (
		emb     *Embedding
		cfg     indexConfig
		payload func(*bufio.Writer) error
	)
	switch ix := s.(type) {
	case *Index:
		emb, cfg = ix.emb, ix.cfg
		payload = func(*bufio.Writer) error { return nil }
	case *quantIndex:
		emb, cfg = ix.emb, ix.cfg
		payload = func(bw *bufio.Writer) error {
			if err := binary.Write(bw, binary.LittleEndian, ix.qy.Scales); err != nil {
				return err
			}
			return binary.Write(bw, binary.LittleEndian, ix.qy.Codes)
		}
	case *prunedIndex:
		emb, cfg = ix.emb, ix.cfg
		payload = func(bw *bufio.Writer) error {
			return binary.Write(bw, binary.LittleEndian, ix.perm)
		}
	default:
		return fmt.Errorf("nrp: SaveIndex: unsupported Searcher %T", s)
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return err
	}
	self := int64(0)
	if cfg.includeSelf {
		self = 1
	}
	// A defaulted shard count is host-derived state, not configuration:
	// persist 0 so the serving host re-derives it from its own cores.
	shards := int64(0)
	if cfg.shardsExplicit {
		shards = int64(cfg.shards)
	}
	header := []int64{indexVersion, int64(cfg.backend), shards,
		int64(cfg.rerank), self, int64(emb.N()), int64(emb.Dim())}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, m := range []*matrix.Dense{emb.X, emb.Y} {
		if err := binary.Write(bw, binary.LittleEndian, m.Data); err != nil {
			return err
		}
	}
	if err := payload(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadIndex reads a snapshot written by SaveIndex and reconstructs the
// Searcher without redoing build-time preprocessing. Options override the
// snapshot's serving configuration — WithShards to match the host's cores,
// WithRerank, WithIncludeSelf — but the backend is part of the payload:
// passing WithBackend with a different backend is an error.
func LoadIndex(r io.Reader, opts ...IndexOption) (Searcher, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("nrp: reading index magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("nrp: bad index magic %q", magic)
	}
	var version, backend, shards, rerank, self, n, dim int64
	for _, p := range []*int64{&version, &backend, &shards, &rerank, &self, &n, &dim} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("nrp: reading index header: %w", err)
		}
	}
	if version != indexVersion {
		return nil, fmt.Errorf("nrp: unsupported index version %d", version)
	}
	// Bound each dimension before multiplying so a corrupt header cannot
	// overflow the product into plausibility (or makeslice into a panic).
	if n < 0 || dim < 0 || n > 1<<34 || dim > 1<<24 || (dim > 0 && n > (1<<34)/dim) {
		return nil, fmt.Errorf("nrp: implausible index dimensions %dx%d", n, dim)
	}
	if shards < 0 || shards > 1<<20 || rerank < 0 || rerank > 1<<20 {
		return nil, fmt.Errorf("nrp: implausible index config (shards=%d rerank=%d)", shards, rerank)
	}

	stored := indexConfig{backend: Backend(backend), shards: int(shards),
		shardsExplicit: shards != 0, rerank: int(rerank), includeSelf: self != 0}
	cfg := stored
	for _, o := range opts {
		if o != nil {
			o.applyIndex(&cfg)
		}
	}
	if cfg.backend != stored.backend {
		return nil, fmt.Errorf("nrp: snapshot was built with backend %v, cannot load as %v", stored.backend, cfg.backend)
	}
	if cfg.shards < 0 {
		return nil, fmt.Errorf("nrp: shards must be non-negative, got %d", cfg.shards)
	}
	if cfg.shards == 0 {
		cfg.shards = runtime.GOMAXPROCS(0)
	}
	if cfg.rerank < 1 {
		return nil, fmt.Errorf("nrp: rerank multiplier must be at least 1, got %d", cfg.rerank)
	}

	emb := &Embedding{X: matrix.NewDense(int(n), int(dim)), Y: matrix.NewDense(int(n), int(dim))}
	for _, m := range []*matrix.Dense{emb.X, emb.Y} {
		if err := binary.Read(br, binary.LittleEndian, m.Data); err != nil {
			return nil, fmt.Errorf("nrp: reading index embedding: %w", err)
		}
	}

	switch cfg.backend {
	case BackendExact:
		return &Index{emb: emb, cfg: cfg}, nil
	case BackendQuantized:
		qy := &quant.Matrix{N: int(n), Dim: int(dim),
			Scales: make([]float64, dim), Codes: make([]int8, n*dim)}
		if err := binary.Read(br, binary.LittleEndian, qy.Scales); err != nil {
			return nil, fmt.Errorf("nrp: reading quantization scales: %w", err)
		}
		if err := binary.Read(br, binary.LittleEndian, qy.Codes); err != nil {
			return nil, fmt.Errorf("nrp: reading quantization codes: %w", err)
		}
		return loadedQuantIndex(emb, cfg, qy), nil
	case BackendPruned:
		perm := make([]int32, n)
		if err := binary.Read(br, binary.LittleEndian, perm); err != nil {
			return nil, fmt.Errorf("nrp: reading norm permutation: %w", err)
		}
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || int64(v) >= n || seen[v] {
				return nil, fmt.Errorf("nrp: corrupt norm permutation (node %d)", v)
			}
			seen[v] = true
		}
		ix := loadedPrunedIndex(emb, cfg, perm, nil)
		// The early-exit bound assumes positions are in non-increasing norm
		// order; a bijective but shuffled permutation would silently drop
		// results, so reject it here.
		for i := 1; i < len(ix.norms); i++ {
			if ix.norms[i] > ix.norms[i-1] {
				return nil, fmt.Errorf("nrp: corrupt norm permutation (norms not sorted at position %d)", i)
			}
		}
		return ix, nil
	default:
		return nil, fmt.Errorf("nrp: snapshot names unknown backend %d", backend)
	}
}
