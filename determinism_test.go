package nrp

import (
	"context"
	"math"
	"testing"
)

// determinismGraph is the shared fixture: a mid-sized community graph so
// every pipeline phase (BKSVD, PPR folding, reweighting) does real work.
func determinismGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := GenSBM(SBMConfig{N: 2000, M: 12000, Communities: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEmbedThreadCountParity checks the engine's determinism contract
// across thread budgets: embeddings built with 8 workers and 1 worker
// agree within 1e-10 — the only divergence allowed is floating-point
// reassociation in the fixed-order partial reductions.
func TestEmbedThreadCountParity(t *testing.T) {
	g := determinismGraph(t)
	opt := DefaultOptions()
	opt.Dim = 32
	ctx := context.Background()

	one, stats1, err := EmbedCtx(ctx, g, opt, WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Threads != 1 {
		t.Fatalf("stats report %d threads, want 1", stats1.Threads)
	}
	eight, stats8, err := EmbedCtx(ctx, g, opt, WithThreads(8))
	if err != nil {
		t.Fatal(err)
	}
	if stats8.Threads != 8 {
		t.Fatalf("stats report %d threads, want 8", stats8.Threads)
	}

	const tol = 1e-10
	if d := one.X.MaxAbsDiff(eight.X); d > tol {
		t.Errorf("X diverges across thread counts: max abs diff %g > %g", d, tol)
	}
	if d := one.Y.MaxAbsDiff(eight.Y); d > tol {
		t.Errorf("Y diverges across thread counts: max abs diff %g > %g", d, tol)
	}
	// Sanity: the embeddings are not degenerate.
	if n := one.X.FrobeniusNorm(); math.IsNaN(n) || n == 0 {
		t.Fatalf("degenerate single-thread embedding (‖X‖ = %v)", n)
	}
}

// TestEmbedParallelRepeatable checks that repeated parallel runs with a
// fixed seed and thread count are bit-identical: the engine's chunk
// boundaries and reduction orders depend only on the problem shape and
// the thread budget, never on goroutine scheduling.
func TestEmbedParallelRepeatable(t *testing.T) {
	g := determinismGraph(t)
	opt := DefaultOptions()
	opt.Dim = 32
	ctx := context.Background()

	first, _, err := EmbedCtx(ctx, g, opt, WithThreads(8))
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := EmbedCtx(ctx, g, opt, WithThreads(8))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range first.X.Data {
		if second.X.Data[i] != v {
			t.Fatalf("X differs between identical parallel runs at element %d: %v vs %v", i, v, second.X.Data[i])
		}
	}
	for i, v := range first.Y.Data {
		if second.Y.Data[i] != v {
			t.Fatalf("Y differs between identical parallel runs at element %d: %v vs %v", i, v, second.Y.Data[i])
		}
	}
}

// TestStatsParallelWall checks the per-phase parallel accounting is
// populated: phases that run kernels must report nonzero parallel wall
// time bounded by the phase duration (with slack for timer granularity).
func TestStatsParallelWall(t *testing.T) {
	g := determinismGraph(t)
	opt := DefaultOptions()
	opt.Dim = 32
	_, stats, err := EmbedCtx(context.Background(), g, opt, WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Factorize.Parallel <= 0 {
		t.Errorf("factorize phase reports no parallel kernel time")
	}
	if stats.PPR.Parallel <= 0 {
		t.Errorf("ppr phase reports no parallel kernel time")
	}
	if stats.Reweight.Parallel <= 0 {
		t.Errorf("reweight phase reports no parallel kernel time")
	}
}
