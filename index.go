package nrp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nrp-embed/nrp/internal/matrix"
)

// Neighbor is one result of a proximity query: a candidate node and its
// directed proximity score from the query source.
type Neighbor struct {
	Node  int
	Score float64
}

// Pair is a (source, target) query for ScoreMany.
type Pair struct {
	U, V int
}

// Sentinel errors returned by query validation, so callers (e.g. the
// nrpserve HTTP layer) can map malformed requests to client errors with
// errors.Is.
var (
	// ErrInvalidK is returned when a top-k query asks for k <= 0.
	ErrInvalidK = errors.New("k must be positive")
	// ErrNodeOutOfRange is returned when a query names a node id outside
	// [0, N).
	ErrNodeOutOfRange = errors.New("node id out of range")
	// ErrInvalidIndexOption is returned by BuildIndex/LoadIndex when an
	// option's value is out of range (negative shards, rerank < 1, a shard
	// count exceeding the index size, ...).
	ErrInvalidIndexOption = errors.New("invalid index option")
	// ErrIndexOptionConflict is returned by BuildIndex/LoadIndex when an
	// option is meaningless for the selected backend (WithRerank on an
	// exact scan, WithEfSearch on a non-HNSW backend, ...). Silently
	// ignoring such combinations would hide configuration mistakes.
	ErrIndexOptionConflict = errors.New("index option conflicts with backend")
)

// QueryStats instruments one top-k query: how much work the backend
// actually did, which is the observable difference between backends.
type QueryStats struct {
	// Scanned is the number of candidates scored (exactly or with the
	// quantized kernel).
	Scanned int
	// Pruned is the number of candidates skipped by an early-exit bound
	// without being scored (norm-pruned backend; 0 for exhaustive scans).
	Pruned int
	// Reranked is the number of shortlist candidates re-scored exactly
	// after the approximate pass (quantized backend; 0 otherwise).
	Reranked int
	// Elapsed is the query's wall time.
	Elapsed time.Duration
}

// Result is one query's answer in a TopKMany batch.
type Result struct {
	// Source is the query node the neighbors belong to.
	Source    int
	Neighbors []Neighbor
	Stats     QueryStats
}

// Searcher answers proximity queries over an embedding. BuildIndex
// constructs one backed by an exact, int8-quantized, or norm-pruned scan,
// or by a sublinear HNSW graph search; all backends are safe for
// concurrent use.
type Searcher interface {
	// TopK returns the k nodes v maximizing the directed proximity
	// Score(u, v), best first, fanning one query out across all shards.
	TopK(ctx context.Context, u, k int) ([]Neighbor, error)
	// TopKMany answers a batch of top-k queries, parallelized across the
	// queries (each query then scans its shards sequentially), and
	// reports per-query work stats. The result is aligned with us.
	TopKMany(ctx context.Context, us []int, k int) ([]Result, error)
	// ScoreMany scores a batch of (u, v) pairs exactly.
	ScoreMany(ctx context.Context, pairs []Pair) ([]float64, error)
	// N reports the number of indexed nodes.
	N() int
}

// Backend selects the scan strategy behind a Searcher built by BuildIndex.
type Backend int

const (
	// BackendExact scans every candidate with the float64 kernel. The
	// reference backend: always exact, no build-time preprocessing.
	BackendExact Backend = iota
	// BackendQuantized scans int8-quantized backward embeddings with a
	// fused int32 kernel (8× less memory traffic), then re-scores the
	// top rerank·k shortlist exactly. Approximate with high recall.
	BackendQuantized
	// BackendPruned scans candidates in decreasing ‖Y_v‖ order and stops
	// as soon as the Cauchy–Schwarz bound ‖X_u‖·‖Y_v‖ cannot beat the
	// current k-th score. Exact results; fast when norms are skewed.
	BackendPruned
	// BackendHNSW answers queries with a greedy beam search over a
	// hierarchical navigable small-world graph built over the backward
	// embedding rows — sublinear per-query work (O(efSearch·M) score
	// evaluations instead of n). Approximate; recall is tuned with
	// WithEfSearch. Optionally evaluates in-graph scores with the int8
	// quantized kernel and reranks the top rerank·k exactly
	// (WithHNSWQuantized).
	BackendHNSW
)

// String names the backend as accepted by ParseBackend and the CLI flags.
func (b Backend) String() string {
	switch b {
	case BackendExact:
		return "exact"
	case BackendQuantized:
		return "quantized"
	case BackendPruned:
		return "pruned"
	case BackendHNSW:
		return "hnsw"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// ParseBackend resolves a backend name ("exact", "quantized", "pruned").
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "exact":
		return BackendExact, nil
	case "quantized":
		return BackendQuantized, nil
	case "pruned":
		return BackendPruned, nil
	case "hnsw":
		return BackendHNSW, nil
	}
	return 0, fmt.Errorf("nrp: unknown backend %q (want exact, quantized, pruned or hnsw)", s)
}

// indexConfig is the resolved build configuration shared by all backends.
type indexConfig struct {
	backend Backend
	shards  int
	// shardsExplicit records whether shards was chosen by the caller
	// (WithShards(n>0)) rather than defaulted to the host's cores, so
	// snapshots only persist deliberate choices — a defaulted count is
	// re-derived on the serving host at load time.
	shardsExplicit bool
	rerank         int
	// rerankExplicit records a caller-passed WithRerank, which only makes
	// sense on backends with an approximate scoring pass (quantized, or
	// HNSW with the quantized coarse stage) — elsewhere it is a
	// configuration mistake and rejected.
	rerankExplicit bool
	includeSelf    bool
	// buildThreads bounds build-time preprocessing parallelism
	// (quantization, norm computation, HNSW construction; 0 = GOMAXPROCS).
	// Set with WithThreads; never persisted in snapshots.
	buildThreads int
	// HNSW backend parameters; zero values select internal/ann defaults.
	// The explicit flags drive conflict validation (HNSW options on a scan
	// backend are rejected) and the snapshot override rules (efSearch is a
	// serving knob overridable at load; the rest are build-time and baked
	// into the persisted graph).
	hnswM          int
	hnswEfCons     int
	efSearch       int
	hnswSeed       uint64
	hnswQuant      bool
	hnswMExplicit  bool
	hnswEfConsExpl bool
	efSearchExpl   bool
	hnswSeedExpl   bool
	hnswQuantExpl  bool
	// hnswSeedRows is the number of top-norm rows seeding each query's
	// layer-0 beam (a serving knob like efSearch; 0 defaults to 4·ef,
	// WithHNSWSeedRows(0) explicitly disables seeding).
	hnswSeedRows     int
	hnswSeedRowsExpl bool
	// shardIdx/shardCnt restrict the candidate set to slice shardIdx of a
	// shardCnt-way contiguous partition of [0, n) — the distributed-serving
	// seam (WithShardSlice). The slice resolves to concrete bounds only
	// once n is known, so the same option works for BuildIndex and for
	// LoadIndex before the snapshot header is read. Never persisted: a
	// snapshot always holds the full index, the slice is a serving choice.
	shardIdx, shardCnt int
	sliceSet           bool
}

// IndexOption configures BuildIndex (and LoadIndex overrides). It is an
// interface so options can be shared across subsystems: WithThreads is
// accepted both here and by the embedding pipeline's ctx entry points.
type IndexOption interface {
	applyIndex(*indexConfig)
}

// indexOptionFunc adapts a plain function to IndexOption.
type indexOptionFunc func(*indexConfig)

func (f indexOptionFunc) applyIndex(c *indexConfig) { f(c) }

// WithBackend selects the scan strategy; BackendExact is the default.
func WithBackend(b Backend) IndexOption {
	return indexOptionFunc(func(c *indexConfig) { c.backend = b })
}

// WithShards partitions the candidate space into n shards, each scanned
// by its own goroutine with a private top-k heap merged at the end
// (0 = GOMAXPROCS, re-derived per host when a snapshot is loaded).
func WithShards(n int) IndexOption {
	return indexOptionFunc(func(c *indexConfig) { c.shards, c.shardsExplicit = n, n > 0 })
}

// WithRerank sets the approximate backends' shortlist multiplier: the top
// r·k approximately-scored candidates are re-scored exactly before the
// final top k is taken. Higher r buys recall with more exact dot
// products; the default is 4. Valid only for BackendQuantized and for
// BackendHNSW with the quantized coarse stage — passing it to an exact
// backend returns ErrIndexOptionConflict.
func WithRerank(r int) IndexOption {
	return indexOptionFunc(func(c *indexConfig) { c.rerank, c.rerankExplicit = r, true })
}

// WithEfSearch sets the HNSW query beam width: the search keeps the best
// ef candidates seen so far and stops when none of the frontier can
// improve them. Higher ef buys recall with proportionally more score
// evaluations. Valid only for BackendHNSW; it is a serving-time knob and
// may also be passed to LoadIndex to override the persisted value.
func WithEfSearch(ef int) IndexOption {
	return indexOptionFunc(func(c *indexConfig) { c.efSearch, c.efSearchExpl = ef, true })
}

// WithHNSWSeedRows sets how many of the highest-norm rows seed each HNSW
// query's layer-0 beam. Seeding exploits NRP's heavy-tailed norm profile:
// the seeds cover the hub rows every query shares (raising the beam's
// admission threshold before any edge is followed), so a much narrower
// beam recovers only the query-specific tail. The default is 4·efSearch;
// WithHNSWSeedRows(0) disables seeding and restores the pure hierarchical
// descent. Serving-time knob like WithEfSearch: valid only for
// BackendHNSW, overridable at LoadIndex.
func WithHNSWSeedRows(t int) IndexOption {
	return indexOptionFunc(func(c *indexConfig) { c.hnswSeedRows, c.hnswSeedRowsExpl = t, true })
}

// WithHNSWM sets the HNSW graph's out-degree budget M (layer 0 keeps 2M
// links). Build-time only; baked into snapshots.
func WithHNSWM(m int) IndexOption {
	return indexOptionFunc(func(c *indexConfig) { c.hnswM, c.hnswMExplicit = m, true })
}

// WithHNSWEfConstruction sets the beam width of build-time neighbor
// searches. Build-time only; baked into snapshots.
func WithHNSWEfConstruction(ef int) IndexOption {
	return indexOptionFunc(func(c *indexConfig) { c.hnswEfCons, c.hnswEfConsExpl = ef, true })
}

// WithHNSWSeed seeds the deterministic level assignment. Builds with the
// same embedding, config and seed are bit-identical regardless of thread
// count. Build-time only; baked into snapshots.
func WithHNSWSeed(seed uint64) IndexOption {
	return indexOptionFunc(func(c *indexConfig) { c.hnswSeed, c.hnswSeedExpl = seed, true })
}

// WithHNSWQuantized evaluates in-graph scores with the int8 quantized
// kernel instead of the float64 kernel, then re-scores the top rerank·k
// shortlist exactly (the quantized backend's contract). Cuts per-hop
// memory traffic 8×. Build-time only; baked into snapshots.
func WithHNSWQuantized(on bool) IndexOption {
	return indexOptionFunc(func(c *indexConfig) { c.hnswQuant, c.hnswQuantExpl = on, true })
}

// WithShardSlice restricts the candidate set to slice i of a count-way
// contiguous partition of the node space — the building block of
// distributed scatter-gather serving: a fleet of processes, each built
// (or loaded) with a distinct slice of the same embedding, together
// covers [0, n) exactly once, and a stateless router (cmd/nrprouter)
// merging their per-slice top-k answers reproduces the single-node
// result. Slice boundaries are ShardRange(n, i, count), the same range
// partition the in-process sharded scans use.
//
// Queries still accept any source node in [0, n) — only returned
// candidates are restricted — and ScoreMany stays global (the full
// embedding is always held). Valid for the scan backends (exact, pruned,
// quantized, whose results stay exact over the slice); BackendHNSW's
// graph traversal is global by construction, so combining it with a
// slice returns ErrIndexOptionConflict. A slice-restricted Searcher
// cannot be persisted with SaveIndex.
func WithShardSlice(i, count int) IndexOption {
	return indexOptionFunc(func(c *indexConfig) { c.shardIdx, c.shardCnt, c.sliceSet = i, count, true })
}

// ShardRange computes the half-open node range [lo, hi) that slice i of a
// count-way partition covers: the same contiguous range partition the
// sharded in-process scans use, lifted to process granularity so shard
// servers and the router agree on boundaries without coordination.
func ShardRange(n, i, count int) (lo, hi int) {
	return contiguousSpan(n, i, count)
}

// WithIncludeSelf admits the query node itself as a result; by default it
// is excluded, matching the link-prediction use of proximity scores.
func WithIncludeSelf(on bool) IndexOption {
	return indexOptionFunc(func(c *indexConfig) { c.includeSelf = on })
}

const defaultRerank = 4

func resolveConfig(opts []IndexOption) (indexConfig, error) {
	cfg := indexConfig{backend: BackendExact, rerank: defaultRerank}
	for _, o := range opts {
		if o != nil {
			o.applyIndex(&cfg)
		}
	}
	if err := cfg.validate(); err != nil {
		return cfg, err
	}
	if cfg.shards == 0 {
		cfg.shards = runtime.GOMAXPROCS(0)
	}
	return cfg, nil
}

// validate checks option values and backend/option compatibility; it is
// shared by BuildIndex and LoadIndex. Size-dependent checks (explicit
// shard counts vs n) live in validateSize, which runs once the embedding
// is known.
func (c *indexConfig) validate() error {
	switch c.backend {
	case BackendExact, BackendQuantized, BackendPruned, BackendHNSW:
	default:
		return fmt.Errorf("nrp: unknown backend %d: %w", int(c.backend), ErrInvalidIndexOption)
	}
	if c.shards < 0 {
		return fmt.Errorf("nrp: shards must be non-negative, got %d: %w", c.shards, ErrInvalidIndexOption)
	}
	if c.rerank < 1 {
		return fmt.Errorf("nrp: rerank multiplier must be at least 1, got %d: %w", c.rerank, ErrInvalidIndexOption)
	}
	if c.hnswMExplicit && c.hnswM < 2 {
		return fmt.Errorf("nrp: HNSW M must be at least 2, got %d: %w", c.hnswM, ErrInvalidIndexOption)
	}
	if c.hnswEfConsExpl && c.hnswEfCons < 1 {
		return fmt.Errorf("nrp: HNSW efConstruction must be positive, got %d: %w", c.hnswEfCons, ErrInvalidIndexOption)
	}
	if c.efSearchExpl && c.efSearch < 1 {
		return fmt.Errorf("nrp: efSearch must be positive, got %d: %w", c.efSearch, ErrInvalidIndexOption)
	}
	if c.hnswSeedRowsExpl && c.hnswSeedRows < 0 {
		return fmt.Errorf("nrp: HNSW seed rows must be non-negative, got %d: %w", c.hnswSeedRows, ErrInvalidIndexOption)
	}
	if c.backend != BackendHNSW {
		switch {
		case c.efSearchExpl:
			return fmt.Errorf("nrp: WithEfSearch on %v backend: %w", c.backend, ErrIndexOptionConflict)
		case c.hnswSeedRowsExpl:
			return fmt.Errorf("nrp: WithHNSWSeedRows on %v backend: %w", c.backend, ErrIndexOptionConflict)
		case c.hnswMExplicit, c.hnswEfConsExpl, c.hnswSeedExpl, c.hnswQuantExpl:
			return fmt.Errorf("nrp: HNSW build options on %v backend: %w", c.backend, ErrIndexOptionConflict)
		}
	}
	if c.rerankExplicit {
		switch {
		case c.backend == BackendExact, c.backend == BackendPruned:
			return fmt.Errorf("nrp: WithRerank on %v backend (results are already exact): %w", c.backend, ErrIndexOptionConflict)
		case c.backend == BackendHNSW && !c.hnswQuant:
			return fmt.Errorf("nrp: WithRerank on hnsw backend without WithHNSWQuantized (scores are already exact): %w", ErrIndexOptionConflict)
		}
	}
	if c.sliceSet {
		if c.shardCnt < 1 || c.shardIdx < 0 || c.shardIdx >= c.shardCnt {
			return fmt.Errorf("nrp: shard slice %d/%d out of range: %w", c.shardIdx, c.shardCnt, ErrInvalidIndexOption)
		}
		if c.backend == BackendHNSW {
			return fmt.Errorf("nrp: WithShardSlice on hnsw backend (graph traversal is global): %w", ErrIndexOptionConflict)
		}
	}
	return nil
}

// validateSize checks configuration against the index size: an explicit
// shard count larger than n means most shards scan nothing — a
// configuration mistake, not a tuning choice. Defaulted (host-derived)
// counts are clamped instead, as before.
func (c *indexConfig) validateSize(n int) error {
	if c.shardsExplicit && c.shards > n {
		return fmt.Errorf("nrp: %d shards exceed index size %d: %w", c.shards, n, ErrInvalidIndexOption)
	}
	if c.sliceSet && c.shardCnt > n {
		return fmt.Errorf("nrp: %d shard slices exceed index size %d: %w", c.shardCnt, n, ErrInvalidIndexOption)
	}
	return nil
}

// candRange resolves the candidate node range a query may return: the
// configured shard slice, or all of [0, n) on an unrestricted index.
func (c *indexConfig) candRange(n int) (lo, hi int) {
	if !c.sliceSet {
		return 0, n
	}
	return contiguousSpan(n, c.shardIdx, c.shardCnt)
}

// availCandidates counts the results a query for source u can maximally
// return: the candidate range, minus the source itself when it lies
// inside the range and self-results are excluded.
func (c *indexConfig) availCandidates(n, u int) int {
	lo, hi := c.candRange(n)
	avail := hi - lo
	if !c.includeSelf && u >= lo && u < hi {
		avail--
	}
	return avail
}

// BuildIndex constructs a query index over emb with the selected backend:
//
//	s, err := nrp.BuildIndex(emb, nrp.WithBackend(nrp.BackendQuantized), nrp.WithShards(8))
//
// The returned Searcher is immutable and safe for concurrent use; the
// embedding must not be mutated while queries run. Build-time
// preprocessing (quantization, norm sorting) happens here once, and can
// be persisted with SaveIndex so a server boots without redoing it.
func BuildIndex(emb *Embedding, opts ...IndexOption) (Searcher, error) {
	cfg, err := resolveConfig(opts)
	if err != nil {
		return nil, err
	}
	if err := cfg.validateSize(emb.N()); err != nil {
		return nil, err
	}
	switch cfg.backend {
	case BackendQuantized:
		return newQuantIndex(emb, cfg), nil
	case BackendPruned:
		return newPrunedIndex(emb, cfg), nil
	case BackendHNSW:
		return newHNSWIndex(emb, cfg), nil
	default:
		return &Index{emb: emb, cfg: cfg}, nil
	}
}

// LiveIndex is a Searcher over a DynamicEmbedding whose backing index is
// atomically swapped on refresh — RCU semantics: every query captures the
// current index once at its start and runs against it to completion, so
// in-flight queries finish on the old index while new queries see the new
// one, with zero downtime and no locking on the query path.
//
//	dyn, _ := nrp.NewDynamicEmbedding(ctx, g, opt, nrp.DynamicConfig{})
//	live, _ := nrp.NewLiveIndex(dyn, nrp.WithBackend(nrp.BackendQuantized))
//	live.TopK(ctx, u, 10)                   // serves the current index
//	live.ApplyUpdates(ctx, updates)         // graph changes take effect...
//	live.Refresh(ctx)                       // ...here: rebuild + atomic swap
//
// ApplyUpdates and Refresh serialize behind a mutex; queries never block
// on them.
type LiveIndex struct {
	mu       sync.Mutex // serializes updates and refreshes, not queries
	dyn      *DynamicEmbedding
	opts     []IndexOption
	cur      atomic.Pointer[searcherBox]
	swaps    atomic.Uint64
	lastSwap atomic.Int64 // unix nanos of the latest index swap
}

// searcherBox keeps the atomic pointer monomorphic while the boxed
// Searcher may be any backend.
type searcherBox struct{ s Searcher }

// Interface check: LiveIndex serves queries like any static backend.
var _ Searcher = (*LiveIndex)(nil)

// NewLiveIndex builds the initial index over dyn's current embedding with
// the given options (backend, shards, rerank — as in BuildIndex) and
// returns the live wrapper. Every Refresh rebuilds with the same options.
func NewLiveIndex(dyn *DynamicEmbedding, opts ...IndexOption) (*LiveIndex, error) {
	s, err := BuildIndex(dyn.Embedding(), opts...)
	if err != nil {
		return nil, err
	}
	li := &LiveIndex{dyn: dyn, opts: opts}
	li.cur.Store(&searcherBox{s: s})
	li.lastSwap.Store(time.Now().UnixNano())
	return li, nil
}

// Swaps reports how many times the backing index has been rebuilt and
// swapped in by Refresh since construction.
func (li *LiveIndex) Swaps() uint64 { return li.swaps.Load() }

// LastSwap reports when the current backing index was installed (the
// construction time until the first refresh swap). Observability uses
// this to derive refresh lag — how stale the serving index is.
func (li *LiveIndex) LastSwap() time.Time {
	return time.Unix(0, li.lastSwap.Load())
}

// Searcher returns the current backing index. The returned value stays
// valid (and immutable) after subsequent swaps; callers wanting the RCU
// guarantee for a multi-call sequence should capture it once.
func (li *LiveIndex) Searcher() Searcher { return li.cur.Load().s }

// Dynamic returns the maintained embedding.
func (li *LiveIndex) Dynamic() *DynamicEmbedding { return li.dyn }

// Pending reports the number of edge updates applied since the index was
// last refreshed.
func (li *LiveIndex) Pending() int { return li.dyn.Pending() }

// Backend reports the backend of the current backing index.
func (li *LiveIndex) Backend() Backend {
	if b, ok := li.Searcher().(interface{ Backend() Backend }); ok {
		return b.Backend()
	}
	return BackendExact
}

// ApplyUpdates applies a batch of edge updates to the underlying graph.
// The serving index is unaffected until the next Refresh.
func (li *LiveIndex) ApplyUpdates(ctx context.Context, ups []EdgeUpdate) (int, error) {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.dyn.ApplyUpdates(ctx, ups)
}

// Refresh refreshes the embedding under its configured policy and, if the
// embedding changed, rebuilds the index and atomically swaps it in.
// Queries running during the swap finish on the old index.
func (li *LiveIndex) Refresh(ctx context.Context) (*RefreshStats, error) {
	li.mu.Lock()
	defer li.mu.Unlock()
	st, err := li.dyn.Refresh(ctx)
	if err != nil {
		return st, err
	}
	if st.Mode == RefreshedSkipped {
		return st, nil
	}
	s, err := BuildIndex(li.dyn.Embedding(), li.opts...)
	if err != nil {
		return st, fmt.Errorf("nrp: rebuilding live index: %w", err)
	}
	li.cur.Store(&searcherBox{s: s})
	li.swaps.Add(1)
	li.lastSwap.Store(time.Now().UnixNano())
	return st, nil
}

// TopK answers against the current index (captured once per call).
func (li *LiveIndex) TopK(ctx context.Context, u, k int) ([]Neighbor, error) {
	return li.Searcher().TopK(ctx, u, k)
}

// TopKMany answers against the current index (captured once per call, so
// a whole batch sees one consistent snapshot).
func (li *LiveIndex) TopKMany(ctx context.Context, us []int, k int) ([]Result, error) {
	return li.Searcher().TopKMany(ctx, us, k)
}

// ScoreMany answers against the current index (captured once per call).
func (li *LiveIndex) ScoreMany(ctx context.Context, pairs []Pair) ([]float64, error) {
	return li.Searcher().ScoreMany(ctx, pairs)
}

// N reports the number of indexed nodes.
func (li *LiveIndex) N() int { return li.Searcher().N() }

// IndexOptions configure NewIndex, the v1 constructor.
type IndexOptions struct {
	// Workers is the number of scan shards (0 = GOMAXPROCS).
	Workers int
	// IncludeSelf admits the query node itself as a result.
	IncludeSelf bool
}

// Index is the exact brute-force Searcher: every candidate is scored with
// the float64 kernel, sharded across goroutines. It is the reference
// implementation the approximate backends are tested against.
type Index struct {
	emb *Embedding
	cfg indexConfig
}

// Interface check: Index is the reference Searcher backend.
var _ Searcher = (*Index)(nil)

// NewIndex builds an exact query index over emb.
//
// Deprecated: use BuildIndex, which selects backends and validates its
// configuration. NewIndex remains as the zero-error construction path.
func NewIndex(emb *Embedding, opts ...IndexOptions) *Index {
	var o IndexOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	cfg := indexConfig{backend: BackendExact, rerank: defaultRerank,
		shards: o.Workers, shardsExplicit: o.Workers > 0, includeSelf: o.IncludeSelf}
	if cfg.shards <= 0 {
		cfg.shards = runtime.GOMAXPROCS(0)
	}
	return &Index{emb: emb, cfg: cfg}
}

// N reports the number of indexed nodes.
func (ix *Index) N() int { return ix.emb.N() }

// Backend reports BackendExact.
func (ix *Index) Backend() Backend { return BackendExact }

// ctxCheckStride is how many candidates a scan worker processes between
// context checks — frequent enough for sub-millisecond cancellation, rare
// enough to stay off the hot path.
const ctxCheckStride = 4096

// validateQuery checks a top-k query against the index size, wrapping the
// sentinel errors.
func validateQuery(n, u, k int) error {
	if u < 0 || u >= n {
		return fmt.Errorf("nrp: TopK source %d out of range [0,%d): %w", u, n, ErrNodeOutOfRange)
	}
	if k <= 0 {
		return fmt.Errorf("nrp: TopK k=%d: %w", k, ErrInvalidK)
	}
	return nil
}

// clampK limits k to the number of eligible candidates.
func clampK(n, k int, includeSelf bool) int {
	max := n
	if !includeSelf {
		max--
	}
	if k > max {
		k = max
	}
	return k
}

// TopK returns the k nodes with the highest directed proximity from u,
// sorted by decreasing score (ties broken by ascending node id, so results
// are deterministic). k is clamped to the number of eligible candidates.
func (ix *Index) TopK(ctx context.Context, u, k int) ([]Neighbor, error) {
	nbrs, _, err := ix.topkOne(ctx, u, k, true)
	return nbrs, err
}

// TopKMany answers a batch of top-k queries, parallelized across queries.
func (ix *Index) TopKMany(ctx context.Context, us []int, k int) ([]Result, error) {
	return topkMany(ctx, ix.emb.N(), ix.cfg.shards, us, k, ix.topkOne)
}

// topkOne runs one exact query. When parallel, each shard is scanned by
// its own goroutine; otherwise shards are scanned inline (the TopKMany
// path, which parallelizes across queries instead).
func (ix *Index) topkOne(ctx context.Context, u, k int, parallel bool) ([]Neighbor, QueryStats, error) {
	start := time.Now()
	var stats QueryStats
	n := ix.emb.N()
	if err := validateQuery(n, u, k); err != nil {
		return nil, stats, err
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	if avail := ix.cfg.availCandidates(n, u); k > avail {
		k = avail
	}
	if k <= 0 {
		return nil, stats, nil
	}

	// The candidate range is all of [0, n) on an unrestricted index and
	// this process's slice under WithShardSlice; per-query shard spans
	// subdivide whatever the range is.
	rlo, rhi := ix.cfg.candRange(n)
	xu := ix.emb.X.Row(u)
	scan := func(ctx context.Context, w, shards int, h *topkHeap) (scanned, pruned int, err error) {
		lo, hi := contiguousSpan(rhi-rlo, w, shards)
		lo, hi = lo+rlo, hi+rlo
		for v := lo; v < hi; v++ {
			if (v-lo)%ctxCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return scanned, 0, err
				}
			}
			if v == u && !ix.cfg.includeSelf {
				continue
			}
			h.offer(v, matrix.Dot(xu, ix.emb.Y.Row(v)))
			scanned++
		}
		return scanned, 0, nil
	}
	nbrs, stats, err := runShardScan(ctx, rhi-rlo, ix.cfg.shards, k, parallel, scan)
	stats.Elapsed = time.Since(start)
	return nbrs, stats, err
}

// ScoreMany scores a batch of directed pairs, parallelized across the
// index's shards. The result is aligned with pairs.
func (ix *Index) ScoreMany(ctx context.Context, pairs []Pair) ([]float64, error) {
	return scoreManyExact(ctx, ix.emb, pairs, ix.cfg.shards)
}

// --- shared scan machinery ----------------------------------------------

// shardScanFunc scores shard w's share of the n candidates into h —
// contiguous span or strided sequence, the backend's choice — and
// reports how many candidates it scored and skipped via an early-exit
// bound.
type shardScanFunc func(ctx context.Context, w, shards int, h *topkHeap) (scanned, pruned int, err error)

// contiguousSpan is the default shard shape: shard w of `shards` covers
// the half-open range [lo, hi) of [0, n).
func contiguousSpan(n, w, shards int) (lo, hi int) {
	chunk := (n + shards - 1) / shards
	lo = w * chunk
	hi = lo + chunk
	if hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// runShardScan runs scan for every shard (concurrently when parallel)
// and merges the per-shard heaps into the sorted global top k.
func runShardScan(ctx context.Context, n, shards, k int, parallel bool, scan shardScanFunc) ([]Neighbor, QueryStats, error) {
	var stats QueryStats
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}

	heaps := make([]topkHeap, shards)
	scanned := make([]int, shards)
	pruned := make([]int, shards)
	errs := make([]error, shards)
	runOne := func(w int) {
		h := newTopkHeap(k)
		scanned[w], pruned[w], errs[w] = scan(ctx, w, shards, &h)
		heaps[w] = h
	}
	if parallel && shards > 1 {
		var wg sync.WaitGroup
		for w := 0; w < shards; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				runOne(w)
			}(w)
		}
		wg.Wait()
	} else {
		for w := 0; w < shards; w++ {
			runOne(w)
		}
	}
	for w, err := range errs {
		if err != nil {
			return nil, stats, err
		}
		stats.Scanned += scanned[w]
		stats.Pruned += pruned[w]
	}

	merged := newTopkHeap(k)
	for _, h := range heaps {
		for _, nb := range h.items {
			merged.offer(nb.Node, nb.Score)
		}
	}
	return sortNeighbors(merged.items), stats, nil
}

// sortNeighbors orders results by decreasing score, ties by ascending
// node id, in place.
func sortNeighbors(out []Neighbor) []Neighbor {
	// slices.SortFunc over sort.Slice: the reflection-based swapper costs
	// about a microsecond per call, which the graph backend's
	// single-digit-microsecond queries actually notice.
	slices.SortFunc(out, func(a, b Neighbor) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		return a.Node - b.Node
	})
	return out
}

// topkOneFunc is a backend's single-query entry point.
type topkOneFunc func(ctx context.Context, u, k int, parallel bool) ([]Neighbor, QueryStats, error)

// topkMany validates a batch of sources up front, then answers them with
// up to `workers` concurrent queries, each scanning its shards inline.
func topkMany(ctx context.Context, n, workers int, us []int, k int, one topkOneFunc) ([]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("nrp: TopKMany k=%d: %w", k, ErrInvalidK)
	}
	for i, u := range us {
		if u < 0 || u >= n {
			return nil, fmt.Errorf("nrp: TopKMany query %d source %d out of range [0,%d): %w", i, u, n, ErrNodeOutOfRange)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]Result, len(us))
	errs := make([]error, len(us))
	if workers > len(us) {
		workers = len(us)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				nbrs, stats, err := one(ctx, us[i], k, false)
				out[i] = Result{Source: us[i], Neighbors: nbrs, Stats: stats}
				errs[i] = err
			}
		}()
	}
	for i := range us {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// scoreManyExact scores a batch of directed pairs with the float64
// kernel, shared by every backend (approximate backends still answer
// point scores exactly — only top-k retrieval is approximated).
func scoreManyExact(ctx context.Context, emb *Embedding, pairs []Pair, workers int) ([]float64, error) {
	n := emb.N()
	for i, p := range pairs {
		if p.U < 0 || p.U >= n || p.V < 0 || p.V >= n {
			return nil, fmt.Errorf("nrp: ScoreMany pair %d (%d,%d) out of range [0,%d): %w", i, p.U, p.V, n, ErrNodeOutOfRange)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]float64, len(pairs))
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		for i, p := range pairs {
			if i%ctxCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			out[i] = emb.Score(p.U, p.V)
		}
		return out, nil
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if (i-lo)%ctxCheckStride == 0 {
					if err := ctx.Err(); err != nil {
						errs[w] = err
						return
					}
				}
				out[i] = emb.Score(pairs[i].U, pairs[i].V)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// weaker reports whether a ranks below b: lower score, or among equal
// scores the higher node id (mirroring TopK's ascending-id tie-break).
func weaker(a, b Neighbor) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Node > b.Node
}

// topkHeap is a fixed-capacity min-heap on score: the root is the weakest
// of the current top k, so each candidate costs O(1) when it loses and
// O(log k) when it displaces the root.
type topkHeap struct {
	items []Neighbor
	cap   int
}

func newTopkHeap(k int) topkHeap { return topkHeap{items: make([]Neighbor, 0, k), cap: k} }

// full reports whether the heap holds its full k items; min is then the
// weakest retained score (the prune threshold).
func (h *topkHeap) full() bool { return len(h.items) == h.cap }

func (h *topkHeap) min() Neighbor { return h.items[0] }

func (h *topkHeap) offer(node int, score float64) {
	cand := Neighbor{Node: node, Score: score}
	if len(h.items) < h.cap {
		h.items = append(h.items, cand)
		// Sift up.
		i := len(h.items) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !weaker(h.items[i], h.items[parent]) {
				break
			}
			h.items[i], h.items[parent] = h.items[parent], h.items[i]
			i = parent
		}
		return
	}
	// Full: admit only candidates stronger than the current weakest (root).
	if !weaker(h.items[0], cand) {
		return
	}
	h.items[0] = cand
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && weaker(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < len(h.items) && weaker(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
