package nrp

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/nrp-embed/nrp/internal/matrix"
)

// Neighbor is one result of a proximity query: a candidate node and its
// directed proximity score from the query source.
type Neighbor struct {
	Node  int
	Score float64
}

// Pair is a (source, target) query for ScoreMany.
type Pair struct {
	U, V int
}

// Searcher answers proximity queries over an embedding. Index is the exact
// brute-force implementation; later backends (pruned scans, ANN structures)
// implement the same contract.
type Searcher interface {
	// TopK returns the k nodes v maximizing the directed proximity
	// Score(u, v), best first.
	TopK(ctx context.Context, u, k int) ([]Neighbor, error)
	// ScoreMany scores a batch of (u, v) pairs.
	ScoreMany(ctx context.Context, pairs []Pair) ([]float64, error)
}

// IndexOptions configure query execution.
type IndexOptions struct {
	// Workers is the number of goroutines a TopK scan fans out across
	// (0 = GOMAXPROCS).
	Workers int
	// IncludeSelf admits the query node itself as a result; by default it
	// is excluded, matching the link-prediction use of proximity scores.
	IncludeSelf bool
}

// Index serves top-k and batch proximity queries over a fixed Embedding by
// an exact scan parallelized across goroutines. It is safe for concurrent
// use; the embedding must not be mutated while queries run.
type Index struct {
	emb         *Embedding
	workers     int
	includeSelf bool
}

// Interface check: Index is the reference Searcher backend.
var _ Searcher = (*Index)(nil)

// NewIndex builds a query index over emb.
func NewIndex(emb *Embedding, opts ...IndexOptions) *Index {
	var o IndexOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Index{emb: emb, workers: w, includeSelf: o.IncludeSelf}
}

// N reports the number of indexed nodes.
func (ix *Index) N() int { return ix.emb.N() }

// ctxCheckStride is how many candidates a scan worker processes between
// context checks — frequent enough for sub-millisecond cancellation, rare
// enough to stay off the hot path.
const ctxCheckStride = 4096

// TopK returns the k nodes with the highest directed proximity from u,
// sorted by decreasing score (ties broken by ascending node id, so results
// are deterministic). k is clamped to the number of eligible candidates.
func (ix *Index) TopK(ctx context.Context, u, k int) ([]Neighbor, error) {
	n := ix.emb.N()
	if u < 0 || u >= n {
		return nil, fmt.Errorf("nrp: TopK source %d out of range [0,%d)", u, n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("nrp: TopK k must be positive, got %d", k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	max := n
	if !ix.includeSelf {
		max--
	}
	if k > max {
		k = max
	}
	if k == 0 {
		return nil, nil
	}

	xu := ix.emb.X.Row(u)
	workers := ix.workers
	if workers > n {
		workers = n
	}
	heaps := make([]topkHeap, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := newTopkHeap(k)
			for v := lo; v < hi; v++ {
				if (v-lo)%ctxCheckStride == 0 {
					if err := ctx.Err(); err != nil {
						errs[w] = err
						return
					}
				}
				if v == u && !ix.includeSelf {
					continue
				}
				h.offer(v, matrix.Dot(xu, ix.emb.Y.Row(v)))
			}
			heaps[w] = h
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Merge the per-worker heaps and keep the global top k.
	merged := newTopkHeap(k)
	for _, h := range heaps {
		for _, nb := range h.items {
			merged.offer(nb.Node, nb.Score)
		}
	}
	out := merged.items
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	return out, nil
}

// ScoreMany scores a batch of directed pairs, parallelized across the
// index's workers. The result is aligned with pairs.
func (ix *Index) ScoreMany(ctx context.Context, pairs []Pair) ([]float64, error) {
	n := ix.emb.N()
	for i, p := range pairs {
		if p.U < 0 || p.U >= n || p.V < 0 || p.V >= n {
			return nil, fmt.Errorf("nrp: ScoreMany pair %d (%d,%d) out of range [0,%d)", i, p.U, p.V, n)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]float64, len(pairs))
	workers := ix.workers
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		for i, p := range pairs {
			if i%ctxCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			out[i] = ix.emb.Score(p.U, p.V)
		}
		return out, nil
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if (i-lo)%ctxCheckStride == 0 {
					if err := ctx.Err(); err != nil {
						errs[w] = err
						return
					}
				}
				out[i] = ix.emb.Score(pairs[i].U, pairs[i].V)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// weaker reports whether a ranks below b: lower score, or among equal
// scores the higher node id (mirroring TopK's ascending-id tie-break).
func weaker(a, b Neighbor) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Node > b.Node
}

// topkHeap is a fixed-capacity min-heap on score: the root is the weakest
// of the current top k, so each candidate costs O(1) when it loses and
// O(log k) when it displaces the root.
type topkHeap struct {
	items []Neighbor
	cap   int
}

func newTopkHeap(k int) topkHeap { return topkHeap{items: make([]Neighbor, 0, k), cap: k} }

func (h *topkHeap) offer(node int, score float64) {
	cand := Neighbor{Node: node, Score: score}
	if len(h.items) < h.cap {
		h.items = append(h.items, cand)
		// Sift up.
		i := len(h.items) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !weaker(h.items[i], h.items[parent]) {
				break
			}
			h.items[i], h.items[parent] = h.items[parent], h.items[i]
			i = parent
		}
		return
	}
	// Full: admit only candidates stronger than the current weakest (root).
	if !weaker(h.items[0], cand) {
		return
	}
	h.items[0] = cand
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && weaker(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < len(h.items) && weaker(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
