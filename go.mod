module github.com/nrp-embed/nrp

go 1.22
