// Package nrp is a from-scratch Go implementation of Node-Reweighted
// PageRank (NRP), the homogeneous network embedding method of Yang et al.,
// "Homogeneous Network Embedding for Massive Graphs via Reweighted
// Personalized PageRank" (PVLDB 13(5), 2020).
//
// NRP builds a forward and a backward embedding vector per node such that
// the inner product X_u·Y_vᵀ approximates a degree-reweighted personalized
// PageRank proximity →w_u·π(u,v)·←w_v. It runs in O(k(m+kn)·log n) time and
// O(m+nk) space, and handles both directed and undirected graphs.
//
// Basic usage (the v2 context-aware pipeline):
//
//	g, err := nrp.LoadGraph("graph.txt", true)
//	emb, stats, err := nrp.EmbedCtx(ctx, g, nrp.DefaultOptions())
//	stats.Render(os.Stderr)          // per-phase wall time, iterations, residuals
//	score := emb.Score(u, v)         // directed proximity of (u → v)
//
// Long-running entry points take a context.Context and stop promptly with
// ctx.Err() when it is cancelled, and accept run options such as
// WithProgress for live phase/step reporting and WithThreads to bound the
// parallel compute engine (default: all cores — the build phases scale
// near-linearly with the core count):
//
//	emb, stats, err := nrp.EmbedCtx(ctx, g, opt, nrp.WithThreads(8),
//		nrp.WithProgress(func(ev nrp.ProgressEvent) {
//			log.Printf("%s %d/%d", ev.Phase, ev.Step, ev.Total)
//		}))
//
// For serving top-k proximity queries, build a query index over the
// embedding. BuildIndex selects among pluggable Searcher backends — the
// exact scan, an int8-quantized scan with exact rerank, and a norm-pruned
// scan with a Cauchy–Schwarz early exit — all sharded across goroutines:
//
//	s, err := nrp.BuildIndex(emb, nrp.WithBackend(nrp.BackendQuantized))
//	nbrs, err := s.TopK(ctx, u, 10)        // 10 nodes v maximizing Score(u, v)
//	res, err := s.TopKMany(ctx, us, 10)    // batched, with per-query QueryStats
//
// A built index persists with SaveIndex and boots back with LoadIndex
// (no re-quantization), which is how cmd/nrpserve serves HTTP traffic.
//
// Evolving graphs — the paper's VK/Digg workload — are served live: a
// DynamicEmbedding maintains the embedding under batched edge
// insertions/deletions with full, incremental (push-based) or
// staleness-gated refresh, and a LiveIndex swaps the serving index
// atomically so in-flight queries never fail during a refresh:
//
//	dyn, err := nrp.NewDynamicEmbedding(ctx, g, opt, nrp.DynamicConfig{})
//	live, err := nrp.NewLiveIndex(dyn, nrp.WithBackend(nrp.BackendQuantized))
//	live.ApplyUpdates(ctx, updates)
//	stats, err := live.Refresh(ctx)        // rebuild + zero-downtime swap
//
// The v1 entry points (Embed, EmbedPPR, EmbedAttributed, LearnWeights)
// remain as thin deprecated wrappers over the ctx-taking versions.
//
// The packages under internal/ implement the substrates (sparse linear
// algebra, randomized block-Krylov SVD, PPR computation, evaluation
// protocols, baselines and the experiment harness); this package is the
// stable public surface.
package nrp

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"

	"github.com/nrp-embed/nrp/internal/core"
	"github.com/nrp-embed/nrp/internal/gio"
	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/par"
)

// Graph is a node-indexed graph with CSR adjacency. Construct with
// NewGraph, ReadGraph or LoadGraph, or generate with the generators in this
// package.
type Graph = graph.Graph

// Edge is a (source, target) node-id pair.
type Edge = graph.Edge

// Options configure embedding construction; see DefaultOptions for the
// paper's settings.
type Options = core.Options

// Embedding holds per-node forward/backward vectors; see Score, Features,
// Save.
type Embedding = core.Embedding

// Phase identifies a pipeline stage in ProgressEvent and Stats; see
// core.PhaseFactorize and friends re-exported below.
type Phase = core.Phase

// Pipeline phases, in execution order.
const (
	PhaseFactorize  = core.PhaseFactorize
	PhasePPR        = core.PhasePPR
	PhaseReweight   = core.PhaseReweight
	PhaseAttributes = core.PhaseAttributes
)

// ProgressEvent reports one completed unit of work inside a pipeline phase.
type ProgressEvent = core.ProgressEvent

// ProgressFunc receives progress events; install with WithProgress.
type ProgressFunc = core.ProgressFunc

// PhaseStat records the wall time and step count of one pipeline phase.
type PhaseStat = core.PhaseStat

// Stats describes where an embedding run spent its time: per-phase wall
// time, Krylov iterations run, achieved factorization rank, and per-epoch
// reweighting residuals. Returned by the ctx-taking entry points.
type Stats = core.Stats

// RunOption configures a pipeline run; see WithProgress and WithThreads.
type RunOption = core.RunOption

// WithProgress installs a progress callback on a pipeline run. The callback
// runs synchronously on the computing goroutine and should return quickly.
func WithProgress(fn ProgressFunc) RunOption { return core.WithProgress(fn) }

// ThreadsOption bounds the worker threads of a parallel computation. It
// satisfies both RunOption (EmbedCtx, EmbedPPRCtx, LearnWeightsCtx,
// EmbedAttributedCtx, NewDynamicEmbedding) and IndexOption (BuildIndex),
// so one WithThreads value configures the whole stack.
type ThreadsOption int

// ApplyRun implements RunOption: the pipeline's compute kernels (BKSVD,
// PPR folding, reweighting sweeps) run on this many workers.
func (t ThreadsOption) ApplyRun(c *core.RunConfig) { c.Threads = int(t) }

// applyIndex implements IndexOption: build-time preprocessing
// (quantization, norm computation) runs on this many workers. The query-
// time fan-out is still governed by WithShards.
func (t ThreadsOption) applyIndex(c *indexConfig) { c.buildThreads = int(t) }

// WithThreads bounds the number of worker threads used by the embedding
// pipeline's compute kernels and by index-build preprocessing (0 or
// negative = GOMAXPROCS, the default). Embeddings computed with different
// thread counts agree to floating-point reassociation error (≈1e-12
// relative); repeated runs with the same thread count and seed are
// bit-identical.
//
//	emb, stats, err := nrp.EmbedCtx(ctx, g, opt, nrp.WithThreads(8))
//	s, err := nrp.BuildIndex(emb, nrp.WithThreads(8))
func WithThreads(n int) ThreadsOption { return ThreadsOption(n) }

// DefaultOptions returns the paper's parameter settings: k=128, α=0.15,
// ℓ₁=20, ℓ₂=10, ε=0.2, λ=10.
func DefaultOptions() Options { return core.DefaultOptions() }

// EmbedCtx computes NRP embeddings (Algorithm 3 of the paper): ApproxPPR
// factorization followed by degree-targeted node reweighting. The context
// is checked inside the BKSVD iterations, the PPR folding loop and the
// reweighting epochs; on cancellation EmbedCtx returns ctx.Err() promptly.
// Stats are returned even on error, covering the phases that ran. Options
// are validated up front.
func EmbedCtx(ctx context.Context, g *Graph, opt Options, opts ...RunOption) (*Embedding, *Stats, error) {
	if err := opt.Validate(); err != nil {
		return nil, nil, fmt.Errorf("nrp: invalid options: %w", err)
	}
	return core.NRPCtx(ctx, g, opt, opts...)
}

// Embed computes NRP embeddings with a background context.
//
// Deprecated: use EmbedCtx, which supports cancellation, progress reporting
// and run stats.
func Embed(g *Graph, opt Options) (*Embedding, error) {
	emb, _, err := EmbedCtx(context.Background(), g, opt)
	return emb, err
}

// EmbedPPRCtx computes the ApproxPPR baseline embeddings (Algorithm 1): the
// personalized-PageRank factorization without node reweighting. Context and
// stats behave as in EmbedCtx.
func EmbedPPRCtx(ctx context.Context, g *Graph, opt Options, opts ...RunOption) (*Embedding, *Stats, error) {
	if err := opt.Validate(); err != nil {
		return nil, nil, fmt.Errorf("nrp: invalid options: %w", err)
	}
	return core.ApproxPPRCtx(ctx, g, opt, opts...)
}

// EmbedPPR computes the ApproxPPR baseline with a background context.
//
// Deprecated: use EmbedPPRCtx, which supports cancellation, progress
// reporting and run stats.
func EmbedPPR(g *Graph, opt Options) (*Embedding, error) {
	emb, _, err := EmbedPPRCtx(context.Background(), g, opt)
	return emb, err
}

// LearnWeightsCtx exposes the reweighting phase on fixed embeddings,
// returning the forward and backward node weights of Eq. (5)/(6) plus run
// stats (per-epoch residuals). The context is checked between
// coordinate-descent passes. Options are validated up front.
func LearnWeightsCtx(ctx context.Context, g *Graph, emb *Embedding, opt Options, opts ...RunOption) (fw, bw []float64, stats *Stats, err error) {
	if err := opt.Validate(); err != nil {
		return nil, nil, nil, fmt.Errorf("nrp: invalid options: %w", err)
	}
	return core.LearnWeightsCtx(ctx, g, emb, opt, opts...)
}

// LearnWeights exposes the reweighting phase with a background context.
//
// Deprecated: use LearnWeightsCtx, which supports cancellation, progress
// reporting and run stats.
func LearnWeights(g *Graph, emb *Embedding, opt Options) (fw, bw []float64, err error) {
	fw, bw, _, err = LearnWeightsCtx(context.Background(), g, emb, opt)
	return fw, bw, err
}

// NewGraph builds a graph from an edge list over n nodes. Undirected edges
// are symmetrized; self-loops and duplicates are dropped.
func NewGraph(n int, edges []Edge, directed bool) (*Graph, error) {
	return graph.New(n, edges, directed)
}

// ReadGraph reads a graph from r in either supported format, sniffing the
// magic bytes: an NRPG binary snapshot (written by SaveGraph or
// `nrp convert`) is decoded with full checksum verification and its stored
// directedness wins; anything else is parsed as a whitespace-separated
// edge list ("u v" per line, '#'/'%' comments) with the parallel chunked
// parser, which produces a graph bit-identical to the serial reader.
func ReadGraph(r io.Reader, directed bool) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic, err := br.Peek(4)
	if err == nil && gio.IsNRPG(magic) {
		g, _, err := gio.Load(br)
		return g, err
	}
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("nrp: reading edge list: %w", err)
	}
	return gio.ParseEdgeList(data, directed, 0, par.New(0))
}

// LoadGraph reads a graph file from disk — an edge list or an NRPG
// snapshot, sniffed as in ReadGraph. NRPG snapshots are heap-loaded and
// fully verified; use LoadGraphMmap (or OpenGraph) to boot a large
// snapshot zero-copy. Unlike ReadGraph, the text path reads the file
// into one exactly-sized buffer instead of growing through io.ReadAll.
func LoadGraph(path string, directed bool) (*Graph, error) {
	bin, err := gio.SniffFile(path)
	if err != nil {
		return nil, fmt.Errorf("nrp: opening graph: %w", err)
	}
	if bin {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("nrp: opening graph: %w", err)
		}
		defer f.Close()
		g, _, err := gio.Load(f)
		return g, err
	}
	return loadGraphText(path, directed)
}

// loadGraphText reads an edge-list file into one exactly-sized buffer
// and runs the parallel parser over it.
func loadGraphText(path string, directed bool) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("nrp: reading graph: %w", err)
	}
	return gio.ParseEdgeList(data, directed, 0, par.New(0))
}

// OpenGraph loads a graph file in either supported format, picking the
// fastest loader: NRPG snapshots are memory-mapped as in LoadGraphMmap
// (with its caveats), text edge lists are parsed in parallel as in
// LoadGraph (the closer is then a no-op). This is the boot path of
// cmd/nrp and cmd/nrpserve; the closer must stay open for as long as
// the graph is used.
func OpenGraph(path string, directed bool) (*Graph, io.Closer, error) {
	bin, err := gio.SniffFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("nrp: opening graph: %w", err)
	}
	if bin {
		return LoadGraphMmap(path)
	}
	g, err := loadGraphText(path, directed)
	if err != nil {
		return nil, nil, err
	}
	return g, io.NopCloser(nil), nil
}

// SaveGraph writes g to path as an NRPG v1 binary snapshot (labels
// included), the format LoadGraph sniffs and LoadGraphMmap boots
// zero-copy. Snapshots are deterministic: the same graph always produces
// the same bytes.
func SaveGraph(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nrp: creating snapshot: %w", err)
	}
	if err := gio.Save(f, g, nil); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadGraphMmap memory-maps an NRPG snapshot and returns a graph whose
// CSR arrays alias the read-only mapping: multi-gigabyte graphs boot in
// milliseconds, pages load lazily, and concurrent processes serving the
// same snapshot share one page-cache copy. The graph must not be used
// after the returned Closer is closed. Unlike LoadGraph, the trailing
// checksum and per-entry column indices are not verified (that would
// touch every page); load a snapshot of doubtful provenance with
// LoadGraph first. All mutation paths (AddEdges, RemoveEdges, live
// serving refreshes) are copy-on-write and therefore safe on a mapped
// graph.
func LoadGraphMmap(path string) (*Graph, io.Closer, error) {
	g, _, closer, err := gio.LoadMmap(path)
	return g, closer, err
}

// WriteGraph writes g as an edge list readable by ReadGraph.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// LoadEmbedding reads an embedding written by Embedding.Save.
func LoadEmbedding(r io.Reader) (*Embedding, error) { return core.Load(r) }

// GenErdosRenyi generates a uniform random graph with exactly m edges.
func GenErdosRenyi(n, m int, directed bool, seed int64) (*Graph, error) {
	return graph.GenErdosRenyi(n, m, directed, seed)
}

// SBMConfig parameterizes the labeled, degree-skewed stochastic-block-model
// generator; see GenSBM.
type SBMConfig = graph.SBMConfig

// GenSBM generates a labeled community graph with heavy-tailed degrees,
// useful for trying the embedding pipeline end to end without external
// data.
func GenSBM(cfg SBMConfig) (*Graph, error) { return graph.GenSBM(cfg) }

// AttributedOptions configure the attributed-graph extension; see
// EmbedAttributedCtx.
type AttributedOptions = core.AttributedOptions

// AttributedEmbedding couples topology embeddings with PPR-smoothed node
// attributes.
type AttributedEmbedding = core.AttributedEmbedding

// DefaultAttributedOptions returns the default attributed-graph settings
// (the paper's parameters plus β = 0.3 attribute weight).
func DefaultAttributedOptions() AttributedOptions { return core.DefaultAttributedOptions() }

// EmbedAttributedCtx implements the paper's stated future work: NRP on the
// topology fused with node attributes smoothed through the same truncated
// personalized-PageRank operator. attrs holds one row per node. Context and
// stats behave as in EmbedCtx, with the attribute propagation reported
// under PhaseAttributes.
func EmbedAttributedCtx(ctx context.Context, g *Graph, attrs [][]float64, opt AttributedOptions, opts ...RunOption) (*AttributedEmbedding, *Stats, error) {
	if err := opt.Validate(); err != nil {
		return nil, nil, fmt.Errorf("nrp: invalid options: %w", err)
	}
	return core.NRPAttributedCtx(ctx, g, matrix.NewDenseFromRows(attrs), opt, opts...)
}

// EmbedAttributed embeds an attributed graph with a background context.
//
// Deprecated: use EmbedAttributedCtx, which supports cancellation, progress
// reporting and run stats.
func EmbedAttributed(g *Graph, attrs [][]float64, opt AttributedOptions) (*AttributedEmbedding, error) {
	emb, _, err := EmbedAttributedCtx(context.Background(), g, attrs, opt)
	return emb, err
}

// GenAttributes synthesizes label-correlated node attributes with Gaussian
// noise, for experimenting with EmbedAttributed.
func GenAttributes(g *Graph, dim int, noise float64, seed int64) ([][]float64, error) {
	return graph.GenAttributes(g, dim, noise, seed)
}
